"""Formula-vs-simulator checks (Theorem 1, Propositions 1-2)."""

import pytest

from repro.analysis import (
    binary_tree_cp_exact,
    fibonacci_cp_bound,
    flat_tree_cp,
    greedy_cp_bound,
    optimal_cp_lower_bound,
    ts_flat_tree_cp,
)
from repro.analysis.formulas import flat_tree_cp_flops
from repro.core import critical_path

SHAPES = [(1, 1), (2, 1), (7, 1), (2, 2), (3, 3), (9, 9), (3, 2), (8, 3),
          (15, 6), (25, 10), (40, 20)]


class TestTheorem1FlatTree:
    @pytest.mark.parametrize("p,q", SHAPES)
    def test_tt_formula_exact(self, p, q):
        assert critical_path("flat-tree", p, q) == flat_tree_cp(p, q)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            flat_tree_cp(2, 3)

    def test_flops_version(self):
        nb = 10
        assert flat_tree_cp_flops(150, 60, nb) == flat_tree_cp(15, 6) * nb**3 / 3
        with pytest.raises(ValueError):
            flat_tree_cp_flops(151, 60, nb)


class TestProposition2TsFlatTree:
    @pytest.mark.parametrize("p,q", SHAPES)
    def test_ts_formula_exact(self, p, q):
        assert critical_path("flat-tree", p, q, family="TS") == ts_flat_tree_cp(p, q)

    def test_ts_always_slower(self):
        for p, q in SHAPES:
            if p > 1:
                assert ts_flat_tree_cp(p, q) > flat_tree_cp(p, q)


class TestTheorem1Bounds:
    @pytest.mark.parametrize("p,q", [(8, 3), (15, 6), (40, 10), (64, 32),
                                     (100, 25), (128, 128)])
    def test_fibonacci_bound_holds(self, p, q):
        assert critical_path("fibonacci", p, q) <= fibonacci_cp_bound(p, q)

    @pytest.mark.parametrize("p,q", [(8, 3), (15, 6), (40, 10), (64, 32),
                                     (100, 25), (128, 128)])
    def test_greedy_bound_holds(self, p, q):
        assert critical_path("greedy", p, q) <= greedy_cp_bound(p, q)

    @pytest.mark.parametrize("q", [16, 32, 64])
    def test_greedy_bound_off_by_two_at_p128(self, q):
        """Reproduction finding: at p = 128 the simulated Greedy cp
        exceeds the stated Theorem-1(2) bound by exactly 2 units — and
        the paper's own Table 4b values (e.g. 396 at q=16 vs bound 394)
        do too, so the theorem's constant should read
        ``22q + 6 ceil(log2 p) + O(1)``.  Documented in EXPERIMENTS.md."""
        slack = critical_path("greedy", 128, q) - greedy_cp_bound(128, q)
        assert slack == 2

    @pytest.mark.parametrize("scheme", ["greedy", "fibonacci", "flat-tree",
                                        "binary-tree"])
    @pytest.mark.parametrize("q", [4, 8, 16])
    def test_lower_bound_holds(self, scheme, q):
        p = 2 * q
        assert critical_path(scheme, p, q) >= optimal_cp_lower_bound(q)

    def test_lower_bound_requires_q2(self):
        with pytest.raises(ValueError):
            optimal_cp_lower_bound(1)


class TestProposition1BinaryTree:
    @pytest.mark.parametrize("p,q", [(4, 2), (8, 2), (8, 4), (16, 4),
                                     (16, 8), (32, 8)])
    def test_exact_powers_of_two(self, p, q):
        assert critical_path("binary-tree", p, q) == binary_tree_cp_exact(p, q)

    def test_rejects_non_powers(self):
        with pytest.raises(ValueError):
            binary_tree_cp_exact(10, 4)
        with pytest.raises(ValueError):
            binary_tree_cp_exact(8, 8)

    def test_not_asymptotically_optimal(self):
        """BinaryTree's cp / 22q grows with log p — never approaches 1."""
        ratios = []
        for q in (4, 8, 16):
            p = 4 * q
            ratios.append(critical_path("binary-tree", p, q) / (22 * q))
        assert ratios[-1] > 1.5
        assert ratios == sorted(ratios)


class TestOrderings:
    """Qualitative statements of the paper, as invariants."""

    @pytest.mark.parametrize("q", [2, 4, 8, 16])
    def test_greedy_at_least_as_good_as_fibonacci_tall(self, q):
        p = 4 * q
        assert critical_path("greedy", p, q) <= critical_path("fibonacci", p, q)

    def test_greedy_beats_flat_tree_for_tall(self):
        for q in (2, 5, 10):
            p = 4 * q
            assert critical_path("greedy", p, q) < critical_path("flat-tree", p, q)

    def test_flat_tree_competitive_for_square(self):
        """As q -> p all algorithms converge (Section 4)."""
        q = p = 20
        ft = critical_path("flat-tree", p, q)
        g = critical_path("greedy", p, q)
        assert ft / g < 1.15
