"""Tests for the Roofline-style performance predictor (Section 4)."""

import numpy as np

from repro.analysis import PerformanceModel, predicted_gflops
from repro.core import critical_path
from repro.kernels.costs import total_weight

#: the paper's measured sequential rates (GFLOP/s)
PAPER_DOUBLE = PerformanceModel(gamma_seq=3.8440, processors=48)
PAPER_COMPLEX = PerformanceModel(gamma_seq=3.1860, processors=48)


class TestPerformanceModel:
    def test_work_bound_regime(self):
        """Square-ish matrices: T/P >> cp, performance ~ P * gamma."""
        m = PerformanceModel(gamma_seq=2.0, processors=4)
        g = m.predict(total=1000.0, cp=10.0)
        assert np.isclose(g, 2.0 * 4)

    def test_cp_bound_regime(self):
        m = PerformanceModel(gamma_seq=2.0, processors=1000)
        g = m.predict(total=100.0, cp=50.0)
        assert np.isclose(g, 2.0 * 100 / 50)

    def test_zero_work(self):
        assert PerformanceModel(1.0, 4).predict(0.0, 0.0) == 0.0

    def test_speedup_bounded_by_p(self):
        m = PerformanceModel(gamma_seq=3.0, processors=48)
        for q in (1, 5, 20, 40):
            t = float(total_weight(40, q))
            cp = critical_path("greedy", 40, q)
            assert m.speedup(t, cp) <= 48 + 1e-9

    def test_predicted_gflops_paper_shape(self):
        """Figure 1a/1c shape: Greedy's predicted curve dominates
        PlasmaTree's and Fibonacci's for tall matrices."""
        for q in (2, 4, 5, 10):
            g = predicted_gflops("greedy", 40, q, PAPER_COMPLEX)
            f = predicted_gflops("fibonacci", 40, q, PAPER_COMPLEX)
            assert g >= f - 1e-9

    def test_predictions_increase_with_q(self):
        """More columns -> more parallelism -> higher predicted rate."""
        vals = [predicted_gflops("greedy", 40, q, PAPER_DOUBLE)
                for q in (1, 2, 5, 10, 20, 40)]
        assert vals == sorted(vals)

    def test_peak_at_full_machine(self):
        """At q = 40 every algorithm is work-bound: ~48x sequential."""
        g = predicted_gflops("greedy", 40, 40, PAPER_DOUBLE)
        assert g > 0.9 * 48 * PAPER_DOUBLE.gamma_seq
