"""Tests for the numerical-accuracy assessment module."""

import numpy as np

from repro import tiled_qr
from repro.analysis.accuracy import assess, compare_schemes
from repro.matrices import graded, random_dense


class TestAssess:
    def test_well_conditioned(self):
        a = random_dense(40, 20, seed=1)
        rep = assess(tiled_qr(a, nb=8), a)
        assert rep.backward_error < 1e-14
        assert rep.orthogonality < 1e-13
        assert rep.is_stable()
        assert rep.eps_multiple < 10

    def test_ill_conditioned_still_backward_stable(self):
        """The paper's stability claim: Householder QR is backward
        stable regardless of conditioning."""
        a = graded(48, 16, condition=1e14, seed=3)
        rep = assess(tiled_qr(a, nb=8), a)
        assert rep.is_stable()
        assert rep.orthogonality < 1e-12  # orthogonality is unconditional

    def test_single_precision_scale(self):
        a = random_dense(32, 16, seed=4).astype(np.float32)
        rep = assess(tiled_qr(a, nb=8), a)
        # eps(float32) ~ 1e-7; metric normalizes by float64 eps in
        # `a`'s *real* dtype
        assert rep.backward_error < 1e-5


class TestCompareSchemes:
    def test_all_trees_equally_stable(self):
        a = graded(48, 16, condition=1e12, seed=0)
        reports = compare_schemes(a, nb=8)
        errs = [r.backward_error for r in reports.values()]
        assert max(errs) < 1e-13
        # no tree is more than 10x worse than the best
        assert max(errs) / max(min(errs), 1e-300) < 10

    def test_families_equally_stable(self):
        a = random_dense(32, 16, seed=7)
        tt = compare_schemes(a, nb=8, schemes=["greedy"], family="TT")
        ts = compare_schemes(a, nb=8, schemes=["greedy"], family="TS")
        assert tt["greedy"].is_stable() and ts["greedy"].is_stable()
