"""Tests for the pipeline-structure analysis helpers."""

import pytest

from repro.analysis.pipeline import (column_period, column_windows,
                                     pipeline_overlap, pipeline_report)
from repro.dag import build_dag
from repro.schemes import flat_tree, greedy
from repro.sim import simulate_unbounded


def run(scheme_fn, p, q):
    return simulate_unbounded(build_dag(scheme_fn(p, q), "TT"))


class TestColumnWindows:
    def test_count_and_order(self):
        res = run(greedy, 10, 4)
        w = column_windows(res)
        assert len(w) == 4
        ends = [b for _, b in w]
        assert ends == sorted(ends)  # columns finish in order
        assert all(a < b for a, b in w)

    def test_first_column_starts_at_zero(self):
        res = run(greedy, 10, 4)
        assert column_windows(res)[0][0] == 0.0

    def test_last_column_ends_at_makespan(self):
        res = run(greedy, 10, 4)
        assert column_windows(res)[-1][1] == res.makespan


class TestOverlap:
    def test_at_least_one(self):
        res = run(flat_tree, 8, 3)
        assert pipeline_overlap(res) >= 1.0

    def test_greedy_columns_drain_faster(self):
        """The pipelining claim, quantified: Greedy finishes each
        column's window far faster than FlatTree, whose serial panel
        keeps every column open for ~6p units (so FlatTree's *overlap*
        is high for the wrong reason: its columns are simply slow)."""
        g = run(greedy, 32, 8)
        f = run(flat_tree, 32, 8)
        g_len = max(b - a for a, b in column_windows(g))
        f_len = max(b - a for a, b in column_windows(f))
        assert g_len < f_len
        assert pipeline_overlap(f) > pipeline_overlap(g) > 1.0

    def test_single_column_is_one(self):
        res = run(greedy, 8, 1)
        assert pipeline_overlap(res) == pytest.approx(1.0)


class TestColumnPeriod:
    def test_greedy_period_approaches_22(self):
        """Theorem 1's steady state: one column completed every ~22
        units for asymptotically optimal trees."""
        res = run(greedy, 64, 16)
        assert abs(column_period(res) - 22.0) <= 2.0

    def test_flat_tree_period_reflects_6p(self):
        """FlatTree's serial panel gives a ~6-unit period per column
        (columns drain back-to-back at 6-unit offsets once the pipeline
        fills — the 6p term of Theorem 1(1))."""
        res = run(flat_tree, 64, 16)
        assert column_period(res) < 22.0  # columns finish closer together
        res_g = run(greedy, 64, 16)
        # but FlatTree's *total* is far worse despite the tighter tail
        assert res.makespan > res_g.makespan

    def test_single_column(self):
        res = run(greedy, 8, 1)
        assert column_period(res) == res.makespan


class TestPipelineReport:
    def test_from_sim_result(self):
        res = run(greedy, 10, 4)
        rep = pipeline_report(res)
        assert rep["makespan"] == res.makespan
        assert rep["overlap"] == pipeline_overlap(res)
        assert len(rep["windows"]) == 4

    def test_from_plan_with_processors(self):
        from repro.api import plan, simulate

        pl = plan(10, 4, "greedy")
        rep = pipeline_report(pl, processors=4)
        assert rep["makespan"] == simulate(pl, processors=4).makespan

    def test_includes_schedule_analytics(self):
        from repro.api import plan

        rep = pipeline_report(plan(10, 4, "greedy"), processors=4)
        sched = rep["schedule"]
        assert sched["processors"] == 4
        assert 0 < sched["utilization"] <= 1
        assert sched["critical_path_length"] == rep["makespan"]
        assert sum(sched["kernel_shares"].values()) == pytest.approx(1.0)

    def test_analytics_opt_out(self):
        res = run(greedy, 8, 2)
        assert "schedule" not in pipeline_report(res, analytics=False)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            pipeline_report("not a sim result")
