"""Tests for the optimality search and asymptotic-optimality checks."""

import pytest

from repro.analysis import asymptotic_optimality_ratio, exhaustive_optimal_cp
from repro.analysis.optimality import column_sequences
from repro.core import critical_path
from repro.schemes import asap


class TestColumnSequences:
    def test_single_row(self):
        assert column_sequences((3,)) == ((),)

    def test_two_rows(self):
        assert column_sequences((0, 1)) == ((((1, 0),),))

    def test_three_rows_count(self):
        # 3 first choices x 1 = 3 sequences
        assert len(column_sequences((0, 1, 2))) == 3

    def test_four_rows_count(self):
        # 6 x 3 = 18
        assert len(column_sequences((0, 1, 2, 3))) == 18

    def test_all_reduce_to_min(self):
        for seq in column_sequences((2, 5, 7)):
            zeroed = {t for t, _ in seq}
            assert zeroed == {5, 7}
            for t, v in seq:
                assert v < t


class TestExhaustiveSearch:
    def test_trivial(self):
        assert exhaustive_optimal_cp(2, 1) == 6.0  # GEQRT x2 + TTQRT

    def test_column_of_four(self):
        """q=1: binary tree is optimal: 4 + 2*ceil(log2 p) ... check
        against the search."""
        opt = exhaustive_optimal_cp(4, 1)
        assert opt == critical_path("binary-tree", 4, 1)

    def test_greedy_not_optimal_on_tiles(self):
        """The paper's headline negative result via the search: on a
        15 x 2 grid Asap (hence the optimum) beats Greedy."""
        g = critical_path("greedy", 15, 2)
        a = asap(15, 2).makespan
        assert a < g  # so Greedy is not optimal at tile granularity

    @pytest.mark.parametrize("q,expected", [(4, 58), (5, 80)])
    def test_banded_matches_22q_minus_30(self, q, expected):
        """Theorem 1(3)'s instrument: banded square matrices with three
        sub-diagonals have optimal cp exactly 22q - 30 (for q >= 4)."""
        assert exhaustive_optimal_cp(q, q, band=3) == expected == 22 * q - 30

    def test_search_space_guard(self):
        with pytest.raises(ValueError, match="max_leaves"):
            exhaustive_optimal_cp(30, 30, max_leaves=10)

    def test_optimal_beats_all_schemes_small(self):
        opt = exhaustive_optimal_cp(5, 2)
        for scheme in ("greedy", "fibonacci", "flat-tree", "binary-tree"):
            assert opt <= critical_path(scheme, 5, 2)
        assert opt <= asap(5, 2).makespan


class TestAsymptoticOptimality:
    def test_greedy_ratio_approaches_one(self):
        """Theorem 1(5) numerically: cp/22q -> 1 along p = 2q."""
        import math
        qs = [8, 16, 32, 64]
        ratios = asymptotic_optimality_ratio("greedy", 2.0, qs)
        assert abs(ratios[-1] - 1.0) < 0.05
        # the excess is bounded by the vanishing log term of Thm 1(2);
        # the +2/(22q) slack covers the p=128 off-by-two in the stated
        # bound (see EXPERIMENTS.md "findings")
        for q, r in zip(qs, ratios):
            bound = 1.0 + (6 * math.ceil(math.log2(2 * q)) + 2) / (22 * q)
            assert r <= bound + 1e-9

    def test_fibonacci_ratio_approaches_one(self):
        ratios = asymptotic_optimality_ratio("fibonacci", 2.0, [8, 16, 32, 64])
        assert abs(ratios[-1] - 1.0) < 0.15

    def test_flat_tree_ratio_does_not(self):
        """Sameh-Kuck is NOT asymptotically optimal: ratio -> (6λ+16)/22."""
        ratios = asymptotic_optimality_ratio("flat-tree", 2.0, [8, 16, 32, 64])
        assert ratios[-1] > 1.2
        assert abs(ratios[-1] - 28 / 22) < 0.05
