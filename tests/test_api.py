"""Tests for the ``repro.api`` facade (S18)."""

import numpy as np
import pytest

import repro
from repro import clear_plan_cache, factor, plan, simulate
from repro.schemes.registry import get_scheme
from repro.sim.simulate import SimResult


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestExports:
    def test_top_level_reexports(self):
        for name in ("plan", "factor", "simulate", "Plan",
                     "plan_cache_stats", "clear_plan_cache",
                     "parse_scheme_spec"):
            assert hasattr(repro, name)
            assert name in repro.__all__

    def test_api_module(self):
        from repro import api
        assert api.plan is plan
        assert api.factor is factor
        assert api.simulate is simulate


class TestFactor:
    def test_matches_tiled_qr(self):
        a = np.random.default_rng(1).standard_normal((48, 24))
        f1 = factor(a, nb=8, scheme="greedy")
        f2 = repro.tiled_qr(a, nb=8, scheme="greedy")
        assert np.array_equal(f1.r(), f2.r())
        assert np.allclose(f1.q() @ f1.r(), a)

    def test_accepts_plan(self):
        a = np.random.default_rng(2).standard_normal((64, 32))
        pl = plan(8, 4, "fibonacci")
        f = factor(a, nb=8, scheme=pl)
        assert f.graph is pl.graph
        assert np.allclose(f.q() @ f.r(), a)

    def test_plan_shape_mismatch(self):
        a = np.random.default_rng(3).standard_normal((64, 32))
        pl = plan(9, 4, "greedy")
        with pytest.raises(ValueError, match="9 x 4"):
            factor(a, nb=8, scheme=pl)

    def test_plan_family_wins(self):
        a = np.random.default_rng(4).standard_normal((40, 16))
        pl = plan(5, 2, "greedy", "TS")
        f = factor(a, nb=8, scheme=pl, family="TT")
        assert f.graph is pl.graph
        assert np.allclose(f.q() @ f.r(), a)

    def test_bad_scheme_type(self):
        a = np.random.default_rng(5).standard_normal((16, 8))
        with pytest.raises(TypeError, match="scheme"):
            factor(a, nb=8, scheme=object())


class TestSimulate:
    def test_by_name(self):
        res = simulate("greedy", 15, 6)
        assert isinstance(res, SimResult)
        assert res.makespan == 128.0

    def test_requires_grid_for_names(self):
        with pytest.raises(ValueError, match="p and q"):
            simulate("greedy")

    def test_accepts_plan(self):
        pl = plan(15, 6, "greedy")
        res = simulate(pl)
        assert res is pl.unbounded()
        assert simulate(pl, 15, 6) is res

    def test_plan_shape_mismatch(self):
        pl = plan(15, 6, "greedy")
        with pytest.raises(ValueError, match="15 x 6"):
            simulate(pl, 14, 6)

    def test_accepts_elimination_list(self):
        elims = get_scheme("fibonacci", 10, 4)
        res = simulate(elims)
        assert res.makespan == simulate("fibonacci", 10, 4).makespan

    def test_bounded_and_priority(self):
        r1 = simulate("greedy", 10, 4, processors=3)
        assert r1.processors == 3
        r2 = simulate("greedy", 10, 4, processors=3, priority="fifo")
        assert r2.processors == 3
        assert simulate("greedy", 10, 4, processors=3) is r1  # memoized

    def test_spec_string(self):
        res = simulate("plasma(bs=5)", 15, 6)
        assert res.makespan == 166.0

    def test_costs(self):
        from repro.kernels.costs import Kernel
        base = simulate("greedy", 8, 4)
        heavy = simulate("greedy", 8, 4, costs={Kernel.GEQRT: 400.0})
        assert heavy.makespan > base.makespan

    def test_shares_plan_cache(self):
        res = simulate("greedy", 8, 4, processors=4)
        pl = plan(8, 4, "greedy")
        assert pl.schedule(4) is res


class TestPipelineReport:
    def test_from_plan_and_result(self):
        from repro.analysis.pipeline import pipeline_report
        pl = plan(10, 4, "greedy")
        rep = pipeline_report(pl, processors=4)
        rep2 = pipeline_report(pl.schedule(4))
        assert rep == rep2
        assert rep["makespan"] == pl.schedule(4).makespan
        assert rep["overlap"] >= 1.0
        assert len(rep["windows"]) == 4

    def test_rejects_garbage(self):
        from repro.analysis.pipeline import pipeline_report
        with pytest.raises(TypeError):
            pipeline_report(42)
