"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestCp:
    def test_basic(self, capsys):
        assert main(["cp", "greedy", "15", "6"]) == 0
        out = capsys.readouterr().out
        assert "128" in out

    def test_ts_family(self, capsys):
        assert main(["cp", "flat-tree", "15", "6", "--family", "TS"]) == 0
        assert str(12 * 15 + 18 * 6 - 32) in capsys.readouterr().out

    def test_plasma_bs(self, capsys):
        assert main(["cp", "plasma-tree", "15", "6", "--bs", "5"]) == 0
        assert "166" in capsys.readouterr().out


class TestTable:
    def test_table(self, capsys):
        assert main(["table", "greedy", "15", "3"]) == 0
        out = capsys.readouterr().out
        assert "38" in out  # last zero-out of Table 4a(a)


class TestSweep:
    def test_sweep(self, capsys):
        assert main(["sweep", "15", "6"]) == 0
        out = capsys.readouterr().out
        for name in ("greedy", "fibonacci", "flat-tree", "binary-tree"):
            assert name in out
        assert "plan cache:" in out
        # greedy first (shortest cp)
        lines = [l for l in out.splitlines() if l.strip().startswith("greedy")]
        assert lines

    def test_metrics_json(self, tmp_path, capsys):
        import json

        from repro import clear_plan_cache
        path = tmp_path / "metrics.json"
        clear_plan_cache()
        assert main(["sweep", "15", "6", "--metrics-json", str(path)]) == 0
        snap1 = json.loads(path.read_text())
        assert snap1["plan_cache"]["builds"] >= 1
        # second identical sweep: every plan is a cache hit
        assert main(["sweep", "15", "6", "--metrics-json", str(path)]) == 0
        snap2 = json.loads(path.read_text())
        delta = snap2["plan_cache"]["hits"] - snap1["plan_cache"]["hits"]
        assert delta >= 1
        assert snap2["plan_cache"]["builds"] == snap1["plan_cache"]["builds"]
        assert "plan.build.seconds" in snap2["metrics"]

    def test_scheme_spec_via_cp(self, capsys):
        assert main(["cp", "plasma(bs=5)", "15", "6"]) == 0
        assert "166" in capsys.readouterr().out


class TestTune:
    def test_tune(self, capsys):
        assert main(["tune", "15", "6"]) == 0
        out = capsys.readouterr().out
        assert "best BS" in out
        assert "*" in out


class TestFactor:
    def test_random(self, capsys):
        assert main(["factor", "--random", "48x24", "--nb", "8"]) == 0
        out = capsys.readouterr().out
        assert "backward error" in out and "stable" in out

    def test_input_file(self, tmp_path, capsys):
        a = np.random.default_rng(0).standard_normal((24, 12))
        path = tmp_path / "a.npy"
        np.save(path, a)
        assert main(["factor", "--input", str(path), "--nb", "8"]) == 0

    def test_save_and_reload(self, tmp_path, capsys):
        out_path = tmp_path / "f.npz"
        assert main(["factor", "--random", "24x12", "--nb", "8",
                     "--save", str(out_path)]) == 0
        from repro import load_factorization
        g = load_factorization(out_path)
        assert g.n == 12

    def test_missing_source(self, capsys):
        assert main(["factor"]) == 2


class TestTrace:
    def test_gantt(self, capsys):
        assert main(["trace", "greedy", "8", "3", "--workers", "4"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_csv(self, capsys):
        assert main(["trace", "greedy", "6", "2", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("task,")

    def test_json(self, capsys):
        import json
        assert main(["trace", "greedy", "6", "2", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, list) and data

    def test_priority_option(self, capsys):
        assert main(["trace", "greedy", "6", "2", "--priority",
                     "panel-first"]) == 0

    def test_chrome(self, capsys):
        import json
        assert main(["trace", "greedy", "6", "2", "--workers", "3",
                     "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs
        for e in xs:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)


class TestProfile:
    def test_profile_writes_trace_and_summary(self, tmp_path, capsys):
        import json
        out_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(["profile", "greedy", "4", "2", "--nb", "8", "--ib", "4",
                     "--backend", "reference", "--workers", "2",
                     "--out", str(out_path),
                     "--metrics-json", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "tasks.retired.GEQRT" in out
        assert "kernel.seconds.GEQRT" in out
        assert "makespan" in out
        doc = json.loads(out_path.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs and {e["pid"] for e in xs} == {1, 2}  # measured + simulated
        snap = json.loads(metrics_path.read_text())
        assert snap["tasks.retired.GEQRT"]["value"] > 0

    def test_profile_no_sim_sequential(self, tmp_path, capsys):
        import json
        out_path = tmp_path / "trace.json"
        assert main(["profile", "greedy", "3", "2", "--nb", "8", "--ib", "4",
                     "--backend", "reference", "--workers", "1", "--no-sim",
                     "--out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in xs} == {1}  # measured lanes only


class TestOverhead:
    ARGS = ["overhead", "greedy", "3", "2", "--nb", "8", "--ib", "4",
            "--workers", "2", "--start-method", "fork"]

    def test_process_mode_phase_breakdown(self, tmp_path, capsys):
        import json
        json_path = tmp_path / "overhead.json"
        assert main(self.ARGS + ["--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "overhead report" in out
        assert "IPC tax" in out
        assert "clock alignment" in out
        for phase in ("queued", "dispatched", "deserialized", "computing",
                      "published", "retired"):
            assert phase in out
        doc = json.loads(json_path.read_text())
        assert doc["distributed"] and doc["tasks"] > 0
        assert doc["aborted"] == 0
        # phase sums equal summed task latency (telescoping identity)
        lat = sum(w["latency"] for w in doc["per_worker"])
        assert abs(sum(doc["phase_totals"].values()) - lat) < 1e-6
        assert 0 < doc["max_residual_s"] < 1e-3

    def test_task_mode_degenerates(self, capsys):
        assert main(["overhead", "greedy", "3", "2", "--nb", "8",
                     "--ib", "4", "--mode", "task", "--workers", "2"]) == 0
        assert "two-phase fallback" in capsys.readouterr().out

    def test_profile_process_merged_trace_round_trips(self, tmp_path,
                                                      capsys):
        """profile --mode process writes a merged multi-lane trace that
        analyze --from-trace reads back without double-counting the
        dispatch lane."""
        import json
        out_path = tmp_path / "merged.json"
        assert main(["profile", "greedy", "3", "2", "--nb", "8",
                     "--ib", "4", "--workers", "2", "--mode", "process",
                     "--start-method", "fork", "--no-sim",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "overhead report" in out and "IPC tax" in out
        doc = json.loads(out_path.read_text())
        evs = doc["traceEvents"]
        flows = [e for e in evs if e.get("cat") == "flow"]
        assert flows and {e["ph"] for e in flows} == {"s", "f"}
        assert any(e.get("cat") == "dispatch" for e in evs)
        assert main(["analyze", "--from-trace", str(out_path)]) == 0
        report = capsys.readouterr().out
        assert "schedule report" in report


class TestAnalyze:
    def test_bounded_report(self, capsys):
        assert main(["analyze", "greedy", "30", "10", "--workers", "16"]) == 0
        out = capsys.readouterr().out
        assert "schedule report" in out
        assert "utilization" in out
        assert "critical path" in out and "(= makespan)" in out
        for kernel in ("GEQRT", "UNMQR", "TTQRT", "TTMQR"):
            assert kernel in out

    def test_unbounded_report(self, capsys):
        assert main(["analyze", "greedy", "15", "6"]) == 0
        out = capsys.readouterr().out
        assert "processors unbounded" in out
        assert "128" in out  # the Table 5 critical path

    def test_json_format(self, capsys):
        import json
        assert main(["analyze", "greedy", "8", "4", "--workers", "4",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["processors"] == 4
        assert doc["critical_path"]["length"] == doc["makespan"]
        assert len(doc["lanes"]) == 4

    def test_markdown_format(self, capsys):
        assert main(["analyze", "greedy", "6", "3", "--workers", "2",
                     "--format", "markdown"]) == 0
        assert "| kernel" in capsys.readouterr().out

    def test_from_trace(self, tmp_path, capsys):
        import json
        trace_path = tmp_path / "trace.json"
        assert main(["trace", "greedy", "6", "2", "--workers", "3",
                     "--format", "chrome"]) == 0
        trace_path.write_text(capsys.readouterr().out)
        assert main(["analyze", "--from-trace", str(trace_path)]) == 0
        assert "schedule report" in capsys.readouterr().out

    def test_trace_and_scheme_conflict(self, tmp_path, capsys):
        assert main(["analyze", "greedy", "6", "2",
                     "--from-trace", "x.json"]) == 2

    def test_missing_args(self, capsys):
        assert main(["analyze"]) == 2
        assert main(["analyze", "greedy"]) == 2

    def test_scheme_spec(self, capsys):
        assert main(["analyze", "plasma(bs=5)", "15", "6",
                     "--workers", "8"]) == 0
        assert "schedule report" in capsys.readouterr().out


class TestSweepCacheLine:
    def test_sweep_reports_evictions_and_disk_errors(self, capsys):
        assert main(["sweep", "15", "6"]) == 0
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if "plan cache:" in l)
        assert "evictions" in line
        assert "disk errors" in line


class TestProfileAnalytics:
    def test_profile_prints_report_and_overlay(self, tmp_path, capsys):
        assert main(["profile", "greedy", "4", "2", "--nb", "8", "--ib", "4",
                     "--backend", "reference", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "schedule report" in out
        assert "measured vs simulated" in out

    def test_no_analyze_flag(self, capsys):
        assert main(["profile", "greedy", "3", "2", "--nb", "8", "--ib", "4",
                     "--backend", "reference", "--workers", "1",
                     "--no-analyze"]) == 0
        out = capsys.readouterr().out
        assert "schedule report" not in out


class TestRecommend:
    def test_cp_only(self, capsys):
        assert main(["recommend", "40", "5"]) == 0
        out = capsys.readouterr().out
        assert "scheme='greedy'" in out

    def test_with_model(self, capsys):
        assert main(["recommend", "40", "5", "--cores", "48",
                     "--gamma", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "pred GFLOP/s" in out and "greedy" in out


class TestCoarse:
    def test_greedy_table(self, capsys):
        assert main(["coarse", "greedy", "15", "6"]) == 0
        out = capsys.readouterr().out
        assert "critical path 14" in out

    def test_unknown_algorithm(self, capsys):
        assert main(["coarse", "magic", "5", "2"]) == 2


class TestOptimal:
    def test_small_grid(self, capsys):
        assert main(["optimal", "4", "1"]) == 0
        out = capsys.readouterr().out
        assert "optimal critical path" in out

    def test_banded(self, capsys):
        assert main(["optimal", "4", "4", "--band", "3"]) == 0
        out = capsys.readouterr().out
        assert "58" in out  # 22q - 30 at q = 4

    def test_too_large_rejected(self, capsys):
        assert main(["optimal", "30", "30", "--max-leaves", "10"]) == 2


class TestPredict:
    def test_predict_runs(self, capsys):
        assert main(["predict", "--nb", "16", "--cores", "8", "--p", "16"]) == 0
        out = capsys.readouterr().out
        assert "gamma_seq" in out and "greedy" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fly"])


class TestProgress:
    """--progress dashboards degrade to plain stderr lines off-TTY,
    keeping stdout machine-parseable."""

    def test_factor_progress_headless(self, capsys):
        assert main(["factor", "--random", "96x48", "--nb", "16",
                     "--progress"]) == 0
        res = capsys.readouterr()
        assert "\x1b[" not in res.err        # no ANSI escapes in logs
        assert "tasks (100.0%)" in res.err   # final forced paint
        assert "backward error" in res.out   # results stay on stdout

    def test_factor_progress_batched(self, capsys):
        assert main(["factor", "--random", "96x48", "--nb", "16",
                     "--mode", "batched", "--progress"]) == 0
        res = capsys.readouterr()
        assert "tasks (100.0%)" in res.err
        assert "drift" in res.out            # predicted-vs-realized line

    def test_profile_progress(self, capsys):
        assert main(["profile", "greedy", "4", "4", "--nb", "16",
                     "--ib", "16", "--progress", "--no-sim",
                     "--no-analyze"]) == 0
        assert "tasks (100.0%)" in capsys.readouterr().err


class TestProfileExports:
    def test_events_jsonl_feeds_analyze(self, tmp_path, capsys):
        ev = tmp_path / "run.jsonl.gz"
        assert main(["profile", "greedy", "4", "4", "--nb", "16",
                     "--ib", "16", "--events", str(ev), "--no-sim",
                     "--no-analyze"]) == 0
        assert ev.exists()
        capsys.readouterr()
        assert main(["analyze", "--from-trace", str(ev)]) == 0
        out = capsys.readouterr().out
        assert "GEQRT" in out

    def test_prometheus_export_parses(self, tmp_path, capsys):
        from repro.obs import parse_prometheus_text
        prom = tmp_path / "metrics.prom"
        assert main(["profile", "greedy", "4", "4", "--nb", "16",
                     "--ib", "16", "--prometheus", str(prom),
                     "--no-sim", "--no-analyze"]) == 0
        fams = parse_prometheus_text(prom.read_text())
        assert any(n.startswith("repro_") for n in fams)
        # the sampler's process series ride along
        assert "repro_sampler_rss_bytes" in fams

    def test_batched_events(self, tmp_path, capsys):
        ev = tmp_path / "run.jsonl"
        assert main(["profile", "greedy", "4", "4", "--nb", "16",
                     "--ib", "16", "--mode", "batched", "--events",
                     str(ev), "--no-analyze"]) == 0
        from repro.obs import read_events_jsonl
        kinds = [e.kind for e in read_events_jsonl(ev)]
        assert kinds[0] == "run_start" and kinds[-1] == "run_done"
        assert "group_done" in kinds and "level_start" in kinds


class TestTop:
    def test_headless_run_summarizes(self, capsys):
        assert main(["top", "greedy", "4", "4", "--nb", "16",
                     "--ib", "16", "--mode", "batched"]) == 0
        res = capsys.readouterr()
        assert "retired 50/50 tasks" in res.out
        assert "published" in res.out and "dropped" in res.out
        assert "tasks (100.0%)" in res.err   # dashboard final paint

    def test_threaded_mode(self, capsys):
        assert main(["top", "greedy", "3", "3", "--nb", "16",
                     "--ib", "16", "--workers", "2"]) == 0
        assert "drift" in capsys.readouterr().out


class TestAnalyzeFromTrace:
    def test_chrome_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        assert main(["profile", "greedy", "4", "4", "--nb", "16",
                     "--ib", "16", "--out", str(trace), "--no-sim",
                     "--no-analyze"]) == 0
        capsys.readouterr()
        assert main(["analyze", "--from-trace", str(trace)]) == 0
        assert "GEQRT" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["analyze", "--from-trace", "/nonexistent.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err
