"""Tests for the tiled-matrix layout."""

import numpy as np
import pytest

from repro.tiles import TiledMatrix


class TestGrid:
    def test_exact_tiling(self):
        tm = TiledMatrix(np.zeros((12, 8)), 4)
        assert tm.grid == (3, 2)
        assert tm.tile(2, 1).shape == (4, 4)

    def test_ragged(self):
        tm = TiledMatrix(np.zeros((10, 7)), 4)
        assert tm.grid == (3, 2)
        assert tm.tile(2, 0).shape == (2, 4)
        assert tm.tile(0, 1).shape == (4, 3)
        assert tm.tile(2, 1).shape == (2, 3)

    def test_heights_widths(self):
        tm = TiledMatrix(np.zeros((10, 7)), 4)
        assert [tm.row_height(i) for i in range(3)] == [4, 4, 2]
        assert [tm.col_width(j) for j in range(2)] == [4, 3]

    def test_tile_is_view(self):
        a = np.zeros((8, 8))
        tm = TiledMatrix(a, 4)
        tm.tile(1, 1)[...] = 7.0
        assert np.all(a[4:, 4:] == 7.0)
        assert np.all(a[:4, :] == 0.0)

    def test_out_of_range(self):
        tm = TiledMatrix(np.zeros((8, 8)), 4)
        with pytest.raises(IndexError):
            tm.tile(2, 0)
        with pytest.raises(IndexError):
            tm.tile(0, -1)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            TiledMatrix(np.zeros(5), 2)
        with pytest.raises(ValueError):
            TiledMatrix(np.zeros((4, 4)), 0)

    def test_single_tile(self):
        tm = TiledMatrix(np.zeros((3, 3)), 8)
        assert tm.grid == (1, 1)
        assert tm.tile(0, 0).shape == (3, 3)

    def test_repr(self):
        tm = TiledMatrix(np.zeros((8, 4)), 4)
        assert "p=2" in repr(tm) and "q=1" in repr(tm)

    def test_tiles_cover_matrix(self):
        a = np.arange(110.0).reshape(11, 10)
        tm = TiledMatrix(a, 3)
        seen = np.zeros_like(a, dtype=bool)
        for i in range(tm.p):
            for j in range(tm.q):
                t = tm.tile(i, j)
                r0, c0 = i * 3, j * 3
                seen[r0 : r0 + t.shape[0], c0 : c0 + t.shape[1]] = True
                assert np.array_equal(t, a[r0 : r0 + t.shape[0], c0 : c0 + t.shape[1]])
        assert seen.all()
