"""TilePool gather/scatter/take/put round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiles import TiledMatrix, TilePool
from tests.conftest import random_matrix

shapes = st.tuples(st.integers(min_value=1, max_value=40),
                   st.integers(min_value=1, max_value=40),
                   st.integers(min_value=1, max_value=9),
                   st.integers(min_value=0, max_value=10_000))


class TestRoundTrip:
    @given(shapes)
    @settings(max_examples=60, deadline=None)
    def test_gather_scatter_identity(self, mns):
        m, n, nb, seed = mns
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        tm = TiledMatrix(a.copy(), nb)
        pool = TilePool(tm)
        tm.array[...] = 0.0  # scatter must restore every element
        pool.scatter()
        assert np.array_equal(tm.array, a)

    @given(shapes)
    @settings(max_examples=40, deadline=None)
    def test_take_put_round_trip(self, mns):
        m, n, nb, seed = mns
        rng = np.random.default_rng(seed)
        tm = TiledMatrix(rng.standard_normal((m, n)), nb)
        pool = TilePool(tm)
        before = pool.stack.copy()
        slots = rng.permutation(pool.ntiles)[: max(1, pool.ntiles // 2)]
        batch = pool.take(slots)
        assert batch.base is None  # a copy, not a view of the pool
        pool.put(slots, batch)
        assert np.array_equal(pool.stack, before)

    def test_ragged_slots_zero_padded(self, rng):
        a = np.asarray(random_matrix(rng, 7, 5, np.float64))
        tm = TiledMatrix(a.copy(), 4)
        pool = TilePool(tm)
        assert pool.stack.shape == (4, 4, 4)
        assert pool.stack.flags["C_CONTIGUOUS"]
        # bottom-right ragged tile: valid 3 x 1, rest zero
        corner = pool.stack[pool.slot(1, 1)]
        assert np.array_equal(corner[:3, :1], a[4:, 4:])
        assert np.all(corner[3:, :] == 0.0) and np.all(corner[:, 1:] == 0.0)

    def test_slot_accepts_arrays(self, rng):
        tm = TiledMatrix(np.asarray(random_matrix(rng, 12, 8, np.float64)), 4)
        pool = TilePool(tm)
        i = np.array([0, 1, 2])
        j = np.array([1, 0, 1])
        np.testing.assert_array_equal(pool.slot(i, j), i * pool.q + j)

    def test_modified_pool_scatters_back(self, rng, dtype):
        a = np.asarray(random_matrix(rng, 10, 6, dtype))
        tm = TiledMatrix(a.copy(), 4)
        pool = TilePool(tm)
        slots = pool.slot(np.array([0, 1, 2]), np.array([0, 1, 0]))
        batch = pool.take(slots)
        batch *= 2.0
        pool.put(slots, batch)
        pool.scatter()
        expected = a.copy()
        expected[0:4, 0:4] *= 2.0
        expected[4:8, 4:6] *= 2.0
        expected[8:10, 0:4] *= 2.0
        assert np.allclose(tm.array, expected)
