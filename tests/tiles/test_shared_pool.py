"""Shared-memory tile pool: cross-process round-trips, no torn writes.

The process backend's correctness rests on two properties tested here
against real child processes (fork start method — the suite runs on
Linux CI):

* ragged edge tiles scatter back *exactly* (bit-for-bit) after being
  mutated in place from a different process;
* concurrent writers touching disjoint slots never tear each other's
  tiles — every slot holds exactly one writer's fill pattern.
"""

import multiprocessing as mp
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiles import SharedArray, SharedTilePool, TiledMatrix, TilePool
from tests.conftest import random_matrix

shapes = st.tuples(st.integers(min_value=1, max_value=40),
                   st.integers(min_value=1, max_value=40),
                   st.integers(min_value=1, max_value=9),
                   st.integers(min_value=0, max_value=10_000))


def _fill_child(handle, value):
    sa = SharedArray.attach(handle)
    sa.array[...] = value
    sa.close()


def _negate_valid_regions(handle, regions):
    """Child: negate the valid region of every listed slot in place."""
    sa = SharedArray.attach(handle)
    for s, hi, wj in regions:
        sa.array[s, :hi, :wj] *= -1.0
    sa.close()


def _fill_slots(handle, slots, value):
    sa = SharedArray.attach(handle)
    for s in slots:
        sa.array[s, :, :] = value
    sa.close()


class TestSharedArray:
    def test_round_trip_same_process(self):
        sa = SharedArray((3, 4), np.float64)
        sa.array[...] = np.arange(12.0).reshape(3, 4)
        other = SharedArray.attach(sa.handle())
        assert np.array_equal(other.array, np.arange(12.0).reshape(3, 4))
        other.array[1, 2] = -5.0
        assert sa.array[1, 2] == -5.0
        other.close()
        sa.close()

    def test_handle_is_picklable(self):
        sa = SharedArray((2, 2), np.complex128)
        handle = pickle.loads(pickle.dumps(sa.handle()))
        other = SharedArray.attach(handle)
        assert other.array.dtype == np.complex128
        other.close()
        sa.close()

    def test_close_idempotent_and_invalidates(self):
        sa = SharedArray((2,), np.float64)
        sa.close()
        sa.close()
        assert sa.array is None

    def test_cross_process_write(self):
        sa = SharedArray((4, 4), np.float64)
        sa.array[...] = 0.0
        p = mp.Process(target=_fill_child, args=(sa.handle(), 7.5))
        p.start()
        p.join(30)
        assert p.exitcode == 0
        assert np.all(sa.array == 7.5)
        sa.close()

    def test_zero_size_array(self):
        sa = SharedArray((0, 3), np.float64)
        assert sa.array.shape == (0, 3)
        sa.close()


class TestSharedTilePool:
    def test_matches_private_pool_layout(self, rng):
        a = np.asarray(random_matrix(rng, 23, 11, np.float64))
        tm = TiledMatrix(a.copy(), 8)
        tm2 = TiledMatrix(a.copy(), 8)
        spool = SharedTilePool(tm)
        try:
            assert np.array_equal(spool.stack, TilePool(tm2).stack)
            assert spool.stack.flags["C_CONTIGUOUS"]
        finally:
            spool.close()

    @given(shapes)
    @settings(max_examples=25, deadline=None)
    def test_gather_scatter_identity(self, mns):
        m, n, nb, seed = mns
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        tm = TiledMatrix(a.copy(), nb)
        pool = SharedTilePool(tm)
        try:
            tm.array[...] = 0.0
            pool.scatter()
            assert np.array_equal(tm.array, a)
        finally:
            pool.close()

    def test_ragged_cross_process_round_trip(self, rng, dtype):
        """A child negates every ragged tile's valid region in place;
        scatter must reproduce exactly -a, and padding must stay 0."""
        a = np.asarray(random_matrix(rng, 23, 11, dtype))  # nb=8: ragged
        tm = TiledMatrix(a.copy(), 8)
        pool = SharedTilePool(tm)
        try:
            regions = [(pool.slot(i, j), tm.row_height(i), tm.col_width(j))
                       for i in range(pool.p) for j in range(pool.q)]
            p = mp.Process(target=_negate_valid_regions,
                           args=(pool.handle(), regions))
            p.start()
            p.join(30)
            assert p.exitcode == 0
            pool.scatter()
            assert np.array_equal(tm.array, -a)  # exact, not approximate
            # padding of the ragged border slots is untouched
            corner = pool.stack[pool.slot(pool.p - 1, pool.q - 1)]
            hi, wj = tm.row_height(pool.p - 1), tm.col_width(pool.q - 1)
            assert np.all(corner[hi:, :] == 0.0)
            assert np.all(corner[:, wj:] == 0.0)
        finally:
            pool.close()

    def test_concurrent_disjoint_slot_writes_never_tear(self, rng):
        """Four children each flood their own slot subset; every slot
        must come back uniformly equal to its writer's value."""
        tm = TiledMatrix(rng.standard_normal((64, 64)), 8)
        pool = SharedTilePool(tm)
        try:
            nw = 4
            groups = [list(range(w, pool.ntiles, nw)) for w in range(nw)]
            procs = [mp.Process(target=_fill_slots,
                                args=(pool.handle(), g, float(w + 1)))
                     for w, g in enumerate(groups)]
            for p in procs:
                p.start()
            for p in procs:
                p.join(30)
                assert p.exitcode == 0
            for w, g in enumerate(groups):
                for s in g:
                    slot = pool.stack[s]
                    assert np.all(slot == float(w + 1)), (
                        f"slot {s} torn: writer {w + 1}, "
                        f"values {np.unique(slot)}")
        finally:
            pool.close()

    def test_context_manager_closes(self, rng):
        tm = TiledMatrix(rng.standard_normal((16, 16)), 8)
        with SharedTilePool(tm) as pool:
            handle = pool.handle()
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(handle)
