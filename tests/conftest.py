"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest


def random_matrix(rng, m, n, dtype=np.float64):
    """Well-conditioned random matrix of the requested dtype."""
    a = rng.standard_normal((m, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal((m, n))
    return np.ascontiguousarray(a.astype(dtype))


def random_elimination_list(rng, p, q, name="random", allow_reverse=False):
    """A uniformly random *valid* elimination list (per-column reductions).

    Each column picks random eliminations until a single survivor (the
    diagonal row) remains; columns are concatenated in order, which
    satisfies both Section-2.2 validity conditions.  With
    ``allow_reverse=True`` pivots may sit *below* their target (the
    reverse eliminations Lemma 1 removes).
    """
    from repro.schemes.elimination import Elimination, EliminationList

    elims = []
    for k in range(min(p, q)):
        alive = list(range(k, p))
        while len(alive) > 1:
            ti = int(rng.integers(1, len(alive)))
            if allow_reverse:
                choices = [x for x in range(len(alive)) if x != ti]
                pi = int(choices[rng.integers(0, len(choices))])
            else:
                pi = int(rng.integers(0, ti))
            elims.append(Elimination(alive[ti], alive[pi], k))
            del alive[ti]
    return EliminationList(p, q, elims, name=name)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(params=[np.float64, np.complex128], ids=["real", "complex"])
def dtype(request):
    return request.param
