"""Tests for the Plan object and the ``plan()`` entry point (S18)."""

import numpy as np
import pytest

from repro.dag.build import build_dag
from repro.kernels.costs import Kernel, KernelFamily
from repro.planner import clear_plan_cache, load_plan, plan, save_plan
from repro.schemes.registry import get_scheme
from repro.sim.simulate import simulate_bounded, simulate_unbounded


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestPlanObject:
    def test_matches_direct_construction(self):
        pl = plan(15, 6, "greedy")
        elims = get_scheme("greedy", 15, 6)
        g = build_dag(elims, KernelFamily.TT)
        assert list(pl.elims) == list(elims)
        assert len(pl) == len(g)
        assert pl.critical_path() == simulate_unbounded(g).makespan == 128.0

    def test_zero_out_steps(self):
        pl = plan(15, 6, "greedy")
        tb = pl.zero_out_steps()
        assert tb.shape == (15, 6)
        assert tb.max() == pl.critical_path()

    def test_schedule_memoized(self):
        pl = plan(8, 4, "fibonacci")
        r1 = pl.schedule(4)
        r2 = pl.schedule(4)
        assert r1 is r2
        assert pl.schedule(None) is pl.unbounded()
        # explicit vectors are not memoized
        prio = np.arange(len(pl), dtype=np.float64)
        v1 = pl.schedule(4, prio)
        v2 = pl.schedule(4, prio)
        assert v1 is not v2
        assert np.array_equal(v1.start, v2.start)

    def test_schedule_matches_simulator(self):
        pl = plan(10, 4, "greedy")
        ref = simulate_bounded(pl.graph, 5, priority="critical-path")
        got = pl.schedule(5)
        assert np.array_equal(got.start, ref.start)
        assert np.array_equal(got.worker, ref.worker)

    def test_rescaled(self):
        pl = plan(8, 4, "greedy")
        heavy = {Kernel.GEQRT: 100.0}
        derived = pl.rescaled(heavy)
        assert derived.key is None
        assert derived.critical_path() > pl.critical_path()
        # the source plan is untouched
        assert pl.critical_path() == plan(8, 4, "greedy").critical_path()
        # structure shared, weights distinct
        assert derived.index.pred_adj is pl.index.pred_adj
        assert not np.array_equal(derived.index.weights, pl.index.weights)


class TestPlanInputs:
    def test_elimination_list_input(self):
        elims = get_scheme("fibonacci", 10, 4)
        pl = plan(10, 4, elims)
        assert pl.key is None and pl.scheme is None
        assert pl.critical_path() == plan(10, 4, "fibonacci").critical_path()

    def test_elimination_list_shape_mismatch(self):
        elims = get_scheme("greedy", 10, 4)
        with pytest.raises(ValueError, match="10 x 4"):
            plan(9, 4, elims)

    def test_plan_passthrough(self):
        pl = plan(8, 4, "greedy")
        assert plan(8, 4, pl) is pl

    def test_plan_passthrough_mismatch(self):
        pl = plan(8, 4, "greedy")
        with pytest.raises(ValueError, match="8 x 4"):
            plan(9, 4, pl)
        with pytest.raises(ValueError, match="family"):
            plan(8, 4, pl, family="TS")

    def test_bad_scheme_type(self):
        with pytest.raises(TypeError, match="scheme"):
            plan(8, 4, 12345)

    def test_spec_string_equals_params(self):
        a = plan(15, 6, "plasma(bs=5)")
        b = plan(15, 6, "plasma-tree", bs=5)
        assert a is b  # same canonical signature -> same cached object
        assert a.scheme == "plasma-tree(bs=5)"

    def test_kwargs_override_spec(self):
        a = plan(15, 6, "plasma(bs=3)", bs=5)
        assert a is plan(15, 6, "plasma-tree", bs=5)


class TestSaveLoad:
    def test_round_trip_equals_fresh(self, tmp_path):
        fresh = plan(15, 6, "plasma-tree", "TS", bs=4)
        path = tmp_path / "p.npz"
        save_plan(fresh, path)
        loaded = load_plan(path)
        assert (loaded.p, loaded.q) == (15, 6)
        assert loaded.family is KernelFamily.TS
        assert loaded.scheme == fresh.scheme
        assert loaded.key == fresh.key
        assert list(loaded.elims) == list(fresh.elims)
        assert len(loaded.graph) == len(fresh.graph)
        for a, b in zip(loaded.graph.tasks, fresh.graph.tasks):
            assert (a.tid, a.kernel, a.row, a.piv, a.col, a.j,
                    a.weight, a.deps) == \
                   (b.tid, b.kernel, b.row, b.piv, b.col, b.j,
                    b.weight, b.deps)
        ra, rb = simulate_unbounded(loaded.graph), fresh.unbounded()
        assert np.array_equal(ra.start, rb.start)
        assert np.array_equal(ra.finish, rb.finish)

    def test_round_trip_with_costs(self, tmp_path):
        costs = {Kernel.GEQRT: 7.5, Kernel.TTQRT: 1.25}
        fresh = plan(8, 4, "greedy", costs=costs)
        path = tmp_path / "c.npz"
        save_plan(fresh, path)
        loaded = load_plan(path)
        assert loaded.costs == fresh.costs
        assert loaded.key == fresh.key
        assert simulate_unbounded(loaded.graph).makespan == \
            fresh.critical_path()

    def test_version_check(self, tmp_path):
        fresh = plan(4, 2, "greedy")
        path = tmp_path / "v.npz"
        save_plan(fresh, path)
        import numpy as _np

        from repro.core._npz import pack_meta, unpack_meta
        with _np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
            meta = unpack_meta(data)
        meta["version"] = 99
        arrays["meta"] = pack_meta(meta)
        _np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="format"):
            load_plan(path)
