"""Tests for the two-tier plan cache (S18).

The process-wide :data:`~repro.planner.cache.PLAN_METRICS` registry is
cumulative, so every assertion below compares *deltas* around the call
under test, never absolute counter values.
"""

import numpy as np
import pytest

from repro.kernels.costs import Kernel, KernelFamily
from repro.planner import (
    clear_plan_cache,
    plan,
    plan_cache_dir,
    plan_cache_stats,
    plan_signature,
)


@pytest.fixture(autouse=True)
def _fresh_cache(monkeypatch):
    monkeypatch.delenv("REPRO_PLAN_CACHE", raising=False)
    monkeypatch.delenv("REPRO_PLAN_CACHE_SIZE", raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


def _delta(before, after):
    return {k: after[k] - before[k] for k in after}


class TestSignature:
    def test_distinguishes_every_input(self):
        base = plan_signature("greedy", 15, 6, KernelFamily.TT)
        assert plan_signature("greedy", 15, 6, KernelFamily.TS) != base
        assert plan_signature("greedy", 16, 6, KernelFamily.TT) != base
        assert plan_signature("greedy", 15, 5, KernelFamily.TT) != base
        assert plan_signature("fibonacci", 15, 6, KernelFamily.TT) != base
        assert plan_signature("greedy", 15, 6, KernelFamily.TT,
                              {Kernel.GEQRT: 5.0}) != base

    def test_params_in_spec(self):
        a = plan_signature("plasma-tree(bs=4)", 15, 6, KernelFamily.TT)
        b = plan_signature("plasma-tree(bs=5)", 15, 6, KernelFamily.TT)
        assert a != b

    def test_stable_across_cost_ordering(self):
        c1 = {Kernel.GEQRT: 1.0, Kernel.TTQRT: 2.0}
        c2 = {Kernel.TTQRT: 2.0, Kernel.GEQRT: 1.0}
        assert plan_signature("greedy", 8, 4, KernelFamily.TT, c1) == \
            plan_signature("greedy", 8, 4, KernelFamily.TT, c2)


class TestMemoryTier:
    def test_hit_returns_same_object(self):
        a = plan(15, 6, "greedy")
        before = plan_cache_stats()
        b = plan(15, 6, "greedy")
        d = _delta(before, plan_cache_stats())
        assert a is b
        assert d["memory.hits"] == 1 and d["builds"] == 0

    def test_no_false_hits_across_family_params_costs(self):
        tt = plan(15, 6, "greedy")
        ts = plan(15, 6, "greedy", "TS")
        costed = plan(15, 6, "greedy", costs={Kernel.GEQRT: 40.0})
        bs4 = plan(15, 6, "plasma-tree", bs=4)
        bs5 = plan(15, 6, "plasma-tree", bs=5)
        plans = [tt, ts, costed, bs4, bs5]
        assert len({id(p) for p in plans}) == 5
        assert len({p.key for p in plans}) == 5
        assert tt.critical_path() != ts.critical_path()
        assert costed.critical_path() != tt.critical_path()
        assert bs4.critical_path() != bs5.critical_path()

    def test_cache_false_bypasses(self):
        a = plan(8, 4, "greedy")
        before = plan_cache_stats()
        b = plan(8, 4, "greedy", cache=False)
        d = _delta(before, plan_cache_stats())
        assert b is not a
        assert d["memory.hits"] == 0 and d["builds"] == 1

    def test_lru_eviction(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "2")
        a = plan(4, 2, "greedy")
        plan(5, 2, "greedy")
        plan(6, 2, "greedy")  # evicts (4, 2)
        before = plan_cache_stats()
        a2 = plan(4, 2, "greedy")
        d = _delta(before, plan_cache_stats())
        assert a2 is not a
        assert d["builds"] == 1
        # (6, 2) is still resident
        before = plan_cache_stats()
        plan(6, 2, "greedy")
        assert _delta(before, plan_cache_stats())["memory.hits"] == 1

    def test_lru_recency_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "2")
        a = plan(4, 2, "greedy")
        plan(5, 2, "greedy")
        assert plan(4, 2, "greedy") is a  # refresh (4, 2)
        plan(6, 2, "greedy")  # evicts (5, 2), not (4, 2)
        assert plan(4, 2, "greedy") is a


class TestDiskTier:
    def test_round_trip_equals_fresh(self, tmp_path):
        fresh = plan(15, 6, "fibonacci", "TS", disk_cache=tmp_path)
        assert (tmp_path / f"{fresh.key}.npz").is_file()
        clear_plan_cache()
        before = plan_cache_stats()
        loaded = plan(15, 6, "fibonacci", "TS", disk_cache=tmp_path)
        d = _delta(before, plan_cache_stats())
        assert d["disk.hits"] == 1 and d["builds"] == 0
        assert loaded is not fresh
        assert loaded.key == fresh.key
        assert list(loaded.elims) == list(fresh.elims)
        ra, rb = loaded.unbounded(), fresh.unbounded()
        assert np.array_equal(ra.start, rb.start)
        assert np.array_equal(ra.finish, rb.finish)

    def test_disk_hit_populates_memory(self, tmp_path):
        plan(8, 4, "greedy", disk_cache=tmp_path)
        clear_plan_cache()
        loaded = plan(8, 4, "greedy", disk_cache=tmp_path)
        before = plan_cache_stats()
        again = plan(8, 4, "greedy", disk_cache=tmp_path)
        d = _delta(before, plan_cache_stats())
        assert again is loaded
        assert d["memory.hits"] == 1 and d["disk.hits"] == 0

    def test_corrupt_entry_rebuilds(self, tmp_path):
        fresh = plan(8, 4, "greedy", disk_cache=tmp_path)
        path = tmp_path / f"{fresh.key}.npz"
        path.write_bytes(b"not an npz archive")
        clear_plan_cache()
        before = plan_cache_stats()
        rebuilt = plan(8, 4, "greedy", disk_cache=tmp_path)
        d = _delta(before, plan_cache_stats())
        assert d["disk.hits"] == 0 and d["builds"] == 1
        assert rebuilt.critical_path() == fresh.critical_path()
        # the fresh build overwrote the corrupt entry
        clear_plan_cache()
        before = plan_cache_stats()
        plan(8, 4, "greedy", disk_cache=tmp_path)
        assert _delta(before, plan_cache_stats())["disk.hits"] == 1

    def test_env_var_controls_tier(self, tmp_path, monkeypatch):
        assert plan_cache_dir() is None  # default: off
        monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path))
        assert plan_cache_dir() == tmp_path
        monkeypatch.setenv("REPRO_PLAN_CACHE", "off")
        assert plan_cache_dir() is None
        monkeypatch.setenv("REPRO_PLAN_CACHE", "1")
        assert plan_cache_dir() is not None
        # the disk_cache argument wins over the environment
        monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path))
        assert plan_cache_dir(False) is None

    def test_env_var_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path))
        fresh = plan(6, 3, "greedy")
        assert (tmp_path / f"{fresh.key}.npz").is_file()
        clear_plan_cache()
        before = plan_cache_stats()
        plan(6, 3, "greedy")
        assert _delta(before, plan_cache_stats())["disk.hits"] == 1


class TestFailureCounters:
    """Evictions and disk-tier failures must show up in the stats."""

    def test_stats_expose_failure_keys(self):
        stats = plan_cache_stats()
        for key in ("memory.evictions", "disk.load_errors",
                    "disk.write_errors", "disk.errors"):
            assert key in stats

    def test_eviction_counter(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "2")
        before = plan_cache_stats()
        plan(4, 2, "greedy")
        plan(5, 2, "greedy")
        plan(6, 2, "greedy")  # third insert evicts the first
        d = _delta(before, plan_cache_stats())
        assert d["memory.evictions"] == 1

    def test_corrupt_entry_counts_load_error(self, tmp_path):
        fresh = plan(8, 4, "greedy", disk_cache=tmp_path)
        (tmp_path / f"{fresh.key}.npz").write_bytes(b"not an npz archive")
        clear_plan_cache()
        before = plan_cache_stats()
        plan(8, 4, "greedy", disk_cache=tmp_path)
        d = _delta(before, plan_cache_stats())
        assert d["disk.load_errors"] == 1
        assert d["disk.errors"] == 1
        assert d["disk.write_errors"] == 0

    def test_failed_write_counts_write_error(self, tmp_path, monkeypatch):
        # chmod tricks don't work under root, so fail the save itself
        # (importlib: the package re-exports a `plan` *function*, which
        # shadows the submodule on attribute access)
        import importlib

        plan_mod = importlib.import_module("repro.planner.plan")

        def boom(p, path):
            raise OSError("disk full")

        monkeypatch.setattr(plan_mod, "save_plan", boom)
        before = plan_cache_stats()
        pl = plan(8, 4, "greedy", disk_cache=tmp_path)
        d = _delta(before, plan_cache_stats())
        assert pl is not None  # the failure is non-fatal
        assert d["disk.write_errors"] == 1
        assert d["disk.errors"] == 1
        assert not list(tmp_path.glob("*.npz"))

    def test_disk_errors_is_the_sum(self):
        stats = plan_cache_stats()
        assert stats["disk.errors"] == (stats["disk.load_errors"]
                                        + stats["disk.write_errors"])
