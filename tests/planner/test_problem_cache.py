"""Cross-family plan-cache isolation (S18 satellite).

Two problem families at the same grid shape must never share a cache
entry — the signature covers the family, and neither the LRU nor the
disk tier may cross-hit.
"""

import pytest

from repro.kernels.costs import KernelFamily
from repro.planner import (
    clear_plan_cache,
    plan,
    plan_cache_stats,
    plan_signature,
)


@pytest.fixture(autouse=True)
def _fresh_cache(monkeypatch):
    monkeypatch.delenv("REPRO_PLAN_CACHE", raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


def _stat(name):
    """Read one cumulative counter from the plan-cache metrics."""
    return plan_cache_stats().get(name, 0.0)


class TestSignature:
    def test_families_distinct_at_same_shape(self):
        # identical (p, q); only the problem family differs
        qr = plan_signature("greedy", 8, 8, KernelFamily.TT, problem="qr")
        lu = plan_signature("lu(p=8,q=8)", 8, 8, None, problem="lu")
        chol = plan_signature("cholesky(t=8)", 8, 8, None, problem="cholesky")
        assert len({qr, lu, chol}) == 3

    def test_same_inputs_stable(self):
        a = plan_signature("lu(p=8,q=8)", 8, 8, None, problem="lu")
        b = plan_signature("lu(p=8,q=8)", 8, 8, None, problem="lu")
        assert a == b


class TestMemoryTier:
    def test_no_cross_family_lru_hit(self):
        qr = plan(8, 8, "greedy")
        lu = plan("lu(p=8,q=8)")
        chol = plan("cholesky(t=8)")
        keys = {qr.key, lu.key, chol.key}
        assert len(keys) == 3
        # each re-request returns its own object, not a neighbour's
        assert plan(8, 8, "greedy") is qr
        assert plan("lu(p=8,q=8)") is lu
        assert plan("cholesky(t=8)") is chol
        assert plan("lu(p=8,q=8)") is not qr

    def test_graphs_are_family_labeled(self):
        assert plan(8, 8, "greedy").graph.problem == "qr"
        assert plan("lu(p=8,q=8)").graph.problem == "lu"


class TestDiskTier:
    def test_no_cross_family_disk_load(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path))
        qr = plan(8, 8, "greedy")
        lu = plan("lu(p=8,q=8)")
        # drop the memory tier only; disk entries survive
        clear_plan_cache()
        builds = _stat("builds")
        disk_hits = _stat("disk.hits")
        qr2 = plan(8, 8, "greedy")
        lu2 = plan("lu(p=8,q=8)")
        assert _stat("builds") == builds  # nothing rebuilt...
        assert _stat("disk.hits") == disk_hits + 2  # ...both were disk hits
        assert qr2.key == qr.key and qr2.problem == "qr"
        assert lu2.key == lu.key and lu2.problem == "lu"
        assert qr2.critical_path() == qr.critical_path()
        assert lu2.critical_path() == lu.critical_path()
        assert len(lu2.graph.tasks) == len(lu.graph.tasks)

    def test_disk_entries_are_per_key(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path))
        plan(8, 8, "greedy")
        plan("lu(p=8,q=8)")
        plan("cholesky(t=8)")
        entries = list(tmp_path.glob("*.npz"))
        assert len(entries) == 3
