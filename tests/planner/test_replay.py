"""Tests for progress-vs-simulation replay (live ETA, S21)."""

import pytest

from repro.planner import ScheduleReplay, plan


class _FakeSim:
    def __init__(self, finish, makespan=None):
        self.finish = finish
        self.makespan = makespan if makespan is not None else max(finish)


class TestSimTimeAt:
    def test_maps_done_count_to_sorted_finish(self):
        r = ScheduleReplay(_FakeSim([3.0, 1.0, 2.0]))
        assert r.sim_time_at(0) == 0.0
        assert r.sim_time_at(1) == 1.0
        assert r.sim_time_at(2) == 2.0
        assert r.sim_time_at(3) == 3.0
        assert r.sim_time_at(99) == 3.0  # clamped

    def test_empty_schedule(self):
        r = ScheduleReplay(_FakeSim([], makespan=0.0))
        assert r.sim_time_at(1) == 0.0


class TestEstimate:
    def test_no_prediction_before_first_retirement(self):
        r = ScheduleReplay(_FakeSim([1.0, 2.0]))
        est = r.estimate(0, 0.5)
        assert est.predicted_makespan is None
        assert est.remaining is None and est.drift is None
        assert est.fraction == 0.0

    def test_linear_machine_predicts_exactly(self):
        # wall time = 2x simulated time, uniformly: after any progress
        # point the predicted makespan is 2 x sim makespan
        r = ScheduleReplay(_FakeSim([1.0, 2.0, 4.0]))
        est = r.estimate(1, 2.0)
        assert est.predicted_makespan == pytest.approx(8.0)
        assert est.remaining == pytest.approx(6.0)
        assert est.drift == 0.0  # first prediction is its own baseline

    def test_drift_tracks_slowdown(self):
        r = ScheduleReplay(_FakeSim([1.0, 2.0, 4.0]))
        r.estimate(1, 2.0)            # baseline: predicted 8.0
        est = r.estimate(2, 6.0)      # rate worsened: 3 s/model-unit
        assert est.predicted_makespan == pytest.approx(12.0)
        assert est.drift == pytest.approx(0.5)

    def test_converges_at_completion(self):
        r = ScheduleReplay(_FakeSim([1.0, 2.0, 4.0]))
        r.estimate(1, 1.7)
        est = r.estimate(3, 9.0)      # all done at wall time 9
        # exchange rate is now measured over the whole schedule
        assert est.predicted_makespan == pytest.approx(9.0)
        assert est.remaining == 0.0
        assert est.sim_fraction == 1.0

    def test_first_predicted_property_and_reset(self):
        r = ScheduleReplay(_FakeSim([1.0, 2.0]))
        assert r.first_predicted is None
        r.estimate(1, 3.0)
        assert r.first_predicted == pytest.approx(6.0)
        r.reset()
        assert r.first_predicted is None

    def test_to_dict(self):
        est = ScheduleReplay(_FakeSim([1.0])).estimate(1, 2.0)
        d = est.to_dict()
        assert d["done"] == 1 and d["predicted_makespan"] == 2.0


class TestPlanReplay:
    def test_plan_builds_replay_from_memoized_schedules(self):
        pl = plan(4, 4, "greedy")
        unbounded = pl.replay(None)
        bounded = pl.replay(2)
        assert unbounded.total == len(pl.graph.tasks)
        assert bounded.total == len(pl.graph.tasks)
        # a 2-lane machine can only be slower than unbounded ASAP
        assert bounded.sim_makespan >= unbounded.sim_makespan
