"""Cross-cutting property-based tests tying the whole stack together.

These hypothesis tests sample *arbitrary valid elimination lists* — not
just the named schemes — and assert the paper's structural invariants
hold for all of them, plus that the numeric layer agrees with the
analytic layer on every sample.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.formulas import optimal_cp_lower_bound
from repro.dag import build_dag
from repro.kernels.costs import total_weight
from repro.runtime import execute_graph
from repro.sim import simulate_bounded, simulate_unbounded
from repro.tiles import TiledMatrix
from tests.conftest import random_elimination_list

grid = st.tuples(st.integers(min_value=2, max_value=10),
                 st.integers(min_value=1, max_value=6),
                 st.integers(min_value=0, max_value=100_000))


class TestStructuralInvariants:
    @given(grid, st.sampled_from(["TT", "TS"]))
    @settings(max_examples=60, deadline=None)
    def test_weight_invariant_any_list(self, pqs, family):
        p, q, seed = pqs
        q = min(p, q)
        el = random_elimination_list(np.random.default_rng(seed), p, q)
        assert build_dag(el, family).total_weight() == total_weight(p, q)

    @given(grid)
    @settings(max_examples=40, deadline=None)
    def test_cp_bounds_any_list(self, pqs):
        p, q, seed = pqs
        q = min(p, q)
        el = random_elimination_list(np.random.default_rng(seed), p, q)
        g = build_dag(el, "TT")
        cp = simulate_unbounded(g).makespan
        assert cp <= g.total_weight()
        if q >= 4:
            assert cp >= optimal_cp_lower_bound(q)

    @given(grid)
    @settings(max_examples=30, deadline=None)
    def test_zero_out_monotone_any_list(self, pqs):
        p, q, seed = pqs
        q = min(p, q)
        el = random_elimination_list(np.random.default_rng(seed), p, q)
        tb = simulate_unbounded(build_dag(el, "TT")).zero_out_table()
        for i in range(p):
            cols = [k for k in range(min(i, q))]
            vals = [tb[i, k] for k in cols]
            assert all(v > 0 for v in vals)
            assert vals == sorted(vals)

    @given(grid)
    @settings(max_examples=20, deadline=None)
    def test_canonicalize_idempotent(self, pqs):
        p, q, seed = pqs
        q = min(p, q)
        el = random_elimination_list(np.random.default_rng(seed), p, q,
                                     allow_reverse=True)
        c1 = el.canonicalize()
        c2 = c1.canonicalize()
        assert [tuple(e) for e in c1] == [tuple(e) for e in c2]


class TestNumericAgreement:
    @given(st.tuples(st.integers(min_value=2, max_value=6),
                     st.integers(min_value=1, max_value=4),
                     st.integers(min_value=0, max_value=10_000)),
           st.sampled_from(["TT", "TS"]))
    @settings(max_examples=20, deadline=None)
    def test_random_tree_factorizes_correctly(self, pqs, family):
        """ANY valid elimination list yields a correct QR."""
        p, q, seed = pqs
        q = min(p, q)
        rng = np.random.default_rng(seed)
        el = random_elimination_list(rng, p, q)
        nb = 4
        a = rng.standard_normal((p * nb, q * nb))
        tiled = TiledMatrix(a.copy(), nb)
        g = build_dag(el, family)
        ctx = execute_graph(g, tiled, ib=2)
        c = a.copy()
        ctx.apply_q(c, adjoint=True)
        n = q * nb
        assert np.allclose(c[:n], np.triu(tiled.array[:n]), atol=1e-10)
        assert np.allclose(c[n:], 0, atol=1e-10)
        # orthogonal transform preserves column norms
        assert np.allclose(np.linalg.norm(c, axis=0),
                           np.linalg.norm(a, axis=0), atol=1e-9)

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_bounded_schedule_valid_any_list(self, seed, workers):
        rng = np.random.default_rng(seed)
        el = random_elimination_list(rng, 7, 4)
        g = build_dag(el, "TT")
        res = simulate_bounded(g, workers)
        for t in g.tasks:
            for d in t.deps:
                assert res.start[t.tid] >= res.finish[d] - 1e-9
        busy = np.zeros(workers)
        for t in sorted(g.tasks, key=lambda t: res.start[t.tid]):
            w = int(res.worker[t.tid])
            assert res.start[t.tid] >= busy[w] - 1e-9
            busy[w] = res.finish[t.tid]
