"""Unit and property tests for the Householder substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.householder import (
    apply_block_reflector,
    apply_reflector,
    larft,
    reflector,
)
from tests.conftest import random_matrix


def _apply_dense(v, tau, x):
    h = np.eye(len(v), dtype=complex) - tau * np.outer(v, v.conj())
    return h @ x


class TestReflector:
    def test_annihilates_tail_real(self, rng):
        x = rng.standard_normal(7)
        v, tau, beta = reflector(x)
        y = _apply_dense(v, tau, x.astype(complex))
        assert np.allclose(y[1:], 0, atol=1e-12)
        assert np.isclose(y[0], beta)

    def test_annihilates_tail_complex(self, rng):
        x = rng.standard_normal(5) + 1j * rng.standard_normal(5)
        v, tau, beta = reflector(x)
        y = _apply_dense(v, tau, x)
        assert np.allclose(y[1:], 0, atol=1e-12)
        assert np.isclose(y[0], beta)

    def test_norm_preserved(self, rng):
        x = rng.standard_normal(9)
        _, _, beta = reflector(x)
        assert np.isclose(abs(beta), np.linalg.norm(x))

    def test_unit_leading_entry(self, rng):
        v, tau, _ = reflector(rng.standard_normal(4))
        assert v[0] == 1.0

    def test_tau_real_for_complex_input(self, rng):
        x = rng.standard_normal(6) + 1j * rng.standard_normal(6)
        _, tau, _ = reflector(x)
        assert isinstance(tau, float)

    def test_zero_vector_gives_identity(self):
        v, tau, beta = reflector(np.zeros(5))
        assert tau == 0.0
        assert beta == 0.0

    def test_length_one_vector(self):
        v, tau, beta = reflector(np.array([3.0]))
        assert np.isclose(abs(beta), 3.0)

    def test_negative_leading_scalar(self):
        v, tau, beta = reflector(np.array([-2.0, 0.0, 0.0]))
        y = _apply_dense(v, tau, np.array([-2.0, 0.0, 0.0], dtype=complex))
        assert np.allclose(y, [beta, 0, 0])
        assert np.isclose(abs(beta), 2.0)

    def test_reflector_is_hermitian_unitary(self, rng):
        x = rng.standard_normal(6) + 1j * rng.standard_normal(6)
        v, tau, _ = reflector(x)
        h = np.eye(6, dtype=complex) - tau * np.outer(v, v.conj())
        assert np.allclose(h, h.conj().T)
        assert np.allclose(h @ h.conj().T, np.eye(6), atol=1e-12)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_property_annihilation(self, xs):
        x = np.array(xs)
        v, tau, beta = reflector(x)
        y = _apply_dense(v, tau, x.astype(complex))
        scale = max(np.linalg.norm(x), 1.0)
        assert np.allclose(y[1:], 0, atol=1e-8 * scale)
        assert abs(abs(beta) - np.linalg.norm(x)) <= 1e-8 * scale

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_property_tau_range(self, m):
        # For Hermitian reflectors, 1 <= tau <= 2 whenever a reflection
        # happens (tau = 2|u0|^2 / u^H u with |u0| <= ||u||).
        rng = np.random.default_rng(m)
        x = rng.standard_normal(m)
        _, tau, _ = reflector(x)
        assert tau == 0.0 or 1.0 - 1e-12 <= tau <= 2.0 + 1e-12


class TestApplyReflector:
    def test_matches_dense(self, rng):
        x = rng.standard_normal(6)
        v, tau, _ = reflector(x)
        c = rng.standard_normal((6, 4))
        expected = _apply_dense(v, tau, c.astype(complex)).real
        got = c.copy()
        apply_reflector(v, tau, got)
        assert np.allclose(got, expected)

    def test_identity_when_tau_zero(self, rng):
        c = rng.standard_normal((5, 3))
        c0 = c.copy()
        apply_reflector(np.ones(5), 0.0, c)
        assert np.array_equal(c, c0)


class TestLarft:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_compact_wy_equals_product(self, rng, k, dtype):
        m = 8
        vs, taus = [], []
        vmat = np.zeros((m, k), dtype=dtype)
        prod = np.eye(m, dtype=complex)
        for j in range(k):
            x = random_matrix(rng, m, 1, dtype)[:, 0]
            x[:j] = 0  # canonical structure: vector j starts at row j
            v, tau, _ = reflector(x[j:])
            vfull = np.zeros(m, dtype=dtype)
            vfull[j:] = v
            vmat[:, j] = vfull
            taus.append(tau)
            h = np.eye(m, dtype=complex) - tau * np.outer(vfull, vfull.conj())
            prod = prod @ h
        t = larft(vmat, np.array(taus))
        wy = np.eye(m, dtype=complex) - vmat @ t @ vmat.conj().T
        assert np.allclose(wy, prod, atol=1e-12)

    def test_t_is_upper_triangular(self, rng):
        vmat = rng.standard_normal((6, 3))
        t = larft(vmat, np.array([1.2, 1.5, 1.1]))
        assert np.allclose(t, np.triu(t))


class TestApplyBlockReflector:
    def test_adjoint_roundtrip(self, rng, dtype):
        m, k = 9, 3
        v = random_matrix(rng, m, k, dtype)
        t = larft(v, np.array([1.0, 1.3, 1.7]))
        c = random_matrix(rng, m, 4, dtype)
        c0 = c.copy()
        apply_block_reflector(v, t, c, adjoint=True)
        # Q (I - V T^H V^H applied back) must restore c when Q unitary;
        # with arbitrary taus Q is not unitary, so instead check the
        # algebraic identity directly
        expected = c0 - v @ (t.conj().T @ (v.conj().T @ c0))
        assert np.allclose(c, expected)
