"""Cross-checks between the reference and LAPACK kernel backends."""

import numpy as np
import pytest

from repro.kernels.backend import BACKENDS, get_backend
from tests.conftest import random_matrix


@pytest.fixture(params=["reference", "lapack"])
def backend(request):
    return get_backend(request.param)


class TestBackendRegistry:
    def test_names(self):
        assert set(BACKENDS) == {"reference", "lapack"}

    def test_get_by_instance(self):
        bk = get_backend("lapack")
        assert get_backend(bk) is bk

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")


@pytest.mark.parametrize("n,ib", [(6, 3), (8, 8), (5, 2), (7, 4), (1, 1)])
class TestBackendCorrectness:
    def test_geqrt_unmqr(self, rng, dtype, backend, n, ib):
        a = random_matrix(rng, n, n, dtype)
        w = a.copy()
        t = backend.geqrt(w, ib)
        c = a.copy()
        backend.unmqr(w, t, c)
        assert np.allclose(c, np.triu(w), atol=1e-11)

    def test_tsqrt_tsmqr(self, rng, dtype, backend, n, ib):
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        b0 = random_matrix(rng, n, n, dtype)
        r2, v = r0.copy(), b0.copy()
        t = backend.tsqrt(r2, v, ib)
        ct, cb = r0.copy(), b0.copy()
        backend.tsmqr(v, t, ct, cb)
        assert np.allclose(ct, r2, atol=1e-11)
        assert np.allclose(cb, 0, atol=1e-11)

    def test_ttqrt_ttmqr(self, rng, dtype, backend, n, ib):
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        g = np.tril(random_matrix(rng, n, n, dtype), -1)
        b0 = np.triu(random_matrix(rng, n, n, dtype))
        r2, v = r0.copy(), (b0 + g).copy()
        t = backend.ttqrt(r2, v, ib)
        assert np.allclose(np.tril(v, -1), g), "lower triangle clobbered"
        ct, cb = r0.copy(), b0.copy()
        backend.ttmqr(v, t, ct, cb)
        assert np.allclose(ct, r2, atol=1e-11)
        assert np.allclose(np.triu(cb), 0, atol=1e-11)


class TestCrossBackendAgreement:
    """Both backends compute *a* QR; the R factors agree up to column
    signs/phases (different reflector conventions)."""

    @pytest.mark.parametrize("n,ib", [(6, 3), (8, 4)])
    def test_geqrt_r_abs_match(self, rng, dtype, n, ib):
        a = random_matrix(rng, n, n, dtype)
        ws = {}
        for name in BACKENDS:
            w = a.copy()
            get_backend(name).geqrt(w, ib)
            ws[name] = np.abs(np.triu(w))
        assert np.allclose(ws["reference"], ws["lapack"], atol=1e-10)

    @pytest.mark.parametrize("mb", [4, 6, 9])
    def test_tsqrt_r_abs_match(self, rng, dtype, mb):
        n, ib = 6, 3
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        b0 = random_matrix(rng, mb, n, dtype)
        rs = {}
        for name in BACKENDS:
            r2, v = r0.copy(), b0.copy()
            get_backend(name).tsqrt(r2, v, ib)
            rs[name] = np.abs(r2)
        assert np.allclose(rs["reference"], rs["lapack"], atol=1e-10)

    def test_ragged_tt_tall_tile(self, rng, dtype):
        """TT kernels on a tile taller than the panel width (the ragged
        column case that exercised the LAPACK pentagon slicing)."""
        n, mb, ib = 5, 8, 3
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        b0 = np.triu(random_matrix(rng, mb, n, dtype))
        for name in BACKENDS:
            r2, v = r0.copy(), b0.copy()
            t = get_backend(name).ttqrt(r2, v, ib)
            ct = r0.copy()
            cb = b0.copy()
            get_backend(name).ttmqr(v, t, ct, cb)
            assert np.allclose(ct, r2, atol=1e-10), name
            assert np.allclose(np.triu(cb[:n]), 0, atol=1e-10), name
