"""Tests for the GEQRT/UNMQR reference kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import geqr2, geqrt, unmqr
from repro.kernels.geqrt import panel_starts
from tests.conftest import random_matrix


class TestPanelStarts:
    def test_exact_division(self):
        assert panel_starts(8, 4) == [(0, 4), (4, 4)]

    def test_remainder(self):
        assert panel_starts(7, 3) == [(0, 3), (3, 3), (6, 1)]

    def test_ib_larger_than_n(self):
        assert panel_starts(3, 10) == [(0, 3)]

    def test_invalid_ib(self):
        with pytest.raises(ValueError):
            panel_starts(5, 0)


class TestGeqr2:
    def test_r_matches_numpy_abs(self, rng, dtype):
        a = random_matrix(rng, 8, 8, dtype)
        work = a.copy()
        geqr2(work)
        r = np.triu(work)
        _, r_np = np.linalg.qr(a)
        assert np.allclose(np.abs(r), np.abs(r_np), atol=1e-12)

    def test_tall(self, rng):
        a = random_matrix(rng, 12, 5)
        work = a.copy()
        taus = geqr2(work)
        assert taus.shape == (5,)

    def test_wide(self, rng):
        a = random_matrix(rng, 4, 9)
        work = a.copy()
        taus = geqr2(work)
        assert taus.shape == (4,)


@pytest.mark.parametrize("m,n,ib", [
    (8, 8, 8), (8, 8, 3), (8, 8, 1), (12, 6, 4), (5, 9, 2), (1, 1, 1),
    (16, 16, 5), (7, 7, 4),
])
class TestGeqrt:
    def test_reconstruction(self, rng, dtype, m, n, ib):
        """Q^H A == R: apply the factored transformation to the original."""
        a = random_matrix(rng, m, n, dtype)
        work = a.copy()
        t = geqrt(work, ib)
        c = a.copy()
        unmqr(work, t, c)
        # below-diagonal of Q^H A must vanish; upper part must equal R
        assert np.allclose(c, np.triu(c), atol=1e-11 * max(m, n))
        assert np.allclose(np.triu(c), np.triu(work), atol=1e-11 * max(m, n))

    def test_q_roundtrip(self, rng, dtype, m, n, ib):
        """Applying Q then Q^H is the identity."""
        a = random_matrix(rng, m, n, dtype)
        work = a.copy()
        t = geqrt(work, ib)
        c = random_matrix(rng, m, 3, dtype)
        c0 = c.copy()
        unmqr(work, t, c, adjoint=True)
        unmqr(work, t, c, adjoint=False)
        assert np.allclose(c, c0, atol=1e-11)


class TestGeqrtDetails:
    def test_ib_independence(self, rng):
        """R must not depend on the inner blocking size."""
        a = random_matrix(rng, 10, 10)
        rs = []
        for ib in (1, 2, 5, 10):
            w = a.copy()
            geqrt(w, ib)
            rs.append(np.triu(w))
        for r in rs[1:]:
            assert np.allclose(r, rs[0], atol=1e-12)

    def test_t_block_count(self, rng):
        w = random_matrix(rng, 9, 9)
        t = geqrt(w, 4)
        assert len(t.blocks) == 3  # panels of 4, 4, 1
        assert t.blocks[0].shape == (4, 4)
        assert t.blocks[2].shape == (1, 1)

    def test_t_blocks_upper_triangular(self, rng):
        w = random_matrix(rng, 8, 8)
        t = geqrt(w, 4)
        for blk in t.blocks:
            assert np.allclose(blk, np.triu(blk))

    def test_unmqr_rejects_wrong_t(self, rng):
        w = random_matrix(rng, 8, 8)
        t = geqrt(w, 4)
        t.blocks.pop()
        with pytest.raises(ValueError, match="blocks"):
            unmqr(w, t, random_matrix(rng, 8, 2))

    def test_deterministic(self, rng):
        a = random_matrix(rng, 6, 6)
        w1, w2 = a.copy(), a.copy()
        geqrt(w1, 3)
        geqrt(w2, 3)
        assert np.array_equal(w1, w2)

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_property_orthogonal_factorization(self, m, n, ib):
        rng = np.random.default_rng(m * 100 + n * 10 + ib)
        a = rng.standard_normal((m, n))
        w = a.copy()
        t = geqrt(w, ib)
        c = a.copy()
        unmqr(w, t, c)
        assert np.allclose(np.tril(c, -1), 0, atol=1e-9)
        # norm of each column is preserved by the orthogonal transform
        assert np.allclose(np.linalg.norm(c, axis=0),
                           np.linalg.norm(a, axis=0), atol=1e-9)
