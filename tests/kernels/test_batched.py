"""Batched kernels vs the per-tile reference kernels, slice by slice.

Every batched kernel mirrors its reference counterpart step for step,
so each batch slice must agree to rounding (not bitwise — reduction
order may differ).  Ragged tiles are exercised through the zero-padding
contract: a tile embedded in a zero-padded ``nb x nb`` slot must
produce the reference result of the *unpadded* tile in the valid
region, and ``task_tfactor`` must slice back a ``TFactor`` the per-tile
apply kernels accept.
"""

import numpy as np
import pytest

from repro.kernels import geqrt, tsmqr, tsqrt, ttmqr, ttqrt, unmqr
from repro.kernels.batched import (
    _batched_reflector,
    geqrt_batched,
    tsmqr_batched,
    tsqrt_batched,
    ttmqr_batched,
    ttqrt_batched,
    unmqr_batched,
)
from tests.conftest import random_matrix

NB = 8
IBS = [1, NB // 2, NB]
ATOL = 1e-12


def tile_batch(rng, nbatch, dtype, m=NB, n=NB):
    return np.stack([random_matrix(rng, m, n, dtype) for _ in range(nbatch)])


def pad(a, nb=NB):
    out = np.zeros((nb, nb), dtype=a.dtype)
    out[: a.shape[0], : a.shape[1]] = a
    return out


class TestBatchedReflector:
    def test_zero_norm_rows_identity(self, rng, dtype):
        x = np.asarray(random_matrix(rng, 4, 6, dtype))
        x[2] = 0.0
        v, tau, beta = _batched_reflector(x.copy())
        assert tau[2] == 0.0 and beta[2] == 0.0
        assert np.all(v[2, 1:] == 0.0) and v[2, 0] == 1.0

    def test_matches_scalar_reflector(self, rng, dtype):
        from repro.kernels.householder import reflector

        x = np.asarray(random_matrix(rng, 5, 7, dtype))
        v, tau, beta = _batched_reflector(x.copy())
        for i in range(5):
            vi, ti, bi = reflector(x[i])
            assert np.allclose(v[i], vi, atol=ATOL)
            assert np.isclose(tau[i], ti, atol=ATOL)
            assert np.isclose(beta[i], bi, atol=ATOL)


class TestGeqrtBatched:
    @pytest.mark.parametrize("ib", IBS)
    def test_matches_reference(self, rng, dtype, ib):
        a = tile_batch(rng, 5, dtype)
        ref = [np.array(a[i]) for i in range(5)]
        bt = geqrt_batched(a, ib)
        for i in range(5):
            t = geqrt(ref[i], ib)
            assert np.allclose(a[i], ref[i], atol=ATOL)
            tf = bt.task_tfactor(i, NB)
            for bb, rb in zip(tf.blocks, t.blocks):
                assert np.allclose(bb, rb, atol=ATOL)

    @pytest.mark.parametrize("shape", [(5, 3), (NB, 5), (6, NB)])
    def test_padded_matches_unpadded(self, rng, dtype, shape):
        h, w = shape
        tiles = [np.asarray(random_matrix(rng, h, w, dtype))
                 for _ in range(3)]
        a = np.stack([pad(t) for t in tiles])
        bt = geqrt_batched(a, 4)
        for i, t0 in enumerate(tiles):
            ref = np.array(t0)
            t = geqrt(ref, 4)
            assert np.allclose(a[i, :h, :w], ref, atol=ATOL)
            # padded rows stay exactly zero
            assert np.all(a[i, h:, :] == 0.0)
            tf = bt.task_tfactor(i, min(h, w))
            assert len(tf.blocks) == len(t.blocks)
            for bb, rb in zip(tf.blocks, t.blocks):
                assert np.allclose(bb, rb, atol=ATOL)


class TestUnmqrBatched:
    @pytest.mark.parametrize("ib", IBS)
    @pytest.mark.parametrize("adjoint", [True, False])
    def test_matches_reference(self, rng, dtype, ib, adjoint):
        v = tile_batch(rng, 4, dtype)
        bt = geqrt_batched(v, ib)
        c = tile_batch(rng, 4, dtype)
        ref = [np.array(c[i]) for i in range(4)]
        unmqr_batched(v, bt, c, adjoint=adjoint)
        for i in range(4):
            unmqr(v[i], bt.task_tfactor(i, NB), ref[i], adjoint=adjoint)
            assert np.allclose(c[i], ref[i], atol=ATOL)


class TestStackedBatched:
    @pytest.mark.parametrize("ib", IBS)
    def test_tsqrt_tsmqr_match_reference(self, rng, dtype, ib):
        nbatch = 4
        r = np.stack([np.triu(random_matrix(rng, NB, NB, dtype))
                      for _ in range(nbatch)])
        b = tile_batch(rng, nbatch, dtype)
        r_ref = [np.array(r[i]) for i in range(nbatch)]
        b_ref = [np.array(b[i]) for i in range(nbatch)]
        bt = tsqrt_batched(r, b, ib)
        tfs = []
        for i in range(nbatch):
            t = tsqrt(r_ref[i], b_ref[i], ib)
            tfs.append(t)
            assert np.allclose(r[i], r_ref[i], atol=ATOL)
            assert np.allclose(b[i], b_ref[i], atol=ATOL)
            tf = bt.task_tfactor(i, NB)
            for bb, rb in zip(tf.blocks, t.blocks):
                assert np.allclose(bb, rb, atol=ATOL)
        ct = tile_batch(rng, nbatch, dtype)
        cb = tile_batch(rng, nbatch, dtype)
        ct_ref = [np.array(ct[i]) for i in range(nbatch)]
        cb_ref = [np.array(cb[i]) for i in range(nbatch)]
        tsmqr_batched(b, bt, ct, cb)
        for i in range(nbatch):
            tsmqr(b_ref[i], tfs[i], ct_ref[i], cb_ref[i])
            assert np.allclose(ct[i], ct_ref[i], atol=ATOL)
            assert np.allclose(cb[i], cb_ref[i], atol=ATOL)

    @pytest.mark.parametrize("ib", IBS)
    def test_ttqrt_ttmqr_match_reference(self, rng, dtype, ib):
        nbatch = 4
        r = np.stack([np.triu(random_matrix(rng, NB, NB, dtype))
                      for _ in range(nbatch)])
        b = tile_batch(rng, nbatch, dtype)  # full tiles: lower = V junk
        r_ref = [np.array(r[i]) for i in range(nbatch)]
        b_ref = [np.array(b[i]) for i in range(nbatch)]
        bt = ttqrt_batched(r, b, ib)
        tfs = []
        for i in range(nbatch):
            t = ttqrt(r_ref[i], b_ref[i], ib)
            tfs.append(t)
            assert np.allclose(r[i], r_ref[i], atol=ATOL)
            assert np.allclose(b[i], b_ref[i], atol=ATOL)
        ct = tile_batch(rng, nbatch, dtype)
        cb = tile_batch(rng, nbatch, dtype)
        ct_ref = [np.array(ct[i]) for i in range(nbatch)]
        cb_ref = [np.array(cb[i]) for i in range(nbatch)]
        ttmqr_batched(b, bt, ct, cb)
        for i in range(nbatch):
            ttmqr(b_ref[i], tfs[i], ct_ref[i], cb_ref[i])
            assert np.allclose(ct[i], ct_ref[i], atol=ATOL)
            assert np.allclose(cb[i], cb_ref[i], atol=ATOL)

    def test_ttqrt_preserves_lower_triangle(self, rng, dtype):
        """The strictly lower triangle of the bottom stack holds the
        tile's GEQRT vectors (V=NODEP) and must never be touched."""
        r = np.stack([np.triu(random_matrix(rng, NB, NB, dtype))
                      for _ in range(3)])
        b = tile_batch(rng, 3, dtype)
        sentinel = np.tril(b.copy(), -1)
        ttqrt_batched(r, b, 4)
        assert np.array_equal(np.tril(b, -1), sentinel)

    @pytest.mark.parametrize("w", [3, 5, NB])
    def test_padded_stacked_matches_unpadded(self, rng, dtype, w):
        """Ragged-width columns: zero padding reproduces the unpadded
        factorization in the valid region (padded cols give tau = 0)."""
        nbatch = 3
        rt = [np.triu(random_matrix(rng, w, w, dtype)) for _ in range(nbatch)]
        bt_ = [np.asarray(random_matrix(rng, NB, w, dtype))
               for _ in range(nbatch)]
        r = np.stack([pad(t) for t in rt])
        b = np.stack([pad(t) for t in bt_])
        t = tsqrt_batched(r, b, 4)
        for i in range(nbatch):
            ref_r, ref_b = np.array(rt[i]), np.array(bt_[i])
            t_ref = tsqrt(ref_r, ref_b, 4)
            assert np.allclose(r[i, :w, :w], ref_r, atol=ATOL)
            assert np.allclose(b[i, :, :w], ref_b, atol=ATOL)
            assert np.all(b[i, :, w:] == 0.0)
            tf = t.task_tfactor(i, w)
            assert len(tf.blocks) == len(t_ref.blocks)
            for bb, rb in zip(tf.blocks, t_ref.blocks):
                assert np.allclose(bb, rb, atol=ATOL)
