"""Tests for the Table-1 cost model and flop counting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.costs import (
    KERNEL_WEIGHTS,
    Kernel,
    KernelFamily,
    UNIT_FLOPS,
    kernel_flops,
    qr_flops,
    total_weight,
)


class TestTable1:
    def test_weights_match_paper(self):
        assert KERNEL_WEIGHTS[Kernel.GEQRT] == 4
        assert KERNEL_WEIGHTS[Kernel.UNMQR] == 6
        assert KERNEL_WEIGHTS[Kernel.TSQRT] == 6
        assert KERNEL_WEIGHTS[Kernel.TSMQR] == 12
        assert KERNEL_WEIGHTS[Kernel.TTQRT] == 2
        assert KERNEL_WEIGHTS[Kernel.TTMQR] == 6

    def test_per_elimination_cost_equal(self):
        """Both kernel families spend 10 + 18(q-k) per elimination."""
        for u in range(0, 5):  # u = q - k trailing columns
            ts = (KERNEL_WEIGHTS[Kernel.GEQRT] + KERNEL_WEIGHTS[Kernel.TSQRT]
                  + u * (KERNEL_WEIGHTS[Kernel.UNMQR] + KERNEL_WEIGHTS[Kernel.TSMQR]))
            tt = (2 * KERNEL_WEIGHTS[Kernel.GEQRT] + KERNEL_WEIGHTS[Kernel.TTQRT]
                  + u * (2 * KERNEL_WEIGHTS[Kernel.UNMQR] + KERNEL_WEIGHTS[Kernel.TTMQR]))
            assert ts == tt == 10 + 18 * u

    def test_tt_parallel_elimination_shorter(self):
        """Unbounded-processor elimination: TT takes 16 units, TS 22."""
        ts = (KERNEL_WEIGHTS[Kernel.GEQRT] + KERNEL_WEIGHTS[Kernel.TSQRT]
              + KERNEL_WEIGHTS[Kernel.TSMQR])
        tt = (KERNEL_WEIGHTS[Kernel.GEQRT] + KERNEL_WEIGHTS[Kernel.TTQRT]
              + KERNEL_WEIGHTS[Kernel.TTMQR])
        assert ts == 22
        assert tt == 12  # after the initial GEQRT at time 4 -> total 16

    def test_kernel_str(self):
        assert str(Kernel.GEQRT) == "GEQRT"
        assert str(KernelFamily.TT) == "TT"


class TestTotalWeight:
    def test_small_cases(self):
        assert total_weight(1, 1) == 4
        assert total_weight(2, 1) == 10
        assert total_weight(2, 2) == 32

    def test_matches_flops(self):
        """6pq^2 - 2q^3 units of nb^3/3 equal 2mn^2 - 2n^3/3 flops."""
        p, q, nb = 7, 4, 10
        m, n = p * nb, q * nb
        assert np.isclose(total_weight(p, q) * UNIT_FLOPS(nb), qr_flops(m, n))

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            total_weight(3, 5)

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=100, deadline=None)
    def test_property_positive_and_monotone(self, p, q):
        if p < q:
            p, q = q, p
        w = total_weight(p, q)
        assert w > 0
        assert total_weight(p + 1, q) > w


class TestFlops:
    def test_complex_scaling(self):
        assert qr_flops(100, 50, complex_arith=True) == 4 * qr_flops(100, 50)
        assert kernel_flops(Kernel.GEQRT, 10, True) == 4 * kernel_flops(Kernel.GEQRT, 10)

    def test_square_qr_flops(self):
        n = 30
        assert np.isclose(qr_flops(n, n), 2 * n**3 - 2 * n**3 / 3)

    def test_unit(self):
        assert UNIT_FLOPS(3) == 9.0
