"""Tests for right-side (side='R') application of the update kernels."""

import numpy as np
import pytest

from repro.kernels.backend import get_backend
from tests.conftest import random_matrix


@pytest.fixture(params=["reference", "lapack"])
def backend(request):
    return get_backend(request.param)


def explicit_q_geqrt(bk, v, t, m, dtype):
    """Materialize Q of a GEQRT'd tile by applying it to the identity."""
    q = np.eye(m, dtype=dtype)
    bk.unmqr(v, t, q, adjoint=False)
    return q


class TestUnmqrRight:
    @pytest.mark.parametrize("n,ib", [(6, 3), (8, 8), (5, 2)])
    def test_right_matches_explicit(self, rng, dtype, backend, n, ib):
        a = random_matrix(rng, n, n, dtype)
        v = a.copy()
        t = backend.geqrt(v, ib)
        q = explicit_q_geqrt(backend, v, t, n, dtype)
        c = random_matrix(rng, 4, n, dtype)
        got = c.copy()
        backend.unmqr(v, t, got, adjoint=False, side="R")
        assert np.allclose(got, c @ q, atol=1e-12)

    def test_right_adjoint(self, rng, dtype, backend):
        n, ib = 6, 3
        v = random_matrix(rng, n, n, dtype)
        t = backend.geqrt(v, ib)
        q = explicit_q_geqrt(backend, v, t, n, dtype)
        c = random_matrix(rng, 3, n, dtype)
        got = c.copy()
        backend.unmqr(v, t, got, adjoint=True, side="R")
        assert np.allclose(got, c @ q.conj().T, atol=1e-12)

    def test_roundtrip(self, rng, backend):
        n, ib = 7, 3
        v = random_matrix(rng, n, n)
        t = backend.geqrt(v, ib)
        c = random_matrix(rng, 5, n)
        c0 = c.copy()
        backend.unmqr(v, t, c, adjoint=False, side="R")
        backend.unmqr(v, t, c, adjoint=True, side="R")
        assert np.allclose(c, c0, atol=1e-12)

    def test_invalid_side(self, rng):
        from repro.kernels import geqrt, unmqr
        v = random_matrix(rng, 4, 4)
        t = geqrt(v, 2)
        with pytest.raises(ValueError, match="side"):
            unmqr(v, t, random_matrix(rng, 4, 4), side="X")


def explicit_q_stacked(bk, fam, v, t, n, mb, dtype):
    """Materialize the (n+mb) x (n+mb) Q of a TS/TT transformation."""
    q = np.eye(n + mb, dtype=dtype)
    apply = bk.tsmqr if fam == "ts" else bk.ttmqr
    apply(v, t, q[:n, :].reshape(n, n + mb), q[n:, :], adjoint=False)
    return q


@pytest.mark.parametrize("fam", ["ts", "tt"])
class TestStackedRight:
    def test_right_matches_explicit(self, rng, dtype, backend, fam):
        n = mb = 6
        ib = 3
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        b0 = random_matrix(rng, mb, n, dtype)
        if fam == "tt":
            b0 = np.triu(b0)
        r, v = r0.copy(), b0.copy()
        if fam == "ts":
            t = backend.tsqrt(r, v, ib)
            apply = backend.tsmqr
        else:
            t = backend.ttqrt(r, v, ib)
            apply = backend.ttmqr
        # explicit Q via left application to the identity (columns)
        q = np.eye(n + mb, dtype=dtype)
        apply(v, t, q[:n, :], q[n:, :], adjoint=False)
        # now right-apply to a random C and compare with C @ Q
        c = random_matrix(rng, 4, n + mb, dtype)
        got_left, got_right = c[:, :n].copy(), c[:, n:].copy()
        apply(v, t, got_left, got_right, adjoint=False, side="R")
        expected = c @ q
        assert np.allclose(got_left, expected[:, :n], atol=1e-11)
        assert np.allclose(got_right, expected[:, n:], atol=1e-11)

    def test_right_roundtrip(self, rng, backend, fam):
        n = mb = 5
        ib = 2
        r0 = np.triu(random_matrix(rng, n, n))
        b0 = random_matrix(rng, mb, n)
        if fam == "tt":
            b0 = np.triu(b0)
        r, v = r0.copy(), b0.copy()
        t = (backend.tsqrt if fam == "ts" else backend.ttqrt)(r, v, ib)
        apply = backend.tsmqr if fam == "ts" else backend.ttmqr
        c = random_matrix(rng, 3, n + mb)
        c0 = c.copy()
        apply(v, t, c[:, :n], c[:, n:], adjoint=False, side="R")
        apply(v, t, c[:, :n], c[:, n:], adjoint=True, side="R")
        assert np.allclose(c, c0, atol=1e-12)


class TestFactorizationRight:
    def test_matmul_q_identity(self, rng, dtype):
        from repro import tiled_qr
        a = random_matrix(rng, 24, 12, dtype)
        f = tiled_qr(a, nb=8, scheme="greedy")
        eye = np.eye(24, dtype=dtype)
        q_right = f.matmul_q(eye)           # I @ Q
        q_left = f.q(full=True)
        assert np.allclose(q_right, q_left, atol=1e-11)

    def test_two_sided_transform(self, rng):
        """Form Q^H S Q for a square S — the similarity-transform use
        case; must preserve eigenvalues."""
        from repro import tiled_qr
        m = 16
        a = random_matrix(rng, m, m)
        s = random_matrix(rng, m, m)
        s = s + s.T
        f = tiled_qr(a, nb=8)
        t1 = f.qh_matmul(s)              # Q^H S
        t2 = f.matmul_q(t1)              # Q^H S Q
        ev1 = np.sort(np.linalg.eigvalsh(s))
        ev2 = np.sort(np.linalg.eigvalsh((t2 + t2.T) / 2))
        assert np.allclose(ev1, ev2, atol=1e-10)

    def test_ragged_right(self, rng):
        from repro import tiled_qr
        a = random_matrix(rng, 21, 10)
        f = tiled_qr(a, nb=8)
        c = random_matrix(rng, 3, 21)
        out = f.matmul_q(f.matmul_q(c), adjoint=True)
        assert np.allclose(out, c, atol=1e-11)

    def test_shape_validation(self, rng):
        from repro import tiled_qr
        f = tiled_qr(random_matrix(rng, 16, 8), nb=8)
        with pytest.raises(ValueError):
            f.matmul_q(np.zeros((3, 15)))
