"""Tests for the TS and TT stacked kernels (reference backend)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import tsmqr, tsqrt, ttmqr, ttqrt
from repro.kernels.stacked import ts_support, tt_support
from tests.conftest import random_matrix


def _stack_check(r0, b0, r2, apply_fn, atol=1e-11):
    """Applying the stored transformation to the original stack must
    give [R_combined; 0]."""
    ct, cb = r0.copy(), b0.copy()
    apply_fn(ct, cb)
    assert np.allclose(ct, r2, atol=atol)
    return cb


class TestSupports:
    def test_ts_support_full(self):
        assert ts_support(0, 7) == 7
        assert ts_support(6, 7) == 7

    def test_tt_support_triangular(self):
        assert tt_support(0, 7) == 1
        assert tt_support(3, 7) == 4
        assert tt_support(10, 7) == 7


@pytest.mark.parametrize("n,mb,ib", [
    (6, 6, 3), (6, 6, 6), (6, 6, 1), (5, 8, 2), (8, 3, 3), (1, 1, 1),
    (7, 7, 4),
])
class TestTsqrt:
    def test_zero_and_combine(self, rng, dtype, n, mb, ib):
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        b0 = random_matrix(rng, mb, n, dtype)
        r2, v = r0.copy(), b0.copy()
        t = tsqrt(r2, v, ib)
        cb = _stack_check(r0, b0, r2, lambda ct, cb: tsmqr(v, t, ct, cb))
        assert np.allclose(cb, 0, atol=1e-11)
        assert np.allclose(r2, np.triu(r2))

    def test_r_norms_preserved(self, rng, dtype, n, mb, ib):
        """Column norms of the stack are preserved in the combined R."""
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        b0 = random_matrix(rng, mb, n, dtype)
        r2, v = r0.copy(), b0.copy()
        tsqrt(r2, v, ib)
        stacked = np.vstack([r0, b0])
        assert np.allclose(np.linalg.norm(r2[:n], axis=0),
                           np.linalg.norm(stacked, axis=0), atol=1e-10)


@pytest.mark.parametrize("n,mb,ib", [
    (6, 6, 3), (6, 6, 6), (6, 6, 1), (5, 8, 2), (8, 3, 3), (1, 1, 1),
    (7, 7, 4),
])
class TestTtqrt:
    def test_zero_and_combine(self, rng, dtype, n, mb, ib):
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        b0 = np.triu(random_matrix(rng, mb, n, dtype))
        r2, v = r0.copy(), b0.copy()
        t = ttqrt(r2, v, ib)
        cb = _stack_check(r0, b0, r2, lambda ct, cb: ttmqr(v, t, ct, cb))
        assert np.allclose(np.triu(cb), 0, atol=1e-11)

    def test_lower_triangle_untouched(self, rng, dtype, n, mb, ib):
        """The strictly-lower part of the bottom tile (GEQRT vectors
        sharing the tile) must survive TTQRT — the V=NODEP guarantee."""
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        garbage = np.tril(random_matrix(rng, mb, n, dtype), -1)
        b_mem = np.triu(random_matrix(rng, mb, n, dtype)) + garbage
        r2, v = r0.copy(), b_mem.copy()
        ttqrt(r2, v, ib)
        assert np.array_equal(np.tril(v, -1), garbage)

    def test_garbage_invariance(self, rng, dtype, n, mb, ib):
        """TTQRT results must not depend on the lower-triangle contents."""
        r0 = np.triu(random_matrix(rng, n, n, dtype))
        b0 = np.triu(random_matrix(rng, mb, n, dtype))
        out = []
        for scale in (0.0, 123.0):
            g = np.tril(random_matrix(rng, mb, n, dtype), -1) * scale
            r2, v = r0.copy(), (b0 + g).copy()
            t = ttqrt(r2, v, ib)
            ct, cb = np.triu(random_matrix(rng, n, n, dtype)) * 0 + r0, b0.copy()
            ttmqr(v, t, ct, cb)
            out.append((r2.copy(), np.triu(v).copy()))
        assert np.allclose(out[0][0], out[1][0], atol=1e-12)
        assert np.allclose(out[0][1], out[1][1], atol=1e-12)


class TestStackedProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=4),
           st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_property_valid_factorization(self, n, mb, ib, use_tt):
        rng = np.random.default_rng(n * 100 + mb * 10 + ib + use_tt)
        r0 = np.triu(rng.standard_normal((n, n)))
        b0 = rng.standard_normal((mb, n))
        if use_tt:
            b0 = np.triu(b0)
        r2, v = r0.copy(), b0.copy()
        if use_tt:
            t = ttqrt(r2, v, ib)
            ct, cb = r0.copy(), b0.copy()
            ttmqr(v, t, ct, cb)
            resid_b = np.triu(cb)
        else:
            t = tsqrt(r2, v, ib)
            ct, cb = r0.copy(), b0.copy()
            tsmqr(v, t, ct, cb)
            resid_b = cb
        assert np.allclose(ct, r2, atol=1e-9)
        assert np.allclose(resid_b, 0, atol=1e-9)
        stacked = np.vstack([r0, b0])
        assert np.allclose(np.linalg.norm(r2[:n], axis=0),
                           np.linalg.norm(stacked, axis=0), atol=1e-9)

    @pytest.mark.parametrize("use_tt", [False, True], ids=["ts", "tt"])
    def test_ib_independence(self, rng, use_tt):
        """The combined R must not depend on the inner blocking size."""
        n = 7
        r0 = np.triu(random_matrix(rng, n, n))
        b0 = random_matrix(rng, n, n)
        if use_tt:
            b0 = np.triu(b0)
        results = []
        for ib in (1, 2, 3, 7):
            r, v = r0.copy(), b0.copy()
            (ttqrt if use_tt else tsqrt)(r, v, ib)
            results.append(r)
        for r in results[1:]:
            assert np.allclose(r, results[0], atol=1e-12)

    def test_ts_tt_agree_on_triangular_input(self, rng):
        """When the bottom tile happens to be triangular, TS and TT
        produce the same combined R (up to sign conventions they share
        here, since both use the same reflector code)."""
        n, ib = 6, 3
        r0 = np.triu(random_matrix(rng, n, n))
        b0 = np.triu(random_matrix(rng, n, n))
        r_ts, v_ts = r0.copy(), b0.copy()
        tsqrt(r_ts, v_ts, ib)
        r_tt, v_tt = r0.copy(), b0.copy()
        ttqrt(r_tt, v_tt, ib)
        assert np.allclose(np.abs(r_ts), np.abs(r_tt), atol=1e-10)
