"""Tests for the structural validators and the checked backend."""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.kernels.validate import (assert_lower_part_unchanged,
                                    assert_upper_triangular, checked_backend)
from repro.runtime import execute_graph
from repro.schemes import greedy, flat_tree
from repro.tiles import TiledMatrix
from tests.conftest import random_matrix


class TestAssertions:
    def test_upper_triangular_passes(self):
        assert_upper_triangular(np.triu(np.ones((4, 4))))

    def test_upper_triangular_fails(self):
        a = np.triu(np.ones((4, 4)))
        a[2, 0] = 1e-3
        with pytest.raises(ValueError, match=r"a\[2,0\]"):
            assert_upper_triangular(a)

    def test_upper_triangular_atol(self):
        a = np.triu(np.ones((4, 4)))
        a[3, 1] = 1e-14
        assert_upper_triangular(a, atol=1e-12)

    def test_lower_unchanged_passes(self):
        a = np.ones((4, 4))
        b = a + np.triu(np.ones((4, 4)))  # only upper modified
        assert_lower_part_unchanged(a, b)

    def test_lower_unchanged_fails(self):
        a = np.ones((4, 4))
        b = a.copy()
        b[3, 0] = 2.0
        with pytest.raises(ValueError, match="strictly-lower"):
            assert_lower_part_unchanged(a, b)


class TestCheckedBackend:
    @pytest.mark.parametrize("base", ["reference", "lapack"])
    def test_full_factorization_passes_checks(self, rng, base):
        """A correct run triggers no contract violation."""
        a = random_matrix(rng, 40, 24)
        tiled = TiledMatrix(a.copy(), 8)
        g = build_dag(greedy(tiled.p, tiled.q), "TT")
        execute_graph(g, tiled, backend=checked_backend(base), ib=4)
        r = np.triu(tiled.array[:24])
        _, r_np = np.linalg.qr(a)
        assert np.allclose(np.abs(r), np.abs(r_np), atol=1e-11)

    def test_ts_family_passes_checks(self, rng):
        a = random_matrix(rng, 32, 16)
        tiled = TiledMatrix(a.copy(), 8)
        g = build_dag(flat_tree(tiled.p, tiled.q), "TS")
        execute_graph(g, tiled, backend=checked_backend("reference"), ib=4)

    def test_name(self):
        assert checked_backend("lapack").name == "checked(lapack)"

    def test_detects_clobbering_kernel(self, rng):
        """A deliberately broken ttqrt that wipes the bottom tile's
        lower triangle must be caught."""
        from dataclasses import replace
        from repro.kernels.backend import get_backend

        base = get_backend("reference")

        def bad_ttqrt(r, r_bot, ib):
            out = base.ttqrt(r, r_bot, ib)
            r_bot[-1, 0] += 1.0  # clobber the co-resident V region
            return out

        broken = replace(base, name="broken", ttqrt=bad_ttqrt)
        checked = checked_backend(broken)
        n = 6
        r0 = np.triu(random_matrix(rng, n, n))
        b0 = np.triu(random_matrix(rng, n, n))
        with pytest.raises(ValueError, match="clobbered"):
            checked.ttqrt(r0, b0, 3)

    def test_detects_nonfinite_geqrt(self, rng):
        checked = checked_backend("reference")
        a = random_matrix(rng, 4, 4)
        a[1, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            checked.geqrt(a, 2)
