"""Tests for the Graphviz DOT export."""

import re

from repro.dag import build_dag, to_dot
from repro.schemes import greedy


class TestDot:
    def test_well_formed(self):
        g = build_dag(greedy(5, 2), "TT")
        dot = to_dot(g)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_one_node_per_task(self):
        g = build_dag(greedy(5, 2), "TT")
        dot = to_dot(g)
        nodes = re.findall(r"t\d+ \[label=", dot)
        assert len(nodes) == len(g.tasks)

    def test_one_edge_per_dependency(self):
        g = build_dag(greedy(5, 2), "TT")
        dot = to_dot(g)
        edges = re.findall(r"t\d+ -> t\d+;", dot)
        assert len(edges) == sum(len(t.deps) for t in g.tasks)

    def test_clusters_per_column(self):
        g = build_dag(greedy(6, 3), "TT")
        dot = to_dot(g)
        assert dot.count("subgraph cluster_col") == 3

    def test_no_clusters_option(self):
        g = build_dag(greedy(5, 2), "TT")
        dot = to_dot(g, cluster_columns=False)
        assert "subgraph" not in dot

    def test_kernel_labels_present(self):
        g = build_dag(greedy(5, 2), "TT")
        dot = to_dot(g)
        assert "GEQRT(1,1)" in dot
        assert "TTQRT" in dot
