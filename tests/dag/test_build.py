"""Tests for the dataflow DAG builder (Section 2.1 dependency rules)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import build_dag
from repro.dag.build import DataflowTracker
from repro.kernels.costs import Kernel, total_weight
from repro.schemes import flat_tree, greedy, plasma_tree
from tests.conftest import random_elimination_list


def find(graph, kernel, row=None, piv=None, col=None, j=None):
    out = []
    for t in graph.tasks:
        if t.kernel is not kernel:
            continue
        if row is not None and t.row != row:
            continue
        if piv is not None and t.piv != piv:
            continue
        if col is not None and t.col != col:
            continue
        if j is not None and t.j != j:
            continue
        out.append(t)
    return out


def depends(graph, a, b):
    """True if task ``a`` transitively depends on task ``b``."""
    seen = set()
    stack = [a.tid]
    while stack:
        t = stack.pop()
        if t == b.tid:
            return True
        if t in seen:
            continue
        seen.add(t)
        stack.extend(graph.tasks[t].deps)
    return False


class TestDataflowTracker:
    def test_raw(self):
        f = DataflowTracker()
        f.note_write("x", 1)
        assert f.read("x") == [1]

    def test_war(self):
        f = DataflowTracker()
        f.note_write("x", 1)
        f.note_read("x", 2)
        f.note_read("x", 3)
        assert sorted(f.write("x")) == [1, 2, 3]

    def test_waw_clears_readers(self):
        f = DataflowTracker()
        f.note_write("x", 1)
        f.note_read("x", 2)
        f.note_write("x", 3)
        assert f.write("x") == [3]

    def test_fresh_resource(self):
        f = DataflowTracker()
        assert f.read("y") == []
        assert f.write("y") == []


class TestPaperDependencies:
    """The exact dependency set listed in Section 2.1 for one TT
    elimination elim(i, piv, k) on a 2-column matrix."""

    @pytest.fixture
    def graph(self):
        return build_dag(flat_tree(2, 2), "TT")

    def test_geqrt_before_unmqr(self, graph):
        g = find(graph, Kernel.GEQRT, row=0, col=0)[0]
        u = find(graph, Kernel.UNMQR, row=0, col=0, j=1)[0]
        assert g.tid in u.deps

    def test_geqrt_both_rows_before_ttqrt(self, graph):
        t = find(graph, Kernel.TTQRT, row=1, col=0)[0]
        g0 = find(graph, Kernel.GEQRT, row=0, col=0)[0]
        g1 = find(graph, Kernel.GEQRT, row=1, col=0)[0]
        assert g0.tid in t.deps and g1.tid in t.deps

    def test_ttqrt_before_ttmqr(self, graph):
        t = find(graph, Kernel.TTQRT, row=1, col=0)[0]
        m = find(graph, Kernel.TTMQR, row=1, col=0, j=1)[0]
        assert t.tid in m.deps

    def test_unmqr_both_rows_before_ttmqr(self, graph):
        m = find(graph, Kernel.TTMQR, row=1, col=0, j=1)[0]
        u0 = find(graph, Kernel.UNMQR, row=0, col=0, j=1)[0]
        u1 = find(graph, Kernel.UNMQR, row=1, col=0, j=1)[0]
        assert u0.tid in m.deps and u1.tid in m.deps

    def test_v_nodep_relaxation(self, graph):
        """TTQRT must NOT wait for the UNMQR reads of its tiles — the
        [12] relaxation without which Table 3 is unattainable."""
        t = find(graph, Kernel.TTQRT, row=1, col=0)[0]
        for u in find(graph, Kernel.UNMQR, col=0):
            assert not depends(graph, t, u)

    def test_ttmqr_triggers_next_geqrt(self, graph):
        m = find(graph, Kernel.TTMQR, row=1, col=0, j=1)[0]
        g = find(graph, Kernel.GEQRT, row=1, col=1)[0]
        assert m.tid in g.deps


class TestTSFamily:
    def test_only_pivots_triangularized(self):
        g = build_dag(flat_tree(5, 2), "TS")
        geqrts = find(g, Kernel.GEQRT)
        assert {(t.row, t.col) for t in geqrts} == {(0, 0), (1, 1)}

    def test_squares_use_ts_kernels(self):
        g = build_dag(flat_tree(5, 2), "TS")
        assert len(find(g, Kernel.TSQRT)) == 4 + 3
        assert len(find(g, Kernel.TTQRT)) == 0

    def test_plasma_ts_merges_use_tt(self):
        """Domain heads are triangular when merged, so the merge
        eliminations fall back to TT kernels even in the TS family."""
        g = build_dag(plasma_tree(6, 1, 3), "TS")
        # two domains (rows 0-2, 3-5); merge elim(3, 0) must be TT
        tts = find(g, Kernel.TTQRT)
        assert [(t.row, t.piv) for t in tts] == [(3, 0)]
        assert len(find(g, Kernel.TSQRT)) == 4

    def test_geqrt_before_tsqrt(self):
        g = build_dag(flat_tree(3, 1), "TS")
        ge = find(g, Kernel.GEQRT, row=0, col=0)[0]
        ts = find(g, Kernel.TSQRT, row=1, col=0)[0]
        assert ge.tid in ts.deps

    def test_tsqrt_chain_serialized(self):
        """TSQRTs sharing the pivot row must serialize."""
        g = build_dag(flat_tree(4, 1), "TS")
        t1 = find(g, Kernel.TSQRT, row=1)[0]
        t2 = find(g, Kernel.TSQRT, row=2)[0]
        t3 = find(g, Kernel.TSQRT, row=3)[0]
        assert depends(g, t2, t1)
        assert depends(g, t3, t2)


class TestGraphStructure:
    def test_topological_order(self):
        g = build_dag(greedy(10, 5), "TT")
        for t in g.tasks:
            assert all(d < t.tid for d in t.deps)

    def test_zero_task_complete(self):
        g = build_dag(greedy(7, 3), "TT")
        expected = {(i, k) for k in range(3) for i in range(k + 1, 7)}
        assert set(g.zero_task) == expected

    def test_task_counts_tt(self):
        p, q = 6, 3
        g = build_dag(greedy(p, q), "TT")
        n_geqrt = len(find(g, Kernel.GEQRT))
        assert n_geqrt == sum(p - k for k in range(q))
        n_ttqrt = len(find(g, Kernel.TTQRT))
        assert n_ttqrt == sum(p - 1 - k for k in range(q))

    def test_networkx_export(self):
        nx_graph = build_dag(greedy(5, 2), "TT").to_networkx()
        import networkx
        assert networkx.is_directed_acyclic_graph(nx_graph)

    def test_rescale(self):
        g = build_dag(flat_tree(3, 2), "TT")
        g2 = g.rescale({k: 1.0 for k in Kernel})
        assert g2.total_weight() == len(g2.tasks)
        assert len(g2.tasks) == len(g.tasks)

    def test_str_rendering(self):
        g = build_dag(flat_tree(2, 1), "TT")
        labels = [str(t) for t in g.tasks]
        assert "GEQRT(1,1)" in labels
        assert "TTQRT(2,1,1)" in labels


class TestTotalWeightInvariant:
    """Section 2.2: total weight = 6pq^2 - 2q^3 for ANY valid list and
    EITHER kernel family."""

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=10_000),
           st.sampled_from(["TT", "TS"]))
    @settings(max_examples=80, deadline=None)
    def test_property_invariant(self, p, q, seed, family):
        q = min(p, q)
        rng = np.random.default_rng(seed)
        el = random_elimination_list(rng, p, q)
        g = build_dag(el, family)
        assert g.total_weight() == total_weight(p, q)

    def test_schemes_invariant(self):
        for p, q in [(8, 4), (15, 6), (10, 10)]:
            for family in ("TT", "TS"):
                g = build_dag(greedy(p, q), family)
                assert g.total_weight() == total_weight(p, q)
