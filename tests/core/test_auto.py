"""Tests for automatic scheme selection."""

import pytest

from repro import critical_path, select_scheme
from repro.analysis import PerformanceModel


class TestSelectByCriticalPath:
    def test_tall_grid_picks_greedy(self):
        choice = select_scheme(40, 5)
        assert choice.scheme == "greedy"
        assert choice.params == {}
        assert choice.critical_path == critical_path("greedy", 40, 5)

    def test_single_column_ties_resolve_deterministically(self):
        """q=1: greedy, binary-tree and plasma(bs=1) all achieve the
        optimal reduction; parameter-free schemes are preferred, names
        tie-break alphabetically."""
        choice = select_scheme(16, 1)
        assert choice.critical_path == critical_path("binary-tree", 16, 1)
        assert choice.params == {}

    def test_ranking_sorted(self):
        choice = select_scheme(20, 4)
        cps = [cp for _, _, cp, _ in choice.ranking]
        assert cps == sorted(cps)
        assert choice.ranking[0][0] == choice.scheme

    def test_plasma_included_with_bs(self):
        choice = select_scheme(15, 6)
        plasma = [r for r in choice.ranking if r[0] == "plasma-tree"]
        assert len(plasma) == 1
        # the exhaustive search beats Table 3's illustrative BS=5 (166):
        # BS=7 achieves 154 on the 15 x 6 grid
        assert plasma[0][1]["bs"] == 7
        assert plasma[0][2] == 154

    def test_exclude_plasma(self):
        choice = select_scheme(15, 6, include_plasma=False)
        assert all(r[0] != "plasma-tree" for r in choice.ranking)

    def test_custom_candidates(self):
        choice = select_scheme(12, 3, include_plasma=False,
                               candidates=["flat-tree", "binary-tree"])
        assert {r[0] for r in choice.ranking} == {"flat-tree", "binary-tree"}


class TestSelectByModel:
    def test_work_bound_regime_is_indifferent(self):
        """On few cores every tree is work-bound: predictions tie, so
        the parameter-free name order decides — never plasma."""
        model = PerformanceModel(gamma_seq=1.0, processors=2)
        choice = select_scheme(20, 10, model=model)
        assert choice.predicted_gflops == pytest.approx(2.0)
        assert choice.params == {}

    def test_cp_bound_regime_matches_cp_choice(self):
        model = PerformanceModel(gamma_seq=1.0, processors=10_000)
        a = select_scheme(40, 5, model=model)
        b = select_scheme(40, 5)
        assert a.scheme == b.scheme == "greedy"

    def test_predictions_populated(self):
        model = PerformanceModel(gamma_seq=3.0, processors=48)
        choice = select_scheme(24, 6, model=model)
        assert choice.predicted_gflops is not None
        assert all(g is not None for *_, g in choice.ranking)

    def test_no_model_predictions_none(self):
        choice = select_scheme(10, 3)
        assert choice.predicted_gflops is None
