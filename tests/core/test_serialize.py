"""Tests for factorization save/load."""

import numpy as np
import pytest

from repro import load_factorization, save_factorization, tiled_qr
from tests.conftest import random_matrix


@pytest.mark.parametrize("backend", ["reference", "lapack"])
@pytest.mark.parametrize("family", ["TT", "TS"])
class TestRoundtrip:
    def test_r_and_q_survive(self, tmp_path, rng, backend, family, dtype):
        a = random_matrix(rng, 40, 24, dtype)
        f = tiled_qr(a, nb=8, ib=4, scheme="greedy", backend=backend,
                     family=family)
        path = tmp_path / "f.npz"
        save_factorization(f, path)
        g = load_factorization(path)
        assert np.array_equal(g.r(), f.r())
        assert np.allclose(g.q(), f.q(), atol=1e-14)

    def test_solve_after_load(self, tmp_path, rng, backend, family, dtype):
        a = random_matrix(rng, 32, 16, dtype)
        b = random_matrix(rng, 32, 1, dtype)[:, 0]
        f = tiled_qr(a, nb=8, ib=4, backend=backend, family=family)
        path = tmp_path / "f.npz"
        save_factorization(f, path)
        g = load_factorization(path)
        assert np.allclose(g.solve_lstsq(b), f.solve_lstsq(b), atol=1e-12)


class TestMetadata:
    def test_scheme_preserved(self, tmp_path, rng):
        a = random_matrix(rng, 24, 8)
        f = tiled_qr(a, nb=8, scheme="plasma-tree", bs=2)
        path = tmp_path / "f.npz"
        save_factorization(f, path)
        g = load_factorization(path)
        assert g.scheme.name == "plasma-tree(BS=2)"
        assert [tuple(e) for e in g.scheme] == [tuple(e) for e in f.scheme]

    def test_ragged_shapes_preserved(self, tmp_path, rng):
        a = random_matrix(rng, 29, 13)
        f = tiled_qr(a, nb=8)
        path = tmp_path / "f.npz"
        save_factorization(f, path)
        g = load_factorization(path)
        assert (g.m, g.n) == (29, 13)
        assert g.residual(a) < 1e-12

    def test_version_check(self, tmp_path, rng):
        import json
        a = random_matrix(rng, 16, 8)
        f = tiled_qr(a, nb=8)
        path = tmp_path / "f.npz"
        save_factorization(f, path)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 99
        data["meta"] = np.frombuffer(json.dumps(meta).encode(),
                                     dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="format"):
            load_factorization(path)
