"""Tests for the critical-path convenience API."""

import numpy as np

from repro import critical_path, zero_out_steps


class TestCriticalPath:
    def test_known_values(self):
        assert critical_path("greedy", 15, 6) == 128
        assert critical_path("flat-tree", 15, 6) == 164
        assert critical_path("fibonacci", 15, 6) == 136

    def test_ts_family(self):
        assert critical_path("flat-tree", 15, 6, family="TS") == 12 * 15 + 18 * 6 - 32

    def test_plasma_params_forwarded(self):
        assert critical_path("plasma-tree", 15, 6, bs=5) == 166

    def test_tt_beats_ts_flat_tree(self):
        for p, q in [(10, 4), (20, 8)]:
            assert (critical_path("flat-tree", p, q, family="TT")
                    < critical_path("flat-tree", p, q, family="TS"))

    def test_single_tile(self):
        assert critical_path("greedy", 1, 1) == 4


class TestZeroOutSteps:
    def test_shape_and_support(self):
        tb = zero_out_steps("greedy", 8, 3)
        assert tb.shape == (8, 3)
        assert tb[0, 0] == 0
        assert (tb[np.tril_indices(8, -1, 3)][
            [i for i in range(len(np.tril_indices(8, -1, 3)[0]))]] > 0).all()

    def test_columns_monotone_per_row(self):
        """A row is always zeroed later in later columns."""
        tb = zero_out_steps("greedy", 10, 4)
        for i in range(4, 10):
            row = tb[i, :4]
            assert (np.diff(row) > 0).all()
