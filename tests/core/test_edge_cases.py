"""Edge cases and degenerate inputs for the factorization API."""

import numpy as np
import pytest

from repro import tiled_qr
from tests.conftest import random_matrix


class TestDegenerateMatrices:
    def test_zero_matrix(self):
        a = np.zeros((16, 8))
        f = tiled_qr(a, nb=4)
        assert np.allclose(f.r(), 0)
        # Q is still well-defined (identity-ish reflector chain)
        q = f.q()
        assert np.allclose(q.T @ q, np.eye(8), atol=1e-12)

    def test_identity(self):
        a = np.eye(12, 8)
        f = tiled_qr(a, nb=4)
        assert f.residual(a) < 1e-14
        assert np.allclose(np.abs(f.r()), np.eye(8), atol=1e-12)

    def test_rank_deficient(self, rng):
        """Duplicate columns: QR still exact, R singular."""
        base = random_matrix(rng, 20, 4)
        a = np.hstack([base, base])
        f = tiled_qr(a, nb=4)
        assert f.residual(a) < 1e-13
        r = f.r()
        assert abs(np.diag(r)[4:]).max() < 1e-12

    def test_single_column(self, rng):
        a = random_matrix(rng, 32, 1)
        f = tiled_qr(a, nb=8)
        assert f.residual(a) < 1e-14
        assert np.isclose(abs(f.r()[0, 0]), np.linalg.norm(a))

    def test_single_element(self):
        f = tiled_qr(np.array([[3.0]]), nb=4)
        assert np.isclose(abs(f.r()[0, 0]), 3.0)

    def test_huge_scale(self, rng):
        a = random_matrix(rng, 16, 8) * 1e150
        f = tiled_qr(a, nb=4)
        assert f.residual(a) < 1e-13

    def test_tiny_scale(self, rng):
        a = random_matrix(rng, 16, 8) * 1e-150
        f = tiled_qr(a, nb=4)
        assert f.residual(a) < 1e-13

    def test_nan_propagates_not_crashes(self):
        a = np.ones((8, 4))
        a[3, 1] = np.nan
        f = tiled_qr(a, nb=4)
        assert np.isnan(f.r()).any()


class TestDtypes:
    @pytest.mark.parametrize("dt,tol", [(np.float32, 1e-5),
                                        (np.float64, 1e-12),
                                        (np.complex64, 1e-5),
                                        (np.complex128, 1e-12)])
    def test_all_inexact_dtypes_reference(self, rng, dt, tol):
        a = random_matrix(rng, 24, 12, np.complex128 if
                          np.dtype(dt).kind == "c" else np.float64).astype(dt)
        f = tiled_qr(a, nb=8, backend="reference")
        assert f.residual(a) < tol
        assert f.r().dtype == dt

    @pytest.mark.parametrize("dt,tol", [(np.float32, 1e-5),
                                        (np.complex64, 1e-5)])
    def test_single_precision_lapack(self, rng, dt, tol):
        a = random_matrix(rng, 24, 12, np.complex128 if
                          np.dtype(dt).kind == "c" else np.float64).astype(dt)
        f = tiled_qr(a, nb=8, backend="lapack")
        assert f.residual(a) < tol

    def test_fortran_ordered_input(self, rng):
        a = np.asfortranarray(random_matrix(rng, 20, 10))
        f = tiled_qr(a, nb=8)
        assert f.residual(np.ascontiguousarray(a)) < 1e-13


class TestParameterEdges:
    def test_ib_one(self, rng):
        a = random_matrix(rng, 16, 8)
        f = tiled_qr(a, nb=8, ib=1)
        assert f.residual(a) < 1e-13

    def test_ib_clamped_to_nb(self, rng):
        a = random_matrix(rng, 16, 8)
        f = tiled_qr(a, nb=4, ib=999)
        assert f.residual(a) < 1e-13

    def test_grasap_k_bounds(self, rng):
        from repro.schemes import grasap
        with pytest.raises(ValueError):
            grasap(8, 4, 5)
        with pytest.raises(ValueError):
            grasap(8, 4, -1)

    def test_workers_one_is_sequential(self, rng):
        a = random_matrix(rng, 16, 8)
        f1 = tiled_qr(a, nb=8, workers=1)
        f2 = tiled_qr(a, nb=8, workers=None)
        assert np.array_equal(f1.r(), f2.r())
