"""End-to-end factorization tests for the public API."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tiled_qr
from tests.conftest import random_matrix

SCHEMES = ["flat-tree", "binary-tree", "fibonacci", "greedy"]


class TestCorrectness:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("family", ["TT", "TS"])
    def test_all_schemes_families(self, rng, dtype, scheme, family):
        a = random_matrix(rng, 40, 24, dtype)
        f = tiled_qr(a, nb=8, ib=4, scheme=scheme, family=family)
        assert f.residual(a) < 1e-13
        assert f.orthogonality() < 1e-12

    @pytest.mark.parametrize("backend", ["reference", "lapack"])
    def test_backends(self, rng, dtype, backend):
        a = random_matrix(rng, 32, 16, dtype)
        f = tiled_qr(a, nb=8, scheme="greedy", backend=backend)
        assert f.residual(a) < 1e-13

    def test_plasma_tree_with_bs(self, rng):
        a = random_matrix(rng, 48, 16)
        f = tiled_qr(a, nb=8, scheme="plasma-tree", bs=3)
        assert f.residual(a) < 1e-13

    def test_dynamic_schemes(self, rng):
        a = random_matrix(rng, 40, 16)
        for kw in (dict(scheme="asap"), dict(scheme="grasap", k=1)):
            f = tiled_qr(a, nb=8, **kw)
            assert f.residual(a) < 1e-13

    def test_r_matches_numpy(self, rng, dtype):
        a = random_matrix(rng, 32, 16, dtype)
        f = tiled_qr(a, nb=8, scheme="greedy")
        _, r_np = np.linalg.qr(a)
        assert np.allclose(np.abs(f.r()), np.abs(r_np), atol=1e-11)

    def test_r_upper_triangular(self, rng):
        f = tiled_qr(random_matrix(rng, 24, 16), nb=8)
        r = f.r()
        assert np.allclose(r, np.triu(r))
        assert r.shape == (16, 16)
        assert f.r(full=True).shape == (24, 16)


class TestShapes:
    @pytest.mark.parametrize("m,n,nb", [
        (8, 8, 8),      # single tile
        (16, 8, 8),     # tall exact
        (17, 8, 8),     # ragged rows (padding path)
        (24, 13, 8),    # ragged columns
        (53, 23, 8),    # ragged both
        (9, 9, 4),      # ragged square
        (10, 1, 4),     # single column
        (100, 3, 8),    # very tall and skinny
    ])
    def test_shape_matrix(self, rng, m, n, nb):
        a = random_matrix(rng, m, n)
        f = tiled_qr(a, nb=nb, ib=4, scheme="greedy")
        assert f.residual(a) < 1e-12
        assert f.orthogonality() < 1e-11

    def test_nb_larger_than_matrix(self, rng):
        a = random_matrix(rng, 6, 4)
        f = tiled_qr(a, nb=64)
        assert f.residual(a) < 1e-13

    def test_rejects_wide(self, rng):
        with pytest.raises(ValueError, match="m >= n"):
            tiled_qr(random_matrix(rng, 4, 8), nb=4)

    def test_rejects_vector(self):
        with pytest.raises(ValueError, match="matrix"):
            tiled_qr(np.zeros(8), nb=4)

    def test_integer_input_promoted(self):
        a = np.arange(24).reshape(6, 4) % 7 + np.eye(6, 4)
        f = tiled_qr(a, nb=2)
        assert f.residual(a.astype(float)) < 1e-13

    def test_original_not_modified(self, rng):
        a = random_matrix(rng, 16, 8)
        a0 = a.copy()
        tiled_qr(a, nb=8)
        assert np.array_equal(a, a0)


class TestQOperations:
    def test_q_thin_shape(self, rng, dtype):
        f = tiled_qr(random_matrix(rng, 24, 16, dtype), nb=8)
        q = f.q()
        assert q.shape == (24, 16)
        assert np.allclose(q.conj().T @ q, np.eye(16), atol=1e-12)

    def test_q_full_orthogonal(self, rng):
        f = tiled_qr(random_matrix(rng, 16, 8), nb=8)
        q = f.q(full=True)
        assert q.shape == (16, 16)
        assert np.allclose(q @ q.T, np.eye(16), atol=1e-12)

    def test_qh_q_roundtrip(self, rng, dtype):
        a = random_matrix(rng, 24, 16, dtype)
        f = tiled_qr(a, nb=8)
        c = random_matrix(rng, 24, 3, dtype)
        back = f.q_matmul(f.qh_matmul(c))
        assert np.allclose(back, c, atol=1e-12)

    def test_qh_a_equals_r(self, rng):
        a = random_matrix(rng, 24, 16)
        f = tiled_qr(a, nb=8)
        qha = f.qh_matmul(a)
        assert np.allclose(qha[:16], f.r(), atol=1e-12)
        assert np.allclose(qha[16:], 0, atol=1e-12)

    def test_vector_rhs(self, rng):
        a = random_matrix(rng, 16, 8)
        f = tiled_qr(a, nb=8)
        b = random_matrix(rng, 16, 1)[:, 0]
        y = f.qh_matmul(b)
        assert y.shape == (16,)

    def test_wrong_rhs_rows(self, rng):
        f = tiled_qr(random_matrix(rng, 16, 8), nb=8)
        with pytest.raises(ValueError, match="rows"):
            f.qh_matmul(np.zeros(15))


class TestLeastSquares:
    @pytest.mark.parametrize("scheme", ["greedy", "flat-tree"])
    def test_matches_numpy(self, rng, dtype, scheme):
        a = random_matrix(rng, 40, 12, dtype)
        b = random_matrix(rng, 40, 1, dtype)[:, 0]
        f = tiled_qr(a, nb=8, scheme=scheme)
        x = f.solve_lstsq(b)
        x_ref, *_ = np.linalg.lstsq(a, b, rcond=None)
        assert np.allclose(x, x_ref, atol=1e-10)

    def test_exact_system(self, rng):
        a = random_matrix(rng, 12, 12)
        x_true = random_matrix(rng, 12, 1)[:, 0]
        f = tiled_qr(a, nb=4)
        x = f.solve_lstsq(a @ x_true)
        assert np.allclose(x, x_true, atol=1e-10)

    def test_residual_orthogonal_to_range(self, rng):
        a = random_matrix(rng, 30, 10)
        b = random_matrix(rng, 30, 1)[:, 0]
        f = tiled_qr(a, nb=8)
        x = f.solve_lstsq(b)
        r = b - a @ x
        assert np.allclose(a.T @ r, 0, atol=1e-10)

    def test_singular_r_raises(self):
        a = np.zeros((8, 4))
        a[:, 0] = 1.0
        f = tiled_qr(a, nb=4)
        with pytest.raises(np.linalg.LinAlgError):
            f.solve_lstsq(np.ones(8))


class TestProperty:
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=12),
           st.sampled_from([2, 3, 5, 8]),
           st.sampled_from(SCHEMES))
    @settings(max_examples=25, deadline=None)
    def test_property_factorization(self, m, n, nb, scheme):
        n = min(m, n)
        rng = np.random.default_rng(m * 1000 + n * 10 + nb)
        a = rng.standard_normal((m, n))
        f = tiled_qr(a, nb=nb, ib=4, scheme=scheme)
        assert f.residual(a) < 1e-11
        assert f.orthogonality() < 1e-10
