"""Tests for the benchmark-support substrates."""

import numpy as np
import pytest

from repro.bench import best_plasma_bs, format_series, format_table, time_kernels
from repro.bench.autotune import plasma_bs_sweep
from repro.bench.kernel_timing import measure_gamma_seq
from repro.bench.report import format_step_matrix
from repro.analysis import PerformanceModel
from repro.core import critical_path
from repro.kernels.costs import QR_KERNELS


class TestAutotune:
    def test_sweep_covers_all_bs(self):
        sweep = plasma_bs_sweep(6, 2)
        assert set(sweep) == set(range(1, 7))

    def test_best_is_minimum(self):
        sweep = plasma_bs_sweep(12, 3)
        bs, cp = best_plasma_bs(12, 3)
        assert cp == min(sweep.values())
        assert sweep[bs] == cp

    def test_extremes_consistent(self):
        """BS = 1 is BinaryTree, BS = p is FlatTree."""
        sweep = plasma_bs_sweep(10, 3)
        assert sweep[1] == critical_path("binary-tree", 10, 3)
        assert sweep[10] == critical_path("flat-tree", 10, 3)

    def test_with_model(self):
        model = PerformanceModel(gamma_seq=1.0, processors=48)
        bs, gflops = best_plasma_bs(40, 5, model=model)
        assert gflops > 0
        # model-optimal BS minimizes cp when cp-bound
        bs_cp, _ = best_plasma_bs(40, 5)
        assert bs == bs_cp

    def test_restricted_bs_values(self):
        sweep = plasma_bs_sweep(10, 2, bs_values=[1, 5])
        assert set(sweep) == {1, 5}


class TestKernelTiming:
    @pytest.mark.parametrize("backend", ["reference", "lapack"])
    def test_rates_positive(self, backend):
        r = time_kernels(24, 8, backend=backend, strategy="warm", min_time=0.01)
        # the numeric timing harness covers the (QR) kernels that have
        # numeric implementations — not the weight-only Cholesky/LU ones
        assert set(r.gflops) == set(QR_KERNELS)
        assert all(v > 0 for v in r.gflops.values())
        assert all(v > 0 for v in r.seconds.values())

    def test_complex_dtype(self):
        r = time_kernels(24, 8, dtype=np.complex128, min_time=0.01)
        assert r.dtype == "complex128"

    def test_ratios_finite(self):
        r = time_kernels(24, 8, min_time=0.01)
        assert r.ts_vs_tt_factor_ratio() > 0
        assert r.ts_vs_tt_update_ratio() > 0

    def test_cold_strategy_runs(self):
        r = time_kernels(16, 8, strategy="cold", min_time=0.01)
        assert all(v > 0 for v in r.seconds.values())

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            time_kernels(16, 8, strategy="lukewarm")

    def test_gamma_seq_aggregate(self):
        r = time_kernels(24, 8, min_time=0.01)
        g = measure_gamma_seq(r)
        assert min(r.gflops.values()) <= g <= max(r.gflops.values())

    def test_weights_usable_by_simulator(self):
        from repro.dag import build_dag
        from repro.schemes import greedy
        from repro.sim import simulate_unbounded
        r = time_kernels(16, 8, min_time=0.01)
        g = build_dag(greedy(5, 2), "TT").rescale(r.weights_seconds())
        assert simulate_unbounded(g).makespan > 0


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[1]
        assert "3.2500" in text

    def test_format_series(self):
        text = format_series("q", [1, 2], {"greedy": [1.0, 2.0],
                                           "flat": [0.5, 1.5]})
        assert "greedy" in text and "flat" in text

    def test_format_step_matrix(self):
        import numpy as np
        m = np.array([[0, 0], [3, 0], [5, 12]])
        text = format_step_matrix(m)
        assert "." in text and "12" in text
