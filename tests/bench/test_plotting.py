"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench import ascii_chart


class TestAsciiChart:
    def test_basic_structure(self):
        out = ascii_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]},
                          height=5, width=20, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert sum(1 for l in lines if "|" in l) == 5
        assert any("+" in l and "-" in l for l in lines)
        assert "a" in lines[-1]  # legend

    def test_extremes_on_first_and_last_rows(self):
        out = ascii_chart([0, 1], {"a": [0.0, 10.0]}, height=4, width=10)
        lines = [l for l in out.splitlines() if "|" in l]
        assert "o" in lines[0]    # the max lands on the top row
        assert "o" in lines[-1]   # the min on the bottom row
        assert "10" in out and "0" in out

    def test_multiple_series_distinct_glyphs(self):
        out = ascii_chart([1, 2], {"a": [1, 2], "b": [2, 1]},
                          height=4, width=10)
        assert "o = a" in out and "x = b" in out

    def test_constant_series(self):
        out = ascii_chart([1, 2, 3], {"flat": [5.0, 5.0, 5.0]},
                          height=4, width=12)
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]}, height=4, width=10)
        with pytest.raises(ValueError):
            ascii_chart([1, 2, 3], {"a": [1, 2, 3]}, width=2)

    def test_tick_labels_in_frame(self):
        out = ascii_chart(list(range(100, 106)),
                          {"a": [1, 2, 3, 4, 5, 6]}, height=4, width=30)
        assert "105" in out  # last tick not clipped
