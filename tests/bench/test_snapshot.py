"""Tests for the bench-snapshot harness and its regression comparator."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "bench_snapshot", REPO_ROOT / "benchmarks" / "snapshot.py")
snapshot = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(snapshot)


@pytest.fixture(scope="module")
def quick_snap():
    # smallest case only — keeps the module-scoped fixture fast
    scheme, p, q, P = snapshot.QUICK_CASES[0]
    return {
        "schema": snapshot.SCHEMA,
        "version": snapshot.SCHEMA_VERSION,
        "quick": True,
        "host": snapshot.host_metadata(),
        "cases": {snapshot.case_key(scheme, p, q, P):
                  snapshot.run_case(scheme, p, q, P)},
    }


class TestGrid:
    def test_quick_is_subset_of_full(self):
        assert set(snapshot.QUICK_CASES) <= set(snapshot.FULL_CASES)

    def test_acceptance_case_is_pinned(self):
        assert ("greedy", 30, 10, 16) in snapshot.QUICK_CASES


class TestRunCase:
    def test_schema(self, quick_snap):
        (case,) = quick_snap["cases"].values()
        assert set(case) == {"structural", "timing", "plan_cache"}
        s, t = case["structural"], case["timing"]
        assert s["tasks"] > 0
        assert s["makespan"] > 0
        assert s["critical_path_length"] == pytest.approx(s["makespan"])
        assert 0 < s["utilization"] <= 1
        assert sum(s["kernel_shares"].values()) == pytest.approx(1.0)
        for key in snapshot.TIMING_LOWER:
            assert t[key] >= 0
        assert t["sim_tasks_per_s"] > 0
        # the warm plan() call hit the cache instead of rebuilding
        assert case["plan_cache"]["warm_hits"] >= 1

    def test_json_round_trip(self, quick_snap):
        assert json.loads(json.dumps(quick_snap)) == quick_snap


class TestComparator:
    def test_identical_snapshots_clean(self, quick_snap):
        issues, compared = snapshot.compare_snapshots(quick_snap, quick_snap)
        assert issues == []
        assert compared == 1

    def test_structural_drift_is_fatal(self, quick_snap):
        other = copy.deepcopy(quick_snap)
        (case,) = other["cases"].values()
        case["structural"]["makespan"] += 1.0
        issues, _ = snapshot.compare_snapshots(quick_snap, other)
        kinds = {i["kind"] for i in issues}
        assert kinds == {"structural"}
        assert any(i["metric"] == "makespan" for i in issues)

    def test_timing_regression_flagged_beyond_tolerance(self, quick_snap):
        other = copy.deepcopy(quick_snap)
        (case,) = other["cases"].values()
        case["timing"]["sim_s"] *= 1.5  # 50% slower
        issues, _ = snapshot.compare_snapshots(quick_snap, other,
                                               tolerance=0.15)
        assert [i["kind"] for i in issues] == ["timing"]
        assert issues[0]["metric"] == "sim_s"
        assert issues[0]["ratio"] == pytest.approx(1.5)
        # within tolerance: clean
        issues, _ = snapshot.compare_snapshots(quick_snap, other,
                                               tolerance=0.6)
        assert issues == []

    def test_throughput_drop_flagged(self, quick_snap):
        other = copy.deepcopy(quick_snap)
        (case,) = other["cases"].values()
        case["timing"]["sim_tasks_per_s"] *= 0.5
        issues, _ = snapshot.compare_snapshots(quick_snap, other)
        assert any(i["metric"] == "sim_tasks_per_s" for i in issues)

    def test_timing_speedup_not_flagged(self, quick_snap):
        other = copy.deepcopy(quick_snap)
        (case,) = other["cases"].values()
        for key in snapshot.TIMING_LOWER:
            case["timing"][key] *= 0.1  # much faster is fine
        issues, _ = snapshot.compare_snapshots(quick_snap, other)
        assert issues == []

    def test_disjoint_cases_compare_nothing(self, quick_snap):
        issues, compared = snapshot.compare_snapshots(
            quick_snap, {"cases": {"other|p=1|q=1|P=1": {}}})
        assert issues == [] and compared == 0

    def test_render_issues_mentions_kind(self, quick_snap):
        other = copy.deepcopy(quick_snap)
        (case,) = other["cases"].values()
        case["structural"]["tasks"] += 1
        case["timing"]["sim_s"] *= 10
        issues, _ = snapshot.compare_snapshots(quick_snap, other)
        text = snapshot.render_issues(issues)
        assert "STRUCTURAL" in text and "TIMING" in text


class TestSnapshotFiles:
    def test_existing_snapshots_ordering(self, tmp_path):
        for n in (2, 1, 10):
            (tmp_path / f"BENCH_{n}.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored
        found = snapshot.existing_snapshots(tmp_path)
        assert [n for n, _ in found] == [1, 2, 10]

    def test_committed_baseline_exists_and_validates(self):
        found = snapshot.existing_snapshots()
        assert found, "a BENCH_<n>.json baseline must be committed"
        doc = json.loads(found[-1][1].read_text())
        assert doc["schema"] == snapshot.SCHEMA
        assert doc["version"] == snapshot.SCHEMA_VERSION
        assert snapshot.case_key("greedy", 30, 10, 16) in doc["cases"]

    def test_fresh_run_matches_committed_structurals(self, quick_snap):
        """The committed baseline reproduces on this machine."""
        found = snapshot.existing_snapshots()
        base = json.loads(found[-1][1].read_text())
        issues, compared = snapshot.compare_snapshots(base, quick_snap)
        assert compared == 1
        assert [i for i in issues if i["kind"] == "structural"] == []


class TestHostMetadata:
    def test_fields_present_and_typed(self):
        meta = snapshot.host_metadata()
        assert meta["cpu_count"] >= 1
        assert isinstance(meta["platform"], str) and meta["platform"]
        assert isinstance(meta["machine"], str)
        assert meta["python"].count(".") == 2
        assert meta["numpy"]
        # scipy/blas are best-effort probes: present keys, maybe None
        assert "scipy" in meta and "blas" in meta

    def test_metadata_is_json_serializable(self):
        json.dumps(snapshot.host_metadata())

    def test_snapshot_embeds_host(self, quick_snap):
        assert quick_snap["host"] == snapshot.host_metadata()
