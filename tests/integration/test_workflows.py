"""User-journey tests mirroring the documented workflows."""

import numpy as np

from repro import (available_schemes, critical_path, load_factorization,
                   save_factorization, tiled_qr, total_weight)
from tests.conftest import random_matrix


class TestQuickstartJourney:
    """The README quickstart, as a test."""

    def test_full_flow(self, rng):
        a = rng.standard_normal((600, 300))
        f = tiled_qr(a, nb=50, scheme="greedy")
        assert f.residual(a) < 1e-12
        q, r = f.q(), f.r()
        assert np.allclose(q @ r, a, atol=1e-10)
        b = rng.standard_normal(600)
        x = f.solve_lstsq(b)
        x_ref, *_ = np.linalg.lstsq(a, b, rcond=None)
        assert np.allclose(x, x_ref, atol=1e-9)
        assert critical_path("greedy", 12, 6) <= critical_path("flat-tree", 12, 6)


class TestFactorOnceSolveMany:
    """Persist one factorization, reuse for many right-hand sides."""

    def test_flow(self, tmp_path, rng):
        a = random_matrix(rng, 80, 40)
        f = tiled_qr(a, nb=16, backend="lapack")
        path = tmp_path / "fact.npz"
        save_factorization(f, path)
        del f
        g = load_factorization(path)
        for _ in range(3):
            b = random_matrix(rng, 80, 1)[:, 0]
            x = g.solve_lstsq(b)
            x_ref, *_ = np.linalg.lstsq(a, b, rcond=None)
            assert np.allclose(x, x_ref, atol=1e-9)


class TestModelDrivenChoice:
    """Pick the best tree for a machine via the Roofline predictor,
    then execute with it — analysis and execution must agree on the
    scheme's identity."""

    def test_flow(self, rng):
        from repro.analysis import PerformanceModel, predicted_gflops
        model = PerformanceModel(gamma_seq=3.0, processors=48)
        p, q = 24, 3
        candidates = ["greedy", "fibonacci", "flat-tree", "binary-tree"]
        best = max(candidates,
                   key=lambda s: predicted_gflops(s, p, q, model))
        assert best == "greedy"  # tall shape: the paper's conclusion
        a = random_matrix(rng, p * 8, q * 8)
        f = tiled_qr(a, nb=8, scheme=best)
        assert f.residual(a) < 1e-12


class TestAnalysisExecutionConsistency:
    def test_task_counts_match_work(self, rng):
        """The executed task list carries exactly the invariant work."""
        a = random_matrix(rng, 48, 24)
        f = tiled_qr(a, nb=8, scheme="fibonacci")
        p, q = f.context.tiled.grid
        assert f.graph.total_weight() == total_weight(p, q)

    def test_every_scheme_same_r_diag_magnitudes(self, rng):
        a = random_matrix(rng, 32, 16)
        diags = []
        for name in available_schemes():
            kw = {"bs": 3} if name in ("plasma-tree", "hadri-tree") else {}
            f = tiled_qr(a, nb=8, scheme=name, **kw)
            diags.append(np.abs(np.diag(f.r())))
        for d in diags[1:]:
            assert np.allclose(d, diags[0], atol=1e-11)
