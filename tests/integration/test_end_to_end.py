"""Integration tests spanning the whole stack."""

import numpy as np
import pytest

from repro import available_schemes, critical_path, get_scheme, tiled_qr
from repro.analysis import PerformanceModel, predicted_gflops
from repro.dag import build_dag
from repro.kernels.costs import total_weight
from repro.sim import simulate_bounded, simulate_unbounded
from tests.conftest import random_matrix


class TestPipelineConsistency:
    """The same elimination list drives analysis AND numerics."""

    def test_simulated_and_executed_task_sets_match(self, rng):
        a = random_matrix(rng, 40, 24)
        f = tiled_qr(a, nb=8, scheme="greedy")
        sim = simulate_unbounded(f.graph)
        assert sim.makespan == critical_path("greedy", 5, 3)
        assert len(f.context.tfactors) == sum(
            1 for t in f.graph.tasks if t.kernel.value.endswith("QRT"))

    def test_scheme_choice_does_not_change_r(self, rng, dtype):
        """R is unique up to row signs for full-rank A — every
        elimination tree must agree."""
        a = random_matrix(rng, 32, 16, dtype)
        rs = []
        for scheme in ("greedy", "fibonacci", "flat-tree", "binary-tree"):
            f = tiled_qr(a, nb=8, scheme=scheme)
            rs.append(np.abs(f.r()))
        for r in rs[1:]:
            assert np.allclose(r, rs[0], atol=1e-10)

    def test_family_choice_does_not_change_r(self, rng):
        a = random_matrix(rng, 32, 16)
        r_tt = np.abs(tiled_qr(a, nb=8, family="TT").r())
        r_ts = np.abs(tiled_qr(a, nb=8, family="TS").r())
        assert np.allclose(r_tt, r_ts, atol=1e-10)


class TestScenarioLeastSquares:
    def test_overdetermined_regression(self, rng):
        """The paper's motivating least-squares workload, end to end."""
        m, n = 200, 40
        x_true = rng.standard_normal(n)
        a = random_matrix(rng, m, n)
        noise = 1e-8 * rng.standard_normal(m)
        b = a @ x_true + noise
        f = tiled_qr(a, nb=16, scheme="greedy", workers=4, backend="lapack")
        x = f.solve_lstsq(b)
        assert np.linalg.norm(x - x_true) < 1e-6


class TestScenarioBlockOrthogonalization:
    def test_tall_skinny_q(self, rng, dtype):
        """Orthogonalizing a tall-skinny block — the block iterative
        methods workload from the introduction."""
        a = random_matrix(rng, 320, 16, dtype)
        f = tiled_qr(a, nb=16, scheme="greedy")
        q = f.q()
        assert np.allclose(q.conj().T @ q, np.eye(16), atol=1e-12)
        # span preserved: a = q r
        assert f.residual(a) < 1e-13


class TestPredictedVsSimulated:
    def test_model_consistency(self):
        """gamma_pred computed from the model equals the bounded-P
        simulation when kernels run at exactly gamma_seq...
        approximately: list scheduling cannot beat the roofline."""
        p, q, workers = 12, 4, 8
        g = build_dag(get_scheme("greedy", p, q), "TT")
        sim = simulate_bounded(g, workers)
        total = float(total_weight(p, q))
        cp = simulate_unbounded(g).makespan
        roofline = max(total / workers, cp)
        assert sim.makespan >= roofline - 1e-9
        # list scheduling is within 2x of the roofline (usually ~1.0x)
        assert sim.makespan <= 2 * roofline

    def test_predictor_orders_schemes_like_simulator(self):
        model = PerformanceModel(gamma_seq=1.0, processors=48)
        p = 40
        for q in (2, 5, 10):
            pg = predicted_gflops("greedy", p, q, model)
            pf = predicted_gflops("flat-tree", p, q, model)
            g = simulate_bounded(build_dag(get_scheme("greedy", p, q), "TT"), 48).makespan
            f = simulate_bounded(build_dag(get_scheme("flat-tree", p, q), "TT"), 48).makespan
            assert (pg >= pf) == (g <= f)


class TestEveryScheme:
    @pytest.mark.parametrize("scheme", ["flat-tree", "sameh-kuck",
                                        "binary-tree", "fibonacci", "greedy",
                                        "asap"])
    def test_factorizes(self, rng, scheme):
        a = random_matrix(rng, 30, 18)
        f = tiled_qr(a, nb=6, ib=3, scheme=scheme)
        assert f.residual(a) < 1e-12

    def test_available_schemes_all_usable(self, rng):
        a = random_matrix(rng, 24, 12)
        for name in available_schemes():
            kw = {"bs": 2} if name in ("plasma-tree", "hadri-tree") else {}
            f = tiled_qr(a, nb=6, scheme=name, **kw)
            assert f.residual(a) < 1e-12, name
