"""End-to-end tests for the problem-generic planner facade."""

import pytest

from repro import analyze, simulate
from repro.kernels.costs import Kernel
from repro.planner import (
    clear_plan_cache,
    load_plan,
    plan,
    plan_problem,
    save_plan,
)
from repro.problems import CholeskyProblem


@pytest.fixture(autouse=True)
def _fresh_cache(monkeypatch):
    monkeypatch.delenv("REPRO_PLAN_CACHE", raising=False)
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestCacheIdentity:
    def test_spec_and_kwargs_share_entry(self):
        assert plan("cholesky(t=8)") is plan("cholesky", t=8)

    def test_alias_shares_entry(self):
        assert plan("chol(t=8)") is plan("cholesky(t=8)")

    def test_problem_object_shares_entry(self):
        assert plan_problem(CholeskyProblem(8)) is plan("cholesky(t=8)")

    def test_qr_problem_delegates_to_legacy_plan(self):
        # the problem-centric QR spec and the legacy (p, q, scheme)
        # call must hit the same cache entry
        assert plan("qr(p=8,q=4)") is plan(8, 4, "greedy")
        assert plan("qr(p=8,q=4,scheme='fibonacci')") is plan(8, 4, "fibonacci")

    def test_costs_split_entries(self):
        base = plan("cholesky(t=4)")
        tweaked = plan("cholesky(t=4)", costs={Kernel.GEMM: 7.0})
        assert base is not tweaked
        assert base.key != tweaked.key


class TestPlanShape:
    def test_cholesky_plan_fields(self):
        pl = plan("cholesky(t=8)")
        assert pl.problem == "cholesky"
        assert (pl.p, pl.q) == (8, 8)
        assert pl.elims is None
        assert pl.critical_path() == 62.0
        assert len(pl.graph.tasks) == 120

    def test_lu_plan_fields(self):
        pl = plan("lu(p=8,q=8)")
        assert pl.problem == "lu"
        assert pl.critical_path() == 103.0

    def test_qr_plan_problem_label(self):
        assert plan(8, 4, "greedy").problem == "qr"

    def test_rescaled_keeps_problem(self):
        pl = plan("cholesky(t=4)")
        re = pl.rescaled({Kernel.GEMM: 9.0})
        assert re.problem == "cholesky"
        assert re.key != pl.key


class TestSaveLoad:
    def test_roundtrip_elimless_plan(self, tmp_path):
        pl = plan("cholesky(t=6)")
        path = tmp_path / "chol.npz"
        save_plan(pl, path)
        back = load_plan(path)
        assert back.problem == "cholesky"
        assert back.key == pl.key
        assert back.critical_path() == pl.critical_path()
        assert len(back.graph.tasks) == len(pl.graph.tasks)

    def test_roundtrip_lu(self, tmp_path):
        pl = plan("lu(p=5,q=5)")
        path = tmp_path / "lu.npz"
        save_plan(pl, path)
        assert load_plan(path).critical_path() == 58.0


class TestFacade:
    def test_simulate_spec_string(self):
        assert simulate("cholesky(t=8)").makespan == 62.0
        assert simulate("lu(p=5,q=5)").makespan == 58.0

    def test_simulate_bare_name_kwargs(self):
        assert simulate("cholesky", t=8).makespan == 62.0

    def test_simulate_problem_object(self):
        assert simulate(CholeskyProblem(8), processors=4).makespan >= 62.0

    def test_simulate_qr_positional_pq(self):
        assert simulate("qr", p=8, q=4).makespan == 78.0

    def test_analyze_problem_plan(self):
        rep = analyze(plan("cholesky(t=8)").schedule(4))
        assert rep.problem == "cholesky"
        assert rep.bounds["alap"] <= rep.makespan
