"""Golden tests for the tiled-Cholesky problem family.

Paper-table critical paths (``9t - 10`` in the shared ``nb^3/3``
units), total-work identity ``t^3``, kernel census, and DAG sanity —
the Cholesky analogue of the QR Table 2/3 golden tests.
"""

import pytest

from repro.kernels.costs import CHOLESKY_KERNELS, Kernel
from repro.problems import (
    CholeskyProblem,
    build_cholesky_dag,
    cholesky_critical_path,
    get_problem,
)
from repro.sim.simulate import simulate_bounded, simulate_unbounded

#: (t, critical path) — 1 for the single-tile grid, 9t - 10 beyond
GOLDEN_CP = [(1, 1), (2, 8), (3, 17), (4, 26), (5, 35), (6, 44),
             (8, 62), (10, 80), (11, 89)]


class TestCriticalPath:
    @pytest.mark.parametrize("t,cp", GOLDEN_CP)
    def test_simulated_cp_matches_closed_form(self, t, cp):
        g = build_cholesky_dag(t)
        assert simulate_unbounded(g).makespan == cp
        assert cholesky_critical_path(t) == cp

    def test_closed_form_rejects_bad_t(self):
        with pytest.raises(ValueError):
            cholesky_critical_path(0)


class TestStructure:
    @pytest.mark.parametrize("t", [1, 2, 3, 5, 8])
    def test_total_weight_is_t_cubed(self, t):
        g = build_cholesky_dag(t)
        assert sum(task.weight for task in g.tasks) == t ** 3

    @pytest.mark.parametrize("t", [1, 2, 4, 6])
    def test_kernel_census(self, t):
        g = build_cholesky_dag(t)
        by = {}
        for task in g.tasks:
            by[task.kernel] = by.get(task.kernel, 0) + 1
        assert by[Kernel.POTRF] == t
        assert by.get(Kernel.TRSM, 0) == t * (t - 1) // 2
        assert by.get(Kernel.SYRK, 0) == t * (t - 1) // 2
        assert by.get(Kernel.GEMM, 0) == t * (t - 1) * (t - 2) // 6
        assert set(by) <= set(CHOLESKY_KERNELS)

    def test_emission_is_topological(self):
        g = build_cholesky_dag(6)
        for task in g.tasks:
            assert all(d < task.tid for d in task.deps)

    def test_graph_is_labeled(self):
        g = build_cholesky_dag(4)
        assert g.problem == "cholesky"
        assert g.name == "cholesky(t=4)"

    def test_bounded_schedule_valid(self):
        g = build_cholesky_dag(6)
        res = simulate_bounded(g, 4)
        unb = simulate_unbounded(g)
        assert res.makespan >= unb.makespan
        assert res.makespan >= sum(t.weight for t in g.tasks) / 4


class TestProblemClass:
    def test_spec_roundtrip(self):
        pr = CholeskyProblem(t=8)
        assert pr.spec() == "cholesky(t=8)"
        assert get_problem(pr.spec()) == pr
        assert (pr.p, pr.q) == (8, 8)

    def test_alias(self):
        assert get_problem("chol", t=4) == CholeskyProblem(4)
        assert get_problem("potrf(t=4)") == CholeskyProblem(4)

    def test_rejects_bad_t(self):
        with pytest.raises((TypeError, ValueError)):
            get_problem("cholesky", t=0)

    def test_build(self):
        elims, g = CholeskyProblem(5).build()
        assert elims is None
        assert g.problem == "cholesky"
        assert len(g.tasks) == 5 + 2 * 10 + 10  # POTRF+TRSM+SYRK+GEMM
