"""Problem-registry and problem-spec grammar tests."""

import pytest

from repro.problems import (
    PROBLEM_ALIASES,
    CholeskyProblem,
    LUProblem,
    Problem,
    QRProblem,
    available_problems,
    canonical_problem_spec,
    get_problem,
    parse_problem_spec,
)


class TestParse:
    def test_bare_name(self):
        assert parse_problem_spec("cholesky") == ("cholesky", {})

    def test_params(self):
        name, params = parse_problem_spec("lu(p=8, q=4)")
        assert name == "lu"
        assert params == {"p": 8, "q": 4}

    def test_alias_resolution(self):
        for alias, target in PROBLEM_ALIASES.items():
            assert parse_problem_spec(alias)[0] == target

    def test_nested_scheme_value(self):
        name, params = parse_problem_spec("qr(p=8,q=4,scheme='plasma(bs=5)')")
        assert name == "qr"
        assert params["scheme"] == "plasma(bs=5)"

    def test_unbalanced_raises(self):
        with pytest.raises(ValueError):
            parse_problem_spec("cholesky(t=8")


class TestCanonical:
    @pytest.mark.parametrize("spec", [
        "cholesky(t=8)", "chol(t=8)", "potrf(t=8)",
        "lu(p=8,q=4)", "getrf(p=8,q=4)",
        "qr(p=8,q=4)", "geqrf(p=8,q=4)",
    ])
    def test_roundtrip_is_fixed_point(self, spec):
        canon = canonical_problem_spec(*parse_problem_spec(spec))
        again = canonical_problem_spec(*parse_problem_spec(canon))
        assert canon == again
        # aliases collapse onto the registered family name
        assert parse_problem_spec(canon)[0] in available_problems()

    def test_aliased_specs_share_canonical_form(self):
        assert (canonical_problem_spec(*parse_problem_spec("chol(t=8)"))
                == canonical_problem_spec(*parse_problem_spec("cholesky(t=8)")))


class TestGetProblem:
    def test_unknown_lists_available(self):
        with pytest.raises(ValueError, match="cholesky"):
            get_problem("householder")

    def test_bad_params_is_type_error(self):
        with pytest.raises(TypeError):
            get_problem("cholesky", nope=3)

    def test_problem_passthrough(self):
        pr = CholeskyProblem(4)
        assert get_problem(pr) is pr

    def test_problem_passthrough_with_params_raises(self):
        with pytest.raises((TypeError, ValueError)):
            get_problem(CholeskyProblem(4), t=8)

    def test_each_family_constructs(self):
        assert isinstance(get_problem("cholesky", t=4), CholeskyProblem)
        assert isinstance(get_problem("lu", p=4, q=4), LUProblem)
        assert isinstance(get_problem("qr", p=8, q=4), QRProblem)

    def test_problems_are_problems(self):
        for pr in (CholeskyProblem(3), LUProblem(3), QRProblem(4, 2)):
            assert isinstance(pr, Problem)
