"""Golden tests for the tiled-LU (incremental pivoting) family.

Critical path ``15t - 17`` for square grids, total-work identity
``2t^3``, the GESSM/TSTRF concurrency property that motivates the
write-once resource split, and rectangular-grid support.
"""

import pytest

from repro.kernels.costs import LU_KERNELS, Kernel
from repro.problems import LUProblem, build_lu_dag, get_problem
from repro.sim.simulate import simulate_unbounded

#: (t, critical path) for square t x t grids — 2 at t=1, 15t - 17 beyond
GOLDEN_CP = [(1, 2), (2, 13), (3, 28), (4, 43), (5, 58), (8, 103), (10, 133)]


class TestCriticalPath:
    @pytest.mark.parametrize("t,cp", GOLDEN_CP)
    def test_square_cp(self, t, cp):
        g = build_lu_dag(t, t)
        assert simulate_unbounded(g).makespan == cp

    def test_rectangular_supported(self):
        g = build_lu_dag(8, 4)
        res = simulate_unbounded(g)
        # taller-than-wide grid: CP at least the square q x q one
        assert res.makespan >= simulate_unbounded(build_lu_dag(4, 4)).makespan
        g.validate() if hasattr(g, "validate") else None

    def test_gessm_concurrent_with_tstrf_chain(self):
        """Incremental pivoting lets the panel-k updates GESSM(k, j)
        start as soon as GETRF(k) publishes L(k) — they must not wait
        for the sequential TSTRF chain below the diagonal."""
        g = build_lu_dag(6, 6)
        res = simulate_unbounded(g)
        starts = {}
        for task in g.tasks:
            t0 = res.start[task.tid]
            starts.setdefault(task.kernel, []).append(t0)
        getrf_w = 2.0
        # earliest GESSM starts right after the first GETRF...
        assert min(starts[Kernel.GESSM]) == getrf_w
        # ...while the second TSTRF in the chain necessarily starts later
        tstrf0 = sorted(starts[Kernel.TSTRF])
        assert tstrf0[0] == getrf_w
        assert tstrf0[1] > tstrf0[0]


class TestStructure:
    @pytest.mark.parametrize("t", [1, 2, 3, 5, 8])
    def test_total_weight_square(self, t):
        g = build_lu_dag(t, t)
        assert sum(task.weight for task in g.tasks) == 2 * t ** 3

    @pytest.mark.parametrize("p,q", [(2, 2), (4, 4), (8, 4), (6, 3)])
    def test_kernel_census(self, p, q):
        g = build_lu_dag(p, q)
        by = {}
        for task in g.tasks:
            by[task.kernel] = by.get(task.kernel, 0) + 1
        assert by[Kernel.GETRF] == q
        assert by.get(Kernel.GESSM, 0) == sum(q - 1 - k for k in range(q))
        assert by.get(Kernel.TSTRF, 0) == sum(p - 1 - k for k in range(q))
        assert by.get(Kernel.SSSSM, 0) == sum(
            (p - 1 - k) * (q - 1 - k) for k in range(q))
        assert set(by) <= set(LU_KERNELS)

    def test_emission_is_topological(self):
        g = build_lu_dag(5, 5)
        for task in g.tasks:
            assert all(d < task.tid for d in task.deps)

    def test_graph_is_labeled(self):
        g = build_lu_dag(4, 4)
        assert g.problem == "lu"


class TestProblemClass:
    def test_spec_roundtrip(self):
        pr = LUProblem(8, 8)
        assert get_problem(pr.spec()) == pr
        assert (pr.p, pr.q) == (8, 8)

    def test_square_default(self):
        assert LUProblem(6).q == 6

    def test_alias(self):
        assert get_problem("getrf", p=4, q=4) == LUProblem(4, 4)

    def test_bad_pivot_raises(self):
        with pytest.raises((TypeError, ValueError)):
            get_problem("lu", p=4, q=4, pivot="partial")

    def test_build(self):
        elims, g = LUProblem(4, 4).build()
        assert elims is None
        assert g.problem == "lu"
        assert sum(task.weight for task in g.tasks) == 2 * 4 ** 3
