"""Tests for elimination-list validation and Lemma-1 canonicalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import build_dag
from repro.schemes.elimination import Elimination, EliminationList
from repro.sim import simulate_unbounded
from tests.conftest import random_elimination_list


class TestValidation:
    def test_flat_example_valid(self):
        el = EliminationList(3, 2, [(1, 0, 0), (2, 0, 0), (2, 1, 1)])
        el.validate()

    def test_paper_example_valid(self):
        """The Section-2 example: elim(3,1,1), elim(6,4,1), elim(2,1,1),
        elim(5,4,1), elim(4,1,1) (plus column 2 completion), 1-based."""
        el = EliminationList(6, 1, [
            (2, 0, 0), (5, 3, 0), (1, 0, 0), (4, 3, 0), (3, 0, 0)])
        el.validate()

    def test_pivot_dead(self):
        # pivot row 1 is zeroed before being used
        el = EliminationList(3, 1, [(1, 0, 0), (2, 1, 0)])
        with pytest.raises(ValueError, match="already\\s+zeroed"):
            el.validate()

    def test_row_not_ready(self):
        # (2,1) eliminated before row 2 finished column 0
        el = EliminationList(3, 2, [(1, 0, 0), (2, 1, 1), (2, 0, 0)])
        with pytest.raises(ValueError, match="not ready"):
            el.validate()

    def test_missing_tile(self):
        el = EliminationList(3, 1, [(1, 0, 0)])
        with pytest.raises(ValueError, match="never zeroed"):
            el.validate()

    def test_duplicate_tile(self):
        el = EliminationList(3, 1, [(1, 0, 0), (2, 0, 0), (2, 0, 0)])
        with pytest.raises(ValueError, match="twice"):
            el.validate()

    def test_above_diagonal(self):
        el = EliminationList(3, 2, [(1, 0, 0), (2, 0, 0), (1, 2, 1)])
        with pytest.raises(ValueError, match="below diagonal"):
            el.validate()

    def test_self_pivot(self):
        el = EliminationList(2, 1, [(1, 1, 0)])
        with pytest.raises(ValueError, match="bad pivot"):
            el.validate()

    def test_bad_shape(self):
        with pytest.raises(ValueError, match="p >= q >= 1"):
            EliminationList(2, 3, [])

    def test_expected_count(self):
        assert EliminationList(5, 3, [], name="x").expected_count() == 4 + 3 + 2
        assert EliminationList(4, 4, [], name="x").expected_count() == 3 + 2 + 1

    def test_one_based_rendering(self):
        assert str(Elimination(1, 0, 0)) == "elim(2,1,1)"


class TestHelpers:
    def test_column_and_pivots(self):
        el = EliminationList(4, 2, [
            (2, 0, 0), (3, 1, 0), (1, 0, 0), (2, 1, 1), (3, 1, 1)])
        assert [e.row for e in el.column(0)] == [2, 3, 1]
        assert el.pivots(0) == {0, 1}
        assert el.pivots(1) == {1}
        assert el.pivot_of()[(3, 1)] == 1


class TestLemma1:
    def test_reverse_removed(self, rng):
        el = random_elimination_list(rng, 8, 3, allow_reverse=True)
        el.validate()
        canon = el.canonicalize()
        canon.validate()
        assert all(e.row > e.piv for e in canon)

    def test_makespan_preserved(self, rng):
        """Lemma 1: canonicalization does not change the execution time."""
        for seed in range(20):
            r = np.random.default_rng(seed)
            el = random_elimination_list(r, 7, 4, allow_reverse=True)
            el.validate()
            canon = el.canonicalize()
            canon.validate()
            cp0 = simulate_unbounded(build_dag(el, "TT")).makespan
            cp1 = simulate_unbounded(build_dag(canon, "TT")).makespan
            assert cp0 == cp1, f"seed {seed}: {cp0} != {cp1}"

    def test_already_canonical_unchanged_semantics(self, rng):
        el = random_elimination_list(rng, 6, 3, allow_reverse=False)
        canon = el.canonicalize()
        assert [tuple(e) for e in canon] == [tuple(e) for e in el]

    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_property_canonical_valid(self, p, q, seed):
        q = min(p, q)
        r = np.random.default_rng(seed)
        el = random_elimination_list(r, p, q, allow_reverse=True)
        el.validate()
        canon = el.canonicalize()
        canon.validate()
        assert all(e.row > e.piv for e in canon)
        assert len(canon) == len(el)
