"""Golden-value tests: Tables 2, 3, 4 and 5 of the paper, digit for digit.

Every integer below is transcribed from the paper (INRIA RR-7601).
These tables exercise the complete stack — coarse-grain model,
elimination schemes, the DAG dependency engine and the discrete-event
simulator — so an exact match is strong evidence the reproduction is
faithful.
"""

import functools

import numpy as np
import pytest

from repro.coarse import coarse_fibonacci, coarse_greedy, coarse_sameh_kuck
from repro.core import critical_path as _critical_path
from repro.core import zero_out_steps
from repro.dag import build_dag
from repro.schemes import asap as _asap
from repro.schemes import grasap, greedy
from repro.sim import simulate_unbounded

# the large Table-4b grids (up to 128 x 128) are expensive; cache them
# so the parametrized tests compute each once
critical_path = functools.lru_cache(maxsize=None)(_critical_path)
asap = functools.lru_cache(maxsize=None)(_asap)


def table_from_rows(rows, p=15, q=6):
    """Dense (p, q) matrix from the paper's ragged row listing."""
    out = np.zeros((p, q), dtype=np.int64)
    for i, vals in enumerate(rows, start=1):  # row index 1-based row 2..15
        for k, v in enumerate(vals):
            out[i, k] = v
    return out


# ----------------------------------------------------------------------
# Table 2: coarse-grain time-steps, 15 x 6
# ----------------------------------------------------------------------
TABLE2_SAMEH_KUCK = table_from_rows([
    [1], [2, 3], [3, 4, 5], [4, 5, 6, 7], [5, 6, 7, 8, 9],
    [6, 7, 8, 9, 10, 11], [7, 8, 9, 10, 11, 12], [8, 9, 10, 11, 12, 13],
    [9, 10, 11, 12, 13, 14], [10, 11, 12, 13, 14, 15],
    [11, 12, 13, 14, 15, 16], [12, 13, 14, 15, 16, 17],
    [13, 14, 15, 16, 17, 18], [14, 15, 16, 17, 18, 19],
])

TABLE2_FIBONACCI = table_from_rows([
    [5], [4, 7], [4, 6, 9], [3, 6, 8, 11], [3, 5, 8, 10, 13],
    [3, 5, 7, 10, 12, 15], [2, 5, 7, 9, 12, 14], [2, 4, 7, 9, 11, 14],
    [2, 4, 6, 9, 11, 13], [2, 4, 6, 8, 11, 13], [1, 4, 6, 8, 10, 13],
    [1, 3, 6, 8, 10, 12], [1, 3, 5, 8, 10, 12], [1, 3, 5, 7, 10, 12],
])

TABLE2_GREEDY = table_from_rows([
    [4], [3, 6], [3, 5, 8], [2, 5, 7, 10], [2, 4, 7, 9, 12],
    [2, 4, 6, 9, 11, 14], [2, 4, 6, 8, 10, 13], [1, 3, 5, 8, 10, 12],
    [1, 3, 5, 7, 9, 11], [1, 3, 5, 7, 9, 11], [1, 3, 4, 6, 8, 10],
    [1, 2, 4, 6, 8, 10], [1, 2, 4, 5, 7, 9], [1, 2, 3, 5, 6, 8],
])


class TestTable2Coarse:
    def test_sameh_kuck(self):
        assert np.array_equal(coarse_sameh_kuck(15, 6).steps, TABLE2_SAMEH_KUCK)

    def test_fibonacci(self):
        assert np.array_equal(coarse_fibonacci(15, 6).steps, TABLE2_FIBONACCI)

    def test_greedy(self):
        assert np.array_equal(coarse_greedy(15, 6).steps, TABLE2_GREEDY)

    def test_coarse_critical_paths(self):
        # Section 3.1: SK = p + q - 2, Fibonacci = x + 2q - 2 (x = 5)
        assert coarse_sameh_kuck(15, 6).critical_path == 19
        assert coarse_fibonacci(15, 6).critical_path == 15
        assert coarse_greedy(15, 6).critical_path == 14


# ----------------------------------------------------------------------
# Table 3: tiled time-steps (TT kernels), 15 x 6
# ----------------------------------------------------------------------
TABLE3_FLAT_TREE = table_from_rows([
    [6], [8, 28], [10, 34, 50], [12, 40, 56, 72], [14, 46, 62, 78, 94],
    [16, 52, 68, 84, 100, 116], [18, 58, 74, 90, 106, 122],
    [20, 64, 80, 96, 112, 128], [22, 70, 86, 102, 118, 134],
    [24, 76, 92, 108, 124, 140], [26, 82, 98, 114, 130, 146],
    [28, 88, 104, 120, 136, 152], [30, 94, 110, 126, 142, 158],
    [32, 100, 116, 132, 148, 164],
])

TABLE3_FIBONACCI = table_from_rows([
    [14], [12, 48], [12, 46, 70], [10, 42, 68, 92], [10, 40, 64, 90, 114],
    [10, 40, 62, 86, 112, 136], [8, 36, 62, 84, 108, 134],
    [8, 34, 58, 84, 106, 130], [8, 34, 56, 80, 106, 128],
    [8, 34, 56, 78, 102, 128], [6, 28, 56, 78, 100, 122],
    [6, 28, 50, 78, 100, 122], [6, 28, 44, 72, 100, 122],
    [6, 22, 44, 60, 94, 116],
])

TABLE3_GREEDY = table_from_rows([
    [12], [10, 42], [10, 40, 64], [8, 36, 62, 86], [8, 34, 56, 84, 106],
    [8, 34, 56, 78, 102, 128], [8, 30, 52, 78, 100, 122],
    [6, 28, 50, 72, 100, 118], [6, 28, 50, 72, 94, 116],
    [6, 28, 50, 68, 94, 116], [6, 28, 44, 66, 88, 110],
    [6, 22, 44, 66, 88, 110], [6, 22, 44, 60, 82, 104],
    [6, 22, 38, 60, 76, 98],
])

TABLE3_BINARY_TREE = table_from_rows([
    [6], [8, 28], [6, 36, 56], [10, 34, 70, 90], [6, 44, 68, 104, 124],
    [8, 28, 78, 102, 138, 158], [6, 42, 62, 112, 136, 172],
    [12, 40, 76, 96, 146, 170], [6, 46, 74, 110, 130, 180],
    [8, 28, 80, 108, 144, 164], [6, 36, 56, 114, 142, 178],
    [10, 34, 64, 84, 148, 176], [6, 38, 62, 92, 112, 182],
    [8, 28, 66, 90, 114, 134],
])

TABLE3_PLASMA_BS5 = table_from_rows([
    [6], [8, 28], [10, 34, 50], [12, 40, 56, 72], [14, 46, 62, 78, 94],
    [6, 54, 74, 90, 106, 122], [8, 28, 82, 102, 118, 134],
    [10, 34, 50, 110, 130, 146], [12, 40, 56, 72, 138, 158],
    [16, 52, 68, 84, 100, 166], [6, 56, 80, 96, 112, 128],
    [8, 28, 84, 108, 124, 140], [10, 34, 50, 112, 136, 152],
    [12, 40, 56, 72, 140, 164],
])


class TestTable3Tiled:
    @pytest.mark.parametrize("scheme,expected,params", [
        ("flat-tree", TABLE3_FLAT_TREE, {}),
        ("fibonacci", TABLE3_FIBONACCI, {}),
        ("greedy", TABLE3_GREEDY, {}),
        ("binary-tree", TABLE3_BINARY_TREE, {}),
        ("plasma-tree", TABLE3_PLASMA_BS5, {"bs": 5}),
    ])
    def test_zero_out_tables(self, scheme, expected, params):
        got = zero_out_steps(scheme, 15, 6, **params).astype(np.int64)
        assert np.array_equal(got, expected), f"{scheme} mismatch"


# ----------------------------------------------------------------------
# Table 4a: Greedy / Asap / Grasap(1) on 15 x 3
# ----------------------------------------------------------------------
TABLE4A_GREEDY = [
    [12], [10, 42], [10, 40, 64], [8, 36, 62], [8, 34, 56], [8, 34, 56],
    [8, 30, 52], [6, 28, 50], [6, 28, 50], [6, 28, 50], [6, 28, 44],
    [6, 22, 44], [6, 22, 44], [6, 22, 38],
]

TABLE4A_ASAP = [
    [12], [10, 40], [10, 36, 86], [8, 34, 80], [8, 32, 74], [8, 30, 68],
    [8, 28, 62], [6, 28, 56], [6, 26, 50], [6, 24, 46], [6, 24, 44],
    [6, 22, 44], [6, 22, 40], [6, 22, 38],
]

# Grasap(1): the paper lists 56 for tile (7, 3); our event simulation
# finds 52 (a legal, slightly earlier launch under the stated rules) —
# see EXPERIMENTS.md.  Every other value and the makespan (62) match.
TABLE4A_GRASAP1 = [
    [12], [10, 42], [10, 40, 62], [8, 36, 58], [8, 34, 56], [8, 34, 56],
    [8, 30, 50], [6, 28, 50], [6, 28, 48], [6, 28, 46], [6, 28, 44],
    [6, 22, 44], [6, 22, 40], [6, 22, 38],
]


def _ragged(table, p=15, q=3):
    out = np.zeros((p, q), dtype=np.int64)
    for i, vals in enumerate(table, start=1):
        for k, v in enumerate(vals[: min(len(vals), q)]):
            out[i, k] = v
    return out


class TestTable4aDynamic:
    def test_greedy_15x3(self):
        got = zero_out_steps("greedy", 15, 3).astype(np.int64)
        assert np.array_equal(got, _ragged(TABLE4A_GREEDY))

    def test_asap_15x3(self):
        res = asap(15, 3)
        assert np.array_equal(res.zero_table.astype(np.int64),
                              _ragged(TABLE4A_ASAP))
        assert res.makespan == 86

    def test_grasap1_15x3(self):
        res = grasap(15, 3, 1)
        got = res.zero_table.astype(np.int64)
        expected = _ragged(TABLE4A_GRASAP1)
        diff = np.argwhere(got != expected)
        # allow only the single documented tie-break deviation (7, 3)
        assert diff.shape[0] <= 1
        if diff.shape[0] == 1:
            assert tuple(diff[0]) == (6, 2)
            assert got[6, 2] <= expected[6, 2]
        assert res.makespan == 62  # the paper's headline: beats Greedy's 64

    def test_asap_beats_greedy_on_15x2(self):
        """The paper's counter-example to Greedy's optimality."""
        g = critical_path("greedy", 15, 2)
        a = asap(15, 2).makespan
        assert a < g

    def test_greedy_beats_asap_on_15x3(self):
        """...and Asap is not optimal either."""
        g = critical_path("greedy", 15, 3)
        a = asap(15, 3).makespan
        assert g < a

    def test_grasap_extremes(self):
        """Grasap(0) = Greedy; Grasap(q) = Asap."""
        g0 = grasap(12, 4, 0)
        assert g0.makespan == critical_path("greedy", 12, 4)
        gq = grasap(12, 4, 4)
        assert gq.makespan == asap(12, 4).makespan

    def test_asap_list_replay(self):
        """Replaying Asap's elimination list through the static DAG
        reproduces the dynamic run exactly."""
        res = asap(13, 4)
        res.elims.validate()
        sim = simulate_unbounded(build_dag(res.elims, "TT"))
        assert np.allclose(sim.zero_out_table(), res.zero_table)
        assert sim.makespan == res.makespan


# ----------------------------------------------------------------------
# Table 4b: Greedy vs Asap critical paths
# ----------------------------------------------------------------------
TABLE4B = {
    # (p, q): (greedy, asap)
    (16, 16): (310, 310),
    (32, 16): (360, 402),
    (32, 32): (650, 656),
    (64, 16): (374, 588),
    (64, 32): (726, 844),
    (64, 64): (1342, 1354),
    (128, 16): (396, 966),
    (128, 32): (748, 1222),
    (128, 64): (1452, 1748),
    (128, 128): (2732, 2756),
}


class TestTable4b:
    @pytest.mark.parametrize("p,q", sorted(TABLE4B))
    def test_greedy_cp(self, p, q):
        assert critical_path("greedy", p, q) == TABLE4B[(p, q)][0]

    @pytest.mark.parametrize("p,q", sorted(TABLE4B))
    def test_asap_cp(self, p, q):
        got = asap(p, q).makespan
        expected = TABLE4B[(p, q)][1]
        if (p, q) == (128, 64):
            # documented tie-break deviation: we find 1734 <= 1748
            assert got <= expected
            assert got >= TABLE4B[(p, q)][0]  # still worse than Greedy
        else:
            assert got == expected

    def test_greedy_generally_outperforms_asap(self):
        worse = sum(asap(p, q).makespan >= critical_path("greedy", p, q)
                    for p, q in TABLE4B)
        assert worse == len(TABLE4B)


# ----------------------------------------------------------------------
# Table 5: theoretical critical paths, p = 40, q = 1..40
# ----------------------------------------------------------------------
TABLE5 = {
    # q: (greedy, plasma_tt_cp, best_bs_reported, fibonacci)
    1: (16, 16, 1, 22), 2: (54, 60, 3, 72), 3: (74, 98, 5, 94),
    4: (104, 132, 5, 116), 5: (126, 166, 5, 138), 6: (148, 198, 10, 160),
    7: (170, 226, 10, 182), 8: (192, 254, 10, 204), 9: (214, 282, 10, 226),
    10: (236, 310, 10, 248), 11: (258, 336, 20, 270), 12: (280, 358, 20, 292),
    13: (302, 380, 20, 314), 14: (324, 402, 20, 336), 15: (346, 424, 20, 358),
    16: (368, 446, 20, 380), 17: (390, 468, 20, 402), 18: (412, 490, 20, 424),
    19: (432, 512, 20, 446), 20: (454, 534, 20, 468), 21: (476, 554, 20, 490),
    22: (498, 570, 20, 512), 23: (520, 586, 20, 534), 24: (542, 602, 20, 556),
    25: (564, 618, 20, 578), 26: (586, 634, 20, 600), 27: (608, 650, 20, 622),
    28: (630, 666, 20, 644), 29: (652, 682, 20, 666), 30: (668, 698, 20, 688),
    31: (684, 714, 20, 710), 32: (700, 730, 20, 732), 33: (716, 746, 20, 754),
    34: (732, 762, 20, 776), 35: (748, 778, 20, 798), 36: (764, 794, 20, 820),
    37: (780, 810, 20, 842), 38: (796, 826, 20, 862), 39: (812, 842, 20, 878),
    40: (826, 856, 20, 892),
}


class TestTable5:
    @pytest.mark.parametrize("q", sorted(TABLE5))
    def test_greedy_and_fibonacci(self, q):
        g, _, _, f = TABLE5[q]
        assert critical_path("greedy", 40, q) == g
        assert critical_path("fibonacci", 40, q) == f

    @pytest.mark.parametrize("q", sorted(TABLE5))
    def test_plasma_best_bs(self, q):
        _, cp, bs, _ = TABLE5[q]
        assert critical_path("plasma-tree", 40, q, bs=bs) == cp

    def test_best_bs_search_achieves_table(self):
        from repro.bench import best_plasma_bs
        for q in (1, 2, 5, 10, 20, 40):
            _, cp, _, _ = TABLE5[q]
            bs, best = best_plasma_bs(40, q)
            assert best == cp

    def test_greedy_never_worse(self):
        for q, (g, cp, _, f) in TABLE5.items():
            assert g <= cp
            assert g <= f

    @pytest.mark.parametrize("q,overhead,gain", [
        # spot checks of the paper's derived ratio columns
        (1, 1.0000, 0.0000),
        (2, 1.1111, 0.1000),
        (3, 1.3243, 0.2449),
        (6, 1.3378, 0.2525),   # the paper's peak PlasmaTree overhead
        (20, 1.1762, 0.1498),
        (40, 1.0363, 0.0350),
    ])
    def test_plasma_overhead_and_gain_columns(self, q, overhead, gain):
        g, cp, _, _ = TABLE5[q]
        assert round(cp / g, 4) == overhead
        assert round(1 - g / cp, 4) == gain

    @pytest.mark.parametrize("q,overhead,gain", [
        (1, 1.3750, 0.2727),
        (5, 1.0952, 0.0870),
        (32, 1.0457, 0.0437),
        (40, 1.0799, 0.0740),
    ])
    def test_fibonacci_overhead_and_gain_columns(self, q, overhead, gain):
        g, _, _, f = TABLE5[q]
        assert round(f / g, 4) == overhead
        assert round(1 - g / f, 4) == gain

    def test_peak_gain_claims(self):
        """Section 4: Greedy's theoretical cp is up to 25% shorter than
        best-BS PlasmaTree (at q=6... the paper says q=6 in the text
        and the table peaks at 25.25%), and 2%-27% shorter than
        Fibonacci."""
        plasma_gains = {q: 1 - g / cp for q, (g, cp, _, f) in TABLE5.items()}
        fib_gains = {q: 1 - g / f for q, (g, _, _, f) in TABLE5.items()}
        assert max(plasma_gains, key=plasma_gains.get) == 6
        assert abs(max(plasma_gains.values()) - 0.2525) < 1e-4
        assert 0.02 < min(v for q, v in fib_gains.items() if q > 1) < 0.28
        assert abs(max(fib_gains.values()) - 0.2727) < 1e-4
