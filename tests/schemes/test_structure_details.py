"""Fine-grained structural checks tying tiled schedules to the theory."""

import pytest

from repro.coarse import coarse_fibonacci, coarse_greedy
from repro.core import zero_out_steps


class TestFlatTreePerTile:
    @pytest.mark.parametrize("p,q", [(8, 3), (15, 6), (20, 10)])
    def test_induction_formula(self, p, q):
        """The Theorem-1(1) induction, per tile: zero(i, k) = 6i + 16k - 22
        (1-based) for k >= 2, and 2i + 2... for column 1 the chain gives
        zero(i, 1) = 2i + 2."""
        tb = zero_out_steps("flat-tree", p, q)
        for i in range(1, p):       # 0-based row
            assert tb[i, 0] == 2 * (i + 1) + 2
        for k in range(1, q):
            for i in range(k + 1, p):
                assert tb[i, k] == 6 * (i + 1) + 16 * (k + 1) - 22


class TestTsFlatTreePerTile:
    @pytest.mark.parametrize("p,q", [(8, 3), (15, 6)])
    def test_induction_formula(self, p, q):
        """Proposition 2 per tile: zero(i, 1) = 6i - 2 and
        zero(i, k) = 12i + 18k - 32 (1-based) for k >= 2."""
        tb = zero_out_steps("flat-tree", p, q, family="TS")
        for i in range(1, p):
            assert tb[i, 0] == 6 * (i + 1) - 2
        for k in range(1, q):
            for i in range(k + 1, p):
                assert tb[i, k] == 12 * (i + 1) + 18 * (k + 1) - 32


class TestFibonacciTiledVsCoarse:
    @pytest.mark.parametrize("p", [8, 15, 30])
    def test_column0_bounded_by_4_plus_2coarse(self, p):
        """In column 0 the tiled Fibonacci zeroing happens no later than
        4 + 2 * coarse step (GEQRT wave then one 2-unit TTQRT level per
        step) — and can be *earlier* when a pivot idled during the
        previous coarse step, since the tiled execution is ASAP."""
        tb = zero_out_steps("fibonacci", p, 2)
        steps = coarse_fibonacci(p, 2).steps
        for i in range(1, p):
            assert tb[i, 0] <= 4 + 2 * steps[i, 0]
            assert tb[i, 0] >= 6

    @pytest.mark.parametrize("p", [8, 15, 30])
    def test_greedy_column0_same_relation(self, p):
        tb = zero_out_steps("greedy", p, 2)
        steps = coarse_greedy(p, 2).steps
        for i in range(1, p):
            assert tb[i, 0] == 4 + 2 * steps[i, 0]


class TestGreedyHalving:
    def test_column0_group_sizes_halve(self):
        """Greedy zeroes floor(remaining/2) tiles per coarse step in
        column 0: 15 -> 7, 4, 2, 1."""
        steps = coarse_greedy(15, 1).steps[:, 0]
        sizes = [int((steps == s).sum()) for s in range(1, int(steps.max()) + 1)]
        assert sizes == [7, 4, 2, 1]

    def test_power_of_two_single_level_per_step(self):
        steps = coarse_greedy(16, 1).steps[:, 0]
        sizes = [int((steps == s).sum()) for s in range(1, int(steps.max()) + 1)]
        assert sizes == [8, 4, 2, 1]

    def test_greedy_equals_binary_tree_times_for_q1_powers(self):
        """For q = 1 and p a power of two, Greedy's zeroing times match
        BinaryTree's level structure (both are optimal reductions)."""
        g = zero_out_steps("greedy", 16, 1)
        b = zero_out_steps("binary-tree", 16, 1)
        assert sorted(g[1:, 0]) == sorted(b[1:, 0])


class TestColumnMonotonicity:
    @pytest.mark.parametrize("scheme", ["greedy", "fibonacci", "flat-tree",
                                        "binary-tree"])
    def test_zero_times_decrease_down_each_column_tail(self, scheme):
        """Below the crossover, later (lower) rows are zeroed no later
        than... not true in general for BinaryTree; instead check the
        universal invariant: within a column, the *set* of zero times
        contains no duplicates among rows sharing a pivot."""
        tb = zero_out_steps(scheme, 12, 4)
        from repro.schemes import get_scheme
        el = get_scheme(scheme, 12, 4)
        piv = el.pivot_of()
        by_pivot: dict = {}
        for (i, k), pv in piv.items():
            by_pivot.setdefault((pv, k), []).append(tb[i, k])
        for (pv, k), times in by_pivot.items():
            assert len(set(times)) == len(times), \
                f"pivot {pv} column {k} reused concurrently"
