"""Tests for the Hadri et al. Semi-/Fully-Parallel tree."""

import pytest

from repro.bench.autotune import plasma_bs_sweep
from repro.dag import build_dag
from repro.schemes import hadri_tree, plasma_tree
from repro.sim import simulate_unbounded


class TestStructure:
    @pytest.mark.parametrize("p,q,bs", [(7, 3, 3), (15, 6, 5), (9, 2, 4),
                                        (8, 8, 2), (5, 1, 5)])
    def test_valid(self, p, q, bs):
        hadri_tree(p, q, bs).validate()

    def test_top_domain_shrinks(self):
        """Domain boundaries are fixed from row 0, so column k's top
        domain only covers rows k..(boundary-1)."""
        el = hadri_tree(9, 3, 3)
        # k=1: domains [1,2], [3,4,5], [6,7,8]: heads 1, 3, 6
        col1 = el.column(1)
        assert {e.piv for e in col1 if e.row - e.piv < 3} >= {1, 3, 6} - {
            e.row for e in col1}
        heads = {1, 3, 6}
        flat = [e for e in col1 if e.piv in heads and e.row not in heads]
        assert all(e.piv <= e.row < e.piv + 3 for e in flat)

    def test_bs1_equals_binary(self):
        from repro.schemes import binary_tree
        a = hadri_tree(8, 2, 1)
        b = binary_tree(8, 2)
        assert [tuple(e) for e in a] == [tuple(e) for e in b]

    def test_bad_bs(self):
        with pytest.raises(ValueError):
            hadri_tree(5, 2, 0)

    def test_differs_from_plasma_on_later_columns(self):
        """Same in column 0, different anchoring afterwards."""
        h = hadri_tree(10, 3, 4)
        p = plasma_tree(10, 3, 4)
        assert [tuple(e) for e in h.column(0)] == [tuple(e) for e in p.column(0)]
        assert [tuple(e) for e in h.column(1)] != [tuple(e) for e in p.column(1)]


class TestPaperComparison:
    @pytest.mark.parametrize("family", ["TT", "TS"])
    def test_plasma_never_worse_at_best_bs(self, family):
        """Section 4: 'the PLASMA algorithms performed identically or
        better than these algorithms'."""
        for p, q in [(12, 4), (15, 6), (20, 5)]:
            best_plasma = min(plasma_bs_sweep(p, q, family).values())
            best_hadri = min(
                simulate_unbounded(build_dag(hadri_tree(p, q, bs), family)).makespan
                for bs in range(1, p + 1))
            assert best_plasma <= best_hadri

    def test_registry_access(self):
        from repro import get_scheme
        el = get_scheme("hadri-tree", 8, 3, bs=3)
        el.validate()

    def test_factorizes(self):
        import numpy as np
        from repro import tiled_qr
        rng = np.random.default_rng(0)
        a = rng.standard_normal((40, 16))
        for family in ("TT", "TS"):
            f = tiled_qr(a, nb=8, scheme="hadri-tree", bs=2, family=family)
            assert f.residual(a) < 1e-13
