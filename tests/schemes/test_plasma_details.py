"""Hand-verified small cases of the PlasmaTree / HadriTree domain logic."""

import pytest

from repro.schemes import hadri_tree, plasma_tree


def col(el, k):
    return [(e.row, e.piv) for e in el.column(k)]


class TestPlasmaDomains:
    def test_7x3_bs3_column0(self):
        """Domains [0,1,2], [3,4,5], [6]: flat within, binary merge."""
        el = plasma_tree(7, 3, 3)
        assert col(el, 0) == [(1, 0), (2, 0), (4, 3), (5, 3),
                              (3, 0), (6, 0)]

    def test_7x3_bs3_column1(self):
        """Panel row 1: domains [1,2,3], [4,5,6] — re-anchored at the
        panel, so the bottom remainder domain vanished (the 'one less
        domain' moment)."""
        el = plasma_tree(7, 3, 3)
        assert col(el, 1) == [(2, 1), (3, 1), (5, 4), (6, 4), (4, 1)]

    def test_bottom_domain_shrinks_column_by_column(self):
        """For p=8, bs=3: remainders 2, 1, 0, 2, ... as k grows."""
        for k, expected_sizes in enumerate([[3, 3, 2], [3, 3, 1], [3, 3],
                                            [3, 2]]):
            el = plasma_tree(8, 4, 3)
            heads = sorted({e.piv for e in el.column(k)
                            if e.row - e.piv < 3 and e.piv in
                            range(k, 8, 1)})
            # reconstruct domain sizes from head positions
            starts = list(range(k, 8, 3))
            sizes = [min(s + 3, 8) - s for s in starts]
            assert sizes == expected_sizes


class TestHadriDomains:
    def test_9x3_bs3_column1(self):
        """Fixed boundaries at 0/3/6: column 1's top domain is [1,2]
        (shrunk), then [3,4,5], [6,7,8]."""
        el = hadri_tree(9, 3, 3)
        flat = [(r, p) for r, p in col(el, 1) if r - p < 3 and p in (1, 3, 6)]
        assert (2, 1) in flat
        assert (4, 3) in flat and (5, 3) in flat
        assert (7, 6) in flat and (8, 6) in flat
        # merges: heads [1, 3, 6] binary tree
        merges = [(r, p) for r, p in col(el, 1) if (r, p) in
                  [(3, 1), (6, 1)]]
        assert merges == [(3, 1), (6, 1)]

    def test_top_domain_vanishes(self):
        """At k = 3 (a boundary multiple), the first domain is [3,4,5]
        exactly — the shrunk top domain just disappeared."""
        el = hadri_tree(9, 4, 3)
        heads = {e.piv for e in el.column(3)}
        assert 3 in heads and 6 in heads
        assert all(h >= 3 for h in heads)


class TestCountsAndExtremes:
    @pytest.mark.parametrize("factory", [plasma_tree, hadri_tree])
    @pytest.mark.parametrize("p,q,bs", [(7, 3, 3), (8, 4, 3), (15, 6, 5),
                                        (12, 2, 4)])
    def test_counts(self, factory, p, q, bs):
        el = factory(p, q, bs)
        el.validate()
        assert len(el) == el.expected_count()

    @pytest.mark.parametrize("factory", [plasma_tree, hadri_tree])
    def test_bs_one_is_binary(self, factory):
        from repro.schemes import binary_tree
        assert ([tuple(e) for e in factory(9, 3, 1)]
                == [tuple(e) for e in binary_tree(9, 3)])

    def test_plasma_and_hadri_same_cp_when_bs_divides(self):
        """When bs divides p and q = 1 the two anchorings coincide."""
        a = plasma_tree(12, 1, 4)
        b = hadri_tree(12, 1, 4)
        assert [tuple(e) for e in a] == [tuple(e) for e in b]
