"""Fine-grained unit tests of the Asap event mechanics."""

import numpy as np

from repro.core import critical_path
from repro.schemes.asap import asap, grasap


class TestSmallCases:
    def test_single_tile(self):
        res = asap(1, 1)
        assert len(res.elims) == 0
        assert res.makespan == 4.0  # the lone GEQRT

    def test_two_rows(self):
        res = asap(2, 1)
        assert [tuple(e) for e in res.elims] == [(1, 0, 0)]
        assert res.zero_table[1, 0] == 6.0  # GEQRT@4 + TTQRT@2
        assert res.makespan == 6.0

    def test_four_rows_two_waves(self):
        """All four GEQRTs finish at 4; Asap pairs (0<-2, 1<-3) at 6,
        then the freed pivots pair (0<-1) at 8."""
        res = asap(4, 1)
        zt = res.zero_table[:, 0]
        assert zt[2] == 6.0 and zt[3] == 6.0
        assert zt[1] == 8.0
        assert res.makespan == 8.0

    def test_pairing_is_bottom_anchored(self):
        """With 2s+1 ready rows the row closest to the diagonal sits
        out (the Greedy/Fibonacci convention)."""
        res = asap(5, 1)
        # five rows ready at t=4: z=2 pairs use rows 1..4, row 0 idles
        first_wave = {i for i in range(1, 5) if res.zero_table[i, 0] == 6.0}
        assert first_wave == {3, 4}
        piv = {e.row: e.piv for e in res.elims}
        assert piv[3] == 1 and piv[4] == 2

    def test_q1_matches_binary_tree_makespan_power_of_two(self):
        for p in (4, 8, 16, 32):
            assert asap(p, 1).makespan == critical_path("binary-tree", p, 1)


class TestGrasapMechanics:
    def test_k_zero_reproduces_greedy_table(self):
        from repro.core import zero_out_steps
        res = grasap(12, 3, 0)
        assert np.array_equal(res.zero_table, zero_out_steps("greedy", 12, 3))

    def test_monotone_interpolation_endpoints(self):
        """Grasap(k) interpolates between Greedy and Asap; at least the
        endpoints are exact (intermediate k may beat both)."""
        p, q = 15, 3
        g = critical_path("greedy", p, q)
        a = asap(p, q).makespan
        assert grasap(p, q, 0).makespan == g
        assert grasap(p, q, q).makespan == a

    def test_grasap1_beats_both_on_15x3(self):
        g1 = grasap(15, 3, 1).makespan
        assert g1 < critical_path("greedy", 15, 3)
        assert g1 < asap(15, 3).makespan

    def test_lists_always_valid(self):
        for p, q in [(6, 2), (9, 4), (12, 5)]:
            for k in range(q + 1):
                grasap(p, q, k).elims.validate()


class TestResultObject:
    def test_names(self):
        assert asap(5, 2).elims.name == "asap"
        assert grasap(5, 2, 1).elims.name == "grasap(1)"

    def test_zero_table_support(self):
        res = asap(6, 3)
        zt = res.zero_table
        for k in range(3):
            for i in range(6):
                assert (zt[i, k] > 0) == (i > k)

    def test_spread_pairing_differs(self):
        """The documented alternative odd-count pairing produces a
        different (also valid) schedule."""
        a = asap(15, 3, pairing="bottom")
        b = asap(15, 3, pairing="spread")
        b.elims.validate()
        assert a.makespan != b.makespan
