"""Tests for the scheme spec grammar and registry helpers (S18)."""

import pytest

from repro.schemes.registry import (
    SCHEME_ALIASES,
    available_schemes,
    canonical_scheme_spec,
    get_scheme,
    parse_scheme_spec,
)


class TestParseSchemeSpec:
    def test_bare_name(self):
        assert parse_scheme_spec("greedy") == ("greedy", {})

    def test_params(self):
        name, params = parse_scheme_spec("plasma-tree(bs=5)")
        assert name == "plasma-tree"
        assert params == {"bs": 5}
        assert isinstance(params["bs"], int)

    def test_multiple_params_and_spaces(self):
        name, params = parse_scheme_spec(" grasap ( k = 2 ) ")
        assert name == "grasap"
        assert params == {"k": 2}

    def test_aliases(self):
        assert parse_scheme_spec("plasma(bs=5)") == \
            ("plasma-tree", {"bs": 5})
        for alias, target in SCHEME_ALIASES.items():
            assert parse_scheme_spec(alias)[0] == target

    def test_case_and_underscores(self):
        assert parse_scheme_spec("Flat_Tree")[0] == "flat-tree"
        assert parse_scheme_spec("PLASMA(BS=3)") == \
            ("plasma-tree", {"bs": 3})

    def test_float_and_string_values(self):
        _, params = parse_scheme_spec("greedy(x=1.5,y=abc)")
        assert params == {"x": 1.5, "y": "abc"}

    def test_malformed(self):
        for bad in ("", "greedy(", "greedy)x(", "greedy(bs)", "a b"):
            with pytest.raises(ValueError):
                parse_scheme_spec(bad)


class TestCanonicalSpec:
    def test_no_params(self):
        assert canonical_scheme_spec("greedy", {}) == "greedy"

    def test_sorted_params(self):
        assert canonical_scheme_spec("plasma(b=2)", {"a": 1}) == \
            "plasma-tree(a=1,b=2)"

    def test_kwargs_override_inline(self):
        assert canonical_scheme_spec("plasma(bs=3)", {"bs": 5}) == \
            "plasma-tree(bs=5)"


class TestRegistry:
    def test_available_schemes_deterministic(self):
        names = available_schemes()
        assert names == sorted(names)
        assert names == available_schemes()
        assert "greedy" in names and "plasma-tree" in names

    def test_get_scheme_accepts_spec(self):
        a = get_scheme("plasma(bs=5)", 15, 6)
        b = get_scheme("plasma-tree", 15, 6, bs=5)
        assert list(a) == list(b)

    def test_get_scheme_kwargs_override(self):
        a = get_scheme("plasma(bs=3)", 15, 6, bs=5)
        b = get_scheme("plasma-tree", 15, 6, bs=5)
        assert list(a) == list(b)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="[Uu]nknown"):
            get_scheme("no-such-tree", 8, 4)
