"""Tests for the scheme spec grammar and registry helpers (S18)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes.registry import (
    SCHEME_ALIASES,
    available_schemes,
    canonical_scheme_spec,
    get_scheme,
    parse_scheme_spec,
)


class TestParseSchemeSpec:
    def test_bare_name(self):
        assert parse_scheme_spec("greedy") == ("greedy", {})

    def test_params(self):
        name, params = parse_scheme_spec("plasma-tree(bs=5)")
        assert name == "plasma-tree"
        assert params == {"bs": 5}
        assert isinstance(params["bs"], int)

    def test_multiple_params_and_spaces(self):
        name, params = parse_scheme_spec(" grasap ( k = 2 ) ")
        assert name == "grasap"
        assert params == {"k": 2}

    def test_aliases(self):
        assert parse_scheme_spec("plasma(bs=5)") == \
            ("plasma-tree", {"bs": 5})
        for alias, target in SCHEME_ALIASES.items():
            assert parse_scheme_spec(alias)[0] == target

    def test_case_and_underscores(self):
        assert parse_scheme_spec("Flat_Tree")[0] == "flat-tree"
        assert parse_scheme_spec("PLASMA(BS=3)") == \
            ("plasma-tree", {"bs": 3})

    def test_float_and_string_values(self):
        _, params = parse_scheme_spec("greedy(x=1.5,y=abc)")
        assert params == {"x": 1.5, "y": "abc"}

    def test_malformed(self):
        for bad in ("", "greedy(", "greedy)x(", "greedy(bs)", "a b"):
            with pytest.raises(ValueError):
                parse_scheme_spec(bad)


class TestCanonicalSpec:
    def test_no_params(self):
        assert canonical_scheme_spec("greedy", {}) == "greedy"

    def test_sorted_params(self):
        assert canonical_scheme_spec("plasma(b=2)", {"a": 1}) == \
            "plasma-tree(a=1,b=2)"

    def test_kwargs_override_inline(self):
        assert canonical_scheme_spec("plasma(bs=3)", {"bs": 5}) == \
            "plasma-tree(bs=5)"


class TestRoundTrip:
    """``canonical_scheme_spec(*parse_scheme_spec(s))`` is a projection:
    applying it twice equals applying it once, and every alias lands on
    the same canonical string as its target (one plan-cache key)."""

    def test_every_alias_roundtrips(self):
        for alias, target in SCHEME_ALIASES.items():
            canon = canonical_scheme_spec(*parse_scheme_spec(alias))
            assert canon == canonical_scheme_spec(*parse_scheme_spec(target))
            assert canon == canonical_scheme_spec(*parse_scheme_spec(canon))

    def test_sameh_kuck_is_flat_tree(self):
        # the historical special case: sameh-kuck was once a registered
        # duplicate of flat-tree (two cache keys for one scheme)
        assert "sameh-kuck" in SCHEME_ALIASES
        canon = canonical_scheme_spec(*parse_scheme_spec("sameh-kuck"))
        assert canon == "flat-tree"

    def test_every_registered_name_roundtrips(self):
        for name in available_schemes():
            canon = canonical_scheme_spec(*parse_scheme_spec(name))
            assert canon == name

    _names = st.sampled_from(sorted(set(available_schemes())
                                    | set(SCHEME_ALIASES)))
    _keys = st.text(alphabet="abcdefgh", min_size=1, max_size=4)
    _vals = st.one_of(st.integers(min_value=-99, max_value=99),
                      st.floats(min_value=-9, max_value=9,
                                allow_nan=False).map(lambda f: round(f, 3)),
                      st.text(alphabet="xyz", min_size=1, max_size=4))
    _params = st.dictionaries(_keys, _vals, max_size=3)

    @given(name=_names, params=_params)
    @settings(max_examples=120, deadline=None)
    def test_property_canonical_is_fixed_point(self, name, params):
        spec = canonical_scheme_spec(name, params)
        parsed_name, parsed_params = parse_scheme_spec(spec)
        assert parsed_name == canonical_scheme_spec(name, {}).split("(")[0]
        assert parsed_params == params
        assert canonical_scheme_spec(parsed_name, parsed_params) == spec

    def test_nested_spec_value(self):
        # quoted values may themselves look like specs
        name, params = parse_scheme_spec("greedy(inner='plasma(bs=5)')")
        assert params == {"inner": "plasma(bs=5)"}

    def test_unbalanced_raises(self):
        for bad in ("plasma(bs=5", "plasma bs=5)", "greedy(a='x)"):
            with pytest.raises(ValueError):
                parse_scheme_spec(bad)


class TestRegistry:
    def test_available_schemes_deterministic(self):
        names = available_schemes()
        assert names == sorted(names)
        assert names == available_schemes()
        assert "greedy" in names and "plasma-tree" in names

    def test_get_scheme_accepts_spec(self):
        a = get_scheme("plasma(bs=5)", 15, 6)
        b = get_scheme("plasma-tree", 15, 6, bs=5)
        assert list(a) == list(b)

    def test_get_scheme_kwargs_override(self):
        a = get_scheme("plasma(bs=3)", 15, 6, bs=5)
        b = get_scheme("plasma-tree", 15, 6, bs=5)
        assert list(a) == list(b)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="[Uu]nknown"):
            get_scheme("no-such-tree", 8, 4)
