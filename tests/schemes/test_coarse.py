"""Tests for the coarse-grain model (Section 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coarse import (
    coarse_critical_path,
    coarse_fibonacci,
    coarse_greedy,
    coarse_sameh_kuck,
    fibonacci_x,
    greedy_coarse_counts,
)
from repro.schemes.elimination import EliminationList


class TestFibonacciX:
    def test_known_values(self):
        # least x with x(x+1)/2 >= p-1
        assert fibonacci_x(2) == 1
        assert fibonacci_x(4) == 2
        assert fibonacci_x(15) == 5
        assert fibonacci_x(16) == 5
        assert fibonacci_x(17) == 6

    def test_trivial(self):
        assert fibonacci_x(1) == 0

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_property_minimal(self, p):
        x = fibonacci_x(p)
        assert x * (x + 1) // 2 >= p - 1
        assert (x - 1) * x // 2 < p - 1


class TestCriticalPaths:
    @pytest.mark.parametrize("p,q", [(5, 2), (10, 4), (15, 6), (40, 10)])
    def test_sameh_kuck_formula(self, p, q):
        assert coarse_sameh_kuck(p, q).critical_path == p + q - 2
        assert coarse_critical_path("sameh-kuck", p, q) == p + q - 2

    @pytest.mark.parametrize("p,q", [(5, 2), (10, 4), (15, 6), (40, 10)])
    def test_fibonacci_formula(self, p, q):
        x = fibonacci_x(p)
        assert coarse_fibonacci(p, q).critical_path == x + 2 * q - 2
        assert coarse_critical_path("fibonacci", p, q) == x + 2 * q - 2

    def test_square_formulas(self):
        # square case: SK = 2q - 3, Fibonacci = x + 2q - 4
        for q in (3, 5, 8):
            assert coarse_sameh_kuck(q, q).critical_path == 2 * q - 3
            assert (coarse_fibonacci(q, q).critical_path
                    == fibonacci_x(q) + 2 * q - 4)
            assert coarse_critical_path("sameh-kuck", q, q) == 2 * q - 3

    @pytest.mark.parametrize("p,q", [(8, 3), (15, 6), (30, 10), (64, 16)])
    def test_greedy_is_best(self, p, q):
        """Greedy is optimal in the coarse-grain model, so it is at
        least as fast as the other two."""
        g = coarse_greedy(p, q).critical_path
        assert g <= coarse_fibonacci(p, q).critical_path
        assert g <= coarse_sameh_kuck(p, q).critical_path

    def test_greedy_tends_to_2q(self):
        """Greedy's coarse critical path tends to 2q when p << q^2."""
        q = 40
        p = q + 5  # p tiny relative to q^2
        g = coarse_greedy(p, q).critical_path
        assert abs(g - 2 * q) <= 8

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            coarse_critical_path("magic", 5, 2)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            coarse_greedy(2, 5)


class TestGreedyCounts:
    @pytest.mark.parametrize("p,q", [(15, 6), (20, 8), (64, 16)])
    def test_counts_match_full_simulation(self, p, q):
        counts = greedy_coarse_counts(p, q)
        steps = coarse_greedy(p, q).steps
        for k in range(q):
            for s, c in enumerate(counts[k], start=1):
                assert int((steps[:, k] == s).sum()) == c

    def test_column0_is_ceil_halving(self):
        counts = greedy_coarse_counts(15, 1)[0]
        assert counts == [7, 4, 2, 1]

    def test_critical_path_agreement(self):
        for p, q in [(15, 6), (40, 10)]:
            counts = greedy_coarse_counts(p, q)
            cp = max(len(c) for c in counts)
            assert cp == coarse_greedy(p, q).critical_path

    def test_large_grid_cheap(self):
        """The count recurrence handles grids far beyond what the full
        pairing simulation should be asked to do."""
        counts = greedy_coarse_counts(4096, 64)
        assert sum(sum(c) for c in counts) == sum(4096 - 1 - k
                                                  for k in range(64))


class TestPairings:
    @pytest.mark.parametrize("fn", [coarse_sameh_kuck, coarse_fibonacci,
                                    coarse_greedy])
    @pytest.mark.parametrize("p,q", [(4, 2), (9, 4), (15, 6), (16, 16)])
    def test_elimination_lists_valid(self, fn, p, q):
        sched = fn(p, q)
        EliminationList(p, q, sched.eliminations, sched.name).validate()

    @pytest.mark.parametrize("fn", [coarse_fibonacci, coarse_greedy])
    def test_no_row_reuse_within_step(self, fn):
        """At any coarse step, every matrix row is used at most once."""
        sched = fn(20, 8)
        steps = sched.steps
        by_step: dict[int, list] = {}
        pivot = {(e.row, e.col): e.piv for e in sched.eliminations}
        for e in sched.eliminations:
            s = int(steps[e.row, e.col])
            by_step.setdefault(s, []).append(e)
        for s, elims in by_step.items():
            used = [e.row for e in elims] + [e.piv for e in elims]
            assert len(used) == len(set(used)), f"step {s} reuses a row"

    def test_greedy_pairing_matches_algorithm4(self):
        """Algorithm 4's pairing rule: piv(p-kk) = p-kk - (nZnew - nZ)."""
        sched = coarse_greedy(15, 6)
        for e in sched.eliminations:
            # each pivot must lie directly above the eliminated block
            assert e.piv < e.row

    def test_fibonacci_column_shift(self):
        """coarse(i, k) = coarse(i-1, k-1) + 2 (Section 3.1)."""
        s = coarse_fibonacci(15, 6).steps
        for k in range(1, 6):
            for i in range(k + 1, 15):
                assert s[i, k] == s[i - 1, k - 1] + 2
