"""Structural tests for the static elimination schemes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schemes import (
    available_schemes,
    binary_tree,
    fibonacci,
    flat_tree,
    get_scheme,
    greedy,
    plasma_tree,
)

GRIDS = [(1, 1), (2, 1), (2, 2), (5, 1), (5, 3), (5, 5), (8, 4), (13, 7),
         (16, 16), (15, 6), (40, 5)]


@pytest.mark.parametrize("p,q", GRIDS)
class TestAllSchemesValid:
    def test_flat_tree(self, p, q):
        flat_tree(p, q).validate()

    def test_binary_tree(self, p, q):
        binary_tree(p, q).validate()

    def test_fibonacci(self, p, q):
        fibonacci(p, q).validate()

    def test_greedy(self, p, q):
        greedy(p, q).validate()

    def test_plasma_all_bs(self, p, q):
        for bs in range(1, p + 1):
            plasma_tree(p, q, bs).validate()


class TestFlatTree:
    def test_all_pivot_diagonal(self):
        el = flat_tree(6, 3)
        assert all(e.piv == e.col for e in el)

    def test_order_top_down(self):
        el = flat_tree(5, 1)
        assert [e.row for e in el] == [1, 2, 3, 4]


class TestBinaryTree:
    def test_round_structure(self):
        el = binary_tree(8, 1)
        # round 1: (1,0),(3,2),(5,4),(7,6); round 2: (2,0),(6,4); round 3: (4,0)
        expected = [(1, 0), (3, 2), (5, 4), (7, 6), (2, 0), (6, 4), (4, 0)]
        assert [(e.row, e.piv) for e in el] == expected

    def test_non_power_of_two(self):
        el = binary_tree(5, 1)
        el.validate()
        assert len(el) == 4

    def test_depth_is_logarithmic(self):
        from repro.core import critical_path
        # BinaryTree q=1: last zero-out grows like 6*ceil(log2 p)... just
        # check doubling p adds a bounded increment
        cp8 = critical_path("binary-tree", 8, 1)
        cp16 = critical_path("binary-tree", 16, 1)
        assert cp16 - cp8 <= 6


class TestPlasmaTree:
    def test_bs_1_equals_binary_tree(self):
        a = plasma_tree(9, 3, 1)
        b = binary_tree(9, 3)
        assert [tuple(e) for e in a] == [tuple(e) for e in b]

    def test_bs_p_equals_flat_tree(self):
        a = plasma_tree(9, 3, 9)
        b = flat_tree(9, 3)
        assert sorted(map(tuple, a)) == sorted(map(tuple, b))

    def test_domains_shrink_at_bottom(self):
        """Domains are allocated from the panel row down, so the
        remainder (shrinking) domain is the bottom one."""
        el = plasma_tree(7, 2, 3)
        col0 = el.column(0)
        # k=0: domains [0,1,2], [3,4,5], [6]; heads 0, 3, 6
        heads = {e.piv for e in col0 if e.piv in (0, 3)} | {0}
        assert {e.piv for e in col0} <= {0, 3, 6} | {0}
        # k=1: domains [1,2,3], [4,5,6]; bottom domain holds fewer rows
        col1 = el.column(1)
        assert {e.piv for e in col1} <= {1, 4}

    def test_invalid_bs(self):
        with pytest.raises(ValueError):
            plasma_tree(5, 2, 0)
        with pytest.raises(ValueError):
            plasma_tree(5, 2, 6)


class TestRegistry:
    def test_names(self):
        names = available_schemes()
        for expected in ("flat-tree", "binary-tree", "fibonacci", "greedy",
                         "plasma-tree", "asap", "grasap"):
            assert expected in names
        # sameh-kuck is an alias of flat-tree now (one plan-cache key),
        # so it is accepted by get_scheme but no longer listed
        assert "sameh-kuck" not in names

    def test_sameh_kuck_alias(self):
        a = get_scheme("sameh-kuck", 5, 2)
        b = get_scheme("flat-tree", 5, 2)
        assert [tuple(e) for e in a] == [tuple(e) for e in b]

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            get_scheme("magic", 4, 2)

    def test_plasma_requires_bs(self):
        with pytest.raises(TypeError):
            get_scheme("plasma-tree", 4, 2)

    def test_dynamic_schemes_resolve(self):
        get_scheme("asap", 6, 2).validate()
        get_scheme("grasap", 6, 3, k=1).validate()


class TestEliminationCounts:
    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_property_counts(self, p, q):
        q = min(p, q)
        expected = sum(p - 1 - k for k in range(q))
        for factory in (flat_tree, binary_tree, fibonacci, greedy):
            assert len(factory(p, q)) == expected
        assert len(plasma_tree(p, q, max(1, p // 2))) == expected
