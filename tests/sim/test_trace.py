"""Tests for trace export and schedule statistics."""

import csv
import io
import json

import pytest

from repro.dag import build_dag
from repro.dag.tasks import TaskGraph
from repro.schemes import greedy
from repro.sim import (TRACE_FIELDS, render_gantt, simulate_bounded,
                       simulate_unbounded, trace_events, trace_to_chrome,
                       trace_to_csv, trace_to_json, utilization)


@pytest.fixture
def bounded():
    return simulate_bounded(build_dag(greedy(6, 3), "TT"), 4)


@pytest.fixture
def empty_bounded():
    return simulate_bounded(TaskGraph(0, 0, name="empty"), 2)


class TestTraceEvents:
    def test_one_event_per_task(self, bounded):
        events = trace_events(bounded)
        assert len(events) == len(bounded.graph.tasks)

    def test_fields(self, bounded):
        e = trace_events(bounded)[0]
        assert set(e) == {"task", "kernel", "row", "piv", "col", "j",
                          "start", "finish", "worker"}

    def test_unbounded_worker_sentinel(self):
        res = simulate_unbounded(build_dag(greedy(4, 2), "TT"))
        assert all(e["worker"] == -1 for e in trace_events(res))

    def test_durations_match_weights(self, bounded):
        for e, t in zip(trace_events(bounded), bounded.graph.tasks):
            assert e["finish"] - e["start"] == t.weight


class TestSerialization:
    def test_csv_roundtrip(self, bounded):
        text = trace_to_csv(bounded)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(bounded.graph.tasks)
        assert rows[0]["kernel"] in {"GEQRT", "UNMQR", "TTQRT", "TTMQR"}

    def test_json_roundtrip(self, bounded):
        data = json.loads(trace_to_json(bounded))
        assert len(data) == len(bounded.graph.tasks)
        assert all(d["finish"] >= d["start"] for d in data)


class TestSerializationEdgeCases:
    def test_empty_csv_keeps_full_header(self, empty_bounded):
        text = trace_to_csv(empty_bounded)
        reader = csv.reader(io.StringIO(text))
        header = next(reader)
        assert header == list(TRACE_FIELDS)
        assert list(reader) == []

    def test_header_matches_event_fields(self, bounded):
        assert tuple(trace_events(bounded)[0]) == TRACE_FIELDS


class TestChromeExport:
    def test_bounded_chrome_schema(self, bounded):
        doc = json.loads(trace_to_chrome(bounded))
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(bounded.graph.tasks)
        for e in xs:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)

    def test_empty_chrome_emits_tagged_placeholder(self, empty_bounded):
        # an empty source still yields one visible (tagged) event, so
        # the trace loads in Perfetto instead of rendering as nothing
        doc = json.loads(trace_to_chrome(empty_bounded))
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 1
        assert xs[0]["args"]["placeholder"] is True
        assert xs[0]["dur"] > 0


class TestUtilization:
    def test_range(self, bounded):
        u = utilization(bounded)
        assert 0 < u <= 1.0

    def test_one_worker_is_full(self):
        res = simulate_bounded(build_dag(greedy(5, 2), "TT"), 1)
        assert utilization(res) == pytest.approx(1.0)

    def test_many_workers_low(self):
        res = simulate_bounded(build_dag(greedy(5, 2), "TT"), 1000)
        assert utilization(res) < 0.05

    def test_requires_bounded(self):
        res = simulate_unbounded(build_dag(greedy(5, 2), "TT"))
        with pytest.raises(ValueError):
            utilization(res)

    def test_zero_task_graph_is_trivially_full(self, empty_bounded):
        assert empty_bounded.makespan == 0.0
        assert utilization(empty_bounded) == 1.0


class TestRenderGanttEdgeCases:
    def test_zero_task_graph(self, empty_bounded):
        assert render_gantt(empty_bounded) == "(empty schedule)"

    def test_single_worker_has_one_lane(self):
        res = simulate_bounded(build_dag(greedy(4, 2), "TT"), 1)
        # integer width == integer makespan -> exact 1:1 cell scaling
        art = render_gantt(res, width=int(res.makespan))
        lanes = [ln for ln in art.splitlines() if ln.startswith("P")]
        assert len(lanes) == 1
        assert "." not in lanes[0].split("|")[1]  # one worker never idles

    def test_unbounded_run_raises(self):
        res = simulate_unbounded(build_dag(greedy(4, 2), "TT"))
        with pytest.raises(ValueError, match="bounded"):
            render_gantt(res)
