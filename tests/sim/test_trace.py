"""Tests for trace export and schedule statistics."""

import csv
import io
import json

import pytest

from repro.dag import build_dag
from repro.schemes import greedy
from repro.sim import (simulate_bounded, simulate_unbounded, trace_events,
                       trace_to_csv, trace_to_json, utilization)


@pytest.fixture
def bounded():
    return simulate_bounded(build_dag(greedy(6, 3), "TT"), 4)


class TestTraceEvents:
    def test_one_event_per_task(self, bounded):
        events = trace_events(bounded)
        assert len(events) == len(bounded.graph.tasks)

    def test_fields(self, bounded):
        e = trace_events(bounded)[0]
        assert set(e) == {"task", "kernel", "row", "piv", "col", "j",
                          "start", "finish", "worker"}

    def test_unbounded_worker_sentinel(self):
        res = simulate_unbounded(build_dag(greedy(4, 2), "TT"))
        assert all(e["worker"] == -1 for e in trace_events(res))

    def test_durations_match_weights(self, bounded):
        for e, t in zip(trace_events(bounded), bounded.graph.tasks):
            assert e["finish"] - e["start"] == t.weight


class TestSerialization:
    def test_csv_roundtrip(self, bounded):
        text = trace_to_csv(bounded)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(bounded.graph.tasks)
        assert rows[0]["kernel"] in {"GEQRT", "UNMQR", "TTQRT", "TTMQR"}

    def test_json_roundtrip(self, bounded):
        data = json.loads(trace_to_json(bounded))
        assert len(data) == len(bounded.graph.tasks)
        assert all(d["finish"] >= d["start"] for d in data)


class TestUtilization:
    def test_range(self, bounded):
        u = utilization(bounded)
        assert 0 < u <= 1.0

    def test_one_worker_is_full(self):
        res = simulate_bounded(build_dag(greedy(5, 2), "TT"), 1)
        assert utilization(res) == pytest.approx(1.0)

    def test_many_workers_low(self):
        res = simulate_bounded(build_dag(greedy(5, 2), "TT"), 1000)
        assert utilization(res) < 0.05

    def test_requires_bounded(self):
        res = simulate_unbounded(build_dag(greedy(5, 2), "TT"))
        with pytest.raises(ValueError):
            utilization(res)
