"""Vectorized simulator vs. the reference implementations (S18).

The CSR-indexed simulator must be *byte-identical* to the per-task
Python reference it replaced — same starts, finishes, and worker
assignments — on the grids behind the paper's Tables 3-5.  ``max`` is
exact in floating point, so any divergence is a real bug, not noise.
"""

import numpy as np
import pytest

from repro.dag.build import build_dag
from repro.kernels.costs import Kernel, KernelFamily
from repro.schemes.registry import get_scheme
from repro.sim.simulate import (
    _reference_bottom_levels,
    _reference_bounded,
    _reference_unbounded,
    bottom_levels,
    simulate_bounded,
    simulate_unbounded,
)

# Table 3 (15 x 6 TT), Table 4a (15 x 3), Table 4b samples, Table 5
# (TS families / PlasmaTree BS column)
GRIDS = [
    ("flat-tree", 15, 6, "TT", {}),
    ("fibonacci", 15, 6, "TT", {}),
    ("greedy", 15, 6, "TT", {}),
    ("asap", 15, 3, "TT", {}),
    ("grasap", 15, 3, "TT", {"k": 1}),
    ("greedy", 16, 8, "TT", {}),
    ("greedy", 32, 4, "TT", {}),
    ("binary-tree", 15, 6, "TS", {}),
    ("plasma-tree", 15, 6, "TS", {"bs": 5}),
    ("plasma-tree", 20, 10, "TT", {"bs": 4}),
    ("greedy", 1, 1, "TT", {}),
]

IDS = [f"{s}-{p}x{q}-{f}" for s, p, q, f, _ in GRIDS]


def _graph(scheme, p, q, family, params):
    return build_dag(get_scheme(scheme, p, q, **params),
                     KernelFamily(family))


@pytest.mark.parametrize("scheme,p,q,family,params", GRIDS, ids=IDS)
class TestByteIdentical:
    def test_unbounded(self, scheme, p, q, family, params):
        g = _graph(scheme, p, q, family, params)
        ref = _reference_unbounded(g)
        got = simulate_unbounded(g)
        assert np.array_equal(got.start, ref.start)
        assert np.array_equal(got.finish, ref.finish)
        assert got.makespan == ref.makespan

    def test_bottom_levels(self, scheme, p, q, family, params):
        g = _graph(scheme, p, q, family, params)
        assert np.array_equal(bottom_levels(g), _reference_bottom_levels(g))

    @pytest.mark.parametrize("processors", [1, 3, 8])
    def test_bounded(self, scheme, p, q, family, params, processors):
        g = _graph(scheme, p, q, family, params)
        for priority in ("critical-path", "fifo"):
            ref = _reference_bounded(g, processors, priority=priority)
            got = simulate_bounded(g, processors, priority=priority)
            assert np.array_equal(got.start, ref.start)
            assert np.array_equal(got.finish, ref.finish)
            assert np.array_equal(got.worker, ref.worker)


class TestRescaledWeights:
    def test_unbounded_with_costs(self):
        g = _graph("greedy", 12, 5, "TT", {})
        g = g.rescale({k: float(i + 1) * 0.37 for i, k in enumerate(Kernel)})
        ref = _reference_unbounded(g)
        got = simulate_unbounded(g)
        assert np.array_equal(got.start, ref.start)
        assert np.array_equal(got.finish, ref.finish)

    def test_bounded_with_costs(self):
        g = _graph("fibonacci", 12, 5, "TT", {})
        g = g.rescale({k: float(i + 1) * 0.37 for i, k in enumerate(Kernel)})
        ref = _reference_bounded(g, 4)
        got = simulate_bounded(g, 4)
        assert np.array_equal(got.start, ref.start)
        assert np.array_equal(got.worker, ref.worker)
