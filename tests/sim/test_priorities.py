"""Tests for the list-scheduling priority policies."""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.kernels.costs import Kernel
from repro.schemes import greedy
from repro.sim import PRIORITIES, priority_vector, simulate_bounded, simulate_unbounded


@pytest.fixture
def graph():
    return build_dag(greedy(10, 4), "TT")


class TestPolicies:
    def test_registry_complete(self):
        assert set(PRIORITIES) == {"critical-path", "fifo", "panel-first",
                                   "column-major", "heaviest-first", "random"}

    @pytest.mark.parametrize("name", sorted(PRIORITIES))
    def test_all_policies_schedule_validly(self, graph, name):
        res = simulate_bounded(graph, 4, priority=name)
        for t in graph.tasks:
            for d in t.deps:
                assert res.start[t.tid] >= res.finish[d] - 1e-9

    @pytest.mark.parametrize("name", sorted(PRIORITIES))
    def test_within_bounds(self, graph, name):
        total = graph.total_weight()
        cp = simulate_unbounded(graph).makespan
        ms = simulate_bounded(graph, 6, priority=name).makespan
        assert max(total / 6, cp) - 1e-9 <= ms <= total + 1e-9

    def test_vector_shape(self, graph):
        v = priority_vector(graph, "fifo")
        assert v.shape == (len(graph.tasks),)

    def test_unknown_policy(self, graph):
        with pytest.raises(ValueError, match="unknown priority"):
            priority_vector(graph, "magic")

    def test_explicit_vector_accepted(self, graph):
        v = np.arange(len(graph.tasks), dtype=float)[::-1].copy()
        res = simulate_bounded(graph, 4, priority=v)
        assert res.makespan > 0

    def test_wrong_vector_shape_rejected(self, graph):
        with pytest.raises(ValueError, match="shape"):
            simulate_bounded(graph, 4, priority=np.zeros(3))

    def test_panel_first_prioritizes_panels(self, graph):
        v = priority_vector(graph, "panel-first")
        panel = {Kernel.GEQRT, Kernel.TSQRT, Kernel.TTQRT}
        panel_max = max(v[t.tid] for t in graph.tasks if t.kernel in panel)
        update_min = min(v[t.tid] for t in graph.tasks
                         if t.kernel not in panel)
        assert panel_max < update_min

    def test_random_reproducible(self, graph):
        a = priority_vector(graph, "random", seed=3)
        b = priority_vector(graph, "random", seed=3)
        assert np.array_equal(a, b)

    def test_dispatch_order_perturbs_little(self, graph):
        """The tree dominates; dispatch policy changes makespan by a
        small factor only (the priority-ablation claim)."""
        spans = {name: simulate_bounded(graph, 6, priority=name).makespan
                 for name in PRIORITIES}
        assert max(spans.values()) / min(spans.values()) < 1.5
