"""Tests for the discrete-event simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import build_dag
from repro.kernels.costs import total_weight
from repro.schemes import flat_tree, greedy
from repro.sim import render_gantt, simulate_bounded, simulate_unbounded
from repro.sim.simulate import bottom_levels
from tests.conftest import random_elimination_list


class TestUnbounded:
    def test_empty_graph(self):
        g = build_dag(flat_tree(1, 1), "TT")  # single GEQRT, no elims
        res = simulate_unbounded(g)
        assert res.makespan == 4.0

    def test_start_finish_consistent(self):
        g = build_dag(greedy(8, 4), "TT")
        res = simulate_unbounded(g)
        for t in g.tasks:
            assert res.finish[t.tid] == res.start[t.tid] + t.weight
            for d in t.deps:
                assert res.start[t.tid] >= res.finish[d]

    def test_makespan_is_longest_path(self):
        """Cross-check against networkx's DAG longest path."""
        import networkx as nx
        g = build_dag(greedy(6, 3), "TT")
        res = simulate_unbounded(g)
        nxg = g.to_networkx()
        # weight on node: push onto incoming edges via node attribute
        longest = 0.0
        for t in nx.topological_sort(nxg):
            pass
        dist = {}
        for t in g.tasks:
            best = max((dist[d] for d in t.deps), default=0.0)
            dist[t.tid] = best + t.weight
        assert res.makespan == max(dist.values())

    def test_zero_out_table_shape(self):
        g = build_dag(greedy(7, 3), "TT")
        tb = simulate_unbounded(g).zero_out_table()
        assert tb.shape == (7, 3)
        assert (tb[np.triu_indices(3)] == 0).all()


class TestBounded:
    def test_one_processor_equals_total_weight(self):
        """With P = 1 the makespan is exactly the Section-2.2 invariant."""
        for p, q in [(5, 2), (8, 4), (6, 6)]:
            g = build_dag(greedy(p, q), "TT")
            res = simulate_bounded(g, 1)
            assert res.makespan == total_weight(p, q)

    def test_many_processors_equals_cp(self):
        g = build_dag(greedy(10, 5), "TT")
        cp = simulate_unbounded(g).makespan
        res = simulate_bounded(g, 10_000)
        assert res.makespan == cp

    def test_monotone_in_processors(self):
        g = build_dag(greedy(10, 5), "TT")
        prev = None
        for workers in (1, 2, 4, 8, 16):
            ms = simulate_bounded(g, workers).makespan
            if prev is not None:
                assert ms <= prev + 1e-9
            prev = ms

    def test_never_beats_bounds(self):
        """Any bounded schedule respects max(T/P, cp) <= makespan <= T."""
        g = build_dag(greedy(9, 4), "TT")
        total = g.total_weight()
        cp = simulate_unbounded(g).makespan
        for workers in (2, 3, 7):
            ms = simulate_bounded(g, workers).makespan
            assert ms >= max(total / workers, cp) - 1e-9
            assert ms <= total + 1e-9

    def test_no_worker_overlap(self):
        g = build_dag(greedy(8, 4), "TT")
        res = simulate_bounded(g, 3)
        by_worker = {}
        for t in g.tasks:
            by_worker.setdefault(int(res.worker[t.tid]), []).append(
                (res.start[t.tid], res.finish[t.tid]))
        for w, spans in by_worker.items():
            spans.sort()
            for (s1, f1), (s2, f2) in zip(spans, spans[1:]):
                assert s2 >= f1 - 1e-12, f"worker {w} overlaps"

    def test_dependencies_respected(self):
        g = build_dag(greedy(8, 4), "TT")
        res = simulate_bounded(g, 4)
        for t in g.tasks:
            for d in t.deps:
                assert res.start[t.tid] >= res.finish[d] - 1e-12

    def test_fifo_priority(self):
        g = build_dag(greedy(6, 3), "TT")
        ms = simulate_bounded(g, 4, priority="fifo").makespan
        assert ms >= simulate_unbounded(g).makespan

    def test_bad_inputs(self):
        g = build_dag(flat_tree(3, 1), "TT")
        with pytest.raises(ValueError):
            simulate_bounded(g, 0)
        with pytest.raises(ValueError):
            simulate_bounded(g, 2, priority="magic")

    @given(st.integers(min_value=2, max_value=9),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_property_bounds(self, p, q, workers, seed):
        q = min(p, q)
        rng = np.random.default_rng(seed)
        g = build_dag(random_elimination_list(rng, p, q), "TT")
        total = g.total_weight()
        cp = simulate_unbounded(g).makespan
        ms = simulate_bounded(g, workers).makespan
        assert max(total / workers, cp) - 1e-9 <= ms <= total + 1e-9


class TestBottomLevels:
    def test_sink_equals_weight(self):
        g = build_dag(flat_tree(3, 1), "TT")
        bl = bottom_levels(g)
        succ = g.successors()
        for t in g.tasks:
            if not succ[t.tid]:
                assert bl[t.tid] == t.weight

    def test_source_equals_cp(self):
        g = build_dag(greedy(8, 3), "TT")
        bl = bottom_levels(g)
        cp = simulate_unbounded(g).makespan
        assert bl.max() == cp


class TestGantt:
    def test_render(self):
        g = build_dag(greedy(5, 2), "TT")
        res = simulate_bounded(g, 3)
        text = render_gantt(res, width=60)
        assert "makespan" in text
        assert text.count("P0") == 1

    def test_requires_bounded(self):
        g = build_dag(greedy(5, 2), "TT")
        res = simulate_unbounded(g)
        with pytest.raises(ValueError):
            render_gantt(res)
