"""Tests for the :class:`repro.runtime.ExecOptions` bundle (S18 satellite).

Validation, the legacy-kwarg merge rules of :meth:`ExecOptions.resolve`,
and equivalence of bundled vs individual keywords through
``execute_graph`` and ``factor``.
"""

import numpy as np
import pytest

from repro import ExecOptions, factor
from repro.dag import build_dag
from repro.runtime import execute_graph
from repro.schemes import greedy
from repro.tiles import TiledMatrix


class TestValidation:
    def test_defaults(self):
        o = ExecOptions()
        assert (o.mode, o.workers, o.numeric, o.start_method, o.pool) == (
            "task", None, "auto", None, None)

    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ExecOptions(mode="quantum")

    def test_bad_numeric(self):
        with pytest.raises(ValueError, match="numeric"):
            ExecOptions(numeric="fortran")

    def test_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ExecOptions(workers=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecOptions().mode = "batched"


class TestResolve:
    def test_none_builds_from_legacy(self):
        o = ExecOptions.resolve(None, mode="batched", workers=2,
                                numeric="numpy", start_method=None, pool=None)
        assert o == ExecOptions(mode="batched", workers=2, numeric="numpy")

    def test_bundle_with_default_kwargs(self):
        bundle = ExecOptions(mode="batched", workers=3)
        o = ExecOptions.resolve(bundle, mode="task", workers=None,
                                numeric="auto", start_method=None, pool=None)
        assert o is bundle

    def test_agreeing_kwarg_is_harmless(self):
        bundle = ExecOptions(mode="batched")
        o = ExecOptions.resolve(bundle, mode="batched", workers=None,
                                numeric="auto", start_method=None, pool=None)
        assert o.mode == "batched"

    def test_conflicting_kwarg_raises(self):
        bundle = ExecOptions(mode="task")
        with pytest.raises(ValueError, match="conflicting execution options"):
            ExecOptions.resolve(bundle, mode="batched", workers=None,
                                numeric="auto", start_method=None, pool=None)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            ExecOptions.resolve({"mode": "task"}, mode="task", workers=None,
                                numeric="auto", start_method=None, pool=None)


class TestThreading:
    """Bundled options drive the same execution paths as bare kwargs."""

    def _matrix(self):
        return np.random.default_rng(7).standard_normal((48, 24))

    def test_factor_options_equivalent(self):
        a = self._matrix()
        f_kw = factor(a, nb=8, ib=4, mode="batched")
        f_opt = factor(a, nb=8, ib=4, options=ExecOptions(mode="batched"))
        assert np.allclose(f_kw.r(), f_opt.r())
        assert f_opt.residual(a) < 1e-12

    def test_factor_conflict_raises(self):
        # keyword at a non-default value disagreeing with the bundle
        with pytest.raises(ValueError, match="conflicting execution options"):
            factor(self._matrix(), nb=8, ib=4, mode="batched",
                   options=ExecOptions(mode="task"))

    def test_execute_graph_accepts_options(self):
        a = self._matrix()
        tiled = TiledMatrix(a.copy(), 8)
        g = build_dag(greedy(tiled.p, tiled.q), "TT")
        ctx = execute_graph(g, tiled, ib=4,
                            options=ExecOptions(mode="task", workers=2))
        r = np.triu(ctx.tiled.array[:24])
        _, r_np = np.linalg.qr(a)
        assert np.allclose(np.abs(r), np.abs(r_np), atol=1e-11)

    def test_execute_graph_conflict_raises(self):
        tiled = TiledMatrix(self._matrix(), 8)
        g = build_dag(greedy(tiled.p, tiled.q), "TT")
        with pytest.raises(ValueError, match="conflicting execution options"):
            execute_graph(g, tiled, workers=4,
                          options=ExecOptions(workers=2))
