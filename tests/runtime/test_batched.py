"""Batched backend end-to-end equivalence + the priority executor.

The acceptance bar from ISSUE 5: ``execute_graph(mode="batched")``
reconstructs ``Q @ R`` within ``1e-10`` relative error of the reference
backend on every scheme family, square and tall grids, ragged edges,
and all inner blocking sizes.
"""

import numpy as np
import pytest

from repro.api import factor, plan
from repro.dag.tasks import Kernel
from repro.runtime import execute_graph, level_kernel_groups
from repro.runtime.executor import _clamp_ib
from repro.tiles import TiledMatrix
from tests.conftest import random_matrix

NB = 8
SCHEMES = ["greedy", "fibonacci", "flat-tree", "binary-tree",
           "plasma(bs=2)", "asap"]


def rel_err(x, y, a):
    return np.linalg.norm(x - y) / max(np.linalg.norm(a), 1e-300)


def assert_equivalent(a, nb=NB, ib=4, **kw):
    f_ref = factor(a, nb=nb, ib=ib, **kw)
    f_bat = factor(a, nb=nb, ib=ib, mode="batched", **kw)
    assert rel_err(f_bat.r(), f_ref.r(), a) < 1e-10
    assert f_bat.residual(a) < 1e-10
    assert f_bat.orthogonality() < 1e-10
    return f_bat


class TestBatchedFactorization:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("family", ["TT", "TS"])
    def test_all_schemes_families(self, rng, scheme, family):
        a = np.asarray(random_matrix(rng, 7 * NB, 3 * NB, np.float64))
        assert_equivalent(a, scheme=scheme, family=family)

    @pytest.mark.parametrize("shape", [(64, 64), (96, 32), (70, 33),
                                       (61, 61), (50, 17)])
    def test_square_tall_ragged(self, rng, dtype, shape):
        a = np.asarray(random_matrix(rng, *shape, dtype))
        assert_equivalent(a, scheme="greedy")

    @pytest.mark.parametrize("ib", [1, NB // 2, NB])
    def test_inner_blocking(self, rng, dtype, ib):
        a = np.asarray(random_matrix(rng, 70, 33, dtype))
        assert_equivalent(a, ib=ib, scheme="greedy")

    def test_apply_q_roundtrip(self, rng, dtype):
        """The batched context's T factors drive apply_q correctly."""
        a = np.asarray(random_matrix(rng, 70, 33, dtype))
        f = factor(a, nb=NB, ib=4, scheme="greedy", mode="batched")
        x = np.asarray(random_matrix(rng, 70, 3, dtype))
        y = f.q_matmul(f.qh_matmul(x))
        assert np.allclose(y, x, atol=1e-10)
        # right-side application too
        z = np.asarray(random_matrix(rng, 3, 70, dtype))
        w = f.matmul_q(f.matmul_q(z, adjoint=True))
        assert np.allclose(w, z, atol=1e-10)

    def test_mode_validation(self, rng):
        a = np.asarray(random_matrix(rng, 32, 16, np.float64))
        with pytest.raises(ValueError, match="mode"):
            factor(a, nb=NB, mode="warp")


class TestLevelGroups:
    def test_partition_and_independence(self):
        pl = plan(6, 4, "greedy")
        groups = pl.level_groups()
        assert pl.level_groups() is groups  # memoized
        seen = np.concatenate([g.tids for g in groups])
        assert sorted(seen.tolist()) == list(range(len(pl.graph.tasks)))
        idx = pl.graph.index()
        for g in groups:
            assert np.all(idx.level[g.tids] == g.level)
            kinds = {pl.graph.tasks[t].kernel for t in g.tids.tolist()}
            assert kinds == {g.kernel}
        # levels ascend, kernels grouped within a level
        lv = [g.level for g in groups]
        assert lv == sorted(lv)

    def test_accepts_graph_or_plan(self):
        pl = plan(4, 3, "fibonacci")
        a = level_kernel_groups(pl)
        b = level_kernel_groups(pl.graph)
        assert len(a) == len(b)
        with pytest.raises(TypeError):
            level_kernel_groups(object())


class TestBatchedObservability:
    def _run(self, rng, **kw):
        from repro.obs.tracer import Tracer

        a = np.asarray(random_matrix(rng, 48, 24, np.float64))
        work = np.zeros((48, 24))
        work[...] = a
        tiled = TiledMatrix(work, NB)
        pl = plan(6, 3, "greedy")
        tracer = Tracer()
        ctx = execute_graph(pl, tiled, ib=4, mode="batched", tracer=tracer,
                            collect_metrics=True, **kw)
        return pl, tracer, ctx

    def test_group_spans_and_metrics(self, rng):
        pl, tracer, ctx = self._run(rng)
        m = ctx.metrics
        groups = pl.level_groups()
        assert len(tracer) == len(groups)
        assert m.counter("batched.groups").value == len(groups)
        assert m.counter("batched.levels").value == groups[-1].level + 1
        retired = sum(m.counter(f"tasks.retired.{k.value}").value
                      for k in Kernel)
        assert retired == len(pl.graph.tasks)
        hist = m.get("batched.group_size")
        assert hist is not None and hist.count == len(groups)
        # span names carry the batch size and level
        assert "[x" in tracer.spans[0].name and "@L" in tracer.spans[0].name

    def test_analyze_tracer_consumes_group_spans(self, rng):
        from repro.obs.analyze import analyze_tracer

        _, tracer, _ = self._run(rng)
        report = analyze_tracer(tracer)
        assert report.tasks == len(tracer)
        assert report.makespan > 0

    def test_on_task_done_sees_every_task(self, rng):
        seen = []
        pl, _, _ = self._run(
            rng, on_task_done=lambda t, i, n: seen.append((t.tid, i, n)))
        n = len(pl.graph.tasks)
        assert len(seen) == n
        assert seen[-1][1:] == (n, n)
        assert sorted(t for t, _, _ in seen) == list(range(n))


class TestPriorityExecutor:
    def _factor_threaded(self, rng, graph_or_plan, a):
        work = a.copy()
        tiled = TiledMatrix(work, NB)
        ctx = execute_graph(graph_or_plan, tiled, ib=4, workers=4,
                            collect_metrics=True)
        return work, ctx.metrics

    def test_priority_correct_and_counts_inversions(self, rng):
        a = np.asarray(random_matrix(rng, 96, 48, np.float64))
        pl = plan(12, 6, "greedy")
        work, m = self._factor_threaded(rng, pl, a)
        f_ref = factor(a, nb=NB, ib=4, scheme="greedy")
        assert rel_err(np.triu(work[:48, :48]), f_ref.r(), a) < 1e-12
        # a 12 x 6 greedy DAG on 4 workers must reorder vs FIFO sometimes
        assert m.counter("scheduler.priority_inversions_avoided").value > 0

    def test_fifo_fallback_without_plan(self, rng):
        a = np.asarray(random_matrix(rng, 96, 48, np.float64))
        pl = plan(12, 6, "greedy")
        work, m = self._factor_threaded(rng, pl.graph, a)  # raw TaskGraph
        f_ref = factor(a, nb=NB, ib=4, scheme="greedy")
        assert rel_err(np.triu(work[:48, :48]), f_ref.r(), a) < 1e-12
        # FIFO keys make the heap pop in push order: no inversions
        assert m.counter("scheduler.priority_inversions_avoided").value == 0

    def test_bottom_levels_memoized(self):
        pl = plan(6, 3, "greedy")
        bl = pl.bottom_levels()
        assert pl.bottom_levels() is bl
        assert bl.shape == (len(pl.graph.tasks),)


class TestIbClamp:
    def test_clamp_helper(self):
        assert _clamp_ib(32, 8, None) == 8
        assert _clamp_ib(4, 8, None) == 4
        assert _clamp_ib(0, 8, None) == 0  # invalid ib passes through

    @pytest.mark.parametrize("mode", ["task", "batched"])
    def test_oversized_ib_clamped_and_counted(self, rng, mode):
        a = np.asarray(random_matrix(rng, 48, 24, np.float64))
        work = a.copy()
        tiled = TiledMatrix(work, NB)
        pl = plan(6, 3, "greedy")
        ctx = execute_graph(pl, tiled, ib=100, mode=mode,
                            collect_metrics=True)
        assert ctx.ib == NB
        assert ctx.metrics.counter("executor.ib_clamped").value == 1
        f_ref = factor(a, nb=NB, ib=NB, scheme="greedy")
        assert rel_err(np.triu(work[:24, :24]), f_ref.r(), a) < 1e-10


class TestNumericPaths:
    """The batched backend's factor-kernel selection (numpy vs LAPACK)."""

    @pytest.mark.parametrize("shape", [(64, 64), (70, 33), (50, 17)])
    @pytest.mark.parametrize("family", ["TT", "TS"])
    def test_numpy_lapack_agree(self, rng, shape, family):
        a = np.asarray(random_matrix(rng, *shape, np.float64))
        f_np = factor(a, nb=NB, ib=4, scheme="greedy", family=family,
                      mode="batched", numeric="numpy")
        f_la = factor(a, nb=NB, ib=4, scheme="greedy", family=family,
                      mode="batched", numeric="lapack")
        assert rel_err(f_la.r(), f_np.r(), a) < 1e-10
        assert f_la.residual(a) < 1e-10
        assert f_la.orthogonality() < 1e-10

    @pytest.mark.parametrize("numeric", ["numpy", "lapack"])
    def test_explicit_numeric_matches_reference(self, rng, numeric):
        a = np.asarray(random_matrix(rng, 70, 33, np.float64))
        assert_equivalent(a, scheme="greedy", numeric=numeric)

    def test_lapack_rejects_complex(self, rng):
        a = np.asarray(random_matrix(rng, 32, 16, np.complex128))
        with pytest.raises(ValueError, match="lapack"):
            factor(a, nb=NB, ib=4, scheme="greedy", mode="batched",
                   numeric="lapack")

    def test_auto_on_complex_uses_numpy(self, rng):
        a = np.asarray(random_matrix(rng, 48, 24, np.complex128))
        work = a.copy()
        tiled = TiledMatrix(work, NB)
        pl = plan(6, 3, "greedy")
        ctx = execute_graph(pl, tiled, ib=4, mode="batched",
                            collect_metrics=True)
        assert ctx.metrics.counter("batched.numeric.numpy").value == 1
        assert ctx.metrics.counter("batched.numeric.lapack").value == 0

    def test_auto_on_real_uses_lapack(self, rng):
        a = np.asarray(random_matrix(rng, 48, 24, np.float64))
        tiled = TiledMatrix(a.copy(), NB)
        pl = plan(6, 3, "greedy")
        ctx = execute_graph(pl, tiled, ib=4, mode="batched",
                            collect_metrics=True)
        assert ctx.metrics.counter("batched.numeric.lapack").value == 1

    def test_bad_numeric_rejected(self, rng):
        a = np.asarray(random_matrix(rng, 32, 16, np.float64))
        with pytest.raises(ValueError, match="numeric"):
            factor(a, nb=NB, ib=4, scheme="greedy", mode="batched",
                   numeric="fused")

    def test_lapack_preserves_tt_cohabitation(self, rng):
        """TTQRT's LAPACK path must not clobber the GEQRT vectors that
        share the zeroed tile's strictly lower triangle."""
        a = np.asarray(random_matrix(rng, 8 * NB, 4 * NB, np.float64))
        f = factor(a, nb=NB, ib=4, scheme="binary-tree", family="TT",
                   mode="batched", numeric="lapack")
        # apply_q replays those vectors; residual catches any damage
        assert f.residual(a) < 1e-10
        assert f.orthogonality() < 1e-10
