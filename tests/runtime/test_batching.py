"""Frontier micro-batching: group formation + dispatch equivalence.

The acceptance bar from ISSUE 10: grouped dispatch never changes
results on the numpy path — ``batch="auto"`` is bit-exact against
``batch="off"`` through the process backend (fork and spawn) and the
threaded executor, ``batch=1`` degenerates to classic single-task
dispatch exactly, and the :class:`~repro.runtime.groups.GroupFrontier`
only ever forms same-kernel groups of mutually-ready tasks on any
tile DAG (QR, LU, Cholesky — the latter two execute nothing numeric
in this repo, so their coverage is the group-formation properties the
process backend relies on).
"""

import numpy as np
import pytest

from repro.api import factor, plan
from repro.obs.metrics import MetricsRegistry
from repro.problems import build_cholesky_dag, build_lu_dag
from repro.runtime import ProcessPool
from repro.runtime.groups import (
    GroupFrontier,
    dispatch_arrays,
    resolve_batch,
)
from repro.runtime.options import ExecOptions
from tests.conftest import random_matrix

NB = 8


@pytest.fixture(scope="module")
def pool():
    with ProcessPool(workers=2, start_method="fork") as p:
        yield p


def qr_graph(p=4, q=4):
    return plan(p, q, "greedy").graph


# ----------------------------------------------------------------------
# GroupFrontier properties
# ----------------------------------------------------------------------

def drain_in_groups(graph, batch, limit=None):
    """Run the group scheduler dry on ``graph``; yield each group.

    Mirrors the process backend's loop: push tasks as their deps
    retire, pop compatible groups, retire the whole group at once.
    Asserts en route that a popped task never precedes one of its
    dependencies.
    """
    da = dispatch_arrays(graph)
    fr = GroupFrontier(da.codes, batch=batch, src=da.src)
    ndeps = np.array([len(t.deps) for t in graph.tasks])
    missing = ndeps.copy()
    done = np.zeros(len(graph.tasks), dtype=bool)
    for t in graph.tasks:
        if not t.deps:
            fr.push(t.tid)
    while len(fr):
        code, tids = fr.pop_group(limit=limit)
        assert tids, "pop_group returned an empty group"
        for tid in tids:
            assert int(da.codes[tid]) == code, "mixed-kernel group"
            assert missing[tid] == 0, "popped before its deps retired"
            assert not done[tid], "task popped twice"
        for tid in tids:
            done[tid] = True
            for t2 in graph.tasks:
                if tid in t2.deps:
                    missing[t2.tid] -= 1
                    if missing[t2.tid] == 0:
                        fr.push(t2.tid)
        yield code, tids
    assert done.all(), "groups did not partition the DAG"


@pytest.mark.parametrize("build", [
    qr_graph,
    lambda: build_lu_dag(5, 5),
    lambda: build_cholesky_dag(5),
], ids=["qr", "lu", "cholesky"])
@pytest.mark.parametrize("batch", [1, 3, 64])
def test_groups_partition_and_respect_deps(build, batch):
    g = build()
    total = sum(len(tids) for _, tids in drain_in_groups(g, batch))
    assert total == len(g.tasks)


def test_groups_never_exceed_batch_or_limit():
    g = qr_graph(6, 6)
    for _, tids in drain_in_groups(g, batch=4):
        assert len(tids) <= 4
    for _, tids in drain_in_groups(g, batch=64, limit=5):
        assert len(tids) <= 5


def test_batch_one_pops_globally_best_task():
    """``batch=1`` must reduce to a plain priority heap: ascending
    keys pop in exactly key order regardless of kernel bucketing."""
    codes = np.array([0, 1, 0, 1, 2, 0], dtype=np.int8)
    fr = GroupFrontier(codes, batch=1)
    keys = [5.0, 1.0, 3.0, 0.0, 4.0, 2.0]
    for tid, k in enumerate(keys):
        fr.push(tid, key=k)
    order = [fr.pop_group()[1][0] for _ in range(len(keys))]
    assert order == sorted(range(len(keys)), key=lambda t: keys[t])


def test_source_affinity_drains_best_bucket_first():
    """The best task's whole V/T bucket rides along before any other
    source slot is touched — the property that makes one group one
    broadcast T fetch."""
    codes = np.zeros(6, dtype=np.int8)
    src = np.array([7, 7, 7, 9, 9, 9])
    fr = GroupFrontier(codes, batch=4, src=src)
    # best key lands in bucket 7; its siblings have *worse* keys than
    # bucket 9's, yet must still be grouped with it
    for tid, key in [(0, 0.0), (1, 5.0), (2, 6.0),
                     (3, 1.0), (4, 2.0), (5, 3.0)]:
        fr.push(tid, key=key)
    _, tids = fr.pop_group()
    assert set(tids[:3]) == {0, 1, 2}
    assert len(tids) == 4 and tids[3] == 3


def test_empty_frontier_raises():
    fr = GroupFrontier(np.zeros(1, dtype=np.int8), batch=2)
    with pytest.raises(IndexError):
        fr.pop_group()
    with pytest.raises(ValueError):
        GroupFrontier(np.zeros(1, dtype=np.int8), batch=0)


# ----------------------------------------------------------------------
# resolve_batch
# ----------------------------------------------------------------------

class TestResolveBatch:
    def test_off_is_one(self):
        assert resolve_batch("off", 64) == 1

    def test_int_passthrough(self):
        assert resolve_batch(17, 64) == 17

    def test_bad_values_raise(self):
        with pytest.raises(ValueError):
            resolve_batch(0, 64)
        with pytest.raises(ValueError):
            resolve_batch(-3, 64)

    def test_auto_scales_down_with_tile_size(self):
        small = resolve_batch("auto", 32, workers=4)
        large = resolve_batch("auto", 512, workers=4)
        assert small > large
        assert large == 1  # big tiles dwarf the queue tax

    def test_auto_deepens_for_a_single_worker(self):
        solo = resolve_batch("auto", 64, workers=1)
        crowd = resolve_batch("auto", 64, workers=8)
        assert solo > crowd

    def test_exec_options_validation(self):
        assert ExecOptions(batch="auto").batch == "auto"
        assert ExecOptions(batch="off").batch == "off"
        assert ExecOptions(batch=4).batch == 4
        with pytest.raises(ValueError):
            ExecOptions(batch=0)
        with pytest.raises(ValueError):
            ExecOptions(batch="bogus")


# ----------------------------------------------------------------------
# end-to-end equivalence (numpy path is bit-exact)
# ----------------------------------------------------------------------

SHAPES = [(64, 64), (70, 33), (96, 32)]


class TestBitExactEquivalence:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_process_auto_matches_off(self, rng, pool, shape):
        a = random_matrix(rng, *shape, np.float64)
        kw = dict(nb=NB, ib=4, mode="process", pool=pool,
                  numeric="numpy")
        f0 = factor(a, batch="off", **kw)
        f1 = factor(a, batch="auto", **kw)
        assert np.array_equal(f0.r(), f1.r())
        assert np.array_equal(f0.q(), f1.q())

    def test_batch_one_is_the_degenerate_unbatched_path(self, rng, pool):
        a = random_matrix(rng, 70, 33, np.float64)
        kw = dict(nb=NB, ib=4, mode="process", pool=pool,
                  numeric="numpy")
        f0 = factor(a, batch="off", **kw)
        f1 = factor(a, batch=1, **kw)
        assert np.array_equal(f0.r(), f1.r())
        assert np.array_equal(f0.q(), f1.q())

    def test_spawn_matches_fork(self, rng):
        a = random_matrix(rng, 64, 64, np.float64)
        kw = dict(nb=NB, ib=4, mode="process", workers=2,
                  numeric="numpy", batch="auto")
        f_f = factor(a, start_method="fork", **kw)
        f_s = factor(a, start_method="spawn", **kw)
        assert np.array_equal(f_f.r(), f_s.r())

    @pytest.mark.parametrize("scheme,family", [("greedy", "TT"),
                                               ("flat-tree", "TS")])
    def test_threaded_executor_auto_matches_off(self, rng, scheme,
                                                family):
        a = random_matrix(rng, 70, 33, np.float64)
        kw = dict(nb=NB, ib=4, backend="reference", workers=2,
                  scheme=scheme, family=family)
        f0 = factor(a, batch="off", **kw)
        f1 = factor(a, batch="auto", **kw)
        assert np.array_equal(f0.r(), f1.r())
        assert np.array_equal(f0.q(), f1.q())


# ----------------------------------------------------------------------
# dispatch mechanics
# ----------------------------------------------------------------------

class TestDispatchMechanics:
    def test_batch_metrics_recorded(self, rng, pool):
        a = random_matrix(rng, 96, 96, np.float64)
        reg = MetricsRegistry()
        factor(a, nb=NB, ib=4, mode="process", pool=pool,
               batch=8, metrics=reg)
        assert "procpool.batch.groups" in reg
        assert "procpool.batch.descriptors" in reg
        assert "procpool.batch.group_size" in reg
        groups = reg.counter("procpool.batch.groups").value
        descriptors = reg.counter("procpool.batch.descriptors").value
        assert 0 < descriptors <= groups
        assert reg.histogram("procpool.batch.group_size").max <= 8

    def test_batch_off_records_no_group_metrics(self, rng, pool):
        a = random_matrix(rng, 48, 48, np.float64)
        reg = MetricsRegistry()
        factor(a, nb=NB, ib=4, mode="process", pool=pool,
               batch="off", metrics=reg)
        assert "procpool.batch.groups" not in reg

    def test_giant_batch_cannot_starve_a_worker(self, rng):
        """Regression: the in-flight cap counts *constituent tasks*,
        not descriptors.  With a group size far above the DAG width a
        descriptor-counting cap would hand one worker the whole
        frontier; the task-counting cap keeps both workers fed."""
        from repro.obs import DistributedTracer

        a = random_matrix(rng, 128, 128, np.float64)
        tr = DistributedTracer()
        with ProcessPool(workers=2, start_method="fork") as p:
            factor(a, nb=NB, ib=4, mode="process", pool=p,
                   batch=4, tracer=tr)
        by_worker = {}
        for span in tr.spans:
            by_worker[span.worker] = by_worker.get(span.worker, 0) + 1
        assert set(by_worker) == {0, 1}, by_worker
        # neither worker ran essentially everything
        assert min(by_worker.values()) >= 0.1 * max(by_worker.values())

    def test_error_inside_a_multi_group_descriptor_propagates(
            self, rng, monkeypatch):
        """A kernel failure mid-descriptor must surface with the worker
        traceback and release every in-flight member, leaving the pool
        usable."""
        import dataclasses

        from repro.kernels import backend as backend_mod

        def boom(v, t, c):
            raise FloatingPointError("injected apply failure")

        broken = dataclasses.replace(backend_mod.BACKENDS["reference"],
                                     unmqr=boom)
        monkeypatch.setitem(backend_mod.BACKENDS, "reference", broken)
        a = random_matrix(rng, 96, 96, np.float64)
        with ProcessPool(workers=2, start_method="fork") as p:
            with pytest.raises(RuntimeError,
                               match="injected apply failure"):
                factor(a, nb=NB, ib=4, mode="process", pool=p,
                       numeric="numpy", batch=8)
            monkeypatch.undo()
            f = factor(a, nb=NB, ib=4, mode="process", pool=p,
                       numeric="lapack", batch=8)
            assert f.residual(a) < 1e-12
