"""Tests for the sequential and threaded executors."""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.runtime import execute_graph
from repro.schemes import greedy, flat_tree
from repro.tiles import TiledMatrix
from tests.conftest import random_matrix


def factor(a, nb, workers, backend="reference", family="TT", ib=4):
    tiled = TiledMatrix(a.copy(), nb)
    g = build_dag(greedy(tiled.p, tiled.q), family)
    ctx = execute_graph(g, tiled, backend=backend, ib=ib, workers=workers)
    return ctx


class TestSequentialVsThreaded:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_same_r(self, rng, dtype, workers):
        a = random_matrix(rng, 48, 24, dtype)
        seq = factor(a, 8, None)
        par = factor(a, 8, workers)
        r_seq = np.triu(seq.tiled.array[:24])
        r_par = np.triu(par.tiled.array[:24])
        assert np.allclose(r_seq, r_par, atol=1e-12)

    def test_threaded_deterministic_result(self, rng):
        """Different thread interleavings must not change the numbers
        (each tile sequence of kernels is fixed by the DAG)."""
        a = random_matrix(rng, 48, 24)
        results = [np.triu(factor(a, 8, 4).tiled.array[:24]) for _ in range(5)]
        for r in results[1:]:
            assert np.array_equal(r, results[0])

    def test_threaded_repeated_stress(self, rng):
        for trial in range(8):
            a = random_matrix(rng, 40, 24)
            ctx = factor(a, 8, 8, backend="lapack", ib=8)
            r = np.triu(ctx.tiled.array[:24])
            _, r_np = np.linalg.qr(a)
            assert np.allclose(np.abs(r), np.abs(r_np), atol=1e-11), trial


class TestErrorPropagation:
    def test_kernel_error_raised(self, rng):
        a = random_matrix(rng, 16, 8)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(2, 1), "TT")
        # sabotage: make ib invalid so the kernel raises
        with pytest.raises(Exception):
            execute_graph(g, tiled, ib=0, workers=2)

    def test_sequential_kernel_error(self, rng):
        a = random_matrix(rng, 16, 8)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(2, 1), "TT")
        with pytest.raises(Exception):
            execute_graph(g, tiled, ib=0, workers=None)


class TestProgressObserver:
    def test_sequential_callback(self, rng):
        a = random_matrix(rng, 24, 16)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(tiled.p, tiled.q), "TT")
        seen = []
        execute_graph(g, tiled, ib=4,
                      on_task_done=lambda t, i, n: seen.append((i, n)))
        assert len(seen) == len(g.tasks)
        assert seen[0] == (1, len(g.tasks))
        assert seen[-1] == (len(g.tasks), len(g.tasks))

    def test_threaded_callback_counts(self, rng):
        a = random_matrix(rng, 24, 16)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(tiled.p, tiled.q), "TT")
        seen = []
        execute_graph(g, tiled, ib=4, workers=4,
                      on_task_done=lambda t, i, n: seen.append(i))
        assert sorted(seen) == list(range(1, len(g.tasks) + 1))


class TestApplyQ:
    def test_apply_q_shape_check(self, rng):
        a = random_matrix(rng, 16, 8)
        ctx = factor(a, 8, None)
        with pytest.raises(ValueError, match="rows"):
            ctx.apply_q(np.zeros((15, 1)))

    def test_ts_family_apply(self, rng):
        a = random_matrix(rng, 24, 8)
        tiled = TiledMatrix(a.copy(), 8)
        g = build_dag(flat_tree(tiled.p, tiled.q), "TS")
        ctx = execute_graph(g, tiled, ib=4)
        c = a.copy()
        ctx.apply_q(c, adjoint=True)
        assert np.allclose(c[:8], np.triu(tiled.array[:8]), atol=1e-12)
        assert np.allclose(c[8:], 0, atol=1e-12)
