"""Tests for the sequential and threaded executors."""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.runtime import execute_graph
from repro.schemes import greedy, flat_tree
from repro.tiles import TiledMatrix
from tests.conftest import random_matrix


def factor(a, nb, workers, backend="reference", family="TT", ib=4, **kwargs):
    tiled = TiledMatrix(a.copy(), nb)
    g = build_dag(greedy(tiled.p, tiled.q), family)
    ctx = execute_graph(g, tiled, backend=backend, ib=ib, workers=workers,
                        **kwargs)
    return ctx


class TestSequentialVsThreaded:
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_same_r(self, rng, dtype, workers):
        a = random_matrix(rng, 48, 24, dtype)
        seq = factor(a, 8, None)
        par = factor(a, 8, workers)
        r_seq = np.triu(seq.tiled.array[:24])
        r_par = np.triu(par.tiled.array[:24])
        assert np.allclose(r_seq, r_par, atol=1e-12)

    def test_threaded_deterministic_result(self, rng):
        """Different thread interleavings must not change the numbers
        (each tile sequence of kernels is fixed by the DAG)."""
        a = random_matrix(rng, 48, 24)
        results = [np.triu(factor(a, 8, 4).tiled.array[:24]) for _ in range(5)]
        for r in results[1:]:
            assert np.array_equal(r, results[0])

    def test_threaded_repeated_stress(self, rng):
        for trial in range(8):
            a = random_matrix(rng, 40, 24)
            ctx = factor(a, 8, 8, backend="lapack", ib=8)
            r = np.triu(ctx.tiled.array[:24])
            _, r_np = np.linalg.qr(a)
            assert np.allclose(np.abs(r), np.abs(r_np), atol=1e-11), trial


class TestErrorPropagation:
    def test_kernel_error_raised(self, rng):
        a = random_matrix(rng, 16, 8)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(2, 1), "TT")
        # sabotage: make ib invalid so the kernel raises
        with pytest.raises(Exception):
            execute_graph(g, tiled, ib=0, workers=2)

    def test_sequential_kernel_error(self, rng):
        a = random_matrix(rng, 16, 8)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(2, 1), "TT")
        with pytest.raises(Exception):
            execute_graph(g, tiled, ib=0, workers=None)


class TestProgressObserver:
    def test_sequential_callback(self, rng):
        a = random_matrix(rng, 24, 16)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(tiled.p, tiled.q), "TT")
        seen = []
        execute_graph(g, tiled, ib=4,
                      on_task_done=lambda t, i, n: seen.append((i, n)))
        assert len(seen) == len(g.tasks)
        assert seen[0] == (1, len(g.tasks))
        assert seen[-1] == (len(g.tasks), len(g.tasks))

    def test_threaded_callback_counts(self, rng):
        a = random_matrix(rng, 24, 16)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(tiled.p, tiled.q), "TT")
        seen = []
        execute_graph(g, tiled, ib=4, workers=4,
                      on_task_done=lambda t, i, n: seen.append(i))
        assert sorted(seen) == list(range(1, len(g.tasks) + 1))

    def test_raising_observer_does_not_deadlock(self, rng):
        """Regression: an observer exception inside retire() used to
        escape before done was set, hanging done.wait() forever."""
        a = random_matrix(rng, 24, 16)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(tiled.p, tiled.q), "TT")

        def bad_observer(t, i, n):
            raise RuntimeError("observer blew up")

        with pytest.raises(RuntimeError, match="observer blew up"):
            execute_graph(g, tiled, ib=4, workers=4,
                          on_task_done=bad_observer)

    def test_raising_observer_midway(self, rng):
        a = random_matrix(rng, 24, 16)
        tiled = TiledMatrix(a, 8)
        g = build_dag(greedy(tiled.p, tiled.q), "TT")
        calls = []

        def flaky(t, i, n):
            calls.append(i)
            if i == 5:
                raise ValueError("boom at 5")

        with pytest.raises(ValueError, match="boom at 5"):
            execute_graph(g, tiled, ib=4, workers=2, on_task_done=flaky)
        assert 5 in calls


class TestTracing:
    def test_threaded_tracer_records_every_task(self, rng):
        a = random_matrix(rng, 32, 16)
        tracer = Tracer()
        ctx = factor(a, 8, 4, tracer=tracer)
        assert ctx.tracer is tracer
        assert len(tracer) == len(ctx.graph.tasks)
        assert sorted(s.tid for s in tracer.spans) == [
            t.tid for t in ctx.graph.tasks]
        for s in tracer.spans:
            assert s.submit <= s.start <= s.finish
            assert 0 <= s.worker < 4
        assert tracer.makespan() > 0

    def test_sequential_tracer_single_worker(self, rng):
        a = random_matrix(rng, 24, 16)
        tracer = Tracer()
        ctx = factor(a, 8, None, tracer=tracer)
        assert len(tracer) == len(ctx.graph.tasks)
        assert {s.worker for s in tracer.spans} == {0}

    def test_null_tracer_records_nothing(self, rng):
        """Disabled tracing must not capture spans, and the result must
        match the sequential reference exactly."""
        a = random_matrix(rng, 32, 16)
        ctx = factor(a, 8, 4, tracer=NULL_TRACER)
        assert len(NULL_TRACER) == 0
        assert ctx.tracer is None  # null path: executor drops it entirely
        r_seq = np.triu(factor(a, 8, None).tiled.array[:16])
        assert np.allclose(np.triu(ctx.tiled.array[:16]), r_seq, atol=1e-12)

    def test_untraced_run_has_no_observability_state(self, rng):
        a = random_matrix(rng, 16, 8)
        ctx = factor(a, 8, 2)
        assert ctx.tracer is None and ctx.metrics is None


class TestMetrics:
    def test_collect_metrics_threaded(self, rng):
        a = random_matrix(rng, 32, 16)
        ctx = factor(a, 8, 4, collect_metrics=True)
        m = ctx.metrics
        assert m is not None
        n = len(ctx.graph.tasks)
        retired = sum(m.get(name).value for name in m.names()
                      if name.startswith("tasks.retired."))
        assert retired == n
        hist_total = sum(m.get(name).count for name in m.names()
                         if name.startswith("kernel.seconds."))
        assert hist_total == n
        assert m.counter("scheduler.tasks_total").value == n
        assert m.counter("scheduler.lock_hold_seconds").value > 0
        assert m.gauge("scheduler.inflight_tasks").samples  # time series

    def test_explicit_registry_reused(self, rng):
        a = random_matrix(rng, 16, 8)
        reg = MetricsRegistry()
        ctx = factor(a, 8, 2, metrics=reg)
        assert ctx.metrics is reg
        assert reg.counter("scheduler.tasks_total").value == len(
            ctx.graph.tasks)

    def test_sequential_metrics(self, rng):
        a = random_matrix(rng, 24, 16)
        ctx = factor(a, 8, None, collect_metrics=True)
        m = ctx.metrics
        retired = sum(m.get(name).value for name in m.names()
                      if name.startswith("tasks.retired."))
        assert retired == len(ctx.graph.tasks)


class TestApplyQ:
    def test_apply_q_shape_check(self, rng):
        a = random_matrix(rng, 16, 8)
        ctx = factor(a, 8, None)
        with pytest.raises(ValueError, match="rows"):
            ctx.apply_q(np.zeros((15, 1)))

    def test_ts_family_apply(self, rng):
        a = random_matrix(rng, 24, 8)
        tiled = TiledMatrix(a.copy(), 8)
        g = build_dag(flat_tree(tiled.p, tiled.q), "TS")
        ctx = execute_graph(g, tiled, ib=4)
        c = a.copy()
        ctx.apply_q(c, adjoint=True)
        assert np.allclose(c[:8], np.triu(tiled.array[:8]), atol=1e-12)
        assert np.allclose(c[8:], 0, atol=1e-12)


class TestQueueWaitHistogram:
    """Per-task ready-to-start latency (S21 satellite)."""

    def test_threaded_run_populates_queue_wait(self, rng):
        a = random_matrix(rng, 96, 96, np.float64)
        m = MetricsRegistry()
        factor(a, 16, workers=3, metrics=m)
        h = m.histogram("scheduler.queue_wait_seconds")
        # every retired task was queued once
        assert h.count == m.counter("scheduler.tasks_total").value
        assert h.sum >= 0.0
        # waits are epoch-relative deltas, never absolute clock values
        assert h.max < 60.0

    def test_sequential_run_records_no_queue_wait(self, rng):
        a = random_matrix(rng, 64, 64, np.float64)
        m = MetricsRegistry()
        factor(a, 16, workers=None, metrics=m)
        assert "scheduler.queue_wait_seconds" not in m.to_dict()

    def test_tracer_and_metrics_agree_on_waits(self, rng):
        from repro.obs import Tracer

        a = random_matrix(rng, 96, 96, np.float64)
        m = MetricsRegistry()
        tr = Tracer()
        factor(a, 16, workers=3, metrics=m, tracer=tr)
        h = m.histogram("scheduler.queue_wait_seconds")
        spans = tr.spans
        waits = sorted(max(0.0, s.queue_delay) for s in spans)
        assert h.count == len(spans)
        assert h.sum == pytest.approx(sum(waits), rel=1e-6, abs=1e-9)


class TestExecutorBusIntegration:
    def test_bus_and_metrics_together(self, rng):
        from repro.obs import EventBus

        a = random_matrix(rng, 96, 96, np.float64)
        bus = EventBus()
        m = MetricsRegistry()
        ctx = factor(a, 16, workers=2, metrics=m, bus=bus)
        n = int(m.counter("scheduler.tasks_total").value)
        done = [e for e in bus.snapshot() if e.kind == "task_done"]
        assert len(done) == n
        assert ctx is not None
