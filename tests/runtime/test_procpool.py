"""Process-backend end-to-end equivalence + pool mechanics.

The acceptance bar from ISSUE 7: ``execute_graph(mode="process")``
reconstructs ``Q @ R`` within ``~1e-12 * ||A||`` of the reference
backend across the equivalence grid (schemes x families x ragged
shapes x inner blockings), under both the fork and spawn start
methods, with the rolling ready-frontier replacing the batched
backend's level barrier.

A module-scoped fork pool is shared by the grid tests — which is
itself the pool-reuse test: dozens of factorizations through one set
of worker processes.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.api import factor, plan
from repro.runtime import ProcessPool, execute_graph, execute_process
from repro.tiles import TiledMatrix
from tests.conftest import random_matrix

NB = 8
SCHEMES = ["greedy", "fibonacci", "flat-tree", "binary-tree",
           "plasma(bs=2)", "asap"]
RAGGED = [(64, 64), (96, 32), (70, 33), (61, 61), (50, 17)]


@pytest.fixture(scope="module")
def pool():
    with ProcessPool(workers=2, start_method="fork") as p:
        yield p


def rel_err(x, y, a):
    return np.linalg.norm(x - y) / max(np.linalg.norm(a), 1e-300)


def assert_equivalent(a, pool, nb=NB, ib=4, numeric="auto", **kw):
    """Process run vs the task-mode run of the *same kernel backend*.

    The LAPACK tile kernels pick different (equally valid) Householder
    signs than the reference kernels, so R is compared against the
    reference of matching convention; the Q @ R residual and
    orthogonality bounds hold regardless.
    """
    ref_backend = "reference" if numeric == "numpy" else "lapack"
    f_ref = factor(a, nb=nb, ib=ib, backend=ref_backend, **kw)
    f_pro = factor(a, nb=nb, ib=ib, mode="process", pool=pool,
                   numeric=numeric, **kw)
    assert rel_err(f_pro.r(), f_ref.r(), a) < 1e-12
    assert f_pro.residual(a) < 1e-12
    assert f_pro.orthogonality() < 1e-12
    return f_pro


class TestProcessFactorization:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("family", ["TT", "TS"])
    def test_all_schemes_families(self, rng, pool, scheme, family):
        a = random_matrix(rng, 64, 32, np.float64)
        assert_equivalent(a, pool, scheme=scheme, family=family)

    @pytest.mark.parametrize("shape", RAGGED)
    def test_ragged_shapes(self, rng, pool, shape):
        a = random_matrix(rng, *shape, np.float64)
        assert_equivalent(a, pool, scheme="greedy")

    @pytest.mark.parametrize("ib", [1, NB // 2, NB])
    def test_inner_blockings(self, rng, pool, ib):
        a = random_matrix(rng, 70, 33, np.float64)
        assert_equivalent(a, pool, ib=ib, scheme="greedy")

    @pytest.mark.parametrize("numeric", ["numpy", "lapack"])
    def test_numeric_paths(self, rng, pool, numeric):
        a = random_matrix(rng, 70, 33, np.float64)
        assert_equivalent(a, pool, scheme="fibonacci", family="TS",
                          numeric=numeric)

    def test_numpy_numeric_is_bit_exact(self, rng, pool):
        """On an exactly tiled matrix the rolling frontier must not
        change a single bit vs the sequential reference executor (same
        kernels, same dependency-ordered tile accesses).  Ragged shapes
        are only ~1e-16 close: the padded nb x nb slots round
        differently than the reference's ragged tile views (covered by
        the 1e-12 grid above)."""
        a = random_matrix(rng, 64, 32, np.float64)
        f_ref = factor(a, nb=NB, ib=4)
        f_pro = factor(a, nb=NB, ib=4, mode="process", pool=pool,
                       numeric="numpy")
        assert np.array_equal(f_pro.r(), f_ref.r())

    def test_complex_dtype(self, rng, pool):
        a = random_matrix(rng, 48, 24, np.complex128)
        f = factor(a, nb=NB, ib=4, mode="process", pool=pool)
        assert f.residual(a) < 1e-12
        assert f.orthogonality() < 1e-12

    def test_apply_q_matches_reference(self, rng, pool):
        a = random_matrix(rng, 50, 17, np.float64)
        f_ref = factor(a, nb=NB, ib=4, backend="lapack")  # same convention
        f_pro = factor(a, nb=NB, ib=4, mode="process", pool=pool)
        c = random_matrix(rng, 50, 3, np.float64)
        assert rel_err(f_pro.qh_matmul(c.copy()), f_ref.qh_matmul(c.copy()),
                       c) < 1e-12

    def test_single_tile_matrix(self, rng, pool):
        a = random_matrix(rng, 5, 3, np.float64)
        f = factor(a, nb=NB, ib=4, mode="process", pool=pool)
        assert f.residual(a) < 1e-12


class TestStartMethods:
    def test_spawn_equivalence(self, rng):
        a = random_matrix(rng, 70, 33, np.float64)
        f_ref = factor(a, nb=NB, ib=4, backend="lapack")  # same convention
        f_pro = factor(a, nb=NB, ib=4, mode="process", workers=2,
                       start_method="spawn")
        assert rel_err(f_pro.r(), f_ref.r(), a) < 1e-12
        assert f_pro.residual(a) < 1e-12

    def test_unknown_start_method(self):
        with pytest.raises(ValueError, match="start method"):
            ProcessPool(workers=1, start_method="teleport")


class TestPoolMechanics:
    def test_ephemeral_pool_via_execute_graph(self, rng):
        a = random_matrix(rng, 33, 17, np.float64)
        f = factor(a, nb=NB, ib=4, mode="process", workers=2)
        assert f.residual(a) < 1e-12

    def test_taskgraph_input(self, rng):
        """execute_process accepts a bare TaskGraph (no Plan priorities)."""
        pl = plan(3, 2, "greedy", "TT")
        a = random_matrix(rng, 3 * NB, 2 * NB, np.float64)
        tiled = TiledMatrix(a.copy(), NB)
        ctx = execute_process(pl.graph, tiled, ib=4, workers=2)
        r_ref = factor(a, nb=NB, ib=4, backend="lapack").r()
        np.testing.assert_allclose(np.triu(tiled.array[:2 * NB]), r_ref,
                                   atol=1e-12 * np.linalg.norm(a))

    def test_lazy_start_and_close(self):
        p = ProcessPool(workers=1)
        assert not p.started
        p.close()
        with pytest.raises(RuntimeError, match="closed"):
            p._ensure_started()

    def test_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessPool(workers=0)

    def test_bad_numeric(self, rng, pool):
        a = random_matrix(rng, 16, 16, np.float64)
        with pytest.raises(ValueError, match="numeric"):
            factor(a, nb=NB, mode="process", pool=pool, numeric="fortran")

    def test_lapack_rejects_complex(self, rng, pool):
        a = random_matrix(rng, 16, 16, np.complex128)
        with pytest.raises(ValueError, match="lapack"):
            factor(a, nb=NB, mode="process", pool=pool, numeric="lapack")

    def test_bad_mode_message_names_process(self, rng):
        a = random_matrix(rng, 16, 16, np.float64)
        with pytest.raises(ValueError, match="process"):
            factor(a, nb=NB, mode="quantum")


class TestFailurePropagation:
    def test_worker_task_error_raises_and_pool_survives(self, rng,
                                                        monkeypatch):
        """A raising kernel inherited by fork workers must surface as a
        RuntimeError carrying the worker traceback, and the pool must
        stay usable for the next run."""
        import dataclasses

        from repro.kernels import backend as backend_mod

        def boom(a, ib):
            raise FloatingPointError("injected kernel failure")

        broken = dataclasses.replace(backend_mod.BACKENDS["reference"],
                                     geqrt=boom)
        monkeypatch.setitem(backend_mod.BACKENDS, "reference", broken)
        a = random_matrix(rng, 33, 17, np.float64)
        with ProcessPool(workers=2, start_method="fork") as p:
            with pytest.raises(RuntimeError,
                               match="injected kernel failure"):
                factor(a, nb=NB, ib=4, mode="process", pool=p,
                       numeric="numpy")
            monkeypatch.undo()  # later forks see the healthy backend
            # the failed run detached cleanly; the same pool still works
            # (fork workers keep the broken inherited module, so factor
            # through a *fresh* attach with the lapack numeric instead)
            f = factor(a, nb=NB, ib=4, mode="process", pool=p,
                       numeric="lapack")
            assert f.residual(a) < 1e-12

    def test_on_task_done_exception_aborts(self, rng, pool):
        a = random_matrix(rng, 48, 24, np.float64)

        def observer(task, done, total):
            if done >= 3:
                raise KeyboardInterrupt("stop here")

        with pytest.raises(KeyboardInterrupt):
            factor(a, nb=NB, ib=4, mode="process", pool=pool,
                   on_task_done=observer)
        # pool survives an aborted run
        f = factor(a, nb=NB, ib=4, mode="process", pool=pool)
        assert f.residual(a) < 1e-12


class TestObservability:
    def _drain(self, bus, want_done, deadline_s=15.0):
        """Poll until ``want_done`` task_done events arrived (the relay
        gives no cross-queue ordering guarantee, so completions can
        reach the parent before the matching telemetry)."""
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            evs = bus.snapshot()
            if sum(e.kind == "task_done" for e in evs) >= want_done:
                return evs
            time.sleep(0.02)
        raise AssertionError(
            f"bus never saw {want_done} task_done events")

    def test_bus_stream(self, rng, pool):
        from repro.obs import EventBus

        bus = EventBus(capacity=65536)
        a = random_matrix(rng, 64, 32, np.float64)
        f = factor(a, nb=NB, ib=4, mode="process", pool=pool, bus=bus)
        n = len(f.graph.tasks)
        evs = self._drain(bus, n)
        kinds = {e.kind for e in evs}
        assert {"run_start", "task_start", "task_done", "frontier",
                "run_done"} <= kinds
        start = next(e for e in evs if e.kind == "run_start")
        assert start.total == n and start.count == pool.workers
        workers = {e.worker for e in evs if e.kind == "task_done"}
        assert workers == set(range(pool.workers))

    def test_tracer_and_metrics(self, rng, pool):
        from repro.obs import MetricsRegistry
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        metrics = MetricsRegistry()
        a = random_matrix(rng, 64, 32, np.float64)
        f = factor(a, nb=NB, ib=4, mode="process", pool=pool,
                   tracer=tracer, metrics=metrics)
        n = len(f.graph.tasks)
        assert len(tracer) == n
        assert all(s.submit <= s.start <= s.finish for s in tracer.spans)
        assert {s.worker for s in tracer.spans} <= set(range(pool.workers))
        retired = sum(metrics.get(name).value for name in metrics.names()
                      if name.startswith("tasks.retired."))
        assert retired == n
        assert metrics.get("procpool.start_method.fork").value >= 1

    def test_traced_pool_reuse_no_bookkeeping_growth(self, rng, pool):
        """Per-run scheduler stamps must not accumulate across runs on
        a persistent pool: 50 traced runs through one pool leave the
        pending map empty and the clock cache bounded each time."""
        from repro.obs.tracer import DistributedTracer

        a = random_matrix(rng, 16, 16, np.float64)
        tracer = DistributedTracer()
        n = None
        for _ in range(50):
            f = factor(a, nb=NB, ib=4, mode="process", pool=pool,
                       tracer=tracer)
            assert len(pool._pending) == 0
            assert len(pool._clock_prev) <= pool.workers
            assert not tracer._parent and not tracer._wspans
            n = len(f.graph.tasks)
        assert len(tracer.phases) == 50 * n
        # re-synced every run: drift is measured from the second on
        assert all(c.samples >= 1 for c in tracer.clocks.values())

    def test_live_progress_state(self, rng, pool):
        """The LiveState reduction --progress/top rely on converges to
        a finished run."""
        from repro.obs import EventBus, LiveState

        bus = EventBus(capacity=65536)
        a = random_matrix(rng, 48, 24, np.float64)
        f = factor(a, nb=NB, ib=4, mode="process", pool=pool, bus=bus)
        n = len(f.graph.tasks)
        self._drain(bus, n)
        state = LiveState().connect(bus)
        v = state.view()
        assert v["run_started"] and v["run_finished"]
        assert v["done"] == n and v["total"] == n
