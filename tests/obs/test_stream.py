"""Tests for the streaming event bus (S21): ring semantics, push/pull
consumers, the executors as publishers, and the multiprocessing relay."""

import threading

import numpy as np
import pytest

from repro.api import plan
from repro.obs import (EVENT_KINDS, NULL_BUS, BusRelay, Event, EventBus,
                       LiveState, NullBus)
from repro.runtime.executor import execute_graph
from repro.tiles.layout import TiledMatrix


# ----------------------------------------------------------------------
# Event record
# ----------------------------------------------------------------------

class TestEvent:
    def test_to_dict_elides_defaults(self):
        ev = Event("task_done", t=1.5, seq=3, tid=7, kernel="geqrt",
                   value=0.25)
        d = ev.to_dict()
        assert d == {"kind": "task_done", "t": 1.5, "seq": 3, "tid": 7,
                     "kernel": "geqrt", "value": 0.25}

    def test_round_trip(self):
        ev = Event("group_done", t=2.0, seq=9, kernel="tsmqr", level=4,
                   count=12, worker=0, value=0.125)
        assert Event.from_dict(ev.to_dict()) == ev

    def test_from_dict_ignores_unknown_keys(self):
        ev = Event.from_dict({"kind": "frontier", "t": 1.0, "bogus": 42})
        assert ev.kind == "frontier" and ev.t == 1.0

    def test_vocabulary_is_fixed(self):
        assert "task_start" in EVENT_KINDS
        assert "level_start" in EVENT_KINDS
        assert "group_start" in EVENT_KINDS
        assert "frontier" in EVENT_KINDS


# ----------------------------------------------------------------------
# ring buffer
# ----------------------------------------------------------------------

class TestEventBus:
    def test_publish_returns_monotone_seq(self):
        bus = EventBus()
        seqs = [bus.publish("frontier", value=float(i)) for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert bus.published == 5 and bus.dropped == 0

    def test_events_since_materializes_events(self):
        bus = EventBus()
        bus.publish("task_start", tid=3, kernel="geqrt", worker=1)
        events, nxt = bus.events_since(0)
        assert nxt == 1
        (ev,) = events
        assert isinstance(ev, Event)
        assert (ev.kind, ev.tid, ev.kernel, ev.worker, ev.seq) == (
            "task_start", 3, "geqrt", 1, 0)

    def test_events_since_cursor_protocol(self):
        bus = EventBus()
        for i in range(4):
            bus.publish("frontier", value=float(i))
        first, cur = bus.events_since(0)
        bus.publish("frontier", value=99.0)
        rest, cur = bus.events_since(cur)
        assert [e.value for e in first] == [0.0, 1.0, 2.0, 3.0]
        assert [e.value for e in rest] == [99.0]

    def test_overflow_drops_oldest_and_counts(self):
        bus = EventBus(capacity=8)
        for i in range(20):
            bus.publish("frontier", value=float(i))
        assert bus.published == 20
        assert bus.dropped == 12
        events, _ = bus.events_since(0)
        assert [e.value for e in events] == [float(i) for i in range(12, 20)]
        # reader learns the gap from the first surviving seq
        assert events[0].seq == 12

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            EventBus(capacity=0)

    def test_timestamps_are_epoch_relative(self):
        bus = EventBus()
        s = bus.publish("run_start")
        (ev,), _ = bus.events_since(s)
        assert 0.0 <= ev.t < 5.0
        assert bus.now() >= ev.t

    def test_explicit_timestamp_respected(self):
        bus = EventBus()
        bus.publish("run_done", t=123.5)
        assert bus.snapshot()[0].t == 123.5

    def test_worker_index_dense_per_thread(self):
        bus = EventBus()
        assert bus.worker_index() == 0
        assert bus.worker_index() == 0  # stable for the same thread
        seen = []
        t = threading.Thread(target=lambda: seen.append(bus.worker_index()))
        t.start()
        t.join()
        assert seen == [1]

    def test_concurrent_publishers_lose_nothing(self):
        bus = EventBus(capacity=1 << 14)
        n_threads, per_thread = 8, 500

        def pound(worker):
            for i in range(per_thread):
                bus.publish("task_done", tid=worker * per_thread + i,
                            worker=worker)

        threads = [threading.Thread(target=pound, args=(w,))
                   for w in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events, _ = bus.events_since(0)
        assert bus.published == n_threads * per_thread
        assert bus.dropped == 0
        # every publish got a distinct slot and a distinct seq
        assert sorted(e.seq for e in events) == list(
            range(n_threads * per_thread))
        assert sorted(e.tid for e in events) == list(
            range(n_threads * per_thread))


# ----------------------------------------------------------------------
# subscribers (push mode)
# ----------------------------------------------------------------------

class TestSubscribers:
    def test_subscriber_sees_each_event(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        bus.publish("run_start", total=9)
        assert len(got) == 1 and got[0].total == 9

    def test_failing_subscriber_is_counted_not_raised(self):
        bus = EventBus()

        def boom(ev):
            raise RuntimeError("subscriber bug")

        good = []
        bus.subscribe(boom)
        bus.subscribe(good.append)
        bus.publish("run_start")
        bus.publish("run_done")
        assert bus.subscriber_errors == 2
        assert len(good) == 2  # the healthy subscriber still ran

    def test_unsubscribe(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        bus.unsubscribe(got.append)
        bus.publish("run_start")
        assert got == []


# ----------------------------------------------------------------------
# NullBus
# ----------------------------------------------------------------------

class TestNullBus:
    def test_disabled_and_inert(self):
        assert NULL_BUS.enabled is False
        assert isinstance(NULL_BUS, NullBus)
        assert NULL_BUS.publish("task_done", tid=1, kernel="geqrt") is None

    def test_executor_skips_publishing_entirely(self):
        # bus normalization: a disabled bus never sees a publish, so
        # the hot path carries zero telemetry work
        pl = plan(3, 3, "greedy")
        a = np.random.default_rng(0).standard_normal((96, 96))
        execute_graph(pl, TiledMatrix(a, 32), ib=32, bus=NULL_BUS)
        assert NULL_BUS.published == 0
        assert NULL_BUS.snapshot() == []


# ----------------------------------------------------------------------
# LiveState reduction: push and pull
# ----------------------------------------------------------------------

class TestLiveState:
    def _feed(self, state, bus):
        bus.publish("run_start", total=4, count=2)
        bus.publish("task_start", tid=0, kernel="geqrt", worker=0)
        bus.publish("task_done", tid=0, kernel="geqrt", worker=0,
                    value=0.01)
        bus.publish("frontier", value=3.0)
        bus.publish("level_start", level=2)

    def test_push_mode(self):
        bus = EventBus()
        state = LiveState().attach(bus)
        self._feed(state, bus)
        v = state.view()
        assert v["total"] == 4 and v["done"] == 1 and v["workers"] == 2
        assert v["frontier"] == 3 and v["level"] == 2
        assert v["kernel_done"] == {"geqrt": 1}

    def test_pull_mode_drains_on_view(self):
        bus = EventBus()
        state = LiveState().connect(bus)
        self._feed(state, bus)
        assert state.done == 0  # nothing reduced until a pump
        v = state.view()        # view() auto-pumps
        assert v["done"] == 1 and v["total"] == 4

    def test_pump_is_incremental(self):
        bus = EventBus()
        state = LiveState().connect(bus)
        bus.publish("task_done", kernel="geqrt", value=0.01)
        assert state.pump() == 1
        assert state.pump() == 0
        bus.publish("task_done", kernel="geqrt", value=0.01)
        assert state.pump() == 1
        assert state.view()["done"] == 2

    def test_concurrent_pumps_never_double_count(self):
        bus = EventBus()
        state = LiveState().connect(bus)
        for _ in range(2000):
            bus.publish("task_done", kernel="geqrt", value=0.0)
        threads = [threading.Thread(target=state.pump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert state.view()["done"] == 2000

    def test_flops_accumulate_with_nb(self):
        from repro.kernels.costs import Kernel, kernel_flops

        bus = EventBus()
        state = LiveState(nb=32).connect(bus)
        bus.publish("group_done", kernel="GEQRT", count=3, value=0.01)
        v = state.view()
        assert v["flops"] == pytest.approx(
            3 * kernel_flops(Kernel.GEQRT, 32))


# ----------------------------------------------------------------------
# executors publish the documented stream
# ----------------------------------------------------------------------

class TestExecutorPublishing:
    GRID = (4, 3)

    def _factor(self, bus, **kw):
        p, q = self.GRID
        pl = plan(p, q, "greedy")
        a = np.random.default_rng(1).standard_normal((p * 32, q * 32))
        execute_graph(pl, TiledMatrix(a, 32), ib=32, bus=bus, **kw)
        return pl, bus.snapshot()

    def test_sequential_stream(self):
        pl, events = self._factor(EventBus())
        kinds = [e.kind for e in events]
        n = len(pl.graph.tasks)
        assert kinds[0] == "run_start" and kinds[-1] == "run_done"
        assert kinds.count("task_start") == n
        assert kinds.count("task_done") == n
        run_start = events[0]
        assert run_start.total == n and run_start.count == 1
        # per-task durations ride on task_done.value
        assert all(e.value >= 0.0 for e in events if e.kind == "task_done")

    def test_threaded_stream(self):
        pl, events = self._factor(EventBus(), workers=3)
        n = len(pl.graph.tasks)
        kinds = [e.kind for e in events]
        assert kinds.count("task_done") == n
        assert events[0].kind == "run_start" and events[0].count == 3
        assert kinds[-1] == "run_done"
        # retirements publish the post-retire ready-frontier depth
        assert kinds.count("frontier") >= n
        workers = {e.worker for e in events if e.kind == "task_done"}
        assert workers <= {0, 1, 2}

    def test_batched_stream(self):
        pl, events = self._factor(EventBus(), mode="batched")
        n = len(pl.graph.tasks)
        kinds = [e.kind for e in events]
        groups = pl.level_groups()
        assert kinds.count("group_start") == len(groups)
        assert kinds.count("group_done") == len(groups)
        assert kinds.count("level_start") == groups[-1].level + 1
        done = sum(e.count for e in events if e.kind == "group_done")
        assert done == n
        assert events[-1].kind == "run_done" and events[-1].count == n

    def test_tiled_qr_accepts_bus(self):
        from repro.core.tiled_qr import tiled_qr

        bus = EventBus()
        a = np.random.default_rng(2).standard_normal((96, 96))
        f = tiled_qr(a, nb=32, scheme="greedy", mode="batched", bus=bus)
        assert np.allclose(f.q() @ f.r(), a)
        assert bus.published > 0
        assert bus.snapshot()[-1].kind == "run_done"


# ----------------------------------------------------------------------
# multiprocessing bridge
# ----------------------------------------------------------------------

def _publish_from_child(pub):
    for i in range(5):
        pub.publish("task_done", tid=i, kernel="GEQRT", value=0.01)


class TestBusRelay:
    def test_relay_pumps_into_local_bus(self):
        bus = EventBus()
        relay = BusRelay(bus)
        with relay:
            pub = relay.publisher()
            for i in range(10):
                pub.publish("task_done", tid=i, kernel="geqrt", value=0.01)
        events, _ = bus.events_since(0)
        assert len(events) == 10
        assert sorted(e.tid for e in events) == list(range(10))
        assert relay.dropped == 0

    def test_remote_events_restamped_on_arrival(self):
        bus = EventBus()
        with BusRelay(bus) as relay:
            relay.publisher().publish("run_done", value=1.0)
        (ev,), _ = bus.events_since(0)
        assert 0.0 <= ev.t <= bus.now()

    def test_events_cross_a_real_process_boundary(self):
        import multiprocessing as mp

        bus = EventBus()
        relay = BusRelay(bus)
        with relay:
            proc = mp.Process(target=_publish_from_child,
                              args=(relay.publisher(),))
            proc.start()
            proc.join(timeout=30)
        assert proc.exitcode == 0
        events, _ = bus.events_since(0)
        assert sorted(e.tid for e in events) == list(range(5))

    def test_relay_drops_unknown_fields(self):
        bus = EventBus()
        with BusRelay(bus) as relay:
            # a newer producer may ship fields this reader doesn't know
            relay._queue.put(("task_done", {"tid": 1, "mystery": 9}))
        events, _ = bus.events_since(0)
        assert events and events[0].tid == 1

    def test_span_sink_intercepts_task_spans(self):
        """``task_spans`` records feed the span sink and are counted,
        but never reach the event bus (they are tracer payloads, not
        stream events)."""
        bus = EventBus()
        got = []
        relay = BusRelay(bus)
        relay.span_sink = got.append
        with relay:
            pub = relay.publisher()
            pub.publish("task_spans", tid=3, worker=1, recv=1.0,
                        start=2.0, finish=3.0, publish=4.0)
            pub.publish("task_done", tid=3, kernel="GEQRT", value=0.01)
        assert relay.pumped("task_spans") == 1
        assert relay.pumped("task_done") == 1
        assert got and got[0]["tid"] == 3 and got[0]["publish"] == 4.0
        events, _ = bus.events_since(0)
        assert [e.kind for e in events] == ["task_done"]

    def test_span_sink_exception_does_not_kill_pump(self):
        bus = EventBus()
        relay = BusRelay(bus)
        relay.span_sink = lambda fields: 1 / 0
        with relay:
            pub = relay.publisher()
            pub.publish("task_spans", tid=0, worker=0, recv=0.0,
                        start=0.0, finish=0.0, publish=0.0)
            pub.publish("task_done", tid=0, kernel="GEQRT", value=0.01)
        events, _ = bus.events_since(0)
        assert [e.kind for e in events] == ["task_done"]
        assert relay.pumped("task_spans") == 1

    def test_running_property_tracks_lifecycle(self):
        relay = BusRelay(EventBus())
        assert not relay.running
        relay.start()
        assert relay.running
        relay.stop()
        assert not relay.running
