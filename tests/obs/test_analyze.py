"""Tests for schedule analytics (S19).

The acceptance identities, checked on the paper's Table 3-5 grids:

* ``sum(lane.busy) + sum(lane.idle) == makespan * P``;
* the extracted critical path's total weight equals the makespan
  (unbounded *and* bounded — the bounded chain mixes dependency and
  worker-reuse edges but still tiles ``[0, makespan]``);
* slack is non-negative everywhere and zero exactly on tasks of some
  unbounded critical path.
"""

import json

import numpy as np
import pytest

from repro.api import plan, simulate
from repro.dag import build_dag
from repro.obs import Tracer
from repro.obs.analyze import (
    analyze,
    analyze_chrome_trace,
    analyze_sim,
    analyze_tracer,
    critical_path_tasks,
    overlay_diff,
    render_overlay,
    render_report,
    task_slack,
)
from repro.obs.chrome_trace import chrome_trace
from repro.schemes import greedy
from repro.sim import simulate_bounded, simulate_unbounded

#: the paper's Table 3-5 shape sample: tall, square-ish, and the
#: acceptance grid, across the scheme families the tables compare
GRIDS = [(15, 6), (30, 10)]
SCHEMES = ["greedy", "fibonacci", "flat-tree", "binary-tree",
           "plasma-tree(bs=4)"]


def bounded_cases():
    for p, q in GRIDS:
        for scheme in SCHEMES:
            for P in (4, 16):
                yield scheme, p, q, P


@pytest.mark.parametrize("scheme,p,q,P", list(bounded_cases()))
def test_busy_idle_identity(scheme, p, q, P):
    report = analyze_sim(simulate(scheme, p, q, processors=P))
    assert len(report.lanes) == P
    busy = sum(l.busy for l in report.lanes)
    idle = sum(l.idle for l in report.lanes)
    assert busy + idle == pytest.approx(report.makespan * P)
    assert busy == pytest.approx(report.total_busy)
    assert report.utilization == pytest.approx(busy / (report.makespan * P))


@pytest.mark.parametrize("scheme,p,q,P", list(bounded_cases()))
def test_bounded_critical_path_tiles_makespan(scheme, p, q, P):
    result = simulate(scheme, p, q, processors=P)
    cp = critical_path_tasks(result)
    assert cp.length == pytest.approx(result.makespan)
    # gapless, ordered chain from t=0 to the makespan
    assert cp.steps[0].start == 0.0
    assert cp.steps[0].via == "source"
    assert cp.steps[-1].finish == pytest.approx(result.makespan)
    for a, b in zip(cp.steps, cp.steps[1:]):
        assert b.start == pytest.approx(a.finish)
        assert b.via in {"dep", "worker"}
    assert cp.dep_edges + cp.worker_edges == len(cp) - 1


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("p,q", GRIDS)
def test_unbounded_critical_path_matches_plan(scheme, p, q):
    pl = plan(p, q, scheme)
    result = simulate(pl)  # unbounded ASAP
    cp = critical_path_tasks(result)
    assert cp.length == pytest.approx(pl.critical_path())
    assert cp.length == pytest.approx(result.makespan)
    # every edge of an unbounded chain is a true dependency
    assert cp.worker_edges == 0
    assert cp.dep_edges == len(cp) - 1


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("p,q", GRIDS)
def test_slack_nonnegative_and_critical(scheme, p, q):
    pl = plan(p, q, scheme)
    slack = task_slack(pl)
    assert (slack >= 0.0).all()
    # zero-slack tasks exist (the critical path itself) and every task
    # of the extracted unbounded chain has zero slack
    cp = critical_path_tasks(pl.unbounded())
    tids = [s.tid for s in cp.steps]
    assert np.all(slack[tids] == 0.0)


class TestAcceptanceGrid:
    """The issue's acceptance case: GREEDY (30, 10) on P=16."""

    @pytest.fixture(scope="class")
    def report(self):
        return analyze_sim(simulate("greedy", 30, 10, processors=16),
                           label="accept")

    def test_reports_utilization(self, report):
        assert report.utilization is not None
        assert 0.0 < report.utilization <= 1.0

    def test_reports_kernel_shares(self, report):
        shares = report.kernel_shares()
        assert set(shares) <= {"GEQRT", "UNMQR", "TSQRT", "TSMQR",
                               "TTQRT", "TTMQR"}
        assert "GEQRT" in shares and "TTQRT" in shares
        assert sum(shares.values()) == pytest.approx(1.0)
        for k in report.kernels:
            assert k.total == pytest.approx(k.mean * k.count)

    def test_critical_path_weight_is_makespan(self, report):
        assert report.critical_path.length == pytest.approx(report.makespan)

    def test_bounds_and_efficiency(self, report):
        b = report.bounds
        assert b["lower"] == max(b["critical_path"], b["work"], b["alap"])
        # at this grid point the ALAP area bound strictly beats the
        # classical max(cp, work/P) pair
        assert b["alap"] > max(b["critical_path"], b["work"])
        assert 0.0 < b["efficiency"] <= 1.0
        assert b["efficiency"] == pytest.approx(b["lower"] / report.makespan)
        assert b["paper_cp_lower_bound"] == 22 * 10 - 30

    def test_summary_round_trips_to_json(self, report):
        d = report.to_dict()
        assert json.loads(json.dumps(d)) == d
        s = report.summary()
        assert s["critical_path_length"] == report.critical_path.length
        assert s["utilization"] == report.utilization


class TestDispatch:
    def test_sim_result(self):
        res = simulate("greedy", 8, 4, processors=4)
        assert analyze(res).source == "sim"

    def test_plan_scheduled(self):
        pl = plan(8, 4, "greedy")
        rep = analyze(pl, processors=4)
        assert rep.processors == 4
        assert rep.makespan == simulate(pl, processors=4).makespan

    def test_plan_unbounded(self):
        pl = plan(8, 4, "greedy")
        rep = analyze(pl)
        assert rep.processors is None
        assert rep.makespan == pl.critical_path()

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            analyze(42)


def make_capture(p=4, q=2, scale=1e-4):
    g = build_dag(greedy(p, q), "TT")
    tr = Tracer()
    res = simulate_bounded(g, 2)
    for t in g.tasks:
        s, f = res.start[t.tid] * scale, res.finish[t.tid] * scale
        tr.record(t, submit=s, start=s, finish=f,
                  worker=int(res.worker[t.tid]))
    return g, tr, res


class TestTracerAndTrace:
    def test_tracer_report(self):
        g, tr, res = make_capture()
        rep = analyze_tracer(tr)
        assert rep.source == "measured"
        assert rep.tasks == len(g.tasks)
        assert rep.makespan == pytest.approx(res.makespan * 1e-4)
        assert rep.critical_path is None and rep.bounds is None
        busy = sum(l.busy for l in rep.lanes)
        idle = sum(l.idle for l in rep.lanes)
        assert busy + idle == pytest.approx(rep.makespan * len(rep.lanes))

    def test_chrome_trace_round_trip(self):
        g, tr, res = make_capture()
        doc = chrome_trace(tracer=tr, sim=res, sim_time_scale=1e-4 * 1e6)
        reports = analyze_chrome_trace(doc)
        assert [r.label for r in reports] == ["measured", "simulated"]
        direct = analyze_tracer(tr)
        assert reports[0].tasks == direct.tasks
        assert reports[0].makespan == pytest.approx(direct.makespan)
        assert reports[0].total_busy == pytest.approx(direct.total_busy)
        assert reports[1].makespan == pytest.approx(res.makespan * 1e-4)

    def test_chrome_trace_from_file(self, tmp_path):
        _, tr, _ = make_capture()
        path = tmp_path / "t.json"
        path.write_text(json.dumps(chrome_trace(tracer=tr)))
        (rep,) = analyze_chrome_trace(str(path))
        assert rep.tasks == analyze_tracer(tr).tasks

    def test_empty_trace_placeholder_skipped(self):
        doc = chrome_trace(tracer=Tracer())
        (rep,) = analyze_chrome_trace(doc)
        assert rep.tasks == 0 and rep.makespan == 0.0


class TestOverlay:
    def test_overhead_attribution(self):
        g, tr, res = make_capture(scale=2.0)  # "measured" = 2x model time
        measured = analyze_tracer(tr)
        simulated = analyze_sim(res)
        diff = overlay_diff(measured, simulated)
        assert diff["makespan"]["ratio"] == pytest.approx(2.0)
        for k, d in diff["kernels"].items():
            assert d["ratio"] == pytest.approx(2.0)
            assert d["overhead"] == pytest.approx(d["measured"]
                                                  - d["simulated"])
        text = render_overlay(diff)
        assert "measured vs simulated" in text
        assert "2.00x" in text


class TestRendering:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_sim(simulate("greedy", 8, 4, processors=4))

    def test_text(self, report):
        text = render_report(report, "text")
        assert "schedule report" in text
        assert "GEQRT" in text and "critical path" in text

    def test_markdown_has_tables(self, report):
        md = render_report(report, "markdown")
        assert md.startswith("## ")
        assert "| kernel" in md

    def test_json_is_deterministic(self, report):
        a = render_report(report, "json")
        assert a == render_report(report, "json")
        assert json.loads(a)["makespan"] == report.makespan

    def test_unknown_format_rejected(self, report):
        with pytest.raises(ValueError):
            render_report(report, "yaml")


class TestEdgeCases:
    def test_empty_graph(self):
        from repro.dag.tasks import TaskGraph

        rep = analyze_sim(simulate_unbounded(TaskGraph(1, 1, "empty")))
        assert rep.tasks == 0
        assert rep.makespan == 0.0
        assert rep.critical_path.length == 0.0

    def test_single_task(self):
        res = simulate_bounded(build_dag(greedy(1, 1), "TT"), 1)
        rep = analyze_sim(res)
        assert rep.tasks == 1
        assert rep.utilization == pytest.approx(1.0)
        assert len(rep.critical_path) == 1
        assert rep.critical_path.steps[0].via == "source"

    def test_zero_weight_tasks_terminate(self):
        # measured-weight graphs can contain 0.0-weight kernels; the
        # backward walk must not cycle through simultaneous events
        g = build_dag(greedy(6, 2), "TT")
        zeroed = g.rescale({k: 0.0 for k in {t.kernel for t in g.tasks}})
        res = simulate_bounded(zeroed, 2)
        cp = critical_path_tasks(res)
        assert cp.length == pytest.approx(res.makespan) == 0.0
        assert len(cp) <= len(g.tasks)


class TestAnalyzeEvents:
    """Reports rebuilt from event-bus captures (S21)."""

    def _events(self):
        from repro.obs import EventBus
        bus = EventBus()
        bus.publish("run_start", total=4, count=2)
        bus.publish("task_done", t=0.10, tid=0, kernel="GEQRT",
                    worker=0, value=0.10)
        bus.publish("task_done", t=0.15, tid=1, kernel="TSQRT",
                    worker=1, value=0.05)
        bus.publish("group_done", t=0.40, kernel="TSMQR", worker=0,
                    count=2, value=0.20)
        bus.publish("run_done", count=4, value=0.40)
        return bus.snapshot()

    def test_report_from_live_snapshot(self):
        from repro.obs.analyze import analyze_events
        rep = analyze_events(self._events(), label="live")
        # window: earliest start (0.10-0.10=0) to last finish (0.40)
        assert rep.makespan == pytest.approx(0.40)
        assert rep.tasks == 4           # group_done counts 2 tasks
        assert rep.total_busy == pytest.approx(0.35)
        assert rep.processors == 2
        assert rep.utilization == pytest.approx(0.35 / (2 * 0.40))
        ks = {k.kernel: k for k in rep.kernels}
        assert ks["TSMQR"].count == 2
        assert ks["TSMQR"].mean == pytest.approx(0.10)

    def test_empty_capture(self):
        from repro.obs.analyze import analyze_events
        rep = analyze_events([])
        assert rep.tasks == 0 and rep.makespan == 0.0

    def test_kernels_in_canonical_order(self):
        from repro.obs.analyze import analyze_events
        rep = analyze_events(self._events())
        names = [k.kernel for k in rep.kernels]
        assert names == ["GEQRT", "TSQRT", "TSMQR"]


class TestAnalyzeTraceFile:
    """Format sniffing: Chrome JSON vs JSONL event logs (S21)."""

    def _run_with_bus(self):
        from repro.obs import EventBus, LiveState
        from repro.runtime.executor import execute_graph
        from repro.tiles.layout import TiledMatrix
        pl = plan(4, 4, "greedy")
        a = np.random.default_rng(0).standard_normal((4 * 16, 4 * 16))
        bus = EventBus()
        LiveState(total=len(pl.graph.tasks), nb=16).connect(bus)
        execute_graph(pl, TiledMatrix(a, 16), ib=16, mode="batched",
                      bus=bus)
        return pl, bus.snapshot()

    def test_jsonl_round_trip(self, tmp_path):
        from repro.obs import write_events_jsonl
        from repro.obs.analyze import analyze_trace_file
        pl, events = self._run_with_bus()
        path = write_events_jsonl(tmp_path / "run.jsonl", events)
        (rep,) = analyze_trace_file(path)
        assert rep.tasks == len(pl.graph.tasks)
        assert rep.makespan > 0
        assert sum(k.count for k in rep.kernels) == rep.tasks

    def test_gzipped_jsonl(self, tmp_path):
        from repro.obs import write_events_jsonl
        from repro.obs.analyze import analyze_trace_file
        _, events = self._run_with_bus()
        path = write_events_jsonl(tmp_path / "run.jsonl.gz", events)
        (rep,) = analyze_trace_file(path)
        assert rep.tasks > 0

    def test_chrome_trace_still_sniffed(self, tmp_path):
        from repro.obs.chrome_trace import write_chrome_trace
        tr = Tracer()
        tr.enabled = True
        pl = plan(3, 3, "greedy")
        a = np.random.default_rng(1).standard_normal((3 * 16, 3 * 16))
        from repro.runtime.executor import execute_graph
        from repro.tiles.layout import TiledMatrix
        execute_graph(pl, TiledMatrix(a, 16), ib=16, tracer=tr)
        path = tmp_path / "run.trace.json"
        write_chrome_trace(path, tr)
        from repro.obs.analyze import analyze_trace_file
        reports = analyze_trace_file(path)
        assert reports and reports[0].tasks == len(pl.graph.tasks)

    def test_report_renders(self, tmp_path):
        from repro.obs import write_events_jsonl
        from repro.obs.analyze import analyze_trace_file
        _, events = self._run_with_bus()
        path = write_events_jsonl(tmp_path / "run.jsonl", events)
        (rep,) = analyze_trace_file(path)
        text = render_report(rep)
        assert "makespan" in text.lower() or "TSMQR" in text
