"""Tests for the live progress renderer and ETA dashboard (S21)."""

import io

import numpy as np
import pytest

from repro.api import plan
from repro.obs import (EventBus, LiveState, ProgressRenderer, kernel_totals)
from repro.obs.progress import render_bar
from repro.runtime.executor import execute_graph
from repro.tiles.layout import TiledMatrix


class TestRenderBar:
    def test_extremes_and_clamping(self):
        assert render_bar(0.0, 8) == "[--------]"
        assert render_bar(1.0, 8) == "[########]"
        assert render_bar(2.0, 8) == "[########]"
        assert render_bar(-1.0, 8) == "[--------]"

    def test_half(self):
        assert render_bar(0.5, 8) == "[####----]"


class TestKernelTotals:
    def test_counts_match_graph(self):
        pl = plan(4, 3, "greedy")
        totals = kernel_totals(pl)           # accepts a Plan...
        assert totals == kernel_totals(pl.graph)   # ...or its graph
        assert sum(totals.values()) == len(pl.graph.tasks)
        # TT family factors every tile of every panel
        assert totals["GEQRT"] >= 3


def _wired(tty, **kw):
    """A bus/state/renderer triple over a fake stream."""
    bus = EventBus()
    state = LiveState(total=10, nb=32).connect(bus)
    stream = io.StringIO()
    r = ProgressRenderer(state, clock=bus.now, stream=stream, tty=tty,
                         totals={"GEQRT": 4, "TSMQR": 6}, **kw)
    return bus, r, stream


class TestLines:
    def test_head_line_reports_progress(self):
        bus, r, _ = _wired(tty=False, label="greedy 4x4")
        bus.publish("run_start", total=10, count=2)
        for i in range(4):
            bus.publish("task_done", tid=i, kernel="GEQRT", value=0.01)
        head = r.progress_line()
        assert head.startswith("greedy 4x4 | 4/10 tasks (40.0%)")
        assert "elapsed" in head

    def test_kernel_bars_in_canonical_order(self):
        bus, r, _ = _wired(tty=False)
        bus.publish("run_start", total=10)
        bus.publish("task_done", kernel="TSMQR", count=3, value=0.01)
        lines = r.lines()
        bars = [ln for ln in lines if "[" in ln and "workers" not in ln]
        assert bars[0].startswith("GEQRT") and "0/4" in bars[0]
        assert bars[1].startswith("TSMQR") and "3/6" in bars[1]

    def test_worker_and_frontier_status(self):
        bus, r, _ = _wired(tty=False, show_workers=True)
        bus.publish("run_start", total=10, count=2)
        bus.publish("task_start", tid=0, kernel="GEQRT", worker=0)
        bus.publish("task_start", tid=1, kernel="TSMQR", worker=1)
        bus.publish("frontier", value=7.0)
        lines = r.lines()
        status = [ln for ln in lines if "workers" in ln][0]
        assert "2/2 busy" in status and "frontier 7" in status
        cells = lines[-1]
        assert "w0:GEQRT" in cells and "w1:TSMQR" in cells


class TestNonTtyMode:
    def test_emits_plain_lines_at_cadence(self):
        bus, r, stream = _wired(tty=False, nontty_interval=0.0)
        bus.publish("run_start", total=10)
        r.render_once()
        r.render_once(force=True)
        out = stream.getvalue()
        assert "\x1b" not in out          # no ANSI in logs
        assert out.count("\n") == 2

    def test_rate_limited_without_force(self):
        bus, r, stream = _wired(tty=False, nontty_interval=3600.0)
        bus.publish("run_start", total=10)
        r.render_once()
        r.render_once()                   # within the cadence window
        assert stream.getvalue().count("\n") == 1


class TestTtyMode:
    def test_repaints_in_place_with_ansi(self):
        bus, r, stream = _wired(tty=True)
        bus.publish("run_start", total=10)
        r.render_once()
        first = stream.getvalue()
        assert "\x1b[" not in first       # first paint: nothing to erase
        r.render_once()
        second = stream.getvalue()[len(first):]
        nlines = first.count("\n")
        assert second.startswith(f"\x1b[{nlines}F\x1b[0J")

    def test_autodetects_non_tty_stream(self):
        _, r, _ = _wired(tty=None)
        assert r.tty is False             # StringIO has no terminal


class TestEtaConvergence:
    def test_eta_converges_to_realized_makespan(self):
        # factor a Table-3-shaped (tall) grid and check the final
        # prediction equals the realized wall time exactly: once every
        # task has retired the model exchange rate is measured over the
        # whole run
        pl = plan(8, 4, "greedy")
        a = np.random.default_rng(3).standard_normal((8 * 32, 4 * 32))
        bus = EventBus()
        state = LiveState(total=len(pl.graph.tasks), nb=32).connect(bus)
        replay = pl.replay(None)
        r = ProgressRenderer(state, replay, clock=bus.now,
                             stream=io.StringIO(), tty=False,
                             totals=kernel_totals(pl))
        execute_graph(pl, TiledMatrix(a, 32), ib=32, mode="batched",
                      bus=bus)
        r.render_once(force=True)
        est = r.last_estimate
        assert est is not None and est.done == est.total
        realized = state.view()["last_t"]
        # prediction at 100% = elapsed-at-render scaled over the full
        # schedule; the render ran after run_done, so it must be within
        # the render latency of the realized makespan
        assert est.predicted_makespan == pytest.approx(realized, rel=0.25)
        assert est.remaining == 0.0 or est.remaining < 0.05

    def test_background_thread_paints_final_state(self):
        bus, r, stream = _wired(tty=False, nontty_interval=0.0)
        bus.publish("run_start", total=10)
        with r:
            bus.publish("task_done", kernel="GEQRT", count=10, value=0.01)
        assert "10/10 tasks (100.0%)" in stream.getvalue()
