"""Cross-process distributed tracing (S23).

Unit coverage for the clock-sync estimator and the parent/worker span
merge, plus end-to-end runs through a real process pool: six-phase
lifecycle records whose telescoping sum equals wall-clock latency,
clock alignment residuals bounded well under a millisecond, merged
multi-lane Chrome export with dispatch flow arrows, and the abort /
zero-task / spawn-vs-fork edge cases.
"""

import json

import numpy as np
import pytest

from repro.api import factor, plan
from repro.dag.tasks import TaskGraph
from repro.obs import (EventBus, MetricsRegistry, analyze_chrome_trace,
                       chrome_trace)
from repro.obs.analyze import (IPC_PHASES, overhead_report,
                               render_overhead_report)
from repro.obs.chrome_trace import distributed_to_events
from repro.obs.tracer import (PHASES, ClockSync, DistributedTracer,
                              TaskPhases, Tracer, estimate_clock_sync)
from repro.runtime import ProcessPool
from repro.tiles import TiledMatrix
from tests.conftest import random_matrix

NB = 8


@pytest.fixture(scope="module")
def pool():
    with ProcessPool(workers=2, start_method="fork") as p:
        yield p


def qr_tasks():
    return plan(2, 2, "greedy").graph.tasks


def make_tracer(epoch=0.0):
    tr = DistributedTracer()
    tr.epoch = epoch  # synthetic stamps start at t=0
    return tr


def clock(worker, offset, residual=1e-5):
    return ClockSync(worker=worker, offset=offset, residual=residual,
                     rtt=2 * residual, samples=8, at=0.0)


# ----------------------------------------------------------------------
# clock handshake
# ----------------------------------------------------------------------

class TestClockSync:
    def test_min_rtt_sample_wins(self):
        # (t_send, t_worker, t_recv); the middle ping has the tightest
        # round-trip (0.2 s) so it alone provides the estimate
        samples = [(0.0, 10.5, 1.0), (2.0, 12.1, 2.2), (4.0, 14.9, 5.0)]
        sync = estimate_clock_sync(7, samples)
        assert sync.worker == 7
        assert sync.offset == pytest.approx(12.1 - 2.1)
        assert sync.rtt == pytest.approx(0.2)
        assert sync.residual == pytest.approx(0.1)
        assert sync.samples == 3
        assert sync.drift == 0.0

    def test_aligned_maps_onto_parent_clock(self):
        sync = estimate_clock_sync(0, [(0.0, 5.0, 0.0)])
        assert sync.offset == pytest.approx(5.0)
        assert sync.aligned(6.0) == pytest.approx(1.0)

    def test_drift_against_previous_estimate(self):
        prev = estimate_clock_sync(0, [(0.0, 10.0, 0.2)])   # offset 9.9
        nxt = estimate_clock_sync(0, [(2.0, 12.2, 2.2)], prev=prev)
        # offset moved 9.9 -> 10.1 over 2 s of parent time
        assert nxt.drift == pytest.approx(0.2 / 2.0)

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError, match="ping sample"):
            estimate_clock_sync(0, [])

    def test_to_dict_round_trip_keys(self):
        d = estimate_clock_sync(3, [(0.0, 1.0, 0.1)]).to_dict()
        assert set(d) == {"worker", "offset_s", "residual_s", "rtt_s",
                          "samples", "drift"}


# ----------------------------------------------------------------------
# parent/worker span merge
# ----------------------------------------------------------------------

class TestDistributedMerge:
    def test_full_merge_aligns_and_telescopes(self):
        tr = make_tracer()
        tr.set_clock(clock(1, offset=100.0))
        t = qr_tasks()[0]
        tr.record_parent(t, ready=0.0, dispatch=0.01, retire=0.2,
                         worker=1, dt=0.05)
        tr.add_worker_span({"tid": t.tid, "worker": 1, "recv": 100.02,
                            "start": 100.03, "finish": 100.08,
                            "publish": 100.09})
        assert tr.finalize() == 1
        (p,) = tr.phases
        assert p.measured and not p.aborted
        assert p.queued == pytest.approx(0.01)
        assert p.dispatched == pytest.approx(0.01)
        assert p.deserialized == pytest.approx(0.01)
        assert p.computing == pytest.approx(0.05)
        assert p.published == pytest.approx(0.01)
        assert p.retired == pytest.approx(0.11)
        assert sum(p.phase(n) for n in PHASES) == pytest.approx(
            p.latency, abs=1e-12)
        # the companion Span keeps the plain-tracer consumers working
        (s,) = tr.spans
        assert (s.tid, s.worker) == (t.tid, 1)
        assert s.submit == pytest.approx(0.01)
        assert s.start == pytest.approx(0.03)
        assert s.finish == pytest.approx(0.08)

    def test_misaligned_stamps_clamped_monotone(self):
        tr = make_tracer()
        # offset over-estimated: aligned worker stamps land *before*
        # the parent dispatch; clamping must absorb the residual
        tr.set_clock(clock(0, offset=100.05))
        t = qr_tasks()[0]
        tr.record_parent(t, ready=0.0, dispatch=0.04, retire=0.2,
                         worker=0)
        tr.add_worker_span({"tid": t.tid, "worker": 0, "recv": 100.02,
                            "start": 100.03, "finish": 100.08,
                            "publish": 100.09})
        tr.finalize()
        (p,) = tr.phases
        for name in PHASES:
            assert p.phase(name) >= 0.0
        assert sum(p.phase(n) for n in PHASES) == pytest.approx(
            p.latency, abs=1e-12)
        assert p.recv == p.start == p.dispatch  # clamped up

    def test_dropped_worker_span_falls_back_to_dt(self):
        tr = make_tracer()
        t = qr_tasks()[0]
        tr.record_parent(t, ready=0.0, dispatch=0.01, retire=0.2,
                         worker=0, dt=0.05)
        tr.finalize()
        (p,) = tr.phases
        assert not p.measured and not p.aborted
        assert p.computing == pytest.approx(0.05)
        assert p.published == 0.0 and p.retired == 0.0
        assert sum(p.phase(n) for n in PHASES) == pytest.approx(p.latency)

    def test_aborted_task_closed_not_dropped(self):
        tr = make_tracer()
        t = qr_tasks()[0]
        tr.record_parent(t, ready=0.0, dispatch=0.01, retire=0.15,
                         worker=1, aborted=True)
        tr.finalize()
        (p,) = tr.phases
        assert p.aborted and not p.measured
        assert p.retire == pytest.approx(0.15)
        assert p.computing == 0.0
        assert tr.aborted_count == 1
        assert tr.spans[0].aborted

    def test_malformed_worker_spans_dropped(self):
        tr = make_tracer()
        tr.add_worker_span({"tid": "x", "worker": 0, "recv": 1.0,
                            "start": 1.0, "finish": 1.0, "publish": 1.0})
        tr.add_worker_span({"tid": 3})  # missing stamps
        tr.add_worker_span({})
        assert not tr._wspans

    def test_finalize_clears_pending_maps(self):
        tr = make_tracer()
        t = qr_tasks()[0]
        tr.record_parent(t, 0.0, 0.01, 0.2, worker=0)
        tr.add_worker_span({"tid": t.tid, "worker": 0, "recv": 0.02,
                            "start": 0.03, "finish": 0.08,
                            "publish": 0.09})
        assert tr.finalize() == 1
        assert not tr._parent and not tr._wspans
        assert tr.finalize() == 0  # idempotent on an empty backlog
        assert len(tr.phases) == 1

    def test_phase_accessor_rejects_unknown_name(self):
        p = TaskPhases(tid=0, name="t", kernel="GEQRT", worker=0,
                       ready=0.0, dispatch=0.0, recv=0.0, start=0.0,
                       finish=0.0, publish=0.0, retire=0.0)
        with pytest.raises(KeyError, match="unknown phase"):
            p.phase("warp")
        assert set(PHASES) < set(p.to_dict())


# ----------------------------------------------------------------------
# overhead attribution
# ----------------------------------------------------------------------

def merged_tracer(pl):
    """Two hand-merged tasks on two workers, perfectly aligned clocks."""
    tr = make_tracer()
    tr.set_clock(clock(0, offset=0.0))
    tr.set_clock(clock(1, offset=0.0, residual=2e-5))
    stamps = [(0.0, 0.01, 0.02, 0.03, 0.08, 0.09, 0.10, 0),
              (0.02, 0.10, 0.11, 0.12, 0.20, 0.21, 0.23, 1)]
    for t, (rd, dp, rc, st, fi, pb, rt, w) in zip(pl.graph.tasks, stamps):
        tr.record_parent(t, rd, dp, rt, worker=w)
        tr.add_worker_span({"tid": t.tid, "worker": w, "recv": rc,
                            "start": st, "finish": fi, "publish": pb})
    tr.finalize()
    return tr


class TestOverheadReport:
    def test_distributed_attribution(self):
        pl = plan(2, 2, "greedy")
        rep = overhead_report(merged_tracer(pl), graph=pl, label="unit")
        assert rep.distributed
        assert rep.tasks == rep.records == 2
        assert rep.workers == 2
        assert rep.makespan == pytest.approx(0.23)
        for name in PHASES:
            assert rep.phase_means[name] == pytest.approx(
                rep.phase_totals[name] / 2)
        assert rep.ipc_tax_s == pytest.approx(
            sum(rep.phase_means[n] for n in IPC_PHASES))
        lat = sum(rep.phase_totals.values())
        assert rep.overhead_share == pytest.approx(
            1.0 - rep.phase_totals["computing"] / lat)
        # the 2-task chain is sequential: the gating-chain share exists
        assert rep.critical_path_overhead_share is not None
        assert 0.0 <= rep.critical_path_overhead_share <= 1.0
        assert [r["worker"] for r in rep.per_worker] == [0, 1]
        assert sum(r["count"] for r in rep.per_kernel) == 2
        assert rep.max_residual_s == pytest.approx(2e-5)
        assert len(rep.clock) == 2
        assert rep.aborted == 0 and rep.unmeasured == 0

    def test_plain_tracer_degenerates_to_two_phases(self):
        tr = Tracer(epoch=0.0)
        for t in qr_tasks()[:2]:
            tr.record(t, submit=0.0, start=0.01, finish=0.05, worker=0)
        rep = overhead_report(tr)
        assert not rep.distributed
        assert rep.ipc_tax_s == 0.0
        for name in IPC_PHASES:
            assert rep.phase_totals[name] == 0.0
        assert rep.phase_totals["queued"] == pytest.approx(0.02)
        assert rep.phase_totals["computing"] == pytest.approx(0.08)
        assert "two-phase fallback" in render_overhead_report(rep)

    def test_render_formats(self):
        pl = plan(2, 2, "greedy")
        rep = overhead_report(merged_tracer(pl), graph=pl)
        text = render_overhead_report(rep, "text")
        assert "IPC tax" in text and "clock alignment" in text
        assert "worst alignment residual" in text
        md = render_overhead_report(rep, "markdown")
        assert md.startswith("## overhead report")
        loaded = json.loads(render_overhead_report(rep, "json"))
        assert loaded["tasks"] == 2 and loaded["distributed"]
        with pytest.raises(ValueError, match="unknown format"):
            render_overhead_report(rep, "yaml")


# ----------------------------------------------------------------------
# merged Chrome export
# ----------------------------------------------------------------------

class TestMergedChromeExport:
    def test_lanes_slivers_and_flow_arrows(self):
        pl = plan(2, 2, "greedy")
        tr = merged_tracer(pl)
        ev = distributed_to_events(tr)
        lanes = {e["args"]["name"] for e in ev if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        assert lanes == {"dispatch", "worker 0", "worker 1"}
        disp = [e for e in ev if e.get("cat") == "dispatch"]
        assert len(disp) == 2 and all(e["tid"] == 0 for e in disp)
        kern = [e for e in ev if e.get("cat") in ("panel", "update")]
        assert len(kern) == 2 and all(e["tid"] >= 1 for e in kern)
        over = [e for e in ev if e.get("cat") == "overhead"]
        assert {e["name"] for e in over} == {"deserialize", "publish"}
        starts = {e["id"]: e for e in ev
                  if e.get("cat") == "flow" and e["ph"] == "s"}
        ends = {e["id"]: e for e in ev
                if e.get("cat") == "flow" and e["ph"] == "f"}
        assert set(starts) == set(ends) == {t.tid for t in
                                            pl.graph.tasks[:2]}
        assert all(e["tid"] == 0 for e in starts.values())
        assert all(e["tid"] >= 1 and e["bp"] == "e"
                   for e in ends.values())

    def test_chrome_trace_picks_distributed_lanes(self):
        pl = plan(2, 2, "greedy")
        trace = chrome_trace(tracer=merged_tracer(pl))
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert {"dispatch", "flow"} <= cats
        # a plain tracer keeps the flat per-thread export
        tr = Tracer(epoch=0.0)
        tr.record(qr_tasks()[0], 0.0, 0.01, 0.05, worker=0)
        flat = chrome_trace(tracer=tr)
        assert "flow" not in {e.get("cat") for e in flat["traceEvents"]}

    def test_empty_capture_emits_placeholder(self):
        ev = distributed_to_events(make_tracer())
        assert any(e.get("args", {}).get("placeholder") for e in ev)

    def test_analyze_merged_trace_counts_kernels_once(self):
        """Satellite: ``analyze --from-trace`` on a merged trace must
        report per-worker utilization without double-counting the
        parent dispatch lane or the overhead slivers."""
        pl = plan(2, 2, "greedy")
        reports = analyze_chrome_trace(chrome_trace(tracer=merged_tracer(pl)))
        assert len(reports) == 1
        rep = reports[0]
        assert rep.tasks == 2
        assert rep.processors == 2  # worker lanes only, not dispatch
        assert sum(k.count for k in rep.kernels) == 2
        # busy time is the kernel slices alone (0.05 + 0.08)
        assert rep.total_busy == pytest.approx(0.13, abs=1e-6)


# ----------------------------------------------------------------------
# end-to-end through a real pool
# ----------------------------------------------------------------------

class TestProcessEndToEnd:
    def test_phases_cover_every_task_and_telescope(self, rng, pool):
        tracer = DistributedTracer()
        metrics = MetricsRegistry()
        a = random_matrix(rng, 64, 32, np.float64)
        f = factor(a, nb=NB, ib=4, mode="process", pool=pool,
                   tracer=tracer, metrics=metrics)
        n = len(f.graph.tasks)
        assert len(tracer.phases) == n == len(tracer.spans)
        assert {p.tid for p in tracer.phases} == set(range(n))
        assert all(p.measured and not p.aborted for p in tracer.phases)
        # the ISSUE acceptance bound: alignment residual well under 1 ms
        assert 0.0 < tracer.max_residual < 1e-3
        for p in tracer.phases:
            b = [p.ready, p.dispatch, p.recv, p.start, p.finish,
                 p.publish, p.retire]
            assert b == sorted(b)
            assert abs(sum(p.phase(nm) for nm in PHASES)
                       - p.latency) < 1e-9
        assert {p.worker for p in tracer.phases} == set(range(pool.workers))
        # per-run bookkeeping fully retired
        assert not pool._pending
        assert not tracer._parent and not tracer._wspans
        names = metrics.names()
        assert "procpool.clock.residual_us.w0" in names
        assert "procpool.clock.offset_us.w1" in names

    def test_overhead_report_from_live_run(self, rng, pool):
        tracer = DistributedTracer()
        a = random_matrix(rng, 64, 32, np.float64)
        f = factor(a, nb=NB, ib=4, mode="process", pool=pool,
                   tracer=tracer)
        rep = overhead_report(tracer, graph=f.graph)
        assert rep.distributed and rep.unmeasured == 0
        assert rep.tasks == len(f.graph.tasks)
        assert rep.phase_totals["computing"] > 0.0
        assert rep.ipc_tax_s > 0.0
        assert 0.0 < rep.overhead_share < 1.0
        assert rep.critical_path_overhead_share is not None
        assert len(rep.clock) == pool.workers

    def test_bus_holds_full_run_on_return(self, rng, pool):
        """Satellite: run() drains the relay before publishing
        ``run_done`` — the bus is complete the moment factor returns,
        with no polling window."""
        bus = EventBus(capacity=65536)
        tracer = DistributedTracer()
        a = random_matrix(rng, 64, 32, np.float64)
        f = factor(a, nb=NB, ib=4, mode="process", pool=pool, bus=bus,
                   tracer=tracer)
        n = len(f.graph.tasks)
        evs = bus.snapshot()
        assert sum(e.kind == "task_done" for e in evs) == n
        done = [e.kind for e in evs]
        assert "run_done" in done
        assert done.index("run_done") > done.index("run_start")
        assert len(tracer.phases) == n

    def test_zero_task_graph(self, rng, pool):
        g = TaskGraph(1, 1)  # no tasks added
        tracer = DistributedTracer()
        a = random_matrix(rng, NB, NB, np.float64)
        pool.run(g, TiledMatrix(a.copy(), NB), ib=4, tracer=tracer)
        assert not tracer.phases and not tracer.spans
        trace = chrome_trace(tracer=tracer)
        assert any(e.get("args", {}).get("placeholder")
                   for e in trace["traceEvents"])
        rep = overhead_report(tracer)
        assert rep.tasks == 0 and rep.makespan == 0.0
        render_overhead_report(rep)  # renders without dividing by zero

    def test_worker_death_closes_inflight_spans(self, rng):
        """Satellite: a worker dying mid-run surfaces as RuntimeError
        and every dispatched-but-unretired task is closed with the
        ``aborted`` tag instead of being dropped."""
        a = random_matrix(rng, 64, 64, np.float64)
        tracer = DistributedTracer()
        killed = []
        with ProcessPool(workers=2, start_method="fork") as p:
            def kill_worker_0(task, done, total):
                if not killed:
                    killed.append(True)
                    p._inqs[0].put(("die",))  # unknown kind: worker exits

            with pytest.raises(RuntimeError, match="died"):
                factor(a, nb=NB, ib=4, mode="process", pool=p,
                       tracer=tracer, on_task_done=kill_worker_0)
        assert tracer.aborted_count >= 1
        assert not p._pending  # nothing leaks from the aborted run
        for p_ in tracer.phases:
            if p_.aborted:
                assert not p_.measured
                assert p_.retire >= p_.dispatch >= p_.ready
        # the merged export tags aborted slices rather than hiding them
        ev = distributed_to_events(tracer)
        assert any(e["args"].get("aborted") for e in ev
                   if e["ph"] == "X" and "args" in e)

    def test_spawn_and_fork_produce_same_trace_structure(self, rng):
        """Satellite: merged-trace *structure* (lanes, slice kinds,
        flow arrows, task names) is identical under both start
        methods; only the timestamps differ."""
        a = random_matrix(rng, 48, 16, np.float64)

        def structure(start_method):
            tracer = DistributedTracer()
            factor(a, nb=NB, ib=4, mode="process", workers=2,
                   start_method=start_method, tracer=tracer)
            ev = distributed_to_events(tracer)
            # overhead slivers are elided when their phase rounds to
            # zero width, so they are not structural
            shape = sorted((e["ph"], e.get("cat"), e["name"])
                           for e in ev if e.get("cat") != "overhead")
            lanes = {e["args"]["name"] for e in ev if e["ph"] == "M"}
            return shape, lanes

        assert structure("fork") == structure("spawn")
