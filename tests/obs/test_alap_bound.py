"""Tests for the ALAP/ASAP area lower bound (Quach & Langou, 1510.05107)."""

import pytest

from repro.obs.analyze import alap_lower_bound, analyze_sim, render_report
from repro.planner import plan
from repro.problems import build_cholesky_dag, build_lu_dag
from repro.sim.simulate import simulate_unbounded

GRIDS = [("greedy", 8, 4), ("flat-tree", 8, 4), ("fibonacci", 15, 6),
         ("greedy", 30, 10)]
PROCS = [1, 2, 4, 8, 16]


class TestValidity:
    @pytest.mark.parametrize("scheme,p,q", GRIDS)
    @pytest.mark.parametrize("P", PROCS)
    def test_never_exceeds_achievable_makespan(self, scheme, p, q, P):
        pl = plan(p, q, scheme)
        assert alap_lower_bound(pl.graph, P) <= pl.schedule(P).makespan + 1e-9

    @pytest.mark.parametrize("scheme,p,q", GRIDS)
    @pytest.mark.parametrize("P", PROCS)
    def test_never_looser_than_work_bound(self, scheme, p, q, P):
        # the area-bound family always contains x = 0, i.e. work / P;
        # (the critical path is a *separate* bound: at large P the
        # area argument legitimately drops below it)
        pl = plan(p, q, scheme)
        work = sum(t.weight for t in pl.graph.tasks)
        assert alap_lower_bound(pl.graph, P) >= work / P - 1e-9

    @pytest.mark.parametrize("builder,arg", [
        (build_cholesky_dag, 8), (lambda t: build_lu_dag(t, t), 8)])
    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_other_families(self, builder, arg, P):
        g = builder(arg)
        work = sum(t.weight for t in g.tasks)
        bound = alap_lower_bound(g, P)
        assert work / P - 1e-9 <= bound
        # a greedy bounded schedule must respect it
        from repro.sim.simulate import simulate_bounded
        assert bound <= simulate_bounded(g, P).makespan + 1e-9

    def test_p1_is_total_work(self):
        g = build_cholesky_dag(6)
        assert alap_lower_bound(g, 1) == pytest.approx(
            sum(t.weight for t in g.tasks))

    def test_rejects_bad_processors(self):
        with pytest.raises(ValueError):
            alap_lower_bound(build_cholesky_dag(3), 0)


class TestTightness:
    def test_strictly_tighter_somewhere(self):
        """The whole point: at >= 1 grid point the ALAP bound must beat
        max(cp, work/P), otherwise it adds nothing."""
        pl = plan(30, 10, "greedy")
        work = sum(t.weight for t in pl.graph.tasks)
        cp = simulate_unbounded(pl.graph).makespan
        P = 16
        classical = max(cp, work / P)
        assert alap_lower_bound(pl.graph, P) > classical + 1.0

    def test_greedy_8x4_p4_certifies_optimality(self):
        """ALAP equals the achieved makespan: a 100%-efficiency proof."""
        pl = plan(8, 4, "greedy")
        assert alap_lower_bound(pl.graph, 4) == pl.schedule(4).makespan == 166.0

    def test_cholesky_t8_p4_golden(self):
        assert alap_lower_bound(build_cholesky_dag(8), 4) == 133.75


class TestReporting:
    def test_bounds_dict_and_render(self):
        rep = analyze_sim(plan(8, 4, "greedy").schedule(4))
        assert rep.bounds["alap"] == 166.0
        assert rep.bounds["lower"] >= rep.bounds["alap"] - 1e-9
        assert rep.bounds["efficiency"] == pytest.approx(1.0)
        assert "ALAP" in render_report(rep)

    def test_unbounded_report_has_no_alap(self):
        rep = analyze_sim(plan(8, 4, "greedy").schedule(None))
        assert "alap" not in rep.bounds
