"""Tests for the span tracer: recording, thread-safety, null path."""

import threading

from repro.dag import build_dag
from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.schemes import greedy


def graph():
    return build_dag(greedy(4, 2), "TT")


class TestSpanRecording:
    def test_record_fields(self):
        g = graph()
        tr = Tracer()
        t = g.tasks[0]
        span = tr.record(t, submit=0.0, start=0.5, finish=1.25, worker=3)
        assert span.tid == t.tid
        assert span.kernel == t.kernel.value
        assert span.name == str(t)
        assert (span.row, span.piv, span.col, span.j) == (
            t.row, t.piv, t.col, t.j)
        assert span.worker == 3
        assert span.duration == 0.75
        assert span.queue_delay == 0.5
        assert len(tr) == 1 and tr.spans[0] is span

    def test_makespan_and_busy_fraction(self):
        g = graph()
        tr = Tracer()
        tr.record(g.tasks[0], submit=0.0, start=0.0, finish=1.0, worker=0)
        tr.record(g.tasks[1], submit=0.0, start=1.0, finish=2.0, worker=0)
        assert tr.makespan() == 2.0
        assert tr.busy_fraction() == 1.0

    def test_empty_capture(self):
        tr = Tracer()
        assert len(tr) == 0
        assert tr.makespan() == 0.0
        assert tr.busy_fraction() == 1.0

    def test_now_is_monotonic(self):
        tr = Tracer()
        a = tr.now()
        b = tr.now()
        assert 0 <= a <= b


class TestThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        g = build_dag(greedy(8, 4), "TT")
        tr = Tracer()
        per_thread = len(g.tasks)
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for t in g.tasks:
                tr.record(t, submit=0.0, start=tr.now(), finish=tr.now())

        threads = [threading.Thread(target=work) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(tr) == 8 * per_thread
        # dense first-touch worker indices, one per recording thread
        workers = {s.worker for s in tr.spans}
        assert workers == set(range(8))
        assert tr.worker_count == 8


class TestNullTracer:
    def test_records_nothing(self):
        g = graph()
        nt = NullTracer()
        assert nt.enabled is False
        assert nt.record(g.tasks[0], 0.0, 0.0, 1.0) is None
        assert len(nt) == 0
        assert nt.makespan() == 0.0

    def test_shared_singleton_disabled(self):
        assert NULL_TRACER.enabled is False
        assert len(NULL_TRACER) == 0
