"""Tests for the background time-series sampler (S21)."""

import threading
import time

import pytest

from repro.obs import (EventBus, LiveState, MetricsRegistry, Sampler,
                       read_rss_bytes)
from repro.obs import sampler as sampler_mod
from repro.obs.sampler import _rusage_rss_bytes


class TestReadRss:
    def test_positive_and_plausible(self):
        rss = read_rss_bytes()
        # a running CPython with NumPy imported is tens of MB at least
        assert rss > 10 * 1024 * 1024
        assert rss < 1 << 42

    def test_statm_branch_scales_pages(self, tmp_path, monkeypatch):
        statm = tmp_path / "statm"
        statm.write_text("9999 1234 55 6 0 77 0\n")
        monkeypatch.setattr(sampler_mod, "_STATM_PATH", str(statm))
        assert read_rss_bytes() == 1234 * sampler_mod._PAGE_SIZE

    def test_rusage_fallback_when_no_statm(self, monkeypatch):
        monkeypatch.setattr(sampler_mod, "_STATM_PATH",
                            "/nonexistent/statm")
        rss = read_rss_bytes()
        # peak RSS of a live CPython+NumPy process, normalized to bytes
        assert rss > 10 * 1024 * 1024
        assert rss < 1 << 42

    @pytest.mark.parametrize("platform,scale", [
        ("linux", 1024), ("freebsd13", 1024), ("darwin", 1),
    ])
    def test_rusage_units_per_platform(self, platform, scale):
        """ru_maxrss is KB on Linux/BSD but *bytes* on macOS.  The old
        value-based heuristic (``> 1 << 32`` means bytes) classified a
        120 MB-peak macOS process as KB and reported ~120 GB."""
        ru = 123_456  # ~120 MB in KB, ~120 KB in bytes; below 1 << 32
        assert _rusage_rss_bytes(ru, platform) == ru * scale


class TestSampleOnce:
    def test_records_all_series(self):
        bus = EventBus()
        state = LiveState(total=10, nb=32).connect(bus)
        bus.publish("run_start", total=10, count=2)
        bus.publish("group_done", kernel="GEQRT", count=4, value=0.01)
        bus.publish("frontier", value=5.0)
        m = MetricsRegistry()
        s = Sampler(m, state)
        s.sample_once(t=1.0)
        d = m.to_dict()
        assert d["sampler.queue_depth"]["value"] == 5.0
        assert d["sampler.done_tasks"]["value"] == 4.0
        assert d["sampler.cum_gflops"]["value"] > 0.0
        assert d["sampler.gflop_rate"]["value"] == pytest.approx(
            d["sampler.cum_gflops"]["value"] / 1.0)
        assert d["sampler.rss_bytes"]["value"] > 0
        assert d["sampler.ticks"]["value"] == 1

    def test_stateless_sampler_records_process_series_only(self):
        m = MetricsRegistry()
        Sampler(m, state=None).sample_once(t=0.5)
        d = m.to_dict()
        assert "sampler.rss_bytes" in d
        assert "sampler.queue_depth" not in d

    def test_sample_series_carry_timestamps(self):
        m = MetricsRegistry()
        s = Sampler(m, state=None)
        s.sample_once(t=0.25)
        s.sample_once(t=0.75)
        samples = m.gauge("sampler.rss_bytes").samples
        assert [t for t, _ in samples] == [0.25, 0.75]


class TestSamplerThread:
    def test_ticks_at_cadence_and_final_sample(self):
        m = MetricsRegistry()
        with Sampler(m, state=None, interval=0.01) as s:
            time.sleep(0.08)
        # the context exit records a closing sample on top of the ticks
        assert s.ticks >= 3
        assert m.to_dict()["sampler.ticks"]["value"] == s.ticks

    def test_stop_is_idempotent(self):
        s = Sampler(MetricsRegistry(), state=None, interval=0.01)
        s.start()
        s.stop()
        ticks = s.ticks
        s.stop()
        assert s.ticks == ticks

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="interval"):
            Sampler(MetricsRegistry(), interval=0.0)

    def test_stop_bounded_join_on_stalled_tick(self):
        """A tick stalled inside its clock (stand-in for blocking
        ``/proc`` I/O) must not hang ``stop()``: the join is bounded,
        ``join_timed_out`` is set, the thread is abandoned, and the
        outcome is remembered across repeated calls."""
        entered = threading.Event()
        release = threading.Event()

        def blocking_clock():
            entered.set()
            release.wait(30)  # the stall
            return 0.0

        s = Sampler(MetricsRegistry(), state=None, interval=0.005,
                    clock=blocking_clock)
        s.start()
        try:
            assert entered.wait(5), "sampler thread never ticked"
            t0 = time.monotonic()
            assert s.stop(timeout=0.2) is False
            assert time.monotonic() - t0 < 2.0  # bounded, not hung
            assert s.join_timed_out
            # idempotent: repeated stops are no-ops with the same answer
            assert s.stop(timeout=0.2) is False
        finally:
            release.set()

    def test_stop_skips_final_sample_after_timeout(self):
        """The stuck tick may still write when it unblocks; stop() must
        not race it with a closing sample of its own."""
        m = MetricsRegistry()
        hang = threading.Event()

        def blocking_clock():
            hang.wait(30)
            return 0.0

        s = Sampler(m, state=None, interval=0.001, clock=blocking_clock)
        s.start()
        try:
            time.sleep(0.05)  # let the thread enter the stalled tick
            assert s.stop(timeout=0.1) is False
            assert s.ticks == 0
            assert "sampler.ticks" not in m.to_dict()
        finally:
            hang.set()

    def test_pull_mode_state_sampled_live(self):
        bus = EventBus()
        state = LiveState(total=100, nb=32).connect(bus)
        m = MetricsRegistry()
        with Sampler(m, state, interval=0.01):
            for i in range(50):
                bus.publish("task_done", tid=i, kernel="UNMQR",
                            value=0.001)
            time.sleep(0.05)
        assert m.gauge("sampler.done_tasks").value == 50.0
