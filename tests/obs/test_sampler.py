"""Tests for the background time-series sampler (S21)."""

import time

import pytest

from repro.obs import (EventBus, LiveState, MetricsRegistry, Sampler,
                       read_rss_bytes)


class TestReadRss:
    def test_positive_and_plausible(self):
        rss = read_rss_bytes()
        # a running CPython with NumPy imported is tens of MB at least
        assert rss > 10 * 1024 * 1024
        assert rss < 1 << 42


class TestSampleOnce:
    def test_records_all_series(self):
        bus = EventBus()
        state = LiveState(total=10, nb=32).connect(bus)
        bus.publish("run_start", total=10, count=2)
        bus.publish("group_done", kernel="GEQRT", count=4, value=0.01)
        bus.publish("frontier", value=5.0)
        m = MetricsRegistry()
        s = Sampler(m, state)
        s.sample_once(t=1.0)
        d = m.to_dict()
        assert d["sampler.queue_depth"]["value"] == 5.0
        assert d["sampler.done_tasks"]["value"] == 4.0
        assert d["sampler.cum_gflops"]["value"] > 0.0
        assert d["sampler.gflop_rate"]["value"] == pytest.approx(
            d["sampler.cum_gflops"]["value"] / 1.0)
        assert d["sampler.rss_bytes"]["value"] > 0
        assert d["sampler.ticks"]["value"] == 1

    def test_stateless_sampler_records_process_series_only(self):
        m = MetricsRegistry()
        Sampler(m, state=None).sample_once(t=0.5)
        d = m.to_dict()
        assert "sampler.rss_bytes" in d
        assert "sampler.queue_depth" not in d

    def test_sample_series_carry_timestamps(self):
        m = MetricsRegistry()
        s = Sampler(m, state=None)
        s.sample_once(t=0.25)
        s.sample_once(t=0.75)
        samples = m.gauge("sampler.rss_bytes").samples
        assert [t for t, _ in samples] == [0.25, 0.75]


class TestSamplerThread:
    def test_ticks_at_cadence_and_final_sample(self):
        m = MetricsRegistry()
        with Sampler(m, state=None, interval=0.01) as s:
            time.sleep(0.08)
        # the context exit records a closing sample on top of the ticks
        assert s.ticks >= 3
        assert m.to_dict()["sampler.ticks"]["value"] == s.ticks

    def test_stop_is_idempotent(self):
        s = Sampler(MetricsRegistry(), state=None, interval=0.01)
        s.start()
        s.stop()
        ticks = s.ticks
        s.stop()
        assert s.ticks == ticks

    def test_interval_validation(self):
        with pytest.raises(ValueError, match="interval"):
            Sampler(MetricsRegistry(), interval=0.0)

    def test_pull_mode_state_sampled_live(self):
        bus = EventBus()
        state = LiveState(total=100, nb=32).connect(bus)
        m = MetricsRegistry()
        with Sampler(m, state, interval=0.01):
            for i in range(50):
                bus.publish("task_done", tid=i, kernel="UNMQR",
                            value=0.001)
            time.sleep(0.05)
        assert m.gauge("sampler.done_tasks").value == 50.0
