"""Tests for counters, gauges, histograms, and the registry."""

import json
import threading

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_monotone(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_value_and_extrema(self):
        g = Gauge("g")
        for v in (3, -1, 7, 2):
            g.set(v)
        assert g.value == 2
        assert g.min == -1 and g.max == 7

    def test_samples_with_timestamps(self):
        g = Gauge("g")
        g.set(1, t=0.0)
        g.set(4, t=0.5)
        g.set(2)  # no timestamp: not sampled
        assert g.samples == [(0.0, 1.0), (0.5, 4.0)]

    def test_samples_disabled(self):
        g = Gauge("g", keep_samples=False)
        g.set(1, t=0.0)
        assert g.samples == []


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("h", buckets=(1, 10, 100))
        for v in (0.5, 1.0, 5, 50, 500, 5000):
            h.observe(v)
        assert h.counts == [2, 1, 1, 2]  # <=1, <=10, <=100, overflow
        assert h.count == 6
        assert h.min == 0.5 and h.max == 5000
        assert h.mean == pytest.approx(sum((0.5, 1, 5, 50, 500, 5000)) / 6)

    def test_unsorted_buckets_are_sorted(self):
        h = Histogram("h", buckets=(10, 1))
        assert h.buckets == (1.0, 10.0)

    def test_empty_mean(self):
        assert Histogram("h", buckets=(1,)).mean == 0.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h", buckets=(1, 2)) is r.histogram("h")

    def test_type_clash_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_names_and_contains(self):
        r = MetricsRegistry()
        r.counter("b")
        r.gauge("a")
        assert r.names() == ["a", "b"]
        assert "a" in r and "zz" not in r
        assert len(r) == 2

    def test_to_dict_and_json_roundtrip(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(5, t=1.0)
        r.histogram("h", buckets=(1, 10)).observe(3)
        d = json.loads(r.to_json())
        assert d["c"] == {"type": "counter", "value": 2}
        assert d["g"]["value"] == 5
        assert d["h"]["count"] == 1
        assert d["h"]["buckets"] == [[1.0, 0], [10.0, 1]]

    def test_render_mentions_every_metric(self):
        r = MetricsRegistry()
        r.counter("tasks.retired.GEQRT").inc(7)
        r.histogram("kernel.seconds.GEQRT", buckets=(1,)).observe(0.5)
        text = r.render()
        assert "tasks.retired.GEQRT" in text
        assert "kernel.seconds.GEQRT" in text
        assert "n=1" in text

    def test_json_is_deterministic_under_insertion_order(self):
        def build(order):
            r = MetricsRegistry()
            for name in order:
                r.counter(name).inc()
            return r.to_json()

        names = ["z.last", "a.first", "m.middle"]
        assert build(names) == build(list(reversed(names)))

    def test_json_keys_are_sorted(self):
        r = MetricsRegistry()
        r.counter("zz").inc()
        r.gauge("aa").set(1)
        d = json.loads(r.to_json())
        assert list(d) == sorted(d)
        # nested key order is sorted too, so byte-level diffs are stable
        assert r.to_json() == json.dumps(json.loads(r.to_json()),
                                         indent=1, sort_keys=True)

    def test_histogram_dict_exposes_bucket_edges(self):
        h = Histogram("h", buckets=(10, 1))
        h.observe(5)
        d = h.to_dict()
        assert d["bucket_edges"] == [1.0, 10.0]
        assert d["buckets"] == [[1.0, 0], [10.0, 1]]

    def test_concurrent_counting(self):
        r = MetricsRegistry()
        barrier = threading.Barrier(4)

        def work():
            barrier.wait()
            for _ in range(1000):
                r.counter("n").inc()
                r.histogram("h", buckets=(0.5, 1.0)).observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # get-or-create races must never produce two objects
        assert r.histogram("h").count == 4000


class TestMerge:
    """MetricsRegistry.merge — the multi-process aggregation primitive."""

    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(3)
        b.counter("n").inc(4)
        b.counter("only_b").inc(1)
        assert a.merge(b) is a
        assert a.counter("n").value == 7
        assert a.counter("only_b").value == 1

    def test_gauges_last_write_wins_extrema_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(10.0, t=1.0)
        b.gauge("g").set(2.0, t=0.5)
        a.merge(b)
        g = a.gauge("g")
        assert g.value == 2.0           # other's last value
        assert g.min == 2.0 and g.max == 10.0
        # concatenated series comes back time-sorted
        assert g.samples == [(0.5, 2.0), (1.0, 10.0)]

    def test_histograms_add_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.1, 5.0):
            a.histogram("h", buckets=(1.0, 10.0)).observe(v)
        for v in (0.2, 20.0):
            b.histogram("h", buckets=(1.0, 10.0)).observe(v)
        a.merge(b)
        h = a.histogram("h")
        assert h.count == 4
        assert h.sum == pytest.approx(25.3)
        # <=1: {0.1, 0.2}; <=10: {5.0}; +inf overflow: {20.0}
        assert h.counts == [2, 1, 1]
        assert h.min == pytest.approx(0.1)
        assert h.max == pytest.approx(20.0)

    def test_mismatched_buckets_raise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket"):
            a.merge(b)

    def test_self_merge_raises(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="itself"):
            r.merge(r)

    def test_type_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1.0)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_merge_disjoint_copies_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        assert a.histogram("h").count == 1
        assert a.histogram("h").buckets == (1.0, 2.0)

    def test_worker_fanin_equals_single_registry(self):
        # three "workers" each observe a share; the fold-in equals one
        # registry observing everything
        expect = MetricsRegistry()
        workers = [MetricsRegistry() for _ in range(3)]
        for i, v in enumerate((0.1, 0.5, 3.0, 7.0, 0.2, 1.5)):
            workers[i % 3].histogram("h", buckets=(1.0, 5.0)).observe(v)
            workers[i % 3].counter("n").inc()
            expect.histogram("h", buckets=(1.0, 5.0)).observe(v)
            expect.counter("n").inc()
        total = MetricsRegistry()
        for w in workers:
            total.merge(w)
        assert total.histogram("h").counts == expect.histogram("h").counts
        assert total.histogram("h").sum == pytest.approx(
            expect.histogram("h").sum)
        assert total.counter("n").value == expect.counter("n").value
