"""Tests for the Prometheus and JSONL exporters (S21)."""

import gzip

import pytest

from repro.obs import (Event, EventBus, MetricsRegistry,
                       parse_prometheus_text, prometheus_text,
                       read_events_jsonl, write_events_jsonl)
from repro.obs.export import sanitize_metric_name, write_prometheus


def _registry():
    m = MetricsRegistry()
    m.counter("tasks.retired.GEQRT").inc(12)
    m.gauge("scheduler.workers").set(4)
    h = m.histogram("kernel.seconds.GEQRT", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.002, 0.003, 0.5):
        h.observe(v)
    return m


class TestSanitize:
    def test_dots_become_underscores(self):
        assert (sanitize_metric_name("kernel.seconds.GEQRT")
                == "repro_kernel_seconds_GEQRT")

    def test_no_namespace(self):
        assert sanitize_metric_name("a.b", namespace="") == "a_b"

    def test_leading_digit_guarded(self):
        name = sanitize_metric_name("2fast", namespace="")
        assert name[0] not in "0123456789"


class TestPrometheusRender:
    def test_counter_gauge_histogram_families(self):
        text = prometheus_text(_registry())
        fams = parse_prometheus_text(text)
        c = fams["repro_tasks_retired_GEQRT"]
        assert c["type"] == "counter"
        assert c["samples"] == [
            ("repro_tasks_retired_GEQRT_total", {}, 12.0)]
        g = fams["repro_scheduler_workers"]
        assert g["type"] == "gauge"
        assert g["samples"][0][2] == 4.0

    def test_histogram_buckets_cumulative_and_closed(self):
        fams = parse_prometheus_text(prometheus_text(_registry()))
        h = fams["repro_kernel_seconds_GEQRT"]
        buckets = [(lab["le"], v) for n, lab, v in h["samples"]
                   if n.endswith("_bucket")]
        assert buckets == [("0.001", 1.0), ("0.01", 3.0), ("0.1", 3.0),
                           ("+Inf", 4.0)]
        count = [v for n, _, v in h["samples"] if n.endswith("_count")]
        assert count == [4.0]
        total = [v for n, _, v in h["samples"] if n.endswith("_sum")]
        assert total[0] == pytest.approx(0.5055)

    def test_write_prometheus(self, tmp_path):
        path = write_prometheus(tmp_path / "m.prom", _registry())
        fams = parse_prometheus_text(open(path).read())
        assert "repro_scheduler_workers" in fams


class TestPrometheusParser:
    def test_malformed_sample_line_raises(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("# TYPE x counter\nx_total one\n")

    def test_sample_without_type_raises(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_prometheus_text("orphan 1\n")

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE x flowchart\n")

    def test_non_cumulative_buckets_raise(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 5\n'
               'h_bucket{le="2"} 3\n'
               'h_bucket{le="+Inf"} 3\n'
               "h_sum 1\nh_count 3\n")
        with pytest.raises(ValueError, match="not cumulative"):
            parse_prometheus_text(bad)

    def test_missing_inf_bucket_raises(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1"} 5\n'
               "h_sum 1\nh_count 5\n")
        with pytest.raises(ValueError, match="\\+Inf"):
            parse_prometheus_text(bad)

    def test_inf_bucket_count_mismatch_raises(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="+Inf"} 4\n'
               "h_sum 1\nh_count 5\n")
        with pytest.raises(ValueError, match="_count"):
            parse_prometheus_text(bad)


class TestJsonl:
    def _events(self):
        bus = EventBus()
        bus.publish("run_start", total=3, count=1)
        bus.publish("task_done", tid=0, kernel="GEQRT", worker=0,
                    value=0.01)
        bus.publish("run_done", count=3, value=0.05)
        return bus.snapshot()

    def test_round_trip_plain(self, tmp_path):
        events = self._events()
        path = write_events_jsonl(tmp_path / "ev.jsonl", events)
        assert read_events_jsonl(path) == events

    def test_round_trip_gzip(self, tmp_path):
        events = self._events()
        path = write_events_jsonl(tmp_path / "ev.jsonl.gz", events)
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("{")
        assert read_events_jsonl(path) == events

    def test_append_mode(self, tmp_path):
        events = self._events()
        path = tmp_path / "ev.jsonl"
        write_events_jsonl(path, events[:1])
        write_events_jsonl(path, events[1:], append=True)
        assert read_events_jsonl(path) == events

    def test_accepts_plain_dicts(self, tmp_path):
        path = write_events_jsonl(
            tmp_path / "ev.jsonl", [{"kind": "frontier", "t": 1.0,
                                     "seq": 0, "value": 2.0}])
        (ev,) = read_events_jsonl(path)
        assert ev == Event("frontier", t=1.0, seq=0, value=2.0)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        write_events_jsonl(path, self._events())
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(read_events_jsonl(path)) == 3

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with open(path, "w") as fh:
            fh.write('{"kind": "run_start", "t": 0, "seq": 0}\n')
            fh.write("not json\n")
        with pytest.raises(ValueError, match="line 2"):
            read_events_jsonl(path)

    def test_non_event_object_raises(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with open(path, "w") as fh:
            fh.write('[1, 2, 3]\n')
        with pytest.raises(ValueError, match="malformed event"):
            read_events_jsonl(path)
