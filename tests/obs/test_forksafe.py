"""Fork-safety regressions: locks held at fork time must not deadlock
the child.

A ``threading.Lock`` held by another thread when ``os.fork()`` runs is
copied *locked* into the child, where no thread exists to release it —
the child's first acquire hangs forever.  Before the
``os.register_at_fork`` hooks in :mod:`repro.obs.metrics`,
:mod:`repro.obs.stream` and :mod:`repro.planner.cache`, every one of
the probes below deadlocked (the in-child watchdog exits 2); with the
hooks the child gets fresh locks and completes.

Each test forks the *real* pytest process while a helper thread
pathologically holds the relevant lock, then asserts the child can use
the object.  The children call ``os._exit`` so no pytest machinery
runs twice.
"""

import os
import threading

import numpy as np
import pytest

from repro.obs import EventBus, MetricsRegistry

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="requires os.fork")

_CHILD_TIMEOUT = 15.0


def _fork_and_probe(locks, child_op):
    """Fork while a helper thread holds ``locks``; run ``child_op`` in
    the child under a watchdog.  Returns the child's exit code:
    0 = op completed, 1 = op raised, 2 = op deadlocked (watchdog).
    """
    held = threading.Event()
    release = threading.Event()

    def holder():
        for lk in locks:
            lk.acquire()
        held.set()
        release.wait(30)
        for lk in locks:
            lk.release()

    th = threading.Thread(target=holder, daemon=True)
    th.start()
    assert held.wait(10), "lock holder never started"
    try:
        pid = os.fork()
        if pid == 0:  # child — only this thread survives the fork
            try:
                watchdog = threading.Timer(
                    _CHILD_TIMEOUT, lambda: os._exit(2))
                watchdog.daemon = True
                watchdog.start()
                child_op()
                os._exit(0)
            except BaseException:
                os._exit(1)
        _, status = os.waitpid(pid, 0)
    finally:
        release.set()
        th.join(10)
    return os.waitstatus_to_exitcode(status)


class TestForkWithHeldLocks:
    def test_metrics_registry_usable_in_child(self):
        reg = MetricsRegistry()
        c = reg.counter("forked.total")
        c.inc()

        def child_op():
            c.inc(5)                       # metric-level lock
            reg.gauge("forked.gauge").set(1.0)   # registry-level lock
            assert reg.counter("forked.total").value >= 6

        assert _fork_and_probe([reg._lock, c._lock], child_op) == 0

    def test_event_bus_usable_in_child(self):
        bus = EventBus(capacity=256)
        bus.publish("frontier", value=1.0)

        def child_op():
            bus.publish("task_done", tid=0, kernel="GEQRT", value=0.01)
            assert len(bus.snapshot()) >= 2  # fork snapshot + child's

        assert _fork_and_probe([bus._lock], child_op) == 0

    def test_plan_cache_and_plan_metrics_usable_in_child(self):
        from repro.api import plan
        from repro.planner import cache as plan_cache

        plan(2, 2, "greedy", "TT")         # prime LRU + PLAN_METRICS

        def child_op():
            p = plan(3, 2, "fibonacci", "TS")   # LRU miss -> build+put
            assert len(p.graph.tasks) > 0
            assert plan_cache.plan_cache_stats()  # walks PLAN_METRICS

        held = [plan_cache._lock, plan_cache.PLAN_METRICS._lock]
        assert _fork_and_probe(held, child_op) == 0


class TestForkUnderConcurrentPublishers:
    def test_children_never_deadlock_under_publisher_storm(self):
        """Fork repeatedly while threads hammer a registry and a bus —
        the race the procpool backend hits on every fork-start run."""
        reg = MetricsRegistry()
        bus = EventBus(capacity=4096)
        stop = threading.Event()

        def publisher(i):
            rng = np.random.default_rng(i)
            while not stop.is_set():
                reg.counter(f"storm.{i}").inc()
                reg.histogram("storm.lat").observe(float(rng.random()))
                bus.publish("task_done", tid=i, kernel="TSMQR",
                            value=0.001)

        threads = [threading.Thread(target=publisher, args=(i,),
                                    daemon=True) for i in range(4)]
        for th in threads:
            th.start()
        try:
            for _ in range(5):
                pid = os.fork()
                if pid == 0:
                    try:
                        watchdog = threading.Timer(
                            _CHILD_TIMEOUT, lambda: os._exit(2))
                        watchdog.daemon = True
                        watchdog.start()
                        reg.counter("storm.child").inc()
                        bus.publish("frontier", value=0.0)
                        bus.snapshot()
                        os._exit(0)
                    except BaseException:
                        os._exit(1)
                _, status = os.waitpid(pid, 0)
                assert os.waitstatus_to_exitcode(status) == 0
        finally:
            stop.set()
            for th in threads:
                th.join(10)
