"""Problem-family stamping through the observability stack (S18).

``run_start`` events, chrome traces, and the reports built from either
must all carry the problem family so ``repro analyze --from-trace``
can label its output.
"""

import json

import numpy as np

from repro.api import factor, plan
from repro.obs import Event, EventBus
from repro.obs.analyze import analyze_chrome_trace, analyze_events, analyze_sim
from repro.obs.chrome_trace import chrome_trace, to_chrome_json


class TestEventField:
    def test_event_has_problem_default(self):
        assert Event("frontier").problem == ""

    def test_publish_carries_problem(self):
        bus = EventBus()
        bus.publish("run_start", count=4, total=10.0, problem="cholesky")
        (ev,), _ = bus.events_since(0)
        assert ev.problem == "cholesky"

    def test_to_dict_elides_empty_problem(self):
        bus = EventBus()
        bus.publish("task_start", tid=1, kernel="geqrt")
        bus.publish("run_start", count=1, total=1.0, problem="lu")
        (plain, stamped), _ = bus.events_since(0)
        assert "problem" not in plain.to_dict()
        assert stamped.to_dict()["problem"] == "lu"
        assert Event.from_dict(stamped.to_dict()).problem == "lu"


class TestExecutorStamp:
    def test_factor_run_start_is_qr(self):
        bus = EventBus()
        a = np.random.default_rng(3).standard_normal((32, 16))
        factor(a, nb=8, ib=4, bus=bus)
        events, _ = bus.events_since(0)
        runs = [e for e in events if e.kind == "run_start"]
        assert runs and all(e.problem == "qr" for e in runs)

    def test_analyze_events_labels_report(self):
        bus = EventBus()
        a = np.random.default_rng(3).standard_normal((32, 16))
        factor(a, nb=8, ib=4, workers=2, bus=bus)
        events, _ = bus.events_since(0)
        rep = analyze_events(events)
        assert rep.problem == "qr"


class TestChromeTraceStamp:
    def test_sim_trace_carries_problem(self):
        sim = plan("cholesky(t=6)").schedule(4)
        doc = json.loads(to_chrome_json(sim=sim))
        assert doc["otherData"]["problem"] == "cholesky"

    def test_explicit_problem_wins(self):
        sim = plan("cholesky(t=6)").schedule(4)
        trace = chrome_trace(sim=sim, problem="custom")
        assert trace["otherData"]["problem"] == "custom"

    def test_analyze_roundtrip(self):
        sim = plan("lu(p=5,q=5)").schedule(4)
        reports = analyze_chrome_trace(json.loads(to_chrome_json(sim=sim)))
        assert reports and all(r.problem == "lu" for r in reports)

    def test_analyze_sim_sets_problem(self):
        assert analyze_sim(plan("lu(p=5,q=5)").schedule(2)).problem == "lu"
        assert analyze_sim(plan(4, 2, "greedy").schedule(2)).problem == "qr"
