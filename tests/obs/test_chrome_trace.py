"""Tests for the Chrome trace-event exporter (schema and lanes)."""

import json

import pytest

from repro.dag import build_dag
from repro.obs import Tracer, chrome_trace, write_chrome_trace
from repro.obs.chrome_trace import sim_to_events, to_chrome_json, tracer_to_events
from repro.schemes import greedy
from repro.sim import simulate_bounded, simulate_unbounded


@pytest.fixture
def capture():
    g = build_dag(greedy(4, 2), "TT")
    tr = Tracer()
    t0 = 0.0
    for t in g.tasks:
        tr.record(t, submit=t0, start=t0 + 1e-4, finish=t0 + 2e-4, worker=0)
        t0 += 2e-4
    return g, tr


@pytest.fixture
def bounded():
    return simulate_bounded(build_dag(greedy(4, 2), "TT"), 3)


def complete_events(events):
    return [e for e in events if e["ph"] == "X"]


class TestEventSchema:
    def test_tracer_events_have_required_keys(self, capture):
        g, tr = capture
        xs = complete_events(tracer_to_events(tr))
        assert len(xs) == len(g.tasks)
        for e in xs:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            assert e["ph"] == "X"
            assert e["dur"] >= 0 and e["ts"] >= 0
            assert e["pid"] == 1
            assert e["args"]["kernel"] in {"GEQRT", "UNMQR", "TSQRT",
                                           "TSMQR", "TTQRT", "TTMQR"}

    def test_sim_events_have_required_keys(self, bounded):
        xs = complete_events(sim_to_events(bounded))
        assert len(xs) == len(bounded.graph.tasks)
        for e in xs:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            assert e["pid"] == 2
            assert 0 <= e["tid"] < 3

    def test_metadata_names_lanes(self, bounded):
        ms = [e for e in sim_to_events(bounded) if e["ph"] == "M"]
        names = {e["name"] for e in ms}
        assert "process_name" in names and "thread_name" in names

    def test_time_scale(self, bounded):
        base = complete_events(sim_to_events(bounded, time_scale=1.0))
        scaled = complete_events(sim_to_events(bounded, time_scale=1e6))
        for a, b in zip(base, scaled):
            assert b["ts"] == pytest.approx(a["ts"] * 1e6)
            assert b["dur"] == pytest.approx(a["dur"] * 1e6)

    def test_unbounded_sim_goes_to_one_lane(self):
        res = simulate_unbounded(build_dag(greedy(4, 2), "TT"))
        xs = complete_events(sim_to_events(res))
        assert {e["tid"] for e in xs} == {0}


class TestEdgeCases:
    """Empty sources and zero-duration spans must stay Perfetto-visible."""

    def test_empty_tracer_emits_placeholder(self):
        doc = chrome_trace(tracer=Tracer())
        xs = complete_events(doc["traceEvents"])
        assert len(xs) == 1
        assert xs[0]["args"]["placeholder"] is True
        assert xs[0]["dur"] > 0

    def test_empty_sim_emits_placeholder(self):
        from repro.dag.tasks import TaskGraph

        res = simulate_unbounded(TaskGraph(1, 1, "empty"))
        assert len(res.graph.tasks) == 0
        xs = complete_events(sim_to_events(res))
        assert len(xs) == 1
        assert xs[0]["args"]["placeholder"] is True

    def test_zero_duration_span_is_clamped(self):
        from repro.obs.chrome_trace import MIN_EVENT_DUR_US

        g = build_dag(greedy(3, 1), "TT")
        tr = Tracer()
        for t in g.tasks:
            tr.record(t, submit=0.0, start=1.0, finish=1.0, worker=0)
        xs = complete_events(tracer_to_events(tr))
        assert len(xs) == len(g.tasks)
        for e in xs:
            assert e["dur"] == MIN_EVENT_DUR_US
            assert e["args"]["zero_duration"] is True

    def test_zero_weight_sim_task_is_clamped(self):
        g = build_dag(greedy(3, 1), "TT")
        rescaled = g.rescale({k: 0.0 for k in
                              {t.kernel for t in g.tasks}})
        res = simulate_unbounded(rescaled)
        for e in complete_events(sim_to_events(res)):
            assert e["dur"] > 0
            assert e["args"]["zero_duration"] is True

    def test_positive_durations_not_tagged(self, bounded):
        for e in complete_events(sim_to_events(bounded)):
            assert "zero_duration" not in e["args"]

    def test_normal_trace_has_no_placeholder(self, capture):
        _, tr = capture
        for e in complete_events(tracer_to_events(tr)):
            assert "placeholder" not in e["args"]


class TestTopLevel:
    def test_overlay_has_both_process_groups(self, capture, bounded):
        _, tr = capture
        doc = chrome_trace(tracer=tr, sim=bounded)
        pids = {e["pid"] for e in complete_events(doc["traceEvents"])}
        assert pids == {1, 2}
        assert doc["displayTimeUnit"] == "ms"

    def test_requires_a_source(self):
        with pytest.raises(ValueError):
            chrome_trace()

    def test_json_is_valid(self, capture):
        _, tr = capture
        doc = json.loads(to_chrome_json(tracer=tr))
        assert isinstance(doc["traceEvents"], list)

    def test_write_roundtrip(self, tmp_path, capture, bounded):
        _, tr = capture
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(path, tracer=tr, sim=bounded,
                                  sim_time_scale=1e6) == path
        doc = json.load(open(path))
        assert len(complete_events(doc["traceEvents"])) > 0
