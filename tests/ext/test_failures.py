"""Tests for the fail-stop worker-failure model."""

import pytest

from repro.dag import build_dag
from repro.ext.failures import Failure, simulate_with_failures
from repro.schemes import greedy
from repro.sim import simulate_bounded


@pytest.fixture
def graph():
    return build_dag(greedy(8, 3), "TT")


class TestNoFailures:
    def test_matches_bounded(self, graph):
        a = simulate_with_failures(graph, 4, [])
        b = simulate_bounded(graph, 4)
        assert a.makespan == b.makespan


class TestWithFailures:
    def test_all_tasks_complete(self, graph):
        res = simulate_with_failures(graph, 4, [Failure(0, 10.0)])
        assert (res.finish > 0).all()
        assert (res.worker >= 0).all()

    def test_dead_worker_gets_no_tasks_after_death(self, graph):
        t_fail = 10.0
        res = simulate_with_failures(graph, 4, [Failure(2, t_fail)])
        for t in graph.tasks:
            if res.worker[t.tid] == 2:
                assert res.finish[t.tid] <= t_fail + 1e-9

    def test_failure_increases_makespan(self, graph):
        base = simulate_with_failures(graph, 3, []).makespan
        failed = simulate_with_failures(graph, 3, [Failure(0, 5.0)]).makespan
        assert failed >= base

    def test_early_failure_equals_fewer_workers(self, graph):
        """A worker dead from t=0 is just a smaller machine."""
        a = simulate_with_failures(graph, 4, [Failure(3, 0.0)]).makespan
        b = simulate_with_failures(graph, 3, []).makespan
        assert a == b

    def test_dependencies_hold_under_failures(self, graph):
        res = simulate_with_failures(
            graph, 4, [Failure(0, 8.0), Failure(1, 30.0)])
        for t in graph.tasks:
            for d in t.deps:
                assert res.start[t.tid] >= res.finish[d] - 1e-9

    def test_lost_task_reexecuted(self, graph):
        """Kill a worker mid-task; the task must still complete
        (on another worker or later)."""
        # worker 0 gets a GEQRT at t=0 finishing at 4; kill it at t=2
        res = simulate_with_failures(graph, 2, [Failure(0, 2.0)])
        assert (res.worker == 1).all()  # only worker 1 survives t>=2
        assert res.makespan >= graph.total_weight()  # all redone serially

    def test_multiple_failures(self, graph):
        res = simulate_with_failures(
            graph, 5, [Failure(0, 3.0), Failure(1, 7.0), Failure(2, 7.0)])
        assert (res.finish > 0).all()

    def test_validation(self, graph):
        with pytest.raises(ValueError, match="references worker"):
            simulate_with_failures(graph, 2, [Failure(5, 1.0)])
        with pytest.raises(ValueError, match="survive"):
            simulate_with_failures(graph, 2, [Failure(0, 1.0),
                                              Failure(1, 2.0)])
        with pytest.raises(ValueError, match="processor"):
            simulate_with_failures(graph, 0, [])

    def test_duplicate_failure_earliest_wins(self, graph):
        a = simulate_with_failures(graph, 3, [Failure(0, 5.0),
                                              Failure(0, 50.0)])
        b = simulate_with_failures(graph, 3, [Failure(0, 5.0)])
        assert a.makespan == b.makespan
