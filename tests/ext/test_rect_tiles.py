"""Tests for the rectangular-tile cost model."""

import pytest

from repro.dag import build_dag
from repro.ext.rect_tiles import RectTileModel, rect_weights
from repro.kernels.costs import KERNEL_WEIGHTS, QR_KERNELS, Kernel
from repro.schemes import greedy
from repro.sim import simulate_unbounded


class TestWeights:
    def test_rho_one_is_table1(self):
        # the model stretches QR tile geometry; the weight-only
        # Cholesky/LU kernels are outside its scope
        w = rect_weights(1.0)
        assert w == {k: float(KERNEL_WEIGHTS[k]) for k in QR_KERNELS}

    def test_non_qr_kernel_rejected(self):
        with pytest.raises(ValueError, match="QR kernels only"):
            RectTileModel(2.0).weight(Kernel.POTRF)

    def test_tt_kernels_unaffected(self):
        for rho in (1.0, 2.0, 4.0):
            w = rect_weights(rho)
            assert w[Kernel.TTQRT] == 2.0
            assert w[Kernel.TTMQR] == 6.0

    def test_panel_kernels_scale_linearly(self):
        w2, w4 = rect_weights(2.0), rect_weights(4.0)
        assert w2[Kernel.GEQRT] == 10.0 and w4[Kernel.GEQRT] == 22.0
        assert w2[Kernel.TSQRT] == 12.0 and w4[Kernel.TSQRT] == 24.0

    def test_rejects_flat_tiles(self):
        with pytest.raises(ValueError):
            RectTileModel(0.5)

    def test_grid(self):
        m = RectTileModel(2.0)
        assert m.grid(160, 80, nb=20) == (4, 4)
        assert m.rows_for(8) == 4


class TestTradeoff:
    def test_total_weight_preserved_in_flops(self):
        """Halving the row count with rho=2 tiles keeps the total work
        within the model's rounding: the invariant is in flops, not in
        tile counts."""
        nb = 1
        p_sq, q = 16, 4
        base = simulate_unbounded(build_dag(greedy(p_sq, q), "TT")).graph
        total_sq = base.total_weight()
        model = RectTileModel(2.0)
        g = build_dag(greedy(model.rows_for(p_sq), q), "TT")
        total_rect = g.rescale(model.weights()).total_weight()
        # 2mn^2-ish totals agree within the boundary-tile slack
        assert abs(total_rect - total_sq) / total_sq < 0.35

    def test_taller_tiles_shorten_column_chains(self):
        """rho > 1 halves the tile rows: fewer eliminations per column
        (locality), at the price of heavier panel kernels — for a flat
        tree on a tall grid the trade-off pays off."""
        from repro.schemes import flat_tree
        q = 2
        cp_sq = simulate_unbounded(build_dag(flat_tree(32, q), "TT")).makespan
        model = RectTileModel(2.0)
        g = build_dag(flat_tree(16, q), "TT").rescale(model.weights())
        cp_rect = simulate_unbounded(g).makespan
        assert cp_rect < cp_sq

    def test_greedy_gains_less_from_tall_tiles(self):
        """Greedy's log-depth columns already amortize the panel, so
        rectangular tiles help it less than they help FlatTree —
        quantifying the paper's 'more locality, same parallelism'."""
        from repro.schemes import flat_tree
        q = 2
        model = RectTileModel(2.0)

        def ratio(scheme_fn, p_sq):
            cp_sq = simulate_unbounded(
                build_dag(scheme_fn(p_sq, q), "TT")).makespan
            g = build_dag(scheme_fn(p_sq // 2, q), "TT").rescale(model.weights())
            return simulate_unbounded(g).makespan / cp_sq

        assert ratio(greedy, 32) > ratio(flat_tree, 32)
