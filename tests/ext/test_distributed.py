"""Tests for the distributed-memory model extension."""

import pytest

from repro.dag import build_dag
from repro.ext import (DistributedLayout, communication_volume,
                       distributed_graph, simulate_distributed)
from repro.schemes import binary_tree, flat_tree, greedy
from repro.sim import simulate_bounded, simulate_unbounded


class TestLayout:
    def test_block_owner(self):
        lay = DistributedLayout(p=8, nodes=2, kind="block")
        assert [lay.owner(i) for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_block_uneven(self):
        lay = DistributedLayout(p=7, nodes=3, kind="block")
        assert [lay.owner(i) for i in range(7)] == [0, 0, 0, 1, 1, 1, 2]

    def test_cyclic_owner(self):
        lay = DistributedLayout(p=6, nodes=3, kind="cyclic")
        assert [lay.owner(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_crosses(self):
        lay = DistributedLayout(p=8, nodes=2)
        assert not lay.crosses(0, 3)
        assert lay.crosses(3, 4)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            DistributedLayout(p=4, nodes=0)
        with pytest.raises(ValueError):
            DistributedLayout(p=4, nodes=2, kind="diagonal")
        with pytest.raises(ValueError):
            DistributedLayout(p=4, nodes=2).owner(4)

    def test_single_node_never_crosses(self):
        lay = DistributedLayout(p=16, nodes=1)
        assert not any(lay.crosses(i, j) for i in range(16) for j in range(16))


class TestVolume:
    def test_single_node_zero(self):
        vol = communication_volume(greedy(8, 3),
                                   DistributedLayout(p=8, nodes=1))
        assert vol == {"messages": 0, "tiles": 0, "cross_eliminations": 0}

    def test_flat_tree_block_locality(self):
        """Block layout: FlatTree crosses nodes only for rows owned by
        other nodes than the panel's — but BinaryTree's high merge
        levels always cross."""
        lay = DistributedLayout(p=16, nodes=4, kind="block")
        ft = communication_volume(flat_tree(16, 1), lay)
        bt = communication_volume(binary_tree(16, 1), lay)
        # flat tree: pivot row 0; rows 4..15 cross -> 12 crossings
        assert ft["cross_eliminations"] == 12
        # binary tree: within-node reductions are free, merges cross
        assert bt["cross_eliminations"] == 3
        assert bt["tiles"] < ft["tiles"]

    def test_binary_tree_prefers_block_layout(self):
        """Binary reductions localize their low levels under a block
        layout; a cyclic layout forces every level to cross nodes."""
        el = binary_tree(16, 4)
        block = communication_volume(el, DistributedLayout(16, 4, "block"))
        cyclic = communication_volume(el, DistributedLayout(16, 4, "cyclic"))
        assert block["tiles"] < cyclic["tiles"]

    def test_message_accounting(self):
        # single cross-node elimination in col 0 of a q=3 matrix:
        # 1 panel message + 2 update messages
        from repro.schemes.elimination import Elimination, EliminationList
        el = EliminationList(2, 1, [Elimination(1, 0, 0)])
        lay = DistributedLayout(p=2, nodes=2)
        vol = communication_volume(
            EliminationList(2, 1, [Elimination(1, 0, 0)]), lay)
        assert vol["messages"] == 1


class TestDistributedGraph:
    def test_zero_cost_identity(self):
        g = build_dag(greedy(8, 3), "TT")
        g2 = distributed_graph(g, DistributedLayout(8, 2), 0.0)
        assert simulate_unbounded(g2).makespan == simulate_unbounded(g).makespan

    def test_cost_increases_cp(self):
        g = build_dag(binary_tree(16, 4), "TT")
        lay = DistributedLayout(16, 4)
        cps = [simulate_unbounded(distributed_graph(g, lay, c)).makespan
               for c in (0.0, 2.0, 8.0)]
        assert cps == sorted(cps) and cps[0] < cps[-1]

    def test_local_tasks_unchanged(self):
        g = build_dag(flat_tree(8, 2), "TT")
        g2 = distributed_graph(g, DistributedLayout(8, 2), 5.0)
        for t, t2 in zip(g.tasks, g2.tasks):
            if t.piv is None or t.piv // 4 == t.row // 4:
                assert t2.weight == t.weight
            else:
                assert t2.weight == t.weight + 5.0

    def test_flat_tree_pays_for_its_global_pivot(self):
        """Under a block layout, FlatTree's single pivot row touches
        every other node's rows *serially*, so its disadvantage GROWS
        with communication cost, while BinaryTree and the hierarchical
        PlasmaTree (BS = rows-per-node) localize all but log2(nodes)
        merges — the trade-off motivating the trees of [8, 11]."""
        lay = DistributedLayout(16, 4)
        base_ft = simulate_unbounded(build_dag(flat_tree(16, 1), "TT")).makespan
        base_bt = simulate_unbounded(build_dag(binary_tree(16, 1), "TT")).makespan
        assert base_bt < base_ft  # without communication, binary wins
        cost = 50.0
        d_ft = simulate_unbounded(distributed_graph(
            build_dag(flat_tree(16, 1), "TT"), lay, cost)).makespan
        d_bt = simulate_unbounded(distributed_graph(
            build_dag(binary_tree(16, 1), "TT"), lay, cost)).makespan
        assert d_ft / d_bt > base_ft / base_bt  # gap widens with comm
        from repro.schemes import plasma_tree
        d_pt = simulate_unbounded(distributed_graph(
            build_dag(plasma_tree(16, 1, 4), "TT"), lay, cost)).makespan
        assert d_pt < d_ft
        assert abs(d_pt - d_bt) <= cost  # within one cross-node merge
        vol_pt = communication_volume(plasma_tree(16, 1, 4), lay)
        vol_bt = communication_volume(binary_tree(16, 1), lay)
        vol_ft = communication_volume(flat_tree(16, 1), lay)
        assert vol_pt["tiles"] <= vol_bt["tiles"] < vol_ft["tiles"]


class TestSimulateDistributed:
    def test_single_node_matches_bounded(self):
        g = build_dag(greedy(8, 3), "TT")
        lay = DistributedLayout(p=8, nodes=1)
        a = simulate_distributed(g, lay, workers_per_node=4)
        b = simulate_bounded(g, 4)
        assert a.makespan == b.makespan

    def test_owner_computes_placement(self):
        g = build_dag(greedy(8, 2), "TT")
        lay = DistributedLayout(p=8, nodes=2)
        res = simulate_distributed(g, lay, workers_per_node=2)
        for t in g.tasks:
            node = int(res.worker[t.tid]) // 2
            assert node == lay.owner(t.row)

    def test_dependencies_respected(self):
        g = build_dag(greedy(12, 4), "TT")
        lay = DistributedLayout(p=12, nodes=3)
        res = simulate_distributed(g, lay, workers_per_node=2,
                                   tile_comm_cost=3.0)
        for t in g.tasks:
            for d in t.deps:
                assert res.start[t.tid] >= res.finish[d] - 1e-9

    def test_comm_cost_slows_cross_node_trees(self):
        g = build_dag(binary_tree(16, 2), "TT")
        lay = DistributedLayout(p=16, nodes=4)
        fast = simulate_distributed(g, lay, 4, tile_comm_cost=0.0).makespan
        slow = simulate_distributed(g, lay, 4, tile_comm_cost=10.0).makespan
        assert slow > fast

    def test_no_worker_double_booking(self):
        g = build_dag(greedy(10, 3), "TT")
        lay = DistributedLayout(p=10, nodes=2)
        res = simulate_distributed(g, lay, workers_per_node=2)
        spans = {}
        for t in g.tasks:
            spans.setdefault(int(res.worker[t.tid]), []).append(
                (res.start[t.tid], res.finish[t.tid]))
        for w, lst in spans.items():
            lst.sort()
            for (s1, f1), (s2, f2) in zip(lst, lst[1:]):
                assert s2 >= f1 - 1e-12

    def test_more_nodes_can_hurt_with_comm(self):
        """Splitting a fixed worker budget across nodes adds
        communication: 1x8 never loses to 4x2 once transfers cost."""
        g = build_dag(greedy(16, 4), "TT")
        one = simulate_distributed(g, DistributedLayout(16, 1), 8,
                                   tile_comm_cost=8.0).makespan
        four = simulate_distributed(g, DistributedLayout(16, 4), 2,
                                    tile_comm_cost=8.0).makespan
        assert one <= four

    def test_validation(self):
        g = build_dag(greedy(4, 2), "TT")
        with pytest.raises(ValueError):
            simulate_distributed(g, DistributedLayout(4, 2), 0)
