"""Tests for the communication-surcharge model (paper §5 extension)."""


from repro.dag import build_dag
from repro.ext import CommunicationModel, comm_adjusted_weights
from repro.ext.comm import TILES_TOUCHED
from repro.kernels.costs import KERNEL_WEIGHTS, Kernel
from repro.schemes import flat_tree, greedy
from repro.sim import simulate_unbounded


class TestModel:
    def test_alpha_zero_recovers_table1(self):
        assert comm_adjusted_weights(0.0) == {k: float(v) for k, v in
                                              KERNEL_WEIGHTS.items()}

    def test_surcharge_proportional(self):
        m = CommunicationModel(alpha=2.0)
        for k in Kernel:
            assert m.weight(k) == KERNEL_WEIGHTS[k] + 2.0 * TILES_TOUCHED[k]

    def test_ts_moves_fewer_tiles_per_elimination(self):
        """One TS elimination touches fewer tiles than the TT pair
        doing the same job (the locality argument of Section 2.1)."""
        ts = TILES_TOUCHED[Kernel.TSQRT] + TILES_TOUCHED[Kernel.TSMQR]
        tt = (TILES_TOUCHED[Kernel.GEQRT] + TILES_TOUCHED[Kernel.UNMQR]
              + TILES_TOUCHED[Kernel.TTQRT] + TILES_TOUCHED[Kernel.TTMQR])
        assert ts < tt


class TestCommAblation:
    def _cp(self, scheme_factory, family, alpha, p=16, q=4):
        g = build_dag(scheme_factory(p, q), family)
        g = g.rescale(comm_adjusted_weights(alpha))
        return simulate_unbounded(g).makespan

    def test_alpha_zero_matches_base(self):
        base = simulate_unbounded(build_dag(greedy(16, 4), "TT")).makespan
        assert self._cp(greedy, "TT", 0.0) == base

    def test_cp_increases_with_alpha(self):
        cps = [self._cp(greedy, "TT", a) for a in (0.0, 1.0, 4.0)]
        assert cps == sorted(cps)
        assert cps[0] < cps[-1]

    def test_tt_advantage_shrinks_with_alpha(self):
        """Communication charges erode the TT critical-path advantage
        over TS (flat tree on both families)."""
        gaps = []
        for alpha in (0.0, 2.0, 8.0):
            tt = self._cp(flat_tree, "TT", alpha)
            ts = self._cp(flat_tree, "TS", alpha)
            gaps.append(ts / tt)
        assert gaps[0] > gaps[-1]
