"""Tests for heterogeneous-speed scheduling (paper §5 extension)."""

import numpy as np
import pytest

from repro.dag import build_dag
from repro.ext import simulate_heterogeneous
from repro.schemes import greedy
from repro.sim import simulate_bounded


@pytest.fixture
def graph():
    return build_dag(greedy(10, 4), "TT")


class TestHeterogeneous:
    def test_uniform_speeds_match_bounded(self, graph):
        het = simulate_heterogeneous(graph, [1.0] * 4)
        hom = simulate_bounded(graph, 4)
        assert het.makespan == hom.makespan

    def test_faster_machine_not_slower(self, graph):
        slow = simulate_heterogeneous(graph, [1.0, 1.0])
        fast = simulate_heterogeneous(graph, [2.0, 2.0])
        assert fast.makespan <= slow.makespan
        assert np.isclose(fast.makespan, slow.makespan / 2)

    def test_one_slow_core_degrades_gracefully(self, graph):
        base = simulate_heterogeneous(graph, [1.0] * 4).makespan
        degraded = simulate_heterogeneous(graph, [1.0, 1.0, 1.0, 0.25]).makespan
        assert degraded >= base
        # adding even a slow core beats dropping it entirely? not
        # guaranteed by list scheduling, but it must beat 1 core:
        assert degraded <= simulate_heterogeneous(graph, [1.0]).makespan

    def test_single_worker_weighted_total(self, graph):
        ms = simulate_heterogeneous(graph, [0.5]).makespan
        assert np.isclose(ms, graph.total_weight() / 0.5)

    def test_dependencies_respected(self, graph):
        res = simulate_heterogeneous(graph, [1.0, 0.3, 2.0])
        for t in graph.tasks:
            for d in t.deps:
                assert res.start[t.tid] >= res.finish[d] - 1e-9

    def test_task_durations_scaled(self, graph):
        speeds = [1.0, 4.0]
        res = simulate_heterogeneous(graph, speeds)
        for t in graph.tasks:
            w = speeds[int(res.worker[t.tid])]
            assert np.isclose(res.finish[t.tid] - res.start[t.tid], t.weight / w)

    def test_bad_inputs(self, graph):
        with pytest.raises(ValueError):
            simulate_heterogeneous(graph, [])
        with pytest.raises(ValueError):
            simulate_heterogeneous(graph, [1.0, 0.0])
        with pytest.raises(ValueError):
            simulate_heterogeneous(graph, [1.0], priority="magic")

    def test_greedy_tolerates_slowdown_better_than_flat(self):
        """The tree with shorter cp has more slack to absorb a slow core
        on tall grids — the §5 robustness question, quantified."""
        from repro.schemes import flat_tree
        speeds = [1.0, 1.0, 1.0, 0.2]
        g_graph = build_dag(greedy(24, 4), "TT")
        f_graph = build_dag(flat_tree(24, 4), "TT")
        g = simulate_heterogeneous(g_graph, speeds).makespan
        f = simulate_heterogeneous(f_graph, speeds).makespan
        assert g <= f
