"""Tests for the workload matrix generators."""

import numpy as np
import pytest

from repro import tiled_qr
from repro.matrices import (banded_lower, graded, kahan, near_rank_deficient,
                            random_dense, vandermonde)


class TestGenerators:
    def test_random_dense_shapes_and_dtype(self):
        a = random_dense(10, 4)
        assert a.shape == (10, 4) and a.dtype == np.float64
        c = random_dense(10, 4, np.complex128)
        assert c.dtype == np.complex128 and np.abs(c.imag).max() > 0

    def test_random_dense_reproducible(self):
        assert np.array_equal(random_dense(6, 3, seed=5),
                              random_dense(6, 3, seed=5))

    def test_graded_condition(self):
        a = graded(64, 16, condition=1e10)
        sv = np.linalg.svd(a, compute_uv=False)
        assert 1e8 < sv[0] / sv[-1] < 1e13

    def test_graded_needs_two_columns(self):
        with pytest.raises(ValueError):
            graded(8, 1)

    def test_vandermonde(self):
        a = vandermonde(20, 5)
        assert np.allclose(a[:, 0], 1.0)
        assert np.abs(a).max() <= 1.0 + 1e-12

    def test_kahan_upper_triangular(self):
        a = kahan(8)
        assert np.allclose(a, np.triu(a))
        assert a[0, 0] == 1.0

    def test_near_rank_deficient_spectrum(self):
        a = near_rank_deficient(30, 10, rank=6, gap=1e-9)
        sv = np.linalg.svd(a, compute_uv=False)
        assert (sv[:6] > 0.5).all()
        assert (sv[6:] < 1e-8).all()

    def test_near_rank_deficient_validation(self):
        with pytest.raises(ValueError):
            near_rank_deficient(10, 5, rank=6)

    def test_banded_lower_pattern(self):
        nb = 3
        a = banded_lower(5, 4, band=1, nb=nb)
        for i in range(5):
            for k in range(4):
                blk = a[i * nb:(i + 1) * nb, k * nb:(k + 1) * nb]
                if i - k > 1:
                    assert np.all(blk == 0), (i, k)
                else:
                    assert np.any(blk != 0), (i, k)


class TestGeneratorsFactorize:
    """Every generator's output goes through the full pipeline."""

    @pytest.mark.parametrize("make", [
        lambda: random_dense(33, 17, seed=2),
        lambda: graded(33, 17, condition=1e10, seed=2),
        lambda: vandermonde(33, 17),
        lambda: near_rank_deficient(33, 17, rank=12),
        lambda: banded_lower(8, 4, band=2, nb=4),
    ])
    def test_factorization_stable(self, make):
        a = make()
        f = tiled_qr(a, nb=8, scheme="greedy")
        assert f.residual(a) < 1e-12
        assert f.orthogonality() < 1e-11
