# Convenience targets for the repro project.

PYTHON ?= python3

.PHONY: install test bench examples tables figures clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# regenerate only the exact (machine-independent) tables
tables:
	$(PYTHON) -m pytest benchmarks/bench_table2_coarse_steps.py \
	    benchmarks/bench_table3_tiled_steps.py \
	    benchmarks/bench_table4_greedy_asap.py \
	    benchmarks/bench_table5_theoretical_cp.py \
	    benchmarks/bench_formulas.py --benchmark-only

# regenerate the machine-dependent figures/tables
figures:
	$(PYTHON) -m pytest benchmarks/bench_table1_kernel_costs.py \
	    benchmarks/bench_fig1_performance_tt.py \
	    benchmarks/bench_fig2_3_overhead_tt.py \
	    benchmarks/bench_fig4_5_kernel_perf.py \
	    benchmarks/bench_fig6_performance_all.py \
	    benchmarks/bench_fig7_8_overhead_all.py \
	    benchmarks/bench_tables6_9_experimental.py --benchmark-only

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
