"""Shared configuration for the benchmark drivers.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md §4).  Drivers print the same rows/series the paper
reports; ``pytest benchmarks/ --benchmark-only`` also collects
pytest-benchmark timings for the numeric kernels and full
factorizations.

Scale note: the paper's machine ran p = 40, nb = 200 (m = 8000) on 48
cores.  The *model-level* experiments (Tables 2-5, critical paths,
predicted performance) reproduce at full fidelity because they do not
touch floating point.  The *wall-clock* experiments use smaller tiles
by default so the whole suite stays in CI budgets; pass
``--paper-scale`` for the full p = 40 grid with measured kernels.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale", action="store_true", default=False,
        help="run wall-clock benchmarks at the paper's full p=40 scale",
    )


@pytest.fixture(scope="session")
def paper_scale(request):
    return request.config.getoption("--paper-scale")
