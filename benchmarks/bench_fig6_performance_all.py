"""Figure 6 — predicted and experimental performance, ALL kernels.

Extends Figure 1 with the TS-kernel algorithms: FlatTree(TS) and
PlasmaTree(TS, best BS) alongside the four TT series.  The paper's
point: in double precision the faster TS kernels win once parallelism
saturates (square-ish shapes), while Greedy still wins for tall
matrices and in complex arithmetic.

Run: ``pytest benchmarks/bench_fig6_performance_all.py --benchmark-only``
Artifacts: ``benchmarks/results/fig6_performance_all_*.txt``
"""

import pytest

from benchmarks.common import (best_experimental_bs, emit, roofline,
                               simulated_gflops)
from repro.analysis import predicted_gflops
from repro.bench import ascii_chart, best_plasma_bs, format_series

P = 40
QS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40)
NB = 64


@pytest.mark.parametrize("complex_arith", [False, True],
                         ids=["double", "double-complex"])
def test_fig6(benchmark, complex_arith):
    def compute():
        model = roofline(NB, complex_arith)
        pred, expe = {}, {}
        series = [
            ("flat-tree(TS)", "flat-tree", "TS", False),
            ("plasma(TS,best)", "plasma-tree", "TS", True),
            ("flat-tree(TT)", "flat-tree", "TT", False),
            ("plasma(TT,best)", "plasma-tree", "TT", True),
            ("fibonacci", "fibonacci", "TT", False),
            ("greedy", "greedy", "TT", False),
        ]
        for label, *_ in series:
            pred[label], expe[label] = [], []
        for q in QS:
            for label, scheme, family, tuned in series:
                if tuned:
                    bs_cp, _ = best_plasma_bs(P, q, family=family)
                    pred[label].append(predicted_gflops(
                        scheme, P, q, model, family=family, bs=bs_cp))
                    _, gf = best_experimental_bs(P, q, NB, complex_arith,
                                                 family=family)
                    expe[label].append(gf)
                else:
                    pred[label].append(predicted_gflops(
                        scheme, P, q, model, family=family))
                    expe[label].append(simulated_gflops(
                        scheme, P, q, NB, complex_arith, family=family))
        return pred, expe

    pred, expe = benchmark.pedantic(compute, rounds=1, iterations=1)
    arith = "double complex" if complex_arith else "double"
    txt = [
        format_series("q", list(QS), pred,
                      title=f"Figure 6 predicted ({arith}), GFLOP/s"),
        ascii_chart(list(QS), pred, title="(predicted)", y_label="GF/s"),
        format_series("q", list(QS), expe,
                      title=f"Figure 6 experimental/simulated ({arith}), "
                            "GFLOP/s"),
        ascii_chart(list(QS), expe, title="(simulated experimental)",
                    y_label="GF/s"),
    ]
    emit(f"fig6_performance_all_{'complex' if complex_arith else 'double'}",
         "\n\n".join(txt))
