"""Table 5 — theoretical critical paths, p = 40, q = 1..40.

Regenerates the paper's Greedy vs PlasmaTree(TT, best BS) vs Fibonacci
comparison, including the exhaustive BS search, overhead and gain
columns.

Run: ``pytest benchmarks/bench_table5_theoretical_cp.py --benchmark-only``
Artifact: ``benchmarks/results/table5_theoretical_cp.txt``
"""

from benchmarks.common import emit
from repro.bench import best_plasma_bs, format_table
from repro.core import critical_path


def test_table5(benchmark):
    p = 40

    def compute():
        rows = []
        for q in range(1, p + 1):
            g = critical_path("greedy", p, q)
            bs, pt = best_plasma_bs(p, q)
            f = critical_path("fibonacci", p, q)
            rows.append([p, q, int(g), int(pt), bs,
                         round(pt / g, 4), round(1 - g / pt, 4),
                         int(f), round(f / g, 4), round(1 - g / f, 4)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("table5_theoretical_cp",
         format_table(
             ["p", "q", "Greedy", "PlasmaTree(TT)", "BS", "Overhead",
              "Gain", "Fibonacci", "Overhead", "Gain"],
             rows,
             title="Table 5: Greedy vs PlasmaTree (TT) and Fibonacci "
                   "(theoretical critical paths)"))
