"""Table 4 — neither Greedy nor Asap is optimal at tile granularity.

Regenerates (a) the Greedy / Asap / Grasap(1) zero-out tables for
15 x 3 — showing Asap wins on 15 x 2, Greedy wins on 15 x 3 and
Grasap(1) beats both — and (b) the Greedy-vs-Asap critical-path grid
for p, q in {16, 32, 64, 128}.

Run: ``pytest benchmarks/bench_table4_greedy_asap.py --benchmark-only``
Artifacts: ``benchmarks/results/table4{a,b}*.txt``
"""

from benchmarks.common import emit
from repro.bench.report import format_step_matrix, format_table
from repro.core import critical_path, zero_out_steps
from repro.schemes import asap, grasap


def test_table4a(benchmark):
    def compute():
        return (zero_out_steps("greedy", 15, 3), asap(15, 3), grasap(15, 3, 1))

    g_tb, a_res, gr_res = benchmark(compute)
    blocks = [
        format_step_matrix(g_tb.astype(int),
                           title=f"(a) Greedy: finishes {int(g_tb.max())}"),
        format_step_matrix(a_res.zero_table.astype(int),
                           title=f"(b) Asap: finishes {a_res.makespan:g}"),
        format_step_matrix(gr_res.zero_table.astype(int),
                           title=f"(c) Grasap(1): finishes {gr_res.makespan:g}"),
    ]
    cmp2 = (f"15 x 2 column check: Greedy {critical_path('greedy', 15, 2):g} "
            f"vs Asap {asap(15, 2).makespan:g} (Asap wins)")
    emit("table4a_greedy_asap_grasap",
         "Table 4a: Greedy, Asap and Grasap(1) on 15 x 3 (TT kernels)\n\n"
         + "\n\n".join(blocks) + "\n\n" + cmp2)


def test_table4b(benchmark):
    sizes = (16, 32, 64, 128)

    def compute():
        rows = []
        for p in sizes:
            greedy_cps, asap_cps = [], []
            for q in sizes:
                if q > p:
                    greedy_cps.append("")
                    asap_cps.append("")
                else:
                    greedy_cps.append(int(critical_path("greedy", p, q)))
                    asap_cps.append(int(asap(p, q).makespan))
            rows.append((p, greedy_cps, asap_cps))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table_rows = []
    for p, g, a in rows:
        table_rows.append([p, "Greedy"] + g)
        table_rows.append(["", "Asap"] + a)
    emit("table4b_greedy_vs_asap",
         format_table(["p", "Algorithm"] + [f"q={q}" for q in sizes],
                      table_rows,
                      title="Table 4b: Greedy generally outperforms Asap "
                            "(critical paths)"))
