"""Figures 2-3 — overhead w.r.t. Greedy, TT kernels (Greedy = 1).

Regenerates the theoretical critical-path overhead curves and the
simulated-experimental time overheads of FlatTree(TT),
PlasmaTree(TT, best BS) and Fibonacci relative to Greedy, in both
arithmetics; Figure 3 is the zoomed view, so the same series serve both
figures.

Run: ``pytest benchmarks/bench_fig2_3_overhead_tt.py --benchmark-only``
Artifact: ``benchmarks/results/fig2_3_overhead_tt.txt``
"""

from benchmarks.common import best_experimental_bs, emit, simulated_gflops
from repro.bench import best_plasma_bs, format_series
from repro.core import critical_path

P = 40
QS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40)
NB = 64


def test_fig2_3(benchmark):
    def compute():
        theo = {"flat-tree": [], "plasma-best": [], "fibonacci": []}
        exp_d = {"flat-tree": [], "plasma-best": [], "fibonacci": []}
        exp_z = {"flat-tree": [], "plasma-best": [], "fibonacci": []}
        for q in QS:
            g_cp = critical_path("greedy", P, q)
            theo["flat-tree"].append(critical_path("flat-tree", P, q) / g_cp)
            bs, pt_cp = best_plasma_bs(P, q)
            theo["plasma-best"].append(pt_cp / g_cp)
            theo["fibonacci"].append(critical_path("fibonacci", P, q) / g_cp)
            for out, cx in ((exp_d, False), (exp_z, True)):
                g_gf = simulated_gflops("greedy", P, q, NB, cx)
                out["flat-tree"].append(
                    g_gf / simulated_gflops("flat-tree", P, q, NB, cx))
                _, pt_gf = best_experimental_bs(P, q, NB, cx)
                out["plasma-best"].append(g_gf / pt_gf)
                out["fibonacci"].append(
                    g_gf / simulated_gflops("fibonacci", P, q, NB, cx))
        return theo, exp_d, exp_z

    theo, exp_d, exp_z = benchmark.pedantic(compute, rounds=1, iterations=1)
    txt = [
        format_series("q", list(QS), theo,
                      title="Fig 2a/3a: overhead in critical-path length "
                            "w.r.t. Greedy (Greedy = 1)"),
        format_series("q", list(QS), exp_d,
                      title="Fig 2c/3c: overhead in time, double "
                            "(simulated experimental)"),
        format_series("q", list(QS), exp_z,
                      title="Fig 2b/3b: overhead in time, double complex "
                            "(simulated experimental)"),
    ]
    emit("fig2_3_overhead_tt", "\n\n".join(txt))
