"""Table 1 — kernel cost model.

Regenerates the paper's Table 1 two ways:

1. the *model* weights (4/6/6/12/2/6 in units of nb^3/3 flops), and
2. *measured* per-kernel times at a few tile sizes, normalized so
   GEQRT = 4, showing the Table-1 ratios on real kernels;

plus per-kernel pytest-benchmark timings at nb = 128.

Run: ``pytest benchmarks/bench_table1_kernel_costs.py --benchmark-only``
Artifacts: ``benchmarks/results/table1*.txt``
"""

import numpy as np
import pytest

from benchmarks.common import emit
from repro.bench import format_table, time_kernels
from repro.kernels.backend import get_backend
from repro.kernels.costs import KERNEL_WEIGHTS, Kernel


def test_table1_measured(benchmark):
    def compute():
        rows = []
        for nb in (64, 128):
            rates = time_kernels(nb, ib=32, backend="lapack",
                                 strategy="warm", min_time=0.05)
            base = rates.seconds[Kernel.GEQRT] / 4.0
            rows.append([nb] + [round(rates.seconds[k] / base, 2)
                                for k in Kernel])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    headers = ["nb"] + [k.value for k in Kernel]
    model_row = ["model"] + [KERNEL_WEIGHTS[k] for k in Kernel]
    emit("table1_kernel_costs",
         format_table(headers, [model_row] + rows,
                      title="Table 1: kernel weights (model) vs measured "
                            "times normalized to GEQRT=4 (LAPACK backend)"))


@pytest.mark.parametrize("kernel", list(Kernel), ids=lambda k: k.value)
def test_kernel_speed(benchmark, kernel):
    """pytest-benchmark timing of each LAPACK-backed kernel at nb=128."""
    nb, ib = 128, 32
    bk = get_backend("lapack")
    rng = np.random.default_rng(0)
    sq = rng.standard_normal((nb, nb))
    tri = np.triu(rng.standard_normal((nb, nb)))
    tri2 = np.triu(rng.standard_normal((nb, nb)))
    c1 = rng.standard_normal((nb, nb))
    c2 = rng.standard_normal((nb, nb))
    vge = sq.copy()
    tge = bk.geqrt(vge, ib)
    rt, vts = tri.copy(), sq.copy()
    tts = bk.tsqrt(rt, vts, ib)
    rt2, vtt = tri.copy(), tri2.copy()
    ttt = bk.ttqrt(rt2, vtt, ib)
    ops = {
        Kernel.GEQRT: lambda: bk.geqrt(sq.copy(), ib),
        Kernel.UNMQR: lambda: bk.unmqr(vge, tge, c1),
        Kernel.TSQRT: lambda: bk.tsqrt(tri.copy(), sq.copy(), ib),
        Kernel.TSMQR: lambda: bk.tsmqr(vts, tts, c1, c2),
        Kernel.TTQRT: lambda: bk.ttqrt(tri.copy(), tri2.copy(), ib),
        Kernel.TTMQR: lambda: bk.ttmqr(vtt, ttt, c1, c2),
    }
    benchmark(ops[kernel])
