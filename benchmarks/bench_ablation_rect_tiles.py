"""Ablation — rectangular tiles (paper §5).

Fixes the matrix size (square-tile grid 64 x 8) and sweeps the tile
aspect ratio ``rho = mb/nb``: taller tiles mean fewer tile rows
(locality, shorter reduction trees) but heavier panel kernels.  The
sweet spot depends on the tree: FlatTree, whose critical path is
dominated by the ``6p`` panel chain, benefits most; Greedy's log-depth
columns flatten the curve — evidence for the paper's conjecture that
rectangular tiles offer "more locality and still the same potential
for parallelism".

Run: ``pytest benchmarks/bench_ablation_rect_tiles.py --benchmark-only``
Artifact: ``benchmarks/results/ablation_rect_tiles.txt``
"""

from benchmarks.common import emit
from repro.bench import format_table
from repro.dag import build_dag
from repro.ext.rect_tiles import RectTileModel
from repro.schemes import get_scheme
from repro.sim import simulate_unbounded

P_SQ, Q = 64, 8
RHOS = (1.0, 2.0, 4.0, 8.0)
SCHEMES = ("greedy", "fibonacci", "flat-tree", "binary-tree")


def test_rect_tile_ablation(benchmark):
    def compute():
        rows = []
        for scheme in SCHEMES:
            row = [scheme]
            for rho in RHOS:
                model = RectTileModel(rho)
                p = model.rows_for(P_SQ)
                g = build_dag(get_scheme(scheme, p, Q), "TT")
                cp = simulate_unbounded(g.rescale(model.weights())).makespan
                row.append(round(cp, 1))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("ablation_rect_tiles",
         format_table(["scheme"] + [f"rho={r:g} (p={RectTileModel(r).rows_for(P_SQ)})"
                                    for r in RHOS],
                      rows,
                      title=f"Ablation: tile aspect ratio at fixed matrix "
                            f"size ({P_SQ} square-tile rows, q={Q}; "
                            "critical path in nb^3/3 units)"))
