"""Ablation — fail-stop resilience of the elimination trees (paper §5).

Injects worker failures at fractions of the fault-free makespan and
reports the relative makespan inflation per tree, under re-execution
recovery.  Complements ``bench_ablation_hetero``: a failure is the
limit case of a slow core.

Run: ``pytest benchmarks/bench_ablation_failures.py --benchmark-only``
Artifact: ``benchmarks/results/ablation_failures.txt``
"""

from benchmarks.common import emit
from repro.bench import format_table
from repro.dag import build_dag
from repro.ext.failures import Failure, simulate_with_failures
from repro.schemes import get_scheme

P, Q, WORKERS = 32, 8, 8
SCHEMES = ("greedy", "fibonacci", "flat-tree", "binary-tree")
WHEN = (0.25, 0.5, 0.75)  # failure instants as fractions of base makespan


def test_failure_ablation(benchmark):
    def compute():
        rows = []
        for scheme in SCHEMES:
            g = build_dag(get_scheme(scheme, P, Q), "TT")
            base = simulate_with_failures(g, WORKERS, []).makespan
            row = [scheme, round(base, 1)]
            for frac in WHEN:
                ms = simulate_with_failures(
                    g, WORKERS, [Failure(0, frac * base)]).makespan
                row.append(round(ms / base, 4))
            # two simultaneous failures at mid-run
            ms2 = simulate_with_failures(
                g, WORKERS, [Failure(0, 0.5 * base),
                             Failure(1, 0.5 * base)]).makespan
            row.append(round(ms2 / base, 4))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("ablation_failures",
         format_table(["scheme", "fault-free makespan"]
                      + [f"1 fail @{f:g}" for f in WHEN] + ["2 fails @0.5"],
                      rows,
                      title=f"Ablation: fail-stop worker losses out of "
                            f"{WORKERS} (p={P}, q={Q}; makespan inflation)"))
