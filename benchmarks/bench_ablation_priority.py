"""Ablation — dispatch-priority policies in the bounded scheduler.

PLASMA's dynamic scheduler leaves the dispatch order of ready tasks
unspecified; this sweep quantifies how much it matters relative to the
elimination tree.  Expected outcome (and the paper's implicit premise):
the tree dominates — policies differ by a few percent, trees by up to
several x.

Run: ``pytest benchmarks/bench_ablation_priority.py --benchmark-only``
Artifact: ``benchmarks/results/ablation_priority.txt``
"""

from benchmarks.common import emit
from repro.bench import format_table
from repro.dag import build_dag
from repro.schemes import get_scheme
from repro.sim import PRIORITIES, simulate_bounded

P, Q, WORKERS = 32, 8, 8
SCHEMES = ("greedy", "fibonacci", "flat-tree", "binary-tree")


def test_priority_ablation(benchmark):
    def compute():
        rows = []
        for scheme in SCHEMES:
            g = build_dag(get_scheme(scheme, P, Q), "TT")
            spans = {name: simulate_bounded(g, WORKERS, priority=name).makespan
                     for name in sorted(PRIORITIES)}
            best = min(spans.values())
            rows.append([scheme] + [round(spans[n] / best, 4)
                                    for n in sorted(PRIORITIES)]
                        + [round(best, 1)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("ablation_priority",
         format_table(["scheme"] + sorted(PRIORITIES) + ["best makespan"],
                      rows,
                      title=f"Ablation: dispatch-priority policies on "
                            f"{WORKERS} workers, p={P}, q={Q} "
                            "(makespan relative to per-scheme best)"))
