"""Table 2 — coarse-grain time-step tables for a 15 x 6 matrix.

Regenerates the Sameh-Kuck, Fibonacci and Greedy step tables of the
coarse-grain model (Section 3.1).

Run: ``pytest benchmarks/bench_table2_coarse_steps.py --benchmark-only``
Artifact: ``benchmarks/results/table2_coarse_steps.txt``
"""

from benchmarks.common import emit
from repro.bench.report import format_step_matrix
from repro.coarse import coarse_fibonacci, coarse_greedy, coarse_sameh_kuck


def test_table2(benchmark):
    def compute():
        return [fn(15, 6) for fn in
                (coarse_sameh_kuck, coarse_fibonacci, coarse_greedy)]

    scheds = benchmark(compute)
    blocks = []
    for sched in scheds:
        blocks.append(format_step_matrix(
            sched.steps,
            title=f"(coarse) {sched.name}: critical path "
                  f"{sched.critical_path}"))
    emit("table2_coarse_steps",
         "Table 2: time-steps for coarse-grain algorithms (15 x 6)\n\n"
         + "\n\n".join(blocks))
