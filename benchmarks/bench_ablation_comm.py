"""Ablation — communication-aware cost model (paper §5).

Sweeps the per-tile-transfer surcharge ``alpha`` of
:mod:`repro.ext.comm` and reports the critical paths of the TT and TS
variants of FlatTree plus Greedy.  As ``alpha`` grows, the TS family's
smaller data movement progressively offsets the TT family's shorter
flop-only critical path — locating the crossover the paper's Section
2.1 locality discussion predicts.

Run: ``pytest benchmarks/bench_ablation_comm.py --benchmark-only``
Artifact: ``benchmarks/results/ablation_comm.txt``
"""

from benchmarks.common import emit
from repro.bench import format_table
from repro.dag import build_dag
from repro.ext import comm_adjusted_weights
from repro.schemes import flat_tree, greedy
from repro.sim import simulate_unbounded

P, Q = 24, 8
ALPHAS = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0)


def test_comm_ablation(benchmark):
    def compute():
        graphs = {
            "flat-tree(TT)": build_dag(flat_tree(P, Q), "TT"),
            "flat-tree(TS)": build_dag(flat_tree(P, Q), "TS"),
            "greedy(TT)": build_dag(greedy(P, Q), "TT"),
            "greedy(TS)": build_dag(greedy(P, Q), "TS"),
        }
        rows = []
        for alpha in ALPHAS:
            w = comm_adjusted_weights(alpha)
            row = [alpha]
            for g in graphs.values():
                row.append(simulate_unbounded(g.rescale(w)).makespan)
            rows.append(row)
        return list(graphs), rows

    names, rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("ablation_comm",
         format_table(["alpha"] + names, rows,
                      title=f"Ablation: critical path under communication "
                            f"surcharge alpha (p={P}, q={Q})"))
