"""Table 3 — tiled time-step tables (TT kernels) for a 15 x 6 grid.

Regenerates the zero-out-time tables of FlatTree (= Sameh-Kuck),
Fibonacci, Greedy, BinaryTree and PlasmaTree(BS=5) under the Table-1
weights with unbounded processors — the central validation of the
kernel-level dependency analysis.

Run: ``pytest benchmarks/bench_table3_tiled_steps.py --benchmark-only``
Artifact: ``benchmarks/results/table3_tiled_steps.txt``
"""

from benchmarks.common import emit
from repro.bench.report import format_step_matrix
from repro.core import critical_path, zero_out_steps


def test_table3(benchmark):
    cases = [
        ("flat-tree (Sameh-Kuck)", "flat-tree", {}),
        ("fibonacci", "fibonacci", {}),
        ("greedy", "greedy", {}),
        ("binary-tree", "binary-tree", {}),
        ("plasma-tree BS=5", "plasma-tree", {"bs": 5}),
    ]

    def compute():
        return [(label, zero_out_steps(s, 15, 6, **kw),
                 critical_path(s, 15, 6, **kw)) for label, s, kw in cases]

    results = benchmark(compute)
    blocks = [format_step_matrix(tb.astype(int),
                                 title=f"(tiled TT) {label}: critical path {cp:g}")
              for label, tb, cp in results]
    emit("table3_tiled_steps",
         "Table 3: time-steps for tiled algorithms (15 x 6, TT kernels)\n\n"
         + "\n\n".join(blocks))
