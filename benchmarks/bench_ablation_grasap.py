"""Ablation — Grasap(k): how many trailing Asap columns help?

The paper shows Grasap(1) beats Greedy on 15 x 3 and asks for "the
best value of k as a function of p and q".  This sweep answers the
question empirically on a grid of shapes.

Run: ``pytest benchmarks/bench_ablation_grasap.py --benchmark-only``
Artifact: ``benchmarks/results/ablation_grasap.txt``
"""

from benchmarks.common import emit
from repro.bench import format_table
from repro.schemes import grasap

SHAPES = [(15, 2), (15, 3), (15, 5), (20, 4), (24, 6), (32, 8)]


def test_grasap_sweep(benchmark):
    maxk = min(6, max(q for _, q in SHAPES))

    def compute():
        rows = []
        for p, q in SHAPES:
            cps = [grasap(p, q, k).makespan for k in range(q + 1)]
            best_k = min(range(q + 1), key=lambda k: cps[k])
            shown = [int(cps[k]) if k <= q else "" for k in range(maxk + 1)]
            rows.append([p, q] + shown + [best_k, int(cps[best_k])])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("ablation_grasap",
         format_table(["p", "q"] + [f"k={k}" for k in range(maxk + 1)]
                      + ["best k", "best cp"],
                      rows,
                      title="Ablation: Grasap(k) critical paths "
                            "(k=0 is Greedy, k=q is Asap; columns beyond "
                            "k=6 elided)"))
