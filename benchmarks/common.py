"""Helpers shared by the benchmark drivers."""

from __future__ import annotations

import functools
import os

import numpy as np

from repro.analysis import PerformanceModel
from repro.bench import time_kernels
from repro.bench.kernel_timing import measure_gamma_seq
from repro.dag import build_dag
from repro.kernels.costs import UNIT_FLOPS, total_weight
from repro.obs.metrics import MetricsRegistry
from repro.schemes import get_scheme
from repro.sim import simulate_bounded

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: the paper's machine: 48 cores
PAPER_P = 48

#: experimental grid of the paper's Tables 6-9
PAPER_QS = (1, 2, 4, 5, 10, 20, 40)

#: shared observability sink for the whole benchmark run: kernel-timing
#: call histograms, simulation counters, emitted-artifact counts.  One
#: registry per process so `metrics_summary()` reports across drivers.
BENCH_METRICS = MetricsRegistry()


def metrics_summary() -> str:
    """Render everything the harness recorded into :data:`BENCH_METRICS`."""
    return BENCH_METRICS.render(title="benchmark metrics")


@functools.lru_cache(maxsize=None)
def machine(nb: int, complex_arith: bool):
    """Measured kernel rates on *this* machine at tile size ``nb``.

    Returns ``(weights_seconds, gamma_seq_gflops)`` — the per-kernel
    durations used as simulator weights, and the aggregate sequential
    rate feeding the Roofline predictor.  This is the documented
    substitution for the paper's 48-core wall-clock runs (DESIGN.md §2).
    """
    dtype = np.complex128 if complex_arith else np.float64
    rates = time_kernels(nb, ib=32, dtype=dtype, backend="lapack",
                         strategy="warm", min_time=0.05,
                         registry=BENCH_METRICS)
    return rates.weights_seconds(), measure_gamma_seq(rates)


@functools.lru_cache(maxsize=None)
def simulated_gflops(scheme: str, p: int, q: int, nb: int,
                     complex_arith: bool, family: str = "TT",
                     processors: int = PAPER_P, bs: int | None = None) -> float:
    """GFLOP/s of a bounded-P discrete-event run with measured kernels."""
    weights, _ = machine(nb, complex_arith)
    params = {} if bs is None else {"bs": bs}
    g = build_dag(get_scheme(scheme, p, q, **params), family)
    g = g.rescale(weights)
    seconds = simulate_bounded(g, processors).makespan
    BENCH_METRICS.counter("bench.simulations").inc()
    BENCH_METRICS.histogram(
        "bench.sim_makespan_seconds").observe(seconds)
    flops = total_weight(p, q) * UNIT_FLOPS(nb) * (4 if complex_arith else 1)
    return flops / seconds / 1e9


def best_experimental_bs(p: int, q: int, nb: int, complex_arith: bool,
                         family: str = "TT") -> tuple[int, float]:
    """Exhaustive-ish BS search on simulated experimental performance.

    Full search for small q; a pruned candidate set for larger q (the
    optimum is insensitive there, cf. the paper's BS tables).
    """
    if q <= 10:
        candidates = range(1, p + 1)
    else:
        candidates = sorted({1, 2, 3, 5, 8, 10, 17, 19, 20, 27, 28, 32, p})
    best_bs, best = 0, -1.0
    for bs in candidates:
        g = simulated_gflops(scheme="plasma-tree", p=p, q=q, nb=nb,
                             complex_arith=complex_arith, family=family, bs=bs)
        if g > best:
            best_bs, best = bs, g
    return best_bs, best


def roofline(nb: int, complex_arith: bool,
             processors: int = PAPER_P) -> PerformanceModel:
    """Roofline predictor fed with this machine's measured gamma_seq."""
    _, gamma = machine(nb, complex_arith)
    return PerformanceModel(gamma_seq=gamma, processors=processors)


def emit(name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under results/.

    ``pytest --benchmark-only`` captures stdout, so the canonical copy
    of every regenerated artifact lives in ``benchmarks/results/``;
    EXPERIMENTS.md links there.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    BENCH_METRICS.counter("bench.artifacts_emitted").inc()
    print(f"\n[{name}] -> {path}\n{text}")
