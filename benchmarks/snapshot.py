"""Bench-snapshot harness: the repo's performance trajectory.

Runs a pinned grid of (scheme, p, q, P) cases and emits a versioned
``BENCH_<n>.json`` at the repository root — wall times (plan build
cold/warm, simulation, analysis), plan-cache stats, simulator
throughput, and the :mod:`repro.obs.analyze` summary of each schedule.
A comparator diffs two snapshots:

* **structural** metrics (makespan, critical-path length, task count,
  utilization) are deterministic — any drift is a behavior change and
  fails the comparison;
* **timing** metrics are flagged when they regress by more than
  ``--tolerance`` (default 15%); they fail the run only under
  ``--strict-timing``, since absolute times are machine-dependent
  (CI runs them advisory).

Usage::

    python benchmarks/snapshot.py                 # full grid, next BENCH_<n>.json
    python benchmarks/snapshot.py --quick         # CI-sized subset
    python benchmarks/snapshot.py --quick --check --baseline BENCH_1.json \
        --out bench-ci.json                       # the CI smoke step

The quick grid is a strict subset of the full grid, so a quick run
always compares cleanly against a committed full snapshot.
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# make `python benchmarks/snapshot.py` work without PYTHONPATH=src
_src = str(REPO_ROOT / "src")
if _src not in sys.path:
    sys.path.insert(0, _src)

import numpy as np  # noqa: E402

from repro.api import plan  # noqa: E402
from repro.obs.analyze import analyze_sim  # noqa: E402
from repro.planner import clear_plan_cache, plan_cache_stats  # noqa: E402

SCHEMA = "repro-bench-snapshot"
SCHEMA_VERSION = 1

#: the CI-sized subset — GREEDY at the acceptance grid plus two
#: contrasting trees on the same grid
QUICK_CASES = [
    ("greedy", 30, 10, 16),
    ("fibonacci", 30, 10, 16),
    ("flat-tree", 30, 10, 16),
]

#: the full pinned grid (superset of QUICK_CASES)
FULL_CASES = QUICK_CASES + [
    ("plasma(bs=8)", 30, 10, 16),
    ("binary-tree", 32, 8, 16),
    ("greedy", 40, 5, 16),
    ("greedy", 60, 20, 32),
]

#: timing metrics, lower is better (seconds)
TIMING_LOWER = ("plan_cold_s", "plan_warm_s", "sim_s", "analyze_s")
#: timing metrics, higher is better
TIMING_HIGHER = ("sim_tasks_per_s",)

#: numeric factorization cases: (scheme, family, m, n, nb, ib).
#: ib = nb/4 makes the widest reference/batched contrast while staying
#: a realistic inner blocking (see docs/performance.md).
FACTOR_QUICK_CASES = [
    ("greedy", "TT", 256, 256, 32, 8),
]

#: full factor grid — includes the ISSUE 5 acceptance case
#: (1024 x 1024, nb=64)
FACTOR_FULL_CASES = FACTOR_QUICK_CASES + [
    ("greedy", "TT", 1024, 1024, 64, 16),
]

#: factor timing metrics, lower / higher is better.
#: ``tracing_overhead`` is the traced/untraced process-mode ratio —
#: already drift-immune, and bounded absolutely by the CI guard.
FACTOR_TIMING_LOWER = ("reference_s", "batched_s", "process_s",
                       "process_traced_s", "process_off_s",
                       "tracing_overhead")
FACTOR_TIMING_HIGHER = ("speedup", "reference_gflops", "batched_gflops",
                        "process_speedup", "process_gflops",
                        "batch_speedup")


def case_key(scheme: str, p: int, q: int, processors: int) -> str:
    return f"{scheme}|p={p}|q={q}|P={processors}"


def run_case(scheme: str, p: int, q: int, processors: int) -> dict:
    """Benchmark one (scheme, p, q, P) cell; cold plan, warm plan, sim."""
    clear_plan_cache()
    stats0 = plan_cache_stats()

    t0 = time.perf_counter()
    pl = plan(p, q, scheme)
    plan_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    plan(p, q, scheme)
    plan_warm = time.perf_counter() - t0

    from repro.sim.simulate import simulate_bounded

    t0 = time.perf_counter()
    res = simulate_bounded(pl, processors)
    sim_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    report = analyze_sim(res)
    analyze_s = time.perf_counter() - t0

    stats1 = plan_cache_stats()
    cp = report.critical_path
    # "efficiency" keeps its historical closed-form definition
    # (max(cp, work/P) / makespan) so snapshots stay comparable across
    # the ALAP-bound addition; the tightened bound lands in new keys
    # that the comparator's key-intersection skips for old baselines.
    closed_form = max(report.bounds["critical_path"], report.bounds["work"])
    return {
        "structural": {
            "tasks": report.tasks,
            "total_work": report.total_busy,
            "makespan": report.makespan,
            "critical_path_length": cp.length,
            "critical_path_tasks": len(cp),
            "unbounded_cp": report.bounds["critical_path"],
            "utilization": round(report.utilization, 12),
            "efficiency": round(closed_form / report.makespan, 12),
            "alap_bound": round(report.bounds["alap"], 12),
            "efficiency_alap": round(report.bounds["efficiency"], 12),
            "max_slack": report.slack.max,
            "kernel_shares": {k: round(v, 12)
                              for k, v in report.kernel_shares().items()},
        },
        "timing": {
            "plan_cold_s": plan_cold,
            "plan_warm_s": plan_warm,
            "sim_s": sim_s,
            "analyze_s": analyze_s,
            "sim_tasks_per_s": report.tasks / sim_s if sim_s else 0.0,
        },
        "plan_cache": {
            "warm_hits": stats1["hits"] - stats0["hits"],
            "builds": stats1["builds"] - stats0["builds"],
        },
    }


def qr_flops(m: int, n: int) -> float:
    """Householder QR flop count ``2mn^2 - 2n^3/3`` (real arithmetic)."""
    return 2.0 * m * n * n - 2.0 * n ** 3 / 3.0


def factor_case_key(scheme: str, family: str, m: int, n: int,
                    nb: int, ib: int) -> str:
    return f"{scheme}|{family}|m={m}|n={n}|nb={nb}|ib={ib}"


def run_factor_case(scheme: str, family: str, m: int, n: int,
                    nb: int, ib: int, rounds: int = 3) -> dict:
    """Time the reference task executor against the batched backend.

    Wall clock on shared machines drifts minute to minute, so each
    round times the backends back to back and the recorded speedups
    are *medians of per-round ratios* — drift hits both sides of a
    ratio equally.  Absolute seconds are still recorded (advisory, like
    every other timing metric here).

    The process backend is timed through one persistent
    :class:`~repro.runtime.ProcessPool` sized to the host
    (``os.cpu_count()`` workers) — the intended reuse pattern; worker
    start-up is paid once, outside the timed rounds.
    ``process_speedup`` is the per-round ``task_s / process_s`` ratio,
    directly comparable to ``speedup`` (``task_s / batched_s``).

    Each round also times a process run with a fresh
    :class:`~repro.obs.DistributedTracer` attached, and a few extra
    untraced/traced pairs run back to back after the grid rounds.
    ``tracing_overhead`` — the number the CI tracing-overhead guard
    holds to its budget — is **best-of-N traced over best-of-N
    untraced** across those pairs: contention on a shared runner only
    ever inflates a time, so the minima estimate the uncontended cost
    of each side and the ratio is robust to load spikes that would
    make a 3-round median a coin flip.

    Micro-batched dispatch (``--batch``) context rides along: the
    process rounds run the default ``batch="auto"``, each round also
    times ``batch="off"`` (``process_off_s``; ``batch_speedup`` is the
    per-round off/auto ratio), and one instrumented run records the
    realized group-size histogram summary under the case's ``batch``
    key — context the comparator never diffs, like
    ``process_workers``.  Baselines predating these keys compare
    cleanly: the key intersection simply skips them.
    """
    import os

    from repro.api import factor
    from repro.obs import DistributedTracer
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime import ProcessPool
    from repro.runtime.groups import resolve_batch

    rng = np.random.default_rng(20110814)  # the paper's SC 2011 vintage
    a = rng.standard_normal((m, n))
    pl = plan(m // nb, n // nb, scheme, family)
    groups = pl.level_groups()
    sizes = [len(g) for g in groups]
    workers = os.cpu_count() or 1

    with ProcessPool(workers=workers) as pool:
        def time_mode(mode: str, **kw) -> float:
            t0 = time.perf_counter()
            factor(a, nb=nb, ib=ib, scheme=pl, mode=mode, **kw)
            return time.perf_counter() - t0

        time_mode("batched")  # warm all paths (plan, pools, LAPACK
        time_mode("task")     # wrappers, pool workers)
        time_mode("process", pool=pool)
        time_mode("process", pool=pool, tracer=DistributedTracer())
        # one instrumented run records the realized micro-batch shape
        reg = MetricsRegistry()
        time_mode("process", pool=pool, metrics=reg)
        gh = reg.histogram("procpool.batch.group_size")
        batch_ctx = {
            "mode": "auto",
            "resolved_size": resolve_batch(
                "auto", nb, float(np.mean([t.weight
                                           for t in pl.graph.tasks])),
                workers=workers),
            "groups": gh.count,
            "descriptors": int(
                reg.counter("procpool.batch.descriptors").value),
            "group_size": ({"mean": round(gh.mean, 3),
                            "min": gh.min, "max": gh.max}
                           if gh.count else
                           {"mean": 0.0, "min": 0, "max": 0}),
        }
        ref_s, bat_s, pro_s, off_s = [], [], [], []
        trc_s, ratios, pro_ratios, off_ratios = [], [], [], []
        for _ in range(rounds):
            tb = time_mode("batched")
            tr = time_mode("task")
            tp = time_mode("process", pool=pool)
            to = time_mode("process", pool=pool, batch="off")
            tt = time_mode("process", pool=pool,
                           tracer=DistributedTracer())
            bat_s.append(tb)
            ref_s.append(tr)
            pro_s.append(tp)
            off_s.append(to)
            trc_s.append(tt)
            ratios.append(tr / tb)
            pro_ratios.append(tr / tp)
            off_ratios.append(to / tp)
        guard_plain, guard_traced = list(pro_s), list(trc_s)
        for _ in range(4):
            guard_plain.append(time_mode("process", pool=pool))
            guard_traced.append(time_mode("process", pool=pool,
                                          tracer=DistributedTracer()))
    ref = float(np.median(ref_s))
    bat = float(np.median(bat_s))
    pro = float(np.median(pro_s))
    trc = float(np.median(trc_s))
    flops = qr_flops(m, n)
    return {
        "structural": {
            "tasks": len(pl.graph.tasks),
            "levels": groups[-1].level + 1 if groups else 0,
            "groups": len(groups),
            "max_batch": max(sizes) if sizes else 0,
            "mean_batch": round(float(np.mean(sizes)), 12) if sizes else 0.0,
        },
        "timing": {
            "reference_s": ref,
            "batched_s": bat,
            "process_s": pro,
            "process_traced_s": trc,
            "process_off_s": float(np.median(off_s)),
            "speedup": float(np.median(ratios)),
            "process_speedup": float(np.median(pro_ratios)),
            "batch_speedup": float(np.median(off_ratios)),
            "tracing_overhead": float(min(guard_traced)
                                      / min(guard_plain)),
            "reference_gflops": flops / 1e9 / ref if ref else 0.0,
            "batched_gflops": flops / 1e9 / bat if bat else 0.0,
            "process_gflops": flops / 1e9 / pro if pro else 0.0,
            "process_workers": workers,  # context only, never compared
        },
        "batch": batch_ctx,  # context only, never compared
    }


def host_metadata() -> dict:
    """Host context a performance number is meaningless without.

    CPU count, platform/machine, Python/NumPy/SciPy versions, and the
    BLAS implementation NumPy is linked against (the single biggest
    machine-to-machine variable for these benchmarks).  Every probe is
    guarded — a missing SciPy or an older NumPy without
    ``show_config(mode=...)`` degrades to ``None``, never an error.
    """
    import os

    meta = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": None,
        "blas": None,
    }
    try:
        import scipy

        meta["scipy"] = scipy.__version__
    except ImportError:
        pass
    try:
        cfg = np.show_config(mode="dicts")
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        meta["blas"] = blas.get("name") or None
    except Exception:
        pass  # older NumPy without show_config(mode="dicts")
    return meta


def take_snapshot(quick: bool) -> dict:
    cases = QUICK_CASES if quick else FULL_CASES
    factor_cases = FACTOR_QUICK_CASES if quick else FACTOR_FULL_CASES
    t0 = time.perf_counter()
    out_cases = {}
    for scheme, p, q, processors in cases:
        key = case_key(scheme, p, q, processors)
        print(f"  running {key} ...", flush=True)
        out_cases[key] = run_case(scheme, p, q, processors)
    out_factor = {}
    for scheme, family, m, n, nb, ib in factor_cases:
        key = factor_case_key(scheme, family, m, n, nb, ib)
        print(f"  factoring {key} ...", flush=True)
        out_factor[key] = run_factor_case(scheme, family, m, n, nb, ib)
    return {
        "schema": SCHEMA,
        "version": SCHEMA_VERSION,
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "host": host_metadata(),
        "cases": out_cases,
        "factor": out_factor,
        "plan_cache": plan_cache_stats(),
        "wall_seconds": time.perf_counter() - t0,
    }


# ----------------------------------------------------------------------
# comparator
# ----------------------------------------------------------------------

def _flat(d: dict, prefix: str = "") -> dict:
    out = {}
    for k, v in d.items():
        key = f"{prefix}.{k}" if prefix else k
        if isinstance(v, dict):
            out.update(_flat(v, key))
        else:
            out[key] = v
    return out


def compare_snapshots(base: dict, new: dict,
                      tolerance: float = 0.15) -> tuple[list[dict], int]:
    """Diff two snapshots; returns ``(issues, compared_case_count)``.

    Issues are dicts with ``kind`` ``"structural"`` (exact-match
    metrics drifted) or ``"timing"`` (a timing metric regressed past
    ``tolerance``).  Only cases present in both snapshots are
    compared.
    """
    issues: list[dict] = []
    compared = 0
    # (section, timing-lower metrics, timing-higher metrics); a baseline
    # predating a section simply contributes no common keys for it
    sections = (("cases", TIMING_LOWER, TIMING_HIGHER),
                ("factor", FACTOR_TIMING_LOWER, FACTOR_TIMING_HIGHER))
    for section, lower, higher in sections:
        common = sorted(set(base.get(section, {}))
                        & set(new.get(section, {})))
        compared += len(common)
        for key in common:
            b, n = base[section][key], new[section][key]
            bs = _flat(b.get("structural", {}))
            ns = _flat(n.get("structural", {}))
            for metric in sorted(set(bs) & set(ns)):
                bv, nv = bs[metric], ns[metric]
                if not np.isclose(bv, nv, rtol=1e-9, atol=1e-12):
                    issues.append({"case": key, "metric": metric,
                                   "kind": "structural",
                                   "base": bv, "new": nv})
            bt, nt = b.get("timing", {}), n.get("timing", {})
            for metric in lower:
                if metric in bt and metric in nt and bt[metric] > 0:
                    ratio = nt[metric] / bt[metric]
                    if ratio > 1.0 + tolerance:
                        issues.append({"case": key, "metric": metric,
                                       "kind": "timing", "base": bt[metric],
                                       "new": nt[metric], "ratio": ratio})
            for metric in higher:
                if metric in bt and metric in nt and bt[metric] > 0:
                    ratio = nt[metric] / bt[metric]
                    if ratio < 1.0 - tolerance:
                        issues.append({"case": key, "metric": metric,
                                       "kind": "timing", "base": bt[metric],
                                       "new": nt[metric], "ratio": ratio})
    return issues, compared


def render_issues(issues: list[dict]) -> str:
    lines = []
    for i in issues:
        if i["kind"] == "structural":
            lines.append(f"STRUCTURAL  {i['case']}  {i['metric']}: "
                         f"{i['base']} -> {i['new']}")
        else:
            lines.append(f"TIMING      {i['case']}  {i['metric']}: "
                         f"{i['base']:.6g} -> {i['new']:.6g} "
                         f"({i['ratio']:.2f}x)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# snapshot numbering and CLI
# ----------------------------------------------------------------------

def existing_snapshots(root: Path = REPO_ROOT) -> list[tuple[int, Path]]:
    """``BENCH_<n>.json`` files at the repo root, ascending by n."""
    found = []
    for path in root.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if m:
            found.append((int(m.group(1)), path))
    return sorted(found)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description="pinned bench-snapshot grid + regression comparator")
    ap.add_argument("--quick", action="store_true",
                    help="run the CI-sized subset of the grid")
    ap.add_argument("--out", metavar="PATH",
                    help="write the snapshot here (default: the next "
                         "BENCH_<n>.json at the repo root)")
    ap.add_argument("--check", action="store_true",
                    help="compare-only: never allocate a new BENCH_<n> "
                         "number (still writes --out when given)")
    ap.add_argument("--baseline", metavar="PATH",
                    help="snapshot to compare against (default: the "
                         "highest committed BENCH_<n>.json)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="relative timing-regression threshold "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--strict-timing", action="store_true",
                    help="timing regressions fail the run (structural "
                         "drift always does)")
    args = ap.parse_args(argv)

    prior = existing_snapshots()
    label = "quick" if args.quick else "full"
    print(f"bench snapshot ({label} grid)")
    snap = take_snapshot(quick=args.quick)

    out_path = None
    if args.out:
        out_path = Path(args.out)
    elif not args.check:
        n = prior[-1][0] + 1 if prior else 1
        out_path = REPO_ROOT / f"BENCH_{n}.json"
    if out_path is not None:
        out_path.write_text(json.dumps(snap, indent=1, sort_keys=True) + "\n")
        print(f"snapshot written to {out_path}")

    base_path = Path(args.baseline) if args.baseline else (
        prior[-1][1] if prior else None)
    if base_path is None or (out_path is not None
                             and base_path.resolve() == out_path.resolve()):
        print("no baseline snapshot to compare against")
        return 0
    base = json.loads(base_path.read_text())
    issues, compared = compare_snapshots(base, snap,
                                         tolerance=args.tolerance)
    structural = [i for i in issues if i["kind"] == "structural"]
    timing = [i for i in issues if i["kind"] == "timing"]
    print(f"compared {compared} cases against {base_path.name}: "
          f"{len(structural)} structural mismatches, "
          f"{len(timing)} timing regressions "
          f"(> {args.tolerance * 100:.0f}%)")
    if issues:
        print(render_issues(issues))
    if structural:
        return 1
    if timing and args.strict_timing:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
