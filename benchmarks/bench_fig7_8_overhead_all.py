"""Figures 7-8 — overhead w.r.t. Greedy, all kernels (Greedy = 1).

The all-kernel companion of Figures 2-3: critical-path and
simulated-experimental time overheads of the TS-based algorithms
(FlatTree(TS), PlasmaTree(TS)) together with the TT series, relative
to Greedy.  Figure 8 is the zoomed view of the same data.

Run: ``pytest benchmarks/bench_fig7_8_overhead_all.py --benchmark-only``
Artifact: ``benchmarks/results/fig7_8_overhead_all.txt``
"""

from benchmarks.common import best_experimental_bs, emit, simulated_gflops
from repro.bench import best_plasma_bs, format_series
from repro.core import critical_path

P = 40
QS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40)
NB = 64
SERIES = [
    ("flat-tree(TS)", "flat-tree", "TS", False),
    ("plasma(TS,best)", "plasma-tree", "TS", True),
    ("flat-tree(TT)", "flat-tree", "TT", False),
    ("plasma(TT,best)", "plasma-tree", "TT", True),
    ("fibonacci", "fibonacci", "TT", False),
]


def test_fig7_8(benchmark):
    def compute():
        theo = {label: [] for label, *_ in SERIES}
        exp_d = {label: [] for label, *_ in SERIES}
        for q in QS:
            g_cp = critical_path("greedy", P, q)
            g_gf = simulated_gflops("greedy", P, q, NB, False)
            for label, scheme, family, tuned in SERIES:
                if tuned:
                    _, cp = best_plasma_bs(P, q, family=family)
                    _, gf = best_experimental_bs(P, q, NB, False,
                                                 family=family)
                else:
                    cp = critical_path(scheme, P, q, family=family)
                    gf = simulated_gflops(scheme, P, q, NB, False,
                                          family=family)
                theo[label].append(cp / g_cp)
                exp_d[label].append(g_gf / gf)
        return theo, exp_d

    theo, exp_d = benchmark.pedantic(compute, rounds=1, iterations=1)
    txt = [
        format_series("q", list(QS), theo,
                      title="Fig 7a/8a: overhead in cp length w.r.t. Greedy "
                            "(all kernels, Greedy = 1)"),
        format_series("q", list(QS), exp_d,
                      title="Fig 7c/8c: overhead in time, double "
                            "(simulated experimental)"),
    ]
    emit("fig7_8_overhead_all", "\n\n".join(txt))
