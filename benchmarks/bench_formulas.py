"""Sanity programs for the closed-form results (Theorem 1, Props 1-2).

The paper's authors wrote checker programs for their formulas
(footnotes in Section 3); this driver is the equivalent: it sweeps
grids comparing each closed form (or bound) against the discrete-event
simulator and reports the worst deviation.

Run: ``pytest benchmarks/bench_formulas.py --benchmark-only``
Artifact: ``benchmarks/results/formula_checks.txt``
"""

from benchmarks.common import emit
from repro.analysis import (binary_tree_cp_exact, fibonacci_cp_bound,
                            flat_tree_cp, greedy_cp_bound, ts_flat_tree_cp)
from repro.bench import format_table
from repro.core import critical_path


def test_formula_sweep(benchmark):
    def compute():
        rows = []
        shapes = [(p, q) for p in (1, 2, 3, 5, 8, 13, 21, 34)
                  for q in (1, 2, 3, 5, 8, 13, 21, 34) if q <= p]
        exact_ft = exact_ts = 0
        for p, q in shapes:
            assert critical_path("flat-tree", p, q) == flat_tree_cp(p, q)
            exact_ft += 1
            assert critical_path("flat-tree", p, q, family="TS") == \
                ts_flat_tree_cp(p, q)
            exact_ts += 1
        rows.append(["Theorem 1(1) FlatTree TT", f"{exact_ft} shapes", "exact"])
        rows.append(["Proposition 2 FlatTree TS", f"{exact_ts} shapes", "exact"])
        worst_f = worst_g = 0.0
        for p, q in shapes:
            worst_f = max(worst_f,
                          critical_path("fibonacci", p, q) - fibonacci_cp_bound(p, q))
            worst_g = max(worst_g,
                          critical_path("greedy", p, q) - greedy_cp_bound(p, q))
        rows.append(["Theorem 1(2) Fibonacci bound",
                     f"worst slack {worst_f:g}", "holds" if worst_f <= 0 else "FAIL"])
        rows.append(["Theorem 1(2) Greedy bound",
                     f"worst slack {worst_g:g}", "holds" if worst_g <= 0 else "FAIL"])
        bt = 0
        for p, q in [(4, 2), (8, 2), (8, 4), (16, 4), (16, 8), (32, 8),
                     (32, 16), (64, 16)]:
            assert critical_path("binary-tree", p, q) == binary_tree_cp_exact(p, q)
            bt += 1
        rows.append(["Proposition 1 BinaryTree", f"{bt} power-of-two shapes",
                     "exact"])
        # the documented finding: the Greedy bound is off by 2 at p=128
        slack128 = max(critical_path("greedy", 128, q)
                       - greedy_cp_bound(128, q) for q in (16, 32, 64))
        rows.append(["Theorem 1(2) Greedy @ p=128",
                     f"slack +{slack128:g} (paper's Table 4b agrees)",
                     "off by O(1), see EXPERIMENTS.md"])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("formula_checks",
         format_table(["result", "coverage", "status"], rows,
                      title="Closed-form formulas vs discrete-event simulator"))
