"""Ablation — robustness to processor-speed variation (paper §5).

For each elimination tree, simulate a 16-worker machine where one
worker is progressively slowed down, and report the makespan inflation
relative to the homogeneous machine.  Trees with shorter critical paths
and more scheduling slack (Greedy) degrade more gracefully than
FlatTree — quantifying the robustness question the paper leaves as
future work.

Run: ``pytest benchmarks/bench_ablation_hetero.py --benchmark-only``
Artifact: ``benchmarks/results/ablation_hetero.txt``
"""

from benchmarks.common import emit
from repro.bench import format_table
from repro.dag import build_dag
from repro.ext import simulate_heterogeneous
from repro.schemes import get_scheme

P, Q = 32, 8
WORKERS = 16
SLOWDOWNS = (1.0, 0.5, 0.25, 0.1)


def test_hetero_ablation(benchmark):
    def compute():
        rows = []
        for scheme in ("greedy", "fibonacci", "flat-tree", "binary-tree"):
            g = build_dag(get_scheme(scheme, P, Q), "TT")
            base = simulate_heterogeneous(g, [1.0] * WORKERS).makespan
            row = [scheme, round(base, 1)]
            for s in SLOWDOWNS[1:]:
                speeds = [1.0] * (WORKERS - 1) + [s]
                ms = simulate_heterogeneous(g, speeds).makespan
                row.append(round(ms / base, 4))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("ablation_hetero",
         format_table(["scheme", "homogeneous makespan"]
                      + [f"slowdown x{1/s:g}" for s in SLOWDOWNS[1:]],
                      rows,
                      title=f"Ablation: one slow worker out of {WORKERS} "
                            f"(p={P}, q={Q}; makespan inflation, 1.0 = none)"))
