"""Pipeline-structure study — why Greedy wins, visualized as numbers.

For each tree on a tall grid, reports the per-column activity windows'
statistics and the steady-state column completion period, which
Theorem 1 predicts to approach 22 units for asymptotically optimal
trees (and which directly multiplies into the 22q term of their
critical paths).

Run: ``pytest benchmarks/bench_pipeline_structure.py --benchmark-only``
Artifact: ``benchmarks/results/pipeline_structure.txt``
"""

from benchmarks.common import emit
from repro.analysis import column_period, column_windows, pipeline_overlap
from repro.bench import format_table
from repro.dag import build_dag
from repro.schemes import get_scheme
from repro.sim import simulate_unbounded

P, Q = 64, 16
SCHEMES = ("greedy", "fibonacci", "binary-tree", "flat-tree")


def test_pipeline_structure(benchmark):
    def compute():
        rows = []
        for scheme in SCHEMES:
            res = simulate_unbounded(build_dag(get_scheme(scheme, P, Q), "TT"))
            windows = column_windows(res)
            lengths = [b - a for a, b in windows]
            rows.append([scheme, round(res.makespan, 0),
                         round(column_period(res), 1),
                         round(max(lengths), 0),
                         round(sum(lengths) / len(lengths), 1),
                         round(pipeline_overlap(res), 2)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("pipeline_structure",
         format_table(["scheme", "makespan", "column period",
                       "max window", "mean window", "open windows"],
                      rows,
                      title=f"Pipeline structure on a {P} x {Q} grid "
                            "(period -> 22 units for asymptotically "
                            "optimal trees; Theorem 1)"))
