"""Measure the streaming-telemetry overhead of the batched backend.

The acceptance bar for the event bus (S21) is that full telemetry —
EventBus publishing + LiveState reduction + background Sampler — costs
<= 5% wall time on the repo's standard batched case (512x512, nb=32).
Measurement on shared machines is the hard part: the wall time of a
~60 ms run drifts by several percent between neighbouring executions,
more than the effect being measured.  The bench therefore interleaves
bare (``bus=None``, no registry) and instrumented runs, alternating
which goes first each round to cancel order bias, and gates on the
*ratio of medians* — the median of each population is robust to the
multi-ms spikes a noisy box injects into individual runs.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --rounds 9

Record the result in docs/performance.md ("telemetry overhead").
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.api import plan  # noqa: E402
from repro.obs import (EventBus, LiveState, MetricsRegistry,  # noqa: E402
                       Sampler)
from repro.runtime.executor import execute_graph  # noqa: E402
from repro.tiles.layout import TiledMatrix  # noqa: E402


def run_case(m: int, n: int, nb: int, rounds: int, mode: str,
             workers=None) -> dict:
    rng = np.random.default_rng(20110814)
    a = rng.standard_normal((m, n))
    pl = plan(m // nb, n // nb, "greedy")

    def bare() -> float:
        tiled = TiledMatrix(a.copy(), nb)
        t0 = time.perf_counter()
        execute_graph(pl, tiled, ib=min(32, nb), workers=workers, mode=mode)
        return time.perf_counter() - t0

    def instrumented() -> float:
        # exactly the `repro profile --progress` wiring: bus published
        # by the executor, LiveState in pull mode, sampler at the
        # default cadence.  The sampler thread is started/stopped
        # outside the timed window — it is one-time setup (like
        # constructing the bus), not per-run telemetry cost; on a
        # loaded box a thread start is a multi-ms scheduler round trip
        # that would swamp the steady-state signal.
        tiled = TiledMatrix(a.copy(), nb)
        bus = EventBus()
        state = LiveState(total=len(pl.graph.tasks), nb=nb).connect(bus)
        metrics = MetricsRegistry()
        with Sampler(metrics, state):
            t0 = time.perf_counter()
            execute_graph(pl, tiled, ib=min(32, nb), workers=workers,
                          mode=mode, bus=bus)
            dt = time.perf_counter() - t0
        return dt

    bare()            # warm plan cache, pools, BLAS
    instrumented()
    bare_s, inst_s = [], []
    for i in range(rounds):
        if i % 2 == 0:
            bare_s.append(bare())
            inst_s.append(instrumented())
        else:
            inst_s.append(instrumented())
            bare_s.append(bare())
    mb, mi = float(np.median(bare_s)), float(np.median(inst_s))
    return {
        "case": f"{m}x{n} nb={nb} mode={mode}",
        "bare_s": mb,
        "instrumented_s": mi,
        "overhead_ratio": mi / mb,
        "overhead_pct": (mi / mb - 1.0) * 100.0,
        "rounds": rounds,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=21)
    ap.add_argument("--size", type=int, default=512)
    ap.add_argument("--nb", type=int, default=32)
    ap.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON only")
    args = ap.parse_args(argv)

    result = run_case(args.size, args.size, args.nb, args.rounds, "batched")
    if args.json:
        print(json.dumps(result, indent=1))
    else:
        print(f"telemetry overhead, {result['case']} "
              f"({result['rounds']} rounds, ratio of medians):")
        print(f"  bare          {result['bare_s'] * 1e3:8.2f} ms")
        print(f"  instrumented  {result['instrumented_s'] * 1e3:8.2f} ms "
              "(bus + LiveState + 50ms sampler)")
        print(f"  overhead      {result['overhead_pct']:+.2f}%  "
              f"(target <= 5%)")
    return 0 if result["overhead_pct"] <= 5.0 else 1


if __name__ == "__main__":
    sys.exit(main())
