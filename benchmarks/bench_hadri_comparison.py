"""Section 4's side study — PlasmaTree vs the Hadri et al. trees.

The paper states it compared against the Semi-Parallel / Fully-Parallel
Tile CAQR of Hadri et al. [10] and "found that the PLASMA algorithms
performed identically or better ... and therefore we do not report
these comparisons".  This driver produces the table the paper omitted:
best-BS critical paths of both domain trees (and Greedy) across shapes
and kernel families.

Run: ``pytest benchmarks/bench_hadri_comparison.py --benchmark-only``
Artifact: ``benchmarks/results/hadri_comparison.txt``
"""

from benchmarks.common import emit
from repro.bench import format_table
from repro.core import critical_path
from repro.dag import build_dag
from repro.schemes import hadri_tree
from repro.bench.autotune import plasma_bs_sweep
from repro.sim import simulate_unbounded

SHAPES = [(40, 2), (40, 5), (40, 10), (40, 20), (40, 40)]


def _best_hadri(p, q, family):
    best_bs, best = 0, float("inf")
    for bs in range(1, p + 1):
        cp = simulate_unbounded(build_dag(hadri_tree(p, q, bs), family)).makespan
        if cp < best:
            best_bs, best = bs, cp
    return best_bs, best


def test_hadri_comparison(benchmark):
    def compute():
        rows = []
        for family in ("TT", "TS"):
            for p, q in SHAPES:
                sweep = plasma_bs_sweep(p, q, family)
                bs_p = min(sweep, key=sweep.get)
                bs_h, cp_h = _best_hadri(p, q, family)
                rows.append([family, p, q,
                             int(critical_path("greedy", p, q, family=family)),
                             int(sweep[bs_p]), bs_p, int(cp_h), bs_h])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("hadri_comparison",
         format_table(["family", "p", "q", "Greedy", "PlasmaTree", "BS",
                       "HadriTree", "BS"],
                      rows,
                      title="PlasmaTree vs Hadri et al. Semi-/Fully-Parallel "
                            "trees (best-BS critical paths; the comparison "
                            "the paper ran but did not tabulate)"))
