"""Tables 6-9 — experimental Greedy vs PlasmaTree(TT) and Fibonacci.

Regenerates the paper's experimental comparison grid (p = 40,
q in {1, 2, 4, 5, 10, 20, 40}) in both arithmetics, using the
documented substitution: bounded-48-worker discrete-event simulation
driven by kernel durations measured on this machine.  A separate
wall-clock section runs the *real* threaded runtime on a smaller grid
to demonstrate end-to-end execution (Python scheduling overhead and
the GIL cap its absolute scaling; see DESIGN.md §2).

Run: ``pytest benchmarks/bench_tables6_9_experimental.py --benchmark-only``
Artifacts: ``benchmarks/results/tables6_9_experimental*.txt``
"""

import time

import numpy as np
import pytest

from benchmarks.common import (PAPER_QS, best_experimental_bs, emit,
                               simulated_gflops)
from repro import tiled_qr
from repro.bench import format_table
from repro.kernels.costs import qr_flops

P = 40
NB = 64


@pytest.mark.parametrize("complex_arith", [False, True],
                         ids=["double", "double-complex"])
def test_tables6_7_greedy_vs_plasma(benchmark, complex_arith):
    """Tables 6 (double) and 7 (double complex)."""

    def compute():
        rows = []
        for q in PAPER_QS:
            g = simulated_gflops("greedy", P, q, NB, complex_arith)
            bs, pt = best_experimental_bs(P, q, NB, complex_arith)
            rows.append([P, q, round(g, 4), round(pt, 4), bs,
                         round(pt / g, 4), round(1 - pt / g, 4)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    n = 7 if complex_arith else 6
    arith = "double complex" if complex_arith else "double"
    emit(f"table{n}_greedy_vs_plasma_{'complex' if complex_arith else 'double'}",
         format_table(["p", "q", "Greedy", "PlasmaTree(TT)", "BS",
                       "Overhead", "Gain"], rows,
                      title=f"Table {n}: Greedy vs PlasmaTree (TT) "
                            f"(simulated experimental, {arith}, GFLOP/s)"))


@pytest.mark.parametrize("complex_arith", [False, True],
                         ids=["double", "double-complex"])
def test_tables8_9_greedy_vs_fibonacci(benchmark, complex_arith):
    """Tables 8 (double) and 9 (double complex)."""

    def compute():
        rows = []
        for q in PAPER_QS:
            g = simulated_gflops("greedy", P, q, NB, complex_arith)
            f = simulated_gflops("fibonacci", P, q, NB, complex_arith)
            rows.append([P, q, round(g, 4), round(f, 4),
                         round(f / g, 4), round(1 - f / g, 4)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    n = 9 if complex_arith else 8
    arith = "double complex" if complex_arith else "double"
    emit(f"table{n}_greedy_vs_fibonacci_{'complex' if complex_arith else 'double'}",
         format_table(["p", "q", "Greedy", "Fibonacci", "Overhead", "Gain"],
                      rows,
                      title=f"Table {n}: Greedy vs Fibonacci "
                            f"(simulated experimental, {arith}, GFLOP/s)"))


def test_wallclock_threaded_runtime(benchmark, paper_scale):
    """Real wall-clock factorizations on the threaded runtime."""
    nb = 128
    p = 16 if not paper_scale else 40
    qs = (2, 4, 8, 16) if not paper_scale else PAPER_QS
    workers = 8
    rng = np.random.default_rng(0)

    def run_all():
        rows = []
        for q in qs:
            m, n = p * nb, q * nb
            a = rng.standard_normal((m, n))
            t0 = time.perf_counter()
            tiled_qr(a, nb=nb, ib=32, scheme="greedy", backend="lapack",
                     workers=workers)
            t_par = time.perf_counter() - t0
            t0 = time.perf_counter()
            tiled_qr(a, nb=nb, ib=32, scheme="greedy", backend="lapack",
                     workers=None)
            t_seq = time.perf_counter() - t0
            gf = qr_flops(m, n) / t_par / 1e9
            rows.append([p, q, round(t_seq, 3), round(t_par, 3),
                         round(t_seq / t_par, 2), round(gf, 2)])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("tables6_9_wallclock_threaded",
         format_table(["p", "q", "seq (s)", f"{workers} threads (s)",
                       "speedup", "GFLOP/s"], rows,
                      title="Wall-clock threaded runtime (real execution, "
                            "greedy, LAPACK kernels; GIL-limited scaling "
                            "documented in DESIGN.md)"))
