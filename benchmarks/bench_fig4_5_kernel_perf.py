"""Figures 4-5 — kernel performance vs tile size, in and out of cache.

Regenerates the kernel GFLOP/s curves (factorization kernels and update
kernels, double and double complex) under the warm ("No Flush") and
cold ("MultCallFlushLRU") protocols, plus the headline ratios the paper
derives from them: TSQRT vs GEQRT+TTQRT and TSMQR vs UNMQR+TTMQR
(paper: ~1.32-1.34 in cache, ~1.30-1.32 out of cache at nb = 200).

Run: ``pytest benchmarks/bench_fig4_5_kernel_perf.py --benchmark-only``
Artifacts: ``benchmarks/results/fig4_5_kernel_perf_*.txt``
"""

import numpy as np
import pytest

from benchmarks.common import emit
from repro.bench import format_series, format_table, time_kernels
from repro.kernels.costs import Kernel

SIZES = (32, 64, 96, 128, 200)


@pytest.mark.parametrize("complex_arith", [False, True],
                         ids=["double", "double-complex"])
def test_fig4_5(benchmark, complex_arith):
    dtype = np.complex128 if complex_arith else np.float64

    def compute():
        out = {}
        for strategy in ("warm", "cold"):
            out[strategy] = [
                time_kernels(nb, ib=32, dtype=dtype, backend="lapack",
                             strategy=strategy, min_time=0.05)
                for nb in SIZES
            ]
        return out

    rates = benchmark.pedantic(compute, rounds=1, iterations=1)
    arith = "double complex" if complex_arith else "double"
    blocks = []
    for strategy in ("warm", "cold"):
        series = {k.value: [r.gflops[k] for r in rates[strategy]]
                  for k in Kernel}
        blocks.append(format_series(
            "nb", list(SIZES), series,
            title=f"Figures 4-5 ({arith}, {strategy} cache): "
                  "kernel GFLOP/s vs tile size"))
        ratio_rows = [[r.nb, round(r.ts_vs_tt_factor_ratio(), 4),
                       round(r.ts_vs_tt_update_ratio(), 4)]
                      for r in rates[strategy]]
        blocks.append(format_table(
            ["nb", "(GEQRT+TTQRT)/TSQRT", "(UNMQR+TTMQR)/TSMQR"],
            ratio_rows,
            title=f"TS-vs-TT time ratios ({arith}, {strategy}; "
                  "paper: ~1.30-1.34 at nb=200)"))
    emit(f"fig4_5_kernel_perf_{'complex' if complex_arith else 'double'}",
         "\n\n".join(blocks))
