"""Ablation — distributed-memory model (paper §5).

Distributes tile rows over 4 node memories (block layout) and sweeps
the per-tile transfer cost; reports communication volume and
distributed-aware critical paths per elimination tree.  Shows the
locality-vs-parallelism trade-off that motivates hierarchical trees:
as communication gets expensive, PlasmaTree with BS = rows-per-node
overtakes BinaryTree/Greedy, while pure FlatTree stays serial.

Run: ``pytest benchmarks/bench_ablation_distributed.py --benchmark-only``
Artifact: ``benchmarks/results/ablation_distributed.txt``
"""

from benchmarks.common import emit
from repro.bench import format_table
from repro.dag import build_dag
from repro.ext import (DistributedLayout, communication_volume,
                       distributed_graph, simulate_distributed)
from repro.schemes import get_scheme
from repro.sim import simulate_unbounded

P, Q, NODES, WPN = 32, 4, 4, 4
COSTS = (0.0, 4.0, 16.0)
SCHEMES = [("greedy", {}), ("binary-tree", {}), ("flat-tree", {}),
           ("plasma-tree(BS=p/N)", {"bs": P // NODES})]


def test_distributed_ablation(benchmark):
    lay = DistributedLayout(p=P, nodes=NODES, kind="block")

    def compute():
        rows = []
        for label, kw in SCHEMES:
            scheme = "plasma-tree" if label.startswith("plasma") else label
            el = get_scheme(scheme, P, Q, **kw)
            vol = communication_volume(el, lay)
            g = build_dag(el, "TT")
            row = [label, vol["cross_eliminations"], vol["tiles"]]
            for c in COSTS:
                row.append(simulate_unbounded(
                    distributed_graph(g, lay, c)).makespan)
            # owner-computes machine: NODES x WPN workers
            for c in (0.0, 16.0):
                row.append(simulate_distributed(
                    g, lay, WPN, tile_comm_cost=c).makespan)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("ablation_distributed",
         format_table(["scheme", "cross-elims", "tiles moved"]
                      + [f"cp @cost={c:g}" for c in COSTS]
                      + [f"{NODES}x{WPN}w @{c:g}" for c in (0.0, 16.0)],
                      rows,
                      title=f"Ablation: {NODES}-node block distribution of a "
                            f"{P} x {Q} grid (communication volume, "
                            "distributed critical paths, owner-computes "
                            "makespans)"))
