"""Accuracy study — the Section-1 stability claim, quantified.

The paper chooses Householder-based tiled QR for its unconditional
stability.  This driver measures backward error and orthogonality for
every elimination tree on progressively worse-conditioned inputs and
for both kernel families — the factorizations must remain backward
stable throughout, independent of tree and conditioning.

Run: ``pytest benchmarks/bench_accuracy.py --benchmark-only``
Artifact: ``benchmarks/results/accuracy_study.txt``
"""


from benchmarks.common import emit
from repro.analysis.accuracy import compare_schemes
from repro.bench import format_table
from repro.matrices import graded, random_dense

SCHEMES = ("greedy", "fibonacci", "flat-tree", "binary-tree")


def test_accuracy_study(benchmark):
    def compute():
        rows = []
        cases = [("random", lambda: random_dense(96, 48, seed=0)),
                 ("cond 1e8", lambda: graded(96, 48, 1e8, seed=0)),
                 ("cond 1e14", lambda: graded(96, 48, 1e14, seed=0))]
        for label, make in cases:
            a = make()
            for family in ("TT", "TS"):
                reports = compare_schemes(a, nb=16, schemes=SCHEMES,
                                          family=family)
                for scheme, rep in reports.items():
                    rows.append([label, family, scheme,
                                 f"{rep.backward_error:.2e}",
                                 f"{rep.orthogonality:.2e}",
                                 round(rep.eps_multiple, 2)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("accuracy_study",
         format_table(["matrix", "family", "scheme", "backward err",
                       "orthogonality", "x (m*eps)"], rows,
                      title="Backward stability across trees, families and "
                            "conditioning (96 x 48, nb=16)"))
