"""Figure 1 — predicted and experimental performance, TT kernels.

Regenerates the four panels of the paper's Figure 1 for p = 40:
predicted (Roofline model with measured sequential rates) and
"experimental" (bounded-48-worker discrete-event simulation with
measured kernel durations — the documented substitution for the
paper's wall-clock runs) GFLOP/s, in double and double complex, for
FlatTree(TT), PlasmaTree(TT, best BS), Fibonacci and Greedy.

Run: ``pytest benchmarks/bench_fig1_performance_tt.py --benchmark-only``
Artifact: ``benchmarks/results/fig1_performance_tt.txt``
"""

import pytest

from benchmarks.common import (PAPER_P, best_experimental_bs, emit, roofline,
                               simulated_gflops)
from repro.analysis import predicted_gflops
from repro.bench import ascii_chart, best_plasma_bs, format_series

P = 40
QS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40)
NB = 64  # paper: 200; reduce to keep measurement time modest


@pytest.mark.parametrize("complex_arith", [False, True],
                         ids=["double", "double-complex"])
def test_fig1(benchmark, complex_arith):
    def compute():
        model = roofline(NB, complex_arith)
        pred = {"flat-tree": [], "plasma-best": [], "fibonacci": [],
                "greedy": []}
        expe = {"flat-tree": [], "plasma-best": [], "fibonacci": [],
                "greedy": []}
        best_bs_per_q = []
        for q in QS:
            for name in ("flat-tree", "fibonacci", "greedy"):
                pred[name].append(predicted_gflops(name, P, q, model))
                expe[name].append(simulated_gflops(name, P, q, NB,
                                                   complex_arith))
            bs_cp, _ = best_plasma_bs(P, q)
            pred["plasma-best"].append(
                predicted_gflops("plasma-tree", P, q, model, bs=bs_cp))
            bs_ex, gf = best_experimental_bs(P, q, NB, complex_arith)
            expe["plasma-best"].append(gf)
            best_bs_per_q.append(bs_ex)
        return pred, expe, best_bs_per_q

    pred, expe, bss = benchmark.pedantic(compute, rounds=1, iterations=1)
    arith = "double complex" if complex_arith else "double"
    txt = [
        format_series("q", list(QS), pred,
                      title=f"Figure 1 predicted ({arith}), GFLOP/s, "
                            f"P={PAPER_P}, nb={NB}"),
        ascii_chart(list(QS), pred, title="(predicted)", y_label="GF/s"),
        format_series("q", list(QS), expe,
                      title=f"Figure 1 experimental/simulated ({arith}), "
                            f"GFLOP/s"),
        ascii_chart(list(QS), expe, title="(simulated experimental)",
                    y_label="GF/s"),
        f"best experimental BS per q: {dict(zip(QS, bss))}",
    ]
    emit(f"fig1_performance_tt_{'complex' if complex_arith else 'double'}",
         "\n\n".join(txt))
