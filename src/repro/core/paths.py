"""Critical-path queries — the paper's central metric (S13).

Convenience wrappers tying schemes, DAG construction and simulation
together:

>>> from repro.core import critical_path
>>> critical_path("greedy", 15, 6)
128.0
>>> critical_path("flat-tree", 15, 6)   # 6p + 16q - 22
164.0
"""

from __future__ import annotations

import numpy as np

from ..dag.build import build_dag
from ..kernels.costs import KernelFamily
from ..schemes.registry import get_scheme
from ..sim.simulate import simulate_unbounded

__all__ = ["critical_path", "zero_out_steps"]


def critical_path(
    scheme: str, p: int, q: int,
    family: KernelFamily | str = KernelFamily.TT,
    **params,
) -> float:
    """Critical path length of ``scheme`` on a ``p x q`` grid.

    Expressed in the paper's time unit (``nb^3/3`` flops); computed by
    unbounded-processor simulation of the kernel DAG.

    Parameters
    ----------
    scheme : str
        Algorithm name (see :func:`repro.schemes.available_schemes`).
    p, q : int
        Tile-grid dimensions.
    family : KernelFamily
        ``TT`` (default) or ``TS``.
    **params
        Scheme parameters (``bs`` for plasma-tree, ``k`` for grasap).
    """
    elims = get_scheme(scheme, p, q, **params)
    return simulate_unbounded(build_dag(elims, family)).makespan


def zero_out_steps(
    scheme: str, p: int, q: int,
    family: KernelFamily | str = KernelFamily.TT,
    **params,
) -> np.ndarray:
    """Table-3-style matrix of tile zero-out times for ``scheme``."""
    elims = get_scheme(scheme, p, q, **params)
    return simulate_unbounded(build_dag(elims, family)).zero_out_table()
