"""Critical-path queries — the paper's central metric (S13).

Convenience wrappers tying schemes, DAG construction and simulation
together:

>>> from repro.core import critical_path
>>> critical_path("greedy", 15, 6)
128.0
>>> critical_path("flat-tree", 15, 6)   # 6p + 16q - 22
164.0
"""

from __future__ import annotations

import numpy as np

from ..kernels.costs import KernelFamily
from ..planner import Plan
from ..planner import plan as build_plan

__all__ = ["critical_path", "zero_out_steps"]


def critical_path(
    scheme, p: int, q: int,
    family: KernelFamily | str = KernelFamily.TT,
    **params,
) -> float:
    """Critical path length of ``scheme`` on a ``p x q`` grid.

    Expressed in the paper's time unit (``nb^3/3`` flops); computed by
    unbounded-processor simulation of the kernel DAG.  Routes through
    the plan cache, so repeated queries of the same shape are free.

    Parameters
    ----------
    scheme : str, EliminationList, or Plan
        Algorithm name or spec (see
        :func:`repro.schemes.available_schemes`), a prebuilt
        elimination list, or a plan.
    p, q : int
        Tile-grid dimensions.
    family : KernelFamily
        ``TT`` (default) or ``TS``.
    **params
        Scheme parameters (``bs`` for plasma-tree, ``k`` for grasap).
    """
    if isinstance(scheme, Plan):
        family = scheme.family
    return build_plan(p, q, scheme, family, **params).critical_path()


def zero_out_steps(
    scheme, p: int, q: int,
    family: KernelFamily | str = KernelFamily.TT,
    **params,
) -> np.ndarray:
    """Table-3-style matrix of tile zero-out times for ``scheme``."""
    if isinstance(scheme, Plan):
        family = scheme.family
    return build_plan(p, q, scheme, family, **params).zero_out_steps()
