"""``tiled_qr``: the user-facing factorization entry point (S13).

Factor an ``m x n`` matrix (``m >= n``) with any of the paper's
elimination trees and either kernel family, on either kernel backend,
sequentially or on a thread pool:

>>> import numpy as np
>>> from repro import tiled_qr
>>> rng = np.random.default_rng(0)
>>> a = rng.standard_normal((64, 32))
>>> f = tiled_qr(a, nb=8, scheme="greedy")
>>> np.allclose(f.q() @ f.r(), a)
True

Rows are zero-padded internally when ``m`` is not a multiple of the
tile size (the QR of ``[A; 0]`` has the same ``R`` and an embedded
``Q``); ragged *column* edges are handled natively by the kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dag.tasks import TaskGraph
from ..kernels.costs import KernelFamily
from ..planner import Plan
from ..planner import plan as build_plan
from ..runtime.executor import ExecutionContext, execute_graph
from ..schemes.elimination import EliminationList
from ..tiles.layout import TiledMatrix

__all__ = ["tiled_qr", "TiledQRFactorization"]


@dataclass
class TiledQRFactorization:
    """Result of :func:`tiled_qr` — an implicit ``A = Q R``.

    ``R`` is stored in the tiles of the working array; ``Q`` is kept in
    factored form (Householder vectors + T factors) and applied on
    demand, LAPACK-style.
    """

    m: int  #: original row count (before any internal padding)
    n: int
    nb: int
    scheme: EliminationList
    graph: TaskGraph
    context: ExecutionContext

    # ------------------------------------------------------------------
    def r(self, full: bool = False) -> np.ndarray:
        """The ``R`` factor: ``n x n`` upper triangular (or ``m x n``)."""
        work = self.context.tiled.array
        r = np.triu(work[: self.m, : self.n])
        return r if full else r[: self.n, :]

    def qh_matmul(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q^H @ c`` for an ``(m, k)`` or ``(m,)`` array."""
        c2, squeeze = self._prepare_rhs(c)
        self.context.apply_q(c2, adjoint=True)
        out = c2[: self.m]
        return out[:, 0] if squeeze else out

    def q_matmul(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q @ c`` for an ``(m, k)`` or ``(m,)`` array."""
        c2, squeeze = self._prepare_rhs(c)
        self.context.apply_q(c2, adjoint=False)
        out = c2[: self.m]
        return out[:, 0] if squeeze else out

    def matmul_q(self, c: np.ndarray, adjoint: bool = False) -> np.ndarray:
        """Return ``c @ Q`` (or ``c @ Q^H``) for a ``(k, m)`` array.

        The right-side companion of :meth:`q_matmul`; useful for
        two-sided transformations (e.g. forming ``Q^H A Q``).
        """
        c = np.asarray(c)
        if c.ndim != 2 or c.shape[1] != self.m:
            raise ValueError(f"expected (k, {self.m}) array, got {c.shape}")
        mp = self.context.tiled.m
        dtype = np.result_type(c.dtype, self.context.tiled.array.dtype)
        c2 = np.zeros((c.shape[0], mp), dtype=dtype)
        c2[:, : self.m] = c
        self.context.apply_q_right(c2, adjoint=adjoint)
        return c2[:, : self.m]

    def q(self, full: bool = False) -> np.ndarray:
        """Materialize the ``Q`` factor (thin ``m x n`` by default)."""
        mp = self.context.tiled.m
        k = mp if full else self.n
        eye = np.zeros((mp, k), dtype=self.context.tiled.array.dtype)
        np.fill_diagonal(eye, 1.0)
        self.context.apply_q(eye, adjoint=False)
        return eye[: self.m]

    def solve_lstsq(self, b: np.ndarray) -> np.ndarray:
        """Least-squares solution of ``min ||A x - b||_2`` via ``Q R``.

        Computes ``x = R^{-1} (Q^H b)[:n]`` with back-substitution —
        the motivating use case of the paper's introduction.
        """
        qhb = self.qh_matmul(b)
        r = self.r()
        y = qhb[: self.n]
        return _back_substitute(r, y)

    def residual(self, a: np.ndarray) -> float:
        """Relative factorization error ``||A - QR|| / ||A||``."""
        qr = self.q_matmul(np.vstack([self.r(), np.zeros(
            (self.m - self.n, self.n), dtype=a.dtype)]))
        return float(np.linalg.norm(qr - a) / max(np.linalg.norm(a), 1e-300))

    def orthogonality(self) -> float:
        """Orthogonality error ``||Q^H Q - I||`` of the thin ``Q``."""
        qm = self.q()
        g = qm.conj().T @ qm
        return float(np.linalg.norm(g - np.eye(self.n, dtype=g.dtype)))

    # ------------------------------------------------------------------
    def _prepare_rhs(self, c: np.ndarray) -> tuple[np.ndarray, bool]:
        c = np.asarray(c)
        squeeze = c.ndim == 1
        if squeeze:
            c = c[:, None]
        if c.shape[0] != self.m:
            raise ValueError(f"rhs has {c.shape[0]} rows, expected {self.m}")
        mp = self.context.tiled.m
        dtype = np.result_type(c.dtype, self.context.tiled.array.dtype)
        c2 = np.zeros((mp, c.shape[1]), dtype=dtype)
        c2[: self.m] = c
        return c2, squeeze


def _back_substitute(r: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Solve ``R x = y`` for upper triangular ``R`` (own substrate —
    no scipy solve_triangular, per the from-scratch policy)."""
    n = r.shape[0]
    x = np.array(y, dtype=np.result_type(r.dtype, y.dtype), copy=True)
    for i in range(n - 1, -1, -1):
        if r[i, i] == 0:
            raise np.linalg.LinAlgError(f"R is singular at diagonal {i}")
        x[i] = (x[i] - r[i, i + 1 :] @ x[i + 1 :]) / r[i, i]
    return x


def tiled_qr(
    a: np.ndarray,
    nb: int = 64,
    ib: int = 32,
    scheme="greedy",
    family: KernelFamily | str = KernelFamily.TT,
    backend: str = "reference",
    workers: int | None = None,
    mode: str = "task",
    numeric: str = "auto",
    start_method: str | None = None,
    pool=None,
    batch="auto",
    tracer=None,
    metrics=None,
    bus=None,
    on_task_done=None,
    options=None,
    **scheme_params,
) -> TiledQRFactorization:
    """Tiled QR factorization of ``a`` (``m >= n``).

    Parameters
    ----------
    a : ndarray, shape (m, n)
        Matrix to factor (not modified; the factorization works on a
        copy).  Real or complex.
    nb : int
        Tile size (the paper uses 200 on 8000-row matrices).
    ib : int
        Inner blocking size of the kernels (the paper uses 32).
    scheme : str, EliminationList, or Plan
        Elimination tree: a name or spec — ``greedy`` (default, the
        paper's best), ``fibonacci``, ``flat-tree``, ``binary-tree``,
        ``plasma-tree`` (pass ``bs=...`` or write ``"plasma(bs=5)"``),
        ``asap``, ``grasap`` (pass ``k=...``) — or a prebuilt
        :class:`~repro.schemes.elimination.EliminationList`, or a
        :class:`~repro.planner.Plan` from :func:`repro.api.plan`
        (whose grid shape must match the tiling of ``a``; its family
        overrides ``family``).  Named schemes go through the
        process-wide plan cache, so repeated factorizations of
        same-shaped matrices skip DAG construction.
    family : {"TT", "TS"}
        Kernel family (Section 2.1): TT maximizes parallelism, TS
        locality/sequential speed.  Ignored when ``scheme`` is a Plan.
    backend : {"reference", "lapack"}
        Numeric kernel implementation.
    workers : int or None
        ``None``/1 = sequential; ``>= 2`` = threaded dataflow runtime
        (``mode="task"``) or the worker-process count
        (``mode="process"``, default ``os.cpu_count()``).  Ignored
        when ``mode="batched"``.
    mode : {"task", "batched", "process"}
        ``"task"`` retires one tile task at a time; ``"batched"``
        executes each (DAG level, kernel) group of independent tasks
        as stacked 3-D NumPy operations — typically much faster (see
        docs/performance.md); ``"process"`` runs the kernels on worker
        processes over a shared-memory tile pool with a rolling
        ready-frontier (no level barrier).  ``backend`` is ignored in
        batched and process modes.
    numeric : {"auto", "numpy", "lapack"}
        Factor-kernel implementation for ``mode="batched"`` and
        ``mode="process"`` (ignored otherwise): ``"lapack"`` runs the
        three factor kernels as per-slice LAPACK calls (real dtypes),
        ``"numpy"`` keeps the stacked NumPy kernels, ``"auto"`` picks
        LAPACK when supported.
    start_method : str or None
        ``mode="process"`` only: multiprocessing start method
        (``"fork"``/``"spawn"``/``"forkserver"``; ``None`` = ``fork``
        where available).
    pool : repro.runtime.ProcessPool or None
        ``mode="process"`` only: run on a persistent worker pool
        instead of an ephemeral one.
    batch : int or str
        Micro-batch dispatch for the process and threaded runtimes:
        ``"auto"`` (default) targets ~1ms of work per group, an int
        ``>= 2`` fixes the group size, ``"off"`` dispatches single
        tasks.  Bit-exact with single-task dispatch on the numpy path
        (see :func:`repro.runtime.groups.resolve_batch`).
    tracer, metrics, bus, on_task_done
        Observability passthroughs to
        :func:`~repro.runtime.executor.execute_graph`: a span
        :class:`~repro.obs.tracer.Tracer`, a
        :class:`~repro.obs.metrics.MetricsRegistry`, a streaming
        :class:`~repro.obs.stream.EventBus` (live progress /
        ``repro top``), and a per-task completion callback.  All
        default to ``None`` (zero observation cost).
    options : repro.runtime.ExecOptions or None
        The execution knobs (``mode``, ``workers``, ``numeric``,
        ``start_method``, ``pool``) as one bundle; the individual
        keywords remain accepted, and a conflicting non-default
        keyword raises (see :meth:`~repro.runtime.ExecOptions.resolve`).
    **scheme_params
        Extra parameters for the scheme (e.g. ``bs`` for plasma-tree).

    Returns
    -------
    TiledQRFactorization
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got ndim={a.ndim}")
    m, n = a.shape
    if m < n:
        raise ValueError(
            f"tiled QR requires m >= n (p >= q in tiles), got {m} x {n}")
    if not np.issubdtype(a.dtype, np.inexact):
        a = a.astype(np.float64)
    # pad rows to a multiple of nb: QR of [A; 0] embeds the QR of A
    mp = -(-m // nb) * nb
    work = np.zeros((mp, n), dtype=a.dtype)
    work[:m] = a
    tiled = TiledMatrix(work, nb)
    if isinstance(scheme, Plan):
        if getattr(scheme, "problem", "qr") != "qr" or scheme.elims is None:
            raise ValueError(
                f"factor/tiled_qr runs QR plans only, got a "
                f"{scheme.problem!r} plan; use repro.sim/analyze for "
                f"other problem families")
        family = scheme.family  # the plan's DAG decides
    elif not isinstance(scheme, (str, EliminationList)):
        raise TypeError(
            "scheme must be a scheme name/spec string, an EliminationList, "
            f"or a Plan, got {type(scheme).__name__}")
    pl = build_plan(tiled.p, tiled.q, scheme, family, **scheme_params)
    # pass the Plan itself: batched mode reuses its cached level groups
    # and the threaded scheduler its memoized bottom-levels
    ctx = execute_graph(pl, tiled, backend=backend, ib=min(ib, nb),
                        workers=workers, mode=mode, numeric=numeric,
                        start_method=start_method, pool=pool, batch=batch,
                        tracer=tracer, metrics=metrics, bus=bus,
                        on_task_done=on_task_done, options=options)
    return TiledQRFactorization(m=m, n=n, nb=nb, scheme=pl.elims,
                                graph=pl.graph, context=ctx)
