"""Automatic elimination-tree selection (S13).

The paper's practical takeaway is a decision rule: Greedy for tall
grids (no tuning), kernels by arithmetic/locality, PlasmaTree only if
you must use TS kernels and can afford the BS search.  This module
encodes that rule as a function — given the grid and an optional
machine model it returns the best scheme by predicted performance,
searching PlasmaTree's BS where requested, so users get the paper's
conclusion as one call:

>>> from repro.core.auto import select_scheme
>>> select_scheme(40, 5).scheme
'greedy'
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.model import PerformanceModel
from ..bench.autotune import plasma_bs_sweep
from ..kernels.costs import KernelFamily, total_weight
from ..planner import plan as build_plan

__all__ = ["SchemeChoice", "select_scheme"]


@dataclass
class SchemeChoice:
    """Outcome of :func:`select_scheme`.

    Attributes
    ----------
    scheme : str
        Winning scheme name (pass to :func:`repro.tiled_qr`).
    params : dict
        Scheme parameters (``{"bs": ...}`` when PlasmaTree wins).
    critical_path : float
        Its critical path in time units.
    predicted_gflops : float or None
        Prediction under the supplied machine model (None without one).
    ranking : list
        All candidates as ``(scheme, params, cp, gflops)``, best first.
    """

    scheme: str
    params: dict
    critical_path: float
    predicted_gflops: float | None
    ranking: list = field(default_factory=list)


def select_scheme(
    p: int,
    q: int,
    model: PerformanceModel | None = None,
    family: KernelFamily | str = KernelFamily.TT,
    include_plasma: bool = True,
    candidates: list[str] | None = None,
) -> SchemeChoice:
    """Pick the best elimination tree for a ``p x q`` grid.

    Without a machine model the criterion is the critical path (the
    unbounded-parallelism view); with one, the Roofline-predicted
    GFLOP/s — which can prefer a longer-path tree once the work bound
    dominates (square-ish grids on few cores).

    Parameters
    ----------
    include_plasma : bool
        Also search PlasmaTree over all BS (the exhaustive search the
        paper performs); it is reported with its best ``bs``.
    candidates : list of str or None
        Scheme names to consider (default: greedy, fibonacci,
        binary-tree, flat-tree).
    """
    if candidates is None:
        candidates = ["greedy", "fibonacci", "binary-tree", "flat-tree"]
    total = float(total_weight(p, q))
    entries: list[tuple[str, dict, float]] = []
    for name in candidates:
        cp = build_plan(p, q, name, family).critical_path()
        entries.append((name, {}, cp))
    if include_plasma:
        sweep = plasma_bs_sweep(p, q, family)
        bs = min(sweep, key=lambda b: (sweep[b], b))
        entries.append(("plasma-tree", {"bs": bs}, sweep[bs]))

    def score(entry) -> tuple:
        name, params, cp = entry
        if model is None:
            return (cp, len(params), name)
        return (-model.predict(total, cp), len(params), name)

    entries.sort(key=score)
    ranking = [(name, params, cp,
                model.predict(total, cp) if model else None)
               for name, params, cp in entries]
    best, params, cp = entries[0]
    return SchemeChoice(
        scheme=best,
        params=params,
        critical_path=cp,
        predicted_gflops=model.predict(total, cp) if model else None,
        ranking=ranking,
    )
