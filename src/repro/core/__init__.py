"""Public API of the tiled QR library (S13)."""

from .auto import SchemeChoice, select_scheme
from .paths import critical_path, zero_out_steps
from .serialize import load_factorization, save_factorization
from .tiled_qr import TiledQRFactorization, tiled_qr

__all__ = [
    "tiled_qr",
    "TiledQRFactorization",
    "critical_path",
    "zero_out_steps",
    "save_factorization",
    "load_factorization",
    "select_scheme",
    "SchemeChoice",
]
