"""Save / load tiled QR factorizations (S13).

A :class:`~repro.core.tiled_qr.TiledQRFactorization` keeps ``Q`` in
factored form (Householder vectors in the tiles + ``T`` side table), so
persisting it means persisting the working array, the elimination list
and every ``T`` factor.  ``save_factorization`` packs all of that into
a single ``.npz`` archive; ``load_factorization`` restores an object
that can apply ``Q``/``Q^H`` and solve least-squares problems without
refactoring — the standard workflow for reusing one expensive
factorization against many right-hand sides.

Both kernel backends are supported (the reference backend's block-list
``TFactor`` and the LAPACK backend's packed ``LapackT``).
"""

from __future__ import annotations

import numpy as np

from ..dag.build import build_dag
from ..kernels.backend import get_backend
from ..kernels.costs import KernelFamily
from ..kernels.geqrt import TFactor
from ..kernels.lapack import LapackT
from ..runtime.executor import ExecutionContext
from ..schemes.elimination import Elimination, EliminationList
from ..tiles.layout import TiledMatrix
from ._npz import pack_meta, unpack_meta
from .tiled_qr import TiledQRFactorization

__all__ = ["save_factorization", "load_factorization"]

_FORMAT_VERSION = 1


def save_factorization(f: TiledQRFactorization, path) -> None:
    """Persist a factorization to ``path`` (an ``.npz`` archive)."""
    ctx = f.context
    meta = {
        "version": _FORMAT_VERSION,
        "m": f.m,
        "n": f.n,
        "nb": f.nb,
        "ib": ctx.ib,
        "backend": ctx.backend.name,
        "family": "TS" if "[TS]" in f.graph.name else "TT",
        "scheme_name": f.scheme.name,
        "p": f.scheme.p,
        "q": f.scheme.q,
        "eliminations": [list(e) for e in f.scheme],
        "tkeys": [],
    }
    arrays: dict[str, np.ndarray] = {"work": ctx.tiled.array}
    for idx, ((row, col, kind), t) in enumerate(sorted(ctx.tfactors.items())):
        if isinstance(t, TFactor):
            entry = {"row": row, "col": col, "kind": kind, "type": "blocks",
                     "ib": t.ib, "nblocks": len(t.blocks)}
            for b, blk in enumerate(t.blocks):
                arrays[f"t{idx}_b{b}"] = blk
        elif isinstance(t, LapackT):
            entry = {"row": row, "col": col, "kind": kind, "type": "lapack",
                     "ib": t.ib, "l": t.l}
            arrays[f"t{idx}"] = t.t
        else:  # pragma: no cover - backends are closed
            raise TypeError(f"unknown T factor type {type(t)!r}")
        meta["tkeys"].append(entry)
    arrays["meta"] = pack_meta(meta)
    np.savez_compressed(path, **arrays)


def load_factorization(path) -> TiledQRFactorization:
    """Restore a factorization saved by :func:`save_factorization`."""
    with np.load(path) as data:
        meta = unpack_meta(data)
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported factorization format {meta.get('version')!r}")
        work = np.ascontiguousarray(data["work"])
        tfactors = {}
        for idx, entry in enumerate(meta["tkeys"]):
            key = (entry["row"], entry["col"], entry["kind"])
            if entry["type"] == "blocks":
                blocks = [np.ascontiguousarray(data[f"t{idx}_b{b}"])
                          for b in range(entry["nblocks"])]
                tfactors[key] = TFactor(blocks=blocks, ib=entry["ib"])
            else:
                tfactors[key] = LapackT(np.ascontiguousarray(data[f"t{idx}"]),
                                        entry["ib"], entry["l"])
    elims = EliminationList(
        meta["p"], meta["q"],
        [Elimination(*e) for e in meta["eliminations"]],
        name=meta["scheme_name"])
    graph = build_dag(elims, KernelFamily(meta["family"]))
    tiled = TiledMatrix(work, meta["nb"])
    ctx = ExecutionContext(tiled=tiled, graph=graph,
                           backend=get_backend(meta["backend"]),
                           ib=meta["ib"], tfactors=tfactors)
    return TiledQRFactorization(m=meta["m"], n=meta["n"], nb=meta["nb"],
                                scheme=elims, graph=graph, context=ctx)
