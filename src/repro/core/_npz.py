"""JSON-metadata-inside-``.npz`` helpers (S13).

Both persistence formats of the library — saved factorizations
(:mod:`repro.core.serialize`) and cached plans
(:mod:`repro.planner`) — pack their structured metadata as a JSON
document stored in a ``uint8`` array alongside the numeric payload,
so one ``np.savez_compressed`` archive is fully self-describing.
These two helpers are the shared encoding.
"""

from __future__ import annotations

import json

import numpy as np

__all__ = ["pack_meta", "unpack_meta"]


def pack_meta(meta: dict) -> np.ndarray:
    """Encode a JSON-serializable dict as a ``uint8`` array."""
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def unpack_meta(data) -> dict:
    """Decode the ``meta`` array of a loaded ``.npz`` archive."""
    return json.loads(bytes(data["meta"]).decode("utf-8"))
