"""Workload matrix generators used by tests, examples and benchmarks.

The paper evaluates on dense random matrices; real deployments of tiled
QR meet more structured inputs.  This module collects reproducible
generators for the workload families the introduction motivates
(least squares, block orthogonalization) and for accuracy studies
(graded/ill-conditioned inputs where Householder QR's unconditional
stability matters — the paper's argument for QR over LU in Section 1).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_dense",
    "graded",
    "vandermonde",
    "kahan",
    "near_rank_deficient",
    "banded_lower",
]


def _rng(seed):
    return seed if isinstance(seed, np.random.Generator) else \
        np.random.default_rng(seed)


def random_dense(m: int, n: int, dtype=np.float64, seed=0) -> np.ndarray:
    """I.i.d. standard normal entries (complex when ``dtype`` is)."""
    rng = _rng(seed)
    a = rng.standard_normal((m, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal((m, n))
    return np.ascontiguousarray(a.astype(dtype))


def graded(m: int, n: int, condition: float = 1e12, dtype=np.float64,
           seed=0) -> np.ndarray:
    """Random matrix with geometrically graded column scales.

    Column ``j`` is scaled by ``condition**(-j/(n-1))``, giving a
    2-norm condition number close to ``condition`` — the classical
    stress test for orthogonalization accuracy.
    """
    if n < 2:
        raise ValueError("graded needs at least two columns")
    a = random_dense(m, n, dtype, seed)
    scales = condition ** (-np.arange(n) / (n - 1))
    return a * scales


def vandermonde(m: int, n: int, dtype=np.float64, seed=None) -> np.ndarray:
    """Vandermonde matrix on ``m`` Chebyshev-like points in [-1, 1].

    The least-squares workload of the introduction; moderately
    ill-conditioned as ``n`` grows.
    """
    t = np.cos(np.pi * (np.arange(m) + 0.5) / m)
    return np.vander(t, n, increasing=True).astype(dtype)


def kahan(n: int, theta: float = 1.2, dtype=np.float64) -> np.ndarray:
    """The Kahan matrix: upper triangular, famously deceptive for
    rank-revealing factorizations; a classic QR accuracy probe."""
    c, s = np.cos(theta), np.sin(theta)
    a = -c * np.triu(np.ones((n, n)), 1) + np.eye(n)
    scale = s ** np.arange(n)
    return (scale[:, None] * a).astype(dtype)


def near_rank_deficient(m: int, n: int, rank: int, gap: float = 1e-10,
                        dtype=np.float64, seed=0) -> np.ndarray:
    """Matrix with ``rank`` dominant singular values and an ``gap``-sized
    tail — exercises the factorization near singularity."""
    if not (0 < rank <= n <= m):
        raise ValueError(f"need 0 < rank <= n <= m, got {rank}, {n}, {m}")
    rng = _rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    sv = np.concatenate([np.linspace(1.0, 2.0, rank),
                         np.full(n - rank, gap)])
    return (u * sv) @ v.T.astype(dtype)


def banded_lower(p: int, q: int, band: int, nb: int = 1, dtype=np.float64,
                 seed=0) -> np.ndarray:
    """Dense matrix whose tile pattern is banded below the diagonal.

    Tiles ``(i, k)`` with ``i - k > band`` are exactly zero — the
    structure used in the paper's Theorem 1(3) lower-bound argument.
    """
    rng = _rng(seed)
    a = np.zeros((p * nb, q * nb), dtype=dtype)
    for i in range(p):
        for k in range(q):
            if i - k <= band:
                a[i * nb:(i + 1) * nb, k * nb:(k + 1) * nb] = \
                    rng.standard_normal((nb, nb))
    return a
