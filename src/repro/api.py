"""``repro.api`` — the unified plan/factor/simulate facade (S18).

One import surface for the three things users do with this package:

- :func:`plan` — build (or fetch from the process-wide cache) the
  planning artifacts of one factorization shape;
- :func:`factor` — numerically factor a matrix, optionally from a
  prebuilt plan;
- :func:`simulate` — schedule a plan's DAG on ``P`` processors (or
  unbounded) and return the timing result.

The three compose: a :class:`~repro.planner.Plan` built once can be
passed to both :func:`factor` and :func:`simulate`, and everything a
scheme name can express is also writable as a spec string
(``"plasma(bs=5)"``).  All legacy entry points
(:func:`repro.tiled_qr`, :func:`repro.critical_path`, the CLI) route
through the same plan cache, so mixing styles never rebuilds a DAG.

>>> import numpy as np
>>> from repro.api import plan, factor, simulate
>>> pl = plan(8, 4, "greedy")
>>> simulate(pl, processors=4).makespan
102.0
>>> a = np.random.default_rng(0).standard_normal((64, 32))
>>> f = factor(a, nb=8, scheme=pl)
>>> bool(np.allclose(f.q() @ f.r(), a))
True
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .core.tiled_qr import TiledQRFactorization, tiled_qr
from .kernels.costs import KernelFamily
from .planner import (
    Plan,
    clear_plan_cache,
    plan,
    plan_cache_stats,
)
from .schemes.elimination import EliminationList
from .schemes.registry import available_schemes, parse_scheme_spec
from .sim.simulate import SimResult

__all__ = [
    "plan",
    "factor",
    "simulate",
    "Plan",
    "SimResult",
    "available_schemes",
    "parse_scheme_spec",
    "plan_cache_stats",
    "clear_plan_cache",
]


def factor(
    a: np.ndarray,
    nb: int = 64,
    ib: int = 32,
    scheme: Union[str, EliminationList, Plan] = "greedy",
    family: KernelFamily | str = KernelFamily.TT,
    backend: str = "reference",
    workers: Optional[int] = None,
    mode: str = "task",
    numeric: str = "auto",
    start_method: Optional[str] = None,
    pool=None,
    tracer=None,
    metrics=None,
    bus=None,
    on_task_done=None,
    **scheme_params,
) -> TiledQRFactorization:
    """Tiled QR factorization of ``a`` — facade over :func:`repro.tiled_qr`.

    Identical semantics to :func:`repro.core.tiled_qr.tiled_qr`;
    ``scheme`` may be a name/spec string, an
    :class:`~repro.schemes.elimination.EliminationList`, or a
    :class:`~repro.planner.Plan` from :func:`plan` (whose grid must
    match the tiling of ``a``; its kernel family wins over ``family``).
    ``mode="batched"`` runs the level-synchronous batched backend
    (stacked 3-D kernels over a contiguous tile pool) instead of the
    per-task executors — usually the fastest way to factor a real
    matrix; ``numeric`` picks its factor-kernel implementation
    (``"auto"``/``"numpy"``/``"lapack"``); ``mode="process"`` runs the
    kernels on ``workers`` worker processes over a shared-memory tile
    pool (``start_method`` picks fork/spawn, ``pool`` reuses a
    persistent :class:`repro.runtime.ProcessPool`); see
    docs/performance.md.
    ``tracer``/``metrics``/``bus``/``on_task_done`` are the
    observability passthroughs (span capture, metrics registry,
    streaming event bus, completion callback) — see
    :func:`repro.runtime.executor.execute_graph`.
    """
    return tiled_qr(a, nb=nb, ib=ib, scheme=scheme, family=family,
                    backend=backend, workers=workers, mode=mode,
                    numeric=numeric, start_method=start_method, pool=pool,
                    tracer=tracer, metrics=metrics,
                    bus=bus, on_task_done=on_task_done, **scheme_params)


def simulate(
    scheme: Union[str, EliminationList, Plan],
    p: Optional[int] = None,
    q: Optional[int] = None,
    *,
    processors: Optional[int] = None,
    priority: str = "critical-path",
    family: KernelFamily | str = KernelFamily.TT,
    costs=None,
    **params,
) -> SimResult:
    """Schedule one factorization shape and return its timing.

    Parameters
    ----------
    scheme : str, EliminationList, or Plan
        What to simulate.  A name/spec string requires ``p`` and ``q``;
        a Plan carries its own shape (``p``/``q``, if given, must
        agree).
    p, q : int, optional
        Tile-grid dimensions (mandatory unless ``scheme`` is a Plan or
        an EliminationList, which carry their own).
    processors : int or None
        ``None`` = unbounded ASAP schedule (the critical-path view);
        an int = bounded list scheduling.
    priority : str
        Ready-queue policy for the bounded case (see
        :func:`repro.sim.priorities.priority_vector`).
    family : {"TT", "TS"}
        Kernel family; ignored when ``scheme`` is a Plan.
    costs : mapping of Kernel -> float, optional
        Per-kernel weight overrides (distinct cache entries).
    **params
        Scheme parameters (``bs=...``, ``k=...``).

    Returns
    -------
    SimResult
        Memoized on the plan for named priorities — treat as read-only.
    """
    if isinstance(scheme, (Plan, EliminationList)):
        sp, sq = scheme.p, scheme.q
        if p is not None and (p, q) != (sp, sq):
            raise ValueError(
                f"scheme is for a {sp} x {sq} grid, requested {p} x {q}")
        p, q = sp, sq
    elif p is None or q is None:
        raise ValueError("p and q are required when scheme is a name")
    if isinstance(scheme, Plan):
        family = scheme.family
    pl = plan(p, q, scheme, family, costs=costs, **params)
    return pl.schedule(processors, priority)
