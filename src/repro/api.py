"""``repro.api`` — the unified plan/factor/simulate/analyze facade (S18).

One import surface for the things users do with this package:

- :func:`plan` — build (or fetch from the process-wide cache) the
  planning artifacts of one problem shape: a QR grid, or any
  registered problem family (``"cholesky(t=8)"``, ``"lu(p=8,q=8)"``);
- :func:`factor` — numerically factor a matrix (QR only), optionally
  from a prebuilt plan;
- :func:`simulate` — schedule a plan's DAG on ``P`` processors (or
  unbounded) and return the timing result;
- :func:`analyze` — turn a simulation, plan, or trace into a
  :class:`~repro.obs.analyze.ScheduleReport` with Theorem-1 and ALAP
  lower bounds;
- :func:`overhead_report` — attribute a traced run's time to the six
  task-lifecycle phases (queued / dispatched / deserialized /
  computing / published / retired); pass a
  :class:`~repro.obs.tracer.DistributedTracer` to ``factor(...,
  mode="process", tracer=...)`` for the full cross-process
  attribution with clock-aligned worker spans.

These compose: a :class:`~repro.planner.Plan` built once can be
passed to both :func:`factor` and :func:`simulate`, and everything a
scheme or problem name can express is also writable as a spec string
(``"plasma(bs=5)"``, ``"cholesky(t=8)"``).  All legacy entry points
(:func:`repro.tiled_qr`, :func:`repro.critical_path`, the CLI) route
through the same plan cache, so mixing styles never rebuilds a DAG.

>>> import numpy as np
>>> from repro.api import plan, factor, simulate
>>> pl = plan(8, 4, "greedy")
>>> simulate(pl, processors=4).makespan
166.0
>>> simulate("cholesky(t=8)").makespan
62.0
>>> a = np.random.default_rng(0).standard_normal((64, 32))
>>> f = factor(a, nb=8, scheme=pl)
>>> bool(np.allclose(f.q() @ f.r(), a))
True
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .core.tiled_qr import TiledQRFactorization, tiled_qr
from .kernels.costs import KernelFamily
from .obs.analyze import OverheadReport, analyze, overhead_report
from .obs.tracer import DistributedTracer
from .planner import (
    Plan,
    clear_plan_cache,
    plan,
    plan_cache_stats,
    plan_problem,
)
from .problems import (
    Problem,
    available_problems,
    get_problem,
    parse_problem_spec,
)
from .runtime.options import ExecOptions
from .schemes.elimination import EliminationList
from .schemes.registry import available_schemes, parse_scheme_spec
from .sim.simulate import SimResult

__all__ = [
    "plan",
    "plan_problem",
    "factor",
    "simulate",
    "analyze",
    "overhead_report",
    "OverheadReport",
    "DistributedTracer",
    "Plan",
    "Problem",
    "ExecOptions",
    "SimResult",
    "available_schemes",
    "available_problems",
    "get_problem",
    "parse_scheme_spec",
    "parse_problem_spec",
    "plan_cache_stats",
    "clear_plan_cache",
]


def factor(
    a: np.ndarray,
    nb: int = 64,
    ib: int = 32,
    scheme: Union[str, EliminationList, Plan] = "greedy",
    family: KernelFamily | str = KernelFamily.TT,
    backend: str = "reference",
    workers: Optional[int] = None,
    mode: str = "task",
    numeric: str = "auto",
    start_method: Optional[str] = None,
    pool=None,
    batch="auto",
    tracer=None,
    metrics=None,
    bus=None,
    on_task_done=None,
    options: Optional[ExecOptions] = None,
    **scheme_params,
) -> TiledQRFactorization:
    """Tiled QR factorization of ``a`` — facade over :func:`repro.tiled_qr`.

    Identical semantics to :func:`repro.core.tiled_qr.tiled_qr`;
    ``scheme`` may be a name/spec string, an
    :class:`~repro.schemes.elimination.EliminationList`, or a
    :class:`~repro.planner.Plan` from :func:`plan` (whose grid must
    match the tiling of ``a``; its kernel family wins over ``family``;
    it must be a QR plan — Cholesky/LU plans simulate but do not
    execute).
    ``mode="batched"`` runs the level-synchronous batched backend
    (stacked 3-D kernels over a contiguous tile pool) instead of the
    per-task executors — usually the fastest way to factor a real
    matrix; ``numeric`` picks its factor-kernel implementation
    (``"auto"``/``"numpy"``/``"lapack"``); ``mode="process"`` runs the
    kernels on ``workers`` worker processes over a shared-memory tile
    pool (``start_method`` picks fork/spawn, ``pool`` reuses a
    persistent :class:`repro.runtime.ProcessPool`, ``batch`` controls
    micro-batched dispatch — ``"auto"``/``"off"``/group size); see
    docs/performance.md.  The execution knobs may also arrive
    bundled as ``options=ExecOptions(...)`` — the individual keywords
    stay accepted, and a conflicting non-default keyword raises (see
    :meth:`ExecOptions.resolve`).
    ``tracer``/``metrics``/``bus``/``on_task_done`` are the
    observability passthroughs (span capture, metrics registry,
    streaming event bus, completion callback) — see
    :func:`repro.runtime.executor.execute_graph`.
    """
    return tiled_qr(a, nb=nb, ib=ib, scheme=scheme, family=family,
                    backend=backend, workers=workers, mode=mode,
                    numeric=numeric, start_method=start_method, pool=pool,
                    batch=batch, tracer=tracer, metrics=metrics,
                    bus=bus, on_task_done=on_task_done, options=options,
                    **scheme_params)


def _is_problem_spec(spec: str) -> bool:
    """Whether a bare string names a problem family (vs a scheme)."""
    try:
        name, _ = parse_problem_spec(spec)
    except (TypeError, ValueError):
        return False
    return name in available_problems()


def simulate(
    scheme: Union[str, EliminationList, Plan, Problem],
    p: Optional[int] = None,
    q: Optional[int] = None,
    *,
    processors: Optional[int] = None,
    priority: str = "critical-path",
    family: KernelFamily | str = KernelFamily.TT,
    costs=None,
    **params,
) -> SimResult:
    """Schedule one problem shape and return its timing.

    Parameters
    ----------
    scheme : str, EliminationList, Plan, or Problem
        What to simulate.  A *scheme* name/spec string (``"greedy"``,
        ``"plasma(bs=5)"``) requires ``p`` and ``q``; a *problem* spec
        string (``"cholesky(t=8)"``, ``"lu(p=8,q=8)"``,
        ``"qr(p=8,q=4)"``) or :class:`~repro.problems.Problem` carries
        its own parameters (a bare family name takes them as keywords:
        ``simulate("cholesky", t=8)``); a Plan or EliminationList
        carries its own shape (``p``/``q``, if given, must agree).
    p, q : int, optional
        Tile-grid dimensions (mandatory only when ``scheme`` is a
        scheme name).
    processors : int or None
        ``None`` = unbounded ASAP schedule (the critical-path view);
        an int = bounded list scheduling.
    priority : str
        Ready-queue policy for the bounded case (see
        :func:`repro.sim.priorities.priority_vector`).
    family : {"TT", "TS"}
        Kernel family; QR only, ignored when ``scheme`` is a Plan.
    costs : mapping of Kernel -> float, optional
        Per-kernel weight overrides (distinct cache entries).
    **params
        Scheme parameters (``bs=...``, ``k=...``), or problem
        parameters (``t=...``) in the problem-centric form.

    Returns
    -------
    SimResult
        Memoized on the plan for named priorities — treat as read-only.
    """
    if isinstance(scheme, Problem) or (
            isinstance(scheme, str) and _is_problem_spec(scheme)):
        if isinstance(scheme, str):
            if p is not None:
                params.setdefault("p", p)
            if q is not None:
                params.setdefault("q", q)
            if parse_problem_spec(scheme)[0] == "qr":
                params.setdefault("family", family)
        pl = plan_problem(scheme, costs=costs, **params)
        return pl.schedule(processors, priority)
    if isinstance(scheme, Plan):
        if p is not None and (p, q) != (scheme.p, scheme.q):
            raise ValueError(
                f"plan is for a {scheme.p} x {scheme.q} grid, "
                f"requested {p} x {q}")
        if costs is not None or params:
            raise ValueError(
                "a Plan already carries its costs and parameters; "
                "pass them to plan() instead")
        return scheme.schedule(processors, priority)
    if isinstance(scheme, EliminationList):
        sp, sq = scheme.p, scheme.q
        if p is not None and (p, q) != (sp, sq):
            raise ValueError(
                f"scheme is for a {sp} x {sq} grid, requested {p} x {q}")
        p, q = sp, sq
    elif p is None or q is None:
        raise ValueError("p and q are required when scheme is a name")
    pl = plan(p, q, scheme, family, costs=costs, **params)
    return pl.schedule(processors, priority)
