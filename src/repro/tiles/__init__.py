"""Tiled matrix layout (S5)."""

from .layout import TiledMatrix

__all__ = ["TiledMatrix"]
