"""Tiled matrix layout and tile pools, private and shared (S5, S20, S22)."""

from .layout import TiledMatrix
from .pool import TilePool
from .shared_pool import SharedArray, SharedTilePool

__all__ = ["TiledMatrix", "TilePool", "SharedArray", "SharedTilePool"]
