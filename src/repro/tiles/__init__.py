"""Tiled matrix layout and contiguous tile pool (S5, S20)."""

from .layout import TiledMatrix
from .pool import TilePool

__all__ = ["TiledMatrix", "TilePool"]
