"""Tiled view over a dense matrix (S5).

The tiled QR algorithms operate on ``p x q`` grids of ``nb x nb`` tiles
(Section 2).  :class:`TiledMatrix` carves a dense NumPy array into tile
*views* — no copies — so kernels mutate the backing array directly, the
way PLASMA operates on its tile layout.  Ragged edges (``m`` or ``n``
not divisible by ``nb``) are supported: border tiles are simply
smaller, which all kernels in :mod:`repro.kernels` accept.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TiledMatrix"]


class TiledMatrix:
    """A ``p x q`` grid of tile views over a dense ``m x n`` array.

    Parameters
    ----------
    a : ndarray, shape (m, n)
        Backing array.  Tile views alias this array; kernel operations
        through the views mutate it in place.
    nb : int
        Tile size.  Border tiles are ``m % nb`` / ``n % nb`` smaller.

    Examples
    --------
    >>> import numpy as np
    >>> tm = TiledMatrix(np.zeros((10, 7)), nb=4)
    >>> (tm.p, tm.q)
    (3, 2)
    >>> tm.tile(2, 1).shape   # ragged corner tile
    (2, 3)
    """

    def __init__(self, a: np.ndarray, nb: int):
        if a.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={a.ndim}")
        if nb <= 0:
            raise ValueError(f"tile size must be positive, got {nb}")
        self.array = a
        self.nb = int(nb)
        self.m, self.n = a.shape
        self.p = -(-self.m // nb)  # ceil division
        self.q = -(-self.n // nb)

    def tile(self, i: int, j: int) -> np.ndarray:
        """Return the (writable) view of tile ``(i, j)``, 0-indexed."""
        if not (0 <= i < self.p and 0 <= j < self.q):
            raise IndexError(f"tile ({i}, {j}) outside {self.p} x {self.q} grid")
        nb = self.nb
        return self.array[i * nb : min((i + 1) * nb, self.m),
                          j * nb : min((j + 1) * nb, self.n)]

    def row_height(self, i: int) -> int:
        """Number of matrix rows in tile row ``i``."""
        return min(self.nb, self.m - i * self.nb)

    def col_width(self, j: int) -> int:
        """Number of matrix columns in tile column ``j``."""
        return min(self.nb, self.n - j * self.nb)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    @property
    def grid(self) -> tuple[int, int]:
        return (self.p, self.q)

    def __repr__(self) -> str:
        return (f"TiledMatrix(m={self.m}, n={self.n}, nb={self.nb}, "
                f"p={self.p}, q={self.q}, dtype={self.array.dtype})")
