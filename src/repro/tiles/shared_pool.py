"""Shared-memory tile pool for the process-parallel backend (S22).

:class:`~repro.tiles.pool.TilePool` already stores every tile of a
matrix in one C-contiguous ``(p * q, nb, nb)`` stack — the natural
sharding unit for worker *processes*: each kernel task reads and
writes whole slots, DAG edges order every conflicting pair, and the
zero-padding of ragged border tiles is exact (see the pool docs).
:class:`SharedTilePool` keeps that stack in
:mod:`multiprocessing.shared_memory` instead of private pages, so
worker processes operate on the tiles *in place* — only task
descriptors ever cross a queue, never tile data.

:class:`SharedArray` is the underlying primitive (also used for the
process backend's T-factor store): an ndarray over a shared-memory
segment with a picklable ``handle()`` that any process can
:meth:`~SharedArray.attach` to.  Lifecycle: the creating process owns
the segment and unlinks it on :meth:`~SharedArray.close`; attached
views only unmap.  Children started through :mod:`multiprocessing`
(fork or spawn) share the parent's resource tracker, so
attach-side registration is idempotent and the owner's unlink leaves
the tracker clean — no leaked-segment warnings.
"""

from __future__ import annotations

import numpy as np
from multiprocessing import shared_memory

from .layout import TiledMatrix
from .pool import TilePool

__all__ = ["SharedArray", "SharedTilePool"]


class SharedArray:
    """An ndarray in a shared-memory segment, attachable cross-process.

    Parameters
    ----------
    shape : tuple of int
        Array shape.
    dtype : dtype-like
        Element type.

    Attributes
    ----------
    array : ndarray
        The live view; invalid after :meth:`close`.

    Examples
    --------
    >>> sa = SharedArray((2, 3), np.float64)
    >>> sa.array[:] = 7.0
    >>> other = SharedArray.attach(sa.handle())
    >>> float(other.array[1, 2])
    7.0
    >>> other.close(); sa.close()
    """

    def __init__(self, shape, dtype) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._owner = True
        self.array: np.ndarray | None = np.ndarray(
            self.shape, dtype=self.dtype, buffer=self._shm.buf)

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, handle: tuple) -> "SharedArray":
        """Map an existing segment from a :meth:`handle` tuple.

        The attached view never unlinks the segment — closing it only
        unmaps this process's view.
        """
        name, shape, dtype = handle
        self = cls.__new__(cls)
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._shm = shared_memory.SharedMemory(name=name, create=False)
        self._owner = False
        self.array = np.ndarray(self.shape, dtype=self.dtype,
                                buffer=self._shm.buf)
        return self

    def handle(self) -> tuple:
        """Picklable ``(name, shape, dtype-str)`` for :meth:`attach`."""
        return (self._shm.name, self.shape, self.dtype.str)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap the view; the owning side also unlinks the segment.

        Idempotent.  Every ndarray view derived from :attr:`array` must
        be dropped first — a live export keeps the mapping referenced
        and the close raises :class:`BufferError`.
        """
        if self._shm is None:
            return
        self.array = None
        shm, self._shm = self._shm, None
        shm.close()
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # already unlinked by the owner
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        name = self._shm.name if self._shm is not None else "<closed>"
        role = "owner" if self._owner else "attached"
        return (f"SharedArray({name}, shape={self.shape}, "
                f"dtype={self.dtype}, {role})")


class SharedTilePool(TilePool):
    """A :class:`~repro.tiles.pool.TilePool` whose stack other processes
    can map.

    Same gather/scatter/slot semantics as the private pool; the stack
    lives in shared memory, and :meth:`handle` / :meth:`attach_stack`
    move it across process boundaries by name.  The creating process
    owns the segment: close it (or use the pool as a context manager)
    after :meth:`~repro.tiles.pool.TilePool.scatter`.
    """

    def __init__(self, tiled: TiledMatrix):
        # mirror TilePool.__init__ but allocate the stack in shm
        self.tiled = tiled
        self.nb = tiled.nb
        self.p, self.q = tiled.p, tiled.q
        self.ntiles = self.p * self.q
        self._sa = SharedArray((self.ntiles, self.nb, self.nb),
                               tiled.array.dtype)
        self.stack = self._sa.array
        self.stack[...] = 0.0  # shm pages are zero-filled, but be explicit
        self.gather()

    # ------------------------------------------------------------------
    def handle(self) -> tuple:
        """Picklable handle of the stack for :meth:`attach_stack`."""
        return self._sa.handle()

    @staticmethod
    def attach_stack(handle: tuple) -> SharedArray:
        """Worker-side: map the pool's stack from its handle.

        Returns the :class:`SharedArray`; its ``.array`` is the
        ``(ntiles, nb, nb)`` stack, written in place.  Close it when
        the run ends.
        """
        return SharedArray.attach(handle)

    def close(self) -> None:
        """Release the segment (idempotent).  Call after ``scatter()``."""
        self.stack = None
        self._sa.close()

    def __enter__(self) -> "SharedTilePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SharedTilePool(ntiles={self.ntiles}, nb={self.nb}, "
                f"grid={self.p} x {self.q}, "
                f"dtype={self.tiled.array.dtype})")
