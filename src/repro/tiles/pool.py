"""Contiguous tile pool backing the batched execution backend (S20).

:class:`~repro.tiles.layout.TiledMatrix` hands out strided *views* into
one dense array — the right shape for in-place per-tile kernels, but
the wrong one for batched 3-D BLAS: ``np.matmul`` over a
``(batch, nb, nb)`` stack needs the batch axis contiguous, and fancy
indexing over strided views would re-copy tile by tile in Python.

:class:`TilePool` keeps every tile of a tiled matrix in one C-contiguous
``(p * q, nb, nb)`` stack.  Ragged border tiles (``m % nb`` /
``n % nb``) are zero-padded to the full ``nb x nb`` slot — padding with
*zeros* is exact for every kernel in this codebase: a Householder
reflector of ``[x; 0]`` has the same ``tau``/``beta`` and zero entries
over the padding, and block updates leave zero rows/columns zero, so
the valid region of a padded computation is bit-compatible with the
unpadded one (see ``repro.kernels.batched``).

``gather`` copies the matrix into the pool, ``scatter`` writes the
valid regions back; ``take``/``put`` move ``(batch, nb, nb)`` stacks
between the pool and the batched kernels with single C-level fancy
indexing operations.
"""

from __future__ import annotations

import numpy as np

from .layout import TiledMatrix

__all__ = ["TilePool"]


class TilePool:
    """A ``(p * q, nb, nb)`` contiguous stack of a matrix's tiles.

    Parameters
    ----------
    tiled : TiledMatrix
        The tiled matrix the pool mirrors.  The pool owns a *copy* of
        the tile data (gathered at construction); call :meth:`scatter`
        to write results back into the matrix.

    Examples
    --------
    >>> import numpy as np
    >>> tm = TiledMatrix(np.arange(35, dtype=float).reshape(7, 5), nb=4)
    >>> pool = TilePool(tm)
    >>> pool.stack.shape          # 2 x 2 grid of padded 4 x 4 slots
    (4, 4, 4)
    >>> pool.stack[pool.slot(1, 1)][:3, :1].ravel()   # ragged corner tile
    array([24., 29., 34.])
    """

    def __init__(self, tiled: TiledMatrix):
        self.tiled = tiled
        self.nb = tiled.nb
        self.p, self.q = tiled.p, tiled.q
        self.ntiles = self.p * self.q
        self.stack = np.zeros((self.ntiles, self.nb, self.nb),
                              dtype=tiled.array.dtype, order="C")
        self.gather()

    # ------------------------------------------------------------------
    def slot(self, i, j):
        """Stack index of tile ``(i, j)`` (row-major; accepts arrays)."""
        return i * self.q + j

    def gather(self) -> None:
        """Copy every tile of the matrix into the pool (pad with zeros)."""
        nb, st, tm = self.nb, self.stack, self.tiled
        for i in range(self.p):
            hi = tm.row_height(i)
            for j in range(self.q):
                wj = tm.col_width(j)
                s = st[i * self.q + j]
                if hi < nb or wj < nb:
                    s[...] = 0.0
                s[:hi, :wj] = tm.tile(i, j)

    def scatter(self) -> None:
        """Write the valid region of every slot back into the matrix."""
        st, tm = self.stack, self.tiled
        for i in range(self.p):
            hi = tm.row_height(i)
            for j in range(self.q):
                wj = tm.col_width(j)
                tm.tile(i, j)[...] = st[i * self.q + j][:hi, :wj]

    # ------------------------------------------------------------------
    def take(self, slots: np.ndarray) -> np.ndarray:
        """A fresh ``(len(slots), nb, nb)`` stack copied from the pool.

        One C-level fancy-indexing gather; the result is writable and
        independent of the pool until :meth:`put` stores it back.
        """
        return self.stack[np.asarray(slots, dtype=np.intp)]

    def put(self, slots: np.ndarray, batch: np.ndarray) -> None:
        """Store a batch back into the pool slots (inverse of :meth:`take`).

        ``slots`` must be duplicate-free — duplicated slots would make
        the write order-dependent.  The batched executor guarantees
        this: two tasks of one independent (level, kernel) group never
        write the same tile.
        """
        self.stack[np.asarray(slots, dtype=np.intp)] = batch

    def __repr__(self) -> str:
        return (f"TilePool(ntiles={self.ntiles}, nb={self.nb}, "
                f"grid={self.p} x {self.q}, dtype={self.stack.dtype})")
