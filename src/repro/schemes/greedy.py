"""Greedy tiled elimination scheme (S7) — the paper's flagship algorithm.

The tiled algorithm keeps the elimination list of the coarse-grain
Greedy ordering of Cosnard, Muller & Robert [6, 7]; Algorithm 4 of the
paper generates exactly the same (column, round) groups and pairings.
Theorem 1(2): critical path at most ``22q + 6 ceil(log2 p)``;
asymptotically optimal for ``log2 p = q f(q)`` with ``lim f = 0`` —
in particular whenever ``p`` and ``q`` are proportional.

Unlike PlasmaTree, Greedy has **no tuning parameter**.
"""

from __future__ import annotations

from ..coarse.model import coarse_greedy
from .elimination import EliminationList

__all__ = ["greedy"]


def greedy(p: int, q: int) -> EliminationList:
    """Build the Greedy elimination list for a ``p x q`` tile grid."""
    sched = coarse_greedy(p, q)
    return EliminationList(p, q, sched.eliminations, name="greedy")
