"""PlasmaTree elimination scheme (S7): PLASMA's domain-based trees.

Section 3.2: the PLASMA library's tree algorithms trade off between
FlatTree and BinaryTree via a **domain size** parameter ``BS``
(1 <= BS <= p):

* rows of each panel column are cut into domains of ``BS`` consecutive
  rows, allocated from the diagonal row downwards (the bottom domain
  holds the remainder and shrinks as the factorization progresses
  through the columns, until there is one less domain — unlike Hadri et
  al. [10] where the *top* domain shrinks);
* within a domain the first row acts as a local panel and zeroes all
  other rows of the domain, flat-tree style;
* the domain heads are then merged by a binary tree reduction.

``BS = 1`` degenerates to BinaryTree and ``BS = p`` to FlatTree.
Choosing the best ``BS`` requires an exhaustive search (the paper does
this; so does :func:`repro.bench.autotune.best_plasma_bs`).
"""

from __future__ import annotations

from .elimination import Elimination, EliminationList

__all__ = ["plasma_tree"]


def plasma_tree(p: int, q: int, bs: int) -> EliminationList:
    """Build the PlasmaTree elimination list with domain size ``bs``.

    Parameters
    ----------
    p, q : int
        Tile-grid dimensions.
    bs : int
        Domain size, ``1 <= bs <= p``.
    """
    if not (1 <= bs <= p):
        raise ValueError(f"domain size must satisfy 1 <= BS <= p, got {bs}")
    elims: list[Elimination] = []
    for k in range(min(p, q)):
        # domains of bs rows starting at the panel row; the bottom one
        # keeps the remainder
        heads = list(range(k, p, bs))
        for h in heads:
            for i in range(h + 1, min(h + bs, p)):
                elims.append(Elimination(i, h, k))
        # binary tree merge of the domain heads
        stride = 1
        while stride < len(heads):
            for idx in range(0, len(heads) - stride, 2 * stride):
                elims.append(Elimination(heads[idx + stride], heads[idx], k))
            stride *= 2
    return EliminationList(p, q, elims, name=f"plasma-tree(BS={bs})")
