"""Fibonacci tiled elimination scheme (S7) — one of the paper's two new
algorithms.

The tiled algorithm keeps the elimination list of the coarse-grain
Fibonacci ordering of Modi & Clarke [13] (Section 3.2: "each
coarse-grain algorithm can be transformed into a tiled algorithm,
simply by keeping the same elimination list").  Theorem 1(2): critical
path at most ``22q + 6 ceil(sqrt(2p))``; asymptotically optimal for
``p = q^2 f(q)`` with ``lim f = 0``.
"""

from __future__ import annotations

from ..coarse.model import coarse_fibonacci
from .elimination import EliminationList

__all__ = ["fibonacci"]


def fibonacci(p: int, q: int) -> EliminationList:
    """Build the Fibonacci elimination list for a ``p x q`` tile grid."""
    sched = coarse_fibonacci(p, q)
    return EliminationList(p, q, sched.eliminations, name="fibonacci")
