"""Elimination trees / tiled QR algorithms (S6-S8).

Static schemes build an :class:`~repro.schemes.elimination.EliminationList`
directly; dynamic schemes (Asap, Grasap) derive one from an
unbounded-processor policy simulation.
"""

from .asap import AsapResult, asap, grasap
from .binary_tree import binary_tree
from .elimination import Elimination, EliminationList
from .fibonacci import fibonacci
from .flat_tree import flat_tree
from .greedy import greedy
from .hadri_tree import hadri_tree
from .plasma_tree import plasma_tree
from .registry import (SCHEME_ALIASES, SCHEMES, available_schemes,
                       canonical_scheme_spec, get_scheme, parse_scheme_spec)

__all__ = [
    "Elimination",
    "EliminationList",
    "flat_tree",
    "binary_tree",
    "fibonacci",
    "greedy",
    "hadri_tree",
    "plasma_tree",
    "asap",
    "grasap",
    "AsapResult",
    "SCHEMES",
    "SCHEME_ALIASES",
    "available_schemes",
    "get_scheme",
    "parse_scheme_spec",
    "canonical_scheme_spec",
]
