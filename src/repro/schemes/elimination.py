"""Elimination lists: the formal definition of a tiled QR algorithm (S6).

Section 2.2 of the paper: *any* tiled QR algorithm is characterized by
its **elimination list** — the ordered sequence of transformations
``elim(i, piv(i,k), k)`` that zero out every tile below the diagonal.
The list is valid iff, for each entry:

1. **rows ready** — all tiles left of the panel in rows ``i`` and
   ``piv`` have already been zeroed out (their eliminations precede
   this one in the list), and
2. **pivot alive** — tile ``(piv, k)`` has not been zeroed out yet
   (its own elimination, if any, follows this one).

This module provides the :class:`EliminationList` container with
validation, the Lemma-1 canonicalization (rewrite the list so that
every elimination satisfies ``i > piv`` without changing the execution
time), and small analysis helpers.

All indices are **0-based** (rows ``0..p-1``, columns ``0..q-1``); the
paper's tables use 1-based indices, so its ``elim(2, 1, 1)`` is our
``Elimination(row=1, piv=0, col=0)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

__all__ = ["Elimination", "EliminationList"]


class Elimination(NamedTuple):
    """One orthogonal transformation ``elim(row, piv, col)``.

    Zeroes tile ``(row, col)`` by combining rows ``row`` and ``piv``
    (0-based).
    """

    row: int
    piv: int
    col: int

    def __str__(self) -> str:  # paper-style 1-based rendering
        return f"elim({self.row + 1},{self.piv + 1},{self.col + 1})"


class EliminationList:
    """An ordered elimination list for a ``p x q`` tile matrix.

    Parameters
    ----------
    p, q : int
        Tile-grid dimensions, ``p >= q >= 1``.
    eliminations : iterable of Elimination
        Ordered transformations.  Use :meth:`validate` to check the
        Section 2.2 conditions.
    name : str
        Human-readable algorithm name (for reports and traces).
    """

    def __init__(
        self,
        p: int,
        q: int,
        eliminations: Iterable[Elimination | tuple[int, int, int]],
        name: str = "custom",
    ):
        if q < 1 or p < q:
            raise ValueError(f"need p >= q >= 1, got p={p}, q={q}")
        self.p = p
        self.q = q
        self.name = name
        self.eliminations: list[Elimination] = [
            e if isinstance(e, Elimination) else Elimination(*e) for e in eliminations
        ]

    def __iter__(self) -> Iterator[Elimination]:
        return iter(self.eliminations)

    def __len__(self) -> int:
        return len(self.eliminations)

    def __repr__(self) -> str:
        return (f"EliminationList({self.name!r}, p={self.p}, q={self.q}, "
                f"{len(self.eliminations)} eliminations)")

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def expected_count(self) -> int:
        """Number of sub-diagonal tiles: ``sum_k (p - 1 - k)`` for each panel."""
        return sum(self.p - 1 - k for k in range(min(self.p, self.q)))

    def validate(self) -> None:
        """Check the two Section 2.2 validity conditions; raise on failure.

        Also checks completeness (every sub-diagonal tile zeroed exactly
        once) and index sanity.
        """
        p, q = self.p, self.q
        seen: dict[tuple[int, int], int] = {}
        for pos, e in enumerate(self.eliminations):
            if not (0 <= e.col < q):
                raise ValueError(f"{e} at position {pos}: column out of range")
            if not (e.col < e.row < p):
                raise ValueError(f"{e} at position {pos}: must zero below diagonal")
            if not (0 <= e.piv < p) or e.piv == e.row:
                raise ValueError(f"{e} at position {pos}: bad pivot")
            key = (e.row, e.col)
            if key in seen:
                raise ValueError(f"{e} at position {pos}: tile zeroed twice "
                                 f"(first at position {seen[key]})")
            seen[key] = pos
        missing = [(i, k) for k in range(min(p, q)) for i in range(k + 1, p)
                   if (i, k) not in seen]
        if missing:
            raise ValueError(f"{len(missing)} sub-diagonal tiles never zeroed, "
                             f"e.g. {missing[:5]}")
        # condition 1: rows ready — every elimination of (i, k') and
        # (piv, k') for k' < k precedes; condition 2: pivot alive.
        for pos, e in enumerate(self.eliminations):
            for r in (e.row, e.piv):
                for kp in range(min(e.col, r)):
                    # only sub-diagonal tiles need zeroing: (r, kp), r > kp
                    if r > kp and seen[(r, kp)] > pos:
                        raise ValueError(
                            f"{e} at position {pos}: row {r + 1} not ready — "
                            f"tile ({r + 1},{kp + 1}) zeroed later"
                        )
            pkey = (e.piv, e.col)
            if pkey in seen and seen[pkey] < pos:
                raise ValueError(
                    f"{e} at position {pos}: pivot row {e.piv + 1} already "
                    f"zeroed in column {e.col + 1}"
                )

    # ------------------------------------------------------------------
    # Lemma 1 — remove reverse eliminations
    # ------------------------------------------------------------------
    def canonicalize(self) -> "EliminationList":
        """Return an equivalent list where every elimination has ``row > piv``.

        Lemma 1: any generic tiled algorithm can be modified, without
        changing its execution time, so that each tile is zeroed out by
        a row *above* it.  Column by column, the rewrite exchanges the
        roles of the largest reverse pivot ``i0`` and the row ``i1`` of
        its first *reverse* use, from that position onward (the two
        rows are symmetric in the kernel DAG from there on, so the
        schedule is untouched).  Earlier *normal* uses of ``i0`` as a
        pivot are left alone — restricting the swap to the reverse
        suffix is what guarantees the largest reverse pivot strictly
        decreases, i.e. termination (the paper's proof sketch glosses
        over pivots with mixed normal/reverse uses).
        """
        elims = list(self.eliminations)
        for k in range(self.q):
            while True:
                # largest row index serving as a pivot *below* its target
                reverse = [(pos, e) for pos, e in enumerate(elims)
                           if e.col == k and e.row < e.piv]
                if not reverse:
                    break
                i0 = max(e.piv for _, e in reverse)
                p0, first = min((pos, e) for pos, e in reverse if e.piv == i0)
                i1 = first.row  # i1 < i0 by construction
                # Exchange the roles of rows i0 and i1 from position p0
                # onward — in column k AND in every later column, since
                # the rows' zeroing order (hence their readiness for
                # subsequent panels) swaps with them.  Eliminations of
                # earlier columns never reference i0/i1 after p0 (both
                # rows were already column-(k-1)-ready before p0), so a
                # uniform label swap is exact and keeps the kernel DAG,
                # and therefore the execution time, unchanged.
                swap = {i0: i1, i1: i0}
                for pos in range(p0, len(elims)):
                    e = elims[pos]
                    if e.col < k:
                        continue
                    if e.row in swap or e.piv in swap:
                        elims[pos] = Elimination(
                            swap.get(e.row, e.row), swap.get(e.piv, e.piv),
                            e.col)
        out = EliminationList(self.p, self.q, elims, name=f"{self.name}-canonical")
        return out

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def column(self, k: int) -> list[Elimination]:
        """Eliminations of panel column ``k``, in list order."""
        return [e for e in self.eliminations if e.col == k]

    def pivots(self, k: int) -> set[int]:
        """Rows serving as pivots in column ``k``."""
        return {e.piv for e in self.eliminations if e.col == k}

    def pivot_of(self) -> dict[tuple[int, int], int]:
        """Map ``(row, col) -> piv`` for every zeroed tile."""
        return {(e.row, e.col): e.piv for e in self.eliminations}
