"""Semi-Parallel / Fully-Parallel trees of Hadri et al. [10, 11] (S7).

Section 4 of the paper: "Part of our comprehensive study also involved
comparisons made to the Semi-Parallel Tile and Fully-Parallel Tile CAQR
algorithms found in [10] ...  As with PLASMA, the tuning parameter BS
controls the domain size upon which a flat tree is used to zero out
tiles below the root tile within the domain and a binary tree is used
to merge these domains.  **Unlike PLASMA, it is not the bottom domain
whose size decreases as the algorithm progresses through the columns,
but instead is the top domain.**  In this study, we found that the
PLASMA algorithms performed identically or better".

So the only structural difference from
:func:`repro.schemes.plasma_tree.plasma_tree` is the domain anchoring:
boundaries are fixed at multiples of ``BS`` from the top of the matrix,
so as the panel moves down it is the *top* domain that shrinks.  The
paper's "Semi-Parallel" flavour runs this tree on TS kernels (domains
eliminate squares, merges join triangles) and "Fully-Parallel" is its
TT-kernel mapping — in this library that is the ``family`` argument of
:func:`repro.dag.build_dag`, exactly the conversion of Section 2.1.

The benchmark ``benchmarks/bench_hadri_comparison.py`` reproduces the
paper's (unreported-in-detail) finding that PlasmaTree is never worse.
"""

from __future__ import annotations

from .elimination import Elimination, EliminationList

__all__ = ["hadri_tree"]


def hadri_tree(p: int, q: int, bs: int) -> EliminationList:
    """Build the Hadri et al. domain tree with top-anchored domains.

    Parameters
    ----------
    p, q : int
        Tile-grid dimensions.
    bs : int
        Domain size, ``1 <= bs <= p``; domain boundaries sit at fixed
        multiples of ``bs`` from row 0.
    """
    if not (1 <= bs <= p):
        raise ValueError(f"domain size must satisfy 1 <= BS <= p, got {bs}")
    elims: list[Elimination] = []
    for k in range(min(p, q)):
        # fixed boundaries: domain j covers rows [j*bs, (j+1)*bs) n [k, p)
        first_dom = k // bs
        heads = []
        for j in range(first_dom, -(-p // bs)):
            lo = max(k, j * bs)
            hi = min(p, (j + 1) * bs)
            if lo >= hi:
                continue
            heads.append(lo)
            for i in range(lo + 1, hi):
                elims.append(Elimination(i, lo, k))
        stride = 1
        while stride < len(heads):
            for idx in range(0, len(heads) - stride, 2 * stride):
                elims.append(Elimination(heads[idx + stride], heads[idx], k))
            stride *= 2
    return EliminationList(p, q, elims, name=f"hadri-tree(BS={bs})")
