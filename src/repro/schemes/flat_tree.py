"""FlatTree (= Sameh-Kuck on tiles) elimination scheme (S7).

In each panel column the diagonal row eliminates every lower row,
top-down.  This is the original PLASMA tiled QR ordering of Buttari et
al. [4, 5]; with TT kernels the paper calls it ``FlatTree``, with TS
kernels ``TS-FlatTree``.  Critical path (Theorem 1(1) / Proposition 2):

======  ==================  ==================
shape    TT kernels          TS kernels
======  ==================  ==================
q = 1    ``2p + 2``          ``6p - 2``
p > q    ``6p + 16q - 22``   ``12p + 18q - 32``
p = q    ``22p - 24``        ``30p - 34``
======  ==================  ==================
"""

from __future__ import annotations

from .elimination import Elimination, EliminationList

__all__ = ["flat_tree"]


def flat_tree(p: int, q: int) -> EliminationList:
    """Build the FlatTree elimination list for a ``p x q`` tile grid."""
    elims = [
        Elimination(i, k, k)
        for k in range(min(p, q))
        for i in range(k + 1, p)
    ]
    return EliminationList(p, q, elims, name="flat-tree")
