"""Asap and Grasap(k) — the paper's dynamic tile-level algorithms (S8).

Section 3.2: **Asap** is the counterpart of Greedy at the *tile* level.
In each column and at each step it starts eliminating a tile as soon as
at least two rows are *ready* (triangularized by GEQRT, not yet zeroed,
not busy in another TTQRT).  When ``s`` eliminations can start
simultaneously the ``2s`` bottommost ready rows are paired exactly as
in Fibonacci/Greedy: the ready row closest to the diagonal among the
pivot half eliminates the matching row of the bottom half.

The paper's (unexpected) findings, which the golden-value tests in
``tests/schemes/test_table4.py`` reproduce digit for digit:

* Greedy is **not** optimal on tiles: Asap beats it on a 15 x 2 grid;
* Asap is not optimal either: Greedy beats it on 15 x 3;
* **Grasap(k)** — Greedy on columns ``0..q-k-1``, then Asap on the last
  ``k`` columns — can beat both (Grasap(1) finishes 15 x 3 at
  time-step 62 vs 64 for Greedy);
* on large square grids Greedy generally outperforms Asap (Table 4b).

Because Asap's decisions depend on kernel completion times, it cannot
be expressed as a static elimination list up front; this module runs an
incremental unbounded-processor event simulation and returns both the
resulting list (which can then be replayed through the static DAG
builder — a cross-check the test suite performs) and its time table.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..kernels.costs import KERNEL_WEIGHTS, Kernel
from .elimination import Elimination, EliminationList
from .greedy import greedy

__all__ = ["AsapResult", "asap", "grasap"]

_W_GEQRT = KERNEL_WEIGHTS[Kernel.GEQRT]
_W_UNMQR = KERNEL_WEIGHTS[Kernel.UNMQR]
_W_TTQRT = KERNEL_WEIGHTS[Kernel.TTQRT]
_W_TTMQR = KERNEL_WEIGHTS[Kernel.TTMQR]


@dataclass
class AsapResult:
    """Outcome of a dynamic-policy run (unbounded processors)."""

    elims: EliminationList
    zero_table: np.ndarray  #: finish time of each tile's TTQRT
    makespan: float  #: finish time of the last kernel overall


@dataclass
class _Column:
    policy: str  # "asap" or "scripted"
    script: list[Elimination] = field(default_factory=list)
    pool: set[int] = field(default_factory=set)
    remaining: int = 0


class _TimedFlow:
    """Dataflow resource timestamps (RAW/WAR/WAW) for incremental emission."""

    def __init__(self) -> None:
        self.w: dict[object, float] = {}
        self.r: dict[object, float] = {}

    def start_for(self, reads, writes) -> float:
        s = 0.0
        for res in reads:
            s = max(s, self.w.get(res, 0.0))
        for res in writes:
            s = max(s, self.w.get(res, 0.0), self.r.get(res, 0.0))
        return s

    def commit(self, reads, writes, finish: float) -> None:
        for res in reads:
            if finish > self.r.get(res, 0.0):
                self.r[res] = finish
        for res in writes:
            self.w[res] = finish
            self.r[res] = 0.0


def _run_dynamic(
    p: int, q: int, policies: list[str], name: str, pairing: str = "bottom"
) -> AsapResult:
    """Run the incremental unbounded-processor simulation.

    ``policies[k]`` selects, per column, Asap pairing or the scripted
    Greedy pairing (for Grasap's prefix columns).

    ``pairing`` resolves the odd-ready-count ambiguity in the paper's
    description ("Asap pairs the 2s rows just as Fibonacci and
    Greedy"): with ``2s+1`` ready rows, ``"bottom"`` leaves the row
    closest to the diagonal unpaired (the Greedy/Fibonacci convention),
    while ``"spread"`` pairs the first ``s`` ready rows with the last
    ``s``, leaving the middle row unpaired.
    """
    qq = min(p, q)
    flow = _TimedFlow()
    makespan = 0.0
    zero_table = np.zeros((p, q))
    out: list[Elimination] = []

    greedy_cols: dict[int, list[Elimination]] = {}
    if any(pol == "scripted" for pol in policies):
        for e in greedy(p, q).eliminations:
            greedy_cols.setdefault(e.col, []).append(e)

    cols = [
        _Column(policy=policies[k], script=greedy_cols.get(k, []),
                remaining=p - 1 - k)
        for k in range(qq)
    ]

    def emit(kernel, reads, writes, weight) -> float:
        nonlocal makespan
        s = flow.start_for(reads, writes)
        f = s + weight
        flow.commit(reads, writes, f)
        if f > makespan:
            makespan = f
        return f

    events: list[tuple[float, int, int, int]] = []  # (time, seq, col, row)
    seq = 0

    def push(t: float, k: int, i: int) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, k, i))
        seq += 1

    def emit_geqrt(i: int, k: int) -> None:
        f = emit(Kernel.GEQRT, [], [("R", i, k), ("V", i, k, "ge")], _W_GEQRT)
        for j in range(k + 1, q):
            emit(Kernel.UNMQR, [("V", i, k, "ge")], [("R", i, j)], _W_UNMQR)
        push(f, k, i)

    def launch(e: Elimination, t: float) -> None:
        k = e.col
        f = emit(Kernel.TTQRT, [],
                 [("R", e.piv, k), ("R", e.row, k), ("V", e.row, k, "tt")],
                 _W_TTQRT)
        zero_table[e.row, k] = f
        out.append(e)
        cols[k].remaining -= 1
        for j in range(k + 1, q):
            emit(Kernel.TTMQR, [("V", e.row, k, "tt")],
                 [("R", e.piv, j), ("R", e.row, j)], _W_TTMQR)
        # pivot becomes ready again when its TTQRT completes
        push(f, k, e.piv)
        # the eliminated row moves on to the next column (if any)
        if k + 1 < qq and e.row >= k + 1:
            emit_geqrt(e.row, k + 1)

    for i in range(p):
        emit_geqrt(i, 0)

    active = sum(c.remaining for c in cols)
    while active > 0:
        if not events:
            raise RuntimeError("dynamic policy stalled with work remaining")
        t, _, k, i = heapq.heappop(events)
        batch = [(k, i)]
        while events and events[0][0] == t:
            _, _, k2, i2 = heapq.heappop(events)
            batch.append((k2, i2))
        for k2, i2 in batch:
            cols[k2].pool.add(i2)
        for k2 in range(qq):
            col = cols[k2]
            if col.remaining <= 0:
                continue
            if col.policy == "asap":
                n = len(col.pool)
                z = min(n // 2, col.remaining)
                if z >= 1:
                    rows = sorted(col.pool)
                    if pairing == "bottom":
                        pivots = rows[n - 2 * z : n - z]
                    else:  # "spread": leave the middle row out when odd
                        pivots = rows[:z]
                    targets = rows[n - z :]
                    for pv, tg in zip(pivots, targets):
                        col.pool.discard(pv)
                        col.pool.discard(tg)
                        launch(Elimination(tg, pv, k2), t)
                        active -= 1
            else:  # scripted (Greedy prefix for Grasap)
                progressed = True
                while progressed:
                    progressed = False
                    for e in col.script:
                        if e.row in col.pool and e.piv in col.pool:
                            col.script.remove(e)
                            col.pool.discard(e.row)
                            col.pool.discard(e.piv)
                            launch(e, t)
                            active -= 1
                            progressed = True
                            break
    elims = EliminationList(p, q, out, name=name)
    return AsapResult(elims=elims, zero_table=zero_table, makespan=makespan)


def asap(p: int, q: int, pairing: str = "bottom") -> AsapResult:
    """Run the Asap algorithm on a ``p x q`` grid (unbounded processors)."""
    qq = min(p, q)
    return _run_dynamic(p, q, ["asap"] * qq, name="asap", pairing=pairing)


def grasap(p: int, q: int, k: int, pairing: str = "bottom") -> AsapResult:
    """Run Grasap(k): Greedy on columns ``0..q-k-1``, Asap on the last ``k``.

    ``grasap(p, q, 0)`` is Greedy; ``grasap(p, q, q)`` is Asap.
    """
    qq = min(p, q)
    if not (0 <= k <= qq):
        raise ValueError(f"need 0 <= k <= min(p, q), got k={k}")
    policies = ["scripted"] * (qq - k) + ["asap"] * k
    return _run_dynamic(p, q, policies, name=f"grasap({k})", pairing=pairing)
