"""Scheme registry: resolve algorithm names to elimination lists (S7/S8).

The registry is the single entry point the public API, the benchmark
harness and the examples use to obtain an algorithm:

>>> from repro.schemes import get_scheme
>>> get_scheme("greedy", 8, 4).name
'greedy'
>>> get_scheme("plasma-tree", 8, 4, bs=3).name
'plasma-tree(BS=3)'
>>> get_scheme("plasma(bs=3)", 8, 4).name   # inline parameter spec
'plasma-tree(BS=3)'

Scheme *specs* — ``"plasma(bs=5)"``, ``"grasap(k=2)"`` — bundle the
name and its parameters in one string.  :func:`parse_scheme_spec` is
the only parser for them; the CLI, the plan cache and ``get_scheme``
all route through it, so parameter parsing lives in exactly one place.

Dynamic algorithms (``asap``, ``grasap``) are resolved by running the
unbounded-processor policy simulation and returning the elimination
list it produced; replaying that list through the static DAG builder
yields the same schedule (a property the tests verify).
"""

from __future__ import annotations

import re
from typing import Callable

from .asap import asap, grasap
from .binary_tree import binary_tree
from .elimination import EliminationList
from .fibonacci import fibonacci
from .flat_tree import flat_tree
from .greedy import greedy
from .hadri_tree import hadri_tree
from .plasma_tree import plasma_tree

__all__ = ["SCHEMES", "SCHEME_ALIASES", "get_scheme", "available_schemes",
           "parse_scheme_spec", "canonical_scheme_spec"]


def _asap_list(p: int, q: int) -> EliminationList:
    return asap(p, q).elims


def _grasap_list(p: int, q: int, k: int = 1) -> EliminationList:
    return grasap(p, q, k).elims


SCHEMES: dict[str, Callable[..., EliminationList]] = {
    "flat-tree": flat_tree,
    "binary-tree": binary_tree,
    "fibonacci": fibonacci,
    "greedy": greedy,
    "plasma-tree": plasma_tree,
    "hadri-tree": hadri_tree,
    "asap": _asap_list,
    "grasap": _grasap_list,
}

#: shorthand names accepted by :func:`parse_scheme_spec`.  Aliases
#: normalize *before* the cache key is computed, so an alias and its
#: target always share one plan signature ("sameh-kuck" used to live
#: in SCHEMES directly and hashed separately from "flat-tree").
SCHEME_ALIASES: dict[str, str] = {
    "plasma": "plasma-tree",
    "hadri": "hadri-tree",
    "binary": "binary-tree",
    "flat": "flat-tree",
    "sameh-kuck": "flat-tree",  # the paper renames Sameh-Kuck to FlatTree
}

_SPEC_RE = re.compile(r"\s*([A-Za-z0-9_\-]+)\s*(?:\((.*)\)\s*)?")


def _split_params(body: str, spec: str) -> list[str]:
    """Split a spec parameter body on *top-level* commas.

    Commas inside quotes or parentheses do not split, so nested specs
    parse as single values: ``"p=8,scheme='plasma(bs=5)'"`` → two
    items.  Unbalanced quoting/nesting is a malformed spec.
    """
    items: list[str] = []
    depth, quote, start = 0, "", 0
    for pos, ch in enumerate(body):
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "'\"":
            quote = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(
                    f"unbalanced parentheses in scheme spec {spec!r}")
        elif ch == "," and depth == 0:
            items.append(body[start:pos])
            start = pos + 1
    if quote or depth:
        raise ValueError(
            f"unterminated {'quote' if quote else 'parenthesis'} in "
            f"scheme spec {spec!r}")
    items.append(body[start:])
    return items


def _parse_value(text: str):
    """Parameter value: int, then float, then bare/quoted string."""
    text = text.strip()
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            pass
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    return text


def parse_scheme_spec(spec: str) -> tuple[str, dict]:
    """Parse a scheme spec into ``(canonical_name, params)``.

    The single place scheme parameters are parsed:

    >>> parse_scheme_spec("plasma(bs=5)")
    ('plasma-tree', {'bs': 5})
    >>> parse_scheme_spec("greedy")
    ('greedy', {})

    Names are case-insensitive; underscores normalize to hyphens;
    the shorthands in :data:`SCHEME_ALIASES` expand (``plasma`` →
    ``plasma-tree``).  Parameters are a comma-separated ``key=value``
    list; values parse as int, float, or string.  The name is *not*
    checked against the registry — :func:`get_scheme` does that — so
    the parser also serves externally defined schemes.
    """
    if not isinstance(spec, str):
        raise TypeError(f"scheme spec must be a string, got "
                        f"{type(spec).__name__}")
    m = _SPEC_RE.fullmatch(spec)
    if m is None:
        raise ValueError(f"malformed scheme spec {spec!r}; expected "
                         "'name' or 'name(key=value, ...)'")
    name = m.group(1).lower().replace("_", "-")
    name = SCHEME_ALIASES.get(name, name)
    params: dict = {}
    body = m.group(2)
    if body and body.strip():
        for item in _split_params(body, spec):
            if "=" not in item:
                raise ValueError(
                    f"malformed parameter {item.strip()!r} in scheme spec "
                    f"{spec!r}; expected 'key=value'")
            key, _, value = item.partition("=")
            key = key.strip().lower()
            if not key.isidentifier():
                raise ValueError(
                    f"bad parameter name {key!r} in scheme spec {spec!r}")
            params[key] = _parse_value(value)
    return name, params


def canonical_scheme_spec(name: str, params: dict | None = None) -> str:
    """Render ``(name, params)`` back into a normalized spec string.

    Round-trips with :func:`parse_scheme_spec` (parameters sorted by
    key), which makes it a stable cache-key component.
    """
    base, spec_params = parse_scheme_spec(name)
    merged = {**spec_params, **(params or {})}
    if not merged:
        return base
    body = ",".join(f"{k}={merged[k]!r}" if isinstance(merged[k], str)
                    else f"{k}={merged[k]}" for k in sorted(merged))
    return f"{base}({body})"


def available_schemes() -> list[str]:
    """Canonical names accepted by :func:`get_scheme`.

    Deterministically sorted (ascending), so sweeps and reports are
    reproducible run to run.  Aliases (:data:`SCHEME_ALIASES`) and
    inline parameter specs are accepted by :func:`get_scheme` but not
    listed here.
    """
    return sorted(SCHEMES)


def get_scheme(name: str, p: int, q: int, **params) -> EliminationList:
    """Build the elimination list of algorithm ``name`` for a ``p x q`` grid.

    Parameters
    ----------
    name : str
        One of :func:`available_schemes`, an alias, or a full spec such
        as ``"plasma(bs=5)"``; ``plasma-tree`` requires a ``bs``
        (domain size) and ``grasap`` accepts ``k`` (number of trailing
        Asap columns, default 1).
    p, q : int
        Tile-grid dimensions, ``p >= q``.
    **params
        Scheme-specific parameters; they override identically named
        parameters given inline in the spec.
    """
    base, spec_params = parse_scheme_spec(name)
    merged = {**spec_params, **params}
    try:
        factory = SCHEMES[base]
    except KeyError:
        raise ValueError(
            f"unknown scheme {base!r}; available: {available_schemes()}"
        ) from None
    return factory(p, q, **merged)
