"""Scheme registry: resolve algorithm names to elimination lists (S7/S8).

The registry is the single entry point the public API, the benchmark
harness and the examples use to obtain an algorithm:

>>> from repro.schemes import get_scheme
>>> get_scheme("greedy", 8, 4).name
'greedy'
>>> get_scheme("plasma-tree", 8, 4, bs=3).name
'plasma-tree(BS=3)'

Dynamic algorithms (``asap``, ``grasap``) are resolved by running the
unbounded-processor policy simulation and returning the elimination
list it produced; replaying that list through the static DAG builder
yields the same schedule (a property the tests verify).
"""

from __future__ import annotations

from typing import Callable

from .asap import asap, grasap
from .binary_tree import binary_tree
from .elimination import EliminationList
from .fibonacci import fibonacci
from .flat_tree import flat_tree
from .greedy import greedy
from .hadri_tree import hadri_tree
from .plasma_tree import plasma_tree

__all__ = ["SCHEMES", "get_scheme", "available_schemes"]


def _asap_list(p: int, q: int) -> EliminationList:
    return asap(p, q).elims


def _grasap_list(p: int, q: int, k: int = 1) -> EliminationList:
    return grasap(p, q, k).elims


SCHEMES: dict[str, Callable[..., EliminationList]] = {
    "flat-tree": flat_tree,
    "sameh-kuck": flat_tree,  # the paper renames Sameh-Kuck to FlatTree
    "binary-tree": binary_tree,
    "fibonacci": fibonacci,
    "greedy": greedy,
    "plasma-tree": plasma_tree,
    "hadri-tree": hadri_tree,
    "asap": _asap_list,
    "grasap": _grasap_list,
}


def available_schemes() -> list[str]:
    """Names accepted by :func:`get_scheme`."""
    return sorted(SCHEMES)


def get_scheme(name: str, p: int, q: int, **params) -> EliminationList:
    """Build the elimination list of algorithm ``name`` for a ``p x q`` grid.

    Parameters
    ----------
    name : str
        One of :func:`available_schemes`; ``plasma-tree`` requires a
        ``bs`` keyword (domain size) and ``grasap`` accepts ``k``
        (number of trailing Asap columns, default 1).
    p, q : int
        Tile-grid dimensions, ``p >= q``.
    **params
        Scheme-specific parameters.
    """
    try:
        factory = SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; available: {available_schemes()}"
        ) from None
    return factory(p, q, **params)
