"""BinaryTree elimination scheme (S7).

In each panel column the sub-diagonal rows are reduced by a binary
tree: round ``r`` pairs rows at stride ``2^(r-1)``.  Best for ``q = 1``
(tall and skinny), but Proposition 1 shows the critical path is
``6q log2 p + o(q log2 p)`` — not asymptotically optimal for general
shapes, because consecutive columns cannot pipeline as tightly as in
Fibonacci/Greedy.
"""

from __future__ import annotations

from .elimination import Elimination, EliminationList

__all__ = ["binary_tree"]


def binary_tree(p: int, q: int) -> EliminationList:
    """Build the BinaryTree elimination list for a ``p x q`` tile grid."""
    elims: list[Elimination] = []
    for k in range(min(p, q)):
        stride = 1
        while k + stride < p:
            # pair (base, base + stride) for bases aligned to 2*stride
            base = k
            while base + stride < p:
                elims.append(Elimination(base + stride, base, k))
                base += 2 * stride
            stride *= 2
    return EliminationList(p, q, elims, name="binary-tree")
