"""The coarse-grain model of the 70s/80s Givens-ordering literature (S9).

Section 3.1 of the paper.  In this model the time unit is one
orthogonal transformation across two matrix rows, independent of row
length; an algorithm assigns each sub-diagonal entry ``(i, k)`` a
time-step ``coarse(i, k)`` at which it is zeroed, such that the two
rows of each rotation are free and ready.

Three classical orderings are implemented:

* **Sameh-Kuck** [15] — the panel row eliminates everything, top-down:
  ``coarse(i, k) = i + k`` (0-based), critical path ``p + q - 2``.
* **Fibonacci** [13] — the Fibonacci scheme of order 1; column 0 zeroes
  ``x, x-1, ...`` entries per step where ``x`` is the least integer
  with ``x(x+1)/2 >= p - 1``; column ``k`` repeats column ``k-1``
  shifted down one row and two steps later.  Critical path
  ``x + 2q - 2``.
* **Greedy** [6, 7] — at each step, in each column, zero as many
  entries as possible, bottommost first.  Optimal in this model.

Each function returns a :class:`CoarseSchedule` carrying both the
time-step table and the elimination pairing (which the tiled
algorithms of Section 3.2 reuse verbatim).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..schemes.elimination import Elimination

__all__ = [
    "CoarseSchedule",
    "coarse_sameh_kuck",
    "coarse_fibonacci",
    "coarse_greedy",
    "coarse_critical_path",
    "fibonacci_x",
]


@dataclass
class CoarseSchedule:
    """A coarse-grain ordering: time-step table plus elimination pairing.

    Attributes
    ----------
    p, q : int
        Grid dimensions.
    steps : ndarray, shape (p, q), int
        ``steps[i, k]`` is the time-step at which entry ``(i, k)`` is
        zeroed (0 for entries on/above the diagonal).
    eliminations : list of Elimination
        The pairing, ordered by ``(col, step, row)`` — a valid
        elimination list order.
    name : str
    """

    p: int
    q: int
    name: str
    steps: np.ndarray
    eliminations: list[Elimination] = field(default_factory=list)

    @property
    def critical_path(self) -> int:
        """Last time-step used (the coarse-grain makespan)."""
        return int(self.steps.max())

    def table(self) -> np.ndarray:
        """The paper's Table-2-style view (0 above the diagonal)."""
        return self.steps


def _check_pq(p: int, q: int) -> None:
    if q < 1 or p < q:
        raise ValueError(f"need p >= q >= 1, got p={p}, q={q}")


def fibonacci_x(p: int) -> int:
    """Least integer ``x`` with ``x(x+1)/2 >= p - 1`` (column-0 makespan)."""
    if p <= 1:
        return 0
    return math.ceil((math.sqrt(8 * (p - 1) + 1) - 1) / 2)


def _finish(p: int, q: int, name: str, steps: np.ndarray,
            pairing: list[tuple[int, int, int, int]]) -> CoarseSchedule:
    """Sort the pairing into a valid list order and build the schedule."""
    pairing.sort(key=lambda t: (t[0], t[1], t[2]))  # (col, step, row)
    elims = [Elimination(row, piv, col) for col, _step, row, piv in pairing]
    return CoarseSchedule(p=p, q=q, name=name, steps=steps, eliminations=elims)


def coarse_sameh_kuck(p: int, q: int) -> CoarseSchedule:
    """Sameh-Kuck ordering: ``elim(i, k, k)`` top-down in each column."""
    _check_pq(p, q)
    steps = np.zeros((p, q), dtype=np.int64)
    pairing: list[tuple[int, int, int, int]] = []
    for k in range(min(p, q)):
        for i in range(k + 1, p):
            s = i + k  # 1-based: i + k - 2
            steps[i, k] = s
            pairing.append((k, s, i, k))
    return _finish(p, q, "sameh-kuck", steps, pairing)


def _fibonacci_col0_steps(p: int) -> list[int]:
    """Column-0 time-steps of rows ``1..p-1`` (0-based), Fibonacci order 1.

    ``coarse(i, 0) = x - y + 1`` with ``y`` the least integer such that
    ``i <= y(y+1)/2`` (0-based ``i``).
    """
    x = fibonacci_x(p)
    out = []
    for i in range(1, p):
        y = math.ceil((math.sqrt(8 * i + 1) - 1) / 2)
        out.append(x - y + 1)
    return out


def coarse_fibonacci(p: int, q: int) -> CoarseSchedule:
    """Fibonacci (Modi-Clarke order-1) ordering.

    Column ``k`` is column ``k-1`` shifted down one row, two steps
    later: ``coarse(i, k) = coarse(i - k, 0) + 2k``.  Within a step a
    group of ``z`` consecutive rows is zeroed by the ``z`` rows just
    above, paired in natural order (``piv(i) = i - z``).
    """
    _check_pq(p, q)
    col0 = _fibonacci_col0_steps(p)
    steps = np.zeros((p, q), dtype=np.int64)
    pairing: list[tuple[int, int, int, int]] = []
    for k in range(min(p, q)):
        # group rows of this column by step value
        groups: dict[int, list[int]] = {}
        for i in range(k + 1, p):
            s = col0[i - k - 1] + 2 * k
            steps[i, k] = s
            groups.setdefault(s, []).append(i)
        for s, rows in groups.items():
            z = len(rows)
            for i in rows:
                pairing.append((k, s, i, i - z))
    return _finish(p, q, "fibonacci", steps, pairing)


def coarse_greedy(p: int, q: int) -> CoarseSchedule:
    """Greedy ordering [6, 7]: maximum eliminations per step, bottom first.

    Simulated with the classical recurrence: with ``Z[k](s)`` zeroed
    entries of column ``k`` after step ``s`` (and ``Z[-1] = p`` rows
    available to column 0), step ``s+1`` zeroes
    ``floor((Z[k-1](s) - Z[k](s)) / 2)`` bottommost candidates of each
    column, using the same number of candidate rows just above them.
    """
    _check_pq(p, q)
    qq = min(p, q)
    steps = np.zeros((p, q), dtype=np.int64)
    pairing: list[tuple[int, int, int, int]] = []
    z = [0] * qq  # zeroed count per column; column k owns rows k+1..p-1
    target = [p - 1 - k for k in range(qq)]
    s = 0
    while any(z[k] < target[k] for k in range(qq)):
        s += 1
        z_prev = list(z)
        for k in range(qq):
            avail = p if k == 0 else z_prev[k - 1]  # rows ready for column k
            e = (avail - z_prev[k]) // 2
            e = min(e, target[k] - z_prev[k])
            if e <= 0:
                continue
            # bottom block of nonzero candidates: rows p-z-e .. p-z-1,
            # pivots the e candidate rows directly above.
            lo = p - z_prev[k] - e
            for i in range(lo, p - z_prev[k]):
                steps[i, k] = s
                pairing.append((k, s, i, i - e))
            z[k] = z_prev[k] + e
    return _finish(p, q, "greedy", steps, pairing)


def greedy_coarse_counts(p: int, q: int) -> list[list[int]]:
    """Per-step elimination counts of coarse Greedy, without pairings.

    Runs the classical count recurrence only (no step table, no
    elimination list), which is O(q * steps) instead of O(p * q) —
    usable for very large grids, and the cross-check for
    :func:`coarse_greedy`.  Returns ``counts[k][s]`` = eliminations of
    column ``k`` at step ``s + 1``.
    """
    _check_pq(p, q)
    qq = min(p, q)
    z = [0] * qq
    target = [p - 1 - k for k in range(qq)]
    counts: list[list[int]] = [[] for _ in range(qq)]
    while any(z[k] < target[k] for k in range(qq)):
        z_prev = list(z)
        for k in range(qq):
            avail = p if k == 0 else z_prev[k - 1]
            e = min((avail - z_prev[k]) // 2, target[k] - z_prev[k])
            counts[k].append(max(e, 0))
            z[k] = z_prev[k] + max(e, 0)
    return counts


def coarse_critical_path(name: str, p: int, q: int) -> int:
    """Closed-form coarse-grain critical paths where known (Section 3.1).

    * ``sameh-kuck``: ``p + q - 2`` (rectangular, p > q), ``2q - 3`` (square)
    * ``fibonacci``: ``x + 2q - 2`` (rectangular), ``x + 2q - 4`` (square)
    * ``greedy``: no closed form — computed by simulation.
    """
    _check_pq(p, q)
    if name == "sameh-kuck":
        return 2 * q - 3 if p == q else p + q - 2
    if name == "fibonacci":
        x = fibonacci_x(p)
        return x + 2 * q - 4 if p == q else x + 2 * q - 2
    if name == "greedy":
        return coarse_greedy(p, q).critical_path
    raise ValueError(f"unknown coarse algorithm {name!r}")
