"""Coarse-grain (Givens-era) model of parallel QR orderings (S9)."""

from .model import (
    CoarseSchedule,
    coarse_critical_path,
    coarse_fibonacci,
    coarse_greedy,
    coarse_sameh_kuck,
    fibonacci_x,
    greedy_coarse_counts,
)

__all__ = [
    "CoarseSchedule",
    "coarse_sameh_kuck",
    "coarse_fibonacci",
    "coarse_greedy",
    "coarse_critical_path",
    "fibonacci_x",
    "greedy_coarse_counts",
]
