"""LAPACK-backed tile kernels (S3).

Thin wrappers over LAPACK's modern tile-QR routines, exposed by
:mod:`scipy.linalg.lapack`:

* ``?geqrt``  — GEQRT (blocked QR of one tile with stored ``T``)
* ``?gemqrt`` — UNMQR (apply the GEQRT factor)
* ``?tpqrt``  — TSQRT (pentagon height ``L = 0``) and TTQRT (``L = n``)
* ``?tpmqrt`` — TSMQR / TTMQR

These are the exact routines PLASMA's kernels correspond to, so this
backend is the performance-faithful substitute for the paper's MKL
kernels.  The wrappers keep the same in-place calling convention as the
reference backend (:mod:`repro.kernels`): tiles are modified in place
and an opaque ``T`` object is returned for the matching update kernel.

Note on ``TTQRT`` sharing a tile with GEQRT vectors: LAPACK's ``tpqrt``
with ``L = n`` reads/writes only the upper triangle of ``b``, exactly
like our reference kernel, so the strictly-lower GEQRT vectors survive.
We additionally pass ``tpmqrt`` a masked copy of ``V`` because LAPACK
*reads* the full pentagon of ``V`` there.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import get_lapack_funcs

__all__ = ["lapack_geqrt", "lapack_unmqr", "lapack_tsqrt", "lapack_tsmqr",
           "lapack_ttqrt", "lapack_ttmqr", "LapackT"]


class LapackT:
    """Opaque ``T`` factor of a LAPACK tile kernel (``(ib, k)`` array)."""

    __slots__ = ("t", "ib", "l")

    def __init__(self, t: np.ndarray, ib: int, l: int):
        self.t = t
        self.ib = ib
        self.l = l


def _trans(a: np.ndarray, adjoint: bool) -> bytes:
    if not adjoint:
        return b"N"
    return b"C" if np.iscomplexobj(a) else b"T"


def _fc(a: np.ndarray) -> np.ndarray:
    """Fortran-contiguous copy (LAPACK wrappers want column-major)."""
    return np.asfortranarray(a)


def lapack_geqrt(a: np.ndarray, ib: int) -> LapackT:
    """In-place blocked QR of tile ``a``; returns the ``T`` factor."""
    m, n = a.shape
    nb = max(1, min(ib, min(m, n)))
    (geqrt,) = get_lapack_funcs(("geqrt",), (a,))
    out, t, info = geqrt(nb, _fc(a))
    if info != 0:
        raise RuntimeError(f"?geqrt failed with info={info}")
    a[...] = out
    return LapackT(t, nb, l=0)


def lapack_unmqr(v: np.ndarray, t: LapackT, c: np.ndarray,
                 adjoint: bool = True, side: str = "L") -> None:
    """Apply the GEQRT factor stored in ``v``/``t`` to ``c`` in place."""
    (gemqrt,) = get_lapack_funcs(("gemqrt",), (v, c))
    out, info = gemqrt(_fc(v), t.t, _fc(c),
                       side=side.encode(), trans=_trans(v, adjoint))
    if info != 0:
        raise RuntimeError(f"?gemqrt failed with info={info}")
    c[...] = out


def _tpqrt(r: np.ndarray, b: np.ndarray, ib: int, triangular: bool) -> LapackT:
    n = r.shape[1]
    nb = max(1, min(ib, n))
    if triangular:
        # TT case: the meaningful triangle occupies the *top*
        # min(mb, n) rows of the bottom tile (the rest is either junk
        # below a short panel or the co-resident GEQRT vectors), while
        # LAPACK's pentagon puts the trapezoid at the bottom — so slice
        # the tile to exactly the trapezoid and set L to its height.
        l = min(b.shape[0], n)
        bb = b[:l, :]
    else:
        l = 0
        bb = b
    (tpqrt,) = get_lapack_funcs(("tpqrt",), (r, b))
    a_out, b_out, t, info = tpqrt(l, nb, _fc(r[:n, :]), _fc(bb))
    if info != 0:
        raise RuntimeError(f"?tpqrt failed with info={info}")
    r[:n, :] = a_out
    if not triangular:
        b[...] = b_out
    else:
        # Preserve the strictly-lower GEQRT vectors sharing the tile.
        iu = np.triu_indices_from(bb)
        bb[iu] = b_out[iu]
    return LapackT(t, nb, l=l)


def _tpmqrt(
    v: np.ndarray, t: LapackT, c_top: np.ndarray, c_bot: np.ndarray,
    adjoint: bool, side: str = "L",
) -> None:
    n = v.shape[1]
    if t.l != 0:
        # TT: reflectors only touch the top l rows (side=L) / left l
        # columns (side=R) of the second block.
        vv = np.triu(v[: t.l, :])  # mask the co-resident GEQRT vectors
        cb = c_bot[: t.l, :] if side == "L" else c_bot[:, : t.l]
    else:
        vv = v
        cb = c_bot
    ct = c_top[:n, :] if side == "L" else c_top[:, :n]
    (tpmqrt,) = get_lapack_funcs(("tpmqrt",), (v, c_bot))
    a_out, b_out, info = tpmqrt(
        t.l, _fc(vv), t.t, _fc(ct), _fc(cb),
        side=side.encode(), trans=_trans(v, adjoint),
    )
    if info != 0:
        raise RuntimeError(f"?tpmqrt failed with info={info}")
    ct[...] = a_out
    cb[...] = b_out


def lapack_tsqrt(r: np.ndarray, a: np.ndarray, ib: int) -> LapackT:
    """TSQRT via ``?tpqrt`` with a rectangular pentagon (``L = 0``)."""
    return _tpqrt(r, a, ib, triangular=False)


def lapack_tsmqr(
    v: np.ndarray, t: LapackT, c_top: np.ndarray, c_bot: np.ndarray,
    adjoint: bool = True, side: str = "L",
) -> None:
    """TSMQR via ``?tpmqrt`` (``L = 0``)."""
    _tpmqrt(v, t, c_top, c_bot, adjoint, side)


def lapack_ttqrt(r: np.ndarray, r_bot: np.ndarray, ib: int) -> LapackT:
    """TTQRT via ``?tpqrt`` with a triangular pentagon (``L = n``)."""
    return _tpqrt(r, r_bot, ib, triangular=True)


def lapack_ttmqr(
    v: np.ndarray, t: LapackT, c_top: np.ndarray, c_bot: np.ndarray,
    adjoint: bool = True, side: str = "L",
) -> None:
    """TTMQR via ``?tpmqrt`` (``L = n``)."""
    _tpmqrt(v, t, c_top, c_bot, adjoint, side)
