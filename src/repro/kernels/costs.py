"""Kernel cost model (S4) — Table 1 of the paper, plus siblings.

The unit of time is :math:`n_b^3/3` floating-point operations, where
``nb`` is the tile size.  These weights drive the discrete-event
simulator and every critical-path result in the paper:

=========  =====================================  ======
Kernel     Operation                              Weight
=========  =====================================  ======
``GEQRT``  factor square into triangle (panel)       4
``UNMQR``  ... update                                6
``TSQRT``  zero square with triangle on top           6
``TSMQR``  ... update                                12
``TTQRT``  zero triangle with triangle on top         2
``TTMQR``  ... update                                 6
=========  =====================================  ======

A TS elimination costs ``10 + 18(q-k)`` units and so does a TT one —
the *total* weight of any tiled QR algorithm on a ``p x q`` tile matrix
is the invariant ``6pq^2 - 2q^3`` (Section 2.2), i.e. the classical
``2mn^2 - 2n^3/3`` flops.

The enum also carries the kernels of the sibling tile factorizations
from the Bouwmeester thesis (arxiv 1303.3182) so the planner, the
simulator and the analytics consume Cholesky and LU task DAGs with the
same machinery (:mod:`repro.problems`).  In the same ``nb^3/3`` unit:

=========  =====================================  ======
``POTRF``  Cholesky of a diagonal tile                1
``TRSM``   triangular solve below the diagonal        3
``SYRK``   symmetric rank-nb update of a diagonal     3
``GEMM``   general update of an off-diagonal tile     6
``GETRF``  LU of a diagonal tile (incr. pivoting)     2
``GESSM``  apply L of GETRF to a row tile             3
``TSTRF``  LU of a [triangle; square] panel pair      3
``SSSSM``  ... apply to a column pair                 6
=========  =====================================  ======

With these weights the total Cholesky weight on a ``t x t`` tile grid
is exactly ``t^3`` (the classical ``n^3/3`` flops) and the total LU
weight on a square grid is ``2t^3`` (the classical ``2n^3/3``).

New kernels are *appended* to the enum: the integer coding of
:data:`repro.dag.tasks.KERNEL_CODES` (and therefore every serialized
plan) is positional, so the QR codes must never move.
"""

from __future__ import annotations

from enum import Enum

__all__ = [
    "Kernel",
    "KernelFamily",
    "KERNEL_WEIGHTS",
    "QR_KERNELS",
    "CHOLESKY_KERNELS",
    "LU_KERNELS",
    "UNIT_FLOPS",
    "total_weight",
    "qr_flops",
    "kernel_flops",
]


class Kernel(str, Enum):
    """The tile kernels of the tiled factorizations.

    The first six are the QR kernels of the source paper; ``POTRF`` /
    ``TRSM`` / ``SYRK`` / ``GEMM`` are tiled Cholesky and ``GETRF`` /
    ``GESSM`` / ``TSTRF`` / ``SSSSM`` tiled LU with incremental
    pivoting (:mod:`repro.problems`).  Order matters — appended only.
    """

    GEQRT = "GEQRT"
    UNMQR = "UNMQR"
    TSQRT = "TSQRT"
    TSMQR = "TSMQR"
    TTQRT = "TTQRT"
    TTMQR = "TTMQR"
    # tiled Cholesky (repro.problems.cholesky)
    POTRF = "POTRF"
    TRSM = "TRSM"
    SYRK = "SYRK"
    GEMM = "GEMM"
    # tiled LU, incremental pivoting (repro.problems.lu)
    GETRF = "GETRF"
    GESSM = "GESSM"
    TSTRF = "TSTRF"
    SSSSM = "SSSSM"

    def __str__(self) -> str:  # keep trace output compact
        return self.value


#: kernel enum of each problem family, in canonical pivot order
QR_KERNELS: tuple[Kernel, ...] = (
    Kernel.GEQRT, Kernel.UNMQR, Kernel.TSQRT, Kernel.TSMQR,
    Kernel.TTQRT, Kernel.TTMQR)
CHOLESKY_KERNELS: tuple[Kernel, ...] = (
    Kernel.POTRF, Kernel.TRSM, Kernel.SYRK, Kernel.GEMM)
LU_KERNELS: tuple[Kernel, ...] = (
    Kernel.GETRF, Kernel.GESSM, Kernel.TSTRF, Kernel.SSSSM)


class KernelFamily(str, Enum):
    """Which elimination implementation an algorithm uses (Section 2.1)."""

    TT = "TT"  #: triangle on top of triangle — more parallel
    TS = "TS"  #: triangle on top of square — more locality

    def __str__(self) -> str:
        return self.value


#: Table 1 weights, in units of ``nb^3/3`` flops.
KERNEL_WEIGHTS: dict[Kernel, int] = {
    Kernel.GEQRT: 4,
    Kernel.UNMQR: 6,
    Kernel.TSQRT: 6,
    Kernel.TSMQR: 12,
    Kernel.TTQRT: 2,
    Kernel.TTMQR: 6,
    # tiled Cholesky: total over a t x t grid is exactly t^3
    Kernel.POTRF: 1,
    Kernel.TRSM: 3,
    Kernel.SYRK: 3,
    Kernel.GEMM: 6,
    # tiled LU (incremental pivoting): total over a square grid is 2 t^3
    Kernel.GETRF: 2,
    Kernel.GESSM: 3,
    Kernel.TSTRF: 3,
    Kernel.SSSSM: 6,
}


def UNIT_FLOPS(nb: int) -> float:
    """Flops per model time unit: ``nb^3 / 3``."""
    return nb**3 / 3.0


def total_weight(p: int, q: int) -> int:
    """Total task weight of any tiled QR algorithm on ``p x q`` tiles.

    Section 2.2: the invariant ``6 p q^2 - 2 q^3`` holds for every valid
    elimination list, with either kernel family, and for any tiling.
    """
    if p < q:
        raise ValueError(f"need p >= q, got p={p}, q={q}")
    return 6 * p * q * q - 2 * q**3


def qr_flops(m: int, n: int, complex_arith: bool = False) -> float:
    """Classical flop count of a Householder QR: ``2mn^2 - 2n^3/3``.

    With ``complex_arith=True`` the count is scaled by 4, matching the
    convention used when reporting complex GFLOP/s (one complex FMA =
    8 real flops vs 2 for real).
    """
    flops = 2.0 * m * n * n - 2.0 * n**3 / 3.0
    return 4.0 * flops if complex_arith else flops


def kernel_flops(kernel: Kernel, nb: int, complex_arith: bool = False) -> float:
    """Nominal flops of a single kernel invocation on ``nb x nb`` tiles."""
    flops = KERNEL_WEIGHTS[kernel] * UNIT_FLOPS(nb)
    return 4.0 * flops if complex_arith else flops
