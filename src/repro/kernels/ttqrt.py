"""``TTQRT``/``TTMQR``: zero a triangle with a triangle on top (S2).

Tile analogues of LAPACK ``?tpqrt``/``?tpmqrt`` with pentagon height
``L = n`` (fully triangular pentagon): the QR factorization of

.. math:: \\begin{pmatrix} R_{\\text{piv},k} \\\\ R_{i,k} \\end{pmatrix}

where *both* tiles are upper triangular (both rows went through
``GEQRT`` first).  The Householder vector of column ``j`` touches one
top row plus only bottom rows ``0..j``, so the vectors form an upper
triangular pattern stored in the upper triangle of tile ``(i,k)`` —
crucially leaving the strictly lower triangle (which holds the GEQRT
vectors of that tile) intact.  This disjointness is what makes the
paper's V=NODEP dependency relaxation [12] sound, and it is why
``TTQRT`` can run concurrently with ``UNMQR`` updates of the same row.

Costs in the paper's unit (Table 1): ``TTQRT`` = **2**, ``TTMQR`` = **6**.
"""

from __future__ import annotations

import numpy as np

from .geqrt import TFactor
from .stacked import apply_stacked, factor_stacked, tt_support

__all__ = ["ttqrt", "ttmqr"]


def ttqrt(r: np.ndarray, r_bot: np.ndarray, ib: int) -> TFactor:
    """Factor ``[R; R_bot]`` in place, zeroing the triangular tile ``r_bot``.

    Parameters
    ----------
    r : ndarray, shape (nb, nb)
        Upper triangular tile of the pivot row; receives the combined
        ``R`` factor.
    r_bot : ndarray, shape (mb, nb)
        Upper triangular/trapezoidal tile being eliminated; its upper
        triangle is overwritten with the Householder vectors ``V``
        (again upper triangular); its strictly lower triangle is
        neither read nor written.
    ib : int
        Inner blocking size.

    Returns
    -------
    TFactor
        ``T`` blocks for :func:`ttmqr`.
    """
    return factor_stacked(r, r_bot, ib, tt_support)


def ttmqr(
    v: np.ndarray,
    t: TFactor,
    c_top: np.ndarray,
    c_bot: np.ndarray,
    adjoint: bool = True,
    side: str = "L",
) -> None:
    """Apply a TTQRT transformation to the trailing tiles of both rows.

    With ``side="L"`` updates ``[c_top; c_bot]`` in place, where
    ``c_top`` is tile ``(piv, j)`` and ``c_bot`` is tile ``(i, j)`` for
    ``j > k``; with ``side="R"`` the column-block analogue.  The
    strictly-lower part of ``v`` (GEQRT vectors sharing the tile) is
    masked out.
    """
    apply_stacked(v, t, c_top, c_bot, tt_support, adjoint=adjoint,
                  mask=True, side=side)
