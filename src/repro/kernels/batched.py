"""Batched (stacked 3-D) variants of the six tile kernels (S20).

At any Kahn level of the factorization DAG many tasks of the *same*
kernel type are independent (the paper's whole point — Section 2.2's
weighted critical paths count exactly this parallelism).  PLASMA
exploits it with tuned kernels on many cores; the NumPy equivalent is
to stack the operand tiles of one ``(level, kernel)`` group into a
``(batch, nb, nb)`` array and execute the group as *one* sequence of
3-D operations:

* the update kernels (``UNMQR``/``TSMQR``/``TTMQR``) become a handful
  of ``np.matmul`` calls on ``(batch, nb, nb)`` stacks — BLAS-3 over
  the whole group instead of one small GEMM per task;
* the factor kernels (``GEQRT``/``TSQRT``/``TTQRT``) keep their inner
  ``ib`` panel loop in Python but vectorize every step — reflector
  generation, the rank-1 panel updates, the ``larft`` accumulation and
  the blocked trailing update — across the batch axis.

The implementations mirror :mod:`repro.kernels.geqrt` and
:mod:`repro.kernels.stacked` step for step (same formulas, same
conditional writes on zero-norm columns), so each batch slice agrees
with the reference kernel to rounding; they are *not* bitwise
identical because batched reductions may associate differently.

Tiles are expected zero-padded to a uniform ``nb x nb`` (see
:class:`repro.tiles.pool.TilePool`): zero padding is exact — padded
columns yield ``tau = 0`` identity reflectors and padded rows carry
zero Householder entries, so the valid region of a padded computation
equals the unpadded one.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .geqrt import TFactor, panel_starts
from .stacked import ts_support, tt_support

__all__ = [
    "BatchedTFactor",
    "geqrt_batched",
    "unmqr_batched",
    "tsqrt_batched",
    "tsmqr_batched",
    "ttqrt_batched",
    "ttmqr_batched",
    "factor_stacked_batched",
    "apply_stacked_batched",
    "geqrt_lapack_batched",
    "factor_stacked_lapack_batched",
    "lapack_batched_supported",
    "geqrt_lapack_pool",
    "factor_stacked_lapack_pool",
]


class BatchedTFactor:
    """Compact-WY ``T`` factors of a batch of same-shaped factorizations.

    Attributes
    ----------
    blocks : list of ndarray
        One ``(batch, jb, jb)`` stack per inner panel of ``ib`` columns.
    ib : int
        Inner blocking size (the last panel may be narrower).
    """

    def __init__(self, ib: int = 1):
        self.ib = ib
        self.blocks: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self.blocks)

    def batch_size(self) -> int:
        return self.blocks[0].shape[0] if self.blocks else 0

    def task_tfactor(self, b: int, k: int) -> TFactor:
        """Per-task :class:`TFactor` of batch element ``b``, sliced to
        the valid reflector count ``k`` of the *unpadded* tile.

        The slices are views into the stacked blocks (no copies), and
        the leading ``k`` columns of a zero-padded factorization are
        identical to the unpadded one, so the result is directly usable
        by the per-tile apply kernels (``unmqr``/``tsmqr``/``ttmqr``),
        e.g. when replaying ``Q`` via ``ExecutionContext.apply_q``.
        """
        t = TFactor(ib=self.ib)
        for j0, jb in panel_starts(k, self.ib):
            t.blocks.append(self.blocks[j0 // self.ib][b, :jb, :jb])
        return t


def _batched_reflector(x: np.ndarray):
    """Householder reflectors of each row of ``x`` (shape ``(B, s)``).

    The batch-axis analogue of :func:`repro.kernels.householder.reflector`
    — same formulas, same conventions (``v[:, 0] = 1``, real ``tau``,
    ``beta = -phase * ||x||``), with zero-norm rows yielding the
    identity reflector ``tau = 0``.
    """
    norm = np.linalg.norm(x, axis=1)
    alpha = x[:, 0]
    absa = np.abs(alpha)
    phase = np.where(absa == 0.0, 1.0,
                     alpha / np.where(absa == 0.0, 1.0, absa))
    beta = -phase * norm
    u0 = alpha - beta
    nz = norm != 0.0
    safe = np.where(nz, u0, 1.0)
    v = x / safe[:, None]
    v[:, 0] = 1.0
    uhu = 2.0 * (norm * norm + absa * norm)
    tau = np.where(nz, 2.0 * np.abs(safe) ** 2 / np.where(nz, uhu, 1.0), 0.0)
    beta = np.where(nz, beta, 0.0)
    return v, tau, beta


def _ct(a: np.ndarray) -> np.ndarray:
    """Batched conjugate transpose (swap the last two axes).

    For real dtypes the conjugation is skipped, making this a free
    strided view (``np.matmul`` handles transposed operands natively);
    complex dtypes pay one conjugated copy.
    """
    if a.dtype.kind == "c":
        a = a.conj()
    return a.swapaxes(-1, -2)


_MASK_CACHE: dict = {}


def _strict_lower_mask(rows: int, cols: int) -> np.ndarray:
    """Cached strictly-lower-triangular float mask (``rows x cols``)."""
    key = (rows, cols)
    m = _MASK_CACHE.get(key)
    if m is None:
        m = np.tril(np.ones((rows, cols)), -1)
        _MASK_CACHE[key] = m
    return m


_PANEL_CACHE: dict = {}


def _panels(k: int, ib: int) -> tuple:
    """Cached :func:`~repro.kernels.geqrt.panel_starts` (hot path)."""
    key = (k, ib)
    p = _PANEL_CACHE.get(key)
    if p is None:
        p = tuple(panel_starts(k, ib))
        _PANEL_CACHE[key] = p
    return p


_SUPPORT_MASK_CACHE: dict = {}


def _support_mask(support, j0: int, jb: int, smax: int,
                  mb: int) -> np.ndarray:
    """Cached boolean mask zeroing ``v`` rows below each column's
    support (the TT kernels' co-resident GEQRT vectors)."""
    key = (support, j0, jb, smax, mb)
    m = _SUPPORT_MASK_CACHE.get(key)
    if m is None:
        sup = np.fromiter((support(j0 + c, mb) for c in range(jb)),
                          dtype=np.int64, count=jb)
        m = np.arange(smax)[:, None] < sup
        _SUPPORT_MASK_CACHE[key] = m
    return m


def geqrt_batched(a: np.ndarray, ib: int) -> BatchedTFactor:
    """Blocked QR of a ``(batch, mb, nb)`` stack of tiles, in place.

    The batch-axis analogue of :func:`repro.kernels.geqrt.geqrt`: each
    slice ``a[i]`` is overwritten with ``V`` below the diagonal and
    ``R`` on and above it.
    """
    nbatch, m, n = a.shape
    k = min(m, n)
    t = BatchedTFactor(ib=ib)
    for j0, jb in panel_starts(k, ib):
        panel = a[:, j0:, j0 : j0 + jb]
        tblk = np.zeros((nbatch, jb, jb), dtype=a.dtype)
        vmat = np.zeros((nbatch, m - j0, jb), dtype=a.dtype)
        for jj in range(jb):
            v, tau, beta = _batched_reflector(panel[:, jj:, jj])
            panel[:, jj, jj] = beta
            panel[:, jj + 1 :, jj] = v[:, 1:]
            vmat[:, jj, jj] = 1.0
            vmat[:, jj + 1 :, jj] = v[:, 1:]
            if jj + 1 < jb:
                c = panel[:, jj:, jj + 1 :]
                w = np.matmul(v.conj()[:, None, :], c)
                c -= tau[:, None, None] * np.matmul(v[:, :, None], w)
            tblk[:, jj, jj] = tau
            if jj:
                w = np.matmul(_ct(vmat[:, :, :jj]), vmat[:, :, jj : jj + 1])
                tblk[:, :jj, jj : jj + 1] = -tau[:, None, None] * np.matmul(
                    tblk[:, :jj, :jj], w)
        t.blocks.append(tblk)
        if j0 + jb < n:
            c = a[:, j0:, j0 + jb :]
            w = np.matmul(_ct(vmat), c)
            w = np.matmul(_ct(tblk), w)
            c -= np.matmul(vmat, w)
    return t


def unmqr_batched(
    v: np.ndarray,
    t: BatchedTFactor,
    c: np.ndarray,
    adjoint: bool = True,
) -> None:
    """Apply the orthogonal factors of a GEQRT'd stack to ``c`` in place.

    Batched left-side analogue of :func:`repro.kernels.apply.unmqr`:
    ``v`` and ``c`` are ``(batch, mb, *)`` stacks, ``t`` the matching
    :class:`BatchedTFactor`.
    """
    _, m, n = v.shape
    k = min(m, n)
    panels = _panels(k, t.ib)
    if len(panels) != len(t.blocks):
        raise ValueError(
            f"T factor has {len(t.blocks)} blocks but the tile implies "
            f"{len(panels)}")
    order = range(len(panels)) if adjoint else range(len(panels) - 1, -1, -1)
    for idx in order:
        j0, jb = panels[idx]
        vmat = v[:, j0:, j0 : j0 + jb] * _strict_lower_mask(m - j0, jb)
        d = np.arange(jb)
        vmat[:, d, d] = 1.0
        tblk = t.blocks[idx]
        tb = _ct(tblk) if adjoint else tblk
        w = np.matmul(_ct(vmat), c[:, j0:, :])
        c[:, j0:, :] -= np.matmul(vmat, np.matmul(tb, w))


def factor_stacked_batched(
    r: np.ndarray,
    b: np.ndarray,
    ib: int,
    support: Callable[[int, int], int],
) -> BatchedTFactor:
    """Factor a batch of stacked ``[R; B]`` pairs in place.

    Batch-axis analogue of :func:`repro.kernels.stacked.factor_stacked`
    — ``r`` is a ``(batch, nb, nb)`` stack of upper triangular pivot
    tiles, ``b`` the ``(batch, mb, nb)`` stack of tiles being zeroed,
    ``support`` the per-column bottom-row reach (full for TS,
    triangular for TT).
    """
    nbatch, _, n = r.shape
    mb = b.shape[1]
    t = BatchedTFactor(ib=ib)
    for j0, jb in panel_starts(n, ib):
        smax = support(j0 + jb - 1, mb)
        vmat = np.zeros((nbatch, smax, jb), dtype=b.dtype)
        tblk = np.zeros((nbatch, jb, jb), dtype=b.dtype)
        for jj in range(jb):
            j = j0 + jj
            s = support(j, mb)
            top = r[:, j, j].copy()
            col = b[:, :s, j]
            norm = np.sqrt(np.abs(top) ** 2
                           + np.sum(np.abs(col) ** 2, axis=1))
            absa = np.abs(top)
            phase = np.where(absa == 0.0, 1.0,
                             top / np.where(absa == 0.0, 1.0, absa))
            beta = -phase * norm
            u0 = top - beta
            nz = norm != 0.0
            safe = np.where(nz, u0, 1.0)
            vb = col / safe[:, None]
            uhu = 2.0 * (norm * norm + absa * norm)
            tau = np.where(
                nz, 2.0 * np.abs(safe) ** 2 / np.where(nz, uhu, 1.0), 0.0)
            # conditional writes: zero-norm columns are left untouched,
            # matching the reference kernel's norm == 0 early-out
            r[:, j, j] = np.where(nz, beta, top)
            b[:, :s, j] = np.where(nz[:, None], vb, col)
            vmat[:, :s, jj] = np.where(nz[:, None], vb, 0.0)
            if jj + 1 < jb:
                cols = slice(j + 1, j0 + jb)
                w = r[:, j, cols] + np.matmul(
                    vmat[:, :s, jj].conj()[:, None, :], b[:, :s, cols])[:, 0]
                r[:, j, cols] -= tau[:, None] * w
                b[:, :s, cols] -= tau[:, None, None] * np.matmul(
                    vmat[:, :s, jj : jj + 1], w[:, None, :])
            tblk[:, jj, jj] = tau
            if jj:
                w = np.matmul(_ct(vmat[:, :, :jj]), vmat[:, :, jj : jj + 1])
                tblk[:, :jj, jj : jj + 1] = -tau[:, None, None] * np.matmul(
                    tblk[:, :jj, :jj], w)
        t.blocks.append(tblk)
        if j0 + jb < n:
            cols = slice(j0 + jb, n)
            w = r[:, j0 : j0 + jb, cols] + np.matmul(
                _ct(vmat), b[:, :smax, cols])
            w = np.matmul(_ct(tblk), w)
            r[:, j0 : j0 + jb, cols] -= w
            b[:, :smax, cols] -= np.matmul(vmat, w)
    return t


def apply_stacked_batched(
    v: np.ndarray,
    t: BatchedTFactor,
    c_top: np.ndarray,
    c_bot: np.ndarray,
    support: Callable[[int, int], int],
    adjoint: bool = True,
    mask: bool = False,
) -> None:
    """Apply a batch of stacked transformations to ``[c_top; c_bot]``.

    Batch-axis, left-side analogue of
    :func:`repro.kernels.stacked.apply_stacked`.  With ``mask=True``
    (the TT kernels) entries of ``v`` below each column's support are
    zeroed before use — they hold the GEQRT vectors sharing the tile.
    """
    _, mb, n = v.shape
    panels = _panels(n, t.ib)
    if len(panels) != len(t.blocks):
        raise ValueError(
            f"T factor has {len(t.blocks)} blocks but width {n} implies "
            f"{len(panels)}")
    order = range(len(panels)) if adjoint else range(len(panels) - 1, -1, -1)
    for idx in order:
        j0, jb = panels[idx]
        smax = support(j0 + jb - 1, mb)
        vblk = v[:, :smax, j0 : j0 + jb]
        if mask:
            vblk = np.where(_support_mask(support, j0, jb, smax, mb),
                            vblk, 0.0)
        tblk = t.blocks[idx]
        tb = _ct(tblk) if adjoint else tblk
        w = c_top[:, j0 : j0 + jb, :] + np.matmul(_ct(vblk),
                                                  c_bot[:, :smax, :])
        w = np.matmul(tb, w)
        c_top[:, j0 : j0 + jb, :] -= w
        c_bot[:, :smax, :] -= np.matmul(vblk, w)


def tsqrt_batched(r: np.ndarray, a: np.ndarray, ib: int) -> BatchedTFactor:
    """Batched :func:`repro.kernels.tsqrt.tsqrt`: zero square stacks."""
    return factor_stacked_batched(r, a, ib, ts_support)


def tsmqr_batched(v, t, c_top, c_bot, adjoint: bool = True) -> None:
    """Batched :func:`repro.kernels.tsqrt.tsmqr` (left side)."""
    apply_stacked_batched(v, t, c_top, c_bot, ts_support,
                          adjoint=adjoint, mask=False)


def ttqrt_batched(r: np.ndarray, r_bot: np.ndarray,
                  ib: int) -> BatchedTFactor:
    """Batched :func:`repro.kernels.ttqrt.ttqrt`: zero triangular stacks.

    As in the per-tile kernel, the strictly lower triangle of each
    ``r_bot`` slice (holding that tile's GEQRT vectors) is neither read
    nor written.
    """
    return factor_stacked_batched(r, r_bot, ib, tt_support)


def ttmqr_batched(v, t, c_top, c_bot, adjoint: bool = True) -> None:
    """Batched :func:`repro.kernels.ttqrt.ttmqr` (left side, masked)."""
    apply_stacked_batched(v, t, c_top, c_bot, tt_support,
                          adjoint=adjoint, mask=True)


# ---------------------------------------------------------------------------
# LAPACK-accelerated factor kernels (per-slice ?geqrt / ?tpqrt)
# ---------------------------------------------------------------------------
#
# The stacked NumPy *update* kernels above are a handful of large
# ``np.matmul`` calls and run at BLAS speed, but the *factor* kernels
# keep a per-column Python loop whose interpreter constants dominate on
# small tiles.  LAPACK's ``?geqrt``/``?tpqrt`` do the same panel
# factorization in compiled code (~100 us per 64 x 64 tile vs ~2.5 ms
# for the column loop), so the batched executor can call them slice by
# slice and still hand back a :class:`BatchedTFactor` with exactly the
# layout the stacked applies expect (``?geqrt``/``?tpqrt`` store ``T``
# as side-by-side ``(ib, jb)`` panel blocks).
#
# One convention difference needs patching: LAPACK's ``?larfg``
# early-outs with ``tau = 0`` (identity) when a column's tail is
# exactly zero, while :func:`repro.kernels.householder.reflector`
# always applies ``H = -I`` there (``tau = 2``, ``beta = -alpha``).
# The fix-up below rewrites those columns to the reference convention
# (flip the ``R`` row, recompute the ``T`` column from the stored
# ``V``), so this path reproduces the reference ``R`` to rounding —
# including on zero-padded ragged tiles, where zero tails are routine.
# Real dtypes only: ``?larfg``'s complex branch also rotates ``alpha``
# to the real axis, which is not expressible in our real-``tau``
# convention, so complex stacks stay on the NumPy kernels.


def lapack_batched_supported(dtype) -> bool:
    """Whether the per-slice LAPACK factor path can handle ``dtype``."""
    if np.dtype(dtype).type not in (np.float32, np.float64):
        return False
    try:
        from scipy.linalg import get_lapack_funcs  # noqa: F401
    except ImportError:  # pragma: no cover - scipy ships with the repo
        return False
    return True


def _fix_zero_tail_geqrt(a: np.ndarray, tstack: np.ndarray,
                         ib: int, k: int) -> None:
    """Rewrite LAPACK's zero-tail ``tau = 0`` columns to the reference
    ``H = -I`` convention, in place (see the section comment above)."""
    for j0, jb in panel_starts(k, ib):
        cols = j0 + np.arange(jb)
        taud = tstack[:, np.arange(jb), cols]
        diag = a[:, cols, cols]
        hits = (taud == 0.0) & (diag != 0.0)
        if not hits.any():
            continue
        for jj in np.nonzero(hits.any(axis=0))[0]:
            j = j0 + int(jj)
            idx = np.nonzero(hits[:, jj])[0]
            if jj:
                # T[:jj, j] = -tau * T[:jj, :jj] @ (V[:, :jj]^H e_jj);
                # the inner product collapses to stored V row j.
                g = a[idx, j, j0:j]
                tsub = tstack[idx, :jj, j0:j]
                tstack[idx, :jj, j] = -2.0 * np.matmul(
                    tsub, g[:, :, None])[:, :, 0]
            tstack[idx, jj, j] = 2.0
            a[idx, j, j:] *= -1.0


def geqrt_lapack_batched(a: np.ndarray, ib: int) -> BatchedTFactor:
    """Per-slice LAPACK ``?geqrt`` over a ``(batch, mb, nb)`` stack.

    Same in-place contract and return type as :func:`geqrt_batched`,
    and the same numerical convention (zero-tail columns are fixed up
    to the reference reflector), so the two are interchangeable.
    """
    from scipy.linalg import get_lapack_funcs

    nbatch, m, n = a.shape
    k = min(m, n)
    nbq = max(1, min(ib, k))
    (geqrt,) = get_lapack_funcs(("geqrt",), (a,))
    tstack = np.empty((nbatch, nbq, k), dtype=a.dtype)
    for i in range(nbatch):
        out, tl, info = geqrt(nbq, a[i])
        if info != 0:  # pragma: no cover - only on invalid arguments
            raise RuntimeError(f"?geqrt failed with info={info}")
        a[i] = out
        tstack[i] = tl
    _fix_zero_tail_geqrt(a, tstack, nbq, k)
    t = BatchedTFactor(ib=nbq)
    for j0, jb in panel_starts(k, nbq):
        t.blocks.append(tstack[:, :jb, j0:j0 + jb])
    return t


def factor_stacked_lapack_batched(
    r: np.ndarray,
    b: np.ndarray,
    ib: int,
    triangular: bool,
) -> BatchedTFactor:
    """Per-slice LAPACK ``?tpqrt`` over stacked ``[R; B]`` pairs.

    Drop-in for :func:`factor_stacked_batched` with ``ts_support``
    (``triangular=False``, pentagon height ``L = 0``) or ``tt_support``
    (``triangular=True``, ``L = mb``).  As in the per-tile kernel, the
    strictly lower triangle of each TT bottom slice (the co-resident
    GEQRT vectors) is preserved — ``?tpqrt`` never references it.
    """
    from scipy.linalg import get_lapack_funcs

    nbatch, _, n = r.shape
    mb = b.shape[1]
    l = min(mb, n) if triangular else 0
    nbq = max(1, min(ib, n))
    (tpqrt,) = get_lapack_funcs(("tpqrt",), (r, b))
    tstack = np.empty((nbatch, nbq, n), dtype=r.dtype)
    for i in range(nbatch):
        a_out, b_out, tl, info = tpqrt(l, nbq, r[i, :n, :], b[i])
        if info != 0:  # pragma: no cover - only on invalid arguments
            raise RuntimeError(f"?tpqrt failed with info={info}")
        r[i, :n, :] = a_out
        b[i] = b_out
        tstack[i] = tl
    # Zero-tail fix-up: v_j = [e_j; 0] is orthogonal to every earlier
    # reflector's top e-vector *and* bottom support, so the T column is
    # just tau on the diagonal.
    for j0, jb in panel_starts(n, nbq):
        cols = j0 + np.arange(jb)
        taud = tstack[:, np.arange(jb), cols]
        diag = r[:, cols, cols]
        hits = (taud == 0.0) & (diag != 0.0)
        if not hits.any():
            continue
        for jj in np.nonzero(hits.any(axis=0))[0]:
            j = j0 + int(jj)
            idx = np.nonzero(hits[:, jj])[0]
            tstack[idx, :, j] = 0.0
            tstack[idx, jj, j] = 2.0
            r[idx, j, j:] *= -1.0
    t = BatchedTFactor(ib=nbq)
    for j0, jb in panel_starts(n, nbq):
        t.blocks.append(tstack[:, :jb, j0:j0 + jb])
    return t


# -- pool-direct variants ---------------------------------------------------
#
# The batched executor normally gathers a group's tiles into a fresh
# ``(batch, nb, nb)`` stack (``pool.take``) and scatters the results
# back (``pool.put``).  The stacked NumPy kernels need that — their 3-D
# ``np.matmul`` calls want one contiguous operand — but the per-slice
# LAPACK loop does not: it can factor each tile where it lives in the
# pool, saving two full copies of every factor group's tiles.


def _fix_zero_tail_geqrt_pool(stack: np.ndarray, slots: np.ndarray,
                              tstack: np.ndarray, ib: int, k: int) -> None:
    """Pool-indexed variant of :func:`_fix_zero_tail_geqrt`."""
    for j0, jb in _panels(k, ib):
        cols = j0 + np.arange(jb)
        taud = tstack[:, np.arange(jb), cols]
        diag = stack[slots[:, None], cols, cols]
        hits = (taud == 0.0) & (diag != 0.0)
        if not hits.any():
            continue
        for jj in np.nonzero(hits.any(axis=0))[0]:
            j = j0 + int(jj)
            idx = np.nonzero(hits[:, jj])[0]
            sl = slots[idx]
            if jj:
                g = stack[sl, j, j0:j]
                tsub = tstack[idx, :jj, j0:j]
                tstack[idx, :jj, j] = -2.0 * np.matmul(
                    tsub, g[:, :, None])[:, :, 0]
            tstack[idx, jj, j] = 2.0
            stack[sl, j, j:] *= -1.0


def geqrt_lapack_pool(stack: np.ndarray, slots: np.ndarray,
                      ib: int) -> BatchedTFactor:
    """:func:`geqrt_lapack_batched` operating in place on pool slots.

    ``stack`` is a :class:`~repro.tiles.pool.TilePool`'s backing array;
    ``slots[i]`` names the tile of batch element ``i``.  No gather or
    scatter copies are made.
    """
    from scipy.linalg import get_lapack_funcs

    nb = stack.shape[1]
    nbq = max(1, min(ib, nb))
    (geqrt,) = get_lapack_funcs(("geqrt",), (stack,))
    nbatch = len(slots)
    tstack = np.empty((nbatch, nbq, nb), dtype=stack.dtype)
    for i in range(nbatch):
        s = slots[i]
        out, tl, info = geqrt(nbq, stack[s])
        if info != 0:  # pragma: no cover - only on invalid arguments
            raise RuntimeError(f"?geqrt failed with info={info}")
        stack[s] = out
        tstack[i] = tl
    _fix_zero_tail_geqrt_pool(stack, slots, tstack, nbq, nb)
    t = BatchedTFactor(ib=nbq)
    for j0, jb in _panels(nb, nbq):
        t.blocks.append(tstack[:, :jb, j0:j0 + jb])
    return t


def factor_stacked_lapack_pool(stack: np.ndarray, rslots: np.ndarray,
                               bslots: np.ndarray, ib: int,
                               triangular: bool) -> BatchedTFactor:
    """:func:`factor_stacked_lapack_batched` operating on pool slots."""
    from scipy.linalg import get_lapack_funcs

    nb = stack.shape[1]
    l = nb if triangular else 0
    nbq = max(1, min(ib, nb))
    (tpqrt,) = get_lapack_funcs(("tpqrt",), (stack, stack))
    nbatch = len(rslots)
    tstack = np.empty((nbatch, nbq, nb), dtype=stack.dtype)
    for i in range(nbatch):
        rs, bs = rslots[i], bslots[i]
        a_out, b_out, tl, info = tpqrt(l, nbq, stack[rs], stack[bs])
        if info != 0:  # pragma: no cover - only on invalid arguments
            raise RuntimeError(f"?tpqrt failed with info={info}")
        stack[rs] = a_out
        stack[bs] = b_out
        tstack[i] = tl
    for j0, jb in _panels(nb, nbq):
        cols = j0 + np.arange(jb)
        taud = tstack[:, np.arange(jb), cols]
        diag = stack[rslots[:, None], cols, cols]
        hits = (taud == 0.0) & (diag != 0.0)
        if not hits.any():
            continue
        for jj in np.nonzero(hits.any(axis=0))[0]:
            j = j0 + int(jj)
            idx = np.nonzero(hits[:, jj])[0]
            tstack[idx, :, j] = 0.0
            tstack[idx, jj, j] = 2.0
            stack[rslots[idx], j, j:] *= -1.0
    t = BatchedTFactor(ib=nbq)
    for j0, jb in _panels(nb, nbq):
        t.blocks.append(tstack[:, :jb, j0:j0 + jb])
    return t
