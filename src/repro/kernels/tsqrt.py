"""``TSQRT``/``TSMQR``: zero a square tile with a triangle on top (S2).

Tile analogues of LAPACK ``?tpqrt``/``?tpmqrt`` with pentagon height
``L = 0``: the QR factorization of

.. math:: \\begin{pmatrix} R_{\\text{piv},k} \\\\ A_{i,k} \\end{pmatrix}

where the top tile is already upper triangular (output of ``GEQRT``)
and the bottom tile is a full square.  Each Householder vector touches
one top row plus *all* bottom rows, so the vectors are stored as a full
tile in place of :math:`A_{i,k}`.

Costs in the paper's unit (Table 1): ``TSQRT`` = **6**, ``TSMQR`` = **12**.
"""

from __future__ import annotations

import numpy as np

from .geqrt import TFactor
from .stacked import apply_stacked, factor_stacked, ts_support

__all__ = ["tsqrt", "tsmqr"]


def tsqrt(r: np.ndarray, a: np.ndarray, ib: int) -> TFactor:
    """Factor ``[R; A]`` in place, zeroing the square tile ``a``.

    Parameters
    ----------
    r : ndarray, shape (nb, nb)
        Upper triangular tile of the pivot row; receives the combined
        ``R`` factor.
    a : ndarray, shape (mb, nb)
        Square (full) tile being eliminated; overwritten with the
        Householder vectors ``V``.
    ib : int
        Inner blocking size.

    Returns
    -------
    TFactor
        ``T`` blocks for :func:`tsmqr`.
    """
    return factor_stacked(r, a, ib, ts_support)


def tsmqr(
    v: np.ndarray,
    t: TFactor,
    c_top: np.ndarray,
    c_bot: np.ndarray,
    adjoint: bool = True,
    side: str = "L",
) -> None:
    """Apply a TSQRT transformation to the trailing tiles of both rows.

    With ``side="L"`` updates ``[c_top; c_bot]`` in place, where
    ``c_top`` is tile ``(piv, j)`` and ``c_bot`` is tile ``(i, j)`` for
    ``j > k``; with ``side="R"`` updates ``[c_top, c_bot] @ op(Q)``
    (column blocks).
    """
    apply_stacked(v, t, c_top, c_bot, ts_support, adjoint=adjoint,
                  mask=False, side=side)
