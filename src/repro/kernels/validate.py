"""Structural validators for tile states (S2 debugging aid).

Tiled QR's correctness hinges on structural invariants the kernels
assume but (for speed) never check.  The central one is *co-residency*:
every factored tile keeps its GEQRT Householder vectors in the strictly
lower triangle while the ``R``/TT-vector content lives on and above the
diagonal, and the stacked kernels must never touch the lower part of
either operand — that is what makes the paper's V=NODEP dependency
relaxation [12] sound.  These validators make the invariants
checkable: the test suite uses them, and a runtime can wrap its kernel
calls with :func:`checked_backend` when debugging a new elimination
scheme.
"""

from __future__ import annotations

import numpy as np

from .backend import KernelBackend, get_backend

__all__ = [
    "assert_upper_triangular",
    "assert_lower_part_unchanged",
    "checked_backend",
]


def assert_upper_triangular(a: np.ndarray, atol: float = 0.0,
                            what: str = "tile") -> None:
    """Raise ``ValueError`` if ``a`` has entries strictly below the
    diagonal larger than ``atol``."""
    resid = np.abs(np.tril(a, -1))
    if resid.size and resid.max() > atol:
        i, j = np.unravel_index(int(resid.argmax()), resid.shape)
        raise ValueError(
            f"{what} is not upper triangular: |a[{i},{j}]| = "
            f"{resid[i, j]:.3e} > {atol:g}")


def assert_lower_part_unchanged(before: np.ndarray, after: np.ndarray,
                                what: str = "tile") -> None:
    """Raise if the strictly-lower triangle changed between snapshots —
    the V co-residency guarantee of the TS/TT panel kernels."""
    if not np.array_equal(np.tril(before, -1), np.tril(after, -1)):
        raise ValueError(f"{what}: strictly-lower triangle was modified "
                         "(co-resident GEQRT vectors clobbered)")


def checked_backend(base: str | KernelBackend = "reference") -> KernelBackend:
    """Wrap a backend so every kernel validates its structural contract.

    Checks performed:

    * ``tsqrt``: the *top* tile's strictly-lower triangle (the pivot
      row's co-resident GEQRT vectors) survives the call;
    * ``ttqrt``: the strictly-lower triangles of *both* tiles survive;
    * ``geqrt`` returns with a finite ``R`` on the diagonal.

    Noticeably slower — for debugging elimination schemes, not for
    production runs.
    """
    bk = get_backend(base)

    def geqrt(a, ib):
        out = bk.geqrt(a, ib)
        diag = np.diagonal(a)
        if not np.isfinite(diag).all():
            raise ValueError("GEQRT produced a non-finite R diagonal")
        return out

    def unmqr(v, t, c, adjoint=True, side="L"):
        return bk.unmqr(v, t, c, adjoint=adjoint, side=side)

    def tsqrt(r, a, ib):
        n = r.shape[1]
        before = r[:n, :].copy()
        out = bk.tsqrt(r, a, ib)
        assert_lower_part_unchanged(before, r[:n, :], what="TSQRT top tile")
        return out

    def tsmqr(v, t, c_top, c_bot, adjoint=True, side="L"):
        return bk.tsmqr(v, t, c_top, c_bot, adjoint=adjoint, side=side)

    def ttqrt(r, r_bot, ib):
        n = r.shape[1]
        before_top = r[:n, :].copy()
        before_bot = r_bot.copy()
        out = bk.ttqrt(r, r_bot, ib)
        assert_lower_part_unchanged(before_top, r[:n, :],
                                    what="TTQRT top tile")
        assert_lower_part_unchanged(before_bot, r_bot,
                                    what="TTQRT bottom tile")
        return out

    def ttmqr(v, t, c_top, c_bot, adjoint=True, side="L"):
        return bk.ttmqr(v, t, c_top, c_bot, adjoint=adjoint, side=side)

    return KernelBackend(
        name=f"checked({bk.name})",
        geqrt=geqrt, unmqr=unmqr,
        tsqrt=tsqrt, tsmqr=tsmqr,
        ttqrt=ttqrt, ttmqr=ttmqr,
    )
