"""``GEQRT``: factor a square (or rectangular) tile into a triangle (S2).

``geqrt`` is the tile-kernel analogue of LAPACK ``?geqrt``: a blocked
Householder QR of a single ``mb x nb`` tile with inner block size
``ib``.  On exit the tile holds ``R`` in its upper triangle and the
Householder vectors ``V`` (unit lower trapezoidal) below the diagonal;
the compact-WY ``T`` factors are returned separately, one ``jb x jb``
upper triangular block per panel of ``ib`` columns.

Cost in the paper's unit (``nb^3/3`` flops): **4** (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .householder import accumulate_t_column, apply_block_reflector, reflector

__all__ = ["TFactor", "geqr2", "geqrt", "panel_starts"]


def panel_starts(n: int, ib: int) -> list[tuple[int, int]]:
    """Return ``(start, width)`` pairs covering ``range(n)`` in panels of ``ib``."""
    if ib <= 0:
        raise ValueError(f"inner block size must be positive, got {ib}")
    return [(j, min(ib, n - j)) for j in range(0, n, ib)]


@dataclass
class TFactor:
    """Compact-WY ``T`` factors of a blocked tile factorization.

    Attributes
    ----------
    blocks : list of ndarray
        One upper triangular ``jb x jb`` block per inner panel.
    ib : int
        Inner blocking size the factorization used (the last block may
        be narrower).
    """

    blocks: list[np.ndarray] = field(default_factory=list)
    ib: int = 1

    def __iter__(self):
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)


def geqr2(a: np.ndarray, taus: np.ndarray | None = None) -> np.ndarray:
    """Unblocked Householder QR of ``a`` in place (LAPACK ``?geqr2``).

    On exit ``a`` holds ``R`` in its upper triangle and the
    (unit-diagonal-implicit) Householder vectors below it.  Returns the
    array of ``tau`` scalars (length ``min(m, n)``).
    """
    m, n = a.shape
    k = min(m, n)
    if taus is None:
        taus = np.zeros(k)
    for j in range(k):
        v, tau, beta = reflector(a[j:, j])
        taus[j] = tau
        a[j, j] = beta
        a[j + 1 :, j] = v[1:]
        if tau != 0.0 and j + 1 < n:
            # Apply H (Hermitian) to the trailing columns.
            c = a[j:, j + 1 :]
            w = v.conj() @ c
            c -= tau * np.outer(v, w)
    return taus


def geqrt(a: np.ndarray, ib: int) -> TFactor:
    """Blocked QR factorization of one tile, in place.

    Parameters
    ----------
    a : ndarray, shape (mb, nb)
        The tile; overwritten with ``V`` below the diagonal and ``R``
        on and above it.
    ib : int
        Inner block size (the paper's ``ib = 32`` for ``nb = 200``).

    Returns
    -------
    TFactor
        The ``T`` blocks needed by :func:`repro.kernels.apply.unmqr`.
    """
    m, n = a.shape
    k = min(m, n)
    t = TFactor(ib=ib)
    for j0, jb in panel_starts(k, ib):
        panel = a[j0:, j0 : j0 + jb]
        tblk = np.zeros((jb, jb), dtype=a.dtype)
        # vmat mirrors the panel's Householder vectors with the unit
        # diagonal made explicit, so larft-style accumulation can use
        # plain matrix products over a common row space.
        vmat = np.zeros((m - j0, jb), dtype=a.dtype)
        for jj in range(jb):
            v, tau, beta = reflector(panel[jj:, jj])
            panel[jj, jj] = beta
            panel[jj + 1 :, jj] = v[1:]
            vmat[jj, jj] = 1.0
            vmat[jj + 1 :, jj] = v[1:]
            if tau != 0.0 and jj + 1 < jb:
                c = panel[jj:, jj + 1 :]
                w = v.conj() @ c
                c -= tau * np.outer(v, w)
            accumulate_t_column(tblk, vmat, vmat[:, jj], tau, jj)
        t.blocks.append(tblk)
        # Apply the block reflector to the trailing columns of the tile.
        if j0 + jb < n:
            apply_block_reflector(vmat, tblk, a[j0:, j0 + jb :])
    return t
