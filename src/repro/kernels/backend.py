"""Kernel backend selection.

A :class:`KernelBackend` bundles the six tile operations behind one
uniform in-place interface so the runtimes (:mod:`repro.runtime`) are
agnostic to whether the pure-NumPy reference kernels or the
LAPACK-backed kernels execute the work.

>>> from repro.kernels.backend import get_backend
>>> bk = get_backend("reference")
>>> bk.name
'reference'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .apply import unmqr as _unmqr
from .geqrt import geqrt as _geqrt_fn
from .tsqrt import tsmqr as _tsmqr_fn, tsqrt as _tsqrt_fn
from .ttqrt import ttmqr as _ttmqr_fn, ttqrt as _ttqrt_fn
from .lapack import (
    lapack_geqrt,
    lapack_tsmqr,
    lapack_tsqrt,
    lapack_ttmqr,
    lapack_ttqrt,
    lapack_unmqr,
)

__all__ = ["KernelBackend", "get_backend", "REFERENCE", "LAPACK", "BACKENDS"]


@dataclass(frozen=True)
class KernelBackend:
    """The six tile operations of Section 2.1 behind a uniform interface.

    All ``*qrt`` functions factor in place and return an opaque ``T``;
    all ``*mqr`` functions consume that ``T`` and update in place.
    """

    name: str
    geqrt: Callable[[np.ndarray, int], Any]
    unmqr: Callable[..., None]
    tsqrt: Callable[[np.ndarray, np.ndarray, int], Any]
    tsmqr: Callable[..., None]
    ttqrt: Callable[[np.ndarray, np.ndarray, int], Any]
    ttmqr: Callable[..., None]


REFERENCE = KernelBackend(
    name="reference",
    geqrt=_geqrt_fn,
    unmqr=_unmqr,
    tsqrt=_tsqrt_fn,
    tsmqr=_tsmqr_fn,
    ttqrt=_ttqrt_fn,
    ttmqr=_ttmqr_fn,
)

LAPACK = KernelBackend(
    name="lapack",
    geqrt=lapack_geqrt,
    unmqr=lapack_unmqr,
    tsqrt=lapack_tsqrt,
    tsmqr=lapack_tsmqr,
    ttqrt=lapack_ttqrt,
    ttmqr=lapack_ttmqr,
)

BACKENDS: dict[str, KernelBackend] = {b.name: b for b in (REFERENCE, LAPACK)}


def get_backend(name: str | KernelBackend = "reference") -> KernelBackend:
    """Resolve a backend by name (``"reference"`` or ``"lapack"``)."""
    if isinstance(name, KernelBackend):
        return name
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
