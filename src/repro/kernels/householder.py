"""Householder reflector substrate (S1).

This module provides the elementary building blocks used by every tile
kernel in :mod:`repro.kernels`: generation of a single Householder
reflector, accumulation of a block of reflectors into a compact-WY
``T`` factor (LAPACK ``larft``), and application of a block reflector to
a matrix (LAPACK ``larfb``).

Conventions
-----------
We use *Hermitian* elementary reflectors

.. math:: H = I - \\tau\\, v v^{\\mathsf H}, \\qquad v_0 = 1,\\ \\tau \\in \\mathbb{R},

chosen such that :math:`H x = \\beta e_1` with
:math:`\\beta = -e^{i\\arg x_0}\\,\\lVert x\\rVert_2`.  Because each
:math:`H` is Hermitian and unitary, a product
:math:`Q = H_1 H_2 \\cdots H_k` admits the compact-WY form

.. math:: Q = I - V T V^{\\mathsf H},

with ``V`` unit lower trapezoidal and ``T`` upper triangular, and the
adjoint is simply :math:`Q^{\\mathsf H} = I - V T^{\\mathsf H} V^{\\mathsf H}`.
This convention works uniformly for real and complex dtypes and keeps
``tau`` real, which simplifies the structured TS/TT kernels.

The sign choice :math:`\\beta = -e^{i\\arg x_0}\\lVert x\\rVert` avoids
cancellation when forming :math:`u = x - \\beta e_1` (LAPACK's choice in
``?larfg``), so the reflector generation is unconditionally stable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "reflector",
    "apply_reflector",
    "larft",
    "apply_block_reflector",
    "accumulate_t_column",
]


def reflector(x: np.ndarray) -> tuple[np.ndarray, float, complex]:
    """Generate a Householder reflector annihilating ``x[1:]``.

    Parameters
    ----------
    x : ndarray, shape (m,)
        Input vector (not modified).

    Returns
    -------
    v : ndarray, shape (m,)
        Householder vector with ``v[0] == 1``.
    tau : float
        Real scalar such that ``H = I - tau * outer(v, conj(v))``
        satisfies ``H @ x == beta * e1``.
    beta : scalar
        The resulting leading entry (same dtype domain as ``x``);
        ``abs(beta) == norm(x)``.

    Notes
    -----
    When ``norm(x) == 0`` the identity reflector ``tau = 0`` is
    returned.  For a real nonnegative ``x[0]`` with zero tail we still
    build a genuine reflector so that ``beta <= 0`` consistently; this
    keeps the sign convention deterministic, which the property-based
    tests rely on.
    """
    x = np.asarray(x)
    m = x.shape[0]
    v = np.zeros_like(x)
    v[0] = 1.0
    norm_x = np.linalg.norm(x)
    if norm_x == 0.0:
        return v, 0.0, x.dtype.type(0)
    alpha = x[0]
    if alpha == 0:
        phase = 1.0
    else:
        phase = alpha / abs(alpha)
    beta = -phase * norm_x
    u0 = alpha - beta  # = phase * (|alpha| + norm_x): no cancellation
    v[1:] = x[1:] / u0
    # u^H u = 2 * (norm_x^2 + |alpha| * norm_x); tau = 2|u0|^2 / (u^H u)
    uhu = 2.0 * (norm_x * norm_x + abs(alpha) * norm_x)
    tau = float(2.0 * abs(u0) ** 2 / uhu)
    return v, tau, beta


def apply_reflector(v: np.ndarray, tau: float, c: np.ndarray) -> None:
    """Apply ``H = I - tau v v^H`` to ``c`` in place (``c`` is m-by-n)."""
    if tau == 0.0:
        return
    w = v.conj() @ c  # shape (n,)
    c -= tau * np.outer(v, w)


def accumulate_t_column(
    t: np.ndarray, v_panel: np.ndarray, v_new: np.ndarray, tau: float, j: int
) -> None:
    """Extend an upper triangular ``T`` factor by one reflector (larft step).

    Given the compact-WY factor ``T[:j, :j]`` of reflectors
    ``H_0 ... H_{j-1}`` whose vectors are the columns of
    ``v_panel[:, :j]``, compute column ``j`` of ``T`` for the new
    reflector ``(v_new, tau)`` so that
    ``H_0 ... H_j = I - V T V^H`` continues to hold.

    ``t`` is modified in place; it must be at least ``(j+1, j+1)``.
    """
    t[j, j] = tau
    if j > 0:
        # t[:j, j] = -tau * T[:j, :j] @ (V[:, :j]^H v_new)
        w = v_panel[:, :j].conj().T @ v_new
        t[:j, j] = -tau * (t[:j, :j] @ w)


def larft(v: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Form the upper triangular ``T`` of the compact-WY representation.

    Parameters
    ----------
    v : ndarray, shape (m, k)
        Householder vectors as columns (``v[j, j] == 1`` with zeros
        above is *not* required here; the caller passes vectors in
        whatever structured form the kernel uses, as long as the
        columns are the true reflector vectors).
    taus : ndarray, shape (k,)
        The real ``tau`` scalars.

    Returns
    -------
    t : ndarray, shape (k, k), upper triangular.
    """
    k = v.shape[1]
    t = np.zeros((k, k), dtype=v.dtype)
    for j in range(k):
        accumulate_t_column(t, v, v[:, j], taus[j], j)
    return t


def apply_block_reflector(
    v: np.ndarray, t: np.ndarray, c: np.ndarray, adjoint: bool = True
) -> None:
    """Apply ``Q = I - V T V^H`` (or its adjoint) to ``c`` in place.

    ``Q^H C = C - V T^H (V^H C)`` — this is the workhorse of all update
    kernels (LAPACK ``larfb`` with ``side='L'``).

    Parameters
    ----------
    v : ndarray, shape (m, k)
    t : ndarray, shape (k, k)
    c : ndarray, shape (m, n), modified in place.
    adjoint : bool
        If True (default) apply :math:`Q^{\\mathsf H}`, the direction
        used during factorization; otherwise apply :math:`Q`.
    """
    w = v.conj().T @ c  # (k, n)
    if adjoint:
        w = t.conj().T @ w
    else:
        w = t @ w
    c -= v @ w
