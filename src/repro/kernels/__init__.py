"""Tile kernels of the tiled QR factorization (Section 2.1 of the paper).

Two interchangeable backends are provided:

* :mod:`repro.kernels` top level — pure NumPy reference kernels,
  implemented from scratch (Householder reflectors + compact WY), fully
  documented, supporting real and complex dtypes and ragged tiles.
* :mod:`repro.kernels.lapack` — thin wrappers over LAPACK's
  ``?geqrt/?gemqrt/?tpqrt/?tpmqrt`` via :mod:`scipy.linalg.lapack`, used
  for performance benchmarking.

Both expose the same six operations and are cross-checked in the test
suite.
"""

from .apply import unmqr
from .costs import (
    KERNEL_WEIGHTS,
    Kernel,
    KernelFamily,
    UNIT_FLOPS,
    kernel_flops,
    qr_flops,
    total_weight,
)
from .geqrt import TFactor, geqr2, geqrt
from .tsqrt import tsmqr, tsqrt
from .ttqrt import ttmqr, ttqrt

__all__ = [
    "Kernel",
    "KernelFamily",
    "KERNEL_WEIGHTS",
    "UNIT_FLOPS",
    "TFactor",
    "geqr2",
    "geqrt",
    "unmqr",
    "tsqrt",
    "tsmqr",
    "ttqrt",
    "ttmqr",
    "kernel_flops",
    "qr_flops",
    "total_weight",
]
