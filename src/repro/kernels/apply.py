"""``UNMQR``: apply the transformation of a GEQRT panel to a tile (S2).

Tile analogue of LAPACK ``?unmqr``/``?ormqr`` restricted to the form
used by the tiled QR algorithms: apply :math:`Q^{\\mathsf H}` (from the
left) of a tile previously factored by :func:`repro.kernels.geqrt.geqrt`
to a tile sitting in the same row, panel by panel.

Cost in the paper's unit: **6** (Table 1).
"""

from __future__ import annotations

import numpy as np

from .geqrt import TFactor, panel_starts

__all__ = ["unmqr"]


def unmqr(
    v: np.ndarray,
    t: TFactor,
    c: np.ndarray,
    adjoint: bool = True,
    side: str = "L",
) -> None:
    """Apply the orthogonal factor of a GEQRT'd tile to ``c`` in place.

    Parameters
    ----------
    v : ndarray, shape (mb, nb)
        The factored tile: Householder vectors below the diagonal
        (the upper triangle — ``R`` — is ignored).
    t : TFactor
        The ``T`` blocks produced by ``geqrt``.
    c : ndarray
        Tile to update in place: ``(mb, n)`` for ``side="L"``
        (compute ``op(Q) @ c``), ``(n, mb)`` for ``side="R"``
        (compute ``c @ op(Q)``).
    adjoint : bool
        Apply ``Q^H`` (True, factorization direction) or ``Q``.
    side : {"L", "R"}
        Multiply from the left (default) or the right.
    """
    m, n = v.shape
    k = min(m, n)
    panels = panel_starts(k, t.ib)
    if len(panels) != len(t.blocks):
        raise ValueError(
            f"T factor has {len(t.blocks)} blocks but the tile implies {len(panels)}"
        )
    if side not in ("L", "R"):
        raise ValueError(f"side must be 'L' or 'R', got {side!r}")
    # With Q = B_0 B_1 ... (one block reflector per panel):
    #   Q^H C     applies blocks left-to-right (adjoint each),
    #   Q C       right-to-left,
    #   C Q       left-to-right,
    #   C Q^H     right-to-left (adjoint each).
    forward = adjoint if side == "L" else not adjoint
    order = range(len(panels)) if forward else range(len(panels) - 1, -1, -1)
    for idx in order:
        j0, jb = panels[idx]
        vmat = np.tril(v[j0:, j0 : j0 + jb], -1)
        np.fill_diagonal(vmat, 1.0)
        tblk = t.blocks[idx]
        tb = tblk.conj().T if adjoint else tblk
        if side == "L":
            w = vmat.conj().T @ c[j0:, :]
            c[j0:, :] -= vmat @ (tb @ w)
        else:
            w = c[:, j0:] @ vmat
            c[:, j0:] -= (w @ tb) @ vmat.conj().T
