"""Shared machinery for the stacked (two-tile) factorization kernels.

``TSQRT`` (triangle on top of *square*) and ``TTQRT`` (triangle on top
of *triangle*) both factor a stacked matrix

.. math:: \\begin{pmatrix} R \\\\ B \\end{pmatrix}

where ``R`` is the upper triangular result of a previous factorization
and ``B`` is the tile being zeroed out.  The Householder vector of
column ``j`` touches exactly one row of the top tile (row ``j``, where
the implicit leading 1 lives) plus a *support* of rows of the bottom
tile: all of them for TS, only rows ``0..j`` for TT (because ``B`` is
itself upper triangular there).  Factoring out the support rule lets
both kernels—and both update kernels—share one implementation, which is
also how LAPACK organizes this family (``?tpqrt`` with pentagon height
``L = 0`` or ``L = n``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .geqrt import TFactor, panel_starts

__all__ = ["factor_stacked", "apply_stacked", "ts_support", "tt_support"]


def ts_support(j: int, mb: int) -> int:
    """Bottom-row support of column ``j`` for the TS kernels: all rows."""
    return mb


def tt_support(j: int, mb: int) -> int:
    """Bottom-row support of column ``j`` for the TT kernels: rows ``0..j``."""
    return min(j + 1, mb)


def factor_stacked(
    r: np.ndarray,
    b: np.ndarray,
    ib: int,
    support: Callable[[int, int], int],
) -> TFactor:
    """Factor ``[R; B]`` in place, annihilating ``B``.

    Parameters
    ----------
    r : ndarray, shape (>=n, n)
        Upper triangular top tile; receives the combined ``R``.  Only
        its leading ``n x n`` block is referenced.
    b : ndarray, shape (mb, n)
        Bottom tile; overwritten with the Householder vectors ``V``
        (full for TS, upper trapezoidal for TT).
    ib : int
        Inner blocking size.
    support : callable ``(j, mb) -> int``
        Number of leading bottom rows the reflector of column ``j``
        touches.

    Returns
    -------
    TFactor
        ``T`` blocks for the matching update kernel.
    """
    n = r.shape[1]
    mb = b.shape[0]
    t = TFactor(ib=ib)
    for j0, jb in panel_starts(n, ib):
        smax = support(j0 + jb - 1, mb)
        # Explicit Householder vectors of this panel (bottom parts only;
        # the top parts are the canonical basis vectors e_{j0+c} and
        # never overlap, so T accumulation needs only the bottom parts).
        vmat = np.zeros((smax, jb), dtype=b.dtype)
        tblk = np.zeros((jb, jb), dtype=b.dtype)
        for jj in range(jb):
            j = j0 + jj
            s = support(j, mb)
            # Build the reflector for [r[j, j]; b[:s, j]].
            x = np.empty(s + 1, dtype=b.dtype)
            x[0] = r[j, j]
            x[1:] = b[:s, j]
            norm_x = np.linalg.norm(x)
            if norm_x == 0.0:
                tau = 0.0
            else:
                alpha = x[0]
                phase = alpha / abs(alpha) if alpha != 0 else 1.0
                beta = -phase * norm_x
                u0 = alpha - beta
                vb = x[1:] / u0
                uhu = 2.0 * (norm_x * norm_x + abs(alpha) * norm_x)
                tau = float(2.0 * abs(u0) ** 2 / uhu)
                r[j, j] = beta
                b[:s, j] = vb
                vmat[:s, jj] = vb
            # Unblocked update of the remaining columns of this panel.
            if tau != 0.0 and jj + 1 < jb:
                cols = slice(j + 1, j0 + jb)
                w = r[j, cols] + vmat[:s, jj].conj() @ b[:s, cols]
                r[j, cols] -= tau * w
                b[:s, cols] -= tau * np.outer(vmat[:s, jj], w)
            # larft step: T[:jj, jj] = -tau T (V^H v); top parts are
            # orthogonal canonical vectors, so only bottoms contribute.
            tblk[jj, jj] = tau
            if jj > 0:
                w = vmat[:, :jj].conj().T @ vmat[:, jj]
                tblk[:jj, jj] = -tau * (tblk[:jj, :jj] @ w)
        t.blocks.append(tblk)
        # Blocked update of the trailing panels of [R; B].
        if j0 + jb < n:
            cols = slice(j0 + jb, n)
            w = r[j0 : j0 + jb, cols] + vmat.conj().T @ b[:smax, cols]
            w = tblk.conj().T @ w
            r[j0 : j0 + jb, cols] -= w
            b[:smax, cols] -= vmat @ w
    return t


def apply_stacked(
    v: np.ndarray,
    t: TFactor,
    c_top: np.ndarray,
    c_bot: np.ndarray,
    support: Callable[[int, int], int],
    adjoint: bool = True,
    mask: bool = False,
    side: str = "L",
) -> None:
    """Apply the orthogonal factor of :func:`factor_stacked` to two tiles.

    Updates ``[c_top; c_bot]`` in place with ``Q^H`` (``adjoint=True``,
    the factorization direction) or ``Q``.

    Parameters
    ----------
    v : ndarray, shape (mb, n)
        Bottom tile holding the Householder vectors (output ``b`` of
        :func:`factor_stacked`).
    t : TFactor
        Matching ``T`` blocks.
    c_top, c_bot : ndarray
        Tiles to update; ``c_top`` has at least ``n`` rows, ``c_bot``
        has ``mb`` rows.
    support : callable
        The same support rule used at factorization time.
    mask : bool
        If True, zero out ``v`` entries below each column's support
        before use.  Required for the TT kernels: the bottom tile's
        strictly lower triangle holds the GEQRT Householder vectors of
        an earlier factorization (PLASMA keeps both in one tile — the
        V=NODEP relaxation of [12]) and must not leak into the block
        reflector.
    side : {"L", "R"}
        ``"L"`` (default) computes ``op(Q) @ [c_top; c_bot]`` with
        ``c_top``/``c_bot`` as row blocks; ``"R"`` computes
        ``[c_left, c_right] @ op(Q)`` where ``c_top`` plays the role of
        the left column block (width >= n) and ``c_bot`` of the right
        one (width mb).
    """
    n = v.shape[1]
    mb = v.shape[0]
    panels = panel_starts(n, t.ib)
    if len(panels) != len(t.blocks):
        raise ValueError(
            f"T factor has {len(t.blocks)} blocks but width {n} implies {len(panels)}"
        )
    if side not in ("L", "R"):
        raise ValueError(f"side must be 'L' or 'R', got {side!r}")
    forward = adjoint if side == "L" else not adjoint
    order = range(len(panels)) if forward else range(len(panels) - 1, -1, -1)
    for idx in order:
        j0, jb = panels[idx]
        smax = support(j0 + jb - 1, mb)
        vblk = v[:smax, j0 : j0 + jb]
        if mask:
            # Mask below the trapezoid boundary: column j only reaches
            # bottom rows < support(j); deeper rows belong to another
            # factorization's vectors stored in the same tile.
            vblk = vblk.copy()
            for c in range(jb):
                vblk[support(j0 + c, mb) :, c] = 0.0
        tblk = t.blocks[idx]
        tb = tblk.conj().T if adjoint else tblk
        if side == "L":
            w = c_top[j0 : j0 + jb, :] + vblk.conj().T @ c_bot[:smax, :]
            w = tb @ w
            c_top[j0 : j0 + jb, :] -= w
            c_bot[:smax, :] -= vblk @ w
        else:
            w = c_top[:, j0 : j0 + jb] + c_bot[:, :smax] @ vblk
            w = w @ tb
            c_top[:, j0 : j0 + jb] -= w
            c_bot[:, :smax] -= w @ vblk.conj().T
