"""Optimality searches (S14): the machinery behind Theorem 1(3).

The paper's lower bound ``22q - 30`` comes from an exhaustive search
over elimination orderings of a *banded* square matrix (three non-zero
sub-diagonals): with only a constant number of candidate rows per
column, all pairings can be enumerated, and every optimal algorithm
needs at least 22 time units per column asymptotically.  Lemma 1 then
transfers the bound to arbitrary ``p x q`` matrices.

This module re-implements that search (``exhaustive_optimal_cp``) and
adds helpers to measure how close an algorithm is to the bound
(``asymptotic_optimality_ratio``), which is how the tests validate
Theorem 1(4,5) numerically.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..dag.build import build_dag
from ..kernels.costs import KernelFamily
from ..schemes.elimination import Elimination, EliminationList
from ..schemes.registry import get_scheme
from ..sim.simulate import simulate_unbounded

__all__ = [
    "column_sequences",
    "count_column_sequences",
    "exhaustive_optimal_cp",
    "asymptotic_optimality_ratio",
]


def count_column_sequences(n_rows: int) -> int:
    """Number of ordered elimination sequences for ``n_rows`` candidates.

    At each step with ``m`` alive rows there are ``m(m-1)/2`` choices of
    ``(pivot < target)``, so the count is ``prod_{m=2}^{n} m(m-1)/2`` —
    used to bound the search *before* materializing anything (the
    numbers explode: 18 for 4 rows, ~2.3e9 already for 10 rows).
    """
    total = 1
    for m in range(2, n_rows + 1):
        total *= m * (m - 1) // 2
    return total


@lru_cache(maxsize=None)
def column_sequences(rows: tuple[int, ...]) -> tuple[tuple[tuple[int, int], ...], ...]:
    """All ordered elimination sequences reducing ``rows`` to its minimum.

    Each sequence is a tuple of ``(target, pivot)`` pairs with
    ``pivot < target`` (Lemma 1 lets us ignore reverse eliminations
    without loss of optimality); after the sequence only ``min(rows)``
    remains un-zeroed.  Callers must bound the size with
    :func:`count_column_sequences` first — this function materializes
    every sequence.
    """
    if len(rows) <= 1:
        return ((),)
    out = []
    alive = sorted(rows)
    for pos_t in range(1, len(alive)):
        target = alive[pos_t]
        for pos_p in range(pos_t):
            piv = alive[pos_p]
            rest = tuple(r for r in alive if r != target)
            for tail in column_sequences(rest):
                out.append((((target, piv),) + tail))
    return tuple(out)


def exhaustive_optimal_cp(
    p: int,
    q: int,
    band: int | None = None,
    family: KernelFamily | str = KernelFamily.TT,
    max_leaves: int = 2_000_000,
) -> float:
    """Minimum critical path over *all* valid elimination algorithms.

    Warning: exponential.  Use small grids (``p <= 6, q <= 2`` full, or
    the banded squares of the paper's proof, ``band = 3, q <= 4``).

    Parameters
    ----------
    p, q : int
        Grid dimensions.
    band : int or None
        If given, only tiles ``(i, k)`` with ``i - k <= band`` are
        initially non-zero (the paper's proof instrument); ``None``
        searches the full lower triangle.
    family : KernelFamily
        Kernel family for the DAG costs.
    max_leaves : int
        Safety cap on the number of complete algorithms simulated.

    Returns
    -------
    float
        The optimal critical path length in time units.
    """
    qq = min(p, q)
    col_rows = []
    for k in range(qq):
        hi = p if band is None else min(p, k + band + 1)
        col_rows.append(tuple(range(k, hi)))
    # bound the search analytically BEFORE materializing any sequence
    total = math.prod(count_column_sequences(len(rows)) for rows in col_rows)
    if total > max_leaves:
        raise ValueError(
            f"search space has {total} algorithms > max_leaves={max_leaves}")
    per_col = [column_sequences(rows) for rows in col_rows]

    best = math.inf
    choice = [0] * qq

    def rec(k: int, partial: list[Elimination]) -> None:
        nonlocal best
        if k == qq:
            elims = EliminationList(p, q, partial, name="search")
            cp = simulate_unbounded(build_dag(elims, family)).makespan
            if cp < best:
                best = cp
            return
        for seq in per_col[k]:
            ext = partial + [Elimination(t, v, k) for t, v in seq]
            rec(k + 1, ext)

    rec(0, [])
    return best


def asymptotic_optimality_ratio(
    scheme: str,
    lam: float,
    qs: list[int],
    family: KernelFamily | str = KernelFamily.TT,
    **params,
) -> list[float]:
    """Ratio ``cp(scheme) / 22q`` along ``p = ceil(lam * q)``.

    Theorem 1(4,5): for Fibonacci and Greedy this tends to 1 as ``q``
    grows (asymptotic optimality for proportional shapes); for
    FlatTree or BinaryTree it does not.
    """
    out = []
    for q in qs:
        p = max(q, math.ceil(lam * q))
        elims = get_scheme(scheme, p, q, **params)
        cp = simulate_unbounded(build_dag(elims, family)).makespan
        out.append(cp / (22.0 * q))
    return out
