"""Roofline-style performance prediction (S15) — Section 4 of the paper.

The paper models the execution time of a tiled algorithm on ``P``
processors as limited either by the total work or by the critical
path:

.. math::

    \\gamma_{pred} = \\frac{\\gamma_{seq} \\cdot T}
                          {\\max\\left(\\frac{T}{P},\\ cp\\right)}

with :math:`\\gamma_{seq}` the sequential kernel performance
(GFLOP/s), :math:`T` the total task weight (``6pq^2 - 2q^3`` time
units) and :math:`cp` the critical path length in the same units.  This
is the predictor behind Figures 1 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dag.build import build_dag
from ..kernels.costs import KernelFamily, total_weight
from ..schemes.registry import get_scheme
from ..sim.simulate import simulate_unbounded

__all__ = ["PerformanceModel", "predicted_gflops"]


@dataclass(frozen=True)
class PerformanceModel:
    """Machine model for the Roofline-style predictor.

    Attributes
    ----------
    gamma_seq : float
        Sequential kernel performance in GFLOP/s (the paper measures
        3.8440 double / 3.1860 double complex on its Opteron cores).
    processors : int
        Worker count (the paper's machine has 48).
    """

    gamma_seq: float
    processors: int

    def predict(self, total: float, cp: float) -> float:
        """Predicted GFLOP/s given total work and critical path (units)."""
        if total <= 0:
            return 0.0
        limit = max(total / self.processors, cp)
        return self.gamma_seq * total / limit

    def speedup(self, total: float, cp: float) -> float:
        """Predicted parallel speedup over one core."""
        return self.predict(total, cp) / self.gamma_seq


def predicted_gflops(
    scheme: str,
    p: int,
    q: int,
    model: PerformanceModel,
    family: KernelFamily | str = KernelFamily.TT,
    **params,
) -> float:
    """Predicted GFLOP/s of ``scheme`` on a ``p x q`` grid under ``model``.

    Matches the paper's Figures 1a/1c (TT kernels) and 6a/6c (both
    families) when fed the measured sequential kernel rates.
    """
    elims = get_scheme(scheme, p, q, **params)
    cp = simulate_unbounded(build_dag(elims, family)).makespan
    return model.predict(float(total_weight(p, q)), cp)
