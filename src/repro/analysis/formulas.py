"""Closed-form critical-path results of the paper (S14).

Theorem 1, Proposition 1 and Proposition 2, expressed in the paper's
time unit (``nb^3/3`` flops).  All formulas are verified against the
discrete-event simulator in ``tests/analysis/test_formulas.py`` — the
same sanity check the authors performed with their own programs.
"""

from __future__ import annotations

import math

__all__ = [
    "flat_tree_cp",
    "ts_flat_tree_cp",
    "fibonacci_cp_bound",
    "greedy_cp_bound",
    "optimal_cp_lower_bound",
    "binary_tree_cp_exact",
    "flat_tree_cp_flops",
]


def _check(p: int, q: int) -> None:
    if q < 1 or p < q:
        raise ValueError(f"need p >= q >= 1, got p={p}, q={q}")


def flat_tree_cp(p: int, q: int) -> int:
    """Theorem 1(1): exact critical path of FlatTree with TT kernels.

    ``2p + 2`` for ``p >= q = 1``; ``6p + 16q - 22`` for ``p > q > 1``;
    ``22p - 24`` for ``p = q > 1``.
    """
    _check(p, q)
    if q == 1:
        return 2 * p + 2
    if p == q:
        return 22 * p - 24
    return 6 * p + 16 * q - 22


def ts_flat_tree_cp(p: int, q: int) -> int:
    """Proposition 2: exact critical path of FlatTree with TS kernels.

    ``6p - 2`` for ``p >= q = 1``; ``12p + 18q - 32`` for ``p > q > 1``;
    ``30p - 34`` for ``p = q > 1``.
    """
    _check(p, q)
    if q == 1:
        return 6 * p - 2
    if p == q:
        return 30 * p - 34
    return 12 * p + 18 * q - 32


def fibonacci_cp_bound(p: int, q: int) -> int:
    """Theorem 1(2): upper bound ``22q + 6 ceil(sqrt(2p))`` for Fibonacci."""
    _check(p, q)
    return 22 * q + 6 * math.ceil(math.sqrt(2 * p))


def greedy_cp_bound(p: int, q: int) -> int:
    """Theorem 1(2): upper bound ``22q + 6 ceil(log2 p)`` for Greedy.

    Reproduction note: the bound as stated is exceeded by exactly 2
    units at ``p = 128`` (for several ``q < p``) — by our simulator
    *and* by the paper's own Table 4b values — so the tight form is
    ``22q + 6 ceil(log2 p) + O(1)``.  The asymptotic-optimality
    conclusion (Theorem 1(5)) is unaffected.
    """
    _check(p, q)
    return 22 * q + 6 * math.ceil(math.log2(p))


def optimal_cp_lower_bound(q: int) -> int:
    """Theorem 1(3): any algorithm needs at least ``22q - 30`` time units.

    Derived from the exhaustive search over banded square matrices
    (three non-zero sub-diagonals); see
    :func:`repro.analysis.optimality.exhaustive_optimal_cp` for the
    search itself.
    """
    if q < 2:
        raise ValueError(f"the bound is stated for q >= 2, got q={q}")
    return 22 * q - 30


def binary_tree_cp_exact(p: int, q: int) -> int:
    """Proposition 1: exact BinaryTree critical path for powers of two.

    ``(10 + 6 log2 p) q - 4 log2 p - 6`` when ``p`` and ``q`` are exact
    powers of two with ``q < p``.
    """
    _check(p, q)
    lp, lq = math.log2(p), math.log2(q)
    if lp != int(lp) or lq != int(lq) or q >= p:
        raise ValueError("formula requires p, q powers of two with q < p")
    return int((10 + 6 * lp) * q - 4 * lp - 6)


def flat_tree_cp_flops(m: int, n: int, nb: int) -> float:
    """Theorem 1 remark 1: FlatTree critical path in elementary flops.

    ``(2/3) m nb^2 + (2/3) nb^3`` if ``m >= n = nb``;
    ``2 m nb^2 + (16/3) n nb^2 - (22/3) nb^3`` if ``m > n > nb``;
    ``(22/3) n nb^2 - (24/3) nb^3`` if ``m = n > nb``
    (assuming ``m``, ``n`` multiples of ``nb``).
    """
    if m % nb or n % nb:
        raise ValueError("formula assumes m, n multiples of nb")
    p, q = m // nb, n // nb
    return flat_tree_cp(p, q) * nb**3 / 3.0
