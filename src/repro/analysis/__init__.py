"""Critical-path analysis, accuracy and performance modelling (S14-S15)."""

from .accuracy import AccuracyReport, assess, compare_schemes
from .formulas import (
    binary_tree_cp_exact,
    fibonacci_cp_bound,
    flat_tree_cp,
    greedy_cp_bound,
    optimal_cp_lower_bound,
    ts_flat_tree_cp,
)
from .model import PerformanceModel, predicted_gflops
from .optimality import (
    asymptotic_optimality_ratio,
    count_column_sequences,
    exhaustive_optimal_cp,
)
from .pipeline import (column_period, column_windows, pipeline_overlap,
                       pipeline_report)

__all__ = [
    "flat_tree_cp",
    "ts_flat_tree_cp",
    "fibonacci_cp_bound",
    "greedy_cp_bound",
    "optimal_cp_lower_bound",
    "binary_tree_cp_exact",
    "PerformanceModel",
    "predicted_gflops",
    "exhaustive_optimal_cp",
    "count_column_sequences",
    "asymptotic_optimality_ratio",
    "AccuracyReport",
    "assess",
    "compare_schemes",
    "column_windows",
    "column_period",
    "pipeline_overlap",
    "pipeline_report",
]
