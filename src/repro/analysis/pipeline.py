"""Pipeline structure of a schedule: how columns overlap (S14).

The reason Greedy/Fibonacci beat FlatTree on tall grids is *pipelining*
— column ``k+1`` starts long before column ``k`` finishes.  These
helpers quantify that from a simulation result: per-column activity
windows, the overlap fraction, and the steady-state column period
(which Theorem 1's ``22q`` term predicts to approach 22 units for
asymptotically optimal trees).
"""

from __future__ import annotations

import numpy as np

from ..sim.simulate import SimResult

__all__ = ["column_windows", "pipeline_overlap", "column_period",
           "pipeline_report"]


def column_windows(result: SimResult) -> list[tuple[float, float]]:
    """Per panel column: (first task start, last task finish)."""
    qq = min(result.graph.p, result.graph.q)
    lo = [np.inf] * qq
    hi = [0.0] * qq
    for t in result.graph.tasks:
        k = t.col
        lo[k] = min(lo[k], result.start[t.tid])
        hi[k] = max(hi[k], result.finish[t.tid])
    return [(float(a), float(b)) for a, b in zip(lo, hi)]


def pipeline_overlap(result: SimResult) -> float:
    """Mean number of *open* column windows over the makespan (>= 1).

    1.0 means strictly sequential columns.  Read together with the
    window lengths: Greedy keeps a few *short* windows in flight,
    while FlatTree's serial panel holds every column open for ~6p
    units — high overlap for the wrong reason.
    """
    windows = column_windows(result)
    if result.makespan <= 0:
        return 1.0
    busy = sum(b - a for a, b in windows)
    return busy / result.makespan


def column_period(result: SimResult) -> float:
    """Median spacing between consecutive column completions.

    For asymptotically optimal trees this approaches the 22-unit
    steady-state of Theorem 1 as the grid grows.
    """
    windows = column_windows(result)
    ends = sorted(b for _, b in windows)
    if len(ends) < 2:
        return float(result.makespan)
    return float(np.median(np.diff(ends)))


def pipeline_report(source, processors: int | None = None,
                    priority: str = "critical-path",
                    analytics: bool = True) -> dict:
    """All pipeline metrics of a schedule in one dict.

    Parameters
    ----------
    source : SimResult or Plan
        A simulation result, or a :class:`~repro.planner.Plan` — the
        plan is scheduled via its memoized
        :meth:`~repro.planner.Plan.schedule` (unbounded when
        ``processors`` is ``None``).
    processors, priority
        Forwarded to the plan's scheduler; ignored for a SimResult.
    analytics : bool
        Include the :mod:`repro.obs.analyze` schedule summary
        (utilization, kernel shares, critical-path attribution, slack)
        under the ``"schedule"`` key.

    Returns
    -------
    dict
        ``makespan``, ``overlap`` (mean open column windows),
        ``period`` (median column completion spacing), ``windows``
        (per-column activity spans), and — unless ``analytics=False``
        — ``schedule`` (the compact
        :meth:`~repro.obs.analyze.ScheduleReport.summary`).
    """
    if isinstance(source, SimResult):
        result = source
    else:
        schedule = getattr(source, "schedule", None)
        if schedule is None:
            raise TypeError(
                f"expected a SimResult or a Plan, got {type(source).__name__}")
        result = schedule(processors, priority)
    report = {
        "makespan": float(result.makespan),
        "overlap": pipeline_overlap(result),
        "period": column_period(result),
        "windows": column_windows(result),
    }
    if analytics:
        from ..obs.analyze import analyze_sim  # local: analysis <-> obs

        report["schedule"] = analyze_sim(result).summary()
    return report
