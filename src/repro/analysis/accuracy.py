"""Numerical accuracy metrics for tiled QR factorizations (S14).

Section 1 of the paper argues for Householder-based QR over Gaussian
elimination because it is *unconditionally stable*; the tiled
algorithms inherit that stability regardless of the elimination tree,
because every kernel applies exact orthogonal transformations.  This
module quantifies it: normwise backward error, orthogonality defect,
and a comparison harness across trees/shapes/conditioning used by
``benchmarks/bench_accuracy.py`` and the accuracy example.

Definitions (Higham, *Accuracy and Stability of Numerical Algorithms*):

* backward error  ``||A - Q R|| / ||A||`` (Frobenius),
* orthogonality defect ``||Q^H Q - I||_2``,
* both should be ``O(c(m, n) * eps)`` with a low-degree polynomial
  ``c`` for any elimination tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AccuracyReport", "assess", "compare_schemes"]


@dataclass(frozen=True)
class AccuracyReport:
    """Stability metrics of one factorization.

    Attributes
    ----------
    backward_error : float
        ``||A - QR||_F / ||A||_F``.
    orthogonality : float
        ``||Q^H Q - I||_2`` of the thin ``Q``.
    eps_multiple : float
        ``backward_error / (max(m, n) * eps)`` — a machine-independent
        stability score; O(1)-to-O(10) is healthy Householder
        behaviour.
    """

    backward_error: float
    orthogonality: float
    eps_multiple: float

    def is_stable(self, factor: float = 100.0) -> bool:
        """True if the backward error is within ``factor * m * eps``."""
        return self.eps_multiple <= factor


def assess(factorization, a: np.ndarray) -> AccuracyReport:
    """Stability metrics of a :class:`~repro.core.tiled_qr.TiledQRFactorization`."""
    m, n = a.shape
    q = factorization.q()
    r = factorization.r()
    norm_a = np.linalg.norm(a)
    be = float(np.linalg.norm(a - q @ r) / max(norm_a, np.finfo(float).tiny))
    orth = float(np.linalg.norm(q.conj().T @ q - np.eye(n), 2))
    eps = float(np.finfo(np.asarray(a).real.dtype).eps)
    return AccuracyReport(
        backward_error=be,
        orthogonality=orth,
        eps_multiple=be / (max(m, n) * eps),
    )


def compare_schemes(
    a: np.ndarray,
    nb: int,
    schemes: list[str] = ("greedy", "fibonacci", "flat-tree", "binary-tree"),
    family: str = "TT",
    **kwargs,
) -> dict[str, AccuracyReport]:
    """Accuracy of every elimination tree on the same input.

    The paper's stability claim, testable: all trees should produce
    backward errors within a small factor of each other.
    """
    from ..core.tiled_qr import tiled_qr

    out = {}
    for scheme in schemes:
        f = tiled_qr(a, nb=nb, scheme=scheme, family=family, **kwargs)
        out[scheme] = assess(f, a)
    return out
