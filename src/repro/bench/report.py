"""Plain-text table and series formatting for the experiment drivers (S17).

The benchmark scripts print the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and easy to
diff against ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "format_step_matrix"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    floatfmt: str = ".4f",
) -> str:
    """Render an aligned plain-text table."""
    srows = []
    for row in rows:
        srows.append([
            f"{c:{floatfmt}}" if isinstance(c, float) else str(c) for c in row
        ])
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence[float]],
    title: str | None = None,
    floatfmt: str = ".2f",
) -> str:
    """Render figure-style data: one x column plus one column per curve."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [float(series[name][i]) for name in series])
    return format_table(headers, rows, title=title, floatfmt=floatfmt)


def format_step_matrix(steps, title: str | None = None) -> str:
    """Render a Table-2/3-style time-step matrix (0 entries as dots)."""
    lines = [] if title is None else [title]
    mx = int(steps.max()) if steps.size else 0
    w = max(2, len(str(mx)))
    for i in range(steps.shape[0]):
        cells = []
        for k in range(steps.shape[1]):
            v = int(steps[i, k])
            cells.append(str(v).rjust(w) if v else ".".rjust(w))
        lines.append(" ".join(cells))
    return "\n".join(lines)
