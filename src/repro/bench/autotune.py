"""Exhaustive PlasmaTree domain-size tuning (S16).

The paper stresses that PlasmaTree's performance hinges on the domain
size ``BS`` and that "it is not evident what the domain size should be
for the best performance, hence our exhaustive search".  This module
performs the same search: try every ``BS`` in ``1..p`` and keep the
best critical path (or the best predicted performance under a machine
model).  Greedy needs no such parameter — the paper's key selling
point.
"""

from __future__ import annotations

from ..analysis.model import PerformanceModel
from ..kernels.costs import KernelFamily, total_weight
from ..planner import plan as build_plan

__all__ = ["best_plasma_bs", "plasma_bs_sweep"]


def plasma_bs_sweep(
    p: int,
    q: int,
    family: KernelFamily | str = KernelFamily.TT,
    bs_values: list[int] | None = None,
) -> dict[int, float]:
    """Critical path of PlasmaTree for every domain size.

    Returns ``{bs: cp}`` for ``bs`` in ``bs_values`` (default ``1..p``).
    Each point goes through the plan cache, so re-running the sweep
    (``repro tune``, :func:`repro.core.auto.select_scheme`) is free.
    """
    if bs_values is None:
        bs_values = list(range(1, p + 1))
    return {bs: build_plan(p, q, "plasma-tree", family, bs=bs).critical_path()
            for bs in bs_values}


def best_plasma_bs(
    p: int,
    q: int,
    family: KernelFamily | str = KernelFamily.TT,
    model: PerformanceModel | None = None,
    bs_values: list[int] | None = None,
) -> tuple[int, float]:
    """Best PlasmaTree domain size by exhaustive search.

    Parameters
    ----------
    model : PerformanceModel or None
        ``None`` minimizes the critical path (the paper's theoretical
        Table 5); with a model, maximizes the predicted GFLOP/s
        (ties broken toward smaller ``BS`` and, since the total work is
        scheme-independent, this coincides with minimizing ``cp``
        whenever the critical path is the binding constraint).

    Returns
    -------
    (bs, value)
        Best domain size and its critical path (or predicted GFLOP/s).
    """
    sweep = plasma_bs_sweep(p, q, family, bs_values)
    if model is None:
        bs = min(sweep, key=lambda b: (sweep[b], b))
        return bs, sweep[bs]
    total = float(total_weight(p, q))
    perf = {b: model.predict(total, cp) for b, cp in sweep.items()}
    bs = max(perf, key=lambda b: (perf[b], -b))
    return bs, perf[bs]
