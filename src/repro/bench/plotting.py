"""Terminal line charts for the figure artifacts (S17).

The paper's Figures 1-8 are performance curves; the benchmark drivers
persist the underlying series as tables.  This module adds an ASCII
renderer so the artifacts also *look* like the figures — one glyph per
series, shared axes, no external dependencies.

>>> from repro.bench.plotting import ascii_chart
>>> print(ascii_chart([1, 2, 3], {"up": [1.0, 2.0, 3.0]},
...                   height=3, width=12))  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_chart"]

_GLYPHS = "ox+*#@%&"


def ascii_chart(
    xs: Sequence,
    series: dict[str, Sequence[float]],
    height: int = 16,
    width: int = 72,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render curves as an ASCII chart with a shared linear y-axis.

    Parameters
    ----------
    xs : sequence
        X values (used for the tick labels; points are spaced evenly).
    series : dict name -> values
        One curve per entry; all must have ``len(xs)`` points.
    height, width : int
        Plot-area size in characters.
    """
    if not series:
        raise ValueError("need at least one series")
    n = len(xs)
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(f"series {name!r} has {len(ys)} points, "
                             f"x axis has {n}")
    if n < 2 or height < 2 or width < n:
        raise ValueError("chart too small for the data")
    lo = min(min(ys) for ys in series.values())
    hi = max(max(ys) for ys in series.values())
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    cols = [round(i * (width - 1) / (n - 1)) for i in range(n)]

    def row_of(y: float) -> int:
        frac = (y - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    for s_idx, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[s_idx % len(_GLYPHS)]
        prev = None
        for i, y in enumerate(ys):
            r, c = row_of(float(y)), cols[i]
            # connect to the previous point with a sparse vertical run
            if prev is not None:
                pr, pc = prev
                for cc in range(pc + 1, c):
                    rr = round(pr + (r - pr) * (cc - pc) / (c - pc))
                    if grid[rr][cc] == " ":
                        grid[rr][cc] = "."
            grid[r][c] = glyph
            prev = (r, c)

    lab_hi = f"{hi:.4g}"
    lab_lo = f"{lo:.4g}"
    margin = max(len(lab_hi), len(lab_lo), len(y_label)) + 1
    lines = []
    if title:
        lines.append(title)
    for r in range(height):
        label = (lab_hi if r == 0 else lab_lo if r == height - 1
                 else y_label if r == height // 2 else "")
        lines.append(f"{label:>{margin}} |" + "".join(grid[r]))
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    # sparse x tick labels: first, middle, last
    ticks = [0, n // 2, n - 1]
    tick_line = [" "] * (width + 2)
    for t in ticks:
        lab = str(xs[t])
        pos = min(cols[t] + 2, len(tick_line) - len(lab))  # keep in frame
        for j, ch in enumerate(lab):
            tick_line[pos + j] = ch
    lines.append(" " * margin + "".join(tick_line))
    legend = "   ".join(f"{_GLYPHS[i % len(_GLYPHS)]} = {name}"
                        for i, name in enumerate(series))
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)
