"""Kernel timing harness: warm and cold cache protocols (S16).

Reproduces the measurement protocol behind the paper's Figures 4-5 and
the kernel-speed ratios of Section 4.  Two strategies, after
Whaley & Castaldo [17] / Agullo et al. [1]:

* **warm** ("No Flush") — repeat the kernel on the same tiles, so
  operands stay resident in cache;
* **cold** ("MultCallFlushLRU") — cycle through a ring of operand sets
  whose footprint far exceeds the last-level cache, evicting previous
  operands between calls.

Each measurement reports effective GFLOP/s using the nominal Table-1
flop counts (``weight * nb^3/3``, x4 in complex arithmetic), the same
normalization the paper plots.  The quantities of interest are the
ratios ``TSQRT : GEQRT+TTQRT`` and ``TSMQR : UNMQR+TTMQR`` (~1.3 in
the paper), i.e. how much cheaper the TS kernels are than the pair of
TT kernels doing the same job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..kernels.backend import KernelBackend, get_backend
from ..kernels.costs import Kernel, kernel_flops
from ..obs.metrics import MetricsRegistry

__all__ = ["KernelRates", "time_kernels", "measure_gamma_seq"]

#: default working-set size (bytes) that the cold protocol cycles through
_COLD_FOOTPRINT = 64 << 20


@dataclass
class KernelRates:
    """Measured per-kernel rates, in GFLOP/s and seconds per call."""

    nb: int
    ib: int
    dtype: str
    backend: str
    strategy: str
    gflops: dict[Kernel, float] = field(default_factory=dict)
    seconds: dict[Kernel, float] = field(default_factory=dict)

    def ts_vs_tt_factor_ratio(self) -> float:
        """Time ratio ``(GEQRT + TTQRT) / TSQRT`` (paper: ~1.33)."""
        s = self.seconds
        return (s[Kernel.GEQRT] + s[Kernel.TTQRT]) / s[Kernel.TSQRT]

    def ts_vs_tt_update_ratio(self) -> float:
        """Time ratio ``(UNMQR + TTMQR) / TSMQR`` (paper: ~1.32)."""
        s = self.seconds
        return (s[Kernel.UNMQR] + s[Kernel.TTMQR]) / s[Kernel.TSMQR]

    def weights_seconds(self) -> dict[Kernel, float]:
        """Per-kernel durations, usable as simulator weights."""
        return dict(self.seconds)


def _operand_ring(nb: int, dtype, strategy: str, rng) -> list[dict]:
    """Pre-built operand sets; the cold strategy cycles a large ring."""
    itemsize = np.dtype(dtype).itemsize
    per_set = 8 * nb * nb * itemsize  # rough footprint of one operand set
    count = 1 if strategy == "warm" else max(2, _COLD_FOOTPRINT // per_set)

    def mat(shape):
        a = rng.standard_normal(shape)
        if np.dtype(dtype).kind == "c":
            a = a + 1j * rng.standard_normal(shape)
        return np.ascontiguousarray(a.astype(dtype))

    ring = []
    for _ in range(count):
        ring.append({
            "square": mat((nb, nb)),
            "square2": mat((nb, nb)),
            "tri": np.triu(mat((nb, nb))),
            "tri2": np.triu(mat((nb, nb))),
            "c1": mat((nb, nb)),
            "c2": mat((nb, nb)),
        })
    return ring


def time_kernels(
    nb: int,
    ib: int = 32,
    dtype=np.float64,
    backend: str | KernelBackend = "lapack",
    strategy: str = "warm",
    min_time: float = 0.05,
    seed: int = 0,
    registry: MetricsRegistry | None = None,
) -> KernelRates:
    """Measure all six kernels at tile size ``nb``.

    Parameters
    ----------
    strategy : {"warm", "cold"}
        Cache protocol (see module docstring).
    min_time : float
        Minimum accumulated wall time per kernel before reporting.
    registry : MetricsRegistry or None
        Optional observability sink: every timed call lands in a
        ``kernel.seconds.<KERNEL>`` histogram and a
        ``kernel.calls.<KERNEL>`` counter, tagged with the benchmark's
        ``bench.*`` context gauges — the same registry shape the
        executor emits, so harness and runtime numbers are comparable.

    Returns
    -------
    KernelRates
    """
    if strategy not in ("warm", "cold"):
        raise ValueError(f"unknown strategy {strategy!r}")
    bk = get_backend(backend)
    rng = np.random.default_rng(seed)
    ring = _operand_ring(nb, dtype, strategy, rng)
    complex_arith = np.dtype(dtype).kind == "c"
    ibb = min(ib, nb)

    # Pre-factored V/T operands for the update kernels (one per ring set).
    for s in ring:
        vg = s["square"].copy()
        s["t_ge"] = bk.geqrt(vg, ibb)
        s["v_ge"] = vg
        rt = s["tri"].copy()
        vts = s["square2"].copy()
        s["t_ts"] = bk.tsqrt(rt, vts, ibb)
        s["v_ts"] = vts
        rt2 = s["tri"].copy()
        vtt = s["tri2"].copy()
        s["t_tt"] = bk.ttqrt(rt2, vtt, ibb)
        s["v_tt"] = vtt

    if registry is not None:
        registry.gauge("bench.nb", keep_samples=False).set(nb)
        registry.counter("bench.timing_runs").inc()

    def bench(kernel: Kernel, fn) -> float:
        """Accumulated seconds per call of ``fn(operand_set)``."""
        # one untimed warm-up call
        fn(ring[0])
        hist = (registry.histogram(f"kernel.seconds.{kernel.value}")
                if registry is not None else None)
        idx = 0
        calls = 0
        elapsed = 0.0
        while elapsed < min_time:
            s = ring[idx % len(ring)]
            idx += 1
            t0 = time.perf_counter()
            fn(s)
            dt = time.perf_counter() - t0
            elapsed += dt
            calls += 1
            if hist is not None:
                hist.observe(dt)
        if registry is not None:
            registry.counter(f"kernel.calls.{kernel.value}").inc(calls)
        return elapsed / calls

    timings = {
        Kernel.GEQRT: bench(
            Kernel.GEQRT, lambda s: bk.geqrt(s["square"].copy(), ibb)),
        Kernel.UNMQR: bench(
            Kernel.UNMQR, lambda s: bk.unmqr(s["v_ge"], s["t_ge"], s["c1"])),
        Kernel.TSQRT: bench(
            Kernel.TSQRT,
            lambda s: bk.tsqrt(s["tri"].copy(), s["square2"].copy(), ibb)),
        Kernel.TSMQR: bench(
            Kernel.TSMQR,
            lambda s: bk.tsmqr(s["v_ts"], s["t_ts"], s["c1"], s["c2"])),
        Kernel.TTQRT: bench(
            Kernel.TTQRT,
            lambda s: bk.ttqrt(s["tri"].copy(), s["tri2"].copy(), ibb)),
        Kernel.TTMQR: bench(
            Kernel.TTMQR,
            lambda s: bk.ttmqr(s["v_tt"], s["t_tt"], s["c1"], s["c2"])),
    }
    rates = KernelRates(nb=nb, ib=ibb, dtype=np.dtype(dtype).name,
                        backend=bk.name, strategy=strategy)
    for k, sec in timings.items():
        rates.seconds[k] = sec
        rates.gflops[k] = kernel_flops(k, nb, complex_arith) / sec / 1e9
        if registry is not None:
            registry.gauge(f"kernel.gflops.{k.value}",
                           keep_samples=False).set(rates.gflops[k])
    return rates


def measure_gamma_seq(rates: KernelRates) -> float:
    """Aggregate sequential kernel rate (GFLOP/s) for the Roofline model.

    The weighted harmonic mean of the kernel rates under Table-1 flop
    weights — i.e. the rate at which one core executes an average unit
    of tiled-QR work.
    """
    total_flops = 0.0
    total_sec = 0.0
    for k, sec in rates.seconds.items():
        f = kernel_flops(k, rates.nb, rates.dtype.startswith("complex"))
        total_flops += f
        total_sec += sec
    return total_flops / total_sec / 1e9
