"""Benchmark harness substrates (S16-S17)."""

from .autotune import best_plasma_bs
from .kernel_timing import KernelRates, time_kernels
from .plotting import ascii_chart
from .report import format_table, format_series

__all__ = [
    "best_plasma_bs",
    "KernelRates",
    "time_kernels",
    "format_table",
    "format_series",
    "ascii_chart",
]
