"""Task-graph executors: sequential and threaded dataflow (S12).

Given a :class:`~repro.dag.tasks.TaskGraph` and a
:class:`~repro.tiles.layout.TiledMatrix`, the executors run the actual
numeric kernels.  Two modes:

* **sequential** — tasks in emission (topological) order; the baseline
  and reference for correctness.
* **threaded** — a dynamic dataflow scheduler on a thread pool: a task
  is submitted the moment its last dependency retires, mirroring
  PLASMA's runtime.  NumPy/LAPACK kernels release the GIL inside BLAS,
  so genuine parallelism is possible, though Python-level scheduling
  overhead limits scaling for small tiles (this is the documented
  substitution for the paper's 48-core C runtime; see DESIGN.md §2).

The executor owns the side table of ``T`` factors produced by the
factor kernels and consumed by the update kernels; it is returned as an
:class:`ExecutionContext` so the Q factor can later be applied to
arbitrary right-hand sides by replaying the panel tasks
(:meth:`ExecutionContext.apply_q`).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..dag.tasks import Task, TaskGraph
from ..kernels.backend import KernelBackend, get_backend
from ..kernels.costs import Kernel
from ..tiles.layout import TiledMatrix

__all__ = ["ExecutionContext", "execute_graph"]

#: which T-factor slot each kernel reads/writes
_KIND = {
    Kernel.GEQRT: "ge", Kernel.UNMQR: "ge",
    Kernel.TSQRT: "ts", Kernel.TSMQR: "ts",
    Kernel.TTQRT: "tt", Kernel.TTMQR: "tt",
}


@dataclass
class ExecutionContext:
    """State of an executed factorization: tiles, T factors, task order."""

    tiled: TiledMatrix
    graph: TaskGraph
    backend: KernelBackend
    ib: int
    tfactors: dict[tuple[int, int, str], Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def run_task(self, t: Task) -> None:
        """Execute one kernel task against the tile views."""
        bk, tiles, tf = self.backend, self.tiled, self.tfactors
        if t.kernel is Kernel.GEQRT:
            tf[(t.row, t.col, "ge")] = bk.geqrt(tiles.tile(t.row, t.col), self.ib)
        elif t.kernel is Kernel.UNMQR:
            bk.unmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ge")],
                     tiles.tile(t.row, t.j))
        elif t.kernel is Kernel.TSQRT:
            tf[(t.row, t.col, "ts")] = bk.tsqrt(
                tiles.tile(t.piv, t.col), tiles.tile(t.row, t.col), self.ib)
        elif t.kernel is Kernel.TSMQR:
            bk.tsmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ts")],
                     tiles.tile(t.piv, t.j), tiles.tile(t.row, t.j))
        elif t.kernel is Kernel.TTQRT:
            tf[(t.row, t.col, "tt")] = bk.ttqrt(
                tiles.tile(t.piv, t.col), tiles.tile(t.row, t.col), self.ib)
        elif t.kernel is Kernel.TTMQR:
            bk.ttmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "tt")],
                     tiles.tile(t.piv, t.j), tiles.tile(t.row, t.j))
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown kernel {t.kernel}")

    # ------------------------------------------------------------------
    def apply_q_right(self, c: np.ndarray, adjoint: bool = False) -> np.ndarray:
        """Apply ``Q`` (or ``Q^H``) of the factorization to ``c`` from
        the right, in place.

        ``c`` must have ``m`` columns.  ``C @ Q`` replays the panel
        tasks in emission order (``Q = Q_1 Q_2 ...``), ``C @ Q^H`` in
        reverse with adjoints.
        """
        if c.shape[1] != self.tiled.m:
            raise ValueError(
                f"c has {c.shape[1]} columns, factorization has {self.tiled.m}")
        nb = self.tiled.nb
        bk, tiles, tf = self.backend, self.tiled, self.tfactors

        def block(i: int) -> np.ndarray:
            return c[:, i * nb : min((i + 1) * nb, self.tiled.m)]

        panel_tasks = [t for t in self.graph.tasks
                       if t.kernel in (Kernel.GEQRT, Kernel.TSQRT, Kernel.TTQRT)]
        order = reversed(panel_tasks) if adjoint else panel_tasks
        for t in order:
            if t.kernel is Kernel.GEQRT:
                bk.unmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ge")],
                         block(t.row), adjoint=adjoint, side="R")
            elif t.kernel is Kernel.TSQRT:
                bk.tsmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ts")],
                         block(t.piv), block(t.row), adjoint=adjoint, side="R")
            else:
                bk.ttmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "tt")],
                         block(t.piv), block(t.row), adjoint=adjoint, side="R")
        return c

    def apply_q(self, c: np.ndarray, adjoint: bool = True) -> np.ndarray:
        """Apply ``Q`` or ``Q^H`` of the factorization to ``c`` in place.

        ``c`` must have ``m`` rows (padded rows included if the
        factorization padded).  The panel tasks are replayed in
        emission order for ``Q^H`` (the factorization direction) and in
        reverse order with un-adjointed reflectors for ``Q``; any
        linearization of the DAG yields the same product because
        concurrent transformations touch disjoint row blocks.
        """
        if c.shape[0] != self.tiled.m:
            raise ValueError(
                f"c has {c.shape[0]} rows, factorization has {self.tiled.m}")
        nb = self.tiled.nb
        bk, tiles, tf = self.backend, self.tiled, self.tfactors

        def block(i: int) -> np.ndarray:
            return c[i * nb : min((i + 1) * nb, self.tiled.m), :]

        panel_tasks = [t for t in self.graph.tasks
                       if t.kernel in (Kernel.GEQRT, Kernel.TSQRT, Kernel.TTQRT)]
        order = panel_tasks if adjoint else reversed(panel_tasks)
        for t in order:
            if t.kernel is Kernel.GEQRT:
                bk.unmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ge")],
                         block(t.row), adjoint=adjoint)
            elif t.kernel is Kernel.TSQRT:
                bk.tsmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ts")],
                         block(t.piv), block(t.row), adjoint=adjoint)
            else:
                bk.ttmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "tt")],
                         block(t.piv), block(t.row), adjoint=adjoint)
        return c


def execute_graph(
    graph: TaskGraph,
    tiled: TiledMatrix,
    backend: str | KernelBackend = "reference",
    ib: int = 32,
    workers: int | None = None,
    on_task_done=None,
) -> ExecutionContext:
    """Run every kernel of ``graph`` against ``tiled``.

    Parameters
    ----------
    graph : TaskGraph
        The factorization DAG (from :func:`repro.dag.build_dag`).
    tiled : TiledMatrix
        Tile views over the working array (mutated in place).
    backend : str or KernelBackend
        ``"reference"`` or ``"lapack"``.
    ib : int
        Inner blocking size for the kernels.
    workers : int or None
        ``None`` or ``1`` runs sequentially; otherwise a threaded
        dataflow scheduler with that many workers.
    on_task_done : callable or None
        Optional observer ``(task, done_count, total) -> None`` invoked
        after each kernel retires (progress bars, logging, tracing).
        In threaded mode it is called from worker threads, serialized
        under the scheduler lock; keep it fast.

    Returns
    -------
    ExecutionContext
    """
    ctx = ExecutionContext(tiled=tiled, graph=graph,
                           backend=get_backend(backend), ib=ib)
    if workers is None or workers <= 1:
        total = len(graph.tasks)
        for i, t in enumerate(graph.tasks, start=1):
            ctx.run_task(t)
            if on_task_done is not None:
                on_task_done(t, i, total)
        return ctx

    # threaded dataflow scheduler
    n = len(graph.tasks)
    succ = graph.successors()
    indeg = [len(t.deps) for t in graph.tasks]
    lock = threading.Lock()
    done = threading.Event()
    remaining = [n]
    errors: list[BaseException] = []
    if n == 0:
        return ctx
    # Snapshot the initially ready set *before* any worker can start
    # decrementing indeg, otherwise a task whose dependencies retire
    # while we are still submitting would be dispatched twice.
    initial = [t.tid for t in graph.tasks if indeg[t.tid] == 0]

    with ThreadPoolExecutor(max_workers=workers) as pool:

        def retire(tid: int) -> None:
            newly_ready = []
            with lock:
                remaining[0] -= 1
                done_count = n - remaining[0]
                if on_task_done is not None:
                    on_task_done(graph.tasks[tid], done_count, n)
                if remaining[0] == 0:
                    done.set()
                for s in succ[tid]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        newly_ready.append(s)
            for s in newly_ready:
                pool.submit(run, s)

        def run(tid: int) -> None:
            try:
                ctx.run_task(graph.tasks[tid])
            except BaseException as exc:  # propagate to the caller
                with lock:
                    errors.append(exc)
                done.set()
                return
            retire(tid)

        for tid in initial:
            pool.submit(run, tid)
        done.wait()
    if errors:
        raise errors[0]
    return ctx
