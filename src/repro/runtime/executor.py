"""Task-graph executors: sequential and threaded dataflow (S12).

Given a :class:`~repro.dag.tasks.TaskGraph` and a
:class:`~repro.tiles.layout.TiledMatrix`, the executors run the actual
numeric kernels.  Two modes:

* **sequential** — tasks in emission (topological) order; the baseline
  and reference for correctness.
* **threaded** — a dynamic dataflow scheduler on a thread pool: a task
  becomes ready the moment its last dependency retires, mirroring
  PLASMA's runtime.  Ready tasks are popped from a heap ordered by
  *descending bottom-level* (critical-path priority, from the Plan's
  memoized ``bottom_levels``; FIFO when no Plan is supplied), so
  critical-path work is never starved by ready filler tasks.
  NumPy/LAPACK kernels release the GIL inside BLAS, so genuine
  parallelism is possible, though Python-level scheduling overhead
  limits scaling for small tiles (this is the documented substitution
  for the paper's 48-core C runtime; see DESIGN.md §2).

A third mode lives in :mod:`repro.runtime.batched` and is reached via
``execute_graph(..., mode="batched")``: level-synchronous batched
execution of stacked tile groups (the fast path for real
factorizations; see that module and docs/performance.md).

The executor owns the side table of ``T`` factors produced by the
factor kernels and consumed by the update kernels; it is returned as an
:class:`ExecutionContext` so the Q factor can later be applied to
arbitrary right-hand sides by replaying the panel tasks
(:meth:`ExecutionContext.apply_q`).
"""

from __future__ import annotations

import heapq
import itertools
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..dag.tasks import Task, TaskGraph
from ..kernels.backend import KernelBackend, get_backend
from ..kernels.costs import Kernel
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from ..tiles.layout import TiledMatrix
from .options import ExecOptions

__all__ = ["ExecutionContext", "ExecOptions", "execute_graph"]

logger = logging.getLogger(__name__)


def _clamp_ib(ib: int, nb: int, metrics: MetricsRegistry | None) -> int:
    """Clamp the inner blocking size to the tile size, once, at entry.

    ``ib=32`` silently exceeding a small ``nb`` used to be absorbed by
    each kernel's internal ``min`` — correct, but invisible.  Clamp
    here and say so.  Non-positive ``ib`` is passed through untouched
    so kernel-level validation still fires.
    """
    if ib > nb:
        logger.warning("ib=%d exceeds tile size nb=%d; clamped to %d",
                       ib, nb, nb)
        if metrics is not None:
            metrics.counter("executor.ib_clamped").inc()
        return nb
    return ib

#: which T-factor slot each kernel reads/writes
_KIND = {
    Kernel.GEQRT: "ge", Kernel.UNMQR: "ge",
    Kernel.TSQRT: "ts", Kernel.TSMQR: "ts",
    Kernel.TTQRT: "tt", Kernel.TTMQR: "tt",
}

#: update kernels eligible for *stacked* execution when the threaded
#: scheduler claims a micro-batch (factor kernels batch too, but run
#: per-task inside the claim — stacked factor reductions associate
#: differently and would break numpy-path bit-exactness)
_APPLY_KERNELS = (Kernel.UNMQR, Kernel.TSMQR, Kernel.TTMQR)


def _run_apply_group(ctx: "ExecutionContext", tasks_: list[Task]) -> bool:
    """Execute a same-kernel apply micro-batch as stacked operations.

    Returns ``False`` (caller loops ``run_task``) unless every tile
    involved is a full ``nb x nb`` view — ragged edge tiles cannot
    stack — and the context runs the reference backend (whose
    per-tile applies the stacked kernels reproduce bitwise; the
    LAPACK backend's applies are different routines, so grouping them
    stacked would silently change which numerics ran).  Same V-run
    decomposition as the batched/process backends
    (:func:`repro.runtime.groups.v_runs`): tiles sharing one source
    V/T are one broadcast batched apply.
    """
    from ..kernels.batched import apply_stacked_batched, unmqr_batched
    from ..kernels.stacked import ts_support, tt_support
    from .groups import broadcast_tfactor, v_runs

    tiled = ctx.tiled
    nb = tiled.nb
    kern = tasks_[0].kernel
    for t in tasks_:
        if (tiled.row_height(t.row) != nb or tiled.col_width(t.col) != nb
                or tiled.col_width(t.j) != nb):
            return False
        if t.piv is not None and tiled.row_height(t.piv) != nb:
            return False
    kind = _KIND[kern]
    ib = ctx.ib
    tf = ctx.tfactors
    vkeys = np.fromiter((t.row * tiled.q + t.col for t in tasks_),
                        dtype=np.int64, count=len(tasks_))
    order, bounds = v_runs(vkeys)
    ordered = [tasks_[int(i)] for i in order]
    if kern is Kernel.UNMQR:
        c = np.stack([tiled.tile(t.row, t.j) for t in ordered])
        for u0, u1 in zip(bounds[:-1], bounds[1:]):
            lead = ordered[u0]
            bt = broadcast_tfactor(
                tf[(lead.row, lead.col, "ge")].blocks, ib)
            unmqr_batched(tiled.tile(lead.row, lead.col)[None], bt,
                          c[u0:u1])
        for i, t in enumerate(ordered):
            tiled.tile(t.row, t.j)[:] = c[i]
        return True
    support = tt_support if kern is Kernel.TTMQR else ts_support
    c_top = np.stack([tiled.tile(t.piv, t.j) for t in ordered])
    c_bot = np.stack([tiled.tile(t.row, t.j) for t in ordered])
    for u0, u1 in zip(bounds[:-1], bounds[1:]):
        lead = ordered[u0]
        bt = broadcast_tfactor(tf[(lead.row, lead.col, kind)].blocks, ib)
        apply_stacked_batched(tiled.tile(lead.row, lead.col)[None], bt,
                              c_top[u0:u1], c_bot[u0:u1], support,
                              mask=kern is Kernel.TTMQR)
    for i, t in enumerate(ordered):
        tiled.tile(t.piv, t.j)[:] = c_top[i]
        tiled.tile(t.row, t.j)[:] = c_bot[i]
    return True


@dataclass
class ExecutionContext:
    """State of an executed factorization: tiles, T factors, task order.

    When the run was observed, :attr:`tracer` holds the span capture
    and :attr:`metrics` the registry the executor wrote into; both are
    ``None`` for unobserved runs.
    """

    tiled: TiledMatrix
    graph: TaskGraph
    backend: KernelBackend
    ib: int
    tfactors: dict[tuple[int, int, str], Any] = field(default_factory=dict)
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------------
    def run_task(self, t: Task) -> None:
        """Execute one kernel task against the tile views."""
        bk, tiles, tf = self.backend, self.tiled, self.tfactors
        if t.kernel is Kernel.GEQRT:
            tf[(t.row, t.col, "ge")] = bk.geqrt(tiles.tile(t.row, t.col), self.ib)
        elif t.kernel is Kernel.UNMQR:
            bk.unmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ge")],
                     tiles.tile(t.row, t.j))
        elif t.kernel is Kernel.TSQRT:
            tf[(t.row, t.col, "ts")] = bk.tsqrt(
                tiles.tile(t.piv, t.col), tiles.tile(t.row, t.col), self.ib)
        elif t.kernel is Kernel.TSMQR:
            bk.tsmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ts")],
                     tiles.tile(t.piv, t.j), tiles.tile(t.row, t.j))
        elif t.kernel is Kernel.TTQRT:
            tf[(t.row, t.col, "tt")] = bk.ttqrt(
                tiles.tile(t.piv, t.col), tiles.tile(t.row, t.col), self.ib)
        elif t.kernel is Kernel.TTMQR:
            bk.ttmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "tt")],
                     tiles.tile(t.piv, t.j), tiles.tile(t.row, t.j))
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown kernel {t.kernel}")

    # ------------------------------------------------------------------
    def apply_q_right(self, c: np.ndarray, adjoint: bool = False) -> np.ndarray:
        """Apply ``Q`` (or ``Q^H``) of the factorization to ``c`` from
        the right, in place.

        ``c`` must have ``m`` columns.  ``C @ Q`` replays the panel
        tasks in emission order (``Q = Q_1 Q_2 ...``), ``C @ Q^H`` in
        reverse with adjoints.
        """
        if c.shape[1] != self.tiled.m:
            raise ValueError(
                f"c has {c.shape[1]} columns, factorization has {self.tiled.m}")
        nb = self.tiled.nb
        bk, tiles, tf = self.backend, self.tiled, self.tfactors

        def block(i: int) -> np.ndarray:
            return c[:, i * nb : min((i + 1) * nb, self.tiled.m)]

        panel_tasks = [t for t in self.graph.tasks
                       if t.kernel in (Kernel.GEQRT, Kernel.TSQRT, Kernel.TTQRT)]
        order = reversed(panel_tasks) if adjoint else panel_tasks
        for t in order:
            if t.kernel is Kernel.GEQRT:
                bk.unmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ge")],
                         block(t.row), adjoint=adjoint, side="R")
            elif t.kernel is Kernel.TSQRT:
                bk.tsmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ts")],
                         block(t.piv), block(t.row), adjoint=adjoint, side="R")
            else:
                bk.ttmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "tt")],
                         block(t.piv), block(t.row), adjoint=adjoint, side="R")
        return c

    def apply_q(self, c: np.ndarray, adjoint: bool = True) -> np.ndarray:
        """Apply ``Q`` or ``Q^H`` of the factorization to ``c`` in place.

        ``c`` must have ``m`` rows (padded rows included if the
        factorization padded).  The panel tasks are replayed in
        emission order for ``Q^H`` (the factorization direction) and in
        reverse order with un-adjointed reflectors for ``Q``; any
        linearization of the DAG yields the same product because
        concurrent transformations touch disjoint row blocks.
        """
        if c.shape[0] != self.tiled.m:
            raise ValueError(
                f"c has {c.shape[0]} rows, factorization has {self.tiled.m}")
        nb = self.tiled.nb
        bk, tiles, tf = self.backend, self.tiled, self.tfactors

        def block(i: int) -> np.ndarray:
            return c[i * nb : min((i + 1) * nb, self.tiled.m), :]

        panel_tasks = [t for t in self.graph.tasks
                       if t.kernel in (Kernel.GEQRT, Kernel.TSQRT, Kernel.TTQRT)]
        order = panel_tasks if adjoint else reversed(panel_tasks)
        for t in order:
            if t.kernel is Kernel.GEQRT:
                bk.unmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ge")],
                         block(t.row), adjoint=adjoint)
            elif t.kernel is Kernel.TSQRT:
                bk.tsmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "ts")],
                         block(t.piv), block(t.row), adjoint=adjoint)
            else:
                bk.ttmqr(tiles.tile(t.row, t.col), tf[(t.row, t.col, "tt")],
                         block(t.piv), block(t.row), adjoint=adjoint)
        return c


def execute_graph(
    graph,
    tiled: TiledMatrix,
    backend: str | KernelBackend = "reference",
    ib: int = 32,
    workers: int | None = None,
    mode: str = "task",
    numeric: str = "auto",
    start_method: str | None = None,
    pool=None,
    batch="auto",
    on_task_done=None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    collect_metrics: bool = False,
    bus=None,
    options: ExecOptions | None = None,
) -> ExecutionContext:
    """Run every kernel of ``graph`` against ``tiled``.

    Parameters
    ----------
    graph : TaskGraph or Plan
        The factorization DAG (from :func:`repro.dag.build_dag`), or a
        :class:`~repro.planner.Plan` wrapping one (from
        :func:`repro.api.plan`).  Passing the Plan is preferred: the
        batched mode reuses its cached level groups and the threaded
        scheduler its memoized bottom-levels.
    tiled : TiledMatrix
        Tile views over the working array (mutated in place).
    backend : str or KernelBackend
        ``"reference"`` or ``"lapack"``.  Ignored by
        ``mode="batched"``, which always runs its own stacked NumPy
        kernels.
    ib : int
        Inner blocking size for the kernels.  Clamped to ``tiled.nb``
        at entry (with a log warning and an ``executor.ib_clamped``
        metrics counter) — ``ib > nb`` is meaningless and used to be
        silently absorbed by each kernel.
    workers : int or None
        ``None`` or ``1`` runs sequentially; otherwise a threaded
        dataflow scheduler with that many workers.  Ignored by
        ``mode="batched"`` (level-synchronous, single-threaded
        orchestration over multi-threaded BLAS).
    mode : str
        ``"task"`` (default) retires one task at a time (sequential or
        threaded per ``workers``); ``"batched"`` delegates to
        :func:`repro.runtime.batched.execute_batched`, which executes
        each (level, kernel) group of independent tasks as stacked 3-D
        operations — typically much faster for real factorizations;
        ``"process"`` delegates to
        :func:`repro.runtime.procpool.execute_process`, which runs the
        kernels on ``workers`` worker *processes* over a shared-memory
        tile pool with a rolling ready-frontier (no level barrier).
    numeric : str
        Factor-kernel implementation for ``mode="batched"`` and
        ``mode="process"`` (ignored otherwise): ``"numpy"``,
        ``"lapack"``, or ``"auto"`` (LAPACK when the dtype supports
        it).  See :func:`repro.runtime.batched.execute_batched`.
    start_method : str or None
        ``mode="process"`` only: the :mod:`multiprocessing` start
        method (``"fork"``, ``"spawn"``, ``"forkserver"``; ``None``
        picks ``fork`` where available).
    pool : repro.runtime.procpool.ProcessPool or None
        ``mode="process"`` only: reuse a persistent worker pool
        instead of starting (and stopping) an ephemeral one — this is
        how repeated factorizations amortize worker start-up.
    batch : int or str
        Micro-batch dispatch (``mode="process"`` and the threaded
        ``mode="task"`` scheduler): ``"auto"`` (default) targets ~1ms
        of estimated work per group, an int >= 2 fixes the group size,
        ``"off"`` (or ``1``) dispatches single tasks.  Compatible
        (same-kernel) ready tasks execute as one stacked group —
        bit-exact with single-task dispatch on the numpy path.  See
        :func:`repro.runtime.groups.resolve_batch`.
    on_task_done : callable or None
        Optional observer ``(task, done_count, total) -> None`` invoked
        after each kernel retires (progress bars, logging).  In
        threaded mode it is called from worker threads, serialized
        under the scheduler lock; keep it fast.  An exception raised by
        the observer aborts the run and re-raises in the caller — it
        cannot deadlock the scheduler.  For tracing prefer ``tracer=``,
        which also records timestamps and placement.
    tracer : Tracer or None
        Span tracer recording one :class:`~repro.obs.tracer.Span` per
        task (submit/start/finish wall-times, worker thread).  ``None``
        or a disabled tracer (:data:`~repro.obs.tracer.NULL_TRACER`)
        keeps the hot path free of any per-task tracing work.
    metrics : MetricsRegistry or None
        Registry receiving per-kernel retirement counters and
        wall-time histograms plus scheduler-health series (in-flight
        task depth, time spent waiting on / holding the scheduler
        lock — a direct measure of Python overhead).
    collect_metrics : bool
        Convenience: create a fresh registry when ``metrics`` is not
        given.  The registry used is returned on the context's
        ``metrics`` attribute either way.
    bus : EventBus or None
        Live event bus (:class:`repro.obs.stream.EventBus`) receiving
        streaming telemetry while the run progresses: ``run_start`` /
        ``run_done``, per-task ``task_start`` / ``task_done`` (with
        worker index and kernel seconds), and ``frontier`` depth after
        each retirement.  ``None`` or a disabled bus
        (:data:`~repro.obs.stream.NULL_BUS`) skips all publishing on
        the hot path.
    options : ExecOptions or None
        Bundle of the execution knobs (``mode``, ``workers``,
        ``numeric``, ``start_method``, ``pool``) as one object — the
        preferred spelling for new call sites.  The individual
        keywords remain accepted; a keyword that *conflicts* with a
        non-default value in the bundle raises rather than silently
        winning (see :meth:`ExecOptions.resolve`).

    Returns
    -------
    ExecutionContext
    """
    opts = ExecOptions.resolve(options, mode=mode, workers=workers,
                               numeric=numeric, start_method=start_method,
                               pool=pool, batch=batch)
    mode, workers, numeric = opts.mode, opts.workers, opts.numeric
    start_method, pool, batch = opts.start_method, opts.pool, opts.batch
    if mode == "process":
        from .procpool import execute_process
        return execute_process(graph, tiled, ib=ib, numeric=numeric,
                               workers=workers, start_method=start_method,
                               pool=pool, batch=batch,
                               on_task_done=on_task_done,
                               tracer=tracer, metrics=metrics,
                               collect_metrics=collect_metrics, bus=bus)
    if mode == "batched":
        from .batched import execute_batched
        return execute_batched(graph, tiled, ib=ib, numeric=numeric,
                               on_task_done=on_task_done, tracer=tracer,
                               metrics=metrics,
                               collect_metrics=collect_metrics, bus=bus)
    plan_obj = None
    if not isinstance(graph, TaskGraph):
        wrapped = getattr(graph, "graph", None)  # Plan-shaped object
        if not isinstance(wrapped, TaskGraph):
            raise TypeError(
                f"expected a TaskGraph or a Plan, got {type(graph).__name__}")
        plan_obj = graph
        graph = wrapped
    if tracer is not None and not tracer.enabled:
        tracer = None
    if bus is not None and not getattr(bus, "enabled", True):
        bus = None
    if metrics is None and collect_metrics:
        metrics = MetricsRegistry()
    ib = _clamp_ib(ib, tiled.nb, metrics)
    ctx = ExecutionContext(tiled=tiled, graph=graph,
                           backend=get_backend(backend), ib=ib,
                           tracer=tracer, metrics=metrics)
    observed = tracer is not None or metrics is not None
    timed = observed or bus is not None
    if metrics is not None:
        metrics.counter("scheduler.tasks_total").inc(len(graph.tasks))
        metrics.gauge("scheduler.workers", keep_samples=False).set(
            1 if workers is None else max(1, workers))

    problem = getattr(graph, "problem", "") or ""

    if workers is None or workers <= 1:
        total = len(graph.tasks)
        if bus is not None:
            bus.publish("run_start", total=total, count=1, problem=problem)
        for i, t in enumerate(graph.tasks, start=1):
            if bus is not None:
                bus.publish("task_start", tid=t.tid,
                            kernel=t.kernel.value, worker=0)
            if timed:
                t0 = time.perf_counter()
            ctx.run_task(t)
            if timed:
                t1 = time.perf_counter()
                if observed:
                    _observe_task(t, t0, t1, tracer, metrics,
                                  submit=t0, worker=0)
            if bus is not None:
                bus.publish("task_done", tid=t.tid, kernel=t.kernel.value,
                            worker=0, value=t1 - t0)
            if on_task_done is not None:
                on_task_done(t, i, total)
        if bus is not None:
            bus.publish("run_done", count=total, value=bus.now())
        return ctx

    # Threaded dataflow scheduler with a priority ready-queue.  Ready
    # tasks sit in a heap keyed by descending bottom-level (when a Plan
    # supplied one) so the deepest remaining critical path is always
    # served first; the monotone push sequence breaks ties, which also
    # makes the no-priority case plain FIFO.
    n = len(graph.tasks)
    if n == 0:
        return ctx
    succ = graph.successors()
    indeg = [len(t.deps) for t in graph.tasks]
    prio = None
    if plan_obj is not None and hasattr(plan_obj, "bottom_levels"):
        prio = np.asarray(plan_obj.bottom_levels(), dtype=np.float64)
    # Micro-batching (same --batch option as the process backend): a
    # worker claims up to batch_size same-kernel ready tasks in one
    # lock acquisition and executes apply kernels stacked.
    if batch == "off":
        batch_size = 1
    else:
        from .groups import resolve_batch
        idx_w = graph.index().weights
        batch_size = resolve_batch(
            batch, tiled.nb,
            float(idx_w.mean()) if idx_w.size else 1.0,
            workers=max(1, workers))
    stack_ok = ctx.backend.name == "reference"
    if metrics is not None:
        metrics.gauge("scheduler.batch.size", keep_samples=False).set(
            batch_size)
    lock = threading.Lock()
    done = threading.Event()
    remaining = [n]
    active = [0]  # worker loops currently alive
    seq = itertools.count()
    ready: list[tuple[float, int, int]] = []  # (-bottom_level, seq, tid)
    errors: list[BaseException] = []
    # Submit stamps are epoch-relative; the queue wait (start - submit)
    # is epoch-invariant, so a metrics-only run uses a local epoch while
    # a traced run shares the tracer's (keeping span submit times
    # consistent with spans recorded elsewhere).
    submit_ts = [0.0] * n if observed else None
    epoch = tracer.epoch if tracer is not None else time.perf_counter()
    W = max(1, workers)

    def push(tid: int) -> None:  # lock held
        if submit_ts is not None:
            submit_ts[tid] = time.perf_counter() - epoch
        key = -prio[tid] if prio is not None else 0.0
        heapq.heappush(ready, (key, next(seq), tid))

    def pop() -> int:  # lock held
        _, s, tid = heapq.heappop(ready)
        # A popped task younger than some queued task means FIFO would
        # have run the wrong (shallower) task first.  O(queue) scan,
        # paid only on observed runs.
        if metrics is not None and ready and min(
                e[1] for e in ready) < s:
            metrics.counter("scheduler.priority_inversions_avoided").inc()
        return tid

    with ThreadPoolExecutor(max_workers=W) as pool:

        def abort(exc: BaseException) -> None:
            with lock:
                errors.append(exc)
                active[0] -= 1
            done.set()

        def worker_loop() -> None:
            while True:
                with lock:
                    if errors or not ready:
                        active[0] -= 1
                        return
                    tid = pop()
                    claimed = [tid]
                    if batch_size > 1:
                        k0 = graph.tasks[tid].kernel
                        # leave at least one ready task per other
                        # worker — one claim must not drain the
                        # frontier the rest of the pool would run
                        limit = min(batch_size,
                                    1 + max(0, len(ready) - (W - 1)))
                        while (len(claimed) < limit and ready
                               and graph.tasks[ready[0][2]].kernel
                               is k0):
                            claimed.append(pop())
                tasks_ = [graph.tasks[t_] for t_ in claimed]
                k = len(tasks_)
                if bus is not None:
                    widx = bus.worker_index()
                    for task in tasks_:
                        bus.publish("task_start", tid=task.tid,
                                    kernel=task.kernel.value, worker=widx)
                if timed:
                    t0 = time.perf_counter()
                try:
                    if not (k > 1 and stack_ok
                            and tasks_[0].kernel in _APPLY_KERNELS
                            and _run_apply_group(ctx, tasks_)):
                        for task in tasks_:
                            ctx.run_task(task)
                except BaseException as exc:  # propagate to the caller
                    abort(exc)
                    return
                if timed:
                    t1 = time.perf_counter()
                    share = (t1 - t0) / k
                    if observed:
                        # stacked kernels leave no per-task boundaries:
                        # split the claim's window evenly, as the
                        # process backend does for its groups
                        for i, task in enumerate(tasks_):
                            _observe_task(task, t0 + i * share,
                                          t0 + (i + 1) * share, tracer,
                                          metrics, submit_ts=submit_ts,
                                          epoch=epoch)
                # retire: release successors, top the worker pool back up
                newly_ready = []
                if metrics is not None:
                    t_req = time.perf_counter()
                with lock:
                    if metrics is not None:
                        t_in = time.perf_counter()
                    done_base = n - remaining[0]
                    remaining[0] -= k
                    if on_task_done is not None:
                        try:
                            for i, task in enumerate(tasks_):
                                on_task_done(task, done_base + i + 1, n)
                        except BaseException as exc:
                            # An observer failure must not leave done
                            # unset (deadlock); abort like a kernel
                            # failure.
                            errors.append(exc)
                            active[0] -= 1
                            done.set()
                            return
                    if remaining[0] == 0:
                        done.set()
                    for task in tasks_:
                        for s_ in succ[task.tid]:
                            indeg[s_] -= 1
                            if indeg[s_] == 0:
                                newly_ready.append(s_)
                    for s_ in newly_ready:
                        push(s_)
                    spawn = min(W - active[0], len(ready))
                    active[0] += spawn
                    depth = active[0] + len(ready)
                    frontier = len(ready)
                if bus is not None:
                    for task in tasks_:
                        bus.publish("task_done", tid=task.tid,
                                    kernel=task.kernel.value,
                                    worker=widx, value=share)
                        bus.publish("frontier", value=float(frontier),
                                    count=depth)
                if metrics is not None:
                    t_out = time.perf_counter()
                    metrics.counter("scheduler.lock_wait_seconds").inc(
                        t_in - t_req)
                    metrics.counter("scheduler.lock_hold_seconds").inc(
                        t_out - t_in)
                    metrics.gauge("scheduler.inflight_tasks").set(
                        depth, t=t_out)
                    metrics.histogram(
                        "scheduler.newly_ready",
                        buckets=(0, 1, 2, 4, 8, 16, 32),
                    ).observe(len(newly_ready))
                for _ in range(spawn):
                    pool.submit(worker_loop)
                # loop back for the next ready claim

        if bus is not None:
            bus.publish("run_start", total=n, count=W, problem=problem)
        with lock:
            for t in graph.tasks:
                if indeg[t.tid] == 0:
                    push(t.tid)
            spawn = min(W, len(ready))
            active[0] = spawn
            frontier0 = len(ready)
        if bus is not None:
            bus.publish("frontier", value=float(frontier0), count=spawn)
        for _ in range(spawn):
            pool.submit(worker_loop)
        done.wait()
    if bus is not None:
        bus.publish("run_done", count=n - remaining[0], value=bus.now())
    if errors:
        raise errors[0]
    return ctx


#: queue-wait histogram bucket edges (seconds) — ready-to-start delays
#: range from microseconds (idle worker grabs immediately) to whole
#: milliseconds (deep frontier, few workers)
_WAIT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


def _observe_task(
    task: Task,
    t0: float,
    t1: float,
    tracer: Tracer | None,
    metrics: MetricsRegistry | None,
    submit: float | None = None,
    worker: int | None = None,
    submit_ts: list[float] | None = None,
    epoch: float | None = None,
) -> None:
    """Record one finished task into the tracer and/or registry.

    ``t0``/``t1`` are raw :func:`time.perf_counter` readings; the
    tracer re-bases them onto its epoch.  When ``submit_ts``/``epoch``
    are given (threaded scheduler) the ready-to-start queue wait is
    also observed into ``scheduler.queue_wait_seconds``.

    Lifecycle comparability: the span's ``submit`` is the *ready*
    stamp (the moment the task entered the ready queue), so in the
    degenerate lifecycle view (:func:`repro.obs.analyze.overhead_report`
    on a plain capture) thread-mode queue wait lands in the ``queued``
    phase and the kernel in ``computing`` — directly comparable with
    the process backend's six-phase attribution, whose four extra
    phases are identically zero here (no process boundary to cross).
    """
    if tracer is not None:
        sub = (submit_ts[task.tid] if submit_ts is not None
               else (submit or t0) - tracer.epoch)
        tracer.record(task, sub, t0 - tracer.epoch, t1 - tracer.epoch,
                      worker=worker)
    if metrics is not None:
        name = task.kernel.value
        metrics.counter(f"tasks.retired.{name}").inc()
        metrics.histogram(f"kernel.seconds.{name}").observe(t1 - t0)
        if submit_ts is not None and epoch is not None:
            wait = max(0.0, (t0 - epoch) - submit_ts[task.tid])
            metrics.histogram("scheduler.queue_wait_seconds",
                              buckets=_WAIT_BUCKETS).observe(wait)
