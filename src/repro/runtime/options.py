"""Execution options: one bundle for the runtime knobs (S8 satellite).

``factor`` / ``tiled_qr`` / ``execute_graph`` historically grew five
independent execution keywords — ``mode``, ``workers``, ``numeric``,
``start_method``, ``pool`` — threaded through every layer by hand.
:class:`ExecOptions` groups them into one frozen dataclass that can be
built once (e.g. by the CLI) and passed anywhere an executor is
invoked:

>>> from repro.runtime import ExecOptions
>>> opts = ExecOptions(mode="batched", numeric="lapack")
>>> opts.mode
'batched'

The legacy keywords remain accepted everywhere.  :meth:`ExecOptions.
resolve` implements the merge rule: with no ``options`` the legacy
keywords build one; with an ``options`` object, any legacy keyword
still at its default is ignored, one that *agrees* with the bundle is
redundant but harmless, and a conflicting non-default value raises —
there is no silent precedence between the two spellings.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional

__all__ = ["ExecOptions"]

#: execution modes understood by :func:`repro.runtime.execute_graph`
_MODES = ("task", "batched", "process")

#: numeric factor-kernel implementations (batched / process modes)
_NUMERICS = ("auto", "numpy", "lapack")

#: named micro-batching settings (ints >= 1 are also accepted)
_BATCHES = ("auto", "off")


def _normalize_batch(value) -> "int | str":
    """Validate/normalize a ``batch`` setting: ``"auto"``, ``"off"``
    or an int >= 1 (numeric strings from the CLI are converted;
    ``1`` is canonicalized to ``"off"`` — same semantics)."""
    if value in _BATCHES:
        return value
    try:
        size = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"batch must be 'auto', 'off' or an int >= 1, got {value!r}"
        ) from None
    if size < 1:
        raise ValueError(f"batch must be >= 1, got {size}")
    return "off" if size == 1 else size


@dataclass(frozen=True)
class ExecOptions:
    """How to run a task graph: scheduler mode and its knobs.

    Parameters mirror the identically named keywords of
    :func:`repro.runtime.execute_graph` (see there for full
    semantics):

    mode : str
        ``"task"`` (sequential/threaded), ``"batched"``
        (level-synchronous stacked kernels) or ``"process"``
        (shared-memory worker processes).
    workers : int or None
        Worker count for task/process modes; ``None`` means
        sequential (task mode) or one-per-core (process mode).
    numeric : str
        ``"auto"``, ``"numpy"`` or ``"lapack"`` — factor-kernel
        implementation for batched/process modes.
    start_method : str or None
        :mod:`multiprocessing` start method for process mode.
    pool : ProcessPool or None
        Persistent worker pool to reuse in process mode.
    batch : int or str
        Micro-batch dispatch for process and threaded task modes:
        ``"auto"`` (default) sizes groups to ~1ms of estimated work
        per descriptor, an int >= 2 fixes the group size, ``"off"``
        (or ``1``) dispatches single tasks.  Ignored by the batched
        mode (inherently grouped) and the sequential executor.  See
        :func:`repro.runtime.groups.resolve_batch`.
    """

    mode: str = "task"
    workers: Optional[int] = None
    numeric: str = "auto"
    start_method: Optional[str] = None
    pool: Any = None
    batch: Any = "auto"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.numeric not in _NUMERICS:
            raise ValueError(
                f"numeric must be one of {_NUMERICS}, got {self.numeric!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        object.__setattr__(self, "batch", _normalize_batch(self.batch))

    # ------------------------------------------------------------------
    @classmethod
    def resolve(cls, options: "ExecOptions | None" = None,
                **legacy: Any) -> "ExecOptions":
        """Merge an explicit bundle with legacy per-keyword arguments.

        ``legacy`` holds the values of the old keywords as received by
        the caller (``mode=``, ``workers=``, ...).  Rules:

        * ``options is None`` — the legacy keywords (plus defaults)
          build the bundle; unchanged call sites behave exactly as
          before.
        * ``options`` given — legacy keywords still at their defaults
          are ignored; a legacy keyword equal to the bundle's value is
          accepted (harmless redundancy); a *conflicting* non-default
          legacy value raises :class:`ValueError` rather than silently
          picking a winner.
        """
        if options is None:
            return cls(**legacy)
        if not isinstance(options, cls):
            raise TypeError(
                f"options must be ExecOptions or None, got "
                f"{type(options).__name__}")
        defaults = {f.name: f.default for f in fields(cls)}
        for name, value in legacy.items():
            if name not in defaults:
                raise TypeError(f"unknown execution option {name!r}")
            if name == "batch":
                value = _normalize_batch(value)
            if value == defaults[name]:
                continue
            bundled = getattr(options, name)
            if value != bundled:
                raise ValueError(
                    f"conflicting execution options: {name}={value!r} "
                    f"(keyword) vs {name}={bundled!r} (ExecOptions); "
                    f"pass one or the other")
        return options
