"""Batched level-synchronous execution backend (S20).

The task executors in :mod:`repro.runtime.executor` retire one tile
task at a time through Python, which caps real factorization speed far
below the hardware (Python overhead per small-tile kernel dominates).
This backend exploits the same structural fact the paper builds on: at
any Kahn level of the DAG, all tasks of one kernel type are mutually
independent.  It therefore

1. groups the DAG's tasks into ``(level, kernel)`` batches (cached on
   the :class:`~repro.planner.Plan` via ``Plan.level_groups()``),
2. gathers the operand tiles of each group from a contiguous
   :class:`~repro.tiles.pool.TilePool` into ``(batch, nb, nb)`` stacks
   (ragged border tiles zero-padded — exact, see the pool docs), and
3. executes each group as one sequence of stacked 3-D operations using
   the kernels in :mod:`repro.kernels.batched`.

Within a level, groups run in kernel-enum order; any order is correct
because same-level tasks never write the same tile region (write-write
or read-write pairs on a tile are always DAG-ordered; the V=NODEP
triangle sharing of the TT kernels touches disjoint triangles).

Numerical contract: each task's result agrees with the reference
backend to rounding (``~1e-12 * ||A||`` for the reconstructed
``Q @ R``); bitwise identity is *not* guaranteed because batched
reductions may associate differently.

The returned :class:`~repro.runtime.executor.ExecutionContext` carries
per-task ``T`` factors (views into the batch stacks, sliced to each
tile's valid shape), so ``apply_q`` / ``apply_q_right`` replay ``Q``
exactly as for the task executors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..dag.tasks import KERNEL_CODES, TaskGraph
from ..kernels.backend import get_backend
from ..kernels.batched import (
    BatchedTFactor,
    factor_stacked_batched,
    factor_stacked_lapack_pool,
    geqrt_batched,
    geqrt_lapack_pool,
    lapack_batched_supported,
)
from ..kernels.costs import Kernel
from ..kernels.stacked import ts_support, tt_support
from ..obs.metrics import MetricsRegistry
from ..tiles.layout import TiledMatrix
from ..tiles.pool import TilePool
from .executor import ExecutionContext, _clamp_ib
from .groups import apply_group_pool, broadcast_tfactor, v_runs

__all__ = ["KernelGroup", "level_kernel_groups", "execute_batched"]

_KERNEL_TO_CODE = {k: c for c, k in enumerate(KERNEL_CODES)}

#: group-size histogram buckets (powers of two)
_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class KernelGroup:
    """All tasks of one kernel type at one Kahn level of the DAG.

    The coordinate arrays are aligned with :attr:`tids` (``pivs`` /
    ``js`` use ``-1`` where the kernel has no such coordinate), so the
    executor never touches the Python :class:`~repro.dag.tasks.Task`
    objects on its hot path.
    """

    level: int
    kernel: Kernel
    tids: np.ndarray
    rows: np.ndarray
    pivs: np.ndarray
    cols: np.ndarray
    js: np.ndarray

    def __len__(self) -> int:
        return int(self.tids.size)


def level_kernel_groups(graph) -> list[KernelGroup]:
    """Group a graph's tasks by (Kahn level, kernel type).

    Levels come from the :class:`~repro.dag.index.GraphIndex` (built
    once per graph and shared with the simulators); all tasks of one
    group are mutually independent by construction.  Prefer the
    memoized ``Plan.level_groups()`` when a plan is available.
    """
    if isinstance(graph, TaskGraph):
        g = graph
    else:
        g = getattr(graph, "graph", None)
        if not isinstance(g, TaskGraph):
            raise TypeError(
                f"expected a TaskGraph or a Plan, got {type(graph).__name__}")
    idx = g.index()
    tasks = g.tasks
    n = len(tasks)
    codes = np.fromiter((_KERNEL_TO_CODE[t.kernel] for t in tasks),
                        dtype=np.int8, count=n)
    rows = np.fromiter((t.row for t in tasks), dtype=np.int64, count=n)
    pivs = np.fromiter((-1 if t.piv is None else t.piv for t in tasks),
                       dtype=np.int64, count=n)
    cols = np.fromiter((t.col for t in tasks), dtype=np.int64, count=n)
    js = np.fromiter((-1 if t.j is None else t.j for t in tasks),
                     dtype=np.int64, count=n)
    groups: list[KernelGroup] = []
    order, lp = idx.order, idx.level_ptr
    for lvl in range(len(lp) - 1):
        seg = order[lp[lvl]:lp[lvl + 1]]
        seg_codes = codes[seg]
        for code, kern in enumerate(KERNEL_CODES):
            tids = seg[seg_codes == code]
            if tids.size:
                groups.append(KernelGroup(
                    level=lvl, kernel=kern, tids=tids, rows=rows[tids],
                    pivs=pivs[tids], cols=cols[tids], js=js[tids]))
    return groups


class _GroupTask:
    """Duck-typed :class:`~repro.dag.tasks.Task` stand-in so the tracer
    records one span per executed (level, kernel) group."""

    __slots__ = ("tid", "kernel", "row", "piv", "col", "j", "_label")

    def __init__(self, grp: KernelGroup):
        self.tid = int(grp.tids[0])
        self.kernel = grp.kernel
        self.row = int(grp.rows[0])
        self.piv = int(grp.pivs[0]) if grp.pivs[0] >= 0 else None
        self.col = int(grp.cols[0])
        self.j = int(grp.js[0]) if grp.js[0] >= 0 else None
        self._label = f"{grp.kernel.value}[x{len(grp)}]@L{grp.level}"

    def __str__(self) -> str:
        return self._label


def _record_tfactors(bt: BatchedTFactor, grp: KernelGroup,
                     tiled: TiledMatrix, tf: dict, pad_t: dict,
                     kind: str) -> None:
    """File a factor group's T blocks under both views.

    ``pad_t`` keeps the full padded per-panel blocks (uniform shapes —
    what later batched applies stack); ``tf`` gets the per-task
    :class:`~repro.kernels.geqrt.TFactor` sliced to the tile's valid
    reflector count, for ``apply_q`` replay through the per-tile
    kernels.
    """
    npanels = len(bt.blocks)
    for b, tid in enumerate(grp.tids.tolist()):
        row, col = int(grp.rows[b]), int(grp.cols[b])
        key = (row, col, kind)
        pad_t[key] = [bt.blocks[pi][b] for pi in range(npanels)]
        if kind == "ge":
            k = min(tiled.row_height(row), tiled.col_width(col))
        else:  # stacked kernels: one reflector per (valid) column
            k = tiled.col_width(col)
        tf[key] = bt.task_tfactor(b, k)


def _tile_tfactor(pad_t: dict, key: tuple, ib: int) -> BatchedTFactor:
    """Broadcastable (batch-of-one) T factor of a single factored tile.

    The apply kernels broadcast it across however many C tiles the
    source tile updates, so no per-task T stacking is needed.
    """
    return broadcast_tfactor(pad_t[key], ib)


#: re-export: the run decomposition moved to :mod:`repro.runtime.groups`
#: so the process backend's micro-batches reuse it (S24)
_v_runs = v_runs


def _run_group(grp: KernelGroup, pool: TilePool, tiled: TiledMatrix,
               tf: dict, pad_t: dict, ib: int,
               use_lapack: bool = False) -> None:
    """Execute one (level, kernel) group against the pool.

    With ``use_lapack`` the three factor kernels run as per-slice
    LAPACK calls (same results to rounding — see
    :mod:`repro.kernels.batched`); the update kernels always use the
    stacked NumPy path, which is already BLAS-bound.
    """
    kern = grp.kernel
    if kern is Kernel.GEQRT:
        slots = pool.slot(grp.rows, grp.cols)
        if use_lapack:  # per-slice loop: factor in place, skip take/put
            bt = geqrt_lapack_pool(pool.stack, slots, ib)
        else:
            a = pool.take(slots)
            bt = geqrt_batched(a, ib)
            pool.put(slots, a)
        _record_tfactors(bt, grp, tiled, tf, pad_t, "ge")
    elif kern is Kernel.UNMQR:
        vslots = pool.slot(grp.rows, grp.cols)
        apply_group_pool(
            pool.stack, KERNEL_CODES.index(kern), vslots, None,
            pool.slot(grp.rows, grp.js),
            lambda b: _tile_tfactor(
                pad_t, (int(grp.rows[b]), int(grp.cols[b]), "ge"), ib))
    elif kern in (Kernel.TSQRT, Kernel.TTQRT):
        kind = "ts" if kern is Kernel.TSQRT else "tt"
        support = ts_support if kern is Kernel.TSQRT else tt_support
        rslots = pool.slot(grp.pivs, grp.cols)
        bslots = pool.slot(grp.rows, grp.cols)
        if use_lapack:  # per-slice loop: factor in place, skip take/put
            bt = factor_stacked_lapack_pool(
                pool.stack, rslots, bslots, ib,
                triangular=kern is Kernel.TTQRT)
        else:
            r = pool.take(rslots)
            b = pool.take(bslots)
            bt = factor_stacked_batched(r, b, ib, support)
            pool.put(rslots, r)
            pool.put(bslots, b)
        _record_tfactors(bt, grp, tiled, tf, pad_t, kind)
    elif kern in (Kernel.TSMQR, Kernel.TTMQR):
        kind = "ts" if kern is Kernel.TSMQR else "tt"
        vslots = pool.slot(grp.rows, grp.cols)
        apply_group_pool(
            pool.stack, KERNEL_CODES.index(kern), vslots,
            pool.slot(grp.pivs, grp.js), pool.slot(grp.rows, grp.js),
            lambda b: _tile_tfactor(
                pad_t, (int(grp.rows[b]), int(grp.cols[b]), kind), ib))
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown kernel {kern}")


def execute_batched(
    graph,
    tiled: TiledMatrix,
    ib: int = 32,
    numeric: str = "auto",
    on_task_done=None,
    tracer=None,
    metrics: MetricsRegistry | None = None,
    collect_metrics: bool = False,
    bus=None,
) -> ExecutionContext:
    """Run a factorization DAG with the batched backend.

    Usually reached via ``execute_graph(..., mode="batched")`` or
    ``repro.api.factor(..., mode="batched")``; see the module docstring
    for semantics.  ``graph`` may be a
    :class:`~repro.dag.tasks.TaskGraph` or a
    :class:`~repro.planner.Plan` (whose cached level groups are
    reused).  The ``backend`` selection of the task executors does not
    apply here; instead ``numeric`` picks the factor-kernel
    implementation:

    - ``"numpy"`` — stacked NumPy kernels throughout;
    - ``"lapack"`` — per-slice LAPACK ``?geqrt``/``?tpqrt`` for the
      factor kernels (real dtypes only; raises ``ValueError``
      otherwise), stacked NumPy applies;
    - ``"auto"`` (default) — ``"lapack"`` when supported for the
      matrix dtype, else ``"numpy"``.

    ``bus`` (an :class:`~repro.obs.stream.EventBus` or ``None``)
    receives streaming telemetry: ``run_start``/``run_done``,
    ``level_start`` at each Kahn-level barrier, and
    ``group_start``/``group_done`` per dispatched (level, kernel)
    batch — ``count`` is the batch size, ``value`` the group seconds.
    """
    plan_obj = None
    if isinstance(graph, TaskGraph):
        g = graph
    else:
        g = getattr(graph, "graph", None)
        if not isinstance(g, TaskGraph):
            raise TypeError(
                f"expected a TaskGraph or a Plan, got {type(graph).__name__}")
        plan_obj = graph
    if numeric not in ("auto", "numpy", "lapack"):
        raise ValueError(
            f"numeric must be 'auto', 'numpy' or 'lapack', got {numeric!r}")
    if numeric == "lapack" and not lapack_batched_supported(tiled.array.dtype):
        raise ValueError(
            f"numeric='lapack' does not support dtype {tiled.array.dtype}")
    use_lapack = (numeric == "lapack"
                  or (numeric == "auto"
                      and lapack_batched_supported(tiled.array.dtype)))
    if tracer is not None and not tracer.enabled:
        tracer = None
    if bus is not None and not getattr(bus, "enabled", True):
        bus = None
    if metrics is None and collect_metrics:
        metrics = MetricsRegistry()
    ib = _clamp_ib(ib, tiled.nb, metrics)
    ctx = ExecutionContext(tiled=tiled, graph=g,
                           backend=get_backend("reference"), ib=ib,
                           tracer=tracer, metrics=metrics)
    observed = tracer is not None or metrics is not None
    timed = observed or bus is not None
    ntasks = len(g.tasks)
    if metrics is not None:
        metrics.counter("scheduler.tasks_total").inc(ntasks)
        metrics.gauge("scheduler.workers", keep_samples=False).set(1)
        metrics.counter(
            "batched.numeric." + ("lapack" if use_lapack else "numpy")).inc()
    if ntasks == 0:
        return ctx

    if plan_obj is not None and hasattr(plan_obj, "level_groups"):
        groups = plan_obj.level_groups()
    else:
        groups = level_kernel_groups(g)

    pool = TilePool(tiled)
    tf = ctx.tfactors
    pad_t: dict[tuple[int, int, str], list[np.ndarray]] = {}
    done_count = 0
    if bus is not None:
        bus.publish("run_start", total=ntasks, count=1,
                    problem=getattr(g, "problem", "") or "")
    cur_level = -1
    for grp in groups:
        if bus is not None:
            if grp.level != cur_level:
                cur_level = grp.level
                bus.publish("level_start", level=cur_level)
            bus.publish("group_start", kernel=grp.kernel.value,
                        level=grp.level, count=len(grp), worker=0)
        if timed:
            t0 = time.perf_counter()
        _run_group(grp, pool, tiled, tf, pad_t, ib, use_lapack)
        if timed:
            t1 = time.perf_counter()
        if bus is not None:
            bus.publish("group_done", kernel=grp.kernel.value,
                        level=grp.level, count=len(grp), worker=0,
                        value=t1 - t0)
        if observed:
            if tracer is not None:
                rel = t0 - tracer.epoch
                tracer.record(_GroupTask(grp), rel, rel,
                              t1 - tracer.epoch, count=len(grp))
            if metrics is not None:
                name = grp.kernel.value
                metrics.counter(f"tasks.retired.{name}").inc(len(grp))
                metrics.histogram(f"kernel.seconds.{name}").observe(t1 - t0)
                metrics.counter("batched.groups").inc()
                metrics.histogram("batched.group_size",
                                  buckets=_SIZE_BUCKETS).observe(len(grp))
        if on_task_done is not None:
            for tid in grp.tids.tolist():
                done_count += 1
                on_task_done(g.tasks[tid], done_count, ntasks)
        else:
            done_count += len(grp)
    if metrics is not None and groups:
        metrics.counter("batched.levels").inc(groups[-1].level + 1)
    pool.scatter()
    if bus is not None:
        bus.publish("run_done", count=done_count, value=bus.now())
    return ctx
