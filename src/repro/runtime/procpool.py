"""Process-parallel execution over a shared-memory tile pool (S22).

The batched backend (:mod:`repro.runtime.batched`) drives every
stacked kernel from one GIL-bound Python thread and synchronizes at
every Kahn level of the DAG.  This backend removes both limits:

* **Worker processes, zero-copy tiles.**  A persistent
  :class:`ProcessPool` of worker processes operates *in place* on a
  :class:`~repro.tiles.shared_pool.SharedTilePool` — the same
  ``(p * q, nb, nb)`` slot-addressed stack as the batched backend, in
  :mod:`multiprocessing.shared_memory`.  Only ``(tid, kernel,
  slot-coords)`` descriptors cross the queues; tile data never does.
  The compact-WY ``T`` blocks flow through a second shared segment
  (uniform ``(factor_tasks, npanels, ib, ib)`` because padded slots
  factor with a full panel count), so apply kernels read their source
  ``T`` without pickling either.
* **Rolling ready-frontier.**  The parent runs a Kahn scheduler over
  the Plan's CSR :class:`~repro.dag.index.GraphIndex`: a task is
  dispatched the moment its last predecessor retires, ordered by
  descending bottom-level (critical path first) — factor kernels of
  level ``L + 1`` overlap update tasks of level ``L`` instead of
  waiting at a level barrier.  Each worker holds at most a small
  number of in-flight tasks so priority stays meaningful while queue
  latency hides behind execution.
* **Telemetry across the process boundary.**  Workers publish
  ``task_start`` / ``task_done`` through the pool's
  :class:`~repro.obs.stream.BusRelay`; the parent adds ``run_start`` /
  ``frontier`` / ``run_done``, so ``--progress`` and ``repro top``
  work unchanged.

Correctness rests on two established facts: every pair of conflicting
tile accesses is DAG-ordered (the guarantee the threaded executor
already relies on — the completion round-trip through the parent gives
cross-process happens-before), and zero-padded slots are exact for
every kernel (see :mod:`repro.tiles.pool`).  Results match the
reference backend to rounding, like the batched backend.

Reached via ``execute_graph(mode="process", workers=N)`` /
``repro.api.factor(..., mode="process")`` / ``repro factor --mode
process``; reuse a :class:`ProcessPool` across runs to amortize
worker start-up (significant under the ``spawn`` start method).
"""

from __future__ import annotations

import heapq
import os
import queue as queue_mod
import time
import traceback
from typing import Optional

import numpy as np

from ..dag.tasks import KERNEL_CODES, TaskGraph
from ..kernels.backend import get_backend
from ..kernels.batched import lapack_batched_supported
from ..kernels.costs import Kernel
from ..kernels.geqrt import TFactor, panel_starts
from ..kernels.lapack import LapackT
from ..obs.metrics import MetricsRegistry
from ..obs.stream import NULL_BUS, BusRelay
from ..obs.tracer import DistributedTracer, estimate_clock_sync
from ..tiles.layout import TiledMatrix
from ..tiles.shared_pool import SharedArray, SharedTilePool
from .executor import ExecutionContext, _KIND, _clamp_ib
from .groups import (
    FACTOR_CODES,
    GroupFrontier,
    apply_group_pool,
    broadcast_tfactor,
    dedup_hits,
    dispatch_arrays,
    resolve_batch,
)

__all__ = ["ProcessPool", "execute_process"]

_KERNEL_TO_CODE = {k: c for c, k in enumerate(KERNEL_CODES)}
_CODE_TO_NAME = tuple(k.value for k in KERNEL_CODES)
_GEQRT, _UNMQR, _TSQRT, _TSMQR, _TTQRT, _TTMQR = (
    _KERNEL_TO_CODE[k] for k in (
        Kernel.GEQRT, Kernel.UNMQR, Kernel.TSQRT, Kernel.TSMQR,
        Kernel.TTQRT, Kernel.TTMQR))
_FACTOR_KERNELS = (Kernel.GEQRT, Kernel.TSQRT, Kernel.TTQRT)

#: tasks a worker may hold queued beyond the one it is executing —
#: enough to hide queue latency, small enough that the parent's
#: priority order is what actually runs.  The cap counts *tasks*, not
#: descriptors: with micro-batching one descriptor may carry a whole
#: group, and a descriptor-counted cap would let one worker hoard
#: ``(1 + _PREFETCH) * batch`` tasks while its siblings idle.
_PREFETCH = 2

#: group-size histogram buckets (powers of two), shared with the
#: batched backend's ``batched.group_size``
_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: seconds between liveness checks while waiting for completions
_POLL_S = 1.0

#: traced tasks a worker buffers before shipping one batched
#: ``task_spans`` record — the merge only happens after the run's
#: drain barrier, so a whole typical run rides in the endrun flush
#: (zero mid-run relay traffic); the threshold just bounds buffer
#: growth on very large runs
_SPAN_FLUSH = 4096

#: environment knobs that pin per-worker BLAS threading.  Set around
#: worker start-up so children initialize single-threaded BLAS pools
#: (the parent's already-initialized BLAS is unaffected; fork children
#: inherit the parent's thread count regardless — see
#: docs/performance.md).
_BLAS_ENV = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
             "MKL_NUM_THREADS", "VECLIB_MAXIMUM_THREADS")


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

class _RunState:
    """Per-run worker state: mapped segments + resolved kernels."""

    __slots__ = ("stack_sa", "tstore_sa", "stack", "tstore", "bk", "ib",
                 "nb", "q", "panels", "publish", "trace", "lapack",
                 "span_buf", "_tf_cache")

    def __init__(self, stack_handle, tstore_handle, cfg: dict):
        self.stack_sa = SharedArray.attach(stack_handle)
        self.tstore_sa = SharedArray.attach(tstore_handle)
        self.stack = self.stack_sa.array
        self.tstore = self.tstore_sa.array
        self.bk = get_backend(cfg["backend"])
        self.ib = cfg["ib"]
        self.nb = cfg["nb"]
        self.q = cfg["q"]
        self.publish = cfg["publish"]
        self.trace = cfg.get("trace", False)
        self.lapack = cfg["lapack"]
        #: buffered (tid, recv, start, finish, publish) span stamps
        self.span_buf: list = []
        # padded slots always factor a full nb-column panel sequence
        self.panels = panel_starts(self.nb, self.ib)
        #: fslot -> BatchedTFactor of *views* into the T store.  A T
        #: slot is written exactly once (by its factor task, which the
        #: DAG orders before every apply that reads it), so the cached
        #: views stay valid for the rest of the run.
        self._tf_cache: dict = {}

    def tfactor(self, fslot: int, l: int = 0):
        """The padded T factor of factor-task slot ``fslot`` (views).

        LAPACK representation: the slot *is* the ``(ib, nb)`` compact-WY
        ``T`` (``l`` is the TT trapezoid height, ``nb`` on padded
        slots).  Reference representation: panel blocks, ``l`` unused.
        """
        if self.lapack:
            return LapackT(self.tstore[fslot], self.ib, l)
        t = TFactor(ib=self.ib)
        for pi, (_, jb) in enumerate(self.panels):
            t.blocks.append(self.tstore[fslot, pi, :jb, :jb])
        return t

    def tfactor_batched(self, fslot: int):
        """Broadcastable batch-of-one T factor of slot ``fslot``.

        Views into the shared T store, sliced exactly as the pool
        LAPACK helpers and the reference panel blocks lay them out, so
        stacked applies read the same values the per-tile kernels
        would.  Memoized per slot (write-once, views stay valid).
        """
        tf = self._tf_cache.get(fslot)
        if tf is not None:
            return tf
        if self.lapack:
            t = self.tstore[fslot]
            blocks = [t[:jb, j0:j0 + jb] for j0, jb in self.panels]
        else:
            blocks = [self.tstore[fslot, pi, :jb, :jb]
                      for pi, (_, jb) in enumerate(self.panels)]
        tf = broadcast_tfactor(blocks, self.ib)
        self._tf_cache[fslot] = tf
        return tf

    def store_t(self, fslot: int, t) -> None:
        if self.lapack:
            tt = t.t  # (ib, nb) on padded slots
            self.tstore[fslot, : tt.shape[0], : tt.shape[1]] = tt
            return
        for pi, blk in enumerate(t.blocks):
            jb = blk.shape[0]
            self.tstore[fslot, pi, :jb, :jb] = blk

    def close(self) -> None:
        self.stack = self.tstore = None
        self.stack_sa.close()
        self.tstore_sa.close()


def _exec_task(st: _RunState, code: int, row: int, piv: int, col: int,
               j: int, fslot: int, src: int) -> None:
    """Run one kernel against the shared slots, padded ``nb x nb``."""
    stack, q, ib = st.stack, st.q, st.ib
    bk = st.bk
    if code == _GEQRT:
        st.store_t(fslot, bk.geqrt(stack[row * q + col], ib))
    elif code == _UNMQR:
        bk.unmqr(stack[row * q + col], st.tfactor(src),
                 stack[row * q + j])
    elif code == _TSQRT:
        st.store_t(fslot, bk.tsqrt(stack[piv * q + col],
                                   stack[row * q + col], ib))
    elif code == _TSMQR:
        bk.tsmqr(stack[row * q + col], st.tfactor(src),
                 stack[piv * q + j], stack[row * q + j])
    elif code == _TTQRT:
        st.store_t(fslot, bk.ttqrt(stack[piv * q + col],
                                   stack[row * q + col], ib))
    else:
        bk.ttmqr(stack[row * q + col], st.tfactor(src, l=st.nb),
                 stack[piv * q + j], stack[row * q + j])


def _exec_group(st: _RunState, code: int, rows, pivs, cols, js,
                fslots, srcs) -> None:
    """Run one same-kernel micro-batch against the shared slots.

    Factor kernels loop per slice — exactly the calls single-task
    dispatch makes, so grouping never changes their results bitwise.
    Apply kernels gather their C tiles into a contiguous stack, run
    one broadcast stacked apply per shared-V run, and scatter back;
    the stacked applies perform the per-tile matmul chain slice by
    slice, so the numpy path stays bit-exact under grouping (the
    LAPACK path matches to rounding, as everywhere else).
    """
    if code in FACTOR_CODES:
        for i in range(len(rows)):
            _exec_task(st, code, rows[i], pivs[i], cols[i], js[i],
                       fslots[i], srcs[i])
        return
    q = st.q
    rows_a = np.asarray(rows, dtype=np.int64)
    cols_a = np.asarray(cols, dtype=np.int64)
    js_a = np.asarray(js, dtype=np.int64)
    vslots = rows_a * q + cols_a
    bot = rows_a * q + js_a
    top = (None if code == _UNMQR
           else np.asarray(pivs, dtype=np.int64) * q + js_a)
    srcs_a = np.asarray(srcs, dtype=np.int64)
    apply_group_pool(st.stack, code, vslots, top, bot,
                     lambda b: st.tfactor_batched(int(srcs_a[b])))


def _flush_spans(state: "_RunState", widx: int, publisher) -> None:
    """Ship the buffered span stamps as one batched relay record.

    Beyond the four per-task boundaries, each entry carries its
    micro-batch context — the group's shared recv/publish stamps, the
    group size, and the worker's last idle stamp — so the tracer can
    amortize the once-per-group parent-side costs (descriptor
    transit, retirement) across the members and exclude deliberate
    prefetch overlap from the ``dispatched`` phase.
    """
    buf = state.span_buf
    if not buf:
        return
    state.span_buf = []
    publisher.publish("task_spans", worker=widx,
                      tid=[b[0] for b in buf],
                      recv=[b[1] for b in buf],
                      start=[b[2] for b in buf],
                      finish=[b[3] for b in buf],
                      publish=[b[4] for b in buf],
                      grecv=[b[5] for b in buf],
                      gpub=[b[6] for b in buf],
                      gsize=[b[7] for b in buf],
                      gfree=[b[8] for b in buf])


def _worker_main(widx: int, inq, done_q, publisher) -> None:
    """Worker process loop: attach per run, execute tasks, report.

    Must stay importable at module level for the ``spawn`` start
    method.  Every exception is shipped to the parent as a formatted
    traceback — a worker never dies on a task failure.

    When the run is traced (``cfg["trace"]``) the worker stamps four
    ``perf_counter`` boundaries per task — message receipt, kernel
    entry/return, completion published — and buffers them; every
    :data:`_SPAN_FLUSH` tasks (and at endrun, before the ``closed``
    ack) the buffer ships through the relay as one batched
    ``"task_spans"`` record, so tracing costs one queue put per batch
    instead of per task and every record still precedes the parent's
    endrun barrier.  A ``("sync", token)`` message answers with the
    worker's own clock reading (``("sync_ack", widx, token, t)``): the
    parent's NTP-style handshake that aligns those stamps onto its
    timeline.
    """
    state: _RunState | None = None
    free_t = 0.0
    while True:
        # free_t marks the moment this worker went idle: any descriptor
        # already sitting in the inbox was overlapped with useful work,
        # so the tracer charges ``dispatched`` only from max(dispatch,
        # free) — deliberate prefetch overlap is queueing, not IPC
        free_t = time.perf_counter()
        msg = inq.get()
        kind = msg[0]
        if kind == "task":
            recv_t = time.perf_counter()
            _, tid, code, row, piv, col, j, fslot, src = msg
            if state.publish:
                publisher.publish("task_start", tid=tid,
                                  kernel=_CODE_TO_NAME[code], worker=widx)
            t0 = time.perf_counter()
            try:
                _exec_task(state, code, row, piv, col, j, fslot, src)
            except BaseException:
                done_q.put(("error", widx, tid, traceback.format_exc()))
                continue
            dt = time.perf_counter() - t0
            t1 = t0 + dt
            if state.publish:
                publisher.publish("task_done", tid=tid,
                                  kernel=_CODE_TO_NAME[code], worker=widx,
                                  value=dt)
            done_q.put(("done", widx, tid, dt))
            if state.trace:
                pub_t = time.perf_counter()
                state.span_buf.append((tid, recv_t, t0, t1, pub_t,
                                       recv_t, pub_t, 1, free_t))
                if len(state.span_buf) >= _SPAN_FLUSH:
                    _flush_spans(state, widx, publisher)
        elif kind == "grp":
            recv_t = time.perf_counter()
            _, tids, code, rows, pivs, cols, js, fslots, srcs = msg
            kname = _CODE_TO_NAME[code]
            if state.publish:
                for tid in tids:
                    publisher.publish("task_start", tid=tid, kernel=kname,
                                      worker=widx)
            t0 = time.perf_counter()
            try:
                _exec_group(state, code, rows, pivs, cols, js, fslots,
                            srcs)
            except BaseException:
                done_q.put(("error", widx, tids, traceback.format_exc()))
                continue
            t1 = time.perf_counter()
            dt = t1 - t0
            share = dt / len(tids)
            if state.publish:
                for tid in tids:
                    publisher.publish("task_done", tid=tid, kernel=kname,
                                      worker=widx, value=share)
            done_q.put(("done", widx, tids, dt))
            if state.trace:
                # the stacked kernels leave no per-task boundaries, so
                # the group's kernel window is split evenly; the
                # deserialize/publish windows are paid once per group
                # and amortized as a 1/K slice around each member's
                # compute slice.  The group stamps (recv_t, pub_t) and
                # the group size ride along so the tracer's merge can
                # amortize the parent-side transit and retire costs the
                # same way — per-phase sums equal the true group costs
                # and the telescoping identity still holds exactly.
                pub_t = time.perf_counter()
                k = len(tids)
                d_deser = (t0 - recv_t) / k
                d_pub = (pub_t - t1) / k
                for i, tid in enumerate(tids):
                    s_i = t0 + i * share
                    f_i = s_i + share
                    state.span_buf.append(
                        (tid, s_i - d_deser, s_i, f_i, f_i + d_pub,
                         recv_t, pub_t, k, free_t))
                if len(state.span_buf) >= _SPAN_FLUSH:
                    _flush_spans(state, widx, publisher)
        elif kind == "mgrp":
            # multi-group descriptor: several kernel groups that share
            # one queue round-trip and one completion message.  Groups
            # execute in dispatch order; a failure mid-descriptor
            # reports the failed group and everything after it as one
            # error (the parent books them out of flight together)
            # while the completed prefix still retires normally.
            recv_t = time.perf_counter()
            groups = msg[1]
            results: list = []   # (tids, dt, t0, t1) per group
            failed_tb = None
            t1 = recv_t
            for gi, grp in enumerate(groups):
                tids, code = grp[0], grp[1]
                kname = _CODE_TO_NAME[code]
                if state.publish:
                    for tid in tids:
                        publisher.publish("task_start", tid=tid,
                                          kernel=kname, worker=widx)
                t0 = time.perf_counter()
                try:
                    if len(tids) == 1:
                        _exec_task(state, code, grp[2][0], grp[3][0],
                                   grp[4][0], grp[5][0], grp[6][0],
                                   grp[7][0])
                    else:
                        _exec_group(state, code, grp[2], grp[3],
                                    grp[4], grp[5], grp[6], grp[7])
                except BaseException:
                    failed_tb = traceback.format_exc()
                    rem = tuple(t for g in groups[gi:] for t in g[0])
                    done_q.put(("error", widx, rem, failed_tb))
                    break
                t1 = time.perf_counter()
                results.append((tids, t1 - t0, t0, t1))
                if state.publish:
                    share = (t1 - t0) / len(tids)
                    for tid in tids:
                        publisher.publish("task_done", tid=tid,
                                          kernel=kname, worker=widx,
                                          value=share)
            if results:
                done_q.put(("mdone", widx,
                            tuple((r[0], r[1]) for r in results)))
            if state.trace and results:
                # same amortized per-member stamps as "grp", except
                # the shared deserialize / publish / transit / retire
                # windows split across every member of the descriptor
                pub_t = time.perf_counter()
                n_ok = sum(len(r[0]) for r in results)
                d_deser = (results[0][2] - recv_t) / n_ok
                d_pub = (pub_t - results[-1][3]) / n_ok
                for tids, dt, t0, _ in results:
                    share = dt / len(tids)
                    for i, tid in enumerate(tids):
                        s_i = t0 + i * share
                        f_i = s_i + share
                        state.span_buf.append(
                            (tid, s_i - d_deser, s_i, f_i, f_i + d_pub,
                             recv_t, pub_t, n_ok, free_t))
                if len(state.span_buf) >= _SPAN_FLUSH:
                    _flush_spans(state, widx, publisher)
        elif kind == "sync":
            done_q.put(("sync_ack", widx, msg[1], time.perf_counter()))
        elif kind == "run":
            _, stack_handle, tstore_handle, cfg = msg
            try:
                state = _RunState(stack_handle, tstore_handle, cfg)
            except BaseException:
                done_q.put(("error", widx, -1, traceback.format_exc()))
                continue
            done_q.put(("ready", widx))
        elif kind == "endrun":
            if state is not None:
                _flush_spans(state, widx, publisher)
                state.close()
                state = None
            done_q.put(("closed", widx))
        else:  # "stop"
            if state is not None:
                _flush_spans(state, widx, publisher)
                state.close()
            return


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

def _resolve_start_method(start_method: Optional[str]) -> str:
    import multiprocessing as mp

    if start_method is None:
        return "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    if start_method not in mp.get_all_start_methods():
        raise ValueError(
            f"start method {start_method!r} not available; choose from "
            f"{mp.get_all_start_methods()}")
    return start_method


class ProcessPool:
    """Persistent pool of kernel worker processes.

    Workers start lazily on the first :meth:`run` and persist across
    runs (per-run cost is two shared-memory attaches per worker),
    which matters under ``spawn`` where each worker pays a full
    interpreter + NumPy import at start-up.  Close with
    :meth:`close` or use as a context manager::

        with ProcessPool(workers=4) as pool:
            ctx1 = pool.run(plan1, tiled1)
            ctx2 = pool.run(plan2, tiled2)   # same workers

    Parameters
    ----------
    workers : int or None
        Worker process count (default ``os.cpu_count()``).
    start_method : {"fork", "spawn", "forkserver"} or None
        ``multiprocessing`` start method; ``None`` picks ``fork``
        where available (fast start-up; see docs/performance.md for
        the fork-vs-spawn trade-offs).
    relay_capacity : int
        Bound of the cross-process telemetry queue (overflow events
        are dropped at the producer, never blocking a worker).
    """

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 relay_capacity: int = 8192) -> None:
        import multiprocessing as mp

        self.start_method = _resolve_start_method(start_method)
        self.workers = (int(workers) if workers is not None
                        else (os.cpu_count() or 1))
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._ctx = mp.get_context(self.start_method)
        self._relay = BusRelay(NULL_BUS, capacity=relay_capacity,
                               ctx=self._ctx)
        self._inqs: list = []
        self._done_q = None
        self._procs: list = []
        self._closed = False
        self._broken = False
        # distributed-tracing state: in-flight parent stamps for the
        # current run only (cleared every run — a persistent pool must
        # not accumulate per-task bookkeeping), and the previous clock
        # estimate per worker so re-syncs can report drift
        self._pending: dict[int, list] = {}
        self._clock_prev: dict = {}
        self._sched_ok = 0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    def _ensure_started(self) -> None:
        if self._procs:
            return
        if self._closed or self._broken:
            raise RuntimeError("process pool is closed")
        # Start the resource tracker *before* forking: children inherit
        # the running tracker's pipe, so their attach-side shared-memory
        # registrations collapse into the parent's (set-idempotent) and
        # the owner's unlink leaves it clean.  A tracker first started
        # inside a fork child would be private to it and warn about
        # "leaked" segments the parent already unlinked.
        from multiprocessing import resource_tracker
        resource_tracker.ensure_running()
        self._done_q = self._ctx.Queue()
        saved = {k: os.environ.get(k) for k in _BLAS_ENV}
        try:
            for k in _BLAS_ENV:
                os.environ[k] = "1"
            for widx in range(self.workers):
                inq = self._ctx.Queue()
                p = self._ctx.Process(
                    target=_worker_main,
                    args=(widx, inq, self._done_q,
                          self._relay.publisher()),
                    name=f"repro-worker-{widx}", daemon=True)
                p.start()
                self._inqs.append(inq)
                self._procs.append(p)
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._relay.stop()
        for inq in self._inqs:
            try:
                inq.put(("stop",))
            except Exception:
                pass
        for p in self._procs:
            p.join(timeout)
            if p.is_alive():
                p.terminate()
                p.join(1.0)
        for q in self._inqs + ([self._done_q] if self._done_q else []):
            q.close()
        self._inqs, self._procs, self._done_q = [], [], None

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        dead = [(p.name, p.exitcode) for p in self._procs
                if not p.is_alive()]
        if dead:
            self._broken = True
            self.close(timeout=0.1)
            raise RuntimeError(
                f"worker process(es) died: {dead}; the pool is closed")

    def _sync_clocks(self, dtracer: DistributedTracer,
                     metrics: MetricsRegistry | None,
                     pings: int = 8) -> None:
        """NTP-style clock handshake with every worker.

        Each ping records ``(t_send, t_worker, t_recv)`` on the
        parent's ``perf_counter``; the minimum-RTT sample bounds the
        worker's clock offset to within half that round-trip.  Runs at
        the start of every traced run, so a persistent pool re-syncs
        periodically and the drift since the previous estimate is
        reported alongside the offset.
        """
        for w, inq in enumerate(self._inqs):
            samples: list[tuple[float, float, float]] = []
            # first sync of a worker takes the full ping budget; later
            # re-syncs only refresh drift, so half the pings suffice
            n_pings = pings if w not in self._clock_prev \
                else max(3, pings // 2)
            for tok in range(n_pings):
                t_send = time.perf_counter()
                inq.put(("sync", tok))
                deadline = time.monotonic() + 30.0
                while True:
                    try:
                        msg = self._done_q.get(timeout=_POLL_S)
                    except queue_mod.Empty:
                        self._check_alive()
                        if time.monotonic() > deadline:
                            self._broken = True
                            self.close(timeout=0.1)
                            raise RuntimeError(
                                f"timed out syncing clock of worker {w}")
                        continue
                    if msg[0] == "sync_ack" and msg[1] == w \
                            and msg[2] == tok:
                        samples.append((t_send, msg[3],
                                        time.perf_counter()))
                        break
                    if msg[0] == "error":
                        self._broken = True
                        self.close(timeout=0.1)
                        raise RuntimeError(
                            f"worker failed during clock sync:\n{msg[3]}")
                    # stale completions / acks from an aborted run
            sync = estimate_clock_sync(w, samples,
                                       prev=self._clock_prev.get(w))
            self._clock_prev[w] = sync
            dtracer.set_clock(sync)
            if metrics is not None:
                metrics.gauge(f"procpool.clock.offset_us.w{w}",
                              keep_samples=False).set(sync.offset * 1e6)
                metrics.gauge(f"procpool.clock.residual_us.w{w}",
                              keep_samples=False).set(sync.residual * 1e6)

    def run(
        self,
        graph,
        tiled: TiledMatrix,
        ib: int = 32,
        numeric: str = "auto",
        batch="auto",
        on_task_done=None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        collect_metrics: bool = False,
        bus=None,
    ) -> ExecutionContext:
        """Execute a factorization DAG on the worker pool.

        Parameters mirror
        :func:`~repro.runtime.batched.execute_batched`; ``numeric``
        picks the per-tile kernel backend the workers run
        (``"numpy"`` → reference kernels, ``"lapack"`` → LAPACK tile
        kernels, ``"auto"`` → LAPACK when the dtype supports it).
        ``batch`` controls frontier micro-batching (``"auto"`` /
        ``"off"`` / int group size — see
        :func:`repro.runtime.groups.resolve_batch`): compatible ready
        tasks ship as one group descriptor and execute through the
        stacked kernels, amortizing the queue round-trip and
        deserialization across the group.
        Returns an :class:`~repro.runtime.executor.ExecutionContext`
        whose T factors were copied out of shared memory, so
        ``apply_q`` replay works exactly as for the other backends.
        """
        plan_obj = None
        if isinstance(graph, TaskGraph):
            g = graph
        else:
            g = getattr(graph, "graph", None)
            if not isinstance(g, TaskGraph):
                raise TypeError(
                    f"expected a TaskGraph or a Plan, got "
                    f"{type(graph).__name__}")
            plan_obj = graph
        if numeric not in ("auto", "numpy", "lapack"):
            raise ValueError(
                f"numeric must be 'auto', 'numpy' or 'lapack', "
                f"got {numeric!r}")
        dtype = tiled.array.dtype
        if numeric == "lapack" and not lapack_batched_supported(dtype):
            raise ValueError(
                f"numeric='lapack' does not support dtype {dtype}")
        use_lapack = (numeric == "lapack"
                      or (numeric == "auto"
                          and lapack_batched_supported(dtype)))
        backend_name = "lapack" if use_lapack else "reference"
        if tracer is not None and not tracer.enabled:
            tracer = None
        if bus is not None and not getattr(bus, "enabled", True):
            bus = None
        if metrics is None and collect_metrics:
            metrics = MetricsRegistry()
        ib = _clamp_ib(ib, tiled.nb, metrics)
        panel_starts(tiled.nb, ib)  # validate ib >= 1 before dispatch
        ctx = ExecutionContext(tiled=tiled, graph=g,
                               backend=get_backend(backend_name), ib=ib,
                               tracer=tracer, metrics=metrics)
        n = len(g.tasks)
        if metrics is not None:
            metrics.counter("scheduler.tasks_total").inc(n)
            metrics.gauge("scheduler.workers", keep_samples=False).set(
                self.workers)
            metrics.counter(f"procpool.start_method.{self.start_method}"
                            ).inc()
            metrics.counter("procpool.numeric." + (
                "lapack" if use_lapack else "numpy")).inc()
        if n == 0:
            return ctx
        self._ensure_started()

        # ---- flattened dispatch arrays (plan-cached when possible) ----
        tasks = g.tasks
        if plan_obj is not None and hasattr(plan_obj, "dispatch_arrays"):
            da = plan_obj.dispatch_arrays()
        else:
            da = dispatch_arrays(g)
        fmap: dict[tuple[int, int, str], int] = {
            (t.row, t.col, _KIND[t.kernel]): int(da.fslot[t.tid])
            for t in tasks if t.kernel in _FACTOR_KERNELS}

        npanels = len(panel_starts(tiled.nb, ib))
        idx = plan_obj.index if plan_obj is not None else g.index()
        prio = (np.asarray(plan_obj.bottom_levels(), dtype=np.float64)
                if plan_obj is not None
                and hasattr(plan_obj, "bottom_levels") else None)
        mean_w = float(idx.weights.mean()) if idx.weights.size else 1.0
        batch_size = resolve_batch(batch, tiled.nb, mean_w,
                                   workers=self.workers)
        if metrics is not None:
            metrics.gauge("procpool.batch.size", keep_samples=False).set(
                batch_size)

        pool = SharedTilePool(tiled)
        # LAPACK kernels emit one (ib, nb) compact-WY T per padded
        # factor task; the reference kernels a (npanels, ib, ib) panel
        # stack.  Size the shared T store for whichever runs.
        tshape = ((max(1, da.nfactor), ib, tiled.nb) if use_lapack
                  else (max(1, da.nfactor), npanels, ib, ib))
        tstore = SharedArray(tshape, dtype)
        try:
            # The relay keeps pointing at this bus after the run
            # returns: mp.Queue feeder threads give no cross-queue
            # ordering, so a worker's last task_done may trail its
            # completion message — late events drain into the same bus
            # instead of being dropped (see docs/observability.md).
            dtracer = (tracer if isinstance(tracer, DistributedTracer)
                       else None)
            self._relay.bus = bus if bus is not None else NULL_BUS
            self._relay.span_sink = (dtracer.add_worker_span
                                     if dtracer is not None else None)
            if bus is not None or dtracer is not None:
                self._relay.start()
            base_done = self._relay.pumped("task_done")
            base_spans = self._relay.pumped("task_spans")
            base_dropped = self._relay.dropped
            cfg = {"nb": tiled.nb, "ib": ib, "q": tiled.q,
                   "backend": backend_name, "publish": bus is not None,
                   "trace": dtracer is not None, "lapack": use_lapack}
            for inq in self._inqs:
                inq.put(("run", pool.handle(), tstore.handle(), cfg))
            self._await("ready", self.workers)
            if dtracer is not None:
                # handshake at every run start = periodic re-sync on a
                # persistent pool; the previous estimate feeds drift
                self._sync_clocks(dtracer, metrics)
            if bus is not None:
                bus.publish("run_start", total=n, count=self.workers,
                            problem=getattr(g, "problem", "") or "")
            self._sched_ok = 0
            err: BaseException | None = None
            try:
                self._schedule(g, idx, prio, da, batch_size,
                               on_task_done, tracer, metrics, bus)
            except BaseException as exc:
                err = exc
            # detach the workers even after a failed run, so the pool
            # stays reusable (skip when a dead worker closed the pool)
            if self._procs:
                try:
                    self._await("closed", self.workers,
                                _send_endrun=True)
                except Exception:
                    if err is None:
                        raise
            if dtracer is not None:
                # close parent spans of dispatched-but-unretired tasks
                # (aborted run / dead worker): tagged, never dropped
                now_rel = time.perf_counter() - dtracer.epoch
                for tid, ent in self._pending.items():
                    if ent[2] >= 0:
                        dtracer.record_parent(g.tasks[tid], ent[0],
                                              ent[1], now_rel, ent[2],
                                              aborted=True)
            self._pending.clear()
            # Drain the relay before declaring the run over: mp.Queue
            # feeder threads give no cross-queue ordering, so a
            # worker's last task_done / task_spans may trail its
            # completion message.  run_done is only published once
            # every completion this run produced has been pumped (or
            # was dropped at a full relay), so `repro top`'s final
            # frame and any phase accounting keyed on run boundaries
            # see a complete run.
            targets = []
            if bus is not None:
                targets.append(("task_done", base_done))
            if dtracer is not None:
                targets.append(("task_spans", base_spans))
            if targets and self._relay.running:
                deadline = time.monotonic() + 5.0
                while self._relay.running:
                    lost = self._relay.dropped - base_dropped
                    if all(self._relay.pumped(k) - b + lost
                           >= self._sched_ok for k, b in targets):
                        break
                    if time.monotonic() > deadline:
                        if metrics is not None:
                            metrics.counter(
                                "procpool.relay_drain_timeout").inc()
                        break
                    time.sleep(0.0002)
            if dtracer is not None:
                self._relay.span_sink = None
                dtracer.finalize()
            if err is not None:
                raise err
            if bus is not None:
                bus.publish("run_done", count=n, value=bus.now())
            # copy T factors out of shared memory before the unlink,
            # sliced to each tile's valid reflector count (the same
            # convention as the batched backend's task_tfactor), so
            # apply_q replays against the ragged tile views
            tf = ctx.tfactors
            ts = tstore.array
            for (row, col, kind), fs in fmap.items():
                if kind == "ge":
                    k = min(tiled.row_height(row), tiled.col_width(col))
                else:  # stacked kernels: one reflector per valid column
                    k = tiled.col_width(col)
                if use_lapack:
                    # reflectors past k have tau = 0, so their T rows
                    # and columns are zero — the [:min(ib,k), :k]
                    # corner is the T of the valid reflectors
                    ibk = max(1, min(ib, k))
                    l = (min(tiled.row_height(row), tiled.col_width(col))
                         if kind == "tt" else 0)
                    tf[(row, col, kind)] = LapackT(
                        np.array(ts[fs, :ibk, :k]), ibk, l)
                    continue
                t = TFactor(ib=ib)
                for pi, (_, jb) in enumerate(panel_starts(k, ib)):
                    t.blocks.append(np.array(ts[fs, pi, :jb, :jb]))
                tf[(row, col, kind)] = t
            pool.scatter()
        finally:
            pool.close()
            tstore.close()
        return ctx

    # ------------------------------------------------------------------
    def _await(self, expect: str, count: int, deadline_s: float = 60.0,
               _send_endrun: bool = False) -> None:
        if _send_endrun:
            for inq in self._inqs:
                inq.put(("endrun",))
        deadline = time.monotonic() + deadline_s
        got = 0
        while got < count:
            try:
                msg = self._done_q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                self._check_alive()
                if time.monotonic() > deadline:
                    self._broken = True
                    self.close(timeout=0.1)
                    raise RuntimeError(
                        f"timed out waiting for worker {expect!r} acks")
                continue
            if msg[0] == expect:
                got += 1
            elif msg[0] == "error":
                self._broken = True
                self.close(timeout=0.1)
                raise RuntimeError(
                    f"worker failed during {expect!r}:\n{msg[3]}")
            # anything else is a stale completion from an aborted run

    def _schedule(self, g, idx, prio, da, batch_size, on_task_done,
                  tracer, metrics, bus) -> None:
        """Rolling ready-frontier over the CSR index, in micro-batches.

        Tasks are dispatched the moment their last predecessor
        retires, highest bottom-level first, grouped with up to
        ``batch_size - 1`` compatible (same-kernel) ready peers per
        descriptor, to the worker with the least outstanding *weight*
        (Table-1 units).  The in-flight cap counts constituent
        *tasks*, not descriptors, so one giant group can never hoard
        a multiple of the intended prefetch depth while other workers
        starve: ``1 + _PREFETCH`` tasks for unbatched dispatch, two
        descriptors' worth (``2 * batch_size``) when batching — with
        a refill hysteresis that tops a worker up only once it is
        down to its final descriptor, letting ready successors pool
        into full groups between refills.
        """
        codes, weights = da.codes, idx.weights
        rows, pivs, cols = da.rows, da.pivs, da.cols
        js, fslot, src = da.js, da.fslot, da.src
        n = len(codes)
        W = self.workers
        indeg = idx.indegree
        succ_ptr, succ_adj = idx.succ_ptr, idx.succ_adj
        dtracer = (tracer if isinstance(tracer, DistributedTracer)
                   else None)
        epoch = tracer.epoch if tracer is not None else time.perf_counter()
        # per-run in-flight bookkeeping: tid -> [ready, dispatch,
        # worker] stamps, popped at retire and cleared by run() — a
        # persistent pool carries nothing across runs
        pending = self._pending
        pending.clear()

        frontier = GroupFrontier(codes, batch_size, src=src)
        t_ready = (time.perf_counter() - epoch
                   if tracer is not None else 0.0)
        for tid in np.flatnonzero(indeg == 0).tolist():
            frontier.push(tid, -prio[tid] if prio is not None else 0.0)
            if tracer is not None:
                pending[tid] = [t_ready, -1.0, -1]
        load = [0] * W          # in-flight tasks (the capacity unit)
        wload = [0.0] * W       # in-flight weight (the placement key)
        outstanding = 0
        completed = 0
        abort_exc: BaseException | None = None
        # batch == 1: the classic rolling frontier — dispatch the
        # moment a worker has room, _PREFETCH tasks deep.  batch > 1:
        # keep the pipeline two descriptors deep with a refill
        # *hysteresis* — top a worker up only once it is down to its
        # last descriptor's worth of tasks, so ready successors pool
        # in the frontier between refills and form full groups
        # instead of draining one by one as singletons (transit stays
        # hidden behind the in-flight descriptor).
        if batch_size == 1:
            cap = 1 + _PREFETCH
        else:
            cap = 2 * batch_size
        refill_at = cap - batch_size
        track_batch = metrics is not None and batch_size > 1

        def _encode(code, tids) -> tuple:
            ix = np.asarray(tids, dtype=np.intp)
            return (tuple(tids), int(code),
                    tuple(rows[ix].tolist()),
                    tuple(pivs[ix].tolist()),
                    tuple(cols[ix].tolist()),
                    tuple(js[ix].tolist()),
                    tuple(fslot[ix].tolist()),
                    tuple(src[ix].tolist()))

        def dispatch() -> None:
            nonlocal outstanding
            t_disp = -1.0
            # groups bound for the same worker in this dispatch wave
            # coalesce into ONE multi-group descriptor: the heavy
            # apply group and the lone factor task popped next to it
            # share a single queue round-trip and a single completion
            # message instead of paying the per-message cost twice.
            # Placement and execution order are exactly what per-group
            # messages would produce — only the framing changes.
            out: dict[int, list] = {}
            while len(frontier) and abort_exc is None:
                cands = [i for i in range(W) if load[i] <= refill_at]
                if not cands:
                    break
                w = min(cands, key=lambda i: (wload[i], load[i]))
                room = cap - load[w]
                code, tids = frontier.pop_group(limit=room)
                if tracer is not None:
                    if t_disp < 0.0:
                        # one stamp per dispatch wave — tasks pushed in
                        # the same wave leave the scheduler together
                        t_disp = time.perf_counter() - epoch
                    for tid in tids:
                        ent = pending[tid]
                        ent[1] = t_disp
                        ent[2] = w
                out.setdefault(w, []).append((code, tids))
                k = len(tids)
                load[w] += k
                wload[w] += float(weights[tids].sum()) if k > 1 \
                    else float(weights[tids[0]])
                outstanding += k
                if metrics is not None:
                    metrics.counter("procpool.dispatched").inc(k)
                    if track_batch:
                        metrics.counter("procpool.batch.groups").inc()
                        metrics.histogram(
                            "procpool.batch.group_size",
                            buckets=_SIZE_BUCKETS).observe(k)
                        if k > 1 and int(src[tids[0]]) >= 0:
                            hits = dedup_hits(src[tids])
                            if hits:
                                metrics.counter(
                                    "procpool.batch.dedup_hits").inc(hits)
            for w, groups in out.items():
                if len(groups) == 1 and len(groups[0][1]) == 1:
                    code, tids = groups[0]
                    tid = tids[0]
                    self._inqs[w].put((
                        "task", tid, int(code), int(rows[tid]),
                        int(pivs[tid]), int(cols[tid]), int(js[tid]),
                        int(fslot[tid]), int(src[tid])))
                elif len(groups) == 1:
                    code, tids = groups[0]
                    self._inqs[w].put(("grp",) + _encode(code, tids))
                else:
                    self._inqs[w].put((
                        "mgrp", tuple(_encode(c, t) for c, t in groups)))
                if track_batch:
                    metrics.counter("procpool.batch.descriptors").inc()

        def release_group(tids, now: float) -> None:
            """Vectorized successor release for a retired descriptor.

            One ``np.subtract.at`` over the concatenated successor
            slices replaces K Python decrement loops; a successor fed
            by several group members is decremented once per edge, and
            the newly-ready set is pushed in ascending-tid order (the
            heap key decides execution order, so push order only
            breaks priority ties).
            """
            slices = [succ_adj[succ_ptr[t]:succ_ptr[t + 1]]
                      for t in tids]
            alls = np.concatenate(slices)
            if not alls.size:
                return
            np.subtract.at(indeg, alls, 1)
            newly = alls[indeg[alls] == 0]
            if not newly.size:
                return
            for s in np.unique(newly).tolist():
                frontier.push(s, -prio[s] if prio is not None else 0.0)
                if tracer is not None:
                    pending[s] = [now, -1.0, -1]

        def retire(tid: int, w: int, share: float, now: float,
                   release: bool = True) -> None:
            nonlocal abort_exc
            if release and abort_exc is None:
                for s in succ_adj[succ_ptr[tid]:
                                  succ_ptr[tid + 1]].tolist():
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        frontier.push(
                            s, -prio[s] if prio is not None else 0.0)
                        if tracer is not None:
                            # ready the instant this retirement lands —
                            # reuse its stamp
                            pending[s] = [now, -1.0, -1]
            task = g.tasks[tid]
            if dtracer is not None:
                ent = pending.pop(tid)
                dtracer.record_parent(task, ent[0], ent[1], now, w,
                                      dt=share)
            elif tracer is not None:
                ent = pending.pop(tid)
                tracer.record(task, ent[1], max(ent[1], now - share),
                              now, worker=w)
            if metrics is not None:
                name = task.kernel.value
                metrics.counter(f"tasks.retired.{name}").inc()
                metrics.histogram(f"kernel.seconds.{name}").observe(share)
            if on_task_done is not None and abort_exc is None:
                try:
                    on_task_done(task, completed, n)
                except BaseException as exc:
                    abort_exc = exc

        dispatch()
        if bus is not None:
            bus.publish("frontier", value=float(len(frontier)),
                        count=outstanding + len(frontier))
        while completed < n:
            if abort_exc is not None and outstanding == 0:
                break
            try:
                msg = self._done_q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                self._check_alive()
                continue
            kind = msg[0]
            if kind == "done":
                _, w, tids, dt = msg
                tids = (tids,) if isinstance(tids, int) else tids
                k = len(tids)
                load[w] -= k
                wload[w] -= (float(weights[list(tids)].sum()) if k > 1
                             else float(weights[tids[0]]))
                outstanding -= k
                completed += k
                self._sched_ok += k
                share = dt / k
                now = (time.perf_counter() - epoch
                       if tracer is not None else 0.0)
                if k > 1:
                    if abort_exc is None:
                        release_group(tids, now)
                    for tid in tids:
                        retire(tid, w, share, now, release=False)
                else:
                    retire(tids[0], w, share, now)
                if abort_exc is None:
                    dispatch()
                if bus is not None:
                    bus.publish("frontier", value=float(len(frontier)),
                                count=outstanding + len(frontier))
            elif kind == "mdone":
                # one completion for a whole multi-group descriptor
                _, w, parts = msg
                all_tids = [t for tids, _ in parts for t in tids]
                k = len(all_tids)
                load[w] -= k
                wload[w] -= float(weights[all_tids].sum())
                outstanding -= k
                completed += k
                self._sched_ok += k
                now = (time.perf_counter() - epoch
                       if tracer is not None else 0.0)
                if abort_exc is None:
                    release_group(all_tids, now)
                for tids, dt in parts:
                    share = dt / len(tids)
                    for tid in tids:
                        retire(tid, w, share, now, release=False)
                if abort_exc is None:
                    dispatch()
                if bus is not None:
                    bus.publish("frontier", value=float(len(frontier)),
                                count=outstanding + len(frontier))
            elif kind == "error":
                _, w, tids, tb = msg
                tids = (tids,) if isinstance(tids, int) else tids
                k = len(tids)
                load[w] -= k
                wload[w] -= (float(weights[list(tids)].sum()) if k > 1
                             else float(weights[tids[0]]))
                outstanding -= k
                completed += k
                if abort_exc is None:
                    tid = tids[0]
                    abort_exc = RuntimeError(
                        f"task {tid} ({_CODE_TO_NAME[int(codes[tid])]}) "
                        f"failed in worker {w}:\n{tb}")
            # "ready"/"closed" acks never interleave with completions
        if abort_exc is not None:
            raise abort_exc


def execute_process(
    graph,
    tiled: TiledMatrix,
    ib: int = 32,
    numeric: str = "auto",
    workers: Optional[int] = None,
    start_method: Optional[str] = None,
    pool: Optional[ProcessPool] = None,
    batch="auto",
    on_task_done=None,
    tracer=None,
    metrics: MetricsRegistry | None = None,
    collect_metrics: bool = False,
    bus=None,
) -> ExecutionContext:
    """Run a factorization DAG on worker processes (one-shot helper).

    Usually reached via ``execute_graph(..., mode="process")``.
    Creates an ephemeral :class:`ProcessPool` (``workers``,
    ``start_method``) unless an existing ``pool`` is passed — reuse a
    pool when factoring repeatedly, especially under ``spawn``.
    ``batch`` controls micro-batched dispatch (``"auto"``/``"off"``/N;
    see :func:`repro.runtime.groups.resolve_batch`).
    """
    if pool is not None:
        return pool.run(graph, tiled, ib=ib, numeric=numeric, batch=batch,
                        on_task_done=on_task_done, tracer=tracer,
                        metrics=metrics, collect_metrics=collect_metrics,
                        bus=bus)
    with ProcessPool(workers=workers, start_method=start_method) as p:
        return p.run(graph, tiled, ib=ib, numeric=numeric, batch=batch,
                     on_task_done=on_task_done, tracer=tracer,
                     metrics=metrics, collect_metrics=collect_metrics,
                     bus=bus)
