"""Micro-batch group formation and stacked group execution (S24).

PR 9's distributed tracer put a number on the process backend's
dispatch tax: ~150µs of queue/deserialize/publish overhead *per task*,
the same order as an nb=64 kernel itself.  The batched backend already
amortizes Python overhead by executing whole ``(level, kernel)`` groups
as stacked 3-D operations, but pays a level barrier for it.  This
module merges the two mechanisms: the rolling ready-frontier keeps its
no-barrier dataflow order, but dispatches *micro-batches* — small
groups of compatible ready tasks — so one queue round-trip, one
deserialization and one stacked ``np.matmul`` sequence cover K tasks.

Compatibility is cheap to decide.  Two tasks can share a group iff
they run the same kernel; everything else is implied by readiness:

* tasks that are simultaneously ready are mutually independent (a
  dependency path would order them), so their *output* tiles are
  disjoint — any write-write or read-write pair on a tile is
  DAG-ordered, hence never co-ready;
* a newly ready task cannot conflict with an in-flight one for the
  same reason: its conflicting predecessors have all retired.

So group formation needs no pairwise tile checks at all — it is a pop
of up to ``batch`` tasks from one per-kernel ready heap, O(frontier)
total, not O(frontier²).  :class:`GroupFrontier` implements exactly
that; :func:`dispatch_arrays` flattens a graph once into the aligned
coordinate arrays the frontier and the workers index (memoized on the
:class:`~repro.planner.Plan` as ``Plan.dispatch_arrays()``).

Execution splits by kernel class, mirroring
:mod:`repro.runtime.batched`:

* **factor kernels** (GEQRT/TSQRT/TTQRT) run per-slice inside the
  group — LAPACK tile kernels are per-slice anyway, and the per-slice
  reference kernels keep the numpy path *bitwise* identical to
  unbatched execution (stacked factor reductions associate
  differently; stacked applies do not — see below);
* **apply kernels** (UNMQR/TSMQR/TTMQR) sort the group by source
  (V/T) tile — :func:`v_runs` — and execute each run as one broadcast
  stacked apply (:func:`apply_group_pool`): the V tile and its ``T``
  blocks are processed once per run instead of once per task.  The
  stacked apply performs the same matmul chain per batch slice as the
  per-tile kernel, so the numpy path stays bit-exact under grouping.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..dag.tasks import KERNEL_CODES, TaskGraph
from ..kernels.batched import BatchedTFactor, apply_stacked_batched, \
    unmqr_batched
from ..kernels.costs import Kernel
from ..kernels.stacked import ts_support, tt_support

__all__ = [
    "APPLY_CODES", "FACTOR_CODES", "DispatchArrays", "GroupFrontier",
    "apply_group_pool", "dispatch_arrays", "resolve_batch", "v_runs",
]

_KERNEL_TO_CODE = {k: c for c, k in enumerate(KERNEL_CODES)}

#: the QR factor kernels: produce a T factor, run per-slice in groups
FACTOR_CODES = frozenset(
    _KERNEL_TO_CODE[k] for k in (Kernel.GEQRT, Kernel.TSQRT, Kernel.TTQRT))

#: the QR update kernels: consume a T factor, run stacked in groups
APPLY_CODES = frozenset(
    _KERNEL_TO_CODE[k] for k in (Kernel.UNMQR, Kernel.TSMQR, Kernel.TTMQR))

_UNMQR = _KERNEL_TO_CODE[Kernel.UNMQR]
_TTMQR = _KERNEL_TO_CODE[Kernel.TTMQR]

#: ``--batch auto`` targets at least this much estimated work per
#: descriptor, so queue latency and deserialization amortize into the
#: noise while groups stay small enough for least-loaded placement
_AUTO_TARGET_SECONDS = 1e-3

#: calibrated seconds per Table-1 weight unit at nb=64 on small-tile
#: BLAS (kernel wall-times scale ~nb³; see docs/performance.md)
_UNIT_SECONDS_NB64 = 25e-6

#: auto never exceeds this group size — beyond it, placement quality
#: and in-flight fairness cost more than the amortization returns
_AUTO_MAX = 256

#: auto target multiplier for a single worker: with no sibling workers
#: to starve, larger descriptors only amortize harder (longer V runs,
#: fewer queue round trips); measured wall-clock at 1024²/nb=64 keeps
#: improving through ~256-task descriptors, so solo aims 32x deeper
_AUTO_SOLO_FACTOR = 32.0


def resolve_batch(batch, nb: int, mean_weight: float = 5.0,
                  workers: int = 1) -> int:
    """Resolve a ``--batch`` setting to a concrete group size (>= 1).

    ``"off"`` (or 1) disables grouping; an int is used as-is;
    ``"auto"`` targets >= ~1ms of estimated work per descriptor from
    the mean Table-1 task weight and the nb³ kernel cost model — small
    tiles get large groups (the overhead-dominated regime), large
    tiles degenerate to single-task dispatch where the kernel already
    dwarfs the queue tax.  With a single worker the target deepens by
    :data:`_AUTO_SOLO_FACTOR`: grouping cannot starve a sibling
    worker, so only the amortization side of the trade remains.
    """
    if batch == "off":
        return 1
    if batch == "auto":
        est = max(mean_weight, 1.0) * _UNIT_SECONDS_NB64 * (nb / 64.0) ** 3
        target = _AUTO_TARGET_SECONDS * (
            _AUTO_SOLO_FACTOR if workers <= 1 else 1.0)
        return max(1, min(_AUTO_MAX, round(target / est)))
    size = int(batch)
    if size < 1:
        raise ValueError(f"batch must be >= 1, 'auto' or 'off', got {batch!r}")
    return size


# ----------------------------------------------------------------------
# graph flattening (cached per Plan)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DispatchArrays:
    """A graph flattened into the aligned per-task dispatch arrays.

    ``codes`` positions follow :data:`~repro.dag.tasks.KERNEL_CODES`;
    coordinate arrays use ``-1`` where a kernel has no such coordinate.
    ``fslot`` numbers the factor tasks' T-store slots densely in tid
    order; ``src`` points each apply task at its producer's slot
    (QR kernels only — ``-1`` elsewhere).  Immutable and plan-cachable:
    building these is O(tasks) and was previously repeated on every
    ``ProcessPool.run``.
    """

    codes: np.ndarray
    rows: np.ndarray
    pivs: np.ndarray
    cols: np.ndarray
    js: np.ndarray
    fslot: np.ndarray
    src: np.ndarray
    nfactor: int

    def __len__(self) -> int:
        return int(self.codes.size)


def dispatch_arrays(graph: TaskGraph) -> DispatchArrays:
    """Flatten ``graph`` into :class:`DispatchArrays` (one pass).

    Prefer the memoized ``Plan.dispatch_arrays()`` when a plan is
    available — persistent pools then skip the per-run flattening.
    """
    tasks = graph.tasks
    n = len(tasks)
    codes = np.fromiter((_KERNEL_TO_CODE[t.kernel] for t in tasks),
                        dtype=np.int8, count=n)
    rows = np.fromiter((t.row for t in tasks), dtype=np.int64, count=n)
    pivs = np.fromiter((-1 if t.piv is None else t.piv for t in tasks),
                       dtype=np.int64, count=n)
    cols = np.fromiter((t.col for t in tasks), dtype=np.int64, count=n)
    js = np.fromiter((-1 if t.j is None else t.j for t in tasks),
                     dtype=np.int64, count=n)
    # factor tasks get a slot in the shared T store; apply tasks
    # reference their source factor's slot (same (row, col, kind) key
    # convention as ExecutionContext.tfactors)
    from .executor import _KIND
    fmap: dict[tuple[int, int, str], int] = {}
    fslot = np.full(n, -1, dtype=np.int64)
    src = np.full(n, -1, dtype=np.int64)
    for t in tasks:
        code = _KERNEL_TO_CODE[t.kernel]
        if code in FACTOR_CODES:
            s = len(fmap)
            fmap[(t.row, t.col, _KIND[t.kernel])] = s
            fslot[t.tid] = s
    for t in tasks:
        code = _KERNEL_TO_CODE[t.kernel]
        if code in APPLY_CODES:
            src[t.tid] = fmap[(t.row, t.col, _KIND[t.kernel])]
    return DispatchArrays(codes=codes, rows=rows, pivs=pivs, cols=cols,
                          js=js, fslot=fslot, src=src, nfactor=len(fmap))


# ----------------------------------------------------------------------
# group-aware ready frontier
# ----------------------------------------------------------------------

class GroupFrontier:
    """Priority ready-frontier that pops same-kernel micro-batches.

    Ready tasks bucket by ``(kernel code, source slot)`` — the source
    is the producing factor task, so one bucket is exactly one shared
    V/T tile.  A per-code *border* heap tracks each push, keyed like
    the task itself, so the best ready task of a code is O(1) to find
    (stale border entries — tasks already popped — are skipped
    lazily, classic lazy-deletion heap).  :meth:`pop_group` selects
    the code whose border carries the globally best (minimum) key,
    then fills the group *bucket by bucket* in border order: the best
    task comes first, and the rest of its V/T bucket rides along
    before any other source is touched.  That source affinity is what
    makes the stacked apply amortize — every bucket drained whole is
    one ``v_runs`` run, one broadcast T fetch, one stacked matmul
    chain (the batched backend gets the same effect from its level
    grouping).  Every popped group is valid by the readiness argument
    in the module docstring: same kernel, mutually independent,
    disjoint outputs — no pairwise checks needed.

    With ``batch == 1`` (or ``src=None``, the degenerate single
    bucket per code) this reduces exactly to one priority heap per
    kernel code popping the globally best task.
    """

    __slots__ = ("_codes", "_src", "batch", "_buckets", "_border",
                 "_seq", "_n")

    def __init__(self, codes: np.ndarray, batch: int = 1, src=None):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self._codes = codes
        self._src = src
        self.batch = batch
        #: code -> {src slot -> heap of (key, seq, tid)}
        self._buckets: dict[int, dict[int, list]] = {}
        #: code -> heap of (key, seq, src slot); one entry per push
        self._border: dict[int, list] = {}
        self._seq = 0
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def push(self, tid: int, key: float = 0.0) -> None:
        """Add a ready task (``key`` sorts ascending — negate
        bottom-levels for critical-path-first order)."""
        code = int(self._codes[tid])
        s = int(self._src[tid]) if self._src is not None else -1
        buckets = self._buckets.get(code)
        if buckets is None:
            buckets = self._buckets[code] = {}
            self._border[code] = []
        heap = buckets.get(s)
        if heap is None:
            heap = buckets[s] = []
        entry = (key, self._seq, tid)
        heapq.heappush(heap, entry)
        heapq.heappush(self._border[code], (key, self._seq, s))
        self._seq += 1
        self._n += 1

    def _head(self, code: int):
        """Valid border head of ``code`` (lazily dropping stale
        entries), or ``None`` when the code has no ready tasks.

        A border entry is stale iff its task was already popped; the
        border is a superset-heap of all bucket entries, so its first
        non-stale entry always mirrors some bucket's current head.
        """
        border = self._border[code]
        buckets = self._buckets[code]
        while border:
            key, seq, s = border[0]
            heap = buckets.get(s)
            if heap and heap[0][1] == seq:
                return border[0]
            heapq.heappop(border)
        return None

    def pop_group(self, limit: int | None = None) -> tuple[int, list[int]]:
        """Pop the best compatible group: ``(code, tids)``.

        ``limit`` additionally caps the group size (the dispatcher
        passes the target worker's remaining in-flight *task*
        capacity, so one giant group cannot blow past the cap that
        exists to keep priority meaningful).
        """
        if not self._n:
            raise IndexError("pop from an empty frontier")
        best_code = -1
        best_head = None
        for code in self._border:
            head = self._head(code)
            if head is not None and (best_head is None
                                     or head < best_head):
                best_head = head
                best_code = code
        buckets = self._buckets[best_code]
        size = self.batch
        if limit is not None:
            size = max(1, min(size, limit))
        tids: list[int] = []
        while len(tids) < size:
            head = self._head(best_code)
            if head is None:
                break
            heap = buckets[head[2]]
            while heap and len(tids) < size:
                tids.append(heapq.heappop(heap)[2])
        self._n -= len(tids)
        return best_code, tids


# ----------------------------------------------------------------------
# stacked group execution over pool slots
# ----------------------------------------------------------------------

def v_runs(vslots: np.ndarray):
    """Sort an apply group by source-tile slot and yield the runs.

    Returns ``(order, bounds)``: ``order`` permutes the group's tasks
    so that tasks sharing one V tile are contiguous, and
    ``bounds[i]:bounds[i+1]`` delimits run ``i``.  Each run's applies
    then execute as one broadcast batched operation — the V tile and
    its T blocks are processed once instead of once per task.
    """
    order = np.argsort(vslots, kind="stable")
    sv = vslots[order]
    bounds = np.flatnonzero(np.r_[True, sv[1:] != sv[:-1], True])
    return order, bounds


def dedup_hits(srcs) -> int:
    """Source-tile loads an apply group saves by sharing V/T runs."""
    a = np.asarray(srcs)
    return int(a.size - np.unique(a).size)


def apply_group_pool(stack: np.ndarray, code: int, vslots: np.ndarray,
                     top_slots: np.ndarray | None, bot_slots: np.ndarray,
                     tfactor_of) -> None:
    """Execute one apply group in place against a ``(S, nb, nb)`` pool.

    ``stack`` is any slot-addressed tile pool backing array (a
    :class:`~repro.tiles.pool.TilePool`'s or a
    :class:`~repro.tiles.shared_pool.SharedTilePool`'s); ``vslots``
    names each task's V tile, ``bot_slots`` its updated tile
    (``c_bot``), ``top_slots`` the pivot-row tile for the TS/TT
    kernels (``None`` for UNMQR).  ``tfactor_of(i)`` returns the
    broadcastable batch-of-one :class:`BatchedTFactor` of task ``i``
    (pre-sort index).  Gather and scatter are single fancy-indexing
    copies; every run is one broadcast stacked apply.
    """
    order, bounds = v_runs(vslots)
    if code == _UNMQR:
        cslots = bot_slots[order]
        c = stack[cslots]
        for u0, u1 in zip(bounds[:-1], bounds[1:]):
            b = int(order[u0])
            unmqr_batched(stack[vslots[b]][None], tfactor_of(b), c[u0:u1])
        stack[cslots] = c
        return
    support = tt_support if code == _TTMQR else ts_support
    ct = top_slots[order]
    cb = bot_slots[order]
    c_top = stack[ct]
    c_bot = stack[cb]
    for u0, u1 in zip(bounds[:-1], bounds[1:]):
        b = int(order[u0])
        apply_stacked_batched(stack[vslots[b]][None], tfactor_of(b),
                              c_top[u0:u1], c_bot[u0:u1], support,
                              mask=code == _TTMQR)
    stack[ct] = c_top
    stack[cb] = c_bot


def broadcast_tfactor(blocks, ib: int) -> BatchedTFactor:
    """A batch-of-one :class:`BatchedTFactor` from per-panel blocks.

    The apply kernels broadcast it across however many C tiles the
    source tile updates (run length), so no per-task T stacking is
    needed.
    """
    bt = BatchedTFactor(ib=ib)
    bt.blocks = [blk[None] for blk in blocks]
    return bt
