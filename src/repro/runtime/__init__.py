"""Execution runtimes for kernel task graphs (S12, S20, S22, S24)."""

from .batched import execute_batched, level_kernel_groups
from .executor import ExecutionContext, execute_graph
from .groups import GroupFrontier, dispatch_arrays, resolve_batch
from .options import ExecOptions
from .procpool import ProcessPool, execute_process

__all__ = ["ExecutionContext", "ExecOptions", "GroupFrontier",
           "execute_graph", "execute_batched", "execute_process",
           "ProcessPool", "dispatch_arrays", "level_kernel_groups",
           "resolve_batch"]
