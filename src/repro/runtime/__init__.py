"""Execution runtimes for kernel task graphs (S12, S20, S22)."""

from .batched import execute_batched, level_kernel_groups
from .executor import ExecutionContext, execute_graph
from .options import ExecOptions
from .procpool import ProcessPool, execute_process

__all__ = ["ExecutionContext", "ExecOptions", "execute_graph",
           "execute_batched", "execute_process", "ProcessPool",
           "level_kernel_groups"]
