"""Execution runtimes for kernel task graphs (S12)."""

from .executor import ExecutionContext, execute_graph

__all__ = ["ExecutionContext", "execute_graph"]
