"""Execution runtimes for kernel task graphs (S12, S20)."""

from .batched import execute_batched, level_kernel_groups
from .executor import ExecutionContext, execute_graph

__all__ = ["ExecutionContext", "execute_graph", "execute_batched",
           "level_kernel_groups"]
