"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``cp``       critical path of a scheme on a p x q grid
``table``    zero-out time table (the paper's Tables 2-3 views)
``sweep``    compare all schemes on one grid, or sweep one problem
             spec (``"cholesky(t=8)"``) over processor counts
``sim``      simulate a problem spec (``"cholesky(t=8)"``,
             ``"lu(p=8,q=8)"``, or a scheme with P Q) and print its
             makespan against the lower bounds (incl. ALAP)
``tune``     exhaustive PlasmaTree BS search
``factor``   factor a matrix from a .npy file (or a random one) and
             report accuracy; optionally save the factorization
``predict``  measure kernels and predict GFLOP/s (Section 4's model)
``recommend`` pick the best tree for a grid (optionally model-driven)
``coarse``   coarse-grain step table (the paper's Table 2 view)
``optimal``  exhaustive optimal critical path on small grids
``trace``    bounded-P schedule as ASCII Gantt / CSV / JSON / Chrome
             trace-event JSON (``--format chrome``, for Perfetto)
``profile``  execute a factorization with the span tracer and metrics
             registry on, write a Chrome trace (optionally overlaying
             the simulated schedule), print the metrics summary and
             the schedule-analytics report; ``--events`` captures the
             streaming event bus as JSONL, ``--prometheus`` exports
             the registry (with sampler time series) as Prometheus
             text, ``--progress`` shows live progress
``top``      live TTY dashboard of a running factorization: per-kernel
             completion bars, per-worker utilization, ready-frontier
             depth, and a live ETA replayed against the plan's
             simulated schedule (predicted-vs-actual drift)
``analyze``  schedule analytics of a simulated schedule (or an
             exported Chrome trace / JSONL event log via
             ``--from-trace``, ``.gz`` transparently): per-processor
             utilization, time-by-kernel pivot, the critical-path
             chain realizing the makespan, per-task slack, measured
             queue waits, lower-bound efficiency

Examples
--------
::

    python -m repro cp greedy 40 10
    python -m repro table greedy 15 6
    python -m repro sweep 40 5 --family TS
    python -m repro sweep 'cholesky(t=8)' --processors 1,2,4,8
    python -m repro sim 'lu(p=8,q=8)' --workers 4
    python -m repro analyze 'cholesky(t=8)' --workers 4
    python -m repro tune 40 5
    python -m repro factor --random 400x200 --nb 50 --scheme greedy
    python -m repro trace greedy 15 6 --workers 8 --format gantt
    python -m repro trace greedy 15 6 --workers 4 --format chrome
    python -m repro profile greedy 15 6 --workers 8 --out trace.json
    python -m repro profile greedy 15 6 --events events.jsonl.gz \
        --prometheus metrics.prom
    python -m repro top greedy 20 10 --workers 8 --nb 48
    python -m repro factor --random 600x300 --nb 50 --progress
    python -m repro analyze greedy 30 10 --workers 16
    python -m repro analyze --from-trace trace.json --format markdown
    python -m repro analyze --from-trace events.jsonl.gz
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = ["main"]


def _add_grid(p: argparse.ArgumentParser) -> None:
    p.add_argument("scheme",
                   help="elimination tree name or spec, e.g. greedy or "
                        "'plasma(bs=5)'")
    p.add_argument("p", type=int, help="tile rows")
    p.add_argument("q", type=int, help="tile columns")
    p.add_argument("--family", default="TT", choices=["TT", "TS"])
    p.add_argument("--bs", type=int, default=None,
                   help="domain size (plasma-tree / hadri-tree)")
    p.add_argument("--k", type=int, default=None,
                   help="trailing Asap columns (grasap)")


def _scheme_params(args) -> dict:
    params = {}
    if args.bs is not None:
        params["bs"] = args.bs
    if getattr(args, "k", None) is not None:
        params["k"] = args.k
    return params


def _cmd_cp(args) -> int:
    from .core.paths import critical_path

    cp = critical_path(args.scheme, args.p, args.q, family=args.family,
                       **_scheme_params(args))
    print(f"{args.scheme} on {args.p} x {args.q} ({args.family}): "
          f"critical path {cp:g} units (nb^3/3 flops each)")
    return 0


def _cmd_table(args) -> int:
    from .bench.report import format_step_matrix
    from .core.paths import zero_out_steps

    tb = zero_out_steps(args.scheme, args.p, args.q, family=args.family,
                        **_scheme_params(args))
    print(format_step_matrix(
        tb.astype(int),
        title=f"{args.scheme} ({args.family}) zero-out times, "
              f"critical path {int(tb.max())}"))
    return 0


def _sweep_problem(spec: str, args) -> int:
    """Processor sweep of one problem spec: bounded makespans vs bounds."""
    from .api import plan
    from .bench.report import format_table
    from .obs.analyze import analyze_sim

    try:
        pl = plan(spec)
    except (TypeError, ValueError) as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    try:
        procs = sorted({int(x) for x in args.processors.split(",")})
    except ValueError:
        print(f"sweep: bad --processors list {args.processors!r}",
              file=sys.stderr)
        return 2
    work = float(sum(t.weight for t in pl.graph.tasks))
    cp = pl.critical_path()
    rows = []
    for P in procs:
        rep = analyze_sim(pl.schedule(P))
        lower = rep.bounds["lower"]
        rows.append([P, rep.makespan, round(rep.bounds["alap"], 2),
                     round(lower / rep.makespan, 3)])
    print(format_table(
        ["P", "makespan", "ALAP bound", "efficiency"], rows,
        title=f"{pl.scheme} ({pl.problem}): {len(pl.graph.tasks)} tasks, "
              f"work {work:g}, critical path {cp:g}"))
    return 0


def _cmd_sweep(args) -> int:
    import json

    from .api import plan
    from .bench.report import format_table
    from .kernels.costs import total_weight
    from .planner import PLAN_METRICS, plan_cache_stats
    from .schemes.registry import available_schemes

    shape = args.shape
    if len(shape) == 1 and not shape[0].isdigit():
        return _sweep_problem(shape[0], args)
    if len(shape) != 2 or not all(s.isdigit() for s in shape):
        print("sweep: expected P Q tile-grid integers or one problem "
              "spec such as 'cholesky(t=8)'", file=sys.stderr)
        return 2
    args.p, args.q = int(shape[0]), int(shape[1])

    rows = []
    total = total_weight(args.p, args.q)
    for scheme in available_schemes():
        params = {"bs": max(1, args.p // 4)} if scheme in (
            "plasma-tree", "hadri-tree") else {}
        cp = plan(args.p, args.q, scheme, args.family,
                  **params).critical_path()
        note = f"BS={params['bs']}" if params else ""
        rows.append([scheme, int(cp), round(total / cp, 1), note])
    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["scheme", "critical path", "max speedup", ""], rows,
        title=f"{args.p} x {args.q} grid, {args.family} kernels "
              f"(total work {total} units)"))
    stats = plan_cache_stats()
    print(f"\nplan cache: {stats['hits']} hits "
          f"({stats['memory.hits']} memory, {stats['disk.hits']} disk), "
          f"{stats['builds']} builds, "
          f"{stats['build_seconds']:.3f} s building, "
          f"{stats['memory.evictions']:g} evictions, "
          f"{stats['disk.errors']:g} disk errors")
    if args.metrics_json:
        snapshot = {"plan_cache": stats, "metrics": PLAN_METRICS.to_dict()}
        with open(args.metrics_json, "w") as fh:
            json.dump(snapshot, fh, indent=1)
        print(f"metrics JSON written to {args.metrics_json}")
    return 0


def _cmd_tune(args) -> int:
    from .bench.autotune import plasma_bs_sweep
    from .bench.report import format_table
    from .core.paths import critical_path

    sweep = plasma_bs_sweep(args.p, args.q, args.family)
    best = min(sweep, key=lambda b: (sweep[b], b))
    rows = [[bs, int(cp), "*" if bs == best else ""]
            for bs, cp in sorted(sweep.items())]
    print(format_table(["BS", "critical path", ""], rows,
                       title=f"PlasmaTree({args.family}) BS sweep on "
                             f"{args.p} x {args.q}"))
    g = critical_path("greedy", args.p, args.q, family=args.family)
    print(f"\nbest BS = {best} (cp {sweep[best]:g}); Greedy achieves {g:g} "
          "with no parameter")
    return 0


def _progress_setup(pl, nb: int, workers, mode: str, label: str,
                    bus=None, state=None, show_workers: bool = False,
                    interval: float = 0.1):
    """Wire a bus + live state + renderer for one planned run.

    Returns ``(bus, state, renderer, replay)``; an existing
    ``bus``/``state`` pair is reused when given.  The ETA replays
    against the plan's memoized simulated schedule: bounded on
    ``workers`` lanes for the threaded executor, unbounded (ASAP) for
    the level-parallel batched backend, one lane otherwise.
    """
    from .obs import EventBus, LiveState, ProgressRenderer, kernel_totals

    if mode == "batched":
        procs = None
    elif mode == "process":
        procs = workers if workers and workers > 1 else (os.cpu_count() or 1)
    else:
        procs = workers if workers and workers > 1 else 1
    if bus is None:
        bus = EventBus()
    if state is None:
        state = LiveState(total=len(pl.graph.tasks), nb=nb).connect(bus)
    replay = pl.replay(procs)
    renderer = ProgressRenderer(
        state, replay, clock=bus.now, totals=kernel_totals(pl),
        label=label, show_workers=show_workers, interval=interval)
    return bus, state, renderer, replay


def _eta_summary(renderer, state) -> str | None:
    """Post-run predicted-vs-realized line (None without an estimate)."""
    est = renderer.last_estimate
    replay = renderer.replay
    if est is None or replay is None or replay.first_predicted is None:
        return None
    realized = state.view()["last_t"]
    first = replay.first_predicted
    drift = realized / first - 1.0 if first else 0.0
    return (f"makespan {realized * 1e3:.1f} ms realized vs "
            f"{first * 1e3:.1f} ms first-predicted "
            f"({drift * +100:+.1f}% drift)")


def _exec_options(args):
    """The run's execution knobs as one ExecOptions bundle."""
    from .runtime.options import ExecOptions

    return ExecOptions(mode=args.mode, workers=args.workers,
                       numeric=args.numeric,
                       start_method=args.start_method,
                       batch=getattr(args, "batch", "auto"))


def _add_batch(p) -> None:
    p.add_argument("--batch", default="auto", metavar="auto|N|off",
                   help="micro-batch dispatch for --mode process/task: "
                        "auto (default) targets ~1ms of work per group, "
                        "an int fixes the group size, off (or 1) "
                        "dispatches single tasks")


def _cmd_factor(args) -> int:
    from .analysis.accuracy import assess
    from .core.serialize import save_factorization
    from .core.tiled_qr import tiled_qr

    if args.random:
        m, n = (int(x) for x in args.random.lower().split("x"))
        a = np.random.default_rng(args.seed).standard_normal((m, n))
        src = f"random {m} x {n} (seed {args.seed})"
    elif args.input:
        a = np.load(args.input)
        src = args.input
    else:
        print("factor: need --random MxN or --input FILE", file=sys.stderr)
        return 2
    params = {"bs": args.bs} if args.bs is not None else {}
    bus = renderer = state = None
    if args.progress:
        from .api import plan as build_plan

        p_t, q_t = -(-a.shape[0] // args.nb), -(-a.shape[1] // args.nb)
        pl = build_plan(p_t, q_t, args.scheme, args.family, **params)
        bus, state, renderer, _ = _progress_setup(
            pl, args.nb, args.workers, args.mode,
            label=f"{args.scheme} {p_t}x{q_t} nb={args.nb}")
        renderer.start()
    try:
        f = tiled_qr(a, nb=args.nb, ib=args.ib, scheme=args.scheme,
                     family=args.family, backend=args.backend,
                     options=_exec_options(args), bus=bus, **params)
    finally:
        if renderer is not None:
            renderer.stop()
    if renderer is not None:
        line = _eta_summary(renderer, state)
        if line:
            print(f"  {line}")
    rep = assess(f, a)
    how = args.mode if args.mode in ("batched", "process") else args.backend
    print(f"factored {src} with {args.scheme} ({args.family}, "
          f"{how}, nb={args.nb})")
    print(f"  backward error   {rep.backward_error:.3e}")
    print(f"  orthogonality    {rep.orthogonality:.3e}")
    print(f"  eps multiple     {rep.eps_multiple:.1f}  "
          f"({'stable' if rep.is_stable() else 'UNSTABLE'})")
    if args.save:
        save_factorization(f, args.save)
        print(f"  saved to {args.save}")
    return 0


def _cmd_predict(args) -> int:
    from .analysis.model import PerformanceModel, predicted_gflops
    from .bench.kernel_timing import measure_gamma_seq, time_kernels
    from .bench.report import format_series

    rates = time_kernels(args.nb, ib=32, backend="lapack", strategy="warm")
    gamma = measure_gamma_seq(rates)
    model = PerformanceModel(gamma_seq=gamma, processors=args.cores)
    qs = [q for q in (1, 2, 4, 5, 8, 10, 20, 30, 40) if q <= args.p]
    series = {s: [predicted_gflops(s, args.p, q, model) for q in qs]
              for s in ("greedy", "fibonacci", "flat-tree")}
    print(f"gamma_seq = {gamma:.3f} GFLOP/s at nb={args.nb}")
    print(format_series("q", qs, series,
                        title=f"predicted GFLOP/s, p={args.p}, "
                              f"{args.cores} cores"))
    return 0


def _cmd_recommend(args) -> int:
    from .analysis.model import PerformanceModel
    from .bench.report import format_table
    from .core.auto import select_scheme

    model = None
    if args.cores is not None:
        gamma = args.gamma
        if gamma is None:
            from .bench.kernel_timing import measure_gamma_seq, time_kernels
            rates = time_kernels(args.nb, ib=32, backend="lapack",
                                 strategy="warm")
            gamma = measure_gamma_seq(rates)
            print(f"measured gamma_seq = {gamma:.3f} GFLOP/s at nb={args.nb}")
        model = PerformanceModel(gamma_seq=gamma, processors=args.cores)
    choice = select_scheme(args.p, args.q, model=model, family=args.family)
    rows = []
    for name, params, cp, gflops in choice.ranking:
        rows.append([name + (f"(BS={params['bs']})" if params else ""),
                     int(cp), "-" if gflops is None else round(gflops, 2)])
    print(format_table(["scheme", "critical path", "pred GFLOP/s"], rows,
                       title=f"recommendation for {args.p} x {args.q} "
                             f"({args.family} kernels)"))
    extra = f" with {choice.params}" if choice.params else ""
    print(f"\nuse: scheme={choice.scheme!r}{extra}")
    return 0


def _cmd_coarse(args) -> int:
    from .bench.report import format_step_matrix
    from .coarse import coarse_fibonacci, coarse_greedy, coarse_sameh_kuck

    factories = {"sameh-kuck": coarse_sameh_kuck,
                 "fibonacci": coarse_fibonacci,
                 "greedy": coarse_greedy}
    try:
        sched = factories[args.algorithm](args.p, args.q)
    except KeyError:
        print(f"coarse: unknown algorithm {args.algorithm!r} "
              f"(choose from {sorted(factories)})", file=sys.stderr)
        return 2
    print(format_step_matrix(
        sched.steps,
        title=f"coarse-grain {sched.name}: critical path "
              f"{sched.critical_path}"))
    return 0


def _cmd_optimal(args) -> int:
    from .analysis.optimality import exhaustive_optimal_cp
    from .core.paths import critical_path

    try:
        opt = exhaustive_optimal_cp(args.p, args.q, band=args.band,
                                    max_leaves=args.max_leaves)
    except ValueError as exc:
        print(f"optimal: {exc}", file=sys.stderr)
        return 2
    shape = (f"banded (band={args.band}) " if args.band is not None else "")
    print(f"optimal critical path of the {shape}{args.p} x {args.q} grid: "
          f"{opt:g}")
    for scheme in ("greedy", "fibonacci", "flat-tree", "binary-tree"):
        cp = critical_path(scheme, args.p, args.q)
        flag = "  <- optimal" if cp == opt and args.band is None else ""
        print(f"  {scheme:12s} {cp:g}{flag}")
    if args.q >= 2:
        print(f"  (Theorem 1(3) lower bound 22q-30 = {22 * args.q - 30})")
    return 0


def _cmd_trace(args) -> int:
    from .api import simulate
    from .sim.trace import (render_gantt, trace_to_chrome, trace_to_csv,
                            trace_to_json)

    res = simulate(args.scheme, args.p, args.q, processors=args.workers,
                   priority=args.priority, family=args.family,
                   **_scheme_params(args))
    if args.format == "gantt":
        print(render_gantt(res, width=args.width))
    elif args.format == "csv":
        print(trace_to_csv(res), end="")
    elif args.format == "chrome":
        print(trace_to_chrome(res))
    else:
        print(trace_to_json(res))
    return 0


def _cmd_sim(args) -> int:
    from .api import simulate
    from .obs.analyze import analyze_sim

    try:
        res = simulate(args.problem, args.p, args.q,
                       processors=args.workers, priority=args.priority,
                       family=args.family)
    except (TypeError, ValueError) as exc:
        print(f"sim: {exc}", file=sys.stderr)
        return 2
    rep = analyze_sim(res)
    g = res.graph
    where = (f"{rep.processors} processors" if rep.processors
             else "unbounded processors")
    print(f"{g.name or args.problem} ({rep.problem}): "
          f"{rep.tasks} tasks, work {rep.total_busy:g} units")
    print(f"  makespan   {rep.makespan:g} on {where}")
    for key, title in (("critical_path", "critical path"),
                       ("work", "work / P"),
                       ("alap", "ALAP area bound"),
                       ("lower", "lower bound"),
                       ("paper_cp_lower_bound", "Thm 1(3) 22q-30")):
        if rep.bounds and key in rep.bounds:
            print(f"  {title:<16s} {rep.bounds[key]:g}")
    if rep.bounds and "efficiency" in rep.bounds:
        print(f"  efficiency {rep.bounds['efficiency'] * 100:.1f} % "
              "of the lower bound")
    return 0


def _cmd_analyze(args) -> int:
    from .obs.analyze import analyze_sim, analyze_trace_file, render_report

    if args.from_trace:
        if args.scheme is not None:
            print("analyze: give either a scheme/grid or --from-trace, "
                  "not both", file=sys.stderr)
            return 2
        try:
            reports = analyze_trace_file(args.from_trace)
        except OSError as exc:
            print(f"analyze: cannot read {args.from_trace}: {exc}",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"analyze: bad trace {args.from_trace}: {exc}",
                  file=sys.stderr)
            return 2
        if not reports:
            print(f"analyze: no trace events in {args.from_trace}",
                  file=sys.stderr)
            return 1
        print("\n\n".join(render_report(r, args.format) for r in reports))
        return 0
    if args.scheme is None:
        print("analyze: need SCHEME P Q, a problem spec such as "
              "'cholesky(t=8)', or --from-trace FILE", file=sys.stderr)
        return 2

    from .api import plan
    from .problems import available_problems, parse_problem_spec

    try:
        problem_name = parse_problem_spec(args.scheme)[0]
    except (TypeError, ValueError):
        problem_name = None
    if problem_name in available_problems():
        # problem-centric form: analyze "cholesky(t=8)" [--workers N]
        kwargs = {}
        if args.p is not None:
            kwargs["p"] = args.p
        if args.q is not None:
            kwargs["q"] = args.q
        if problem_name == "qr":
            kwargs.setdefault("family", args.family)
        try:
            pl = plan(args.scheme, **kwargs)
        except (TypeError, ValueError) as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 2
    else:
        if args.p is None or args.q is None:
            print("analyze: need SCHEME P Q (or a problem spec, or "
                  "--from-trace FILE)", file=sys.stderr)
            return 2
        pl = plan(args.p, args.q, args.scheme, args.family,
                  **_scheme_params(args))
    res = pl.schedule(args.workers, args.priority)
    report = analyze_sim(res)
    print(render_report(report, args.format))
    return 0


def _cmd_profile(args) -> int:
    from .api import plan
    from .obs.chrome_trace import write_chrome_trace
    from .obs.tracer import DistributedTracer, Tracer
    from .planner import PLAN_METRICS, plan_cache_stats
    from .runtime.executor import execute_graph
    from .tiles.layout import TiledMatrix

    nb = args.nb
    m, n = args.p * nb, args.q * nb
    a = np.random.default_rng(args.seed).standard_normal((m, n))
    tiled = TiledMatrix(a, nb)
    pl = plan(args.p, args.q, args.scheme, args.family,
              **_scheme_params(args))

    # the process backend merges worker-side spans onto the parent
    # timeline (clock-aligned); the other modes record plain spans
    tracer = DistributedTracer() if args.mode == "process" else Tracer()
    stream_on = bool(args.progress or args.events or args.prometheus)
    bus = state = renderer = sampler = None
    if stream_on:
        from .obs import EventBus, LiveState, MetricsRegistry, Sampler

        # --events wants every event of the run in the ring at the
        # end; 4x tasks covers start/done plus group/frontier records
        ntasks = len(pl.graph.tasks)
        bus = EventBus(capacity=max(4096, 4 * ntasks))
        state = LiveState(total=ntasks, nb=nb).connect(bus)
        metrics_reg = MetricsRegistry()
        sampler = Sampler(metrics_reg, state).start()
        if args.progress:
            _, _, renderer, _ = _progress_setup(
                pl, nb, args.workers, args.mode,
                label=f"{args.scheme} {args.p}x{args.q} nb={nb}",
                bus=bus, state=state)
            renderer.start()
    else:
        metrics_reg = None
    try:
        ctx = execute_graph(pl, tiled, backend=args.backend,
                            ib=min(args.ib, nb),
                            options=_exec_options(args),
                            tracer=tracer, metrics=metrics_reg,
                            collect_metrics=True, bus=bus)
    finally:
        if sampler is not None:
            sampler.stop()
        if renderer is not None:
            renderer.stop()
    metrics = ctx.metrics
    if renderer is not None:
        line = _eta_summary(renderer, state)
        if line:
            print(line)

    sim = None
    if args.mode == "batched":
        # one span per (level, kernel) group; per-task weights would be
        # meaningless, so skip the simulated overlay
        sim = None
    elif not args.no_sim:
        # Simulate the same DAG with the *measured* mean kernel times as
        # weights, so the simulated lanes share the measured time axis.
        weights = {}
        for t in pl.graph.tasks:
            h = metrics.get(f"kernel.seconds.{t.kernel.value}")
            weights[t.kernel] = h.mean if h is not None and h.count else 0.0
        if args.mode == "process":
            procs = (args.workers if args.workers and args.workers > 1
                     else (os.cpu_count() or 1))
        else:
            procs = args.workers if args.workers and args.workers > 1 else 1
        sim = pl.rescaled(weights).schedule(procs)

    how = (args.mode if args.mode in ("batched", "process")
           else args.backend)
    print(f"profiled {args.scheme} ({args.family}, {how}) on a "
          f"{m} x {n} matrix, nb={nb}, workers={args.workers}")
    print(f"  tasks            {len(tracer)}")
    print(f"  makespan         {tracer.makespan() * 1e3:.2f} ms")
    print(f"  worker busy      {tracer.busy_fraction() * 100:.1f} %")
    if sim is not None:
        print(f"  simulated        {sim.makespan * 1e3:.2f} ms on "
              f"{sim.processors} workers (measured-weight schedule)")
    stats = plan_cache_stats()
    print(f"  plan             {'cache hit' if stats['hits'] else 'built'} "
          f"({stats['build_seconds'] * 1e3:.2f} ms building, "
          f"{stats['hits']} cache hits this process)")
    print()
    print(metrics.render(title="execution metrics"))
    print()
    print(PLAN_METRICS.render(title="plan metrics"))
    if not args.no_analyze:
        from .obs.analyze import (analyze_sim, analyze_tracer,
                                  overlay_diff, render_overlay,
                                  render_report)

        print()
        print(render_report(analyze_tracer(tracer), "text"))
        if sim is not None:
            print()
            print(render_overlay(overlay_diff(analyze_tracer(tracer),
                                              analyze_sim(sim))))
        if getattr(tracer, "phases", None):
            from .obs.analyze import overhead_report, render_overhead_report

            print()
            print(render_overhead_report(overhead_report(
                tracer, graph=pl,
                label=f"{args.scheme} {args.p}x{args.q} nb={nb} "
                      f"({args.mode})")))
    if args.out:
        write_chrome_trace(args.out, tracer=tracer, sim=sim,
                           sim_time_scale=1e6,
                           problem=getattr(pl, "problem", "qr"))
        print(f"\nChrome trace written to {args.out} "
              "(open in Perfetto / chrome://tracing)")
    if args.metrics_json:
        with open(args.metrics_json, "w") as fh:
            fh.write(metrics.to_json())
        print(f"metrics JSON written to {args.metrics_json}")
    if args.events:
        from .obs.export import write_events_jsonl

        path = write_events_jsonl(args.events, bus.snapshot())
        note = (f"; ring dropped the oldest {bus.dropped}"
                if bus.dropped else "")
        print(f"event log ({bus.published} events{note}) written to {path}")
    if args.prometheus:
        from .obs.export import write_prometheus

        write_prometheus(args.prometheus, metrics)
        print(f"Prometheus metrics written to {args.prometheus}")
    return 0


def _cmd_overhead(args) -> int:
    from .api import plan
    from .obs.analyze import overhead_report, render_overhead_report
    from .obs.tracer import DistributedTracer, Tracer
    from .runtime.executor import execute_graph
    from .tiles.layout import TiledMatrix

    nb = args.nb
    m, n = args.p * nb, args.q * nb
    a = np.random.default_rng(args.seed).standard_normal((m, n))
    tiled = TiledMatrix(a, nb)
    pl = plan(args.p, args.q, args.scheme, args.family,
              **_scheme_params(args))
    tracer = DistributedTracer() if args.mode == "process" else Tracer()
    execute_graph(pl, tiled, backend=args.backend, ib=min(args.ib, nb),
                  options=_exec_options(args), tracer=tracer)
    rep = overhead_report(
        tracer, graph=pl,
        label=f"{args.scheme} {args.p}x{args.q} nb={nb} ({args.mode}, "
              f"workers={args.workers})")
    print(render_overhead_report(rep, args.format))
    if args.json:
        import json as json_mod

        with open(args.json, "w") as fh:
            json_mod.dump(rep.to_dict(), fh, indent=1, sort_keys=True)
        print(f"\noverhead report JSON written to {args.json}")
    return 0


def _cmd_top(args) -> int:
    import threading

    from .api import plan
    from .runtime.executor import execute_graph
    from .tiles.layout import TiledMatrix

    nb = args.nb
    m, n = args.p * nb, args.q * nb
    a = np.random.default_rng(args.seed).standard_normal((m, n))
    tiled = TiledMatrix(a, nb)
    pl = plan(args.p, args.q, args.scheme, args.family,
              **_scheme_params(args))
    bus, state, renderer, replay = _progress_setup(
        pl, nb, args.workers, args.mode,
        label=f"{args.scheme} {args.p}x{args.q} nb={nb} ({args.mode})",
        show_workers=True, interval=args.interval)

    errors: list[BaseException] = []

    def run() -> None:
        try:
            execute_graph(pl, tiled, backend=args.backend,
                          ib=min(args.ib, nb),
                          options=_exec_options(args), bus=bus)
        except BaseException as exc:  # surfaced after the join
            errors.append(exc)

    worker = threading.Thread(target=run, name="repro-top-run", daemon=True)
    worker.start()
    with renderer:
        worker.join()
    if errors:
        raise errors[0]
    line = _eta_summary(renderer, state)
    if line:
        print(line)
    v = state.view()
    print(f"retired {v['done']}/{v['total']} tasks; "
          f"dashboard events: {bus.published} published, "
          f"{bus.dropped} dropped by the ring")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tiled QR factorization algorithms (Bouwmeester et al., "
                    "SC'11) — analysis and execution tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("cp", help="critical path of a scheme")
    _add_grid(p)
    p.set_defaults(fn=_cmd_cp)

    p = sub.add_parser("table", help="zero-out time table")
    _add_grid(p)
    p.set_defaults(fn=_cmd_table)

    p = sub.add_parser(
        "sweep",
        help="compare all schemes on a grid, or sweep one problem spec "
             "over processor counts")
    p.add_argument("shape", nargs="+",
                   help="P Q tile-grid integers (scheme comparison) or "
                        "one problem spec such as 'cholesky(t=8)' "
                        "(processor sweep)")
    p.add_argument("--family", default="TT", choices=["TT", "TS"])
    p.add_argument("--processors", default="1,2,4,8,16",
                   help="comma-separated processor counts for the "
                        "problem-spec form")
    p.add_argument("--metrics-json",
                   help="write plan-cache stats + plan metrics JSON here")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "sim",
        help="simulate a problem spec: makespan and lower bounds")
    p.add_argument("problem",
                   help="problem spec, e.g. 'cholesky(t=8)', "
                        "'lu(p=8,q=8)', 'qr(p=8,q=4)', or a scheme "
                        "name with P and Q")
    p.add_argument("p", type=int, nargs="?", default=None, help="tile rows")
    p.add_argument("q", type=int, nargs="?", default=None,
                   help="tile columns")
    p.add_argument("--family", default="TT", choices=["TT", "TS"])
    p.add_argument("--workers", type=int, default=None,
                   help="processor count (omit for the unbounded ASAP "
                        "schedule)")
    p.add_argument("--priority", default="critical-path")
    p.set_defaults(fn=_cmd_sim)

    p = sub.add_parser("tune", help="PlasmaTree BS exhaustive search")
    p.add_argument("p", type=int)
    p.add_argument("q", type=int)
    p.add_argument("--family", default="TT", choices=["TT", "TS"])
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("factor", help="factor a matrix and report accuracy")
    p.add_argument("--input", help=".npy file to factor")
    p.add_argument("--random", help="generate a random MxN matrix")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nb", type=int, default=64)
    p.add_argument("--ib", type=int, default=32)
    p.add_argument("--scheme", default="greedy")
    p.add_argument("--family", default="TT", choices=["TT", "TS"])
    p.add_argument("--backend", default="lapack",
                   choices=["reference", "lapack"])
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--mode", default="task",
                   choices=["task", "batched", "process"],
                   help="batched = level-synchronous stacked kernels "
                        "(ignores --backend/--workers); process = "
                        "worker processes over shared-memory tiles "
                        "with a rolling ready-frontier")
    p.add_argument("--numeric", default="auto",
                   choices=["auto", "numpy", "lapack"],
                   help="factor-kernel implementation for --mode "
                        "batched/process")
    p.add_argument("--start-method", default=None,
                   choices=["fork", "spawn", "forkserver"],
                   help="multiprocessing start method for --mode process")
    _add_batch(p)
    p.add_argument("--bs", type=int, default=None)
    p.add_argument("--save", help="save the factorization to this .npz")
    p.add_argument("--progress", action="store_true",
                   help="live progress (kernel bars + ETA on a TTY, "
                        "periodic lines otherwise)")
    p.set_defaults(fn=_cmd_factor)

    p = sub.add_parser("predict", help="measure kernels, predict GFLOP/s")
    p.add_argument("--nb", type=int, default=64)
    p.add_argument("--cores", type=int, default=48)
    p.add_argument("--p", type=int, default=40)
    p.set_defaults(fn=_cmd_predict)

    p = sub.add_parser("recommend", help="pick the best tree for a grid")
    p.add_argument("p", type=int)
    p.add_argument("q", type=int)
    p.add_argument("--family", default="TT", choices=["TT", "TS"])
    p.add_argument("--cores", type=int, default=None,
                   help="rank by predicted GFLOP/s on this many cores")
    p.add_argument("--gamma", type=float, default=None,
                   help="sequential GFLOP/s (measured if omitted)")
    p.add_argument("--nb", type=int, default=64,
                   help="tile size for the measurement")
    p.set_defaults(fn=_cmd_recommend)

    p = sub.add_parser("coarse", help="coarse-grain step table (Table 2)")
    p.add_argument("algorithm", help="sameh-kuck | fibonacci | greedy")
    p.add_argument("p", type=int)
    p.add_argument("q", type=int)
    p.set_defaults(fn=_cmd_coarse)

    p = sub.add_parser("optimal",
                       help="exhaustive optimal critical path (small grids)")
    p.add_argument("p", type=int)
    p.add_argument("q", type=int)
    p.add_argument("--band", type=int, default=None,
                   help="banded matrix (the Theorem 1(3) instrument)")
    p.add_argument("--max-leaves", type=int, default=2_000_000)
    p.set_defaults(fn=_cmd_optimal)

    p = sub.add_parser("trace", help="bounded-P schedule trace")
    _add_grid(p)
    p.add_argument("--workers", type=int, default=8)
    p.add_argument("--priority", default="critical-path")
    p.add_argument("--format", default="gantt",
                   choices=["gantt", "csv", "json", "chrome"])
    p.add_argument("--width", type=int, default=100)
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "analyze",
        help="schedule analytics: utilization, kernel shares, critical "
             "path, slack, lower-bound efficiency")
    p.add_argument("scheme", nargs="?", default=None,
                   help="elimination tree name or spec (omit with "
                        "--from-trace)")
    p.add_argument("p", type=int, nargs="?", default=None, help="tile rows")
    p.add_argument("q", type=int, nargs="?", default=None,
                   help="tile columns")
    p.add_argument("--family", default="TT", choices=["TT", "TS"])
    p.add_argument("--bs", type=int, default=None,
                   help="domain size (plasma-tree / hadri-tree)")
    p.add_argument("--k", type=int, default=None,
                   help="trailing Asap columns (grasap)")
    p.add_argument("--workers", type=int, default=None,
                   help="processor count (omit for the unbounded ASAP "
                        "schedule)")
    p.add_argument("--priority", default="critical-path")
    p.add_argument("--format", default="text",
                   choices=["text", "json", "markdown"])
    p.add_argument("--from-trace", metavar="FILE",
                   help="analyze an exported Chrome trace or JSONL "
                        "event log (.gz ok) instead of simulating")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "profile",
        help="execute with tracing + metrics, export a Chrome trace")
    _add_grid(p)
    p.add_argument("--nb", type=int, default=64, help="tile size")
    p.add_argument("--ib", type=int, default=32, help="inner blocking")
    p.add_argument("--backend", default="lapack",
                   choices=["reference", "lapack"])
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--mode", default="task",
                   choices=["task", "batched", "process"],
                   help="batched = level-synchronous stacked kernels "
                        "(spans cover (level, kernel) groups and the "
                        "simulated overlay is skipped); process = "
                        "worker processes over shared-memory tiles")
    p.add_argument("--numeric", default="auto",
                   choices=["auto", "numpy", "lapack"],
                   help="factor-kernel implementation for --mode "
                        "batched/process")
    p.add_argument("--start-method", default=None,
                   choices=["fork", "spawn", "forkserver"],
                   help="multiprocessing start method for --mode process")
    _add_batch(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", help="write Chrome trace-event JSON here")
    p.add_argument("--metrics-json", help="write the metrics snapshot here")
    p.add_argument("--no-sim", action="store_true",
                   help="skip the simulated-schedule overlay lanes")
    p.add_argument("--no-analyze", action="store_true",
                   help="skip the schedule-analytics report and the "
                        "measured-vs-simulated overhead diff")
    p.add_argument("--progress", action="store_true",
                   help="live progress while the factorization runs")
    p.add_argument("--events", metavar="FILE",
                   help="write the event-bus capture as JSONL here "
                        "(.gz = gzipped; readable by analyze "
                        "--from-trace)")
    p.add_argument("--prometheus", metavar="FILE",
                   help="write the metrics registry in Prometheus text "
                        "exposition format here (includes the sampler "
                        "time series)")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "overhead",
        help="execute with distributed tracing and attribute every "
             "microsecond per task to the six lifecycle phases "
             "(queued / dispatched / deserialized / computing / "
             "published / retired)")
    _add_grid(p)
    p.add_argument("--nb", type=int, default=64, help="tile size")
    p.add_argument("--ib", type=int, default=32, help="inner blocking")
    p.add_argument("--backend", default="lapack",
                   choices=["reference", "lapack"])
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--mode", default="process",
                   choices=["task", "batched", "process"],
                   help="process (default) = full six-phase attribution "
                        "with clock-aligned worker spans; task/batched "
                        "degenerate to queued + computing for "
                        "comparison")
    p.add_argument("--numeric", default="auto",
                   choices=["auto", "numpy", "lapack"])
    p.add_argument("--start-method", default=None,
                   choices=["fork", "spawn", "forkserver"])
    _add_batch(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--format", default="text",
                   choices=["text", "json", "markdown"])
    p.add_argument("--json", metavar="FILE",
                   help="also write the report dict as JSON here")
    p.set_defaults(fn=_cmd_overhead)

    p = sub.add_parser(
        "top",
        help="live TTY dashboard of a running factorization: per-kernel "
             "bars, worker utilization, ETA vs the simulated schedule")
    _add_grid(p)
    p.add_argument("--nb", type=int, default=64, help="tile size")
    p.add_argument("--ib", type=int, default=32, help="inner blocking")
    p.add_argument("--backend", default="lapack",
                   choices=["reference", "lapack"])
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--mode", default="task",
                   choices=["task", "batched", "process"])
    p.add_argument("--numeric", default="auto",
                   choices=["auto", "numpy", "lapack"])
    p.add_argument("--start-method", default=None,
                   choices=["fork", "spawn", "forkserver"])
    _add_batch(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--interval", type=float, default=0.1,
                   help="dashboard repaint cadence in seconds")
    p.set_defaults(fn=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
