"""Observability for the tiled-QR runtimes (S17, S19).

Four pieces, shared by the threaded executor, the discrete-event
simulator, and the benchmark harness:

* :mod:`repro.obs.tracer` — a thread-safe span tracer recording one
  :class:`Span` per retired kernel task (submit/start/finish
  wall-times, worker thread), plus a zero-cost :class:`NullTracer`;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with deterministic plain-text
  and JSON summaries;
* :mod:`repro.obs.chrome_trace` — export of a measured capture and/or
  a simulated schedule to Chrome trace-event JSON, loadable in
  Perfetto / ``chrome://tracing`` for lane-by-lane comparison;
* :mod:`repro.obs.analyze` — schedule analytics: per-processor
  utilization, time-by-kernel pivots, critical-path attribution,
  per-task slack, lower-bound efficiency, and sim-vs-measured
  overhead diffs, as a structured :class:`ScheduleReport`.

See ``docs/observability.md`` for a walkthrough.
"""

from .analyze import (CriticalPath, ScheduleReport, analyze,
                      analyze_chrome_trace, analyze_sim, analyze_tracer,
                      critical_path_tasks, overlay_diff, render_overlay,
                      render_report, task_slack)
from .chrome_trace import (chrome_trace, sim_to_events, tracer_to_events,
                           write_chrome_trace)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "tracer_to_events",
    "sim_to_events",
    "chrome_trace",
    "write_chrome_trace",
    "ScheduleReport",
    "CriticalPath",
    "analyze",
    "analyze_sim",
    "analyze_tracer",
    "analyze_chrome_trace",
    "critical_path_tasks",
    "task_slack",
    "overlay_diff",
    "render_report",
    "render_overlay",
]
