"""Observability for the tiled-QR runtimes (S17, S19, S21).

Seven pieces, shared by the executors, the discrete-event simulator,
and the benchmark harness:

* :mod:`repro.obs.tracer` — a thread-safe span tracer recording one
  :class:`Span` per retired kernel task (submit/start/finish
  wall-times, worker thread), a zero-cost :class:`NullTracer`, and
  the :class:`DistributedTracer` of the process backend: worker-side
  child spans merged onto the parent timeline by an NTP-style clock
  handshake into six-phase :class:`TaskPhases` lifecycle records;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with deterministic plain-text
  and JSON summaries, mergeable across workers
  (:meth:`MetricsRegistry.merge`);
* :mod:`repro.obs.stream` — a bounded, multiprocessing-bridgeable
  :class:`EventBus` both executors publish typed :class:`Event`
  records into *while the run progresses* (task/group/level/frontier
  events), with :class:`LiveState` as the standard reduction;
* :mod:`repro.obs.sampler` — a background :class:`Sampler` thread
  recording time-series gauges (queue depth, busy workers, cumulative
  GFLOP/s, RSS) into a registry at a fixed cadence;
* :mod:`repro.obs.export` — Prometheus text exposition and JSONL
  event logs (plus their validating parsers);
* :mod:`repro.obs.progress` — the live ``--progress`` bars and the
  ``repro top`` dashboard (ETA by replaying progress against the
  plan's simulated schedule);
* :mod:`repro.obs.chrome_trace` — export of a measured capture and/or
  a simulated schedule to Chrome trace-event JSON, loadable in
  Perfetto / ``chrome://tracing`` for lane-by-lane comparison;
* :mod:`repro.obs.analyze` — schedule analytics: per-processor
  utilization, time-by-kernel pivots, critical-path attribution,
  per-task slack, queue waits, lower-bound efficiency, and
  sim-vs-measured overhead diffs, as a structured
  :class:`ScheduleReport` (rebuildabe from Chrome traces *and* JSONL
  event logs via :func:`analyze_trace_file`).

See ``docs/observability.md`` for a walkthrough.
"""

from .analyze import (CriticalPath, OverheadReport, ScheduleReport,
                      analyze, analyze_chrome_trace, analyze_events,
                      analyze_sim, analyze_trace_file, analyze_tracer,
                      critical_path_tasks, overhead_report, overlay_diff,
                      render_overhead_report, render_overlay,
                      render_report, task_slack)
from .chrome_trace import (chrome_trace, distributed_to_events,
                           sim_to_events, tracer_to_events,
                           write_chrome_trace)
from .export import (parse_prometheus_text, prometheus_text,
                     read_events_jsonl, write_events_jsonl,
                     write_prometheus)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .progress import ProgressRenderer, kernel_totals
from .sampler import Sampler, read_rss_bytes
from .stream import (EVENT_KINDS, NULL_BUS, BusRelay, Event, EventBus,
                     LiveState, NullBus, RemotePublisher)
from .tracer import (NULL_TRACER, PHASES, ClockSync, DistributedTracer,
                     NullTracer, Span, TaskPhases, Tracer,
                     estimate_clock_sync)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TaskPhases",
    "PHASES",
    "ClockSync",
    "estimate_clock_sync",
    "DistributedTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Event",
    "EventBus",
    "NullBus",
    "NULL_BUS",
    "EVENT_KINDS",
    "LiveState",
    "BusRelay",
    "RemotePublisher",
    "Sampler",
    "read_rss_bytes",
    "ProgressRenderer",
    "kernel_totals",
    "prometheus_text",
    "parse_prometheus_text",
    "write_prometheus",
    "write_events_jsonl",
    "read_events_jsonl",
    "tracer_to_events",
    "sim_to_events",
    "distributed_to_events",
    "chrome_trace",
    "write_chrome_trace",
    "ScheduleReport",
    "CriticalPath",
    "OverheadReport",
    "analyze",
    "analyze_sim",
    "analyze_tracer",
    "analyze_chrome_trace",
    "analyze_events",
    "analyze_trace_file",
    "critical_path_tasks",
    "task_slack",
    "overhead_report",
    "overlay_diff",
    "render_report",
    "render_overhead_report",
    "render_overlay",
]
