"""Streaming telemetry: the live structured event bus (S21).

The tracer and metrics registry (PR 1) observe a run *after* it
finishes — spans and histograms are read back once the executor
returns.  This module adds the third leg: a bounded, thread-safe (and
multiprocessing-bridgeable) **event bus** that both executors publish
typed :class:`Event` records into *while the factorization runs*, so
progress bars, the ``repro top`` dashboard, the background
:class:`~repro.obs.sampler.Sampler`, and (next) per-job telemetry
channels of a factorization service can all watch one stream.

Design points:

* **Bounded ring buffer.**  Publishing never blocks and never grows
  memory without bound: the bus keeps the last ``capacity`` events and
  overwrites the oldest beyond that (``bus.dropped`` counts the
  overwritten ones).  Readers poll with :meth:`EventBus.events_since`
  using the monotone sequence number and learn exactly how many events
  they missed.
* **Zero-cost off switch.**  The executors take ``bus=None`` (or
  :data:`NULL_BUS`, whose ``enabled`` is ``False``) and skip all
  publishing work — the hot path carries no locking, no allocation,
  not even a timestamp read (measured: see docs/performance.md,
  "telemetry overhead").
* **Typed events.**  One small :class:`Event` record per occurrence:
  task start/done, level barrier, batch-group dispatch, ready-frontier
  size, run start/done.  Events serialize to compact dicts (defaults
  elided) for the JSONL sink in :mod:`repro.obs.export`.
* **Cross-process bridge.**  :class:`BusRelay` hands out picklable
  :class:`RemotePublisher` handles backed by a bounded
  ``multiprocessing.Queue`` and pumps their events into a local bus —
  the aggregation primitive the upcoming shared-memory process pool
  and job server need.  Remote events are re-stamped on arrival (the
  producing process's clock epoch is not comparable).

:class:`LiveState` is the standard consumer: a lock-protected
reduction of the stream into "what is happening right now" — done
counts per kernel, busy workers, ready-frontier depth, cumulative
flops — consumed by the sampler and the progress renderers.  It runs
in push mode (:meth:`LiveState.attach`, a synchronous subscriber) or,
cheaper for the executor, pull mode (:meth:`LiveState.connect`, the
readers drain the ring on their own cadence).
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from dataclasses import dataclass, fields

__all__ = [
    "Event",
    "EventBus",
    "NullBus",
    "NULL_BUS",
    "LiveState",
    "BusRelay",
    "RemotePublisher",
    "EVENT_KINDS",
]

#: the event vocabulary both executors publish
EVENT_KINDS = (
    "run_start",    #: total= task count, count= workers
    "run_done",     #: value= wall seconds
    "task_start",   #: tid, kernel, worker
    "task_done",    #: tid, kernel, worker, value= kernel seconds
    "level_start",  #: level barrier crossed (batched backend)
    "group_start",  #: kernel, level, count= batch size (batched backend)
    "group_done",   #: kernel, level, count, value= group seconds
    "frontier",     #: value= ready-queue depth after a retirement
)

# Fork safety: a bus or LiveState lock held mid-publish at fork time
# is copied *locked* into the child, deadlocking the child's first
# publish/view forever.  Every live instance re-creates its locks in
# forked children (ring contents survive as the fork's snapshot).
_LIVE_LOCKED: "weakref.WeakSet" = weakref.WeakSet()


def _reinit_locks_after_fork() -> None:  # pragma: no cover - exercised
    for obj in list(_LIVE_LOCKED):       # in a forked child (tests fork)
        obj._lock = threading.Lock()
        if hasattr(obj, "_pump_lock"):
            obj._pump_lock = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)


#: default ring capacity.  4096 records hold every event of the
#: standard bench case several times over while keeping the slot array
#: small enough to live in L2 next to the working tiles; full-fidelity
#: sinks for paper-size runs (a 60x20 grid retires ~50k tasks) should
#: pass an explicit larger capacity or drain with ``events_since``.
_DEFAULT_CAPACITY = 4096


@dataclass(slots=True)
class Event:
    """One telemetry occurrence.

    Unused coordinate fields keep their defaults (``-1`` / ``""`` /
    ``0``); :meth:`to_dict` elides them so JSONL lines stay compact.
    ``t`` is seconds since the publishing bus's epoch; ``seq`` is the
    bus-assigned monotone sequence number.
    """

    kind: str
    t: float = 0.0
    seq: int = -1
    tid: int = -1
    kernel: str = ""
    worker: int = -1
    level: int = -1
    count: int = 1
    total: int = 0
    value: float = 0.0
    #: problem family of the run (``"qr"``, ``"cholesky"``, ``"lu"``);
    #: stamped on ``run_start`` so trace analyzers can label reports
    problem: str = ""

    def to_dict(self) -> dict:
        """Compact dict: ``kind``/``t``/``seq`` always, the rest only
        when they differ from the field default."""
        out = {"kind": self.kind, "t": self.t, "seq": self.seq}
        for f in fields(self):
            if f.name in out:
                continue
            v = getattr(self, f.name)
            if v != f.default:
                out[f.name] = v
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "Event":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})


class EventBus:
    """Bounded, thread-safe ring buffer of :class:`Event` records.

    Publishers call :meth:`publish` (one short lock); readers poll
    :meth:`events_since` with their last-seen sequence number, or
    register a :meth:`subscribe` callback invoked synchronously after
    each publish (keep callbacks tiny — they run on the publisher's
    thread; exceptions are swallowed and counted in
    :attr:`subscriber_errors`, never propagated into the executor).
    """

    enabled: bool = True

    def __init__(self, capacity: int = _DEFAULT_CAPACITY,
                 epoch: float | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.epoch = time.perf_counter() if epoch is None else float(epoch)
        self.subscriber_errors = 0
        #: compact event records in Event field order (tuples, not
        #: Event objects: cheap to write on the publisher's hot path)
        self._buf: list[tuple | None] = [None] * self.capacity
        self._seq = 0
        self._lock = threading.Lock()
        self._subs: tuple = ()
        self._threads: dict[int, int] = {}
        _LIVE_LOCKED.add(self)

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the bus epoch (monotonic, lock-free)."""
        return time.perf_counter() - self.epoch

    def worker_index(self) -> int:
        """Dense 0-based index of the calling thread (first-touch order)."""
        ident = threading.get_ident()
        with self._lock:
            idx = self._threads.get(ident)
            if idx is None:
                idx = len(self._threads)
                self._threads[ident] = idx
            return idx

    def publish(self, kind: str, *, t: float | None = None, tid: int = -1,
                kernel: str = "", worker: int = -1, level: int = -1,
                count: int = 1, total: int = 0, value: float = 0.0,
                problem: str = "") -> int:
        """Append one event; never blocks, never raises for full buffers.

        Returns the event's sequence number.  The keyword parameters
        mirror the :class:`Event` fields exactly (deliberately no
        ``**kwargs``: the executor hot path publishes hundreds of
        events per run and explicit parameters keep each call free of
        throwaway dicts).  The ring stores compact records and
        :meth:`events_since` materializes :class:`Event` objects on
        read, so with no subscribers the publisher pays well under a
        microsecond per event; push-mode subscribers cost one
        :class:`Event` construction plus their callbacks.
        """
        if t is None:
            t = time.perf_counter() - self.epoch
        with self._lock:
            seq = self._seq
            self._buf[seq % self.capacity] = (
                kind, t, seq, tid, kernel, worker, level, count, total,
                value, problem)
            self._seq = seq + 1
            subs = self._subs
        if subs:
            ev = Event(kind, t, seq, tid, kernel, worker, level, count,
                       total, value, problem)
            for fn in subs:
                try:
                    fn(ev)
                except Exception:
                    self.subscriber_errors += 1
        return seq

    # ------------------------------------------------------------------
    @property
    def published(self) -> int:
        """Total events ever published."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events overwritten by the ring before any possible read."""
        return max(0, self._seq - self.capacity)

    def events_since(self, seq: int) -> tuple[list[Event], int]:
        """Events with sequence number ``>= seq`` still in the ring.

        Returns ``(events, next_seq)``; pass ``next_seq`` back on the
        next poll.  If the ring lapped the reader the gap is implicit:
        ``events[0].seq - seq`` events were missed.
        """
        with self._lock:
            hi = self._seq
            lo = max(int(seq), hi - self.capacity)
            recs = [self._buf[i % self.capacity] for i in range(lo, hi)]
        # materialize outside the lock — record order matches the
        # Event field order
        return [Event(*r) for r in recs], hi

    def snapshot(self) -> list[Event]:
        """Every event still in the ring, oldest first."""
        return self.events_since(0)[0]

    def subscribe(self, fn) -> None:
        """Register ``fn(event)`` to run synchronously on each publish."""
        with self._lock:
            if fn not in self._subs:
                self._subs = self._subs + (fn,)

    def unsubscribe(self, fn) -> None:
        # equality, not identity: a bound method like ``state.on_event``
        # is a fresh object on every attribute access
        with self._lock:
            self._subs = tuple(s for s in self._subs if s != fn)


class NullBus(EventBus):
    """Event bus disabled: ``enabled`` is ``False`` and publishing is a
    no-op.  The executors check ``enabled`` once up front and skip all
    telemetry work, so passing :data:`NULL_BUS` (or ``None``) keeps the
    hot path untouched."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1, epoch=0.0)

    def publish(self, kind, *, t=None, **fields):  # pragma: no cover - trivial
        return None


#: shared do-nothing bus; pass this (or ``None``) to disable streaming
NULL_BUS = NullBus()


# ----------------------------------------------------------------------
# the standard subscriber: reduce the stream to "now"
# ----------------------------------------------------------------------

class LiveState:
    """Running reduction of a bus stream into current-progress state.

    Attach to a bus with :meth:`attach`; every field is maintained
    under one lock and read via :meth:`view` (a consistent dict
    snapshot) by the sampler and the progress renderers.

    Parameters
    ----------
    total : int
        Expected task count (``run_start`` events update it too).
    nb : int or None
        Tile size; when given, ``task_done``/``group_done`` events
        accumulate nominal flops (Table 1 weights x ``nb^3/3``) so the
        sampler can report cumulative GFLOP/s.
    """

    def __init__(self, total: int = 0, nb: int | None = None) -> None:
        self.total = int(total)
        self.nb = nb
        self._flops_of: dict[str, float] = {}
        if nb is not None:
            from ..kernels.costs import Kernel, kernel_flops
            self._flops_of = {k.value: kernel_flops(k, nb) for k in Kernel}
        self._bus: EventBus | None = None
        self._cursor = 0
        self._pump_lock = threading.Lock()  # serializes ring drains
        self._lock = threading.Lock()
        _LIVE_LOCKED.add(self)
        self.started = 0
        self.done = 0
        self.flops = 0.0
        self.frontier = 0
        self.level = -1
        self.workers = 0
        self.kernel_done: dict[str, int] = {}
        self.worker_kernel: dict[int, str] = {}
        self.last_t = 0.0
        self.run_started = False
        self.run_finished = False

    # ------------------------------------------------------------------
    def attach(self, bus: EventBus) -> "LiveState":
        """Push mode: reduce every event synchronously on publish.

        Costs the *publisher* a callback per event — use
        :meth:`connect` instead when the publisher is an executor hot
        loop and the consumers (renderer, sampler) tick on their own
        cadence anyway.
        """
        bus.subscribe(self.on_event)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(self.on_event)

    def connect(self, bus: EventBus) -> "LiveState":
        """Pull mode: remember the bus; :meth:`pump` (called
        automatically by :meth:`view`) drains and reduces the events
        published since the last pump.  The publisher pays only the
        ring append; the reduction runs in warm-cache batches on the
        reader's thread.  Measured against push mode on the batched
        512x512 case this halves the telemetry overhead — see
        docs/performance.md ("telemetry overhead")."""
        self._bus = bus
        self._cursor = 0
        return self

    def pump(self) -> int:
        """Reduce events published since the last pump (pull mode).

        Returns the number of events consumed; 0 when no bus is
        connected.  If the ring lapped us the gap is skipped — counts
        derived from ``done`` events will undercount, which the
        ``run_done`` totals correct at the end of the run."""
        if self._bus is None:
            return 0
        # serialize concurrent readers (sampler + renderer both view()):
        # a racing drain would apply the same events twice
        with self._pump_lock:
            events, self._cursor = self._bus.events_since(self._cursor)
            for ev in events:
                self.on_event(ev)
        return len(events)

    def on_event(self, ev: Event) -> None:
        with self._lock:
            self.last_t = ev.t
            kind = ev.kind
            if kind == "task_done" or kind == "group_done":
                n = ev.count
                self.done += n
                if ev.kernel:
                    self.kernel_done[ev.kernel] = (
                        self.kernel_done.get(ev.kernel, 0) + n)
                    self.flops += self._flops_of.get(ev.kernel, 0.0) * n
                if ev.worker >= 0:
                    self.worker_kernel[ev.worker] = ""
            elif kind == "task_start" or kind == "group_start":
                self.started += ev.count
                if ev.worker >= 0:
                    self.worker_kernel[ev.worker] = ev.kernel
            elif kind == "frontier":
                self.frontier = int(ev.value)
            elif kind == "level_start":
                self.level = ev.level
            elif kind == "run_start":
                self.run_started = True
                if ev.total:
                    self.total = ev.total
                if ev.count:
                    self.workers = ev.count
            elif kind == "run_done":
                self.run_finished = True

    # ------------------------------------------------------------------
    @property
    def busy_workers(self) -> int:
        with self._lock:
            return sum(1 for k in self.worker_kernel.values() if k)

    def view(self) -> dict:
        """Consistent snapshot of every field.

        In pull mode (:meth:`connect`) the pending events are pumped
        first, so a view is always current as of the call."""
        self.pump()
        with self._lock:
            return {
                "total": self.total,
                "started": self.started,
                "done": self.done,
                "flops": self.flops,
                "frontier": self.frontier,
                "level": self.level,
                "workers": self.workers,
                "busy_workers": sum(
                    1 for k in self.worker_kernel.values() if k),
                "kernel_done": dict(self.kernel_done),
                "worker_kernel": dict(self.worker_kernel),
                "last_t": self.last_t,
                "run_started": self.run_started,
                "run_finished": self.run_finished,
            }


# ----------------------------------------------------------------------
# multiprocessing bridge
# ----------------------------------------------------------------------

class RemotePublisher:
    """Picklable publish-only handle produced by :class:`BusRelay`.

    ``publish`` mirrors :meth:`EventBus.publish` but forwards the event
    over a bounded ``multiprocessing.Queue`` without ever blocking: a
    full queue drops the event and counts it in the shared
    :attr:`dropped` counter.  Timestamps are assigned by the receiving
    bus on arrival — producer clocks across processes share no epoch.
    """

    def __init__(self, queue, dropped) -> None:
        self._queue = queue
        self._dropped = dropped

    def publish(self, kind: str, **fields) -> None:
        try:
            self._queue.put_nowait((kind, fields))
        except Exception:
            with self._dropped.get_lock():
                self._dropped.value += 1

    @property
    def dropped(self) -> int:
        return int(self._dropped.value)


class BusRelay:
    """Pump events published in other processes into a local bus.

    ::

        bus = EventBus()
        relay = BusRelay(bus)
        with relay:                      # starts the drain thread
            pub = relay.publisher()      # picklable, ship to workers
            Process(target=work, args=(pub,)).start()
            ...
        # relay stopped; every queued event is in ``bus``

    The queue is bounded (``capacity``), so a stalled parent never
    blocks its workers: overflow events are dropped at the producer and
    counted (:attr:`dropped`).

    ``ctx`` selects the :mod:`multiprocessing` context the queue is
    created from (a persistent worker pool passes its own so fork- and
    spawn-started workers share one primitive family); :attr:`bus` may
    be re-assigned between runs — a long-lived relay whose publishers
    were shipped to workers at process start can fan into a different
    bus per run.

    Two hooks serve the process pool's distributed tracing:

    * :attr:`span_sink` — a callable receiving the raw field dict of
      every ``"task_spans"`` record (worker-side span stamps, single
      or batched with list-valued fields); those records are consumed
      by the sink and never forwarded to the bus (they are not
      :class:`Event`-shaped).
    * :meth:`pumped` — per-kind counts of everything the pump has
      delivered, letting the parent *drain* the relay at a run
      boundary: wait until the count of ``task_done`` (and
      ``task_spans``) records caught up with the completions it saw on
      its own queue, so ``run_done`` is only published after every
      worker event of the run landed in the bus.
    """

    _SENTINEL = ("__stop__", None)

    def __init__(self, bus: EventBus, capacity: int = 8192,
                 ctx=None) -> None:
        import multiprocessing as mp

        if ctx is None:
            ctx = mp
        self.bus = bus
        #: optional consumer of ``"task_spans"`` records (field dicts)
        self.span_sink = None
        self._queue = ctx.Queue(capacity)
        self._dropped = ctx.Value("l", 0)
        self._thread: threading.Thread | None = None
        # written only by the pump thread, read by the parent; dict
        # item assignment is atomic under the GIL
        self._pumped: dict[str, int] = {}

    def publisher(self) -> RemotePublisher:
        return RemotePublisher(self._queue, self._dropped)

    @property
    def dropped(self) -> int:
        return int(self._dropped.value)

    def pumped(self, kind: str) -> int:
        """Events of ``kind`` delivered by the pump so far."""
        return self._pumped.get(kind, 0)

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "BusRelay":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._pump, name="repro-bus-relay", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._queue.put(self._SENTINEL)
        self._thread.join()
        self._thread = None

    def _pump(self) -> None:
        known = {f.name for f in fields(Event)} - {"kind", "t", "seq"}
        while True:
            kind, fv = self._queue.get()
            if kind == self._SENTINEL[0] and fv is None:
                return
            if kind == "task_spans":
                sink = self.span_sink
                if sink is not None:
                    try:
                        sink(fv)
                    except Exception:
                        pass  # a broken sink must not kill the pump
                # batched records carry one list of tids per batch;
                # count tasks, not records, so the drain barrier can
                # compare against retired-task counts
                tid = fv.get("tid") if isinstance(fv, dict) else None
                n = len(tid) if isinstance(tid, (list, tuple)) else 1
                self._pumped[kind] = self._pumped.get(kind, 0) + n
                continue
            self.bus.publish(
                kind, **{k: v for k, v in fv.items() if k in known})
            self._pumped[kind] = self._pumped.get(kind, 0) + 1

    def __enter__(self) -> "BusRelay":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
