"""Chrome trace-event export: measured and simulated lanes (S17).

Serializes a real :class:`~repro.obs.tracer.Tracer` capture and/or a
:class:`~repro.sim.simulate.SimResult` to the Chrome trace-event JSON
format (the ``{"traceEvents": [...]}`` object understood by Perfetto
and ``chrome://tracing``).  Each task becomes one complete event
(``"ph": "X"``) with microsecond ``ts``/``dur``; workers map to
``tid`` lanes and each source (measured vs simulated) gets its own
``pid`` process group, so a measured execution and its simulated
schedule can be loaded together and compared lane by lane — the
repo's side-by-side validation of the simulator against reality.

A :class:`~repro.obs.tracer.DistributedTracer` capture (process
backend, S23) exports through :func:`distributed_to_events` instead:
one ``dispatch`` lane for the parent scheduler plus one lane per
worker *process*, each kernel slice bracketed by its ``deserialize``
and ``publish`` slivers (category ``overhead``), and a flow arrow
(``"ph": "s"`` → ``"ph": "f"``) from the parent's dispatch span to
the worker's kernel span so Perfetto draws the causal hand-off.

Format reference: the "Trace Event Format" document shipped with the
Catapult project; only the widely supported subset is emitted
(``name``, ``cat``, ``ph``, ``ts``, ``dur``, ``pid``, ``tid``,
``args``, plus ``M`` metadata records naming the lanes and ``s``/``f``
flow records linking dispatch to execution).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.simulate import SimResult

__all__ = ["tracer_to_events", "sim_to_events", "distributed_to_events",
           "chrome_trace", "to_chrome_json", "write_chrome_trace",
           "MIN_EVENT_DUR_US"]

#: trace-event categories, useful for filtering in the viewer UI
_PANEL = {"GEQRT", "TSQRT", "TTQRT"}

#: smallest duration (us) emitted for a complete event.  Perfetto and
#: chrome://tracing silently drop ``"ph": "X"`` events with ``dur`` 0,
#: so zero-duration tasks (e.g. rescaled weights of a kernel that never
#: ran) are clamped to this floor and tagged ``args.zero_duration``.
MIN_EVENT_DUR_US = 1e-3


def _clamped_dur(dur_us: float, args: dict) -> float:
    """Clamp ``dur_us`` to the Perfetto-visible floor, tagging ``args``."""
    if dur_us <= 0.0:
        args["zero_duration"] = True
        return MIN_EVENT_DUR_US
    return dur_us


def _placeholder(pid: int) -> dict:
    """A visible stand-in event for a source with no tasks.

    A process group whose only records are ``M`` metadata renders as
    nothing at all in Perfetto; this keeps an empty capture loadable
    and visibly empty instead of silently absent.
    """
    return {"name": "(empty)", "cat": "meta", "ph": "X", "ts": 0.0,
            "dur": MIN_EVENT_DUR_US, "pid": pid, "tid": 0,
            "args": {"placeholder": True}}


def _meta(pid: int, process_name: str, n_lanes: int,
          lane_prefix: str) -> list[dict]:
    """``M`` records naming the process and its worker lanes."""
    events = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
               "args": {"name": process_name}}]
    for w in range(n_lanes):
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": w, "args": {"name": f"{lane_prefix} {w}"}})
    return events


def tracer_to_events(tracer: Tracer, pid: int = 1,
                     process_name: str = "measured") -> list[dict]:
    """Complete-events for every span of a real capture (ts/dur in us)."""
    events = _meta(pid, process_name, tracer.worker_count, "worker")
    for s in tracer.spans:
        args = {"kernel": s.kernel, "tid": s.tid, "row": s.row,
                "piv": s.piv, "col": s.col, "j": s.j,
                "queue_delay_us": s.queue_delay * 1e6}
        events.append({
            "name": s.name,
            "cat": "panel" if s.kernel in _PANEL else "update",
            "ph": "X",
            "ts": s.start * 1e6,
            "dur": _clamped_dur(s.duration * 1e6, args),
            "pid": pid,
            "tid": s.worker,
            "args": args,
        })
    if not tracer.spans:
        events.append(_placeholder(pid))
    return events


def distributed_to_events(tracer, pid: int = 1,
                          process_name: str = "measured") -> list[dict]:
    """Merged multi-process lanes for a distributed capture.

    ``tracer`` is a :class:`~repro.obs.tracer.DistributedTracer` whose
    :meth:`finalize` already merged parent and worker halves into
    :class:`~repro.obs.tracer.TaskPhases` records.  Lane 0 is the
    parent scheduler (one ``dispatch`` slice per task covering
    ``dispatch → recv``); lane ``1 + w`` is worker process ``w``, with
    the kernel slice bracketed by ``deserialize`` and ``publish``
    slivers (category ``overhead`` — analyzers skip them so kernels
    count once).  A flow arrow per task (``id = tid``) links the
    dispatch slice to the kernel slice, so Perfetto renders the
    causal hand-off across the process boundary.
    """
    phases = list(tracer.phases)
    lanes = sorted({p.worker for p in phases})
    lane_of = {w: 1 + i for i, w in enumerate(lanes)}
    events = [{"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
               "args": {"name": process_name}},
              {"name": "thread_name", "ph": "M", "pid": pid, "tid": 0,
               "args": {"name": "dispatch"}}]
    for w in lanes:
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": lane_of[w],
                       "args": {"name": f"worker {w}"}})
    for p in phases:
        lane = lane_of[p.worker]
        base = {"kernel": p.kernel, "tid": p.tid, "worker": p.worker,
                "aborted": p.aborted}
        args = dict(base)
        events.append({
            "name": p.name, "cat": "dispatch", "ph": "X",
            "ts": p.dispatch * 1e6,
            "dur": _clamped_dur((p.recv - p.dispatch) * 1e6, args),
            "pid": pid, "tid": 0, "args": args,
        })
        if p.deserialized > 0.0:
            events.append({
                "name": "deserialize", "cat": "overhead", "ph": "X",
                "ts": p.recv * 1e6, "dur": p.deserialized * 1e6,
                "pid": pid, "tid": lane, "args": dict(base),
            })
        args = dict(base)
        args["latency_us"] = p.latency * 1e6
        args["measured"] = p.measured
        events.append({
            "name": p.name,
            "cat": "panel" if p.kernel in _PANEL else "update",
            "ph": "X", "ts": p.start * 1e6,
            "dur": _clamped_dur(p.computing * 1e6, args),
            "pid": pid, "tid": lane, "args": args,
        })
        if p.published > 0.0:
            events.append({
                "name": "publish", "cat": "overhead", "ph": "X",
                "ts": p.finish * 1e6, "dur": p.published * 1e6,
                "pid": pid, "tid": lane, "args": dict(base),
            })
        # the causal hand-off: parent dispatch -> worker execution
        events.append({"name": "dispatch", "cat": "flow", "ph": "s",
                       "id": p.tid, "pid": pid, "tid": 0,
                       "ts": p.dispatch * 1e6})
        events.append({"name": "dispatch", "cat": "flow", "ph": "f",
                       "bp": "e", "id": p.tid, "pid": pid, "tid": lane,
                       "ts": p.start * 1e6})
    if not phases:
        events.append(_placeholder(pid))
    return events


def sim_to_events(result: "SimResult", pid: int = 2,
                  process_name: str = "simulated",
                  time_scale: float = 1.0) -> list[dict]:
    """Complete-events for a simulated schedule.

    Simulation times are in abstract model units (``nb^3/3`` flops by
    default, or seconds after :meth:`TaskGraph.rescale` with measured
    kernel durations).  ``time_scale`` converts one model unit to
    microseconds: leave it at 1.0 for unit-weight graphs, pass ``1e6``
    when the graph was rescaled to seconds so the lanes line up with a
    measured capture.
    """
    nw = (int(result.worker.max()) + 1
          if result.worker is not None and len(result.worker) else 1)
    events = _meta(pid, process_name, nw, "sim worker")
    for t in result.graph.tasks:
        lane = int(result.worker[t.tid]) if result.worker is not None else 0
        start = float(result.start[t.tid])
        finish = float(result.finish[t.tid])
        args = {"kernel": t.kernel.value, "tid": t.tid, "row": t.row,
                "piv": t.piv, "col": t.col, "j": t.j,
                "weight": t.weight}
        events.append({
            "name": str(t),
            "cat": "panel" if t.kernel.value in _PANEL else "update",
            "ph": "X",
            "ts": start * time_scale,
            "dur": _clamped_dur((finish - start) * time_scale, args),
            "pid": pid,
            "tid": lane,
            "args": args,
        })
    if not result.graph.tasks:
        events.append(_placeholder(pid))
    return events


def chrome_trace(tracer: Tracer | None = None,
                 sim: "SimResult | None" = None,
                 sim_time_scale: float = 1.0,
                 problem: str = "") -> dict:
    """Build the top-level trace object from either or both sources.

    With both a measured capture and a simulated schedule the result
    holds two process groups (``pid`` 1 = measured, ``pid`` 2 =
    simulated) that Perfetto renders as separate lane stacks on a
    shared time axis.  A tracer carrying merged
    :class:`~repro.obs.tracer.TaskPhases` records (a finalized
    :class:`~repro.obs.tracer.DistributedTracer`) exports through
    :func:`distributed_to_events` — per-worker-process lanes with
    dispatch flow arrows — instead of the flat per-thread lanes.
    ``problem`` (``"qr"``, ``"cholesky"``, ...) stamps the
    factorization family into ``otherData`` so analyzers can label
    their reports; when omitted it is taken from the sim result's
    graph if one is given.
    """
    if tracer is None and sim is None:
        raise ValueError("chrome_trace needs a tracer, a sim result, or both")
    if not problem and sim is not None:
        problem = getattr(sim.graph, "problem", "") or ""
    events: list[dict] = []
    if tracer is not None:
        if getattr(tracer, "phases", None):
            events.extend(distributed_to_events(tracer))
        else:
            events.extend(tracer_to_events(tracer))
    if sim is not None:
        events.extend(sim_to_events(sim, time_scale=sim_time_scale))
    other = {"producer": "repro.obs.chrome_trace"}
    if problem:
        other["problem"] = problem
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def to_chrome_json(tracer: Tracer | None = None,
                   sim: "SimResult | None" = None,
                   sim_time_scale: float = 1.0,
                   problem: str = "") -> str:
    """The trace object as compact JSON text."""
    return json.dumps(chrome_trace(tracer, sim, sim_time_scale, problem))


def write_chrome_trace(path: str, tracer: Tracer | None = None,
                       sim: "SimResult | None" = None,
                       sim_time_scale: float = 1.0,
                       problem: str = "") -> str:
    """Write the trace JSON to ``path``; returns the path."""
    with open(path, "w") as fh:
        fh.write(to_chrome_json(tracer, sim, sim_time_scale, problem))
    return path
