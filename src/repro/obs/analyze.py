"""Schedule analytics: where the time of a schedule goes (S19).

The paper's whole argument is an *attribution* argument — critical
paths (Table 5), processor efficiency at small ``q`` (Tables 6-9),
kernel-cost tradeoffs (Table 1).  This module turns a schedule into a
structured :class:`ScheduleReport` answering those questions for any
of the three schedule sources the repo produces:

* a simulated :class:`~repro.sim.simulate.SimResult` (bounded or
  unbounded) — :func:`analyze_sim`;
* a measured capture — a :class:`~repro.obs.tracer.Tracer` or an
  :class:`~repro.runtime.executor.ExecutionContext` that carries one —
  :func:`analyze_tracer`;
* a Chrome trace-event JSON document (or file) previously exported by
  :mod:`repro.obs.chrome_trace` — :func:`analyze_chrome_trace`.

A report holds the per-processor busy/idle/utilization breakdown, the
time-by-kernel-family pivot (GEQRT/TSQRT/TTQRT/UNMQR/TSMQR/TTMQR),
the *actual* chain of tasks realizing the makespan
(:func:`critical_path_tasks`, a backward walk over the CSR
:class:`~repro.dag.index.GraphIndex`), per-task slack/laxity from the
existing bottom-levels pass (:func:`task_slack`), and efficiency
against the closed-form lower bounds of Theorem 1.  A measured report
and a simulated report of the same DAG diff into a per-kernel
overhead attribution via :func:`overlay_diff`.

Rendering: ``report.to_dict()`` is JSON-ready;
:func:`render_report` gives ``text`` / ``markdown`` / ``json``.

Identities (tested on the paper's Table 3-5 grids):

* ``sum(lane.busy) + sum(lane.idle) == makespan * processors``;
* the critical path's total weight equals the makespan — for the
  unbounded ASAP schedule that is the classical critical path, for a
  bounded list schedule the chain alternates dependency edges and
  worker-reuse edges but still tiles ``[0, makespan]`` exactly;
* ``slack >= 0`` everywhere, with equality exactly on tasks lying on
  some unbounded critical path.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..kernels.costs import Kernel
from ..sim.simulate import SimResult, bottom_levels, simulate_unbounded
from .tracer import PHASES, TaskPhases, Tracer

__all__ = [
    "LaneStats",
    "KernelStats",
    "CriticalPathStep",
    "CriticalPath",
    "SlackStats",
    "ScheduleReport",
    "OverheadReport",
    "analyze",
    "analyze_sim",
    "analyze_tracer",
    "analyze_chrome_trace",
    "analyze_events",
    "analyze_trace_file",
    "alap_lower_bound",
    "critical_path_tasks",
    "task_slack",
    "overhead_report",
    "overlay_diff",
    "render_report",
    "render_overhead_report",
    "render_overlay",
]

#: canonical kernel-family order of every pivot table
KERNEL_ORDER = tuple(k.value for k in Kernel)


# ----------------------------------------------------------------------
# report containers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LaneStats:
    """Busy/idle accounting of one processor lane."""

    lane: int
    tasks: int
    busy: float
    idle: float
    utilization: float

    def to_dict(self) -> dict:
        return {"lane": self.lane, "tasks": self.tasks, "busy": self.busy,
                "idle": self.idle, "utilization": self.utilization}


@dataclass(frozen=True)
class KernelStats:
    """Time attributed to one kernel family."""

    kernel: str
    count: int
    total: float
    mean: float
    share: float  #: fraction of the schedule's total busy time

    def to_dict(self) -> dict:
        return {"kernel": self.kernel, "count": self.count,
                "total": self.total, "mean": self.mean, "share": self.share}


@dataclass(frozen=True)
class CriticalPathStep:
    """One task on the makespan-realizing chain.

    ``via`` records what pinned the task's start time: ``"source"``
    (starts at t=0), ``"dep"`` (a predecessor finished then), or
    ``"worker"`` (the task was ready earlier but waited for a
    processor that another task's completion freed — only possible in
    bounded schedules).
    """

    tid: int
    name: str
    kernel: str
    weight: float
    start: float
    finish: float
    via: str

    def to_dict(self) -> dict:
        return {"tid": self.tid, "name": self.name, "kernel": self.kernel,
                "weight": self.weight, "start": self.start,
                "finish": self.finish, "via": self.via}


@dataclass(frozen=True)
class CriticalPath:
    """The chain of tasks realizing a schedule's makespan.

    ``length`` (the sum of step weights) equals the makespan: the
    steps tile ``[0, makespan]`` with no gaps.  ``dep_edges`` counts
    true dependency links, ``worker_edges`` resource waits.
    """

    steps: tuple[CriticalPathStep, ...]
    length: float
    makespan: float
    dep_edges: int
    worker_edges: int

    def __len__(self) -> int:
        return len(self.steps)

    def kernel_counts(self) -> dict[str, int]:
        """How many chain steps each kernel family contributes."""
        out: dict[str, int] = {}
        for s in self.steps:
            out[s.kernel] = out.get(s.kernel, 0) + 1
        return {k: out[k] for k in KERNEL_ORDER if k in out}

    def to_dict(self) -> dict:
        return {"length": self.length, "makespan": self.makespan,
                "tasks": len(self.steps), "dep_edges": self.dep_edges,
                "worker_edges": self.worker_edges,
                "kernel_counts": self.kernel_counts(),
                "steps": [s.to_dict() for s in self.steps]}


@dataclass(frozen=True)
class SlackStats:
    """Distribution summary of per-task slack (laxity)."""

    min: float
    max: float
    mean: float
    critical_tasks: int  #: tasks with zero slack (on some critical path)

    def to_dict(self) -> dict:
        return {"min": self.min, "max": self.max, "mean": self.mean,
                "critical_tasks": self.critical_tasks}


@dataclass
class ScheduleReport:
    """Structured analytics of one schedule.

    ``source`` is ``"sim"``, ``"measured"``, or ``"trace"``.  Fields
    that need the task DAG (critical path, slack, bounds) are ``None``
    for sources that do not carry one.
    """

    source: str
    label: str
    makespan: float
    processors: Optional[int]
    tasks: int
    total_busy: float
    utilization: Optional[float]
    #: problem/kernel-family label ("qr", "qr[TT]", "cholesky"); empty
    #: when the source does not carry one (e.g. foreign Chrome traces)
    problem: str = ""
    lanes: list[LaneStats] = field(default_factory=list)
    kernels: list[KernelStats] = field(default_factory=list)
    critical_path: Optional[CriticalPath] = None
    slack: Optional[SlackStats] = None
    bounds: Optional[dict] = None
    #: ready-to-start queue-wait summary of a measured capture
    #: (min/mean/p95/max/total seconds) — ``None`` for sim sources
    queue_wait: Optional[dict] = None

    # ------------------------------------------------------------------
    def kernel_shares(self) -> dict[str, float]:
        """``{kernel: fraction of total busy time}`` in canonical order."""
        return {k.kernel: k.share for k in self.kernels}

    def total_idle(self) -> float:
        return sum(l.idle for l in self.lanes)

    def to_dict(self) -> dict:
        """JSON-ready snapshot of the full report."""
        return {
            "source": self.source,
            "label": self.label,
            "problem": self.problem,
            "makespan": self.makespan,
            "processors": self.processors,
            "tasks": self.tasks,
            "total_busy": self.total_busy,
            "total_idle": self.total_idle(),
            "utilization": self.utilization,
            "lanes": [l.to_dict() for l in self.lanes],
            "kernels": [k.to_dict() for k in self.kernels],
            "critical_path": None if self.critical_path is None
                             else self.critical_path.to_dict(),
            "slack": None if self.slack is None else self.slack.to_dict(),
            "bounds": self.bounds,
            "queue_wait": self.queue_wait,
        }

    def summary(self) -> dict:
        """Compact dict for embedding in other reports (pipeline, bench)."""
        out = {
            "source": self.source,
            "makespan": self.makespan,
            "processors": self.processors,
            "tasks": self.tasks,
            "utilization": self.utilization,
            "kernel_shares": self.kernel_shares(),
        }
        if self.critical_path is not None:
            out["critical_path_length"] = self.critical_path.length
            out["critical_path_tasks"] = len(self.critical_path)
        if self.slack is not None:
            out["critical_tasks"] = self.slack.critical_tasks
            out["max_slack"] = self.slack.max
        if self.bounds is not None:
            out["efficiency"] = self.bounds.get("efficiency")
        return out


# ----------------------------------------------------------------------
# DAG-side analytics: slack and the makespan-realizing chain
# ----------------------------------------------------------------------

def task_slack(graph, unbounded: Optional[SimResult] = None) -> np.ndarray:
    """Per-task slack (laxity) against the unbounded critical path.

    ``slack[t] = cp - est[t] - bl[t]`` where ``est`` is the ASAP start
    (:func:`~repro.sim.simulate.simulate_unbounded`), ``bl`` the
    bottom level (longest weighted path from ``t`` to a sink,
    *including* ``t``), and ``cp`` the critical path length.  Zero
    exactly on tasks lying on some critical path; a positive value is
    how long the task may be delayed without stretching the DAG's
    makespan.

    Parameters
    ----------
    graph : TaskGraph or Plan
    unbounded : SimResult, optional
        A precomputed unbounded simulation of ``graph`` (saves the
        forward pass when the caller already has one).
    """
    if unbounded is None:
        unbounded = simulate_unbounded(graph)
    bl = bottom_levels(graph)
    cp = unbounded.makespan
    slack = cp - unbounded.start - bl
    # exact for integral Table-1 weights; forgive float round-off from
    # measured-seconds weights
    tol = 1e-9 * max(cp, 1.0)
    slack[(slack < 0.0) & (slack > -tol)] = 0.0
    return slack


def alap_lower_bound(graph, processors: int,
                     unbounded: Optional[SimResult] = None) -> float:
    """ALAP-schedule makespan lower bound (Quach & Langou, 1510.05107).

    Sharper than ``max(critical path, work / P)``: in any
    ``P``-processor schedule of makespan ``M``, a task ``t`` must
    *finish* by ``M - rest[t]`` where ``rest[t] = bl[t] - w[t]`` is
    the weight that must still run after it (its ALAP finish), so the
    work of every task with ``rest >= x`` has to fit into the capacity
    ``P * (M - x)``::

        M  >=  max over x  of  x + W_rest(x) / P

    with candidates ``x`` the distinct ``rest`` values.  The mirrored
    ASAP form uses earliest start times: tasks with ``est >= tau`` run
    entirely inside ``[tau, M]``, giving ``M >= tau + W_est(tau) / P``.
    The returned bound is the max of both families; at ``x = 0`` it
    degenerates to ``work / P``, so it never loosens the classical
    area bound — and near the DAG's sequential head/tail (small
    Cholesky/QR panels, few processors) it is strictly tighter.

    Parameters
    ----------
    graph : TaskGraph or Plan
    processors : int
        Processor count ``P >= 1``.
    unbounded : SimResult, optional
        A precomputed unbounded simulation of ``graph``.
    """
    P = int(processors)
    if P < 1:
        raise ValueError(f"need processors >= 1, got {processors}")
    idx = graph.index() if not hasattr(graph, "graph") else graph.index
    w = idx.weights
    if idx.n == 0:
        return 0.0
    if unbounded is None:
        unbounded = simulate_unbounded(graph)
    bl = bottom_levels(graph)
    best = 0.0
    for key in (bl - w, unbounded.start):
        order = np.argsort(key)
        suffix = np.cumsum(w[order][::-1])[::-1]
        vals = key[order] + suffix / P
        best = max(best, float(vals.max()))
    return best


def critical_path_tasks(result: SimResult) -> CriticalPath:
    """Extract the chain of tasks realizing ``result``'s makespan.

    Walks backward from the last-finishing task over the graph's CSR
    index.  At each step the current task started at ``s`` because
    either a predecessor finished at ``s`` (a *dependency* edge) or —
    bounded schedules only — some task's completion at ``s`` freed a
    processor (a *worker* edge; the same-worker task is preferred).
    Either way the chain is gapless, so its total weight equals the
    makespan.  Ties break to the smallest task id, making the chain
    deterministic.
    """
    g = result.graph
    idx = g.index()
    n = idx.n
    makespan = float(result.makespan)
    if n == 0:
        return CriticalPath(steps=(), length=0.0, makespan=makespan,
                            dep_edges=0, worker_edges=0)
    start, finish = result.start, result.finish
    pred_ptr, pred_adj = idx.pred_ptr, idx.pred_adj
    by_finish = np.argsort(finish, kind="stable")
    fsorted = finish[by_finish]
    visited = np.zeros(n, dtype=bool)

    cur = int(np.flatnonzero(finish == finish.max()).min())
    steps: list[CriticalPathStep] = []
    dep_edges = worker_edges = 0
    for _ in range(n):  # bounded: each task appears at most once
        visited[cur] = True
        s = float(start[cur])
        nxt: Optional[int] = None
        if s <= 0.0:
            via = "source"
        else:
            preds = pred_adj[pred_ptr[cur]:pred_ptr[cur + 1]]
            dep = preds[(finish[preds] == s) & ~visited[preds]]
            if dep.size:
                via, nxt = "dep", int(dep.min())
            else:
                lo = np.searchsorted(fsorted, s, side="left")
                hi = np.searchsorted(fsorted, s, side="right")
                cand = by_finish[lo:hi]
                cand = cand[~visited[cand]]
                if cand.size == 0:
                    # no event at s: a gap (never happens for the
                    # repo's list schedules; be safe for foreign data)
                    via = "source"
                else:
                    if result.worker is not None:
                        same = cand[result.worker[cand]
                                    == result.worker[cur]]
                        nxt = int(same.min()) if same.size else int(cand.min())
                    else:
                        nxt = int(cand.min())
                    via = "worker"
        t = g.tasks[cur]
        steps.append(CriticalPathStep(
            tid=cur, name=str(t), kernel=t.kernel.value,
            weight=float(idx.weights[cur]), start=s,
            finish=float(finish[cur]), via=via))
        if nxt is None:
            break
        if via == "dep":
            dep_edges += 1
        else:
            worker_edges += 1
        cur = nxt
    steps.reverse()
    length = float(sum(st.weight for st in steps))
    return CriticalPath(steps=tuple(steps), length=length, makespan=makespan,
                        dep_edges=dep_edges, worker_edges=worker_edges)


# ----------------------------------------------------------------------
# analyzers, one per schedule source
# ----------------------------------------------------------------------

def _kernel_pivot(names: list[str], durations: list[float]) -> list[KernelStats]:
    """Aggregate ``(kernel name, duration)`` pairs in canonical order."""
    total_by: dict[str, float] = {}
    count_by: dict[str, int] = {}
    for name, d in zip(names, durations):
        total_by[name] = total_by.get(name, 0.0) + d
        count_by[name] = count_by.get(name, 0) + 1
    grand = sum(total_by.values())
    order = [k for k in KERNEL_ORDER if k in total_by] + sorted(
        k for k in total_by if k not in KERNEL_ORDER)
    return [KernelStats(kernel=k, count=count_by[k], total=total_by[k],
                        mean=total_by[k] / count_by[k],
                        share=total_by[k] / grand if grand else 0.0)
            for k in order]


def _lane_stats(workers: np.ndarray, durations: np.ndarray,
                makespan: float, n_lanes: int) -> list[LaneStats]:
    busy = np.bincount(workers, weights=durations, minlength=n_lanes)
    counts = np.bincount(workers, minlength=n_lanes)
    return [LaneStats(lane=k, tasks=int(counts[k]), busy=float(busy[k]),
                      idle=float(makespan - busy[k]),
                      utilization=float(busy[k] / makespan) if makespan
                                  else 1.0)
            for k in range(n_lanes)]


def analyze_sim(result: SimResult, label: str = "",
                bounds: bool = True) -> ScheduleReport:
    """Full analytics of a simulated schedule.

    Includes the critical-path chain, slack statistics, and (with
    ``bounds=True``) efficiency against the schedule's lower bounds:
    the DAG critical path, the work bound ``total_weight / P``, the
    ALAP area bound (:func:`alap_lower_bound` — bounded schedules
    only, and never looser than ``work / P``), and — for QR DAGs with
    ``q >= 2`` — the paper's Theorem 1(3) bound ``22q - 30``
    (meaningful for Table-1 weights).  Works for any problem family;
    the graph's ``problem`` attribute labels the report.
    """
    g = result.graph
    idx = g.index()
    w = idx.weights
    makespan = float(result.makespan)
    total_busy = float(w.sum())
    P = result.processors

    lanes: list[LaneStats] = []
    if result.worker is not None and idx.n:
        n_lanes = P if P is not None else int(result.worker.max()) + 1
        lanes = _lane_stats(result.worker, w, makespan, n_lanes)
    utilization = (total_busy / (P * makespan)
                   if P and makespan > 0 else None)

    kernels = _kernel_pivot([t.kernel.value for t in g.tasks], w.tolist())

    unbounded = result if P is None else simulate_unbounded(g)
    slack_arr = task_slack(g, unbounded=unbounded)
    slack = SlackStats(
        min=float(slack_arr.min()) if idx.n else 0.0,
        max=float(slack_arr.max()) if idx.n else 0.0,
        mean=float(slack_arr.mean()) if idx.n else 0.0,
        critical_tasks=int((slack_arr == 0.0).sum()))

    cp = critical_path_tasks(result)

    problem = getattr(g, "problem", "qr")

    bounds_dict = None
    if bounds:
        cp_bound = float(unbounded.makespan)
        bounds_dict = {"critical_path": cp_bound}
        if P:
            work_bound = total_busy / P
            alap = alap_lower_bound(g, P, unbounded=unbounded)
            lower = max(cp_bound, work_bound, alap)
            bounds_dict.update({
                "work": work_bound,
                "alap": alap,
                "lower": lower,
                "efficiency": lower / makespan if makespan else 1.0,
                "speedup": total_busy / makespan if makespan else float(P),
            })
        else:
            bounds_dict["efficiency"] = (cp_bound / makespan
                                         if makespan else 1.0)
        if problem == "qr" and g.q >= 2:
            from ..analysis.formulas import optimal_cp_lower_bound

            bounds_dict["paper_cp_lower_bound"] = float(
                optimal_cp_lower_bound(g.q))

    name = label or (g.name or "simulated")
    return ScheduleReport(source="sim", label=name, makespan=makespan,
                          processors=P, tasks=idx.n, total_busy=total_busy,
                          utilization=utilization, problem=problem,
                          lanes=lanes, kernels=kernels, critical_path=cp,
                          slack=slack, bounds=bounds_dict)


def _wait_summary(waits: np.ndarray) -> Optional[dict]:
    """min/mean/p95/max/total summary of ready-to-start delays.

    ``None`` when there were no waits at all (empty, or an executor —
    sequential, batched — that never queues a ready task)."""
    if waits.size == 0 or float(waits.max()) <= 0.0:
        return None
    return {"min": float(waits.min()), "mean": float(waits.mean()),
            "p95": float(np.percentile(waits, 95.0)),
            "max": float(waits.max()), "total": float(waits.sum())}


def analyze_tracer(tracer: Tracer, label: str = "measured") -> ScheduleReport:
    """Analytics of a measured span capture (times in seconds).

    Per-worker busy time is the sum of kernel durations; idle is
    everything else inside the capture's makespan window.  Span
    submit→start delays summarize into :attr:`ScheduleReport.queue_wait`
    — the measured counterpart of slack (how long ready work actually
    sat in the queue).  The DAG is not reconstructed, so critical path
    / slack / bounds are ``None`` — diff against a simulated report
    via :func:`overlay_diff` for the model-vs-reality attribution.
    """
    spans = list(tracer.spans)
    makespan = float(tracer.makespan())
    n_lanes = tracer.worker_count if spans else 0
    durations = np.array([s.duration for s in spans], dtype=np.float64)
    workers = np.array([s.worker for s in spans], dtype=np.int64)
    total_busy = float(durations.sum()) if spans else 0.0
    lanes = (_lane_stats(workers, durations, makespan, n_lanes)
             if spans else [])
    utilization = (total_busy / (n_lanes * makespan)
                   if n_lanes and makespan > 0 else None)
    kernels = _kernel_pivot([s.kernel for s in spans], durations.tolist())
    waits = np.array([max(0.0, s.queue_delay) for s in spans],
                     dtype=np.float64)
    return ScheduleReport(source="measured", label=label, makespan=makespan,
                          processors=n_lanes or None, tasks=len(spans),
                          total_busy=total_busy, utilization=utilization,
                          lanes=lanes, kernels=kernels,
                          queue_wait=_wait_summary(waits))


# ----------------------------------------------------------------------
# per-task overhead attribution (S23)
# ----------------------------------------------------------------------

#: the phases that are coordination, not kernel work or scheduling
#: choice: descriptor pickling + queue transfer, worker-side unpack,
#: completion publish, and done-queue transit back.  Their per-task
#: mean is the "IPC tax" headline of an :class:`OverheadReport`.
IPC_PHASES = ("dispatched", "deserialized", "published", "retired")


@dataclass
class OverheadReport:
    """Where every microsecond of a traced run went, per phase.

    Built by :func:`overhead_report` from the :class:`TaskPhases`
    records of a :class:`~repro.obs.tracer.DistributedTracer` (process
    backend) or, degenerately, from the plain spans of any tracer —
    thread/batched runs land everything in ``queued`` + ``computing``,
    which keeps the table comparable across all three modes.

    ``phase_totals``/``phase_means`` are seconds (means normalized per
    retired task); ``per_kernel`` and ``per_worker`` pivot the same
    sums.  ``ipc_tax_s`` is the mean per-task cost of the four
    coordination phases (:data:`IPC_PHASES`); ``overhead_share`` the
    non-``computing`` fraction of summed task latency;
    ``critical_path_overhead_share`` the same fraction along the
    latest-predecessor dependency chain ending at the run's last
    retirement (``None`` without a graph).  ``clock`` carries each
    worker's offset estimate; ``max_residual_s`` bounds how much of
    any phase is clock-alignment noise.
    """

    label: str
    tasks: int
    records: int
    workers: int
    makespan: float
    phase_totals: dict = field(default_factory=dict)
    phase_means: dict = field(default_factory=dict)
    per_kernel: list[dict] = field(default_factory=list)
    per_worker: list[dict] = field(default_factory=list)
    ipc_tax_s: float = 0.0
    overhead_share: float = 0.0
    critical_path_overhead_share: Optional[float] = None
    aborted: int = 0
    unmeasured: int = 0
    clock: list[dict] = field(default_factory=list)
    max_residual_s: float = 0.0
    #: True when worker-side boundaries were actually measured for at
    #: least one task (False = degenerate two-phase view)
    distributed: bool = False

    def to_dict(self) -> dict:
        return {
            "label": self.label, "tasks": self.tasks,
            "records": self.records, "workers": self.workers,
            "makespan": self.makespan, "phase_totals": self.phase_totals,
            "phase_means": self.phase_means, "per_kernel": self.per_kernel,
            "per_worker": self.per_worker, "ipc_tax_s": self.ipc_tax_s,
            "overhead_share": self.overhead_share,
            "critical_path_overhead_share":
                self.critical_path_overhead_share,
            "aborted": self.aborted, "unmeasured": self.unmeasured,
            "clock": self.clock, "max_residual_s": self.max_residual_s,
            "distributed": self.distributed,
        }


def _degenerate_phases(tracer: Tracer) -> list[TaskPhases]:
    """Two-phase view of a plain span capture (thread/batched/seq).

    ``ready = submit`` and ``dispatch = recv = start``, ``publish =
    finish = retire``: queue wait lands in ``queued``, the kernel in
    ``computing``, the four coordination phases are zero — the exact
    degenerate case of the lifecycle model, so reports stay comparable
    with process-mode ones.
    """
    out = []
    for s in tracer.spans:
        sub = min(s.submit, s.start)
        out.append(TaskPhases(
            tid=s.tid, name=s.name, kernel=s.kernel, worker=s.worker,
            ready=sub, dispatch=s.start, recv=s.start, start=s.start,
            finish=s.finish, publish=s.finish, retire=s.finish,
            count=s.count, aborted=s.aborted, measured=False))
    return out


def overhead_report(tracer: Tracer, graph=None,
                    label: str = "") -> OverheadReport:
    """Attribute a traced run's time to the six lifecycle phases.

    ``tracer`` is any tracer: a
    :class:`~repro.obs.tracer.DistributedTracer` with merged
    :class:`TaskPhases` records gives the full six-phase attribution;
    a plain span capture degenerates to queued + computing.  Passing
    the run's ``graph`` (TaskGraph or Plan) adds the overhead share
    along the dependency chain that actually gated the finish.
    """
    phases = list(getattr(tracer, "phases", None) or [])
    distributed = any(p.measured for p in phases)
    if not phases:
        phases = _degenerate_phases(tracer)
    records = len(phases)
    ntasks = sum(p.count for p in phases)
    workers = sorted({p.worker for p in phases})
    makespan = (max(p.retire for p in phases)
                - min(p.ready for p in phases)) if phases else 0.0

    totals = {name: 0.0 for name in PHASES}
    lat_total = 0.0
    kern: dict[str, dict] = {}
    work: dict[int, dict] = {}
    for p in phases:
        kr = kern.setdefault(p.kernel, {"count": 0, "latency": 0.0,
                                        **{n: 0.0 for n in PHASES}})
        wr = work.setdefault(p.worker, {"tasks": 0, "latency": 0.0,
                                        **{n: 0.0 for n in PHASES}})
        kr["count"] += p.count
        wr["tasks"] += p.count
        lat = p.latency
        lat_total += lat
        kr["latency"] += lat
        wr["latency"] += lat
        for name in PHASES:
            v = p.phase(name)
            totals[name] += v
            kr[name] += v
            wr[name] += v
    means = {name: (totals[name] / ntasks if ntasks else 0.0)
             for name in PHASES}
    ipc_tax = sum(means[name] for name in IPC_PHASES)
    overhead_share = (1.0 - totals["computing"] / lat_total
                      if lat_total > 0 else 0.0)

    order = [k for k in KERNEL_ORDER if k in kern] + sorted(
        k for k in kern if k not in KERNEL_ORDER)
    per_kernel = [{"kernel": k, **kern[k]} for k in order]
    per_worker = [{"worker": w, **work[w]} for w in workers]

    cp_share = None
    if graph is not None and phases:
        g = getattr(graph, "graph", graph)
        idx = graph.index if hasattr(graph, "graph") else g.index()
        by_tid = {p.tid: p for p in phases}
        pp, pa = idx.pred_ptr, idx.pred_adj
        # follow the latest-retiring predecessor back from the last
        # retirement: the dependency chain that gated the finish
        cur = max(phases, key=lambda p: p.retire).tid
        chain_lat = chain_comp = 0.0
        seen = set()
        while cur not in seen:
            seen.add(cur)
            p = by_tid.get(cur)
            if p is not None:
                chain_lat += p.latency
                chain_comp += p.computing
            preds = [int(t) for t in pa[pp[cur]:pp[cur + 1]]
                     if int(t) in by_tid]
            if not preds:
                break
            cur = max(preds, key=lambda t: by_tid[t].retire)
        if chain_lat > 0:
            cp_share = 1.0 - chain_comp / chain_lat

    clocks = getattr(tracer, "clocks", {}) or {}
    return OverheadReport(
        label=label or "traced run", tasks=ntasks, records=records,
        workers=len(workers), makespan=makespan, phase_totals=totals,
        phase_means=means, per_kernel=per_kernel, per_worker=per_worker,
        ipc_tax_s=ipc_tax, overhead_share=overhead_share,
        critical_path_overhead_share=cp_share,
        aborted=sum(1 for p in phases if p.aborted),
        unmeasured=sum(1 for p in phases if not p.measured),
        clock=[clocks[w].to_dict() for w in sorted(clocks)],
        max_residual_s=float(getattr(tracer, "max_residual", 0.0)),
        distributed=distributed)


def _render_overhead(rep: OverheadReport, markdown: bool) -> str:
    h1 = "## " if markdown else "== "
    h1e = "" if markdown else " =="
    h2 = "### " if markdown else "-- "
    h2e = "" if markdown else " --"
    us = 1e6
    lines = [f"{h1}overhead report: {rep.label}{h1e}", ""]
    lines.append(
        f"tasks {rep.tasks} | workers {rep.workers} | makespan "
        f"{_fmt(rep.makespan)} s | aborted {rep.aborted}"
        + ("" if rep.distributed else " | (two-phase fallback: no "
           "worker-side spans)"))
    lines.append("")
    lines.append(h2 + "per-task phase means" + h2e)
    lines.extend(_table(
        ["phase", "mean (us)", "total (s)", "share"],
        [[name, round(rep.phase_means[name] * us, 2),
          round(rep.phase_totals[name], 6),
          (f"{rep.phase_totals[name] / sum(rep.phase_totals.values()) * 100:.1f}%"
           if sum(rep.phase_totals.values()) else "-")]
         for name in PHASES], markdown))
    lines.append("")
    lines.append(f"IPC tax: {rep.ipc_tax_s * us:.1f} us/task "
                 f"({' + '.join(IPC_PHASES)}); overhead share "
                 f"{rep.overhead_share * 100:.1f}% of summed task latency"
                 + (f"; {rep.critical_path_overhead_share * 100:.1f}% "
                    "along the gating dependency chain"
                    if rep.critical_path_overhead_share is not None
                    else ""))
    if rep.per_kernel:
        lines.append("")
        lines.append(h2 + "per kernel (mean us/task)" + h2e)
        rows = []
        for r in rep.per_kernel:
            c = max(1, r["count"])
            rows.append([r["kernel"], r["count"]]
                        + [round(r[name] / c * us, 2) for name in PHASES]
                        + [round(r["latency"] / c * us, 2)])
        lines.extend(_table(["kernel", "count", *PHASES, "latency"],
                            rows, markdown))
    if rep.per_worker:
        lines.append("")
        lines.append(h2 + "per worker (total s)" + h2e)
        rows = [[r["worker"], r["tasks"]]
                + [round(r[name], 6) for name in PHASES]
                for r in rep.per_worker]
        lines.extend(_table(["worker", "tasks", *PHASES], rows, markdown))
    if rep.clock:
        lines.append("")
        lines.append(h2 + "clock alignment" + h2e)
        lines.extend(_table(
            ["worker", "offset (us)", "residual (us)", "rtt (us)",
             "drift (us/s)", "pings"],
            [[c["worker"], round(c["offset_s"] * us, 2),
              round(c["residual_s"] * us, 2), round(c["rtt_s"] * us, 2),
              round(c["drift"] * us, 3), c["samples"]]
             for c in rep.clock], markdown))
        lines.append(f"worst alignment residual: "
                     f"{rep.max_residual_s * us:.1f} us — phase "
                     "boundaries are exact to within this bound")
    return "\n".join(lines)


def render_overhead_report(rep: OverheadReport, fmt: str = "text") -> str:
    """Render an overhead report as ``text`` / ``markdown`` / ``json``."""
    if fmt == "json":
        return json.dumps(rep.to_dict(), indent=1, sort_keys=True)
    if fmt == "markdown":
        return _render_overhead(rep, markdown=True)
    if fmt == "text":
        return _render_overhead(rep, markdown=False)
    raise ValueError(f"unknown format {fmt!r} "
                     "(choose from text, markdown, json)")


def _open_trace(path):
    """Open a trace file for text reading, transparently gunzipping."""
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, encoding="utf-8")


def analyze_chrome_trace(source: Union[str, dict]) -> list[ScheduleReport]:
    """Analytics of an exported Chrome trace, one report per process.

    ``source`` is a trace document (the ``{"traceEvents": [...]}``
    dict) or a path to one (``.gz`` read transparently).  Each ``pid``
    group — e.g. ``measured`` and ``simulated`` lanes exported
    together by ``repro profile`` — yields one report; timestamps are
    converted from microseconds back to seconds.  Placeholder events
    emitted for empty sources are ignored, and so are the
    ``dispatch`` / ``overhead`` category slices of merged multi-process
    traces (the parent's dispatch lane and the workers'
    deserialize/publish slivers) — per-worker utilization counts each
    kernel exactly once, never the coordination that shadowed it.
    """
    if not isinstance(source, dict):
        with _open_trace(source) as fh:
            source = json.load(fh)
    events = source.get("traceEvents", [])
    problem = source.get("otherData", {}).get("problem", "")
    names: dict[int, str] = {}
    by_pid: dict[int, list[dict]] = {}
    for e in events:
        pid = int(e.get("pid", 0))
        if e.get("ph") == "M":
            if e.get("name") == "process_name":
                names[pid] = e.get("args", {}).get("name", str(pid))
        elif (e.get("ph") == "X"
              and not e.get("args", {}).get("placeholder")
              and e.get("cat") not in ("dispatch", "overhead")):
            by_pid.setdefault(pid, []).append(e)

    reports = []
    for pid in sorted(set(names) | set(by_pid)):
        xs = by_pid.get(pid, [])
        label = names.get(pid, str(pid))
        if not xs:
            reports.append(ScheduleReport(
                source="trace", label=label, makespan=0.0, processors=None,
                tasks=0, total_busy=0.0, utilization=None, problem=problem))
            continue
        ts = np.array([float(e["ts"]) for e in xs]) / 1e6
        dur = np.array([float(e.get("dur", 0.0)) for e in xs]) / 1e6
        tids = sorted({int(e.get("tid", 0)) for e in xs})
        lane_of = {t: i for i, t in enumerate(tids)}
        workers = np.array([lane_of[int(e.get("tid", 0))] for e in xs],
                           dtype=np.int64)
        makespan = float((ts + dur).max() - ts.min())
        total_busy = float(dur.sum())
        kernels = _kernel_pivot(
            [e.get("args", {}).get("kernel") or e["name"].split("(")[0]
             for e in xs],
            dur.tolist())
        lanes = _lane_stats(workers, dur, makespan, len(tids))
        utilization = (total_busy / (len(tids) * makespan)
                       if tids and makespan > 0 else None)
        reports.append(ScheduleReport(
            source="trace", label=label, makespan=makespan,
            processors=len(tids), tasks=len(xs), total_busy=total_busy,
            utilization=utilization, lanes=lanes, kernels=kernels,
            problem=problem))
    return reports


def analyze_events(events, label: str = "events") -> ScheduleReport:
    """Analytics of an event-bus capture (JSONL log or live snapshot).

    Rebuilds a measured-style report from ``task_done`` /
    ``group_done`` events alone: each carries its kernel, duration
    (``value``, seconds), retired-task ``count`` (>1 for batched
    groups), and worker index.  Start times are recovered as
    ``t - value`` — the publish stamp is taken at finish — so the
    makespan window and per-lane busy/idle books agree with the
    tracer's view of the same run to within publish latency.
    """
    events = list(events)
    problem = next((e.problem for e in events
                    if e.kind == "run_start" and e.problem), "")
    done = [e for e in events if e.kind in ("task_done", "group_done")]
    if not done:
        return ScheduleReport(source="trace", label=label, makespan=0.0,
                              processors=None, tasks=0, total_busy=0.0,
                              utilization=None, problem=problem)
    ts = np.array([e.t for e in done], dtype=np.float64)
    dur = np.array([max(0.0, e.value) for e in done], dtype=np.float64)
    counts = np.array([max(1, e.count) for e in done], dtype=np.int64)
    makespan = float(ts.max() - (ts - dur).min())
    total_busy = float(dur.sum())
    ntasks = int(counts.sum())

    total_by: dict[str, float] = {}
    count_by: dict[str, int] = {}
    for e, d, c in zip(done, dur.tolist(), counts.tolist()):
        k = e.kernel or "?"
        total_by[k] = total_by.get(k, 0.0) + d
        count_by[k] = count_by.get(k, 0) + c
    order = [k for k in KERNEL_ORDER if k in total_by] + sorted(
        k for k in total_by if k not in KERNEL_ORDER)
    kernels = [KernelStats(kernel=k, count=count_by[k], total=total_by[k],
                           mean=total_by[k] / count_by[k],
                           share=total_by[k] / total_busy if total_busy
                                 else 0.0)
               for k in order]

    lanes: list[LaneStats] = []
    utilization = None
    wids = sorted({e.worker for e in done if e.worker >= 0})
    if wids:
        lane_of = {w: i for i, w in enumerate(wids)}
        mask = np.array([e.worker >= 0 for e in done])
        workers = np.array([lane_of[e.worker] for e in done
                            if e.worker >= 0], dtype=np.int64)
        lanes = _lane_stats(workers, dur[mask], makespan, len(wids))
        if makespan > 0:
            utilization = total_busy / (len(wids) * makespan)
    return ScheduleReport(source="trace", label=label, makespan=makespan,
                          processors=len(wids) or None, tasks=ntasks,
                          total_busy=total_busy, utilization=utilization,
                          lanes=lanes, kernels=kernels, problem=problem)


def analyze_trace_file(path) -> list[ScheduleReport]:
    """Analyze a trace file of either format, sniffing which it is.

    Accepts the Chrome trace-event JSON documents written by ``repro
    profile --trace`` *and* the JSONL event logs written by ``repro
    profile --events`` (either gzipped when the name ends in ``.gz``).
    A file whose first line parses as an object with a ``kind`` key is
    JSONL; anything else goes through :func:`analyze_chrome_trace`.
    """
    with _open_trace(path) as fh:
        head = fh.readline()
    try:
        first = json.loads(head)
        is_jsonl = isinstance(first, dict) and "kind" in first
    except ValueError:
        is_jsonl = False  # multi-line JSON document
    if is_jsonl:
        from .export import read_events_jsonl
        return [analyze_events(read_events_jsonl(path), label=str(path))]
    return analyze_chrome_trace(path)


def analyze(source, processors: Optional[int] = None,
            priority: str = "critical-path") -> ScheduleReport:
    """Dispatch to the right analyzer for ``source``.

    * :class:`SimResult` → :func:`analyze_sim`;
    * a Plan (anything with ``.schedule``) → scheduled on
      ``processors`` (``None`` = unbounded) then :func:`analyze_sim`;
    * :class:`Tracer`, or an ExecutionContext carrying one →
      :func:`analyze_tracer`.

    For Chrome traces (multiple process groups per document) call
    :func:`analyze_chrome_trace` directly.
    """
    if isinstance(source, SimResult):
        return analyze_sim(source)
    if isinstance(source, Tracer):
        return analyze_tracer(source)
    tracer = getattr(source, "tracer", None)
    if isinstance(tracer, Tracer) and tracer.enabled:
        return analyze_tracer(tracer)
    schedule = getattr(source, "schedule", None)
    if callable(schedule):
        return analyze_sim(schedule(processors, priority))
    raise TypeError(
        "expected a SimResult, Plan, Tracer, or a traced ExecutionContext, "
        f"got {type(source).__name__}")


# ----------------------------------------------------------------------
# sim-vs-measured overlay diff
# ----------------------------------------------------------------------

def overlay_diff(measured: ScheduleReport,
                 simulated: ScheduleReport) -> dict:
    """Attribute measured runtime overhead per kernel type.

    Both reports must be in the same time unit — in practice the
    measured capture (seconds) against a simulation of the same DAG
    rescaled with the measured mean kernel times (what ``repro
    profile`` builds).  Per kernel: measured total vs simulated total
    and their difference (the *execution* overhead beyond the model);
    plus makespan inflation (scheduling + idling overhead) and idle
    totals.
    """
    m_tot = {k.kernel: k.total for k in measured.kernels}
    s_tot = {k.kernel: k.total for k in simulated.kernels}
    order = [k for k in KERNEL_ORDER if k in m_tot or k in s_tot]
    order += sorted((set(m_tot) | set(s_tot)) - set(order))
    kernels = {}
    for k in order:
        m, s = m_tot.get(k, 0.0), s_tot.get(k, 0.0)
        kernels[k] = {"measured": m, "simulated": s, "overhead": m - s,
                      "ratio": m / s if s else None}
    return {
        "makespan": {
            "measured": measured.makespan,
            "simulated": simulated.makespan,
            "overhead": measured.makespan - simulated.makespan,
            "ratio": (measured.makespan / simulated.makespan
                      if simulated.makespan else None),
        },
        "busy": {"measured": measured.total_busy,
                 "simulated": simulated.total_busy,
                 "overhead": measured.total_busy - simulated.total_busy},
        "idle": {"measured": measured.total_idle(),
                 "simulated": simulated.total_idle()},
        "kernels": kernels,
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def _fmt(v, nd: int = 6) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.{nd}g}"
    return str(v)


def _table(headers: list[str], rows: list[list], markdown: bool) -> list[str]:
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row]
                                           for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    if markdown:
        out = ["| " + " | ".join(h.ljust(w) for h, w in
                                 zip(cells[0], widths)) + " |"]
        out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
        for row in cells[1:]:
            out.append("| " + " | ".join(c.ljust(w) for c, w in
                                         zip(row, widths)) + " |")
        return out
    out = ["  ".join(h.ljust(w) for h, w in zip(cells[0], widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return out


def _render(report: ScheduleReport, markdown: bool) -> str:
    h1 = "## " if markdown else "== "
    h1e = "" if markdown else " =="
    src = (f"{report.source}, {report.problem}" if report.problem
           else report.source)
    lines = [f"{h1}schedule report: {report.label} ({src}){h1e}"]
    lines.append("")
    procs = report.processors if report.processors is not None else "unbounded"
    lines.append(f"makespan {_fmt(report.makespan)} | processors {procs} | "
                 f"tasks {report.tasks} | busy {_fmt(report.total_busy)}"
                 + (f" | utilization {report.utilization * 100:.1f}%"
                    if report.utilization is not None else ""))
    if report.kernels:
        lines.append("")
        lines.append(("### " if markdown else "-- ") + "time by kernel"
                     + ("" if markdown else " --"))
        lines.extend(_table(
            ["kernel", "count", "total", "mean", "share"],
            [[k.kernel, k.count, round(k.total, 6), round(k.mean, 6),
              f"{k.share * 100:.1f}%"] for k in report.kernels],
            markdown))
    if report.lanes:
        lines.append("")
        lines.append(("### " if markdown else "-- ") + "processors"
                     + ("" if markdown else " --"))
        lines.extend(_table(
            ["lane", "tasks", "busy", "idle", "utilization"],
            [[l.lane, l.tasks, round(l.busy, 6), round(l.idle, 6),
              f"{l.utilization * 100:.1f}%"] for l in report.lanes],
            markdown))
    cp = report.critical_path
    if cp is not None:
        lines.append("")
        lines.append(("### " if markdown else "-- ") + "critical path"
                     + ("" if markdown else " --"))
        comp = ", ".join(f"{k} x{c}" for k, c in cp.kernel_counts().items())
        lines.append(f"{len(cp)} tasks, total weight {_fmt(cp.length)} "
                     f"(= makespan), {cp.dep_edges} dependency edges, "
                     f"{cp.worker_edges} worker-wait edges")
        if comp:
            lines.append(f"composition: {comp}")
        if cp.steps:
            shown = cp.steps if len(cp.steps) <= 12 else (
                list(cp.steps[:6]) + [None] + list(cp.steps[-5:]))
            chain = " -> ".join("..." if s is None else s.name for s in shown)
            lines.append(f"chain: {chain}")
    if report.slack is not None:
        s = report.slack
        lines.append("")
        lines.append(f"slack: min {_fmt(s.min)}, mean {_fmt(s.mean)}, "
                     f"max {_fmt(s.max)}; {s.critical_tasks} zero-slack "
                     "(critical) tasks")
    if report.queue_wait is not None:
        q = report.queue_wait
        if report.slack is None:
            lines.append("")
        lines.append(f"queue wait: min {_fmt(q['min'])}, mean "
                     f"{_fmt(q['mean'])}, p95 {_fmt(q['p95'])}, max "
                     f"{_fmt(q['max'])} (total {_fmt(q['total'])} s "
                     "ready-to-start)")
    if report.bounds:
        b = report.bounds
        lines.append("")
        lines.append(("### " if markdown else "-- ") + "lower bounds"
                     + ("" if markdown else " --"))
        for key, lab in (("critical_path", "DAG critical path"),
                         ("work", "work / P"),
                         ("alap", "ALAP area bound"),
                         ("lower", "best lower bound"),
                         ("paper_cp_lower_bound", "paper 22q - 30")):
            if key in b:
                lines.append(f"{lab:>20s}  {_fmt(b[key])}")
        if b.get("efficiency") is not None:
            lines.append(f"{'efficiency':>20s}  {b['efficiency'] * 100:.1f}%"
                         + (f"  (speedup {_fmt(b['speedup'])})"
                            if "speedup" in b else ""))
    return "\n".join(lines)


def render_report(report: ScheduleReport, fmt: str = "text") -> str:
    """Render a report as ``"text"``, ``"markdown"``, or ``"json"``."""
    if fmt == "json":
        return json.dumps(report.to_dict(), indent=1, sort_keys=True)
    if fmt == "markdown":
        return _render(report, markdown=True)
    if fmt == "text":
        return _render(report, markdown=False)
    raise ValueError(f"unknown format {fmt!r} "
                     "(choose from text, markdown, json)")


def render_overlay(diff: dict, markdown: bool = False) -> str:
    """Human-readable view of an :func:`overlay_diff` result."""
    lines = [("### " if markdown else "-- ")
             + "measured vs simulated (per-kernel overhead)"
             + ("" if markdown else " --")]
    mk = diff["makespan"]
    ratio = f", {mk['ratio']:.2f}x" if mk.get("ratio") else ""
    lines.append(f"makespan: measured {_fmt(mk['measured'])} vs simulated "
                 f"{_fmt(mk['simulated'])} "
                 f"(overhead {_fmt(mk['overhead'])}{ratio})")
    rows = []
    for k, d in diff["kernels"].items():
        rows.append([k, round(d["measured"], 6), round(d["simulated"], 6),
                     round(d["overhead"], 6),
                     f"{d['ratio']:.2f}x" if d["ratio"] else "-"])
    lines.extend(_table(["kernel", "measured", "simulated", "overhead",
                         "ratio"], rows, markdown))
    return "\n".join(lines)
