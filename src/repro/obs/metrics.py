"""Counters, gauges, and histograms for the runtimes (S17).

A small process-local metrics substrate — deliberately not a client
for any external system.  The executor, the kernel-timing harness, and
the benchmark drivers all write into a :class:`MetricsRegistry`:

* :class:`Counter` — monotone float total (``tasks.retired.GEQRT``,
  ``scheduler.lock_seconds``);
* :class:`Gauge` — last-value-wins with min/max and an optional
  ``(t, value)`` sample series (ready-queue depth over time);
* :class:`Histogram` — fixed upper-bound buckets plus running
  count/sum/min/max (per-kernel wall-time distributions).

Get-or-create goes through one registry lock and each metric guards
its own mutation with a private lock; these are bookkeeping paths
(once per task / once per timed call), not inner loops.
``registry.render()`` gives a terminal summary, ``registry.to_dict()``
a JSON-ready snapshot.
"""

from __future__ import annotations

import json
import math
import os
import threading
import weakref
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_SECONDS_BUCKETS"]

# Fork safety: a registry (or metric) lock held by another thread at
# fork time is copied *locked* into the child, where no thread exists
# to release it — the first child-side inc()/observe() deadlocks
# forever.  Process-wide registries (``PLAN_METRICS``) make this easy
# to hit once worker processes fork under concurrent publishers, so
# every live registry re-creates its locks in the child.  Child-side
# metric *values* keep whatever snapshot the fork took; only the locks
# are replaced.
_LIVE_REGISTRIES: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def _reinit_locks_after_fork() -> None:  # pragma: no cover - exercised
    for reg in list(_LIVE_REGISTRIES):   # in a forked child (tests fork)
        reg._lock = threading.Lock()
        for m in reg._metrics.values():
            m._lock = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)

#: default histogram buckets for durations in seconds (~30 us .. 30 s)
DEFAULT_SECONDS_BUCKETS = tuple(
    round(base * 10.0 ** exp, 10)
    for exp in range(-5, 2)
    for base in (3.0, 10.0)
)


@dataclass
class Counter:
    """Monotonically increasing total (integer or float)."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-value gauge with extrema and an optional sample series."""

    name: str
    value: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    samples: list[tuple[float, float]] = field(default_factory=list)
    keep_samples: bool = True
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def set(self, value: float, t: float | None = None) -> None:
        value = float(value)
        with self._lock:
            self.value = value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if self.keep_samples and t is not None:
                self.samples.append((float(t), value))

    def to_dict(self) -> dict:
        d = {"type": "gauge", "value": self.value}
        if self.max >= self.min:
            d["min"], d["max"] = self.min, self.max
        if self.samples:
            d["samples"] = [list(s) for s in self.samples]
        return d


@dataclass
class Histogram:
    """Fixed-bucket histogram with running count/sum/min/max.

    ``buckets`` are inclusive upper bounds; an implicit ``+inf``
    overflow bucket catches the rest.
    """

    name: str
    buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def __post_init__(self) -> None:
        self.buckets = tuple(sorted(float(b) for b in self.buckets))
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, ub in enumerate(self.buckets):
                if value <= ub:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        d = {"type": "histogram", "count": self.count, "sum": self.sum,
             "mean": self.mean,
             "bucket_edges": list(self.buckets),
             "buckets": [list(b) for b in zip(self.buckets, self.counts)],
             "overflow": self.counts[-1]}
        if self.count:
            d["min"], d["max"] = self.min, self.max
        return d


class MetricsRegistry:
    """Thread-safe, get-or-create home for named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        _LIVE_REGISTRIES.add(self)

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, cls, **kwargs):
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = cls(name=name, **kwargs)
                self._metrics[name] = m
            elif not isinstance(m, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(m).__name__}, not {cls.__name__}")
            return m

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str, keep_samples: bool = True) -> Gauge:
        return self._get_or_create(name, Gauge, keep_samples=keep_samples)

    def histogram(self, name: str,
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        kwargs = {} if buckets is None else {"buckets": tuple(buckets)}
        return self._get_or_create(name, Histogram, **kwargs)

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every metric, sorted by name."""
        with self._lock:
            items = sorted(self._metrics.items())
        return {name: m.to_dict() for name, m in items}

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's metrics into this one, in place.

        The aggregation primitive for multi-worker runs (each worker
        keeps a private registry; the parent merges them afterwards):

        * **counters** sum;
        * **gauges** take the other's last value (with merged extrema
          and concatenated, time-sorted sample series) — last-write
          wins, matching gauge semantics;
        * **histograms** add bucket-wise; both sides must share the
          same bucket edges (:class:`ValueError` otherwise — silently
          rebinning would corrupt the distribution).

        Metrics existing on only one side are copied over.  Same-name
        metrics of different types raise :class:`TypeError` (via the
        get-or-create type check).  Returns ``self`` for chaining.
        """
        if other is self:
            raise ValueError("cannot merge a registry into itself")
        with other._lock:
            items = sorted(other._metrics.items())
        for name, m in items:
            if isinstance(m, Counter):
                self.counter(name).inc(m.value)
            elif isinstance(m, Gauge):
                g = self.gauge(name, keep_samples=m.keep_samples)
                with m._lock, g._lock:
                    g.value = m.value
                    g.min = min(g.min, m.min)
                    g.max = max(g.max, m.max)
                    if m.samples:
                        g.samples = sorted(g.samples + m.samples)
            else:
                h = self.histogram(name, buckets=m.buckets)
                with m._lock, h._lock:
                    if h.buckets != m.buckets:
                        raise ValueError(
                            f"histogram {name!r}: cannot merge differing "
                            f"bucket edges {h.buckets} vs {m.buckets}")
                    h.count += m.count
                    h.sum += m.sum
                    h.min = min(h.min, m.min)
                    h.max = max(h.max, m.max)
                    for i, c in enumerate(m.counts):
                        h.counts[i] += c
        return self

    def to_json(self, indent: int | None = 1) -> str:
        """Deterministic JSON: metric names *and* keys inside each
        metric are emitted sorted, so two identically populated
        registries render byte-for-byte the same — snapshot files and
        CI diffs stay stable across runs and dict insertion orders."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, title: str = "metrics") -> str:
        """Plain-text summary, one block per metric."""
        with self._lock:
            items = sorted(self._metrics.items())
        lines = [f"== {title} =="]
        for name, m in items:
            if isinstance(m, Counter):
                v = m.value
                lines.append(f"{name:<40s} {v:g}")
            elif isinstance(m, Gauge):
                extra = (f"  (min {m.min:g}, max {m.max:g})"
                         if m.max >= m.min else "")
                lines.append(f"{name:<40s} {m.value:g}{extra}")
            else:
                lines.append(
                    f"{name:<40s} n={m.count}  sum={m.sum:.6g}  "
                    f"mean={m.mean:.6g}"
                    + (f"  min={m.min:.3g}  max={m.max:.3g}" if m.count
                       else ""))
                lines.extend(_histogram_rows(m))
        return "\n".join(lines)


def _histogram_rows(h: Histogram, width: int = 30) -> list[str]:
    """ASCII bar rows for a histogram's non-empty buckets."""
    rows = []
    peak = max(h.counts) if h.count else 0
    if not peak:
        return rows
    labels = [f"<= {ub:g}" for ub in h.buckets] + ["> (overflow)"]
    for label, c in zip(labels, h.counts):
        if not c:
            continue
        bar = "#" * max(1, round(width * c / peak))
        rows.append(f"    {label:>14s}  {c:>7d}  {bar}")
    return rows
