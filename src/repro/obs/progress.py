"""Live progress rendering: ``--progress`` bars and ``repro top`` (S21).

A :class:`ProgressRenderer` watches a
:class:`~repro.obs.stream.LiveState` (the event-bus reduction) on a
background thread and paints:

* per-kernel completion bars (done/total per GEQRT..TTMQR, totals from
  the plan's DAG);
* worker utilization (busy workers out of the pool) and the live
  ready-frontier depth;
* a live ETA from :class:`~repro.planner.replay.ScheduleReplay` —
  realized progress replayed against the plan's memoized simulated
  schedule — including the predicted-vs-first-prediction **drift**.

On a TTY the block repaints in place with ANSI cursor movement; when
stdout/stderr is not a TTY (CI, pipes) it degrades to one plain
progress line per ``nontty_interval`` seconds, so logs stay readable
and the non-interactive CI smoke step exercises the same code path.
"""

from __future__ import annotations

import sys
import threading
import time

from ..kernels.costs import Kernel
from .stream import LiveState

__all__ = ["ProgressRenderer", "kernel_totals", "render_bar"]

#: canonical kernel display order
_KERNELS = tuple(k.value for k in Kernel)


def kernel_totals(graph) -> dict[str, int]:
    """Task count per kernel family of a TaskGraph or Plan."""
    g = getattr(graph, "graph", graph)
    totals: dict[str, int] = {}
    for t in g.tasks:
        k = t.kernel.value
        totals[k] = totals.get(k, 0) + 1
    return totals


def render_bar(frac: float, width: int = 24) -> str:
    """A ``[#####----]`` completion bar for ``frac`` in 0..1."""
    frac = min(1.0, max(0.0, frac))
    fill = round(frac * width)
    return "[" + "#" * fill + "-" * (width - fill) + "]"


def _fmt_secs(s) -> str:
    if s is None:
        return "--"
    if s >= 100:
        return f"{s:.0f}s"
    if s >= 1:
        return f"{s:.1f}s"
    return f"{s * 1e3:.0f}ms"


class ProgressRenderer:
    """Background renderer of live factorization progress.

    Parameters
    ----------
    state : LiveState
        Bus reduction to render (attach it to the run's bus first).
    replay : ScheduleReplay or None
        ETA estimator; ``None`` renders progress without an ETA.
    clock : callable
        Elapsed-seconds source, usually ``bus.now`` (shares the bus
        epoch so event timestamps and the ETA agree).
    totals : dict or None
        Per-kernel task totals (:func:`kernel_totals`); bars are
        omitted without them.
    stream : file or None
        Destination (default ``sys.stderr``).
    tty : bool or None
        Force TTY (ANSI repaint) or non-TTY (line) mode; ``None``
        autodetects via ``stream.isatty()``.
    interval, nontty_interval : float
        Repaint cadence, and the (slower) line cadence when not a TTY.
    label : str
        Header label (scheme/grid description).
    show_workers : bool
        Also render the per-worker kernel row (the ``repro top`` view).
    """

    def __init__(self, state: LiveState, replay=None, *, clock=None,
                 totals: dict | None = None, stream=None,
                 tty: bool | None = None, interval: float = 0.1,
                 nontty_interval: float = 1.0, label: str = "",
                 bar_width: int = 24, show_workers: bool = False) -> None:
        self.state = state
        self.replay = replay
        self.totals = totals or {}
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", lambda: False)
        self.tty = bool(isatty()) if tty is None else bool(tty)
        self.interval = float(interval)
        self.nontty_interval = float(nontty_interval)
        self.label = label
        self.bar_width = int(bar_width)
        self.show_workers = show_workers
        self._epoch = time.perf_counter()
        self.clock = clock if clock is not None else (
            lambda: time.perf_counter() - self._epoch)
        self._prev_lines = 0
        self._last_emit = -float("inf")
        self._last_estimate = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def lines(self) -> list[str]:
        """The current dashboard block (pure; also used by tests)."""
        v = self.state.view()
        elapsed = self.clock()
        done, total = v["done"], max(v["total"], 1)
        est = None
        if self.replay is not None:
            est = self.replay.estimate(done, elapsed)
            self._last_estimate = est
        head = f"{self.label + ' | ' if self.label else ''}" \
               f"{done}/{v['total']} tasks ({100.0 * done / total:.1f}%)" \
               f" | elapsed {_fmt_secs(elapsed)}"
        if est is not None and est.remaining is not None:
            drift = (f", drift {est.drift * +100:+.0f}%"
                     if est.drift is not None else "")
            head += (f" | eta {_fmt_secs(est.remaining)} "
                     f"(total {_fmt_secs(est.predicted_makespan)}{drift})")
        out = [head]
        for k in _KERNELS:
            tot = self.totals.get(k)
            if not tot:
                continue
            d = v["kernel_done"].get(k, 0)
            out.append(f"{k:<6s} {render_bar(d / tot, self.bar_width)} "
                       f"{d}/{tot}")
        nw = max(v["workers"], len(v["worker_kernel"]), 1)
        busy = v["busy_workers"]
        status = (f"workers {render_bar(busy / nw, self.bar_width)} "
                  f"{busy}/{nw} busy | frontier {v['frontier']}")
        if v["level"] >= 0:
            status += f" | level {v['level']}"
        out.append(status)
        if self.show_workers and v["worker_kernel"]:
            cells = [f"w{w}:{k or 'idle'}"
                     for w, k in sorted(v["worker_kernel"].items())[:16]]
            out.append("  ".join(cells))
        return out

    def progress_line(self) -> str:
        """The one-line non-TTY rendering."""
        return self.lines()[0]

    # ------------------------------------------------------------------
    def render_once(self, force: bool = False) -> None:
        if self.tty:
            block = self.lines()
            if self._prev_lines:
                self.stream.write(f"\x1b[{self._prev_lines}F\x1b[0J")
            self.stream.write("\n".join(block) + "\n")
            self._prev_lines = len(block)
        else:
            t = self.clock()
            if not force and t - self._last_emit < self.nontty_interval:
                return
            self._last_emit = t
            self.stream.write(self.progress_line() + "\n")
        self.stream.flush()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.render_once()

    def start(self) -> "ProgressRenderer":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-progress", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and paint the final state."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        self.render_once(force=True)

    @property
    def last_estimate(self):
        """The most recent :class:`EtaEstimate` (or ``None``)."""
        return self._last_estimate

    def __enter__(self) -> "ProgressRenderer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
